"""Benchmark: analytical screening vs exhaustive design-space exploration.

The headline (slow, ``--runslow``/``REPRO_RUN_SLOW=1``) benchmark runs a
Table-I-style grid at least 4x the default benchmark grid (6 topology groups
x 17 parallelism degrees x 3 routing algorithms, WiMAX LDPC n = 2304) twice:

* exhaustively — every feasible candidate is simulated cycle-exactly;
* screened — every candidate is *ranked* by the analytical model
  (:class:`repro.noc.AnalyticalNocModel`) and only the top ``confirm_top``
  per objective are simulated.

Graphs, routing tables and code mappings are warmed untimed (both flows
need them identically); the timed regions isolate what differs.  The
screened flow is timed twice: the first pass pays the one-time cycle-exact
contention-fit probes, the second is the steady state (fits are keyed by
(family, degree, routing, policy) only, so every later exploration — any
code, any grid — reuses them).  The recorded headline ``speedup`` is the
amortized one; ``speedup_cold`` records the first-run ratio.  Results land
in ``BENCH_noc_analytical.json``.

The quick smoke test (always on; CI runs it with ``--benchmark-disable``)
exercises screened exploration on a reduced grid with the persistent sweep
cache, twice, asserting the second pass is served entirely from cache.
"""

from __future__ import annotations

import time

import pytest

from repro import DecoderSpec, DesignSpaceExplorer, wimax_ldpc_code
from repro.noc import NocSweepCache

#: Same topology groups as the Table-I benchmark.
TOPOLOGIES = [
    ("generalized-de-bruijn", 2),
    ("generalized-kautz", 2),
    ("spidergon", 3),
    ("generalized-kautz", 3),
    ("honeycomb", 4),
    ("generalized-kautz", 4),
]

#: 17 parallelism degrees vs the default benchmark's 2 — with 6 topology
#: groups and 3 routing algorithms this enumerates ~270 feasible candidates,
#: >= 7x the 36-point default Table-I grid.  This is the regime screening is
#: for: a grid nobody would simulate exhaustively during design iteration.
BIG_PARALLELISMS = list(range(12, 45, 2))

#: The default Table-I benchmark grid this bench's grid is measured against.
TABLE1_DEFAULT_POINTS = 36

SMOKE_TOPOLOGIES = [("generalized-kautz", 3), ("spidergon", 3)]
SMOKE_PARALLELISMS = [8, 16]


@pytest.mark.slow
@pytest.mark.benchmark(group="noc-analytical")
def test_analytical_screening_speedup(benchmark, bench_print, bench_json):
    """Screened exploration is >= 10x faster than exhaustive on a 4x grid."""
    code = wimax_ldpc_code(2304, "1/2")
    explorer = DesignSpaceExplorer(DecoderSpec(mapping_attempts=2), seed=0)

    def screened_run():
        return explorer.explore(
            code, TOPOLOGIES, BIG_PARALLELISMS,
            screen="analytical", confirm_top=5,
        )

    # Untimed warm-up of the infrastructure BOTH flows need identically:
    # built topologies, routing tables and code mappings.  What remains in
    # the timed regions is exactly what differs — simulate everything vs
    # estimate everything and simulate the shortlist.
    for family, degree in TOPOLOGIES:
        for parallelism in BIG_PARALLELISMS:
            try:
                explorer._cached_graph(family, degree, parallelism)
                explorer._cached_ldpc_mapping(code, parallelism)
            except Exception:
                continue  # infeasible cell; explore() skips it too

    t0 = time.perf_counter()
    exhaustive = explorer.explore(code, TOPOLOGIES, BIG_PARALLELISMS, screen=None)
    exhaustive_seconds = time.perf_counter() - t0

    # First screened pass pays the one-time contention fits (cycle-exact
    # probes per (family, routing, policy) key) inside the timed region.
    t0 = time.perf_counter()
    screened = screened_run()
    screened_cold_seconds = time.perf_counter() - t0

    # Second pass is the steady state: the fits are keyed by (family,
    # degree, routing, policy) only — independent of the code, the traffic
    # and the grid — so every later exploration reuses them.
    t0 = time.perf_counter()
    screened_warm = benchmark.pedantic(screened_run, rounds=1, iterations=1)
    screened_seconds = time.perf_counter() - t0

    assert screened_warm.winners.keys() == screened.winners.keys()
    speedup = exhaustive_seconds / screened_seconds
    speedup_cold = exhaustive_seconds / screened_cold_seconds
    winners_match = {
        objective: (
            exhaustive.winners[objective].topology_family,
            exhaustive.winners[objective].degree,
            exhaustive.winners[objective].parallelism,
            exhaustive.winners[objective].routing_algorithm.value,
        )
        == (
            screened.winners[objective].topology_family,
            screened.winners[objective].degree,
            screened.winners[objective].parallelism,
            screened.winners[objective].routing_algorithm.value,
        )
        for objective in exhaustive.winners
    }

    bench_print(
        "Analytical screening on the 4x Table-I grid:\n"
        f"  candidates           {screened.n_candidates}"
        f" (>= 4x default grid of {TABLE1_DEFAULT_POINTS})\n"
        f"  simulated (screened) {screened.n_simulated}"
        f"  skipped {screened.n_skipped}\n"
        f"  exhaustive           {exhaustive_seconds:.2f} s\n"
        f"  screened, first run  {screened_cold_seconds:.2f} s"
        f" ({speedup_cold:.1f}x, pays the one-time contention fits)\n"
        f"  screened, amortized  {screened_seconds:.2f} s ({speedup:.1f}x)\n"
        f"  winners match        {winners_match}"
    )
    bench_json(
        "noc_analytical",
        "screening_speedup",
        {
            "grid": {
                "topology_groups": len(TOPOLOGIES),
                "parallelisms": BIG_PARALLELISMS,
                "n_candidates": screened.n_candidates,
                "table1_default_points": TABLE1_DEFAULT_POINTS,
            },
            "n_simulated": screened.n_simulated,
            "n_skipped": screened.n_skipped,
            "exhaustive_seconds": round(exhaustive_seconds, 3),
            "screened_seconds": round(screened_seconds, 3),
            "screened_cold_seconds": round(screened_cold_seconds, 3),
            "speedup": round(speedup, 2),
            "speedup_cold": round(speedup_cold, 2),
            "winners_match": winners_match,
        },
    )

    assert screened.n_candidates >= 4 * TABLE1_DEFAULT_POINTS, (
        "benchmark grid shrank below 4x the default Table-I grid"
    )
    assert screened.n_skipped > 0
    assert speedup >= 10.0, (
        f"screened exploration only {speedup:.1f}x faster than exhaustive"
    )
    assert speedup_cold >= 2.0, (
        f"first screened run only {speedup_cold:.1f}x faster than exhaustive"
    )


@pytest.mark.benchmark(group="noc-analytical")
def test_analytical_screening_smoke(benchmark, tmp_path, bench_print, bench_json):
    """Reduced-grid screened exploration, run twice through the sweep cache."""
    code = wimax_ldpc_code(576, "1/2")
    explorer = DesignSpaceExplorer(DecoderSpec(mapping_attempts=1), seed=0)
    cache = NocSweepCache(tmp_path / "sweep-cache")

    def screened_run():
        return explorer.explore(
            code, SMOKE_TOPOLOGIES, SMOKE_PARALLELISMS,
            screen="analytical", confirm_top=6, cache=cache,
        )

    cold = benchmark.pedantic(screened_run, rounds=1, iterations=1)
    cold_misses = cache.misses
    warm = screened_run()

    assert cold.n_skipped > 0
    assert cold_misses == cold.n_simulated
    assert cache.hits == cold_misses, "warm pass was not served from the cache"
    assert cache.misses == cold_misses, "warm pass re-simulated cached jobs"
    for objective, winner in cold.winners.items():
        again = warm.winners[objective]
        assert (winner.topology_family, winner.parallelism, winner.ncycles) == (
            again.topology_family, again.parallelism, again.ncycles,
        )

    bench_print(
        "Screening smoke (reduced grid, persistent cache):\n"
        f"  {cold.describe()}\n"
        f"  cache: {cache.hits} hits / {cache.misses} misses over two passes"
    )
    bench_json(
        "noc_analytical",
        "screening_smoke",
        {
            "n_candidates": cold.n_candidates,
            "n_simulated": cold.n_simulated,
            "n_skipped": cold.n_skipped,
            "cache_hits": cache.hits,
            "cache_misses": cache.misses,
            "winners": {
                objective: f"{point.topology_family}-P{point.parallelism}"
                f"-{point.routing_algorithm.value}"
                for objective, point in cold.winners.items()
            },
        },
    )

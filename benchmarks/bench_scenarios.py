"""Benchmark of the scenario matrix the batched chain now covers.

One run sweeps the full modulation x channel grid (BPSK / QPSK / 16-QAM
against AWGN, per-symbol Rayleigh and block Rayleigh), the fixed-point
channel-LLR front-end versus float, and the 802.11n n=1944 codes — every
point through the *same* ``BerRunner`` chain, which is the tentpole claim:
new scenarios ride the existing loop, they do not get loops of their own.

Each point is recorded with its Wilson interval into
``BENCH_scenarios.json`` so scenario-level BER regressions show up as JSON
diffs across PRs.  Frame budgets are deliberately small (this is a smoke
bench, not a curve); set ``REPRO_BENCH_FULL=1`` for x4 frames.
"""

from __future__ import annotations

import pytest

from repro.channel import BPSKModulator, QAM16Modulator, QPSKModulator
from repro.ldpc import wifi_ldpc_code, wimax_ldpc_code
from repro.sim import (
    BatchLayeredDecoder,
    BerRunner,
    QuantizedBatchDecoder,
)

from benchmarks.conftest import full_benchmarks_enabled

#: (modulator factory, label) x (channel name, Eb/N0 grid per channel).
_MODULATORS = [
    (BPSKModulator, "bpsk"),
    (QPSKModulator, "qpsk"),
    (QAM16Modulator, "qam16"),
]
#: Fading needs far more Eb/N0 than AWGN for comparable error rates, so each
#: channel gets its own operating point (same point for every modulator —
#: Eb/N0 normalisation makes them comparable).
_CHANNELS = [
    ("awgn", 2.5),
    ("rayleigh", 8.0),
    ("rayleigh-block", 14.0),
]


def _frames(default: int) -> int:
    return default * 4 if full_benchmarks_enabled() else default


def _point_payload(point) -> dict:
    lo, hi = point.ber_interval
    return {
        "ebn0_db": point.ebn0_db,
        "frames": point.frames,
        "bit_errors": point.bit_errors,
        "ber": point.ber,
        "ber_wilson_low": lo,
        "ber_wilson_high": hi,
        "fer": point.fer,
        "avg_iterations": round(point.avg_iterations, 2),
    }


@pytest.mark.benchmark(group="scenarios")
def test_modulation_channel_matrix(benchmark, bench_print, bench_json):
    """BER with Wilson intervals across the modulation x channel grid."""
    code = wimax_ldpc_code(576, "1/2")
    decoder = BatchLayeredDecoder(code.h, max_iterations=10)
    frames = _frames(64)

    def measure():
        points = {}
        for mod_factory, mod_name in _MODULATORS:
            for channel, ebn0_db in _CHANNELS:
                runner = BerRunner(
                    code,
                    decoder,
                    mod_factory(),
                    channel=channel,
                    batch_size=32,
                    max_frames=frames,
                    target_frame_errors=None,
                    seed=17,
                )
                points[f"{mod_name}/{channel}"] = runner.run_point(ebn0_db)
        return points

    points = benchmark.pedantic(measure, rounds=1, iterations=1)
    lines = ["Scenario matrix (WiMAX n=576 r=1/2, layered min-sum, 10 it):"]
    for key, point in points.items():
        lines.append(f"  {key:22s}: {point}")
        bench_json("scenarios", f"matrix/{key}", _point_payload(point))
    bench_print("\n".join(lines))
    # The chain must at least close at these operating points: AWGN error-free
    # region, fading merely not collapsed to coin-flipping.
    assert points["bpsk/awgn"].ber < 1e-2
    for key, point in points.items():
        assert point.ber < 0.5, f"{key} collapsed: {point}"


@pytest.mark.benchmark(group="scenarios")
def test_fixed_point_front_end(benchmark, bench_print, bench_json):
    """Quantised (7/1 channel, 5/0 extrinsic) vs float through the runner."""
    code = wimax_ldpc_code(576, "1/2")
    frames = _frames(128)
    ebn0_db = 2.5

    def measure():
        float_runner = BerRunner(
            code,
            BatchLayeredDecoder(code.h, max_iterations=10),
            batch_size=64,
            max_frames=frames,
            target_frame_errors=None,
            seed=11,
        )
        fixed_runner = BerRunner(
            code,
            QuantizedBatchDecoder(
                BatchLayeredDecoder(code.h, max_iterations=10, fixed_point=True)
            ),
            batch_size=64,
            max_frames=frames,
            target_frame_errors=None,
            seed=11,
        )
        return float_runner.run_point(ebn0_db), fixed_runner.run_point(ebn0_db)

    float_point, fixed_point = benchmark.pedantic(measure, rounds=1, iterations=1)
    bench_print(
        f"Fixed-point channel front-end, n=576 r=1/2 BPSK at {ebn0_db} dB:\n"
        f"  float : {float_point}\n"
        f"  fixed : {fixed_point}"
    )
    bench_json("scenarios", "fixed_point/float", _point_payload(float_point))
    bench_json("scenarios", "fixed_point/quantized", _point_payload(fixed_point))
    # Same regime, not collapsed (the 0.5 dB acceptance test lives in
    # tests/test_scenarios.py with a proper sweep).
    assert fixed_point.fer <= float_point.fer + max(4, frames // 16)


@pytest.mark.benchmark(group="scenarios")
def test_wifi_codes_through_runner(benchmark, bench_print, bench_json):
    """802.11n n=1944 rates 1/2 and 5/6 through the same batched chain."""
    frames = _frames(32)
    operating_points = {"1/2": 2.5, "5/6": 4.5}

    def measure():
        points = {}
        for rate, ebn0_db in operating_points.items():
            code = wifi_ldpc_code(1944, rate)
            runner = BerRunner(
                code,
                BatchLayeredDecoder(code.h, max_iterations=10),
                batch_size=16,
                max_frames=frames,
                target_frame_errors=None,
                seed=0,
            )
            points[rate] = runner.run_point(ebn0_db)
        return points

    points = benchmark.pedantic(measure, rounds=1, iterations=1)
    lines = ["802.11n LDPC n=1944 through BerRunner (layered min-sum, 10 it):"]
    for rate, point in points.items():
        lines.append(f"  rate {rate}: {point}")
        bench_json(
            "scenarios", f"wifi/1944:{rate}", _point_payload(point)
        )
    bench_print("\n".join(lines))
    for rate, point in points.items():
        assert point.ber < 1e-2, f"wifi 1944 {rate} collapsed: {point}"

"""Micro-benchmark: scalar deflection-draw loop vs the vectorized batch API.

PR 4's batched NoC kernel replayed every SCM deflection draw through a
sequential pure-Python loop — one ``DeflectionStreams.draw`` per (job, node)
candidate, J jobs deep.  PR 5 vectorized the hot path:
:meth:`repro.utils.rng.DeflectionStreams.draw_batch` advances all J
independent per-job word counters at once (one gather per rejection round),
bit-identical to the scalar stream.

This bench isolates exactly that trade: for each batch width J it performs
the same draw schedule — rounds of one draw per job, bounds cycling through
the 1..3 candidate counts of the paper's degree-3 topologies — through both
APIs, checks the outputs and per-job word consumption are identical, and
records draws/sec in ``benchmarks/BENCH_deflection_draws.json``.  The
recorded crossover motivates both the kernel's vectorized resume rounds and
its scalar small-round fallback (``_VEC_MIN_ROUND``), and the adaptive sweep
scheduler's policy-aware batching thresholds.
"""

from __future__ import annotations

import os
import time

import numpy as np
import pytest

from repro.utils.rng import DeflectionStreams

#: One draw per job per round; bounds cycle in the same order for every job.
ROUNDS = 1200
BOUND_PATTERN = [3, 2, 3, 1, 2, 3, 3, 2]
BATCH_WIDTHS = [2, 8, 64, 256]


def _scalar_schedule(streams: DeflectionStreams, J: int) -> list[int]:
    draws = []
    draw = streams.draw
    for r in range(ROUNDS):
        n = BOUND_PATTERN[r % len(BOUND_PATTERN)]
        for job in range(J):
            draws.append(draw(job, n))
    return draws


def _batched_schedule(streams: DeflectionStreams, J: int) -> list[int]:
    draws = []
    jobs = np.arange(J, dtype=np.int64)
    for r in range(ROUNDS):
        n = BOUND_PATTERN[r % len(BOUND_PATTERN)]
        bounds = np.full(J, n, dtype=np.int64)
        draws.extend(streams.draw_batch(jobs, bounds).tolist())
    return draws


def _best_time(fn, repeats: int = 3):
    best = float("inf")
    result = None
    for _ in range(repeats):
        start = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - start)
    return best, result


@pytest.mark.benchmark(group="deflection-draws")
def test_deflection_draw_throughput(benchmark, bench_print, bench_json):
    """Scalar draw loop vs draw_batch across batch widths, bit-identical."""
    per_width: dict[str, dict] = {}
    lines = [
        f"Deflection draws: scalar loop vs vectorized batch ({ROUNDS} rounds, "
        f"bounds {BOUND_PATTERN}):"
    ]

    def run_widths():
        for J in BATCH_WIDTHS:
            seeds = list(range(J))
            scalar_s, scalar_draws = _best_time(
                lambda J=J: _scalar_schedule(DeflectionStreams(range(J)), J)
            )
            batch_s, batch_draws = _best_time(
                lambda J=J: _batched_schedule(DeflectionStreams(range(J)), J)
            )
            assert scalar_draws == batch_draws, "vectorized draws diverged"
            # word-consumption parity: both paths must advance identically
            a, b = DeflectionStreams(seeds), DeflectionStreams(seeds)
            _scalar_schedule(a, J)
            _batched_schedule(b, J)
            assert a.draw_counts.tolist() == b.draw_counts.tolist()
            assert a._cursors.tolist() == b._cursors.tolist()
            total = ROUNDS * J
            entry = {
                "draws": total,
                "scalar_draws_per_sec": round(total / scalar_s, 1),
                "batched_draws_per_sec": round(total / batch_s, 1),
                "speedup": round(scalar_s / batch_s, 3),
            }
            per_width[str(J)] = entry
            lines.append(
                f"  J={J:4d}: {entry['scalar_draws_per_sec']:12.0f} -> "
                f"{entry['batched_draws_per_sec']:12.0f} draws/s "
                f"({entry['speedup']:.2f}x)"
            )
        return per_width

    benchmark.pedantic(run_widths, rounds=1, iterations=1)
    bench_print("\n".join(lines))
    bench_json(
        "deflection_draws",
        "draws_per_sec",
        {
            "rounds": ROUNDS,
            "bound_pattern": BOUND_PATTERN,
            "batch_widths": per_width,
            "best_speedup": max(e["speedup"] for e in per_width.values()),
        },
    )
    # The vectorized path must win decisively at kernel-scale widths; narrow
    # batches may lose (dispatch overhead) — that is exactly why the kernel
    # keeps its scalar small-round fallback, and it is recorded honestly.
    if not os.environ.get("CI"):
        assert per_width["256"]["speedup"] >= 1.5, (
            f"vectorized draws regressed to {per_width['256']['speedup']}x at J=256"
        )

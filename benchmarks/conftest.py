"""Shared helpers for the benchmark harness.

Every benchmark regenerates one of the paper's tables (or a functional /
ablation study) and *prints* it, so that ``pytest benchmarks/ --benchmark-only``
produces, in one run, all the rows the paper reports next to the published
values.  The pytest-benchmark timings measure the cost of the corresponding
evaluation (mapping + cycle-accurate simulation + cost models).

Environment knobs:

* ``REPRO_BENCH_FULL=1`` — run the full Table I grid (6 topology groups x
  4 parallelism degrees x 3 routing algorithms) instead of the reduced default
  grid, and use more Monte-Carlo frames in the functional bench.
"""

from __future__ import annotations

import os

import pytest


def full_benchmarks_enabled() -> bool:
    """True when the full (slow) benchmark grids were requested."""
    return os.environ.get("REPRO_BENCH_FULL", "0") == "1"


@pytest.fixture(scope="session")
def bench_print():
    """Print helper that keeps benchmark output readable in captured logs."""

    def _print(text: str) -> None:
        print()
        print(text)

    return _print

"""Shared helpers for the benchmark harness.

Every benchmark regenerates one of the paper's tables (or a functional /
ablation study) and *prints* it, so that ``pytest benchmarks/ --benchmark-only``
produces, in one run, all the rows the paper reports next to the published
values.  The pytest-benchmark timings measure the cost of the corresponding
evaluation (mapping + cycle-accurate simulation + cost models).

Besides the printed tables, every bench also records its headline numbers
(frames/sec, speedups, model outputs, parameters) into a machine-readable
``benchmarks/BENCH_<name>.json`` via the :func:`bench_json` fixture, so the
performance trajectory can be tracked across PRs by diffing those files.

Environment knobs:

* ``REPRO_BENCH_FULL=1`` — run the full Table I grid (6 topology groups x
  4 parallelism degrees x 3 routing algorithms) instead of the reduced default
  grid, and use more Monte-Carlo frames in the functional bench.
"""

from __future__ import annotations

import json
import os
from pathlib import Path

import pytest

_BENCH_DIR = Path(__file__).resolve().parent


def full_benchmarks_enabled() -> bool:
    """True when the full (slow) benchmark grids were requested."""
    return os.environ.get("REPRO_BENCH_FULL", "0") == "1"


@pytest.fixture(scope="session")
def bench_json():
    """Writer merging one bench's results into ``BENCH_<name>.json``.

    Call as ``bench_json(name, key, payload)``: ``name`` groups one bench
    module's file, ``key`` is the entry (usually the test/scenario name) and
    ``payload`` is any JSON-serialisable dict of metrics and parameters.
    Entries merge into the existing file so a partial bench run never wipes
    the other rows.
    """

    def _write(name: str, key: str, payload: dict) -> None:
        path = _BENCH_DIR / f"BENCH_{name}.json"
        data: dict = {}
        if path.exists():
            try:
                data = json.loads(path.read_text())
            except json.JSONDecodeError:
                data = {}  # a previously interrupted run left a partial file
        data[key] = payload
        # Atomic replace so an interrupted run can never truncate the file.
        tmp_path = path.with_suffix(".json.tmp")
        tmp_path.write_text(json.dumps(data, indent=2, sort_keys=True) + "\n")
        os.replace(tmp_path, path)

    return _write


@pytest.fixture(scope="session")
def bench_print():
    """Print helper that keeps benchmark output readable in captured logs."""

    def _print(text: str) -> None:
        print()
        print(text)

    return _print

"""Benchmark: what the resilience layer costs, and what recovery costs.

Three questions, each one scenario:

* ``no_fault_overhead`` — the steady-state tax of running every batch
  through the resilient dispatcher (breaker bookkeeping, injector check,
  attempt loop) instead of the bare executor.  Measured as saturating-load
  throughput with the resilience layer active but no faults injected,
  against the recorded ``BENCH_decode_service.json`` workload shape.
  Acceptance: the resilient path keeps >= 90% of its own clean-baseline
  throughput measured back-to-back in this run (same machine, same
  minute — CI-noise-proof by construction).
* ``crash_recovery`` — a worker-process death mid-burst: time from the
  crash-faulted dispatch to the first successfully decoded batch on the
  rebuilt pool, plus the whole burst's wall clock vs the no-fault run.
* ``degraded_throughput`` — throughput while the breaker is forced open
  (every batch on the degraded fallback path) vs the primary path, i.e.
  the price of staying available instead of failing.

Run with ``PYTHONPATH=src python -m pytest benchmarks/bench_resilience.py -q -s``.
"""

from __future__ import annotations

import asyncio
import time

import numpy as np
import pytest

from repro.faults import FaultPlan
from repro.service import DecodeService, ResilienceConfig, default_registry
from repro.service.demo import generate_llr_frames

CODEC = ("ldpc", 576, "1/2")
MAX_BATCH = 64
BUDGET_S = 0.005
BURST_FRAMES = 192
EBN0_DB = 2.0
#: Steady-state acceptance: resilient dispatch keeps at least this fraction
#: of clean throughput (measured back-to-back in-process).
MIN_NO_FAULT_RATIO = 0.90
FAST = dict(backoff_base_s=1e-3, backoff_cap_s=5e-3)


@pytest.fixture(scope="module")
def registry():
    return default_registry()


@pytest.fixture(scope="module")
def frames(registry):
    entry = registry.resolve(*CODEC)
    rng = np.random.default_rng(2012)
    llrs, _ = generate_llr_frames(entry, BURST_FRAMES, EBN0_DB, rng)
    return llrs


def _run_burst(frames, *, registry, repeats: int = 3, **service_kwargs):
    """Best-of-``repeats`` saturating burst; returns (fps, last snapshot)."""

    async def scenario():
        async with DecodeService(
            registry=registry,
            max_batch=MAX_BATCH,
            max_delay_s=BUDGET_S,
            queue_capacity=2 * BURST_FRAMES,
            **service_kwargs,
        ) as service:
            warmup = frames[:2]
            await asyncio.gather(*(service.submit(row, *CODEC) for row in warmup))
            timed = frames[2:]
            start = time.perf_counter()
            responses = await asyncio.gather(
                *(service.submit(row, *CODEC) for row in timed)
            )
            elapsed = time.perf_counter() - start
            assert len(responses) == len(timed)
            return len(timed) / elapsed, service.metrics_snapshot()

    best_fps, best_snap = 0.0, None
    for _ in range(repeats):
        fps, snap = asyncio.run(scenario())
        if fps > best_fps:
            best_fps, best_snap = fps, snap
    return best_fps, best_snap


@pytest.mark.benchmark(group="resilience")
def test_resilience_no_fault_overhead(
    registry, frames, benchmark, bench_print, bench_json
):
    """Steady state: the resilience layer must cost < 10% throughput."""
    # The clean reference is the same service/executor stack as recorded in
    # BENCH_decode_service.json (thread executor, same burst); re-measured
    # here so the ratio is immune to host drift.  Measurements interleave
    # (A, B, A, B, ...) because back-to-back blocks see different host
    # states; best-of-each then cancels the drift.
    resilient_fps, resilient_snap, reference_fps = 0.0, None, 0.0
    for _ in range(4):
        fps, snap = _run_burst(
            frames, registry=registry, executor="thread", repeats=1,
            resilience=ResilienceConfig(),
        )
        if fps > resilient_fps:
            resilient_fps, resilient_snap = fps, snap
        fps, _ = _run_burst(
            frames, registry=registry, executor="thread", repeats=1
        )
        reference_fps = max(reference_fps, fps)
    ratio = resilient_fps / reference_fps
    bench_json(
        "resilience",
        "no_fault_overhead",
        {
            "codec": ":".join(str(part) for part in CODEC),
            "max_batch": MAX_BATCH,
            "burst_frames": BURST_FRAMES,
            "resilient_fps": round(resilient_fps, 1),
            "reference_fps": round(reference_fps, 1),
            "overhead_ratio": round(ratio, 4),
            "retries": resilient_snap.retries,
            "breaker_state": resilient_snap.breaker_state,
        },
    )
    bench_print(
        f"resilience no-fault overhead (n=576 LDPC, max_batch={MAX_BATCH}):\n"
        f"  resilient dispatch {resilient_fps:8.1f} frames/s\n"
        f"  clean reference    {reference_fps:8.1f} frames/s "
        f"(ratio {ratio:.3f})"
    )

    def run_resilient():
        _run_burst(
            frames, registry=registry, executor="thread", repeats=1,
            resilience=ResilienceConfig(),
        )

    benchmark(run_resilient)
    assert resilient_snap.retries == 0  # no faults => no retries
    assert ratio >= MIN_NO_FAULT_RATIO


@pytest.mark.benchmark(group="resilience")
def test_resilience_crash_recovery_time(
    registry, frames, benchmark, bench_print, bench_json
):
    """A pool-worker death mid-burst: measure rebuild + re-dispatch cost."""

    async def crashed_burst():
        async with DecodeService(
            registry=registry,
            max_batch=MAX_BATCH,
            max_delay_s=BUDGET_S,
            queue_capacity=2 * BURST_FRAMES,
            executor="process",
            shards=2,
            fault_plan=FaultPlan.from_string("crash@2"),
            resilience=ResilienceConfig(max_attempts=4, **FAST),
        ) as service:
            start = time.perf_counter()
            responses = await asyncio.gather(
                *(service.submit(row, *CODEC) for row in frames)
            )
            elapsed = time.perf_counter() - start
            assert len(responses) == len(frames)
            # Recovery time: the crashed batch's own end-to-end decode span
            # (dispatch into the doomed pool -> bits from the rebuilt one).
            crashed = max(
                (r for r in responses if r.attempts > 1),
                key=lambda r: r.decode_s,
                default=None,
            )
            return elapsed, crashed, service.metrics_snapshot()

    elapsed, crashed, snap = asyncio.run(crashed_burst())
    clean_fps, _ = _run_burst(
        frames, registry=registry, executor="process", shards=2, repeats=2,
        resilience=ResilienceConfig(max_attempts=4, **FAST),
    )
    crashed_fps = len(frames) / elapsed
    assert crashed is not None  # the fault did land on a dispatched batch
    assert snap.pool_rebuilds >= 1
    bench_json(
        "resilience",
        "crash_recovery",
        {
            "codec": ":".join(str(part) for part in CODEC),
            "shards": 2,
            "burst_frames": BURST_FRAMES,
            "recovery_s": round(crashed.decode_s, 4),
            "crashed_burst_fps": round(crashed_fps, 1),
            "clean_burst_fps": round(clean_fps, 1),
            "crash_slowdown_ratio": round(crashed_fps / clean_fps, 4),
            "pool_rebuilds": snap.pool_rebuilds,
            "retries": snap.retries,
        },
    )
    bench_print(
        f"resilience crash recovery (2-shard pool, crash on dispatch 2):\n"
        f"  recovery (crash -> decoded bits) {1e3 * crashed.decode_s:8.1f} ms\n"
        f"  burst with crash   {crashed_fps:8.1f} frames/s\n"
        f"  burst clean        {clean_fps:8.1f} frames/s "
        f"({crashed_fps / clean_fps:.2f}x)"
    )

    def run_crashed():
        asyncio.run(crashed_burst())

    benchmark(run_crashed)


@pytest.mark.benchmark(group="resilience")
def test_resilience_degraded_throughput(
    registry, frames, benchmark, bench_print, bench_json
):
    """Breaker open: the degraded path's availability has a measurable price."""
    # Crash the first `breaker_failures` dispatches so the breaker opens
    # immediately; with a long reset dwell the whole burst runs degraded.
    degraded_fps, degraded_snap = _run_burst(
        frames, registry=registry, executor="thread", repeats=2,
        fault_plan=FaultPlan.from_string("crash@1,crash@2"),
        resilience=ResilienceConfig(
            max_attempts=6, breaker_failures=2, breaker_reset_s=60.0, **FAST
        ),
    )
    primary_fps, _ = _run_burst(frames, registry=registry, executor="thread")
    assert degraded_snap.degraded_batches >= 1
    assert degraded_snap.breaker_opens >= 1
    bench_json(
        "resilience",
        "degraded_throughput",
        {
            "codec": ":".join(str(part) for part in CODEC),
            "max_batch": MAX_BATCH,
            "degraded_path": "inline",
            "degraded_fps": round(degraded_fps, 1),
            "primary_fps": round(primary_fps, 1),
            "degraded_ratio": round(degraded_fps / primary_fps, 4),
            "degraded_batches": degraded_snap.degraded_batches,
            "breaker_opens": degraded_snap.breaker_opens,
        },
    )
    bench_print(
        f"resilience degraded mode (thread primary -> inline fallback):\n"
        f"  degraded (breaker open) {degraded_fps:8.1f} frames/s\n"
        f"  primary  (breaker closed) {primary_fps:6.1f} frames/s "
        f"({degraded_fps / primary_fps:.2f}x)"
    )

    def run_degraded():
        _run_burst(
            frames, registry=registry, executor="thread", repeats=1,
            fault_plan=FaultPlan.from_string("crash@1,crash@2"),
            resilience=ResilienceConfig(
                max_attempts=6, breaker_failures=2, breaker_reset_s=60.0, **FAST
            ),
        )

    benchmark(run_degraded)
    # Degraded must stay *available* (every request answered above) and
    # within the same order of magnitude — it is a fallback, not a cliff.
    assert degraded_fps >= 0.2 * primary_fps

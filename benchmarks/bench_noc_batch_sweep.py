"""Benchmark: job-batched NoC sweep scheduler vs the PR 3 scalar engine path.

The paper's design-space exploration evaluates each (topology, P, routing,
collision-policy) cell of Table I / the Section III-A ablation; a Monte-Carlo
robustness pass evaluates every cell under J independent traffic streams
(:func:`repro.noc.traffic.random_traffic_streams`).  PR 3 ran those J points
strictly sequentially through the scalar struct-of-arrays engine; the PR 4
scheduler (:func:`repro.noc.sweep.run_noc_sweep`) groups the J points of each
cell and advances them in lockstep through the job-batched cycle kernel
(:class:`repro.noc.engine_batch.BatchedNocKernel`).

This bench measures sweep-points/sec of both paths over the Table-I workload
grid (generalized Kautz D=3 at the paper's parallelism degrees, all three
routing algorithms, both collision policies, one LDPC iteration of traffic
per PE) at several batch sizes, asserts the two paths agree cycle-exactly per
job, and records the numbers in ``benchmarks/BENCH_noc_batch_sweep.json``.

Reading the recorded numbers: batching wins grow with the batch size J and
are largest for DCM cells (pure vector path); SCM cells also pay for the
per-job deflection-draw replay, which PR 5 vectorized across jobs
(:meth:`repro.utils.rng.DeflectionStreams.draw_batch` + the kernel's resume
rounds), so their single-core ratio now clears 1.5x at J = 256 instead of
losing to the scalar engine.  Small batches dispatch through the adaptive
scheduler's measured cost model, which routes them to the scalar engine —
the J = 8 row records parity, not the former 0.6x regression.  The
scheduler's ``parallel="process"`` mode multiplies the serial ratio by the
worker count on multi-core hosts (and quietly stays serial at one worker);
its row records the workers used.
"""

from __future__ import annotations

import os
import time

import pytest

from repro.noc import (
    BatchNocSimulator,
    CollisionPolicy,
    NocConfiguration,
    NocSweepJob,
    ReferenceNocSimulator,
    RoutingAlgorithm,
    build_routing_tables,
    build_topology,
    run_noc_sweep,
)
from repro.noc.traffic import random_traffic_streams

from benchmarks.conftest import full_benchmarks_enabled

#: (parallelism, degree, messages per PE) — message counts sized like the
#: n=2304 rate-1/2 WiMAX LDPC code partitioned over P PEs (~2304/P each).
SWEEP_SCALES = [(16, 3, 144), (22, 3, 105)]
TIMING_REPEATS = 2


def _batch_sizes() -> list[int]:
    return [8, 64, 256] if full_benchmarks_enabled() else [8, 32]


def _build_jobs(batch: int) -> list[NocSweepJob]:
    """One Monte-Carlo group of ``batch`` traffic streams per Table-I cell."""
    jobs = []
    for parallelism, degree, messages in SWEEP_SCALES:
        for algorithm in RoutingAlgorithm:
            for policy in CollisionPolicy:
                config = NocConfiguration(collision_policy=policy).with_routing(algorithm)
                streams = random_traffic_streams(
                    parallelism, messages, seed=100 + parallelism, count=batch
                )
                jobs.extend(
                    NocSweepJob(
                        family="generalized-kautz",
                        parallelism=parallelism,
                        degree=degree,
                        config=config,
                        traffic=traffic,
                        seed=stream,
                    )
                    for stream, traffic in enumerate(streams)
                )
    return jobs


def _run_pr3_engine(jobs: list[NocSweepJob]):
    """The PR 3 sweep path: shared graphs and engines, jobs strictly serial."""
    cache: dict = {}
    engines: dict = {}
    results = []
    for job in jobs:
        key = (job.family, job.parallelism, job.degree)
        if key not in cache:
            topology = build_topology(job.family, job.parallelism, job.degree)
            cache[key] = (topology, build_routing_tables(topology))
        topology, tables = cache[key]
        engine_key = (key, job.config, job.max_cycles)
        engine = engines.get(engine_key)
        if engine is None:
            engine = BatchNocSimulator(
                topology, job.config, routing_tables=tables, max_cycles=job.max_cycles
            )
            engines[engine_key] = engine
        results.append(engine.run(job.traffic, seed=job.seed))
    return results


def _best_time(fn, repeats: int = TIMING_REPEATS):
    """(best wall time, last result) over a few repeats — robust to CI noise."""
    best = float("inf")
    result = None
    for _ in range(repeats):
        start = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - start)
    return best, result


def _signature(result):
    return (
        result.ncycles,
        result.delivered_messages,
        result.local_bypassed,
        tuple(result.per_node_max_fifo),
        result.max_injection_occupancy,
        result.statistics.total_hops,
        result.statistics.total_latency,
        result.statistics.misrouted,
    )


def _assert_identical(jobs, pr3_results, outcomes):
    by_job = {id(outcome.job): outcome.result for outcome in outcomes}
    for job, ref in zip(jobs, pr3_results):
        assert _signature(by_job[id(job)]) == _signature(ref)


@pytest.mark.benchmark(group="noc-batch-sweep")
def test_batched_sweep_throughput(benchmark, bench_print, bench_json):
    """Scheduler vs PR 3 engine over the Table-I grid at several batch sizes."""
    per_batch: dict[str, dict] = {}
    lines = ["Job-batched NoC sweep vs PR 3 scalar engine (kautz D=3, best of "
             f"{TIMING_REPEATS}):"]

    # Calibrate the scheduler's cost model up front so its one-time probe
    # stays out of every timed region.
    from repro.noc import scheduler_cost_model

    scheduler_cost_model()

    def run_sizes():
        largest = _batch_sizes()[-1]
        for batch in _batch_sizes():
            jobs = _build_jobs(batch)
            pr3_s, pr3_results = _best_time(lambda: _run_pr3_engine(jobs))
            sched_s, outcomes = _best_time(lambda: run_noc_sweep(jobs))
            _assert_identical(jobs, pr3_results, outcomes)
            entry = {
                "jobs": len(jobs),
                "pr3_points_per_sec": round(len(jobs) / pr3_s, 2),
                "batched_points_per_sec": round(len(jobs) / sched_s, 2),
                "overall_speedup": round(pr3_s / sched_s, 3),
            }
            if batch == largest:
                # Per-policy split only at the largest batch (the headline):
                # DCM cells run the pure vector path, SCM cells also fund the
                # job-vectorized deflection-draw replay.
                for policy in CollisionPolicy:
                    sub = [j for j in jobs if j.config.collision_policy is policy]
                    pr3_p, _ = _best_time(lambda: _run_pr3_engine(sub))
                    sched_p, _ = _best_time(lambda: run_noc_sweep(sub))
                    entry[f"{policy.value.lower()}_speedup"] = round(pr3_p / sched_p, 3)
            per_batch[str(batch)] = entry
            split = ", ".join(
                f"{p.value} {entry[f'{p.value.lower()}_speedup']:.2f}x"
                for p in CollisionPolicy
                if f"{p.value.lower()}_speedup" in entry
            )
            lines.append(
                f"  J={batch:4d}: {entry['pr3_points_per_sec']:8.1f} -> "
                f"{entry['batched_points_per_sec']:8.1f} pts/s "
                f"(overall {entry['overall_speedup']:.2f}x{', ' + split if split else ''})"
            )
        return per_batch

    benchmark.pedantic(run_sizes, rounds=1, iterations=1)
    bench_print("\n".join(lines))

    largest = per_batch[str(_batch_sizes()[-1])]
    bench_json(
        "noc_batch_sweep",
        "sweep_points_per_sec",
        {
            "grid": {
                "scales": SWEEP_SCALES,
                "algorithms": [a.value for a in RoutingAlgorithm],
                "policies": [p.value for p in CollisionPolicy],
            },
            "batch_sizes": per_batch,
            "best_dcm_speedup": max(
                e.get("dcm_speedup", 0.0) for e in per_batch.values()
            ),
            "best_overall_speedup": max(e["overall_speedup"] for e in per_batch.values()),
            "timing_repeats": TIMING_REPEATS,
        },
    )

    # Perf floors run on developer machines only: shared CI runners measure
    # the reduced J=32 grid under unpredictable neighbour load, where the
    # ratios have no recorded headroom — CI records the JSON (and still
    # enforces cycle-exactness above) without gating on wall-clock ratios.
    # The floors are the PR 5 acceptance bars: DCM ~2x, SCM >= 1.5x and
    # overall >= 1.8x at the largest batch, and no small-batch regression
    # (adaptive dispatch routes J=8 groups to the scalar engine).
    if not os.environ.get("CI"):
        if full_benchmarks_enabled():
            # The acceptance bars only apply at the full grid's J=256; the
            # reduced grid tops out at J=32, barely past the SCM crossover.
            assert largest["dcm_speedup"] >= 1.8, (
                f"DCM batched sweep regressed to {largest['dcm_speedup']}x"
            )
            assert largest["scm_speedup"] >= 1.5, (
                f"SCM batched sweep regressed to {largest['scm_speedup']}x"
            )
            assert largest["overall_speedup"] >= 1.8, (
                f"batched sweep slower than required: {largest['overall_speedup']}x"
            )
        else:
            assert largest["dcm_speedup"] >= 1.25, (
                f"DCM batched sweep regressed to {largest['dcm_speedup']}x"
            )
            # J=32 sits right at the SCM crossover, where either dispatch is
            # within noise of parity: guard against regressions, not noise.
            assert largest["overall_speedup"] >= 0.95, (
                f"batched sweep slower than the PR 3 engine: "
                f"{largest['overall_speedup']}x"
            )
        assert per_batch["8"]["overall_speedup"] >= 0.95, (
            f"adaptive dispatch regressed at J=8: {per_batch['8']['overall_speedup']}x"
        )


@pytest.mark.benchmark(group="noc-batch-sweep")
def test_parallel_process_mode(benchmark, bench_print, bench_json):
    """parallel="process" must be bit-identical; its speedup scales with
    workers — and at one worker the scheduler dispatches serially with no
    executor at all, so the row records ~1.0x instead of PR 4's 0.84x pool
    penalty."""
    batch = _batch_sizes()[-1] // 2 or 4
    jobs = _build_jobs(batch)
    serial_s, serial_outcomes = _best_time(lambda: run_noc_sweep(jobs), repeats=1)
    workers = os.cpu_count() or 1

    def run_parallel():
        return run_noc_sweep(jobs, parallel="process", max_workers=workers)

    parallel_s, parallel_outcomes = benchmark.pedantic(
        lambda: _best_time(run_parallel, repeats=1), rounds=1, iterations=1
    )
    by_job = {id(o.job): o.result for o in serial_outcomes}
    for outcome in parallel_outcomes:
        assert _signature(outcome.result) == _signature(by_job[id(outcome.job)])

    bench_print(
        f"process-parallel sweep ({workers} worker(s), J={batch}): "
        f"{len(jobs) / serial_s:.1f} -> {len(jobs) / parallel_s:.1f} pts/s "
        f"({serial_s / parallel_s:.2f}x vs serial scheduler)"
    )
    bench_json(
        "noc_batch_sweep",
        "parallel_process",
        {
            "workers": workers,
            "batch": batch,
            "jobs": len(jobs),
            "serial_points_per_sec": round(len(jobs) / serial_s, 2),
            "parallel_points_per_sec": round(len(jobs) / parallel_s, 2),
            "speedup_vs_serial_scheduler": round(serial_s / parallel_s, 3),
        },
    )
    if not os.environ.get("CI") and workers == 1:
        # Degenerate-case guard: one worker must cost (almost) nothing.
        assert serial_s / parallel_s >= 0.9, (
            f"workers=1 process dispatch regressed: {serial_s / parallel_s:.2f}x"
        )


@pytest.mark.benchmark(group="noc-batch-sweep")
def test_scm_batched_smoke(benchmark, bench_print, bench_json):
    """CI smoke: force an SCM-policy group through the batched kernel.

    The main sweep smoke lets the adaptive scheduler pick engines, which on a
    loaded CI runner can route everything scalar — this step pins the SCM
    *batched* path (vectorized deflection replay included) cycle-exact
    against per-job scalar runs on every CI run.
    """
    parallelism, degree, messages = SWEEP_SCALES[0]
    batch = 12
    policy_jobs = []
    for algorithm in RoutingAlgorithm:
        config = NocConfiguration(
            collision_policy=CollisionPolicy.SCM
        ).with_routing(algorithm)
        streams = random_traffic_streams(parallelism, 40, seed=9, count=batch)
        policy_jobs.extend(
            NocSweepJob(
                family="generalized-kautz",
                parallelism=parallelism,
                degree=degree,
                config=config,
                traffic=traffic,
                seed=stream,
            )
            for stream, traffic in enumerate(streams)
        )
    pr3_results = _run_pr3_engine(policy_jobs)
    outcomes = benchmark.pedantic(
        lambda: run_noc_sweep(policy_jobs, min_batch=2), rounds=1, iterations=1
    )
    _assert_identical(policy_jobs, pr3_results, outcomes)
    misrouted = sum(o.result.statistics.misrouted for o in outcomes)
    assert misrouted > 0, "SCM smoke drew no deflections — not exercising the replay"
    bench_print(
        f"SCM batched smoke: {len(policy_jobs)} jobs cycle-exact, "
        f"{misrouted} deflections replayed"
    )
    bench_json(
        "noc_batch_sweep",
        "scm_smoke",
        {"jobs": len(policy_jobs), "misrouted": misrouted},
    )


@pytest.mark.benchmark(group="noc-batch-sweep")
def test_batched_vs_object_reference(benchmark, bench_print, bench_json):
    """Context row: the batched path vs the pre-engine object simulator."""
    parallelism, degree, messages = SWEEP_SCALES[0]
    batch = 16
    config = NocConfiguration().with_routing(RoutingAlgorithm.SSP_FL)
    streams = random_traffic_streams(parallelism, messages, seed=5, count=batch)
    jobs = [
        NocSweepJob(
            family="generalized-kautz",
            parallelism=parallelism,
            degree=degree,
            config=config,
            traffic=traffic,
            seed=stream,
        )
        for stream, traffic in enumerate(streams)
    ]
    topology = build_topology("generalized-kautz", parallelism, degree)
    tables = build_routing_tables(topology)

    def run_reference():
        return [
            ReferenceNocSimulator(
                topology, config, routing_tables=tables, seed=job.seed
            ).run(job.traffic)
            for job in jobs
        ]

    reference_s, reference_results = _best_time(run_reference, repeats=1)
    batched_s, outcomes = benchmark.pedantic(
        lambda: _best_time(lambda: run_noc_sweep(jobs)), rounds=1, iterations=1
    )
    _assert_identical(jobs, reference_results, outcomes)
    speedup = reference_s / batched_s
    bench_print(
        f"batched sweep vs object reference simulator (J={batch}, SSP-FL SCM): "
        f"{speedup:.1f}x"
    )
    bench_json(
        "noc_batch_sweep",
        "vs_object_reference",
        {"batch": batch, "speedup": round(speedup, 2)},
    )
    if not os.environ.get("CI"):
        assert speedup >= 3.0, f"vs-reference speedup regressed to {speedup:.2f}x"

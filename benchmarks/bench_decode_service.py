"""Benchmark: decode service vs per-frame decoding across offered loads.

The service's reason to exist is dynamic batching: many concurrent clients
each hold *one* frame, and answering each with a dedicated batch=1 decode
forfeits the batch engines' amortisation.  This bench drives the service at
three offered loads and compares against the per-frame baseline (a direct
``decode_batch(llrs[None])`` per request — what each client would do
without the service):

* ``trickle``   — one client, closed loop: every request pays the full
  latency budget waiting for batch mates that never arrive (the worst case
  for the service, reported for honesty);
* ``saturating``— a burst of concurrent clients deep enough to keep full
  batches forming (the design point; acceptance: >= 5x the per-frame
  baseline with the p99 *queueing* delay inside the latency budget);
* ``saturating_sharded`` — same burst through the process-shard executor.

Queueing delay (``queued_s``: enqueue -> dispatch) is the quantity the
latency budget governs; end-to-end latency additionally includes the decode
itself and any executor backlog and is recorded alongside.

Run with ``PYTHONPATH=src python -m pytest benchmarks/bench_decode_service.py -q -s``.
"""

from __future__ import annotations

import asyncio
import time

import numpy as np
import pytest

from repro.service import DecodeService, default_registry
from repro.service.demo import generate_llr_frames

CODEC = ("ldpc", 576, "1/2")
MAX_BATCH = 64
BUDGET_S = 0.005
#: Scheduler jitter allowance on top of the budget for the p99 assertion
#: (CI runners stall event loops for tens of milliseconds at a time).
BUDGET_SLACK_S = 0.050
BURST_FRAMES = 192
TRICKLE_FRAMES = 8
BASELINE_FRAMES = 12
EBN0_DB = 2.0


@pytest.fixture(scope="module")
def registry():
    return default_registry()


@pytest.fixture(scope="module")
def frames(registry):
    entry = registry.resolve(*CODEC)
    rng = np.random.default_rng(2012)
    llrs, _ = generate_llr_frames(entry, BURST_FRAMES, EBN0_DB, rng)
    return llrs


def _per_frame_fps(registry, frames) -> float:
    """Baseline: each request decoded alone, batch=1, best of 2 passes."""
    entry = registry.resolve(*CODEC)
    best = float("inf")
    for _ in range(2):
        start = time.perf_counter()
        for row in frames[:BASELINE_FRAMES]:
            entry.decoder.decode_batch(row[None])
        best = min(best, time.perf_counter() - start)
    return BASELINE_FRAMES / best


async def _drive(service: DecodeService, frames, concurrent: bool):
    """Submit every frame (as a burst or a closed loop); return (fps, snapshot)."""
    warmup = frames[:2]
    await asyncio.gather(*(service.submit(row, *CODEC) for row in warmup))
    timed = frames[2:]
    start = time.perf_counter()
    if concurrent:
        responses = await asyncio.gather(
            *(service.submit(row, *CODEC) for row in timed)
        )
    else:
        responses = [await service.submit(row, *CODEC) for row in timed]
    elapsed = time.perf_counter() - start
    assert len(responses) == len(timed)
    return len(timed) / elapsed, service.metrics_snapshot()


def _run_service(frames, *, concurrent: bool, registry, **service_kwargs):
    async def scenario():
        async with DecodeService(
            registry=registry,
            max_batch=MAX_BATCH,
            max_delay_s=BUDGET_S,
            queue_capacity=2 * BURST_FRAMES,
            **service_kwargs,
        ) as service:
            return await _drive(service, frames, concurrent)

    return asyncio.run(scenario())


def _row(label, fps, baseline_fps, snapshot):
    return {
        "offered_load": label,
        "throughput_fps": round(fps, 1),
        "speedup_vs_per_frame": round(fps / baseline_fps, 2),
        "queue_p50_ms": round(1e3 * snapshot.queue_p50_s, 3),
        "queue_p99_ms": round(1e3 * snapshot.queue_p99_s, 3),
        "total_p50_ms": round(1e3 * snapshot.total_p50_s, 3),
        "total_p99_ms": round(1e3 * snapshot.total_p99_s, 3),
        "mean_batch_size": round(snapshot.mean_batch_size, 2),
    }


@pytest.mark.benchmark(group="decode-service")
def test_decode_service_throughput_vs_per_frame(
    registry, frames, benchmark, bench_print, bench_json
):
    """Saturating load must beat per-frame >= 5x inside the latency budget."""
    baseline_fps = _per_frame_fps(registry, frames)

    trickle_fps, trickle_snap = _run_service(
        frames[:TRICKLE_FRAMES + 2], concurrent=False, registry=registry,
        executor="thread",
    )
    burst_fps, burst_snap = _run_service(
        frames, concurrent=True, registry=registry, executor="thread",
    )

    rows = {
        "per_frame_baseline": {
            "offered_load": "per_frame_baseline",
            "throughput_fps": round(baseline_fps, 1),
            "speedup_vs_per_frame": 1.0,
        },
        "trickle": _row("trickle", trickle_fps, baseline_fps, trickle_snap),
        "saturating": _row("saturating", burst_fps, baseline_fps, burst_snap),
    }
    bench_json(
        "decode_service",
        "offered_loads",
        {
            "codec": ":".join(str(part) for part in CODEC),
            "max_batch": MAX_BATCH,
            "latency_budget_ms": 1e3 * BUDGET_S,
            "burst_frames": BURST_FRAMES,
            "rows": rows,
        },
    )
    bench_print(
        f"decode service (n=576 LDPC, max_batch={MAX_BATCH}, "
        f"budget {1e3 * BUDGET_S:.0f} ms):\n"
        f"  per-frame baseline {baseline_fps:8.1f} frames/s\n"
        f"  trickle            {trickle_fps:8.1f} frames/s "
        f"(queued p99 {1e3 * trickle_snap.queue_p99_s:6.2f} ms)\n"
        f"  saturating         {burst_fps:8.1f} frames/s "
        f"(queued p99 {1e3 * burst_snap.queue_p99_s:6.2f} ms, "
        f"speedup {burst_fps / baseline_fps:5.1f}x)"
    )

    def run_burst():
        _run_service(frames, concurrent=True, registry=registry, executor="thread")

    benchmark(run_burst)
    # Acceptance: >= 5x per-frame at saturating load, p99 queueing delay
    # within the latency budget (plus scheduler slack).
    assert burst_fps >= 5.0 * baseline_fps
    assert burst_snap.queue_p99_s <= BUDGET_S + BUDGET_SLACK_S


@pytest.mark.benchmark(group="decode-service")
def test_decode_service_sharded_throughput(
    registry, frames, benchmark, bench_print, bench_json
):
    """Process-shard mode sustains the speedup target at saturating load."""
    baseline_fps = _per_frame_fps(registry, frames)
    sharded_fps, sharded_snap = _run_service(
        frames, concurrent=True, registry=registry, executor="process", shards=2,
    )
    bench_json(
        "decode_service",
        "saturating_sharded",
        {
            "codec": ":".join(str(part) for part in CODEC),
            "shards": 2,
            **_row("saturating_sharded", sharded_fps, baseline_fps, sharded_snap),
        },
    )
    bench_print(
        f"  sharded (2 proc)   {sharded_fps:8.1f} frames/s "
        f"(queued p99 {1e3 * sharded_snap.queue_p99_s:6.2f} ms, "
        f"speedup {sharded_fps / baseline_fps:5.1f}x)"
    )

    def run_sharded():
        _run_service(
            frames, concurrent=True, registry=registry, executor="process", shards=2
        )

    benchmark(run_sharded)
    assert sharded_fps >= 5.0 * baseline_fps
    assert sharded_snap.queue_p99_s <= BUDGET_S + BUDGET_SLACK_S

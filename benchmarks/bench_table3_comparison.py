"""Benchmark regenerating paper Table III.

Compares the modelled WiMAX decoder (area, power, throughput, technology-
normalised area) against the published figures of the flexible turbo/LDPC
decoders the paper cites, and checks the paper's Section-V breakdown claims
(shared memories ~61.8 % of the core, NoC ~20 % of the total area, turbo-mode
power far below LDPC-mode power).
"""

from __future__ import annotations

import pytest

from repro import DecoderSpec, NocDecoderArchitecture, wimax_ldpc_code
from repro.analysis import build_table3
from repro.analysis.reference import PAPER_CORE_BREAKDOWN, PAPER_TABLE3
from repro.hw.technology import scale_area


def _evaluate_this_work():
    decoder = NocDecoderArchitecture(DecoderSpec(mapping_attempts=2))
    ldpc = decoder.evaluate_ldpc(wimax_ldpc_code(2304, "1/2"))
    turbo = decoder.evaluate_turbo(2400)
    return ldpc, turbo


@pytest.mark.benchmark(group="table3")
def test_table3_state_of_the_art_comparison(benchmark, bench_print, bench_json):
    """Regenerate Table III with the reproduction model in the 'this work' row."""
    ldpc, turbo = benchmark.pedantic(_evaluate_this_work, rounds=1, iterations=1)
    bench_print(build_table3(ldpc, turbo).render())

    area = ldpc.area
    normalized = scale_area(area.total_mm2, 90.0, 65.0)
    bench_json(
        "table3",
        "this_work_model",
        {
            "core_area_mm2": round(area.core_mm2, 3),
            "total_area_mm2": round(area.total_mm2, 3),
            "area_at_65nm_mm2": round(normalized, 3),
            "memory_share": round(area.memory_share, 4),
            "noc_share": round(area.noc_share, 4),
            "ldpc_power_mw": round(ldpc.power.total_mw, 1),
            "turbo_power_mw": round(turbo.power.total_mw, 1),
            "ldpc_throughput_mbps": round(ldpc.throughput_mbps, 2),
            "turbo_throughput_mbps": round(turbo.throughput_mbps, 2),
        },
    )
    paper_row = PAPER_TABLE3[0]
    summary = [
        "Breakdown / claim checks (paper Section V):",
        f"  core area        : model {area.core_mm2:.2f} mm^2 vs paper {paper_row.core_area_mm2:.2f} mm^2",
        f"  total area       : model {area.total_mm2:.2f} mm^2 vs paper {paper_row.total_area_mm2:.2f} mm^2",
        f"  area @ 65 nm     : model {normalized:.2f} mm^2 vs paper {paper_row.normalized_area_mm2:.2f} mm^2",
        f"  memories / core  : model {area.memory_share:.1%} vs paper "
        f"{PAPER_CORE_BREAKDOWN['memories_share']:.1%}",
        f"  NoC / total      : model {area.noc_share:.1%} vs paper "
        f"~{PAPER_CORE_BREAKDOWN['noc_share_of_total']:.0%}",
        f"  LDPC-mode power  : model {ldpc.power.total_mw:.0f} mW vs paper {paper_row.power_mw:.0f} mW",
        f"  turbo-mode power : model {turbo.power.total_mw:.0f} mW vs paper 59 mW",
        f"  LDPC throughput  : model {ldpc.throughput_mbps:.2f} Mb/s vs paper "
        f"{paper_row.ldpc_throughput_mbps:.2f} Mb/s (worst case)",
        f"  turbo throughput : model {turbo.throughput_mbps:.2f} Mb/s vs paper "
        f"{paper_row.turbo_throughput_mbps:.2f} Mb/s (worst case)",
    ]
    bench_print("\n".join(summary))

    # Reproduction criteria: breakdown structure and mode ordering, not exact mm^2/mW.
    assert area.total_mm2 == pytest.approx(paper_row.total_area_mm2, rel=0.25)
    assert area.memory_share > 0.5
    assert 0.05 <= area.noc_share <= 0.35
    assert turbo.power.total_mw < 0.5 * ldpc.power.total_mw
    assert turbo.throughput_mbps >= 70.0


@pytest.mark.benchmark(group="table3")
def test_table3_competitor_ranking(benchmark, bench_print):
    """Check the comparative claims the paper draws from Table III."""
    ldpc, turbo = benchmark.pedantic(_evaluate_this_work, rounds=1, iterations=1)

    by_label = {row.label: row for row in PAPER_TABLE3}
    flexichap = by_label["FlexiChaP (Alles et al.) [5]"]
    gentile = by_label["Gentile et al. [7]"]
    murugappa = by_label["Murugappa et al. [9]"]

    lines = ["Comparative claims:"]
    # [5] does not reach the WiMAX throughput requirement.
    claim_5 = flexichap.ldpc_throughput_mbps < 70 and flexichap.turbo_throughput_mbps < 70
    lines.append(f"  [{'PASS' if claim_5 else 'FAIL'}] [5] stays below the 70 Mb/s WiMAX requirement")
    # Our normalised area is smaller than [7]'s normalised area.
    ours_normalized = scale_area(ldpc.area.total_mm2, 90.0, 65.0)
    claim_7 = ours_normalized < gentile.normalized_area_mm2 * 1.05
    lines.append(
        f"  [{'PASS' if claim_7 else 'FAIL'}] normalised area {ours_normalized:.2f} mm^2 "
        f"comparable to or below [7] ({gentile.normalized_area_mm2:.2f} mm^2)"
    )
    # [9] is below the LDPC worst-case requirement while this work is not (turbo mode here).
    claim_9 = murugappa.ldpc_throughput_mbps < 70 <= turbo.throughput_mbps
    lines.append(
        f"  [{'PASS' if claim_9 else 'FAIL'}] [9] LDPC worst case below 70 Mb/s while this work's "
        "turbo worst case is above"
    )
    bench_print("\n".join(lines))

    assert claim_5 and claim_9

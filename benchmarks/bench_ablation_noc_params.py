"""Ablation bench: the NoC simulation parameters the paper's flow exposes.

Section III-A defines the knobs of the design flow — PE output rate R, local
message routing RL, collision management DCM/SCM, routing algorithm and node
architecture.  This bench sweeps each knob around the WiMAX design point and
prints its effect on ncycles / throughput / FIFO sizing, reproducing the
sensitivity discussion that justifies the paper's chosen configuration
(RL = 0, SCM, R = 0.5, SSP-FL).

All points run through the sweep scheduler
(:func:`repro.noc.sweep.run_noc_sweep`), seeded with the decoder's already
built topology and routing tables so nothing is recomputed per knob; rows are
matched to their configurations through each outcome's attached job rather
than input ordering.
"""

from __future__ import annotations

from dataclasses import replace

import pytest

from repro import DecoderSpec, NocDecoderArchitecture, wimax_ldpc_code
from repro.core.throughput import ldpc_throughput_bps
from repro.noc import CollisionPolicy, NocSweepJob, RoutingAlgorithm, run_noc_sweep
from repro.utils import Table


def _sweep(decoder: NocDecoderArchitecture, traffic, configs, seed=0):
    """Run one traffic pattern under many configurations via the scheduler.

    Returns ``{config: result}``, keyed through each outcome's job — callers
    look their configuration up instead of relying on submission order.
    """
    spec = decoder.spec
    key = (spec.topology_family, spec.parallelism, spec.degree)
    cache = {key: (decoder.topology, decoder.routing_tables)}
    jobs = [
        NocSweepJob(
            family=spec.topology_family,
            parallelism=spec.parallelism,
            degree=spec.degree,
            config=config,
            traffic=traffic,
            seed=seed,
        )
        for config in configs
    ]
    outcomes = run_noc_sweep(jobs, topology_cache=cache)
    return {outcome.job.config: outcome.result for outcome in outcomes}


def _throughput(spec: DecoderSpec, code, ncycles: int) -> float:
    return ldpc_throughput_bps(
        code.k,
        spec.ldpc_clock_hz,
        spec.ldpc_max_iterations,
        spec.ldpc_core_latency_cycles,
        ncycles,
    ) / 1e6


@pytest.mark.benchmark(group="ablation")
def test_ablation_injection_rate_and_flags(benchmark, bench_print, bench_json):
    """Sweep R, RL and DCM/SCM at the P=22 Kautz-D3 design point."""
    spec = DecoderSpec(mapping_attempts=2)
    code = wimax_ldpc_code(2304, "1/2")
    decoder = NocDecoderArchitecture(spec)
    mapping = decoder.map_ldpc(code)

    base = spec.noc
    labels_and_configs = [
        *((f"R = {rate}", replace(base, injection_rate=rate)) for rate in (0.25, 0.5, 1.0)),
        *((f"RL = {int(rl)}", replace(base, route_local=rl)) for rl in (False, True)),
        *((policy.value, replace(base, collision_policy=policy))
          for policy in (CollisionPolicy.SCM, CollisionPolicy.DCM)),
    ]

    def run_all():
        by_config = _sweep(decoder, mapping.traffic, [c for _, c in labels_and_configs])
        return [(label, by_config[config]) for label, config in labels_and_configs]

    rows = benchmark.pedantic(run_all, rounds=1, iterations=1)

    table = Table(
        title="Ablation of the NoC simulation parameters (LDPC n=2304 r=1/2, P=22 Kautz D=3, SSP-FL)",
        columns=["configuration", "ncycles", "throughput [Mb/s]", "max FIFO", "mean latency"],
    )
    results = {}
    for label, sim in rows:
        results[label] = sim
        table.add_row(
            [
                label,
                sim.ncycles,
                f"{_throughput(spec, code, sim.ncycles):.1f}",
                sim.max_fifo_occupancy,
                f"{sim.statistics.mean_latency:.1f}",
            ]
        )
    bench_print(table.render())
    bench_json(
        "ablation_noc_params",
        "injection_rate_and_flags",
        {
            label: {
                "ncycles": int(sim.ncycles),
                "throughput_mbps": round(_throughput(spec, code, sim.ncycles), 2),
                "max_fifo": int(sim.max_fifo_occupancy),
            }
            for label, sim in results.items()
        },
    )

    # Expected orderings: higher R never slows the phase down; routing local
    # messages through the network (RL=1) costs cycles; DCM never beats SCM by
    # a large margin at this load.
    assert results["R = 1.0"].ncycles <= results["R = 0.5"].ncycles <= results["R = 0.25"].ncycles
    assert results["RL = 1"].ncycles >= results["RL = 0"].ncycles
    assert results["DCM"].ncycles >= 0.8 * results["SCM"].ncycles


@pytest.mark.benchmark(group="ablation")
def test_ablation_node_architecture_fifo_sizing(benchmark, bench_print, bench_json):
    """AP vs PP: FIFO depth (from simulation) drives the NoC area difference."""
    spec = DecoderSpec(mapping_attempts=2)
    code = wimax_ldpc_code(2304, "1/2")
    decoder = NocDecoderArchitecture(spec)
    mapping = decoder.map_ldpc(code)
    topology = decoder.topology

    algorithms = (RoutingAlgorithm.SSP_RR, RoutingAlgorithm.SSP_FL, RoutingAlgorithm.ASP_FT)

    def run_all():
        from repro.hw.area import NocAreaModel

        area_model = NocAreaModel()
        configs = [spec.noc.with_routing(algorithm) for algorithm in algorithms]
        by_config = _sweep(decoder, mapping.traffic, configs)
        rows = []
        for algorithm, config in zip(algorithms, configs):
            sim = by_config[config]
            area = area_model.noc_area_mm2(
                topology.n_nodes, topology.crossbar_size, config, sim.per_node_max_fifo
            )
            rows.append((algorithm.value, config.node_architecture.value, sim, area))
        return rows

    rows = benchmark.pedantic(run_all, rounds=1, iterations=1)
    table = Table(
        title="Node architecture ablation (AP vs PP) at the WiMAX design point",
        columns=["routing", "node arch", "ncycles", "max FIFO", "flit bits", "NoC area [mm^2]"],
    )
    areas = {}
    for routing, arch, sim, area in rows:
        areas[arch] = area
        config = DecoderSpec().noc.with_routing(RoutingAlgorithm(routing))
        table.add_row(
            [routing, arch, sim.ncycles, sim.max_fifo_occupancy,
             config.flit_bits(22), f"{area:.2f}"]
        )
    bench_print(table.render())
    bench_json(
        "ablation_noc_params",
        "node_architecture_area",
        {arch: round(area, 3) for arch, area in areas.items()},
    )

    # The AP architecture (no header, capped FIFOs) must yield the smaller NoC.
    assert areas["AP"] <= areas["PP"]

"""Benchmark: batched turbo engine vs the seed per-frame BCJR path.

The turbo twin of ``bench_batch_throughput.py``.  The *baseline* is a
faithful re-implementation of the seed repository's per-frame turbo decoding
(symbol-level BCJR with a Python loop over trellis steps and a
``np.maximum.at`` scatter, one frame at a time); the *contender* is
:class:`repro.sim.turbo_batch.BatchTurboDecoder` at batch 64, whose
alpha/beta/gamma recursions run as dense ``(batch, 8, 4)`` tensor ops per
step.  Early termination is disabled on both sides so the comparison is a
fixed amount of work.  The acceptance target is >= 10x frames/sec.

Run with ``PYTHONPATH=src python -m pytest benchmarks/bench_turbo_batch_throughput.py -q -s``.
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro.channel import AWGNChannel, BPSKModulator, ebn0_to_noise_sigma
from repro.sim import BatchTurboDecoder, resolve_code_rate
from repro.turbo import DuoBinaryTrellis, TurboEncoder

BATCH = 64
MAX_ITERATIONS = 8
EBN0_DB = 1.2
N_COUPLES = 96
#: Frames timed on the (slow) seed baseline; frames/sec extrapolates.
BASELINE_FRAMES = 4

_NEG_INF = -1.0e30


# --------------------------------------------------------------------------- #
# Seed-repository per-frame algorithm (Max-Log-MAP, per-step Python loops).
# --------------------------------------------------------------------------- #
class _SeedTurboDecoder:
    """The seed per-frame turbo decode loop (max-log, symbol-level exchange)."""

    def __init__(self, encoder: TurboEncoder, max_iterations: int):
        trellis = DuoBinaryTrellis()
        self._next_state = trellis.next_state_table()
        self._parity = trellis.parity_table()
        symbols = np.arange(4)
        self._sym_a = (symbols >> 1) & 1
        self._sym_b = symbols & 1
        self._perm = encoder.interleaver.permutation()
        self._flags = encoder.interleaver.swap_flags().astype(bool)
        self.max_iterations = max_iterations

    def _bcjr(self, sys_llrs, par_llrs, apriori, init_alpha, init_beta):
        n = sys_llrs.shape[0]
        sys_metric = 0.5 * (
            (1 - 2 * self._sym_a)[None, :] * sys_llrs[:, 0:1]
            + (1 - 2 * self._sym_b)[None, :] * sys_llrs[:, 1:2]
        )
        par_metric = 0.5 * (
            (1 - 2 * self._parity[:, :, 0])[None, :, :] * par_llrs[:, 0][:, None, None]
            + (1 - 2 * self._parity[:, :, 1])[None, :, :] * par_llrs[:, 1][:, None, None]
        )
        gamma = par_metric + sys_metric[:, None, :] + apriori[:, None, :]
        alpha = np.zeros((n + 1, 8))
        beta = np.zeros((n + 1, 8))
        alpha[0] = np.zeros(8) if init_alpha is None else init_alpha - init_alpha.max()
        beta[n] = np.zeros(8) if init_beta is None else init_beta - init_beta.max()
        next_flat = self._next_state.reshape(-1)
        for k in range(n):
            candidates = (alpha[k][:, None] + gamma[k]).reshape(-1)
            new_alpha = np.full(8, _NEG_INF)
            np.maximum.at(new_alpha, next_flat, candidates)
            new_alpha -= new_alpha.max()
            alpha[k + 1] = new_alpha
        for k in range(n - 1, -1, -1):
            new_beta = (beta[k + 1][self._next_state] + gamma[k]).max(axis=1)
            new_beta -= new_beta.max()
            beta[k] = new_beta
        b_metric = alpha[:-1][:, :, None] + gamma + beta[1:][
            np.arange(n)[:, None, None], self._next_state[None, :, :]
        ]
        apo_raw = b_metric.max(axis=1)
        apo = apo_raw - apo_raw[:, 0:1]
        extrinsic = 0.75 * (apo - (sys_metric - sys_metric[:, 0:1]) - (apriori - apriori[:, 0:1]))
        return apo, extrinsic, alpha[n].copy(), beta[0].copy()

    def _interleave(self, values):
        reordered = values[self._perm].copy()
        swapped = self._flags[self._perm]
        reordered[swapped] = reordered[swapped][:, [0, 2, 1, 3]]
        return reordered

    def _deinterleave(self, values):
        natural = np.empty_like(values)
        natural[self._perm] = values
        natural[self._flags] = natural[self._flags][:, [0, 2, 1, 3]]
        return natural

    def decode(self, sys_llrs, par1, par2):
        n = sys_llrs.shape[0]
        sys_int = sys_llrs[self._perm].copy()
        swapped = self._flags[self._perm]
        sys_int[swapped] = sys_int[swapped][:, ::-1]
        ext = np.zeros((n, 4))
        alpha1 = beta1 = alpha2 = beta2 = None
        for _ in range(self.max_iterations):
            apo1, ext1, alpha1, beta1 = self._bcjr(sys_llrs, par1, ext, alpha1, beta1)
            apo2, ext2, alpha2, beta2 = self._bcjr(
                sys_int, par2, self._interleave(ext1), alpha2, beta2
            )
            ext = self._deinterleave(ext2)
        return np.argmax(self._deinterleave(apo2), axis=1)


def _make_llr_batch(encoder: TurboEncoder, batch: int, seed: int = 7) -> np.ndarray:
    rng = np.random.default_rng(seed)
    modulator = BPSKModulator()
    channel = AWGNChannel(
        ebn0_to_noise_sigma(EBN0_DB, resolve_code_rate(encoder.rate)), rng
    )
    info = rng.integers(0, 2, (batch, encoder.k))
    codewords = encoder.encode_batch(info)
    received = channel.transmit(modulator.modulate(codewords))
    return modulator.demodulate_llr(received, channel.llr_noise_variance(False))


def _frames_per_second(fn, frames: int, repeats: int = 3) -> float:
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return frames / best


@pytest.mark.benchmark(group="batch-throughput")
def test_turbo_batch_throughput_speedup(benchmark, bench_print, bench_json):
    """The batched turbo engine must beat the seed per-frame path >= 10x."""
    encoder = TurboEncoder(n_couples=N_COUPLES)
    llrs = _make_llr_batch(encoder, BATCH)
    batch_decoder = BatchTurboDecoder(
        encoder, max_iterations=MAX_ITERATIONS, early_termination=False
    )
    seed_decoder = _SeedTurboDecoder(encoder, max_iterations=MAX_ITERATIONS)
    split = batch_decoder.split_llrs_batch(llrs)

    # The baseline must decode the same frames to the same hard symbols.
    batch_result = batch_decoder.decode_batch(llrs)
    for frame in range(BASELINE_FRAMES):
        seed_symbols = seed_decoder.decode(
            split[0][frame], split[1][frame], split[2][frame]
        )
        assert np.array_equal(seed_symbols, batch_result.hard_symbols[frame])

    def run_seed():
        for frame in range(BASELINE_FRAMES):
            seed_decoder.decode(split[0][frame], split[1][frame], split[2][frame])

    def run_batch():
        batch_decoder.decode_batch(llrs)

    run_seed()  # warm-up
    run_batch()
    seed_fps = _frames_per_second(run_seed, BASELINE_FRAMES)
    batch_fps = _frames_per_second(run_batch, BATCH)
    speedup = batch_fps / seed_fps
    bench_print(
        f"turbo max-log (N={N_COUPLES} couples, {MAX_ITERATIONS} it): "
        f"seed per-frame {seed_fps:8.1f} frames/s | "
        f"batch {BATCH} {batch_fps:8.1f} frames/s | speedup {speedup:6.1f}x"
    )
    bench_json(
        "turbo_batch_throughput",
        "max_log",
        {
            "n_couples": N_COUPLES,
            "batch": BATCH,
            "max_iterations": MAX_ITERATIONS,
            "ebn0_db": EBN0_DB,
            "frames_per_sec_seed": round(seed_fps, 2),
            "frames_per_sec_batch": round(batch_fps, 2),
            "speedup": round(speedup, 2),
        },
    )
    benchmark(run_batch)
    assert speedup >= 10.0


@pytest.mark.benchmark(group="batch-throughput")
def test_turbo_batch_early_exit_gain(benchmark, bench_print, bench_json):
    """Per-frame early exit pays: fewer iterations on average, same decisions."""
    encoder = TurboEncoder(n_couples=N_COUPLES)
    llrs = _make_llr_batch(encoder, BATCH, seed=11)
    eager = BatchTurboDecoder(encoder, max_iterations=MAX_ITERATIONS)
    exhaustive = BatchTurboDecoder(
        encoder, max_iterations=MAX_ITERATIONS, early_termination=False
    )
    eager_result = eager.decode_batch(llrs)
    # At this operating point most frames stabilise early and leave the
    # active set (the converged flags latch), so the batch finishes in fewer
    # SISO activations than the exhaustive run.
    assert eager_result.converged.mean() > 0.5

    eager.decode_batch(llrs)  # warm-up
    eager_fps = _frames_per_second(lambda: eager.decode_batch(llrs), BATCH)
    full_fps = _frames_per_second(lambda: exhaustive.decode_batch(llrs), BATCH)
    avg_iterations = float(eager_result.iterations.mean())
    bench_print(
        f"turbo early exit at {EBN0_DB} dB: avg {avg_iterations:.1f}/{MAX_ITERATIONS} it, "
        f"{eager_fps:.1f} vs {full_fps:.1f} frames/s (gain {eager_fps / full_fps:.2f}x)"
    )
    bench_json(
        "turbo_batch_throughput",
        "early_exit",
        {
            "n_couples": N_COUPLES,
            "batch": BATCH,
            "ebn0_db": EBN0_DB,
            "avg_iterations": round(avg_iterations, 2),
            "frames_per_sec_early_exit": round(eager_fps, 2),
            "frames_per_sec_exhaustive": round(full_fps, 2),
        },
    )
    benchmark(lambda: eager.decode_batch(llrs))
    assert avg_iterations <= MAX_ITERATIONS
    assert eager_fps >= 0.9 * full_fps  # early exit must never cost throughput

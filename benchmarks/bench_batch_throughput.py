"""Benchmark: batched BER engine vs the seed per-frame decoders.

The ROADMAP asks for hot-path speedups; this bench quantifies the one the
batch engine delivers.  The *baseline* is a faithful re-implementation of the
seed repository's per-frame message passing (Python loop over per-row message
lists, one frame at a time) for both schedules; the *contender* is the
``(batch, n)`` engine of :mod:`repro.sim` at batch 64.  The acceptance target
is >= 10x frames/sec on the flooding schedule; in practice the margin is much
larger.

Run with ``PYTHONPATH=src python -m pytest benchmarks/bench_batch_throughput.py -q -s``.
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro.channel import AWGNChannel, BPSKModulator, ebn0_to_noise_sigma
from repro.ldpc import wimax_ldpc_code
from repro.ldpc.checknode import hard_decision, min_sum_check_update
from repro.sim import BatchFloodingDecoder, BatchLayeredDecoder

BATCH = 64
MAX_ITERATIONS = 10
EBN0_DB = 2.0
#: Frames timed on the (slow) seed baseline; frames/sec extrapolates.
BASELINE_FRAMES = 8


def _make_llr_batch(code, batch: int, seed: int = 7) -> np.ndarray:
    rng = np.random.default_rng(seed)
    modulator = BPSKModulator()
    channel = AWGNChannel(ebn0_to_noise_sigma(EBN0_DB, code.rate), rng)
    info = rng.integers(0, 2, (batch, code.k))
    codewords = code.encode_batch(info)
    received = channel.transmit(modulator.modulate(codewords))
    return modulator.demodulate_llr(received, channel.llr_noise_variance(False))


# --------------------------------------------------------------------------- #
# Seed-repository per-frame algorithms (list-of-arrays message passing).
# --------------------------------------------------------------------------- #
def _seed_flooding_decode(h, rows, llrs_in: np.ndarray) -> np.ndarray:
    """The seed FloodingDecoder.decode loop (min-sum kernel, no early exit)."""
    n_rows = h.n_rows
    c2v = [np.zeros(row.size, dtype=np.float64) for row in rows]
    posterior = llrs_in.copy()
    for _ in range(MAX_ITERATIONS):
        v2c = [posterior[rows[r]] - c2v[r] for r in range(n_rows)]
        c2v = [min_sum_check_update(v2c[r], scaling=0.75) for r in range(n_rows)]
        posterior = llrs_in.copy()
        for r in range(n_rows):
            posterior[rows[r]] += c2v[r]
    return hard_decision(posterior)


def _seed_layered_decode(h, rows, llrs_in: np.ndarray) -> np.ndarray:
    """The seed LayeredMinSumDecoder.decode loop (float, no early exit)."""
    lam = llrs_in.copy()
    r_messages = [np.zeros(row.size, dtype=np.float64) for row in rows]
    for _ in range(MAX_ITERATIONS):
        for check_idx, cols in enumerate(rows):
            q_values = lam[cols] - r_messages[check_idx]
            r_new = min_sum_check_update(q_values, scaling=0.75)
            lam[cols] = q_values + r_new
            r_messages[check_idx] = r_new
    return hard_decision(lam)


def _frames_per_second(fn, frames: int, repeats: int = 3) -> float:
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return frames / best


def _compare(code, seed_decode, batch_decoder, llrs, bench_print, label):
    rows = [code.h.row(r) for r in range(code.h.n_rows)]

    def run_seed():
        for frame in range(BASELINE_FRAMES):
            seed_decode(code.h, rows, llrs[frame])

    def run_batch():
        batch_decoder.decode_batch(llrs)

    run_seed()  # warm-up
    run_batch()
    seed_fps = _frames_per_second(run_seed, BASELINE_FRAMES)
    batch_fps = _frames_per_second(run_batch, BATCH)
    speedup = batch_fps / seed_fps
    bench_print(
        f"{label}: seed per-frame {seed_fps:8.1f} frames/s | "
        f"batch {BATCH} {batch_fps:8.1f} frames/s | speedup {speedup:6.1f}x"
    )
    return speedup, run_batch


@pytest.mark.benchmark(group="batch-throughput")
def test_batch_flooding_throughput_speedup(benchmark, bench_print, bench_json):
    """Flooding min-sum: the batch engine must beat the seed path >= 10x."""
    code = wimax_ldpc_code(576, "1/2")
    llrs = _make_llr_batch(code, BATCH)
    decoder = BatchFloodingDecoder(
        code.h, max_iterations=MAX_ITERATIONS, kernel="min-sum", early_termination=False
    )
    speedup, run_batch = _compare(
        code, _seed_flooding_decode, decoder, llrs, bench_print,
        f"flooding  (n={code.n}, {MAX_ITERATIONS} it)",
    )
    bench_json(
        "batch_throughput",
        "flooding",
        {"n": code.n, "batch": BATCH, "max_iterations": MAX_ITERATIONS,
         "ebn0_db": EBN0_DB, "speedup": round(speedup, 2)},
    )
    benchmark(run_batch)
    assert speedup >= 10.0


@pytest.mark.benchmark(group="batch-throughput")
def test_batch_layered_throughput_speedup(benchmark, bench_print, bench_json):
    """Layered min-sum: batch-axis amortisation must beat the seed path >= 10x."""
    code = wimax_ldpc_code(576, "1/2")
    llrs = _make_llr_batch(code, BATCH)
    decoder = BatchLayeredDecoder(
        code.h, max_iterations=MAX_ITERATIONS, early_termination=False
    )
    speedup, run_batch = _compare(
        code, _seed_layered_decode, decoder, llrs, bench_print,
        f"layered   (n={code.n}, {MAX_ITERATIONS} it)",
    )
    bench_json(
        "batch_throughput",
        "layered",
        {"n": code.n, "batch": BATCH, "max_iterations": MAX_ITERATIONS,
         "ebn0_db": EBN0_DB, "speedup": round(speedup, 2)},
    )
    benchmark(run_batch)
    assert speedup >= 10.0

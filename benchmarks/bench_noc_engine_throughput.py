"""Benchmark: struct-of-arrays NoC cycle engine vs the object reference simulator.

Measures sweep-points/sec over a Table-I/ablation-style grid — generalized
Kautz graphs at the paper's parallelism degrees, all three routing algorithms
and both collision policies at paper-scale traffic (one LDPC-iteration's worth
of messages per PE).  The baseline evaluates every point the way the pre-engine
design flow did: build the topology, build its routing tables, construct the
object simulator, run.  The engine path runs the same jobs through
:func:`repro.noc.sweep.run_noc_sweep`, which shares the precomputed
topologies/routing tables and per-configuration engine state across points
(every job here has a distinct configuration, so the scheduler exercises its
scalar-engine dispatch, not the batched kernel — see
``bench_noc_batch_sweep.py`` for the job-batched measurement).

Both paths produce cycle-exact identical :class:`SimulationResult`s (asserted
here and pinned by ``tests/test_noc_engine.py``); only the time differs.
Headline numbers land in ``benchmarks/BENCH_noc_engine_throughput.json``.
"""

from __future__ import annotations

import os
import time

import pytest

from repro.noc import (
    CollisionPolicy,
    NocConfiguration,
    NocSweepJob,
    ReferenceNocSimulator,
    RoutingAlgorithm,
    build_routing_tables,
    build_topology,
    random_traffic,
    run_noc_sweep,
)

from benchmarks.conftest import full_benchmarks_enabled

#: (parallelism, messages per PE) — message counts sized like the n=2304
#: rate-1/2 WiMAX LDPC code partitioned over P PEs (~2304/P messages each).
SWEEP_SCALES = [(16, 144), (22, 105), (32, 72), (36, 64)]
TIMING_REPEATS = 3


def _build_jobs() -> list[NocSweepJob]:
    jobs = []
    scales = SWEEP_SCALES if full_benchmarks_enabled() else SWEEP_SCALES[:3]
    for parallelism, messages in scales:
        traffic = random_traffic(parallelism, messages, seed=100 + parallelism)
        for algorithm in RoutingAlgorithm:
            for policy in CollisionPolicy:
                config = NocConfiguration(collision_policy=policy).with_routing(algorithm)
                jobs.append(
                    NocSweepJob(
                        family="generalized-kautz",
                        parallelism=parallelism,
                        degree=3,
                        config=config,
                        traffic=traffic,
                        seed=0,
                    )
                )
    return jobs


def _run_baseline(jobs: list[NocSweepJob]):
    """Per-point object-simulator evaluation, exactly as the pre-engine flow."""
    results = []
    for job in jobs:
        topology = build_topology(job.family, job.parallelism, job.degree)
        tables = build_routing_tables(topology)
        simulator = ReferenceNocSimulator(
            topology, job.config, routing_tables=tables, seed=job.seed
        )
        results.append(simulator.run(job.traffic))
    return results


def _best_time(fn, repeats: int = TIMING_REPEATS):
    """(best wall time, last result) over a few repeats — robust to CI noise."""
    best = float("inf")
    result = None
    for _ in range(repeats):
        start = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - start)
    return best, result


@pytest.mark.benchmark(group="noc-engine")
def test_engine_sweep_throughput(benchmark, bench_print, bench_json):
    """The engine sweep must clear >= 5x sweep-points/sec over the object simulator."""
    jobs = _build_jobs()

    baseline_s, baseline_results = _best_time(lambda: _run_baseline(jobs))
    engine_s, engine_outcomes = benchmark.pedantic(
        lambda: _best_time(lambda: run_noc_sweep(jobs)), rounds=1, iterations=1
    )

    # The two paths must agree cycle-exactly before their times mean anything;
    # outcomes carry their jobs, so pair through the job rather than position.
    by_job = {id(outcome.job): outcome.result for outcome in engine_outcomes}
    for job, ref in zip(jobs, baseline_results):
        eng = by_job[id(job)]
        assert (ref.ncycles, ref.delivered_messages, ref.per_node_max_fifo) == (
            eng.ncycles,
            eng.delivered_messages,
            eng.per_node_max_fifo,
        )

    n_points = len(jobs)
    baseline_pps = n_points / baseline_s
    engine_pps = n_points / engine_s
    speedup = baseline_pps and engine_pps / baseline_pps

    bench_print(
        "NoC sweep throughput (generalized-kautz D=3, "
        f"{n_points} points, best of {TIMING_REPEATS}):\n"
        f"  object simulator : {baseline_pps:8.1f} points/s ({baseline_s:.3f} s)\n"
        f"  SoA cycle engine : {engine_pps:8.1f} points/s ({engine_s:.3f} s)\n"
        f"  speedup          : {speedup:.2f}x"
    )
    bench_json(
        "noc_engine_throughput",
        "sweep_points_per_sec",
        {
            "sweep_points": n_points,
            "parallelisms": [
                p
                for p, _ in (SWEEP_SCALES if full_benchmarks_enabled() else SWEEP_SCALES[:3])
            ],
            "object_simulator_points_per_sec": round(baseline_pps, 2),
            "engine_points_per_sec": round(engine_pps, 2),
            "speedup": round(speedup, 2),
            "timing_repeats": TIMING_REPEATS,
        },
    )

    # The JSON records the measured ratio (~5.3x on a quiet machine).  The
    # hard floor is relaxed on shared CI runners, where a noisy neighbour in
    # one timing window can halve an otherwise stable wall-clock ratio.
    floor = 2.0 if os.environ.get("CI") else 4.0
    assert speedup >= floor, f"engine sweep speedup regressed to {speedup:.2f}x"


@pytest.mark.benchmark(group="noc-engine")
def test_single_point_engine_cost(benchmark):
    """Cost of one engine run at the P=22 WiMAX design point (for tracking)."""
    topology = build_topology("generalized-kautz", 22, 3)
    tables = build_routing_tables(topology)
    traffic = random_traffic(22, 105, seed=1)
    from repro.noc import BatchNocSimulator

    engine = BatchNocSimulator(topology, NocConfiguration(), routing_tables=tables)
    result = benchmark(lambda: engine.run(traffic))
    assert result.all_delivered

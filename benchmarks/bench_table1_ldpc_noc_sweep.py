"""Benchmark regenerating paper Table I.

Throughput [Mb/s] / NoC area [mm^2] for the WiMAX LDPC n = 2304, rate-1/2 code
across NoC topologies, parallelism degrees and routing algorithms
(fclk = 300 MHz, Itmax = 10, latcore = 15, RL = 0, SCM, R = 0.5).

The default grid covers every topology group of the paper at two parallelism
degrees (16 and 32); set ``REPRO_BENCH_FULL=1`` to sweep the paper's full
P in {16, 24, 32, 36} grid.

The sweep is submitted as one batch to the NoC sweep scheduler
(:func:`repro.noc.sweep.run_noc_sweep`) by
:class:`~repro.core.design_flow.DesignSpaceExplorer`, with topologies,
routing tables and code mappings shared across the grid and design points
assembled from each outcome's attached job.
"""

from __future__ import annotations

import pytest

from repro import DecoderSpec, DesignSpaceExplorer, wimax_ldpc_code
from repro.analysis import build_table1, check_table1_trends
from repro.noc import RoutingAlgorithm

from benchmarks.conftest import full_benchmarks_enabled

TOPOLOGIES = [
    ("generalized-de-bruijn", 2),
    ("generalized-kautz", 2),
    ("spidergon", 3),
    ("generalized-kautz", 3),
    ("honeycomb", 4),
    ("generalized-kautz", 4),
]
ALGORITHMS = [RoutingAlgorithm.SSP_RR, RoutingAlgorithm.SSP_FL, RoutingAlgorithm.ASP_FT]


def _parallelisms() -> list[int]:
    return [16, 24, 32, 36] if full_benchmarks_enabled() else [16, 32]


def _run_sweep() -> list:
    code = wimax_ldpc_code(2304, "1/2")
    explorer = DesignSpaceExplorer(DecoderSpec(mapping_attempts=2), seed=0)
    return explorer.sweep_ldpc(code, TOPOLOGIES, _parallelisms(), ALGORITHMS)


@pytest.mark.benchmark(group="table1")
def test_table1_noc_design_space(benchmark, bench_print, bench_json):
    """Regenerate Table I and verify the paper's qualitative conclusions."""
    points = benchmark.pedantic(_run_sweep, rounds=1, iterations=1)
    bench_print(build_table1(points).render())

    checks = check_table1_trends(points)
    lines = ["Trend checks (paper Section III-B/C conclusions):"]
    for check in checks:
        lines.append(f"  [{'PASS' if check.passed else 'FAIL'}] {check.name}: {check.detail}")
    bench_print("\n".join(lines))
    bench_json(
        "table1",
        "design_space_sweep",
        {
            "design_points": len(points),
            "parallelisms": _parallelisms(),
            "trend_checks": {check.name: bool(check.passed) for check in checks},
            "best_throughput_mbps": round(
                max(point.throughput_mbps for point in points), 2
            ),
        },
    )

    # The reproduction is judged on the trends, not the absolute Mb/s values.
    assert points, "the sweep produced no design points"
    passed = sum(1 for check in checks if check.passed)
    assert passed >= max(1, len(checks) - 1), "more than one Table-I trend failed to reproduce"


@pytest.mark.slow
@pytest.mark.benchmark(group="table1")
def test_table1_full_grid(benchmark, bench_print, bench_json):
    """Full paper grid (P in {16, 24, 32, 36}), independent of env knobs.

    Tier-1 keeps the reduced grid above; this run is gated behind the
    ``slow`` marker (``--runslow`` / ``REPRO_RUN_SLOW=1``, used by CI's
    scheduled slow job).
    """
    code = wimax_ldpc_code(2304, "1/2")
    explorer = DesignSpaceExplorer(DecoderSpec(mapping_attempts=2), seed=0)
    points = benchmark.pedantic(
        lambda: explorer.sweep_ldpc(code, TOPOLOGIES, [16, 24, 32, 36], ALGORITHMS),
        rounds=1,
        iterations=1,
    )
    bench_print(build_table1(points).render())

    checks = check_table1_trends(points)
    bench_json(
        "table1",
        "full_grid_sweep",
        {
            "design_points": len(points),
            "parallelisms": [16, 24, 32, 36],
            "trend_checks": {check.name: bool(check.passed) for check in checks},
        },
    )
    assert points, "the full-grid sweep produced no design points"
    passed = sum(1 for check in checks if check.passed)
    assert passed >= max(1, len(checks) - 1), "more than one Table-I trend failed to reproduce"


@pytest.mark.benchmark(group="table1")
def test_table1_single_point_cost(benchmark):
    """Cost of evaluating one Table-I cell (mapping + simulation + area model)."""
    code = wimax_ldpc_code(2304, "1/2")
    explorer = DesignSpaceExplorer(DecoderSpec(mapping_attempts=1), seed=0)

    def one_point():
        return explorer.evaluate_ldpc_point(
            code, "generalized-kautz", 3, 32, RoutingAlgorithm.SSP_FL
        )

    point = benchmark(one_point)
    assert point.throughput_mbps > 0

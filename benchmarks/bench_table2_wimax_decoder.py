"""Benchmark regenerating paper Table II.

The WiMAX design case: P = 22, degree-3 generalized Kautz NoC, R = 0.5.
Turbo N = 2400 couples at a 75 MHz NoC clock and LDPC n = 2304 rate 1/2 at
300 MHz, for the three routing algorithms (SSP-RR, SSP-FL on the PP node
architecture; ASP-FT on the AP architecture).

A functional companion check runs the same decoder algorithm (layered
normalized min-sum, 10 iterations, the paper's fixed-point formats) through
the batched :class:`repro.sim.runner.BerRunner` to confirm it actually
corrects errors at WiMAX operating points — the architectural numbers above
are only meaningful if the functional core works.
"""

from __future__ import annotations

import pytest

from repro import DecoderSpec, NocDecoderArchitecture, wimax_ldpc_code
from repro.analysis import PAPER_TABLE2, build_ber_table, build_table2
from repro.core.throughput import meets_wimax_requirement
from repro.noc import RoutingAlgorithm
from repro.sim import BatchLayeredDecoder, BerRunner

from benchmarks.conftest import full_benchmarks_enabled

ALGORITHMS = [RoutingAlgorithm.SSP_RR, RoutingAlgorithm.SSP_FL, RoutingAlgorithm.ASP_FT]


def _evaluate_design_case():
    code = wimax_ldpc_code(2304, "1/2")
    ldpc_results = {}
    turbo_results = {}
    for algorithm in ALGORITHMS:
        spec = DecoderSpec(mapping_attempts=2).with_routing(algorithm)
        decoder = NocDecoderArchitecture(spec)
        ldpc_results[algorithm.value] = decoder.evaluate_ldpc(code)
        turbo_results[algorithm.value] = decoder.evaluate_turbo(2400)
    return turbo_results, ldpc_results


@pytest.mark.benchmark(group="table2")
def test_table2_wimax_design_case(benchmark, bench_print, bench_json):
    """Regenerate Table II and verify the WiMAX-compliance conclusions."""
    turbo_results, ldpc_results = benchmark.pedantic(
        _evaluate_design_case, rounds=1, iterations=1
    )
    bench_print(build_table2(turbo_results, ldpc_results).render())
    bench_json(
        "table2",
        "wimax_design_case",
        {
            mode: {
                routing: {
                    "throughput_mbps": round(result.throughput_mbps, 2),
                    "noc_area_mm2": round(result.area.noc_mm2, 3),
                }
                for routing, result in results.items()
            }
            for mode, results in (("turbo", turbo_results), ("ldpc", ldpc_results))
        },
    )

    summary = ["Conclusions checked against the paper:"]
    # 1. Turbo mode clears the 70 Mb/s WiMAX requirement at a 75 MHz NoC clock.
    turbo_ok = all(
        meets_wimax_requirement(result.throughput_bps) for result in turbo_results.values()
    )
    summary.append(f"  [{'PASS' if turbo_ok else 'FAIL'}] turbo >= 70 Mb/s at 75 MHz for all algorithms")
    # 2. Throughput depends only weakly on the routing algorithm (paper Section III-C).
    for name, results in (("turbo", turbo_results), ("LDPC", ldpc_results)):
        values = [r.throughput_mbps for r in results.values()]
        weak = max(values) / min(values) < 1.25
        summary.append(
            f"  [{'PASS' if weak else 'FAIL'}] {name}: weak dependence on routing algorithm "
            f"(spread {min(values):.1f}..{max(values):.1f} Mb/s)"
        )
    # 3. The AP (ASP-FT) NoC is the smallest one, as in the paper's area column.
    ap_smallest = ldpc_results["ASP-FT"].area.noc_mm2 <= min(
        ldpc_results["SSP-RR"].area.noc_mm2, ldpc_results["SSP-FL"].area.noc_mm2
    ) * 1.05
    summary.append(f"  [{'PASS' if ap_smallest else 'FAIL'}] ASP-FT (AP) NoC is the smallest")
    # 4. Side-by-side with the published numbers.
    for (mode, routing), (throughput, area) in sorted(PAPER_TABLE2.items()):
        ours = turbo_results[routing] if mode == "turbo" else ldpc_results[routing]
        summary.append(
            f"  paper {mode:5s} {routing}: {throughput:6.2f} Mb/s / {area:.2f} mm^2 | "
            f"measured {ours.throughput_mbps:6.2f} Mb/s / {ours.area.noc_mm2:.2f} mm^2"
        )
    bench_print("\n".join(summary))

    assert turbo_ok
    assert ap_smallest


@pytest.mark.benchmark(group="table2")
def test_table2_ldpc_design_point_cost(benchmark):
    """Cost of one full system-level LDPC evaluation at the design point."""
    decoder = NocDecoderArchitecture(DecoderSpec(mapping_attempts=1))
    code = wimax_ldpc_code(2304, "1/2")
    decoder.map_ldpc(code)  # mapping cached; measure the simulation + models

    result = benchmark(lambda: decoder.evaluate_ldpc(code))
    assert result.simulation.all_delivered


@pytest.mark.benchmark(group="table2")
def test_table2_functional_ber_of_design_decoder(benchmark, bench_print, bench_json):
    """BER of the Table II decoder algorithm via the batched runner.

    Uses the paper's decoding parameters (layered normalized min-sum,
    sigma = 0.75, 10 iterations, 7-bit channel / 5-bit extrinsic LLRs) on the
    worst-case n=2304 rate-1/2 code (n=576 in the reduced default grid).
    """
    full = full_benchmarks_enabled()
    code = wimax_ldpc_code(2304 if full else 576, "1/2")
    runner = BerRunner(
        code,
        BatchLayeredDecoder(code.h, max_iterations=10, fixed_point=True),
        batch_size=64,
        max_frames=512 if full else 128,
        target_frame_errors=50,
        seed=22,
    )
    ebn0_points = [1.5, 2.0, 2.5] if full else [1.5, 2.0]
    points = benchmark.pedantic(lambda: runner.run(ebn0_points), rounds=1, iterations=1)
    bench_print(
        build_ber_table(
            points,
            title=f"Table II decoder functional BER ({code.describe()})",
        ).render()
    )
    bench_json(
        "table2",
        "functional_ber",
        {
            "n": code.n,
            "points": {
                f"{point.ebn0_db:.1f}dB": {
                    "ber": point.ber,
                    "fer": point.fer,
                    "frames": point.frames,
                    "avg_iterations": round(point.avg_iterations, 2),
                }
                for point in points
            },
        },
    )
    # The waterfall must actually fall: monotone BER improvement with SNR.
    bers = [point.ber for point in points]
    assert all(late <= early for early, late in zip(bers, bers[1:]))
    assert points[-1].ber < 1e-2

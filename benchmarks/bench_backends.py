"""Per-kernel, per-backend throughput for the pluggable array-backend layer.

Three questions, answered per registered backend that is available on the
host and recorded in ``benchmarks/BENCH_backends.json``:

* **abstraction cost** — the ported kernels dispatch through
  ``xp.<function>`` calls resolved per invocation; on the default NumPy
  backend that indirection must be essentially free.  The bench times the
  dense min-sum kernel against a hard-coded direct-NumPy twin (kept below,
  same arithmetic) and guards the ratio at >= 0.95x.
* **steady-state speedup** — for every available backend, each kernel
  family (check-node updates, segment min-sum, BatchBCJR activation, the
  NoC scalar engine path) is timed against the NumPy reference after a
  warm-up call, so JIT compilation and lazy state stay out of the numbers.
* **first-call cost** — JIT backends pay compilation on the first kernel
  invocation.  That cost is real, so it is recorded *separately*
  (``first_call_s`` vs ``steady_state_s``) instead of being averaged away.

The numba guard (>= 2x on the scalar NoC serve loop) only runs when numba
is importable: without it the ``jit=True`` wiring falls back to the same
interpreted code object, which proves correctness, not speed.
"""

from __future__ import annotations

import os
import time

import numpy as np
import pytest

import repro.backend as backends
from repro.backend import available
from repro.noc import (
    BatchNocSimulator,
    NocConfiguration,
    build_routing_tables,
    build_topology,
    random_traffic,
)
from repro.sim.kernels import min_sum_update, min_sum_update_segments
from repro.sim.turbo_batch import BatchBCJR

#: (batch, n_checks, degree) for the dense check-node kernel.
_DENSE_SHAPE = (64, 96, 7)
#: (batch, n_couples) for one BCJR activation.
_BCJR_SHAPE = (32, 96)
#: NoC probe: nodes, messages, repeated runs per timing sample.
_NOC_SPEC = ("generalized-kautz", 16, 3)
_NOC_MESSAGES = 40
_NOC_RUNS = 4


def _direct_numpy_min_sum(q: np.ndarray, scaling: float = 0.75) -> np.ndarray:
    """Hard-coded NumPy twin of :func:`min_sum_update` (no backend layer)."""
    magnitudes = np.abs(q)
    signs = np.where(np.signbit(q), -1.0, 1.0)
    argmin1 = np.argmin(magnitudes, axis=-1)
    min1 = np.take_along_axis(magnitudes, argmin1[..., None], axis=-1)[..., 0]
    masked = magnitudes.copy()
    np.put_along_axis(masked, argmin1[..., None], np.inf, axis=-1)
    min2 = masked.min(axis=-1)
    is_argmin = np.arange(q.shape[-1]) == argmin1[..., None]
    result_magnitudes = np.where(is_argmin, min2[..., None], min1[..., None])
    result_signs = np.prod(signs, axis=-1)[..., None] * signs
    return scaling * result_signs * result_magnitudes


def _best_time(fn, repeats: int = 3) -> float:
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def _timed_first_and_steady(fn) -> tuple[float, float]:
    """(first-call seconds, best steady-state seconds) for ``fn``."""
    start = time.perf_counter()
    fn()
    first = time.perf_counter() - start
    return first, _best_time(fn)


def _noc_probe(backend) -> tuple:
    family, nodes, degree = _NOC_SPEC
    topology = build_topology(family, nodes, degree)
    tables = build_routing_tables(topology)
    engine = BatchNocSimulator(
        topology, NocConfiguration(), routing_tables=tables, seed=0, backend=backend
    )
    traffics = [
        random_traffic(nodes, _NOC_MESSAGES, seed=40 + i) for i in range(_NOC_RUNS)
    ]
    return engine, traffics


@pytest.mark.benchmark(group="backends")
def test_backend_throughput(benchmark, bench_print, bench_json):
    """Time every kernel family on every available backend."""
    rng = np.random.default_rng(5)
    dense_q = rng.normal(0.0, 4.0, size=_DENSE_SHAPE)
    degrees = rng.integers(3, 8, size=200)
    row_ptr = np.concatenate([[0], np.cumsum(degrees)]).astype(np.int64)
    flat_q = rng.normal(0.0, 4.0, size=(_DENSE_SHAPE[0], int(row_ptr[-1])))
    sys_llrs = rng.normal(0.0, 2.0, size=(*_BCJR_SHAPE, 2))
    par_llrs = rng.normal(0.0, 2.0, size=(*_BCJR_SHAPE, 2))

    results: dict[str, dict] = {}
    lines = ["Backend throughput (steady-state, best of 3):"]

    for name in available():
        b = backends.backend(name)
        entry: dict[str, dict] = {}

        q_dev = b.asarray(dense_q)
        first, steady = _timed_first_and_steady(
            lambda: b.to_numpy(min_sum_update(q_dev, backend=b))
        )
        entry["min_sum_dense"] = {"first_call_s": first, "steady_state_s": steady}

        if b.supports_segments:
            flat_dev = b.asarray(flat_q)
            first, steady = _timed_first_and_steady(
                lambda: b.to_numpy(
                    min_sum_update_segments(flat_dev, row_ptr, backend=b)
                )
            )
            entry["min_sum_segments"] = {
                "first_call_s": first,
                "steady_state_s": steady,
            }

        siso = BatchBCJR(backend=b)
        first, steady = _timed_first_and_steady(
            lambda: siso.decode_batch(sys_llrs, par_llrs)
        )
        entry["bcjr_activation"] = {"first_call_s": first, "steady_state_s": steady}

        engine, traffics = _noc_probe(b)
        first, steady = _timed_first_and_steady(
            lambda: [engine.run(t) for t in traffics]
        )
        entry["noc_scalar_engine"] = {
            "first_call_s": first,
            "steady_state_s": steady,
        }

        results[name] = entry
        for kernel, timing in entry.items():
            lines.append(
                f"  {name:6s} {kernel:18s} first {timing['first_call_s']*1e3:8.2f} ms"
                f"  steady {timing['steady_state_s']*1e3:8.2f} ms"
            )

    # Abstraction-cost guard: the backend-layer dense kernel vs the
    # hard-coded NumPy twin, same arithmetic.
    direct_s = _best_time(lambda: _direct_numpy_min_sum(dense_q))
    layered_s = results["numpy"]["min_sum_dense"]["steady_state_s"]
    numpy_ratio = direct_s / layered_s
    lines.append(
        f"  numpy abstraction cost: direct {direct_s*1e3:.2f} ms vs layered "
        f"{layered_s*1e3:.2f} ms ({numpy_ratio:.3f}x)"
    )

    summary = {
        "kernels": results,
        "numpy_vs_direct_ratio": round(numpy_ratio, 4),
    }
    for name, entry in results.items():
        if name == "numpy" or not backends.backend(name).jit:
            continue
        speedup = (
            results["numpy"]["noc_scalar_engine"]["steady_state_s"]
            / entry["noc_scalar_engine"]["steady_state_s"]
        )
        summary[f"{name}_noc_scalar_speedup"] = round(speedup, 3)
        lines.append(f"  {name} NoC scalar speedup: {speedup:.2f}x")

    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    bench_print("\n".join(lines))
    bench_json("backends", "backend_throughput", summary)

    # The abstraction-cost guard is absolute-timing sensitive, so it is
    # skipped on CI where shared-runner noise dominates; the numba speedup
    # is a same-process relative measurement and holds anywhere.
    if not os.environ.get("CI"):
        assert numpy_ratio >= 0.95, (
            f"backend layer slowed the NumPy min-sum path to {numpy_ratio:.3f}x "
            "of the direct implementation"
        )
    if "numba" in results:
        speedup = summary["numba_noc_scalar_speedup"]
        assert speedup >= 2.0, (
            f"numba NoC scalar path only {speedup:.2f}x over NumPy "
            "(expected >= 2x steady-state)"
        )

"""Benchmark harness regenerating every table of the paper (see conftest.py)."""

"""Benchmark of the functional (BER-level) claims behind the architecture.

The paper's algorithmic choices rest on claims from Section II / IV:

* the layered schedule converges roughly twice as fast as two-phase flooding,
* the normalized-min-sum approximation and Max-Log-MAP are adequate,
* exchanging bit-level instead of symbol-level turbo extrinsics (the BTS/STB
  path used on the NoC) costs only a small amount of BER performance.

Full BER curves are slow in pure Python (the repro band for this paper calls
this out), so these benches run short Monte-Carlo comparisons that check the
*ordering* of the claims; set ``REPRO_BENCH_FULL=1`` for more frames.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.channel import AWGNChannel, BPSKModulator, ErrorRateAccumulator, ebn0_to_noise_sigma
from repro.ldpc import FloodingDecoder, LayeredMinSumDecoder, wimax_ldpc_code
from repro.turbo import TurboDecoder, TurboEncoder

from benchmarks.conftest import full_benchmarks_enabled


def _frames(default: int) -> int:
    return default * 4 if full_benchmarks_enabled() else default


def _ldpc_frame_llrs(code, ebn0_db, rng):
    modulator = BPSKModulator()
    sigma = ebn0_to_noise_sigma(ebn0_db, code.rate)
    info = rng.integers(0, 2, code.k)
    codeword = code.encode(info)
    channel = AWGNChannel(sigma, rng)
    llrs = modulator.demodulate_llr(
        channel.transmit(modulator.modulate(codeword)), channel.llr_noise_variance(False)
    )
    return codeword, llrs


@pytest.mark.benchmark(group="functional")
def test_layered_vs_flooding_convergence(benchmark, bench_print, bench_json):
    """Layered scheduling needs roughly half the iterations of flooding (Section II-B)."""
    code = wimax_ldpc_code(576, "1/2")
    frames = _frames(12)

    def measure():
        rng = np.random.default_rng(42)
        layered = LayeredMinSumDecoder(code.h, max_iterations=40)
        flooding = FloodingDecoder(code.h, max_iterations=40, kernel="min-sum")
        layered_iters, flooding_iters = [], []
        for _ in range(frames):
            _, llrs = _ldpc_frame_llrs(code, 2.6, rng)
            layered_result = layered.decode(llrs)
            flooding_result = flooding.decode(llrs)
            if layered_result.converged and flooding_result.converged:
                layered_iters.append(layered_result.iterations)
                flooding_iters.append(flooding_result.iterations)
        return float(np.mean(layered_iters)), float(np.mean(flooding_iters))

    layered_mean, flooding_mean = benchmark.pedantic(measure, rounds=1, iterations=1)
    ratio = flooding_mean / layered_mean
    bench_print(
        "Convergence speed (mean iterations to a valid codeword, WiMAX n=576 r=1/2 at 2.6 dB):\n"
        f"  layered min-sum : {layered_mean:.2f}\n"
        f"  flooding min-sum: {flooding_mean:.2f}\n"
        f"  speed-up        : {ratio:.2f}x (paper: ~2x)"
    )
    bench_json(
        "functional_claims",
        "layered_vs_flooding_convergence",
        {"n": code.n, "ebn0_db": 2.6, "frames": frames,
         "layered_mean_iterations": round(layered_mean, 2),
         "flooding_mean_iterations": round(flooding_mean, 2),
         "convergence_speedup": round(ratio, 2)},
    )
    assert ratio > 1.4


@pytest.mark.benchmark(group="functional")
def test_fixed_point_quantization_loss(benchmark, bench_print, bench_json):
    """The 7-bit / 5-bit fixed-point datapath tracks the floating-point decoder."""
    code = wimax_ldpc_code(576, "1/2")
    frames = _frames(15)

    def measure():
        rng = np.random.default_rng(7)
        float_decoder = LayeredMinSumDecoder(code.h, max_iterations=10)
        fixed_decoder = LayeredMinSumDecoder(code.h, max_iterations=10, fixed_point=True)
        float_acc, fixed_acc = ErrorRateAccumulator(), ErrorRateAccumulator()
        for _ in range(frames):
            codeword, llrs = _ldpc_frame_llrs(code, 2.2, rng)
            float_acc.update(codeword, float_decoder.decode(llrs).hard_bits)
            fixed_acc.update(codeword, fixed_decoder.decode(llrs).hard_bits)
        return float_acc.report(), fixed_acc.report()

    float_report, fixed_report = benchmark.pedantic(measure, rounds=1, iterations=1)
    bench_print(
        "Fixed-point (7b channel / 5b extrinsic) vs floating point, n=576 r=1/2 at 2.2 dB:\n"
        f"  floating point : {float_report}\n"
        f"  fixed point    : {fixed_report}"
    )
    bench_json(
        "functional_claims",
        "fixed_point_quantization",
        {"n": code.n, "ebn0_db": 2.2, "frames": frames,
         "float_bit_errors": int(float_report.bit_errors),
         "fixed_bit_errors": int(fixed_report.bit_errors),
         "float_frame_errors": int(float_report.frame_errors),
         "fixed_frame_errors": int(fixed_report.frame_errors)},
    )
    # The quantised decoder may lose a little but must stay in the same regime.
    assert fixed_report.frame_errors <= float_report.frame_errors + max(2, frames // 4)


@pytest.mark.benchmark(group="functional")
def test_bit_level_extrinsic_exchange_loss(benchmark, bench_print, bench_json):
    """Bit-level exchange (BTS/STB) degrades the turbo decoder only mildly (Section IV-B)."""
    encoder = TurboEncoder(n_couples=96)
    frames = _frames(15)

    def measure():
        rng = np.random.default_rng(11)
        modulator = BPSKModulator()
        sigma = ebn0_to_noise_sigma(1.6, 0.5)
        symbol_decoder = TurboDecoder(encoder, max_iterations=8, bit_level_exchange=False)
        bit_decoder = TurboDecoder(encoder, max_iterations=8, bit_level_exchange=True)
        symbol_acc, bit_acc = ErrorRateAccumulator(), ErrorRateAccumulator()
        for _ in range(frames):
            info = rng.integers(0, 2, encoder.k)
            channel = AWGNChannel(sigma, rng)
            llrs = modulator.demodulate_llr(
                channel.transmit(modulator.modulate(encoder.encode(info).to_bit_array())),
                channel.llr_noise_variance(False),
            )
            inputs = symbol_decoder.split_llrs(llrs)
            symbol_acc.update(info, symbol_decoder.decode(*inputs).hard_bits)
            bit_acc.update(info, bit_decoder.decode(*inputs).hard_bits)
        return symbol_acc.report(), bit_acc.report()

    symbol_report, bit_report = benchmark.pedantic(measure, rounds=1, iterations=1)
    bench_print(
        "Turbo extrinsic exchange, WiMAX CTC N=96 couples at 1.6 dB:\n"
        f"  symbol-level (3 values/message) : {symbol_report}\n"
        f"  bit-level    (2 values/message) : {bit_report}\n"
        "  paper claim: ~1/3 NoC payload reduction for ~0.2 dB loss"
    )
    bench_json(
        "functional_claims",
        "bit_level_extrinsic_exchange",
        {"n_couples": encoder.n_couples, "ebn0_db": 1.6, "frames": frames,
         "symbol_level_bit_errors": int(symbol_report.bit_errors),
         "bit_level_bit_errors": int(bit_report.bit_errors)},
    )
    # Bit-level exchange must not collapse: within a small factor of symbol level.
    assert bit_report.bit_errors <= symbol_report.bit_errors + encoder.k * frames // 20


@pytest.mark.benchmark(group="functional")
def test_ldpc_decoding_throughput_software(benchmark, bench_json):
    """Software decoding speed of the layered core (context for the repro band note)."""
    code = wimax_ldpc_code(2304, "1/2")
    decoder = LayeredMinSumDecoder(code.h, max_iterations=10)
    rng = np.random.default_rng(0)
    codeword, llrs = _ldpc_frame_llrs(code, 3.0, rng)

    result = benchmark(lambda: decoder.decode(llrs))
    bench_json(
        "functional_claims",
        "ldpc_software_throughput",
        {"n": code.n, "max_iterations": 10,
         "frames_per_sec_per_frame_path": round(1.0 / benchmark.stats.stats.mean, 2)},
    )
    assert (result.hard_bits == codeword).all()

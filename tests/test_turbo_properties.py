"""Property tests for the CTC interleaver and the BTS/STB bit conversions.

Hypothesis-driven invariants over :mod:`repro.turbo.ctc_interleaver` (the
two-step WiMAX permutation must be a bijection with an exact inverse for
every standard parameter set) and :mod:`repro.turbo.bits` (the symbol <->
bit extrinsic marginalisation/rebuild pair), including the leading-batch-axis
generalisation the batched turbo engine relies on.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import DecodingError
from repro.turbo import (
    CTC_INTERLEAVER_PARAMETERS,
    CTCInterleaver,
    bit_to_symbol_extrinsic,
    supported_ctc_block_sizes,
    symbol_to_bit_extrinsic,
)

_SIZES = sorted(CTC_INTERLEAVER_PARAMETERS)
_LOG2 = float(np.log(2.0))


class TestInterleaverProperties:
    @pytest.mark.parametrize("n_couples", _SIZES)
    def test_every_paper_parameter_set_is_a_bijection(self, n_couples):
        """All standard (P0..P3) sets produce a permutation with spread >= 1."""
        interleaver = CTCInterleaver.for_block_size(n_couples)
        perm = interleaver.permutation()
        assert np.array_equal(np.sort(perm), np.arange(n_couples))
        assert interleaver.spread() >= 1

    @pytest.mark.parametrize("n_couples", _SIZES)
    def test_permutation_matches_standard_formula(self, n_couples):
        """The vectorised construction equals the per-index standard formula."""
        interleaver = CTCInterleaver.for_block_size(n_couples)
        p0, p1, p2, p3 = interleaver.p0, interleaver.p1, interleaver.p2, interleaver.p3
        half = n_couples // 2
        perm = interleaver.permutation()
        for j in range(0, n_couples, max(1, n_couples // 25)):
            offset = (0, half + p1, p2, half + p3)[j % 4]
            assert perm[j] == (p0 * j + 1 + offset) % n_couples

    @given(
        size_index=st.integers(0, len(_SIZES) - 1),
        seed=st.integers(0, 2**32 - 1),
    )
    @settings(max_examples=40, deadline=None)
    def test_interleave_roundtrip(self, size_index, seed):
        """deinterleave(interleave(x)) == x for random symbol blocks."""
        n = _SIZES[size_index]
        interleaver = CTCInterleaver.for_block_size(n)
        symbols = np.random.default_rng(seed).integers(0, 4, n)
        restored = interleaver.deinterleave_symbols(
            interleaver.interleave_symbols(symbols)
        )
        assert np.array_equal(restored, symbols)

    @given(seed=st.integers(0, 2**32 - 1), batch=st.integers(1, 5))
    @settings(max_examples=30, deadline=None)
    def test_batched_interleave_matches_per_frame(self, seed, batch):
        """A leading batch axis must not change any frame's permutation."""
        interleaver = CTCInterleaver.for_block_size(48)
        symbols = np.random.default_rng(seed).integers(0, 4, (batch, 48))
        stacked = interleaver.interleave_symbols(symbols)
        for frame in range(batch):
            assert np.array_equal(
                stacked[frame], interleaver.interleave_symbols(symbols[frame])
            )
        assert np.array_equal(interleaver.deinterleave_symbols(stacked), symbols)

    @given(seed=st.integers(0, 2**32 - 1))
    @settings(max_examples=20, deadline=None)
    def test_interleave_preserves_symbol_multiset_per_bit_weight(self, seed):
        """The swap exchanges symbols 1 and 2 but keeps {0} and {3} fixed.

        Symbols 0 (A=B=0) and 3 (A=B=1) are invariant under the intra-couple
        swap, so their counts are preserved exactly; 1 and 2 may trade places
        but their combined count is preserved.
        """
        interleaver = CTCInterleaver.for_block_size(96)
        symbols = np.random.default_rng(seed).integers(0, 4, 96)
        interleaved = interleaver.interleave_symbols(symbols)
        before = np.bincount(symbols, minlength=4)
        after = np.bincount(interleaved, minlength=4)
        assert after[0] == before[0]
        assert after[3] == before[3]
        assert after[1] + after[2] == before[1] + before[2]


def _symbol_vectors(draw_shape=(4,)):
    return st.lists(
        st.floats(-20.0, 20.0), min_size=4, max_size=4
    ).map(lambda vals: np.array([0.0, vals[1], vals[2], vals[3]]))


class TestBitSymbolConversionProperties:
    @given(
        llr_a=st.floats(-15.0, 15.0, allow_nan=False),
        llr_b=st.floats(-15.0, 15.0, allow_nan=False),
    )
    @settings(max_examples=80, deadline=None)
    def test_rank1_roundtrip_is_exact_under_maxlog(self, llr_a, llr_b):
        """bit -> symbol -> bit recovers rank-1 (independent-bit) extrinsics.

        For a rank-1 symbol vector the max-log marginalisation is exact up to
        floating point, so the round trip must reproduce the bit LLRs.
        """
        bits = np.array([[llr_a, llr_b]])
        recovered = symbol_to_bit_extrinsic(bit_to_symbol_extrinsic(bits))
        assert np.allclose(recovered, bits, atol=1e-9)

    @given(vals=_symbol_vectors())
    @settings(max_examples=80, deadline=None)
    def test_maxlog_marginalisation_within_jacobian_bound(self, vals):
        """|exact - max-log| <= 2*log(2): each max* pair errs by at most log 2."""
        approx = symbol_to_bit_extrinsic(vals[None, :], exact=False)
        exact = symbol_to_bit_extrinsic(vals[None, :], exact=True)
        assert np.all(np.abs(exact - approx) <= 2.0 * _LOG2 + 1e-9)

    @given(vals=_symbol_vectors())
    @settings(max_examples=60, deadline=None)
    def test_strongly_decided_symbol_fixes_bit_signs(self, vals):
        """If one symbol dominates by a wide margin, both bit LLRs follow it."""
        winner = int(np.argmax(vals))
        boosted = vals.copy()
        boosted[winner] += 100.0
        bits = symbol_to_bit_extrinsic(boosted[None, :])[0]
        a_bit, b_bit = (winner >> 1) & 1, winner & 1
        # Positive LLR means bit 0 under the repo-wide convention.
        assert (bits[0] < 0) == bool(a_bit)
        assert (bits[1] < 0) == bool(b_bit)

    @given(
        seed=st.integers(0, 2**32 - 1),
        batch=st.integers(1, 4),
        n=st.integers(1, 6),
    )
    @settings(max_examples=40, deadline=None)
    def test_leading_axes_match_per_frame(self, seed, batch, n):
        """The (..., 4)/(..., 2) generalisation equals frame-by-frame calls."""
        rng = np.random.default_rng(seed)
        symbol_ext = rng.normal(0.0, 5.0, (batch, n, 4))
        bit_llrs = rng.normal(0.0, 5.0, (batch, n, 2))
        stb = symbol_to_bit_extrinsic(symbol_ext)
        bts = bit_to_symbol_extrinsic(bit_llrs)
        assert stb.shape == (batch, n, 2)
        assert bts.shape == (batch, n, 4)
        for frame in range(batch):
            assert np.array_equal(stb[frame], symbol_to_bit_extrinsic(symbol_ext[frame]))
            assert np.array_equal(bts[frame], bit_to_symbol_extrinsic(bit_llrs[frame]))

    def test_bit_to_symbol_reference_element_and_rank1_structure(self):
        rng = np.random.default_rng(3)
        bits = rng.normal(0.0, 4.0, (10, 2))
        symbols = bit_to_symbol_extrinsic(bits)
        assert np.all(symbols[:, 0] == 0.0)
        # Rank-1 structure: element 3 = element 1 + element 2.
        assert np.allclose(symbols[:, 3], symbols[:, 1] + symbols[:, 2])

    def test_rejects_bad_shapes(self):
        with pytest.raises(DecodingError):
            symbol_to_bit_extrinsic(np.zeros(4))
        with pytest.raises(DecodingError):
            symbol_to_bit_extrinsic(np.zeros((2, 3)))
        with pytest.raises(DecodingError):
            bit_to_symbol_extrinsic(np.zeros(2))
        with pytest.raises(DecodingError):
            bit_to_symbol_extrinsic(np.zeros((2, 3)))

    def test_supported_sizes_exposed(self):
        assert supported_ctc_block_sizes() == tuple(_SIZES)

"""Registry, boundary-validation and shard-planning tests for the service."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ConfigurationError, UnknownCodecError
from repro.service.registry import CodecSpec, default_registry
from repro.service.sharding import (
    DecodeCostModel,
    decode_in_worker,
    plan_shards,
)
from repro.utils.calibration import PiecewiseLinearCost, best_time, pool_amortizes


@pytest.fixture(scope="module")
def registry():
    return default_registry()


class TestRegistry:
    def test_resolves_and_caches_ldpc(self, registry):
        entry = registry.resolve("ldpc", 576, "1/2")
        assert entry.n_bits == 576
        assert entry.k_bits == 288
        assert not entry.decides_info_bits
        assert registry.resolve("ldpc", 576, "1/2") is entry  # cached

    def test_resolves_turbo(self, registry):
        entry = registry.resolve("turbo", 48, "1/2")
        assert entry.n_bits == 4 * 48
        assert entry.k_bits == 2 * 48
        assert entry.decides_info_bits

    def test_resolves_wifi(self, registry):
        entry = registry.resolve("wifi", 1944, "1/2")
        assert entry.n_bits == 1944
        assert entry.k_bits == 972
        assert not entry.decides_info_bits
        assert registry.resolve("wifi", 1944, "1/2") is entry  # cached

    def test_unknown_family(self, registry):
        with pytest.raises(UnknownCodecError, match="polar"):
            registry.resolve("polar", 1024, "1/2")

    def test_unknown_block_and_rate_list_served_codecs(self, registry):
        with pytest.raises(UnknownCodecError, match="ldpc:577:1/2"):
            registry.resolve("ldpc", 577, "1/2")
        with pytest.raises(UnknownCodecError, match="turbo:48:7/8"):
            registry.resolve("turbo", 48, "7/8")

    def test_advertised_specs_cover_all_families(self, registry):
        specs = registry.specs()
        families = {spec.family for spec in specs}
        assert families == {"ldpc", "wifi", "turbo"}
        assert CodecSpec("ldpc", 2304, "1/2") in specs
        assert CodecSpec("wifi", 1944, "1/2") in specs
        assert CodecSpec("wifi", 1944, "5/6") in specs
        assert CodecSpec("turbo", 48, "1/3") in specs

    def test_wifi_rejects_non_advertised_parameters(self, registry):
        with pytest.raises(UnknownCodecError, match="wifi:648:1/2"):
            registry.resolve("wifi", 648, "1/2")
        with pytest.raises(UnknownCodecError, match="wifi:1944:3/4"):
            registry.resolve("wifi", 1944, "3/4")

    def test_spec_label_and_key(self):
        spec = CodecSpec("ldpc", 576, "2/3A")
        assert spec.label == "ldpc:576:2/3A"
        assert spec.key == ("ldpc", 576, "2/3A")


class TestCalibrationPrimitives:
    def test_piecewise_linear_interpolates_and_extrapolates(self):
        curve = PiecewiseLinearCost(samples=((2, 1.0), (4, 1.5), (8, 3.5)))
        assert curve.cost(2) == pytest.approx(1.0)
        assert curve.cost(3) == pytest.approx(1.25)  # between samples
        assert curve.cost(6) == pytest.approx(2.5)
        assert curve.cost(16) == pytest.approx(7.5)  # last-segment extrapolation
        assert curve.cost(1) == pytest.approx(0.5)  # proportional below first
        assert curve.per_item(8) == pytest.approx(3.5 / 8)

    def test_piecewise_linear_validation(self):
        with pytest.raises(ConfigurationError):
            PiecewiseLinearCost(samples=())
        with pytest.raises(ConfigurationError):
            PiecewiseLinearCost(samples=((4, 1.0), (2, 0.5)))  # not ascending
        with pytest.raises(ConfigurationError):
            PiecewiseLinearCost(samples=((0, 1.0),))

    def test_best_time_returns_minimum(self):
        assert best_time(lambda: None, repeats=3) >= 0.0

    def test_pool_amortizes_threshold(self):
        assert pool_amortizes(1.0, spinup_s=0.25)
        assert not pool_amortizes(0.1, spinup_s=0.25)


class TestShardPlanning:
    def _model(self, registry, sizes=(1, 2, 4)):
        entry = registry.resolve("ldpc", 576, "1/2")
        return DecodeCostModel.calibrate(entry, sizes=sizes)

    def test_calibration_produces_positive_monotone_curve(self, registry):
        model = self._model(registry)
        assert model.curve.cost(1) > 0.0
        assert model.curve.cost(4) >= model.curve.cost(1)
        assert model.saturation_fps(4) > 0.0

    def test_tiny_load_never_shards(self, registry):
        model = self._model(registry)
        assert plan_shards(model, offered_fps=0.0, max_batch=4) == 0
        assert plan_shards(model, offered_fps=1e-3, max_batch=4) == 0

    def test_saturating_load_shards_and_caps_at_workers(self, registry):
        model = self._model(registry)
        saturating = 100.0 * model.saturation_fps(4)
        workers = plan_shards(model, saturating, max_batch=4, max_workers=3)
        assert 2 <= workers <= 3

    def test_spinup_threshold_blocks_small_workloads(self, registry):
        model = self._model(registry)
        saturating = 10.0 * model.saturation_fps(4)
        # An absurd spin-up cost means no finite workload amortizes a pool.
        assert (
            plan_shards(model, saturating, max_batch=4, spinup_s=1e9) == 0
        )

    def test_more_load_never_fewer_workers(self, registry):
        model = self._model(registry)
        base = model.saturation_fps(4)
        counts = [
            plan_shards(model, scale * base, max_batch=4, max_workers=64)
            for scale in (0.1, 2.0, 8.0, 32.0)
        ]
        assert counts == sorted(counts)

    def test_decode_in_worker_matches_direct_decode(self, registry):
        entry = registry.resolve("ldpc", 576, "1/2")
        rng = np.random.default_rng(7)
        llrs = rng.normal(0.0, 2.0, size=(3, entry.n_bits))
        hard, iterations, converged = decode_in_worker(entry.spec.key, llrs)
        direct = entry.decoder.decode_batch(llrs)
        np.testing.assert_array_equal(hard, direct.hard_bits)
        np.testing.assert_array_equal(iterations, direct.iterations)
        np.testing.assert_array_equal(converged, direct.converged)

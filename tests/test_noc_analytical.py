"""Differential harness pinning the analytical NoC model to the cycle engine.

Three layers of assertions:

* **Exact structural invariants** — the provable facts the model is built
  on: weighted hop counts never exceed the graph diameter, the engine never
  finishes below the zero-contention lower bound, simulated latencies never
  undercut their hop-count floors, and the estimator never predicts below
  the bound / floors it is clamped to.

* **Documented tolerance bands** — for every metric the estimate must land
  within :data:`repro.noc.ERROR_TOLERANCES`'s band of the simulated value:
  ``|est - sim| <= band * max(sim, slack)``.  The bands are the measured
  out-of-sample error envelopes (docs/noc-analytical.md) plus headroom;
  every (family, routing algorithm, collision policy) combination is
  exercised, plus a Hypothesis sweep over random workloads.

* **Screening equivalence** — `DesignSpaceExplorer.explore` with analytical
  screening reproduces the exhaustive winners on a reduced Table-I grid
  while actually skipping simulations.
"""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core import DecoderSpec, DesignSpaceExplorer
from repro.errors import ConfigurationError
from repro.ldpc import wimax_ldpc_code
from repro.noc import (
    ERROR_TOLERANCES,
    AnalyticalNocModel,
    BatchNocSimulator,
    CollisionPolicy,
    NocConfiguration,
    RoutingAlgorithm,
    build_routing_tables,
    build_topology,
    random_traffic,
    zero_contention_bound,
)

#: One representative of every topology family in the Table-I universe.
FAMILIES = [
    ("ring", None),
    ("mesh", None),
    ("toroidal-mesh", None),
    ("spidergon", None),
    ("honeycomb", None),
    ("generalized-de-bruijn", 2),
    ("generalized-kautz", 3),
]

ALGORITHMS = list(RoutingAlgorithm)
POLICIES = list(CollisionPolicy)

#: Family-valid parallelisms for differential workloads (distinct from the
#: model's probe sizes where the family's validity set allows it).
_WORKLOAD_P = {
    "ring": (8, 14),
    "mesh": (12, 20),
    "toroidal-mesh": (12, 20),
    "spidergon": (10, 18),
    "honeycomb": (12, 18),
    "generalized-de-bruijn": (10, 20),
    "generalized-kautz": (10, 20),
}


@pytest.fixture(scope="module")
def model():
    """One shared model so contention fits are paid once per key."""
    return AnalyticalNocModel()


@pytest.fixture(scope="module")
def graphs():
    cache = {}

    def build(family, parallelism, degree):
        key = (family, parallelism, degree)
        if key not in cache:
            topology = build_topology(family, parallelism, degree)
            cache[key] = (topology, build_routing_tables(topology))
        return cache[key]

    return build


def _check_differential(model, graphs, family, degree, parallelism, config, traffic):
    """Run engine + estimator on one workload and enforce every contract."""
    topology, tables = graphs(family, parallelism, degree)
    engine = BatchNocSimulator(topology, config, routing_tables=tables, seed=3)
    result = engine.run(traffic)
    estimate = model.estimate(family, degree, config, traffic, tables=tables)

    # --- exact structural invariants -------------------------------------
    bound = zero_contention_bound(tables, config, traffic)
    assert estimate.zero_contention_bound == bound
    assert result.ncycles >= bound, "engine finished below the provable bound"
    assert estimate.ncycles >= bound, "estimate clamped below its own bound"
    assert estimate.max_hops <= tables.diameter
    assert 0 <= estimate.mean_hops <= estimate.max_hops
    if estimate.total_messages:
        latency_floor = (
            estimate.network_messages * (estimate.mean_hops + 1.0)
            / estimate.total_messages
        )
        assert result.statistics.mean_latency >= latency_floor - 1e-9
        assert estimate.mean_latency >= latency_floor - 1e-9
        if estimate.network_messages:
            assert result.statistics.max_latency >= estimate.max_hops + 1
            assert estimate.max_latency >= estimate.max_hops + 1

    # --- documented tolerance bands --------------------------------------
    simulated = {
        "ncycles": float(result.ncycles),
        "mean_latency": result.statistics.mean_latency,
        "max_latency": float(result.statistics.max_latency),
        "max_fifo": float(result.max_fifo_occupancy),
    }
    estimated = {
        "ncycles": estimate.ncycles,
        "mean_latency": estimate.mean_latency,
        "max_latency": estimate.max_latency,
        "max_fifo": estimate.max_fifo_occupancy,
    }
    for metric, tolerance in ERROR_TOLERANCES.items():
        if metric not in simulated:
            continue
        error = abs(estimated[metric] - simulated[metric])
        limit = tolerance.band * max(simulated[metric], tolerance.slack)
        assert error <= limit, (
            f"{metric}: estimate {estimated[metric]:.2f} vs simulated "
            f"{simulated[metric]:.2f} exceeds documented band {tolerance.band} "
            f"({family} P={parallelism} {config.describe()})"
        )
    return result, estimate


class TestToleranceBands:
    """Documented bands hold on every (family, algorithm, policy) combo."""

    @pytest.mark.parametrize("family,degree", FAMILIES)
    @pytest.mark.parametrize("algorithm", ALGORITHMS)
    @pytest.mark.parametrize("policy", POLICIES)
    def test_combo_within_documented_bands(
        self, model, graphs, family, degree, algorithm, policy
    ):
        for parallelism, messages, rate in (
            (_WORKLOAD_P[family][0], 12, 1.0),
            (_WORKLOAD_P[family][1], 24, 0.5),
        ):
            config = NocConfiguration(
                injection_rate=rate, collision_policy=policy
            ).with_routing(algorithm)
            traffic = random_traffic(parallelism, messages, seed=2024)
            _check_differential(
                model, graphs, family, degree, parallelism, config, traffic
            )

    def test_route_local_traffic_within_bands(self, model, graphs):
        config = NocConfiguration(
            injection_rate=0.5, route_local=True, collision_policy=CollisionPolicy.SCM
        )
        traffic = random_traffic(12, 16, seed=55)
        _check_differential(model, graphs, "generalized-kautz", 3, 12, config, traffic)


class TestDifferentialHypothesis:
    """Randomized workloads: invariants + bands on fresh draws."""

    @given(
        combo=st.sampled_from(FAMILIES),
        p_index=st.integers(min_value=0, max_value=1),
        messages=st.integers(min_value=1, max_value=28),
        rate=st.sampled_from([0.25, 0.4, 0.5, 0.75, 1.0]),
        algorithm=st.sampled_from(ALGORITHMS),
        policy=st.sampled_from(POLICIES),
        route_local=st.booleans(),
        traffic_seed=st.integers(min_value=0, max_value=2**31 - 1),
    )
    @settings(
        max_examples=25,
        deadline=None,
        derandomize=True,
        suppress_health_check=[HealthCheck.function_scoped_fixture],
    )
    def test_random_workloads(
        self, model, graphs, combo, p_index, messages, rate, algorithm, policy,
        route_local, traffic_seed,
    ):
        family, degree = combo
        parallelism = _WORKLOAD_P[family][p_index]
        config = NocConfiguration(
            injection_rate=rate,
            route_local=route_local,
            collision_policy=policy,
        ).with_routing(algorithm)
        traffic = random_traffic(parallelism, messages, seed=traffic_seed)
        _check_differential(
            model, graphs, family, degree, parallelism, config, traffic
        )


class TestModelMechanics:
    def test_empty_traffic_estimates_zero(self, model):
        traffic = random_traffic(8, 0, seed=0)
        estimate = model.estimate(
            "generalized-kautz", 3, NocConfiguration(), traffic
        )
        assert estimate.ncycles == 0
        assert estimate.zero_contention_bound == 0
        assert estimate.sustained_throughput == 0.0

    def test_sustained_throughput_is_messages_per_cycle(self, model):
        traffic = random_traffic(8, 8, seed=1)
        estimate = model.estimate("spidergon", None, NocConfiguration(), traffic)
        assert estimate.sustained_throughput == pytest.approx(
            estimate.total_messages / estimate.ncycles
        )

    def test_fit_cached_per_key(self, model):
        fit_a = model.fit_for(
            "spidergon", None, RoutingAlgorithm.SSP_FL, CollisionPolicy.SCM
        )
        fit_b = model.fit_for(
            "spidergon", 3, RoutingAlgorithm.SSP_FL, CollisionPolicy.SCM
        )
        # Fixed-degree families drop the degree from the key: same fit object.
        assert fit_a is fit_b
        assert fit_a.n_probes > 0
        assert set(fit_a.thetas) == {
            "ncycles", "mean_latency", "latency_std", "max_latency", "max_fifo",
        }

    def test_digraph_fits_keyed_by_degree(self, model):
        fit_d2 = model.fit_for(
            "generalized-kautz", 2, RoutingAlgorithm.SSP_FL, CollisionPolicy.DCM
        )
        fit_d3 = model.fit_for(
            "generalized-kautz", 3, RoutingAlgorithm.SSP_FL, CollisionPolicy.DCM
        )
        assert fit_d2 is not fit_d3
        assert fit_d2.degree == 2 and fit_d3.degree == 3

    def test_nonnegative_corrections(self, model):
        fit = model.fit_for(
            "ring", None, RoutingAlgorithm.SSP_RR, CollisionPolicy.SCM
        )
        for metric, theta in fit.thetas.items():
            assert all(value >= 0.0 for value in theta), metric

    def test_tolerances_documented_for_every_metric(self):
        for metric, tolerance in ERROR_TOLERANCES.items():
            assert tolerance.band > tolerance.measured_max, (
                f"{metric}: enforced band must dominate the measured envelope"
            )
            assert tolerance.slack > 0


class TestScreenedExploration:
    """explore(screen="analytical") vs the exhaustive Table-I flow."""

    GRID_TOPOLOGIES = [("generalized-kautz", 3), ("spidergon", 3)]
    GRID_PARALLELISMS = [8, 16]

    @pytest.fixture(scope="class")
    def explorer(self):
        return DesignSpaceExplorer(DecoderSpec(mapping_attempts=1), seed=0)

    @pytest.fixture(scope="class")
    def code(self):
        return wimax_ldpc_code(576, "1/2")

    @pytest.fixture(scope="class")
    def exhaustive(self, explorer, code):
        return explorer.explore(
            code, self.GRID_TOPOLOGIES, self.GRID_PARALLELISMS, screen=None
        )

    @pytest.fixture(scope="class")
    def screened(self, explorer, code):
        # confirm_top=6 covers the whole near-tied top parallelism tier, which
        # is the documented condition for screening to be winner-safe.
        return explorer.explore(
            code, self.GRID_TOPOLOGIES, self.GRID_PARALLELISMS,
            screen="analytical", confirm_top=6,
        )

    def test_exhaustive_simulates_everything(self, exhaustive):
        assert exhaustive.n_candidates == 2 * 2 * 3
        assert exhaustive.n_simulated == exhaustive.n_candidates
        assert exhaustive.n_skipped == 0
        assert exhaustive.screened == []

    def test_screened_skips_simulations(self, screened, exhaustive):
        assert screened.n_candidates == exhaustive.n_candidates
        assert screened.n_skipped > 0
        assert screened.n_simulated + screened.n_skipped == screened.n_candidates
        assert len(screened.points) == screened.n_simulated
        assert len(screened.screened) == screened.n_candidates

    def test_screened_reproduces_exhaustive_winners(self, screened, exhaustive):
        for objective in ("throughput", "throughput_per_area"):
            full_winner = exhaustive.winners[objective]
            screen_winner = screened.winners[objective]
            assert (
                full_winner.topology_family, full_winner.degree,
                full_winner.parallelism, full_winner.routing_algorithm,
            ) == (
                screen_winner.topology_family, screen_winner.degree,
                screen_winner.parallelism, screen_winner.routing_algorithm,
            ), f"screening changed the {objective} winner"

    def test_report_describe_mentions_skips(self, screened):
        text = screened.describe()
        assert "screen=analytical" in text
        assert f"skipped {screened.n_skipped}" in text

    def test_winners_use_simulated_not_estimated_values(self, screened):
        for objective, winner in screened.winners.items():
            values = [
                DesignSpaceExplorer._objective_value(p, objective)
                for p in screened.points
            ]
            assert DesignSpaceExplorer._objective_value(
                winner, objective
            ) == pytest.approx(max(values))

    def test_explore_validates_arguments(self, explorer, code):
        with pytest.raises(ConfigurationError):
            explorer.explore(code, self.GRID_TOPOLOGIES, [8], screen="oracle")
        with pytest.raises(ConfigurationError):
            explorer.explore(code, self.GRID_TOPOLOGIES, [8], confirm_top=0)
        with pytest.raises(ConfigurationError):
            explorer.explore(
                code, self.GRID_TOPOLOGIES, [8], objectives=("latency",)
            )
        with pytest.raises(ConfigurationError):
            explorer.explore(code, self.GRID_TOPOLOGIES, [8], objectives=())

"""Differential suite for the pluggable array-backend layer.

Three families of guarantees (documented in ``docs/backends.md``):

* **registry & selection** — ``repro.backend`` names, constructs, caches and
  selects backends; unknown names raise a typed
  :class:`~repro.errors.ConfigurationError`, missing optional dependencies a
  :class:`~repro.errors.BackendUnavailableError`, and an unavailable backend
  makes the dependent tests *skip*, never fail;
* **kernel equivalence** — every ported kernel (check-node updates, segment
  min-sum, BatchBCJR / turbo) reproduces the NumPy reference on every
  available backend: bit-identical where ``ArrayBackend.exact`` is true,
  within a pinned tolerance otherwise, and bit-identical on integer / cycle
  state everywhere;
* **JIT wiring** — the NoC scalar fallbacks routed through
  :mod:`repro.noc.engine_jit` are cycle- and draw-exact against the scalar
  engine.  numba itself is optional, so the wiring is exercised with a
  hand-built ``jit=True`` backend: ``maybe_compile`` falls back to the
  interpreted kernel, which runs the *same code object* numba would compile
  — slow, but bit-identical, so the equivalence proof holds on hosts
  without numba.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

import repro.backend as backends
from repro.backend import ArrayBackend, available, names, resolve, use, xp
from repro.backend.__main__ import main as backend_cli
from repro.errors import BackendUnavailableError, ConfigurationError, DecodingError
from repro.ldpc.checknode import min_sum_check_update
from repro.noc import (
    BatchNocSimulator,
    BatchedNocKernel,
    CollisionPolicy,
    NocConfiguration,
    RoutingAlgorithm,
    build_routing_tables,
    build_topology,
    random_traffic,
)
from repro.sim import BatchTurboDecoder
from repro.sim.kernels import (
    min_sum_update,
    min_sum_update_segments,
    sum_product_update,
)
from repro.sim.turbo_batch import BatchBCJR
from repro.utils.rng import DeflectionStreams

ALL_NAMES = names()


def _get_backend(name: str) -> ArrayBackend:
    """The named backend, or a pytest skip when its dependency is missing."""
    try:
        return backends.backend(name)
    except BackendUnavailableError as exc:
        pytest.skip(f"backend {name!r} unavailable: {exc}")


def _fake_jit_backend() -> ArrayBackend:
    """A ``jit=True`` backend that works without numba.

    Routes the NoC paths through :mod:`repro.noc.engine_jit` with the
    kernels running interpreted (``maybe_compile`` falls back when numba is
    missing) — the same code object, bit-identical results.
    """
    return ArrayBackend(
        name="jit-interp",
        xp=np,
        version="0",
        jit=True,
        reduceat_min=np.minimum.reduceat,
        reduceat_add=np.add.reduceat,
    )


# --------------------------------------------------------------------------- #
# Registry and selection
# --------------------------------------------------------------------------- #
class TestRegistry:
    def test_registered_names(self):
        assert set(ALL_NAMES) == {"numpy", "numba", "cupy", "torch"}

    def test_numpy_always_available(self):
        assert "numpy" in available()
        b = backends.backend("numpy")
        assert b.xp is np
        assert b.exact and not b.jit
        assert b.supports_segments

    def test_unknown_name_raises_typed_error_listing_choices(self):
        with pytest.raises(ConfigurationError, match="numpy"):
            backends.backend("jax")

    def test_unavailable_backend_raises_backend_unavailable(self):
        for name in set(ALL_NAMES) - set(available()):
            with pytest.raises(BackendUnavailableError, match=name):
                backends.backend(name)

    def test_backend_unavailable_is_a_configuration_error(self):
        assert issubclass(BackendUnavailableError, ConfigurationError)

    def test_backends_are_cached_per_name(self):
        assert backends.backend("numpy") is backends.backend("numpy")

    def test_key_is_name_and_jit(self):
        assert backends.backend("numpy").key == ("numpy", False)
        assert _fake_jit_backend().key == ("jit-interp", True)


class TestSelection:
    def test_default_is_numpy(self, monkeypatch):
        monkeypatch.setattr(backends, "_SELECTED", None)
        monkeypatch.delenv("REPRO_BACKEND", raising=False)
        assert backends.active().name == "numpy"
        assert xp() is np

    def test_env_var_is_honoured(self, monkeypatch):
        monkeypatch.setattr(backends, "_SELECTED", None)
        monkeypatch.setenv("REPRO_BACKEND", "numpy")
        assert backends.active().name == "numpy"

    def test_use_as_context_manager_restores_previous(self, monkeypatch):
        monkeypatch.setattr(backends, "_SELECTED", None)
        monkeypatch.delenv("REPRO_BACKEND", raising=False)
        with use("numpy") as selected:
            assert selected.name == "numpy"
            assert backends._SELECTED == "numpy"
        assert backends._SELECTED is None

    def test_use_validates_eagerly(self, monkeypatch):
        monkeypatch.setattr(backends, "_SELECTED", None)
        with pytest.raises(ConfigurationError):
            use("not-a-backend")
        assert backends._SELECTED is None

    def test_use_overrides_env(self, monkeypatch):
        monkeypatch.setattr(backends, "_SELECTED", None)
        monkeypatch.setenv("REPRO_BACKEND", "not-a-backend")
        with use("numpy"):
            assert backends.active().name == "numpy"

    def test_resolve_none_is_active(self, monkeypatch):
        monkeypatch.setattr(backends, "_SELECTED", None)
        monkeypatch.delenv("REPRO_BACKEND", raising=False)
        assert resolve(None) is backends.backend("numpy")

    def test_resolve_string_and_instance(self):
        assert resolve("numpy") is backends.backend("numpy")
        fake = _fake_jit_backend()
        assert resolve(fake) is fake

    def test_resolve_rejects_other_types(self):
        with pytest.raises(ConfigurationError, match="int"):
            resolve(3)


class TestCli:
    def test_table_lists_every_backend(self, capsys):
        assert backend_cli([]) == 0
        out = capsys.readouterr().out
        for name in ALL_NAMES:
            assert name in out
        assert "active: " in out

    def test_probe_numpy_exits_zero(self, capsys):
        assert backend_cli(["numpy"]) == 0
        assert "numpy: available" in capsys.readouterr().out

    def test_probe_reports_availability_via_exit_code(self, capsys):
        for name in set(ALL_NAMES) - {"numpy"}:
            expected = 0 if name in available() else 1
            assert backend_cli([name]) == expected

    def test_probe_unknown_name_raises(self):
        with pytest.raises(ConfigurationError, match="valid choices"):
            backend_cli(["jax"])


# --------------------------------------------------------------------------- #
# Check-node kernels
# --------------------------------------------------------------------------- #
llr_strategy = st.floats(
    min_value=-40.0, max_value=40.0, allow_nan=False, width=64
).map(lambda v: -0.0 if v == 0.0 else v)

check_strategy = st.lists(
    st.one_of(llr_strategy, st.sampled_from([0.0, -0.0, 1e-300, -1e-300])),
    min_size=2,
    max_size=9,
)


class TestCheckNodeKernels:
    @pytest.mark.parametrize("name", ALL_NAMES)
    @settings(max_examples=60, deadline=None, derandomize=True)
    @given(q=check_strategy, scaling=st.sampled_from([0.75, 1.0]))
    def test_min_sum_matches_scalar_reference(self, name, q, scaling):
        b = _get_backend(name)
        arr = np.asarray(q, dtype=np.float64)
        reference = min_sum_check_update(arr, scaling=scaling)
        got = b.to_numpy(min_sum_update(b.asarray(arr), scaling=scaling, backend=b))
        if b.exact:
            assert np.array_equal(got, reference), (got, reference)
        else:
            np.testing.assert_allclose(got, reference, rtol=1e-6, atol=1e-9)

    def test_min_sum_negative_zero_regression(self):
        # -0.0 must count as negative (signbit convention): both edges see
        # the other's sign, so the edge paired with -0.0 flips.
        q = np.array([-0.0, 3.0, 5.0])
        reference = min_sum_check_update(q)
        # Edges 1 and 2 see min magnitude 0.0 with a negative sign product:
        # the flip survives only in the sign bit (-0.0), which is exactly
        # what the old ``arr < 0`` formulation lost.
        assert np.signbit(reference[1]) and np.signbit(reference[2])
        assert np.array_equal(min_sum_update(q), reference)

    @pytest.mark.parametrize("name", ALL_NAMES)
    @settings(max_examples=40, deadline=None, derandomize=True)
    @given(q=check_strategy)
    def test_sum_product_matches_numpy(self, name, q):
        b = _get_backend(name)
        arr = np.asarray(q, dtype=np.float64)
        reference = sum_product_update(arr, backend="numpy")
        got = b.to_numpy(sum_product_update(b.asarray(arr), backend=b))
        if b.exact:
            assert np.array_equal(got, reference)
        else:
            np.testing.assert_allclose(got, reference, rtol=1e-6, atol=1e-9)

    @pytest.mark.parametrize("name", ALL_NAMES)
    @settings(max_examples=40, deadline=None, derandomize=True)
    @given(
        degrees=st.lists(st.integers(2, 7), min_size=1, max_size=6),
        batch=st.integers(1, 4),
        seed=st.integers(0, 2**16),
    )
    def test_segment_min_sum_matches_dense(self, name, degrees, batch, seed):
        b = _get_backend(name)
        if not b.supports_segments:
            pytest.skip(f"backend {name!r} has no segment primitives")
        row_ptr = np.concatenate([[0], np.cumsum(degrees)]).astype(np.int64)
        rng = np.random.default_rng(seed)
        v2c = rng.normal(0.0, 4.0, size=(batch, int(row_ptr[-1])))
        v2c[rng.random(v2c.shape) < 0.1] = -0.0  # exercise the sign convention
        got = b.to_numpy(
            min_sum_update_segments(b.asarray(v2c), row_ptr, backend=b)
        )
        dense = np.empty_like(v2c)
        for start, stop in zip(row_ptr[:-1], row_ptr[1:]):
            dense[:, start:stop] = min_sum_update(v2c[:, start:stop])
        if b.exact:
            assert np.array_equal(got, dense)
        else:
            np.testing.assert_allclose(got, dense, rtol=1e-6, atol=1e-9)

    def test_segment_kernel_requires_segment_primitives(self):
        stripped = ArrayBackend(name="bare", xp=np, version="0")
        with pytest.raises(DecodingError, match="segment"):
            min_sum_update_segments(
                np.zeros((1, 4)), np.array([0, 2, 4]), backend=stripped
            )

    def test_kernels_accept_backend_names(self):
        q = np.array([[1.0, -2.0, 0.5]])
        assert np.array_equal(
            min_sum_update(q, backend="numpy"), min_sum_update(q)
        )


# --------------------------------------------------------------------------- #
# BatchBCJR / turbo
# --------------------------------------------------------------------------- #
class TestTurboKernels:
    @pytest.mark.parametrize("name", ALL_NAMES)
    @pytest.mark.parametrize("algorithm", ["max-log", "log-map"])
    def test_bcjr_activation_matches_numpy(self, name, algorithm):
        b = _get_backend(name)
        rng = np.random.default_rng(7)
        batch, n = 3, 24
        sys_llrs = rng.normal(0.0, 2.0, size=(batch, n, 2))
        par_llrs = rng.normal(0.0, 2.0, size=(batch, n, 2))
        apriori = rng.normal(0.0, 1.0, size=(batch, n, 4))
        reference = BatchBCJR(algorithm=algorithm).decode_batch(
            sys_llrs, par_llrs, apriori
        )
        got = BatchBCJR(algorithm=algorithm, backend=b).decode_batch(
            sys_llrs, par_llrs, apriori
        )
        # Hard symbols are integer state: bit-identical on every backend.
        assert np.array_equal(got.hard_symbols, reference.hard_symbols)
        pairs = [
            (got.aposteriori, reference.aposteriori),
            (got.extrinsic, reference.extrinsic),
            (got.final_alpha, reference.final_alpha),
            (got.final_beta, reference.final_beta),
        ]
        for got_arr, ref_arr in pairs:
            if b.exact:
                assert np.array_equal(got_arr, ref_arr)
            else:
                np.testing.assert_allclose(got_arr, ref_arr, rtol=1e-6, atol=1e-8)

    @pytest.mark.parametrize("name", ALL_NAMES)
    def test_turbo_decoder_matches_numpy(self, name, small_turbo_encoder):
        b = _get_backend(name)
        encoder = small_turbo_encoder
        rng = np.random.default_rng(21)
        info = rng.integers(0, 2, (4, 2 * encoder.n_couples))
        bits = np.stack(
            [encoder.encode(frame).to_bit_array() for frame in info]
        ).astype(np.float64)
        llrs = (1 - 2 * bits) * 3.0 + rng.normal(0.0, 1.5, size=bits.shape)
        reference = BatchTurboDecoder(encoder, max_iterations=4).decode_batch(llrs)
        got = BatchTurboDecoder(encoder, max_iterations=4, backend=b).decode_batch(
            llrs
        )
        # Decisions, iteration counts and convergence are integer state.
        assert np.array_equal(got.hard_bits, reference.hard_bits)
        assert np.array_equal(got.hard_symbols, reference.hard_symbols)
        assert np.array_equal(got.iterations, reference.iterations)
        assert np.array_equal(got.converged, reference.converged)
        assert got.decision_changes == reference.decision_changes
        if b.exact:
            assert np.array_equal(got.aposteriori, reference.aposteriori)


# --------------------------------------------------------------------------- #
# NoC scalar fallbacks through the JIT wiring
# --------------------------------------------------------------------------- #
def _result_signature(result):
    """Every observable a backend switch must leave untouched."""
    return {
        "ncycles": result.ncycles,
        "total": result.total_messages,
        "delivered": result.delivered_messages,
        "bypassed": result.local_bypassed,
        "max_fifo": result.max_fifo_occupancy,
        "max_injection": result.max_injection_occupancy,
        "per_node_max_fifo": list(result.per_node_max_fifo),
        "count": result.statistics.count,
        "total_latency": result.statistics.total_latency,
        "max_latency": result.statistics.max_latency,
        "total_hops": result.statistics.total_hops,
        "misrouted": result.statistics.misrouted,
        "latencies": list(result.statistics._latencies),
    }


_NOC_SPECS = [
    ("generalized-kautz", 8, 3),
    ("ring", 6, None),
    ("spidergon", 8, None),
    ("mesh", 9, None),
]

_NOC_CONFIGS = [
    NocConfiguration(),
    NocConfiguration(
        routing_algorithm=RoutingAlgorithm.SSP_RR,
        collision_policy=CollisionPolicy.DCM,
    ),
    NocConfiguration(
        routing_algorithm=RoutingAlgorithm.ASP_FT,
        fifo_capacity=3,
        injection_rate=0.5,
    ),
    NocConfiguration(fifo_capacity=2, route_local=True),
]


class TestNocJitWiring:
    @pytest.mark.parametrize("spec", _NOC_SPECS, ids=lambda s: s[0])
    @pytest.mark.parametrize("cfg", range(len(_NOC_CONFIGS)))
    def test_engine_cycle_exact_through_jit_path(self, spec, cfg):
        topology = build_topology(*spec)
        tables = build_routing_tables(topology)
        config = _NOC_CONFIGS[cfg]
        traffic = random_traffic(topology.n_nodes, 14, seed=31 + cfg)
        scalar = BatchNocSimulator(topology, config, routing_tables=tables, seed=5)
        jit = BatchNocSimulator(
            topology, config, routing_tables=tables, seed=5,
            backend=_fake_jit_backend(),
        )
        assert _result_signature(jit.run(traffic)) == _result_signature(
            scalar.run(traffic)
        )

    def test_engine_jit_word_block_reentry(self, monkeypatch):
        # A tiny word block forces mid-draw suspension and re-entry; the
        # resumed kernel must consume the identical RNG word stream.
        import repro.noc.engine_jit as engine_jit

        monkeypatch.setattr(engine_jit, "_WORD_BLOCK", 3)
        topology = build_topology("generalized-kautz", 8, 3)
        tables = build_routing_tables(topology)
        config = NocConfiguration(collision_policy=CollisionPolicy.SCM)
        traffic = random_traffic(8, 20, seed=9)
        scalar = BatchNocSimulator(topology, config, routing_tables=tables, seed=2)
        jit = BatchNocSimulator(
            topology, config, routing_tables=tables, seed=2,
            backend=_fake_jit_backend(),
        )
        assert _result_signature(jit.run(traffic)) == _result_signature(
            scalar.run(traffic)
        )

    def test_engine_jit_max_cycles_message_matches_scalar(self):
        from repro.errors import SimulationError

        topology = build_topology("ring", 6)
        tables = build_routing_tables(topology)
        config = NocConfiguration()
        traffic = random_traffic(6, 30, seed=2)
        messages = {}
        for key, backend in (("scalar", None), ("jit", _fake_jit_backend())):
            engine = BatchNocSimulator(
                topology, config, routing_tables=tables, seed=0,
                max_cycles=3, backend=backend,
            )
            with pytest.raises(SimulationError) as excinfo:
                engine.run(traffic)
            messages[key] = str(excinfo.value)
        assert messages["jit"] == messages["scalar"]

    @pytest.mark.parametrize(
        "policy", [CollisionPolicy.SCM, CollisionPolicy.DCM], ids=lambda p: p.name
    )
    def test_batched_kernel_scalar_fallback_through_jit_path(self, policy):
        # fifo_capacity=3 forces the batched kernel onto its scalar
        # fallback, which is where the JIT serve loop takes over.
        topology = build_topology("generalized-kautz", 8, 3)
        tables = build_routing_tables(topology)
        config = NocConfiguration(collision_policy=policy, fifo_capacity=3)
        traffics = [random_traffic(8, 10, seed=70 + i) for i in range(3)]
        seeds = [0, 4, 9]
        scalar = BatchedNocKernel(topology, config, routing_tables=tables)
        jit = BatchedNocKernel(
            topology, config, routing_tables=tables, backend=_fake_jit_backend()
        )
        for got, ref in zip(jit.run(traffics, seeds), scalar.run(traffics, seeds)):
            assert _result_signature(got) == _result_signature(ref)

    def test_resume_replay_matches_python_replay(self, monkeypatch):
        # Small rounds go through the scalar replay; force every round
        # scalar on both kernels so the JIT replay is compared directly,
        # and shrink the stream chunk so replay refills re-enter mid-draw.
        import repro.noc.engine_batch as engine_batch

        monkeypatch.setattr(engine_batch, "_VEC_MIN_ROUND", 1 << 30)
        monkeypatch.setattr(engine_batch, "_VEC_MIN_ROUND_JIT", 1 << 30)
        monkeypatch.setattr(DeflectionStreams, "CHUNK", 2)
        topology = build_topology("generalized-kautz", 8, 3)
        tables = build_routing_tables(topology)
        config = NocConfiguration(collision_policy=CollisionPolicy.SCM)
        traffics = [random_traffic(8, 12, seed=110 + i) for i in range(4)]
        seeds = [3, 1, 8, 0]
        scalar = BatchedNocKernel(topology, config, routing_tables=tables)
        jit = BatchedNocKernel(
            topology, config, routing_tables=tables, backend=_fake_jit_backend()
        )
        for got, ref in zip(jit.run(traffics, seeds), scalar.run(traffics, seeds)):
            assert _result_signature(got) == _result_signature(ref)

    def test_per_call_override_beats_active_selection(self):
        # backend= on the engine wins over the process-wide selection.
        topology = build_topology("ring", 6)
        tables = build_routing_tables(topology)
        traffic = random_traffic(6, 8, seed=1)
        engine = BatchNocSimulator(
            topology, NocConfiguration(), routing_tables=tables, seed=0,
            backend="numpy",
        )
        reference = _result_signature(engine.run(traffic))
        with use("numpy"):
            assert _result_signature(engine.run(traffic)) == reference


# --------------------------------------------------------------------------- #
# Backend-aware calibration caches
# --------------------------------------------------------------------------- #
class TestCalibrationKeying:
    def test_sweep_cost_model_is_cached_per_backend_key(self, monkeypatch):
        import repro.noc.sweep as sweep_mod

        calls = []
        fake_model = object()

        monkeypatch.setattr(sweep_mod, "_COST_MODELS", {})
        monkeypatch.setattr(
            sweep_mod, "_calibrate", lambda: calls.append(1) or fake_model
        )
        first = sweep_mod.scheduler_cost_model()
        second = sweep_mod.scheduler_cost_model()
        assert first is second is fake_model
        assert len(calls) == 1
        # A different active backend key triggers a fresh calibration.
        monkeypatch.setattr(sweep_mod, "resolve", lambda _=None: _fake_jit_backend())
        sweep_mod.scheduler_cost_model()
        assert len(calls) == 2

    def test_decode_cost_model_records_backend_key(self):
        from repro.service.registry import default_registry
        from repro.service.sharding import DecodeCostModel

        entry = default_registry().resolve("ldpc", 576, "1/2")
        model = DecodeCostModel.calibrate(entry, sizes=(1, 2))
        assert model.backend_key == resolve(None).key
        assert model.is_current()

    def test_decode_cost_model_staleness_detection(self, monkeypatch):
        import repro.service.sharding as sharding_mod
        from repro.service.registry import default_registry

        entry = default_registry().resolve("ldpc", 576, "1/2")
        model = sharding_mod.DecodeCostModel.calibrate(entry, sizes=(1, 2))
        monkeypatch.setattr(
            sharding_mod, "resolve", lambda _=None: _fake_jit_backend()
        )
        assert not model.is_current()

"""Unit tests for the hardware cost models (area, memory, power, technology)."""

from __future__ import annotations

import pytest

from repro.errors import ModelError
from repro.hw import (
    NocAreaModel,
    PowerModel,
    ProcessingCoreAreaModel,
    TECH_45NM,
    TECH_65NM,
    TECH_90NM,
    decoder_area,
    plan_shared_memories,
    scale_area,
)
from repro.hw.area import AP_MAX_FIFO_DEPTH
from repro.noc.config import NocConfiguration, NodeArchitecture, RoutingAlgorithm


class TestTechnology:
    def test_scale_area_quadratic(self):
        assert scale_area(3.17, 90, 65) == pytest.approx(3.17 * (65 / 90) ** 2)

    def test_scale_area_identity(self):
        assert scale_area(1.0, 90, 90) == pytest.approx(1.0)

    def test_scale_area_matches_paper_normalisation(self):
        # Paper Table III: 3.17 mm^2 at 90 nm -> 1.65 mm^2 normalised to 65 nm.
        assert scale_area(3.17, 90, 65) == pytest.approx(1.65, abs=0.02)

    def test_smaller_nodes_have_smaller_bit_areas(self):
        assert TECH_65NM.sram_bit_area_um2 < TECH_90NM.sram_bit_area_um2
        assert TECH_45NM.gate_area_um2 < TECH_65NM.gate_area_um2

    def test_scale_area_rejects_bad_input(self):
        with pytest.raises(ModelError):
            scale_area(-1.0, 90, 65)
        with pytest.raises(ModelError):
            scale_area(1.0, 0, 65)


class TestMemoryPlan:
    def test_wimax_default_plan_matches_paper_sizing(self):
        plan = plan_shared_memories()
        # 7-bit memory sized by the 1152 x 7 LDPC worst case,
        # 5-bit memory by the 2400 x 4 turbo branch storage.
        assert plan.wide_locations == 1152 * 7
        assert plan.narrow_locations == 2400 * 4
        assert plan.total_bits == 1152 * 7 * 7 + 2400 * 4 * 5

    def test_turbo_state_metrics_fit_in_wide_memory(self):
        plan = plan_shared_memories(n_pes=22)
        assert plan.turbo_state_metric_locations == 22 * 3 * 2 * 8
        assert plan.turbo_state_metric_locations <= plan.wide_locations

    def test_bits_per_pe(self):
        plan = plan_shared_memories(n_pes=22)
        assert plan.bits_per_pe == pytest.approx(plan.total_bits / 22)

    def test_smaller_code_set_needs_less_memory(self):
        wifi_only = plan_shared_memories(ldpc_max_checks=972, turbo_max_couples=240)
        assert wifi_only.total_bits < plan_shared_memories().total_bits

    def test_describe_mentions_bits(self):
        assert "bits" in plan_shared_memories().describe()

    def test_rejects_bad_parameters(self):
        with pytest.raises(ModelError):
            plan_shared_memories(n_pes=0)
        with pytest.raises(ModelError):
            plan_shared_memories(ldpc_max_checks=0)
        with pytest.raises(ModelError):
            plan_shared_memories(wide_bits=0)


class TestNocAreaModel:
    def test_node_area_scales_with_fifo_depth(self):
        model = NocAreaModel()
        shallow = model.node_area_um2(4, 26, fifo_depth=2)
        deep = model.node_area_um2(4, 26, fifo_depth=16)
        assert deep > 2 * shallow

    def test_node_area_scales_with_crossbar_size(self):
        model = NocAreaModel()
        assert model.node_area_um2(5, 26, 4) > model.node_area_um2(3, 26, 4)

    def test_pp_wider_flit_than_ap(self):
        pp = NocConfiguration(node_architecture=NodeArchitecture.PP)
        ap = NocConfiguration(node_architecture=NodeArchitecture.AP)
        model = NocAreaModel()
        pp_area = model.noc_area_mm2(22, 4, pp, per_node_fifo_depth=4)
        ap_area = model.noc_area_mm2(22, 4, ap, per_node_fifo_depth=4)
        assert pp_area > ap_area

    def test_ap_fifo_depth_capped(self):
        ap = NocConfiguration(node_architecture=NodeArchitecture.AP)
        model = NocAreaModel()
        deep = model.noc_area_mm2(22, 4, ap, per_node_fifo_depth=64)
        capped = model.noc_area_mm2(22, 4, ap, per_node_fifo_depth=AP_MAX_FIFO_DEPTH)
        assert deep == pytest.approx(capped)

    def test_wimax_ap_noc_area_in_paper_ballpark(self):
        """22-node degree-3 Kautz AP NoC: the paper reports ~0.34 mm^2."""
        ap = NocConfiguration(node_architecture=NodeArchitecture.AP,
                              routing_algorithm=RoutingAlgorithm.ASP_FT)
        area = NocAreaModel().noc_area_mm2(22, 4, ap, per_node_fifo_depth=4)
        assert 0.15 <= area <= 0.7

    def test_per_node_depth_list_accepted(self):
        config = NocConfiguration()
        area = NocAreaModel().noc_area_mm2(4, 4, config, per_node_fifo_depth=[2, 4, 8, 2])
        assert area > 0

    def test_rejects_bad_inputs(self):
        model = NocAreaModel()
        with pytest.raises(ModelError):
            model.node_area_um2(1, 26, 4)
        with pytest.raises(ModelError):
            model.node_area_um2(4, 0, 4)
        with pytest.raises(ModelError):
            model.noc_area_mm2(0, 4, NocConfiguration(), 4)
        with pytest.raises(ModelError):
            model.noc_area_mm2(4, 4, NocConfiguration(), [1, 2])


class TestCoreAreaAndBreakdown:
    def test_core_breakdown_matches_paper_shares(self):
        """Paper Section V: memories 61.8 %, SISO logic 18.6 %, LDPC logic 19.6 % of 2.56 mm^2."""
        breakdown = ProcessingCoreAreaModel().core_area_mm2(22, plan_shared_memories(n_pes=22))
        assert breakdown.core_mm2 == pytest.approx(2.56, rel=0.15)
        assert breakdown.memory_share == pytest.approx(0.618, abs=0.06)

    def test_total_area_near_paper_value(self):
        breakdown = decoder_area(
            n_pes=22,
            crossbar_size=4,
            config=NocConfiguration(),
            per_node_fifo_depth=4,
            memory_plan=plan_shared_memories(n_pes=22),
        )
        assert breakdown.total_mm2 == pytest.approx(3.17, rel=0.20)
        assert 0.05 <= breakdown.noc_share <= 0.30

    def test_breakdown_sums(self):
        breakdown = decoder_area(
            n_pes=8,
            crossbar_size=4,
            config=NocConfiguration(),
            per_node_fifo_depth=4,
            memory_plan=plan_shared_memories(n_pes=8),
        )
        assert breakdown.total_mm2 == pytest.approx(breakdown.core_mm2 + breakdown.noc_mm2)
        assert "mm^2" in breakdown.describe()

    def test_rejects_bad_pe_count(self):
        with pytest.raises(ModelError):
            ProcessingCoreAreaModel().core_area_mm2(0, plan_shared_memories())


class TestPowerModel:
    def _estimate(self, mode, clock_hz, frame_duration, accesses, hops):
        return PowerModel().estimate(
            mode=mode,
            n_pes=22,
            pe_clock_hz=clock_hz,
            frame_duration_s=frame_duration,
            memory_accesses_per_frame=accesses,
            message_hops_per_frame=hops,
            flit_bits=26,
            total_area_mm2=3.0,
        )

    def test_ldpc_mode_consumes_more_than_turbo_mode(self):
        """The paper's key power claim: turbo mode is far below LDPC mode."""
        ldpc = self._estimate("LDPC", 300e6, 16e-6, 300_000, 120_000)
        turbo = self._estimate("turbo", 37.5e6, 65e-6, 190_000, 80_000)
        assert ldpc.total_mw > 3 * turbo.total_mw

    def test_ldpc_power_in_paper_ballpark(self):
        ldpc = self._estimate("LDPC", 300e6, 16e-6, 300_000, 120_000)
        assert 200 <= ldpc.total_mw <= 700

    def test_components_positive_and_sum(self):
        report = self._estimate("LDPC", 300e6, 16e-6, 300_000, 120_000)
        assert report.total_mw == pytest.approx(
            report.pe_dynamic_mw + report.memory_dynamic_mw + report.noc_dynamic_mw + report.leakage_mw
        )
        assert report.pe_dynamic_mw > 0 and report.leakage_mw > 0

    def test_describe(self):
        report = self._estimate("LDPC", 300e6, 16e-6, 1000, 1000)
        assert "LDPC" in report.describe()

    def test_rejects_bad_inputs(self):
        with pytest.raises(ModelError):
            self._estimate("LDPC", 300e6, 0.0, 1, 1)
        with pytest.raises(ModelError):
            PowerModel().estimate(
                mode="x", n_pes=0, pe_clock_hz=1e6, frame_duration_s=1e-6,
                memory_accesses_per_frame=1, message_hops_per_frame=1,
                flit_bits=10, total_area_mm2=1.0,
            )
        with pytest.raises(ModelError):
            PowerModel().estimate(
                mode="x", n_pes=2, pe_clock_hz=1e6, frame_duration_s=1e-6,
                memory_accesses_per_frame=1, message_hops_per_frame=1,
                flit_bits=10, total_area_mm2=1.0, pe_activity=1.5,
            )

"""Tests for the design-space explorer and the analysis/reporting layer."""

from __future__ import annotations

import pytest

from repro.analysis import (
    PAPER_TABLE1,
    PAPER_TABLE2,
    PAPER_TABLE3,
    build_table1,
    build_table2,
    build_table3,
    check_table1_trends,
)
from repro.analysis.reference import PAPER_CORE_BREAKDOWN
from repro.core import DecoderSpec, DesignSpaceExplorer, NocDecoderArchitecture
from repro.errors import ConfigurationError
from repro.ldpc import wimax_ldpc_code
from repro.noc import RoutingAlgorithm


@pytest.fixture(scope="module")
def small_sweep():
    """A small but structurally complete sweep on the n=576 code."""
    explorer = DesignSpaceExplorer(DecoderSpec(mapping_attempts=1), seed=0)
    code = wimax_ldpc_code(576, "1/2")
    return explorer.sweep_ldpc(
        code,
        topologies=[("generalized-kautz", 2), ("generalized-kautz", 3), ("spidergon", 3)],
        parallelisms=[8, 12],
        routing_algorithms=[RoutingAlgorithm.SSP_RR, RoutingAlgorithm.SSP_FL],
    )


class TestDesignSpaceExplorer:
    def test_sweep_covers_all_valid_points(self, small_sweep):
        assert len(small_sweep) == 3 * 2 * 2

    def test_every_point_has_positive_metrics(self, small_sweep):
        for point in small_sweep:
            assert point.throughput_mbps > 0
            assert point.noc_area_mm2 > 0
            assert point.ncycles > 0
            assert point.cell().count("/") == 1

    def test_throughput_improves_with_parallelism(self, small_sweep):
        kautz3 = {
            p.parallelism: p.throughput_mbps
            for p in small_sweep
            if p.topology_family == "generalized-kautz"
            and p.degree == 3
            and p.routing_algorithm is RoutingAlgorithm.SSP_FL
        }
        assert kautz3[12] >= kautz3[8] * 0.9

    def test_degree_three_beats_degree_two(self, small_sweep):
        def mean(degree):
            values = [
                p.throughput_mbps
                for p in small_sweep
                if p.topology_family == "generalized-kautz" and p.degree == degree
            ]
            return sum(values) / len(values)

        assert mean(3) >= mean(2)

    def test_invalid_points_skipped(self):
        explorer = DesignSpaceExplorer(DecoderSpec(mapping_attempts=1))
        code = wimax_ldpc_code(576, "1/2")
        # 13 nodes cannot form a 2D grid at all, so the toroidal-mesh point is
        # skipped and the sweep still returns the Kautz points.
        points = explorer.sweep_ldpc(
            code,
            topologies=[("toroidal-mesh", 4), ("generalized-kautz", 3)],
            parallelisms=[13],
            routing_algorithms=[RoutingAlgorithm.SSP_FL],
        )
        assert {p.topology_family for p in points} == {"generalized-kautz"}

    def test_invalid_points_raise_when_requested(self):
        explorer = DesignSpaceExplorer(DecoderSpec(mapping_attempts=1))
        code = wimax_ldpc_code(576, "1/2")
        with pytest.raises(Exception):
            explorer.sweep_ldpc(
                code,
                topologies=[("toroidal-mesh", 4)],
                parallelisms=[13],
                routing_algorithms=[RoutingAlgorithm.SSP_FL],
                skip_invalid=False,
            )

    def test_turbo_point_evaluation(self):
        explorer = DesignSpaceExplorer(DecoderSpec(mapping_attempts=1))
        point = explorer.evaluate_turbo_point(
            240, "generalized-kautz", 3, 8, RoutingAlgorithm.SSP_FL
        )
        assert point.mode == "turbo"
        assert point.throughput_mbps > 0

    def test_best_point_selection(self, small_sweep):
        explorer = DesignSpaceExplorer(DecoderSpec(mapping_attempts=1))
        best = explorer.best_point(small_sweep)
        ratios = [p.throughput_mbps / p.noc_area_mm2 for p in small_sweep]
        assert best.throughput_mbps / best.noc_area_mm2 == pytest.approx(max(ratios))

    def test_best_point_with_floor(self, small_sweep):
        explorer = DesignSpaceExplorer(DecoderSpec(mapping_attempts=1))
        floor = sorted(p.throughput_mbps for p in small_sweep)[len(small_sweep) // 2]
        best = explorer.best_point(small_sweep, throughput_floor_mbps=floor)
        assert best.throughput_mbps >= floor

    def test_best_point_requires_points(self):
        with pytest.raises(ConfigurationError):
            DesignSpaceExplorer().best_point([])


class TestPaperReferenceData:
    def test_table1_has_full_grid(self):
        # 6 (topology, degree) groups x 4 parallelisms x 3 routing algorithms.
        assert len(PAPER_TABLE1) == 6 * 4 * 3

    def test_table1_contains_best_point(self):
        best = max(PAPER_TABLE1, key=lambda c: c.throughput_mbps)
        assert best.throughput_mbps == pytest.approx(109.37)

    def test_table2_design_point_above_requirement(self):
        for (_, _), (throughput, _) in PAPER_TABLE2.items():
            assert throughput > 70

    def test_table3_this_work_row(self):
        this_work = PAPER_TABLE3[0]
        assert this_work.total_area_mm2 == pytest.approx(3.17)
        assert this_work.ldpc_throughput_mbps == pytest.approx(72.0)
        assert this_work.turbo_throughput_mbps == pytest.approx(74.26)

    def test_core_breakdown_shares_sum_to_one(self):
        total = (
            PAPER_CORE_BREAKDOWN["memories_share"]
            + PAPER_CORE_BREAKDOWN["siso_logic_share"]
            + PAPER_CORE_BREAKDOWN["ldpc_logic_share"]
        )
        assert total == pytest.approx(1.0, abs=0.01)


class TestTableBuilders:
    def test_build_table1_renders_measured_and_paper_cells(self, small_sweep):
        table = build_table1(small_sweep)
        rendered = table.render()
        assert "Table I" in rendered
        assert "P=8" in rendered and "P=12" in rendered
        assert "generalized-kautz (D=3)" in rendered

    def test_check_table1_trends_returns_checks(self, small_sweep):
        checks = check_table1_trends(small_sweep)
        assert checks, "expected at least one trend check"
        for check in checks:
            assert check.detail

    def test_build_table2_and_table3(self):
        arch = NocDecoderArchitecture(DecoderSpec(parallelism=8, degree=3, mapping_attempts=1))
        ldpc_eval = arch.evaluate_ldpc(wimax_ldpc_code(576, "1/2"))
        turbo_eval = arch.evaluate_turbo(240)
        table2 = build_table2({"SSP-FL": turbo_eval}, {"SSP-FL": ldpc_eval})
        assert "Table II" in table2.render()
        assert "SSP-RR" in table2.render()
        table3 = build_table3(ldpc_eval, turbo_eval)
        rendered = table3.render()
        assert "This work (reproduction model)" in rendered
        assert "FlexiChaP" in rendered

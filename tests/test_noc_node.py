"""Direct unit tests for the routing element (RouterNode) arbitration policies."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import SimulationError
from repro.noc import (
    CollisionPolicy,
    Message,
    NocConfiguration,
    RoutingAlgorithm,
    build_routing_tables,
    generalized_kautz,
)
from repro.noc.node import RouterNode


def _make_node(algorithm: RoutingAlgorithm, node_id: int = 0, seed: int = 0) -> RouterNode:
    topology = generalized_kautz(8, 3)
    tables = build_routing_tables(topology)
    config = NocConfiguration().with_routing(algorithm)
    return RouterNode(
        node_id=node_id,
        out_degree=topology.out_degree(node_id),
        in_degree=topology.in_degree(node_id),
        config=config,
        tables=tables,
        rng=np.random.default_rng(seed),
    )


class TestServingOrder:
    def test_empty_node_serves_nothing(self):
        node = _make_node(RoutingAlgorithm.SSP_FL)
        assert node.serving_order() == []

    def test_fifo_length_policy_serves_longest_first(self):
        node = _make_node(RoutingAlgorithm.SSP_FL)
        node.input_fifos[0].push(Message(0, 1, 2))
        for i in range(3):
            node.input_fifos[2].push(Message(10 + i, 1, 2))
        order = node.serving_order()
        assert order[0] == 2  # the three-deep FIFO wins
        assert set(order) == {0, 2}

    def test_round_robin_pointer_rotates(self):
        node = _make_node(RoutingAlgorithm.SSP_RR)
        for port in range(node.in_degree):
            node.input_fifos[port].push(Message(port, 1, 2))
        first = node.serving_order()
        second = node.serving_order()
        # The rotating priority must change which port is served first.
        assert first[0] != second[0] or first != second

    def test_injection_port_participates(self):
        node = _make_node(RoutingAlgorithm.SSP_FL)
        node.injection_fifo.push(Message(0, 0, 3))
        assert node.serving_order() == [node.in_degree]

    def test_occupancy_statistics(self):
        node = _make_node(RoutingAlgorithm.SSP_FL)
        for i in range(4):
            node.input_fifos[1].push(Message(i, 1, 2))
        node.injection_fifo.push(Message(9, 0, 3))
        assert node.pending_messages() == 5
        assert node.max_input_occupancy() == 4
        assert node.max_injection_occupancy() == 1


class TestOutputPortSelection:
    def test_ssp_returns_single_port(self):
        node = _make_node(RoutingAlgorithm.SSP_FL)
        message = Message(0, node.node_id, 5)
        ports = node.desired_output_ports(message)
        assert len(ports) == 1

    def test_asp_may_return_multiple_ports(self):
        node = _make_node(RoutingAlgorithm.ASP_FT)
        widths = set()
        for dest in range(1, 8):
            widths.add(len(node.desired_output_ports(Message(0, node.node_id, dest))))
        assert max(widths) >= 1  # every destination reachable
        assert all(w >= 1 for w in widths)

    def test_local_destination_rejected(self):
        node = _make_node(RoutingAlgorithm.SSP_FL)
        with pytest.raises(SimulationError):
            node.desired_output_ports(Message(0, node.node_id, node.node_id))

    def test_choose_output_port_requires_free_port(self):
        node = _make_node(RoutingAlgorithm.SSP_FL)
        message = Message(0, node.node_id, 5)
        allowed = node.desired_output_ports(message)
        assert node.choose_output_port(allowed, set(allowed)) == allowed[0]
        assert node.choose_output_port(allowed, set()) is None

    def test_traffic_spreading_prefers_least_used_port(self):
        node = _make_node(RoutingAlgorithm.ASP_FT)
        # Find a destination with at least two shortest-path ports, if any.
        for dest in range(1, 8):
            allowed = node.desired_output_ports(Message(0, node.node_id, dest))
            if len(allowed) >= 2:
                node.port_sent_count[allowed[0]] = 10
                chosen = node.choose_output_port(allowed, set(allowed))
                assert chosen == allowed[1]
                break

    def test_record_send_updates_statistics(self):
        node = _make_node(RoutingAlgorithm.ASP_FT)
        node.record_send(1)
        node.record_send(1)
        assert node.port_sent_count[1] == 2
        assert node.forwarded == 2


class TestDeflection:
    def test_scm_node_deflects_to_free_port(self):
        node = _make_node(RoutingAlgorithm.SSP_FL)
        assert node.config.collision_policy is CollisionPolicy.SCM
        port = node.choose_deflection_port({0, 2})
        assert port in {0, 2}

    def test_scm_without_free_ports_returns_none(self):
        node = _make_node(RoutingAlgorithm.SSP_FL)
        assert node.choose_deflection_port(set()) is None

    def test_dcm_node_never_deflects(self):
        topology = generalized_kautz(8, 3)
        tables = build_routing_tables(topology)
        config = NocConfiguration(collision_policy=CollisionPolicy.DCM)
        node = RouterNode(0, 3, topology.in_degree(0), config, tables, np.random.default_rng(0))
        assert node.choose_deflection_port({0, 1, 2}) is None

    def test_deflection_is_deterministic_per_seed(self):
        picks_a = [_make_node(RoutingAlgorithm.SSP_FL, seed=3).choose_deflection_port({0, 1, 2})
                   for _ in range(5)]
        picks_b = [_make_node(RoutingAlgorithm.SSP_FL, seed=3).choose_deflection_port({0, 1, 2})
                   for _ in range(5)]
        assert picks_a == picks_b

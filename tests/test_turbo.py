"""Unit tests for the turbo substrate.

Covers :mod:`repro.turbo.trellis`, :mod:`repro.turbo.ctc_interleaver`,
:mod:`repro.turbo.encoder`, :mod:`repro.turbo.bcjr`, :mod:`repro.turbo.bits`
and :mod:`repro.turbo.decoder`.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.channel import AWGNChannel, BPSKModulator, ebn0_to_noise_sigma
from repro.errors import CodeDefinitionError, DecodingError
from repro.turbo import (
    BCJRDecoder,
    CTCInterleaver,
    DuoBinaryTrellis,
    TurboDecoder,
    TurboEncoder,
    bit_to_symbol_extrinsic,
    supported_ctc_block_sizes,
    symbol_to_bit_extrinsic,
)
from repro.turbo.bits import noc_payload_bits


class TestTrellis:
    def test_dimensions(self):
        trellis = DuoBinaryTrellis()
        assert trellis.num_states == 8
        assert trellis.num_symbols == 4
        assert len(trellis.transitions) == 32

    def test_transitions_are_deterministic_and_complete(self):
        trellis = DuoBinaryTrellis()
        table = trellis.next_state_table()
        assert table.shape == (8, 4)
        assert table.min() >= 0 and table.max() <= 7

    def test_recursive_code_each_state_reached_four_times(self):
        # The map (state, symbol) -> next_state is 4-to-1 onto the state set.
        trellis = DuoBinaryTrellis()
        counts = np.bincount(trellis.next_state_table().reshape(-1), minlength=8)
        assert counts.tolist() == [4] * 8

    def test_distinct_symbols_lead_to_distinct_states(self):
        trellis = DuoBinaryTrellis()
        for state in range(8):
            successors = {trellis.next_state(state, symbol) for symbol in range(4)}
            assert len(successors) == 4

    def test_parity_table_is_binary(self):
        parity = DuoBinaryTrellis().parity_table()
        assert set(np.unique(parity)) <= {0, 1}

    def test_circulation_state_is_a_fixed_point(self, rng):
        trellis = DuoBinaryTrellis()
        symbols = rng.integers(0, 4, 48)
        start = trellis.circulation_state(symbols)
        state = start
        for symbol in symbols:
            state = trellis.next_state(state, int(symbol))
        assert state == start

    def test_circulation_state_rejects_empty_block(self):
        with pytest.raises(CodeDefinitionError):
            DuoBinaryTrellis().circulation_state(np.array([], dtype=int))


class TestCTCInterleaver:
    def test_supported_sizes_include_wimax_largest(self):
        sizes = supported_ctc_block_sizes()
        assert 2400 in sizes and 24 in sizes

    def test_permutation_is_a_bijection(self):
        for n in (24, 48, 240, 2400):
            interleaver = CTCInterleaver.for_block_size(n)
            perm = interleaver.permutation()
            assert np.unique(perm).size == n

    def test_interleave_deinterleave_roundtrip(self, rng):
        interleaver = CTCInterleaver.for_block_size(48)
        symbols = rng.integers(0, 4, 48)
        restored = interleaver.deinterleave_symbols(interleaver.interleave_symbols(symbols))
        assert np.array_equal(restored, symbols)

    def test_swap_flags_alternate(self):
        flags = CTCInterleaver.for_block_size(24).swap_flags()
        assert flags.tolist() == [0, 1] * 12

    def test_swap_exchanges_symbols_1_and_2(self):
        interleaver = CTCInterleaver.for_block_size(24)
        natural = np.ones(24, dtype=np.int64)  # symbol 1 = (A=0, B=1)
        interleaved = interleaver.interleave_symbols(natural)
        perm = interleaver.permutation()
        swapped_from_odd = interleaver.swap_flags()[perm].astype(bool)
        assert np.all(interleaved[swapped_from_odd] == 2)
        assert np.all(interleaved[~swapped_from_odd] == 1)

    def test_spread_positive(self):
        assert CTCInterleaver.for_block_size(2400).spread() >= 1

    def test_unknown_block_size_rejected(self):
        with pytest.raises(CodeDefinitionError):
            CTCInterleaver.for_block_size(1000)

    def test_wrong_length_rejected(self):
        interleaver = CTCInterleaver.for_block_size(24)
        with pytest.raises(CodeDefinitionError):
            interleaver.interleave_symbols(np.zeros(25, dtype=int))

    def test_describe_mentions_parameters(self):
        assert "P0=53" in CTCInterleaver.for_block_size(2400).describe()


class TestTurboEncoder:
    def test_dimensions_rate_half(self, small_turbo_encoder):
        assert small_turbo_encoder.k == 96
        assert small_turbo_encoder.n == 192

    def test_dimensions_rate_third(self):
        encoder = TurboEncoder(n_couples=24, rate="1/3")
        assert encoder.n == 3 * encoder.k

    def test_codeword_streams_shapes(self, small_turbo_encoder, rng):
        info = rng.integers(0, 2, small_turbo_encoder.k)
        codeword = small_turbo_encoder.encode(info)
        assert codeword.systematic.shape == (48, 2)
        assert codeword.parity1.shape == (48, 2)
        assert codeword.parity2.shape == (48, 2)
        assert codeword.to_bit_array().size == small_turbo_encoder.n

    def test_systematic_part_matches_info(self, small_turbo_encoder, rng):
        info = rng.integers(0, 2, small_turbo_encoder.k)
        codeword = small_turbo_encoder.encode(info)
        assert np.array_equal(codeword.systematic.reshape(-1), info)

    def test_symbol_bit_conversions_roundtrip(self, rng):
        bits = rng.integers(0, 2, 40)
        symbols = TurboEncoder.bits_to_symbols(bits)
        assert np.array_equal(TurboEncoder.symbols_to_bits(symbols), bits)

    def test_bits_to_symbols_rejects_odd_length(self):
        with pytest.raises(CodeDefinitionError):
            TurboEncoder.bits_to_symbols(np.zeros(3, dtype=int))

    def test_rejects_wrong_info_length(self, small_turbo_encoder):
        with pytest.raises(CodeDefinitionError):
            small_turbo_encoder.encode(np.zeros(10, dtype=int))

    def test_rejects_unknown_rate(self):
        with pytest.raises(CodeDefinitionError):
            TurboEncoder(n_couples=24, rate="3/4")

    def test_different_info_gives_different_parity(self, small_turbo_encoder, rng):
        a = rng.integers(0, 2, small_turbo_encoder.k)
        b = a.copy()
        b[0] ^= 1
        cw_a = small_turbo_encoder.encode(a)
        cw_b = small_turbo_encoder.encode(b)
        assert not np.array_equal(cw_a.parity1, cw_b.parity1)


class TestBCJR:
    def _noiseless_llrs(self, encoder, info):
        codeword = encoder.encode(info)
        scale = 8.0
        sys_llrs = scale * (1 - 2 * codeword.systematic.astype(float))
        par1 = np.zeros_like(sys_llrs)
        par1[:, 0] = scale * (1 - 2 * codeword.parity1[:, 0].astype(float))
        return codeword, sys_llrs, par1

    def test_noiseless_decoding_recovers_symbols(self, small_turbo_encoder, rng):
        info = rng.integers(0, 2, small_turbo_encoder.k)
        codeword, sys_llrs, par1 = self._noiseless_llrs(small_turbo_encoder, info)
        decoder = BCJRDecoder()
        result = decoder.decode(sys_llrs, par1)
        expected = TurboEncoder.bits_to_symbols(info)
        assert np.array_equal(result.hard_symbols, expected)

    def test_aposteriori_reference_element_is_zero(self, small_turbo_encoder, rng):
        info = rng.integers(0, 2, small_turbo_encoder.k)
        _, sys_llrs, par1 = self._noiseless_llrs(small_turbo_encoder, info)
        result = BCJRDecoder().decode(sys_llrs, par1)
        assert np.allclose(result.aposteriori[:, 0], 0.0)

    def test_log_map_and_max_log_agree_at_high_snr(self, small_turbo_encoder, rng):
        info = rng.integers(0, 2, small_turbo_encoder.k)
        _, sys_llrs, par1 = self._noiseless_llrs(small_turbo_encoder, info)
        max_log = BCJRDecoder(algorithm="max-log").decode(sys_llrs, par1)
        log_map = BCJRDecoder(algorithm="log-map").decode(sys_llrs, par1)
        assert np.array_equal(max_log.hard_symbols, log_map.hard_symbols)

    def test_extrinsic_scale_applied(self, small_turbo_encoder, rng):
        info = rng.integers(0, 2, small_turbo_encoder.k)
        _, sys_llrs, par1 = self._noiseless_llrs(small_turbo_encoder, info)
        full = BCJRDecoder(extrinsic_scale=1.0).decode(sys_llrs, par1)
        scaled = BCJRDecoder(extrinsic_scale=0.5).decode(sys_llrs, par1)
        assert np.allclose(scaled.extrinsic, 0.5 * full.extrinsic)

    def test_rejects_bad_algorithm(self):
        with pytest.raises(DecodingError):
            BCJRDecoder(algorithm="viterbi")

    def test_rejects_shape_mismatch(self):
        decoder = BCJRDecoder()
        with pytest.raises(DecodingError):
            decoder.decode(np.zeros((10, 2)), np.zeros((9, 2)))

    def test_rejects_bad_apriori_shape(self):
        decoder = BCJRDecoder()
        with pytest.raises(DecodingError):
            decoder.decode(np.zeros((10, 2)), np.zeros((10, 2)), apriori=np.zeros((10, 3)))


class TestBitSymbolConversion:
    def test_symbol_to_bit_signs(self):
        # Strongly favour symbol 3 = (A=1, B=1): both bit LLRs should be negative.
        symbol_ext = np.array([[0.0, 1.0, 1.0, 9.0]])
        bits = symbol_to_bit_extrinsic(symbol_ext)
        assert bits[0, 0] < 0 and bits[0, 1] < 0

    def test_bit_to_symbol_favours_consistent_symbol(self):
        bits = np.array([[-4.0, -4.0]])  # both bits likely 1
        symbols = bit_to_symbol_extrinsic(bits)
        assert np.argmax(symbols[0]) == 3

    def test_roundtrip_preserves_rank1_structure(self):
        bits = np.array([[2.0, -1.0], [0.5, 0.25]])
        recovered = symbol_to_bit_extrinsic(bit_to_symbol_extrinsic(bits))
        assert np.allclose(recovered, bits)

    def test_exact_marginalisation_differs_from_maxlog(self):
        symbol_ext = np.array([[0.0, 0.5, 0.4, 0.1]])
        approx = symbol_to_bit_extrinsic(symbol_ext, exact=False)
        exact = symbol_to_bit_extrinsic(symbol_ext, exact=True)
        assert not np.allclose(approx, exact)

    def test_payload_reduction(self):
        assert noc_payload_bits(symbol_level=True) == 15
        assert noc_payload_bits(symbol_level=False) == 10

    def test_rejects_bad_shapes(self):
        with pytest.raises(DecodingError):
            symbol_to_bit_extrinsic(np.zeros((3, 3)))
        with pytest.raises(DecodingError):
            bit_to_symbol_extrinsic(np.zeros((3, 3)))


class TestTurboDecoder:
    def _transmit(self, encoder, info, ebn0_db, rng):
        codeword = encoder.encode(info)
        modulator = BPSKModulator()
        sigma = ebn0_to_noise_sigma(ebn0_db, 0.5)
        channel = AWGNChannel(sigma, rng)
        bits = codeword.to_bit_array()
        llrs = modulator.demodulate_llr(
            channel.transmit(modulator.modulate(bits)), channel.llr_noise_variance(False)
        )
        return llrs

    def test_noiseless_decoding(self, small_turbo_encoder, rng):
        info = rng.integers(0, 2, small_turbo_encoder.k)
        decoder = TurboDecoder(small_turbo_encoder, max_iterations=4)
        llrs = 8.0 * (1 - 2 * small_turbo_encoder.encode(info).to_bit_array().astype(float))
        result = decoder.decode(*decoder.split_llrs(llrs))
        assert np.array_equal(result.hard_bits, info)

    def test_awgn_decoding_at_moderate_snr(self, small_turbo_encoder, rng):
        decoder = TurboDecoder(small_turbo_encoder, max_iterations=8)
        errors = 0
        for _ in range(4):
            info = rng.integers(0, 2, small_turbo_encoder.k)
            llrs = self._transmit(small_turbo_encoder, info, ebn0_db=2.5, rng=rng)
            result = decoder.decode(*decoder.split_llrs(llrs))
            errors += int(np.count_nonzero(result.hard_bits != info))
        assert errors == 0

    def test_bit_level_exchange_still_decodes(self, small_turbo_encoder, rng):
        decoder = TurboDecoder(
            small_turbo_encoder, max_iterations=8, bit_level_exchange=True
        )
        info = rng.integers(0, 2, small_turbo_encoder.k)
        llrs = self._transmit(small_turbo_encoder, info, ebn0_db=3.0, rng=rng)
        result = decoder.decode(*decoder.split_llrs(llrs))
        assert np.array_equal(result.hard_bits, info)

    def test_early_termination_reports_convergence(self, small_turbo_encoder, rng):
        decoder = TurboDecoder(small_turbo_encoder, max_iterations=8)
        info = rng.integers(0, 2, small_turbo_encoder.k)
        llrs = self._transmit(small_turbo_encoder, info, ebn0_db=4.0, rng=rng)
        result = decoder.decode(*decoder.split_llrs(llrs))
        assert result.converged
        assert result.iterations <= 8

    def test_iterations_help_at_low_snr(self, small_turbo_encoder):
        rng = np.random.default_rng(3)
        one_it = TurboDecoder(small_turbo_encoder, max_iterations=1, early_termination=False)
        many_it = TurboDecoder(small_turbo_encoder, max_iterations=8, early_termination=False)
        errors_one, errors_many = 0, 0
        for _ in range(6):
            info = rng.integers(0, 2, small_turbo_encoder.k)
            llrs = self._transmit(small_turbo_encoder, info, ebn0_db=1.5, rng=rng)
            sys_llrs, par1, par2 = one_it.split_llrs(llrs)
            errors_one += int(np.count_nonzero(one_it.decode(sys_llrs, par1, par2).hard_bits != info))
            errors_many += int(
                np.count_nonzero(many_it.decode(sys_llrs, par1, par2).hard_bits != info)
            )
        assert errors_many <= errors_one

    def test_split_llrs_shapes(self, small_turbo_encoder):
        decoder = TurboDecoder(small_turbo_encoder)
        sys_llrs, par1, par2 = decoder.split_llrs(np.zeros(small_turbo_encoder.n))
        assert sys_llrs.shape == (48, 2)
        assert par1.shape == (48, 2)
        assert np.all(par1[:, 1] == 0)  # W punctured at rate 1/2
        assert par2.shape == (48, 2)

    def test_split_llrs_rejects_wrong_length(self, small_turbo_encoder):
        decoder = TurboDecoder(small_turbo_encoder)
        with pytest.raises(DecodingError):
            decoder.split_llrs(np.zeros(small_turbo_encoder.n + 1))

    def test_decode_rejects_wrong_shapes(self, small_turbo_encoder):
        decoder = TurboDecoder(small_turbo_encoder)
        with pytest.raises(DecodingError):
            decoder.decode(np.zeros((10, 2)), np.zeros((10, 2)), np.zeros((10, 2)))

    def test_rejects_bad_iteration_count(self, small_turbo_encoder):
        with pytest.raises(DecodingError):
            TurboDecoder(small_turbo_encoder, max_iterations=0)

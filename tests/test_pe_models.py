"""Unit tests for the processing-element models (paper Figs. 2-3)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ModelError
from repro.hw.memory import plan_shared_memories
from repro.pe import (
    DecoderMode,
    LdpcCoreModel,
    ProcessingElement,
    SisoCoreModel,
)
from repro.pe.ldpc_core import LDPC_CORE_LATENCY_CYCLES
from repro.pe.siso_core import SISO_TO_NOC_CLOCK_RATIO


class TestLdpcCoreModel:
    def test_default_latency_matches_paper(self):
        assert LdpcCoreModel().pipeline_latency == LDPC_CORE_LATENCY_CYCLES == 15

    def test_iteration_timing_counts_edges(self):
        core = LdpcCoreModel(output_rate=0.5)
        timing = core.iteration_timing([6, 7, 6])
        assert timing.total_edges == 19
        assert timing.processing_cycles == int(np.ceil(19 / 0.5))
        assert timing.busy_cycles == timing.processing_cycles + 15

    def test_memory_accesses_four_per_edge(self):
        core = LdpcCoreModel()
        assert core.memory_accesses_per_iteration([6, 6]) == 4 * 12

    def test_output_rate_one_message_per_cycle(self):
        timing = LdpcCoreModel(output_rate=1.0).iteration_timing([6, 6])
        assert timing.processing_cycles == 12

    def test_rejects_bad_parameters(self):
        with pytest.raises(ModelError):
            LdpcCoreModel(output_rate=0.0)
        with pytest.raises(ModelError):
            LdpcCoreModel(output_rate=1.5)
        with pytest.raises(ModelError):
            LdpcCoreModel(pipeline_latency=0)

    def test_rejects_bad_workload(self):
        core = LdpcCoreModel()
        with pytest.raises(ModelError):
            core.iteration_timing([])
        with pytest.raises(ModelError):
            core.iteration_timing([1, 6])

    def test_structure_mentions_meu(self):
        assert "MEU" in LdpcCoreModel.structure()


class TestSisoCoreModel:
    def test_injection_rate_is_one_third(self):
        # 2 outputs per 3 SISO cycles at half the NoC clock -> 1/3 per NoC cycle.
        assert SisoCoreModel().noc_injection_rate == pytest.approx(1.0 / 3.0)

    def test_half_iteration_timing(self):
        siso = SisoCoreModel()
        timing = siso.half_iteration_timing(110)
        assert timing.siso_cycles == 55 * 3
        assert timing.noc_cycles == int(round(timing.siso_cycles / SISO_TO_NOC_CLOCK_RATIO))
        assert timing.busy_noc_cycles > timing.noc_cycles

    def test_memory_accesses(self):
        assert SisoCoreModel().memory_accesses_per_half_iteration(10) == 50

    def test_odd_window_rounds_up(self):
        timing = SisoCoreModel().half_iteration_timing(5)
        assert timing.siso_cycles == 9  # ceil(5/2) groups of 3 cycles

    def test_rejects_bad_parameters(self):
        with pytest.raises(ModelError):
            SisoCoreModel(pipeline_latency=0)
        with pytest.raises(ModelError):
            SisoCoreModel(windows_per_siso=0)
        with pytest.raises(ModelError):
            SisoCoreModel().half_iteration_timing(0)

    def test_structure_mentions_bmu_and_ecu(self):
        structure = SisoCoreModel.structure()
        assert "BMU" in structure and "ECU" in structure


class TestProcessingElement:
    @pytest.fixture()
    def pe(self):
        return ProcessingElement(
            index=0,
            ldpc_core=LdpcCoreModel(output_rate=0.5),
            siso_core=SisoCoreModel(),
            memory_plan=plan_shared_memories(n_pes=22),
        )

    def test_injection_rates_per_mode(self, pe):
        assert pe.injection_rate(DecoderMode.LDPC) == 0.5
        assert pe.injection_rate(DecoderMode.TURBO) == pytest.approx(1.0 / 3.0)

    def test_busy_cycles_ldpc(self, pe):
        assert pe.busy_cycles(DecoderMode.LDPC, np.array([6, 6, 7])) > 0

    def test_busy_cycles_turbo(self, pe):
        assert pe.busy_cycles(DecoderMode.TURBO, 110) > 0

    def test_busy_cycles_turbo_rejects_array(self, pe):
        with pytest.raises(ModelError):
            pe.busy_cycles(DecoderMode.TURBO, np.array([1, 2]))

    def test_memory_bits_share(self, pe):
        assert pe.memory_bits() == pytest.approx(pe.memory_plan.total_bits / 22)

    def test_structure_lists_both_cores(self, pe):
        structure = pe.structure()
        assert "LDPC decoding core" in structure
        assert "Turbo decoding core (SISO)" in structure
        assert "shared memories" in structure

"""Batch-vs-sequential equivalence tests for :mod:`repro.sim.turbo_batch`.

The load-bearing properties, mirroring ``tests/test_sim_batch.py`` for the
LDPC engine:

* the batched BCJR is *bit-identical* to the seed repository's per-frame
  recursion (a straight port of which is kept below as the pinning
  reference) for both max* flavours, including extrinsics and the circular
  state metrics,
* stacking frames on the batch axis changes nothing — the batched turbo
  decoder returns the same hard bits, iteration counts, convergence flags
  and decision-change histories as the per-frame ``decode`` for every frame,
  for both algorithms, both extrinsic-exchange modes, with and without early
  termination, and for any batch split,
* ``TurboEncoder.encode_batch`` equals looped per-frame ``encode``.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.channel import AWGNChannel, BPSKModulator, ebn0_to_noise_sigma
from repro.errors import CodeDefinitionError, ConfigurationError, DecodingError
from repro.sim import (
    BatchBCJR,
    BatchDecoder,
    BatchTurboDecoder,
    BerRunner,
    resolve_code_rate,
)
from repro.turbo import BCJRDecoder, DuoBinaryTrellis, TurboDecoder, TurboEncoder

_NEG_INF = -1.0e30


class _SeedBCJR:
    """Straight port of the seed repository's per-frame BCJR recursion.

    Kept verbatim (same scatter/reduce order, same normalisations) as the
    reference the vectorised kernel must reproduce bit-for-bit.
    """

    def __init__(self, algorithm: str = "max-log", extrinsic_scale: float = 0.75):
        trellis = DuoBinaryTrellis()
        self.algorithm = algorithm
        self.extrinsic_scale = 1.0 if algorithm == "log-map" else float(extrinsic_scale)
        self._next_state = trellis.next_state_table()
        self._parity = trellis.parity_table()
        symbols = np.arange(4)
        self._sym_a = (symbols >> 1) & 1
        self._sym_b = symbols & 1

    def _maxstar_reduce(self, values, axis):
        if self.algorithm == "max-log":
            return values.max(axis=axis)
        return np.log(
            np.sum(np.exp(values - values.max(axis=axis, keepdims=True)), axis=axis)
        ) + values.max(axis=axis)

    def _scatter_logsumexp(self, indices, values):
        result = np.full(8, _NEG_INF)
        for state in range(8):
            group = values[indices == state]
            if group.size:
                peak = group.max()
                result[state] = peak + np.log(np.exp(group - peak).sum())
        return result

    def decode(self, sys_llrs, par_llrs, apriori=None, initial_alpha=None, initial_beta=None):
        n = sys_llrs.shape[0]
        apriori = np.zeros((n, 4)) if apriori is None else np.asarray(apriori, float)
        sys_metric = 0.5 * (
            (1 - 2 * self._sym_a)[None, :] * sys_llrs[:, 0:1]
            + (1 - 2 * self._sym_b)[None, :] * sys_llrs[:, 1:2]
        )
        y_bits = self._parity[:, :, 0]
        w_bits = self._parity[:, :, 1]
        par_metric = 0.5 * (
            (1 - 2 * y_bits)[None, :, :] * par_llrs[:, 0][:, None, None]
            + (1 - 2 * w_bits)[None, :, :] * par_llrs[:, 1][:, None, None]
        )
        gamma = par_metric + sys_metric[:, None, :] + apriori[:, None, :]

        def norm(init):
            if init is None:
                return np.zeros(8)
            arr = np.asarray(init, float)
            return arr - arr.max()

        alpha = np.zeros((n + 1, 8))
        beta = np.zeros((n + 1, 8))
        alpha[0] = norm(initial_alpha)
        beta[n] = norm(initial_beta)
        next_flat = self._next_state.reshape(-1)
        for k in range(n):
            candidates = (alpha[k][:, None] + gamma[k]).reshape(-1)
            new_alpha = np.full(8, _NEG_INF)
            if self.algorithm == "max-log":
                np.maximum.at(new_alpha, next_flat, candidates)
            else:
                new_alpha = self._scatter_logsumexp(next_flat, candidates)
            new_alpha -= new_alpha.max()
            alpha[k + 1] = new_alpha
        for k in range(n - 1, -1, -1):
            incoming = beta[k + 1][self._next_state] + gamma[k]
            new_beta = self._maxstar_reduce(incoming, axis=1)
            new_beta -= new_beta.max()
            beta[k] = new_beta

        b_metric = alpha[:-1][:, :, None] + gamma + beta[1:][
            np.arange(n)[:, None, None], self._next_state[None, :, :]
        ]
        apo_raw = self._maxstar_reduce(b_metric, axis=1)
        apo = apo_raw - apo_raw[:, 0:1]
        sys_diff = sys_metric - sys_metric[:, 0:1]
        apr_diff = apriori - apriori[:, 0:1]
        extrinsic = self.extrinsic_scale * (apo - sys_diff - apr_diff)
        hard = np.argmax(apo, axis=1).astype(np.int64)
        return apo, extrinsic, hard, alpha[n].copy(), beta[0].copy()


def _turbo_llr_batch(
    encoder: TurboEncoder, batch: int, ebn0_db: float, seed: int
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Random info bits, their codewords and flat AWGN channel LLRs."""
    rng = np.random.default_rng(seed)
    modulator = BPSKModulator()
    channel = AWGNChannel(
        ebn0_to_noise_sigma(ebn0_db, resolve_code_rate(encoder.rate)), rng
    )
    info = rng.integers(0, 2, (batch, encoder.k))
    codewords = encoder.encode_batch(info)
    received = channel.transmit(modulator.modulate(codewords))
    return info, codewords, modulator.demodulate_llr(
        received, channel.llr_noise_variance(False)
    )


class TestBCJRPinnedToSeedReference:
    """The vectorised kernel reproduces the seed recursion bit-for-bit."""

    @pytest.mark.parametrize("algorithm", ["max-log", "log-map"])
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_bit_identical_including_extrinsics_and_state_metrics(self, algorithm, seed):
        rng = np.random.default_rng(seed)
        n = 48
        sys_llrs = rng.normal(0.0, 4.0, (n, 2))
        par_llrs = rng.normal(0.0, 4.0, (n, 2))
        par_llrs[rng.random((n, 2)) < 0.3] = 0.0  # punctured positions
        apriori = rng.normal(0.0, 1.0, (n, 4))
        apriori[:, 0] = 0.0
        init_alpha = rng.normal(0.0, 1.0, 8)
        init_beta = rng.normal(0.0, 1.0, 8)

        result = BCJRDecoder(algorithm=algorithm).decode(
            sys_llrs, par_llrs, apriori=apriori,
            initial_alpha=init_alpha, initial_beta=init_beta,
        )
        apo, ext, hard, falpha, fbeta = _SeedBCJR(algorithm=algorithm).decode(
            sys_llrs, par_llrs, apriori=apriori,
            initial_alpha=init_alpha, initial_beta=init_beta,
        )
        assert np.array_equal(result.aposteriori, apo)
        assert np.array_equal(result.extrinsic, ext)
        assert np.array_equal(result.hard_symbols, hard)
        assert np.array_equal(result.final_alpha, falpha)
        assert np.array_equal(result.final_beta, fbeta)

    def test_batched_activation_matches_per_frame(self):
        rng = np.random.default_rng(5)
        batch, n = 5, 36
        sys_llrs = rng.normal(0.0, 3.0, (batch, n, 2))
        par_llrs = rng.normal(0.0, 3.0, (batch, n, 2))
        apriori = rng.normal(0.0, 1.0, (batch, n, 4))
        init_alpha = rng.normal(0.0, 1.0, (batch, 8))
        init_beta = rng.normal(0.0, 1.0, (batch, 8))
        for algorithm in ("max-log", "log-map"):
            kernel = BatchBCJR(algorithm=algorithm)
            result = kernel.decode_batch(
                sys_llrs, par_llrs, apriori=apriori,
                initial_alpha=init_alpha, initial_beta=init_beta,
            )
            per_frame = BCJRDecoder(algorithm=algorithm)
            for frame in range(batch):
                single = per_frame.decode(
                    sys_llrs[frame], par_llrs[frame], apriori=apriori[frame],
                    initial_alpha=init_alpha[frame], initial_beta=init_beta[frame],
                )
                assert np.array_equal(result.aposteriori[frame], single.aposteriori)
                assert np.array_equal(result.extrinsic[frame], single.extrinsic)
                assert np.array_equal(result.hard_symbols[frame], single.hard_symbols)
                assert np.array_equal(result.final_alpha[frame], single.final_alpha)
                assert np.array_equal(result.final_beta[frame], single.final_beta)

    def test_rejects_bad_shapes_and_parameters(self):
        kernel = BatchBCJR()
        with pytest.raises(DecodingError):
            kernel.decode_batch(np.zeros((4, 2)), np.zeros((4, 2)))
        with pytest.raises(DecodingError):
            kernel.decode_batch(np.zeros((1, 4, 2)), np.zeros((1, 5, 2)))
        with pytest.raises(DecodingError):
            kernel.decode_batch(
                np.zeros((1, 4, 2)), np.zeros((1, 4, 2)), apriori=np.zeros((1, 4, 3))
            )
        with pytest.raises(DecodingError):
            kernel.decode_batch(
                np.zeros((2, 4, 2)), np.zeros((2, 4, 2)), initial_alpha=np.zeros(8)
            )
        with pytest.raises(DecodingError):
            BatchBCJR(algorithm="viterbi")
        with pytest.raises(DecodingError):
            BatchBCJR(extrinsic_scale=0.0)


class TestBatchTurboEquivalence:
    """Stacking frames changes nothing — field for field."""

    @pytest.mark.parametrize("algorithm", ["max-log", "log-map"])
    @pytest.mark.parametrize("bit_level", [False, True])
    def test_batch_matches_per_frame(self, small_turbo_encoder, algorithm, bit_level):
        # 1.0 dB leaves a mix of converging and non-converging frames.
        _, _, llrs = _turbo_llr_batch(small_turbo_encoder, 8, ebn0_db=1.0, seed=17)
        batch_decoder = BatchTurboDecoder(
            small_turbo_encoder,
            max_iterations=6,
            algorithm=algorithm,
            bit_level_exchange=bit_level,
        )
        per_frame = TurboDecoder(
            small_turbo_encoder,
            max_iterations=6,
            algorithm=algorithm,
            bit_level_exchange=bit_level,
        )
        result = batch_decoder.decode_batch(llrs)
        assert 0 < result.converged.sum() < llrs.shape[0]
        for frame in range(llrs.shape[0]):
            reference = per_frame.decode(*per_frame.split_llrs(llrs[frame]))
            assert np.array_equal(result.hard_bits[frame], reference.hard_bits)
            assert np.array_equal(result.hard_symbols[frame], reference.hard_symbols)
            assert int(result.iterations[frame]) == reference.iterations
            assert bool(result.converged[frame]) == reference.converged
            assert result.decision_changes[frame] == reference.decision_changes

    def test_without_early_termination(self, small_turbo_encoder):
        _, _, llrs = _turbo_llr_batch(small_turbo_encoder, 5, ebn0_db=1.5, seed=3)
        batch_decoder = BatchTurboDecoder(
            small_turbo_encoder, max_iterations=5, early_termination=False
        )
        per_frame = TurboDecoder(
            small_turbo_encoder, max_iterations=5, early_termination=False
        )
        result = batch_decoder.decode_batch(llrs)
        assert np.all(result.iterations == 5)
        for frame in range(llrs.shape[0]):
            reference = per_frame.decode(*per_frame.split_llrs(llrs[frame]))
            assert np.array_equal(result.hard_bits[frame], reference.hard_bits)
            assert bool(result.converged[frame]) == reference.converged
            assert result.decision_changes[frame] == reference.decision_changes

    def test_batch_split_invariance(self, small_turbo_encoder):
        """Decoding a batch in one call equals decoding any partition of it."""
        _, _, llrs = _turbo_llr_batch(small_turbo_encoder, 9, ebn0_db=1.2, seed=29)
        decoder = BatchTurboDecoder(small_turbo_encoder, max_iterations=6)
        whole = decoder.decode_batch(llrs)
        for split in ([3, 6], [1, 8], [4, 5]):
            parts = np.split(np.arange(llrs.shape[0]), split)
            for part in parts:
                if part.size == 0:
                    continue
                sub = decoder.decode_batch(llrs[part])
                assert np.array_equal(sub.hard_bits, whole.hard_bits[part])
                assert np.array_equal(sub.aposteriori, whole.aposteriori[part])
                assert np.array_equal(sub.iterations, whole.iterations[part])
                assert np.array_equal(sub.converged, whole.converged[part])

    def test_split_llrs_batch_matches_sequential(self, small_turbo_encoder):
        rng = np.random.default_rng(0)
        decoder = BatchTurboDecoder(small_turbo_encoder)
        per_frame = TurboDecoder(small_turbo_encoder)
        flat = rng.normal(size=(3, small_turbo_encoder.n))
        sys_b, par1_b, par2_b = decoder.split_llrs_batch(flat)
        for frame in range(3):
            sys_s, par1_s, par2_s = per_frame.split_llrs(flat[frame])
            assert np.array_equal(sys_b[frame], sys_s)
            assert np.array_equal(par1_b[frame], par1_s)
            assert np.array_equal(par2_b[frame], par2_s)

    def test_rate_third_path(self):
        encoder = TurboEncoder(n_couples=24, rate="1/3")
        info, _, llrs = _turbo_llr_batch(encoder, 4, ebn0_db=3.0, seed=11)
        decoder = BatchTurboDecoder(encoder, max_iterations=8)
        result = decoder.decode_batch(llrs)
        assert result.hard_bits.shape == (4, encoder.k)
        assert np.count_nonzero(result.hard_bits != info) == 0

    def test_satisfies_protocol(self, small_turbo_encoder):
        decoder = BatchTurboDecoder(small_turbo_encoder)
        assert isinstance(decoder, BatchDecoder)
        assert decoder.n_bits == small_turbo_encoder.n
        # The runner keys the error-count reference off this flag.
        assert decoder.decides_info_bits is True

    def test_facade_setter_keeps_validation(self, small_turbo_encoder):
        decoder = TurboDecoder(small_turbo_encoder)
        with pytest.raises(DecodingError):
            decoder.max_iterations = 0
        decoder.max_iterations = 3
        assert decoder.max_iterations == 3

    def test_rejects_wrong_shapes(self, small_turbo_encoder):
        decoder = BatchTurboDecoder(small_turbo_encoder)
        with pytest.raises(DecodingError):
            decoder.decode_batch(np.zeros(small_turbo_encoder.n))
        with pytest.raises(DecodingError):
            decoder.decode_batch(np.zeros((2, small_turbo_encoder.n + 1)))
        with pytest.raises(DecodingError):
            decoder.decode_split(
                np.zeros((2, 10, 2)), np.zeros((2, 10, 2)), np.zeros((2, 10, 2))
            )
        with pytest.raises(DecodingError):
            BatchTurboDecoder(small_turbo_encoder, max_iterations=0)


class TestTurboEncodeBatch:
    @pytest.mark.parametrize("rate", ["1/2", "1/3"])
    def test_matches_per_frame_encode(self, rate):
        encoder = TurboEncoder(n_couples=24, rate=rate)
        rng = np.random.default_rng(1)
        info = rng.integers(0, 2, (5, encoder.k))
        batch = encoder.encode_batch(info)
        assert batch.shape == (5, encoder.n)
        for frame in range(5):
            assert np.array_equal(
                batch[frame], encoder.encode(info[frame]).to_bit_array()
            )

    def test_rejects_wrong_shape_and_values(self, small_turbo_encoder):
        with pytest.raises(CodeDefinitionError):
            small_turbo_encoder.encode_batch(np.zeros(small_turbo_encoder.k, dtype=int))
        with pytest.raises(CodeDefinitionError):
            small_turbo_encoder.encode_batch(
                np.zeros((2, small_turbo_encoder.k + 1), dtype=int)
            )
        with pytest.raises(CodeDefinitionError):
            small_turbo_encoder.encode_batch(
                np.full((2, small_turbo_encoder.k), 2, dtype=int)
            )


class TestTrellisBatchedTables:
    def test_incoming_table_inverts_next_state(self):
        trellis = DuoBinaryTrellis()
        next_state = trellis.next_state_table()
        in_state, in_symbol = trellis.incoming_table()
        for target in range(8):
            for edge in range(4):
                assert next_state[in_state[target, edge], in_symbol[target, edge]] == target
        # Every (state, symbol) pair appears exactly once.
        pairs = {(int(s), int(u)) for s, u in zip(in_state.ravel(), in_symbol.ravel())}
        assert len(pairs) == 32

    def test_circulation_states_match_scalar(self, rng):
        trellis = DuoBinaryTrellis()
        symbols = rng.integers(0, 4, (6, 48))
        batched = trellis.circulation_states(symbols)
        for frame in range(6):
            assert int(batched[frame]) == trellis.circulation_state(symbols[frame])

    def test_circulation_states_rejects_bad_shapes(self):
        trellis = DuoBinaryTrellis()
        with pytest.raises(CodeDefinitionError):
            trellis.circulation_states(np.zeros((2, 0), dtype=int))
        with pytest.raises(CodeDefinitionError):
            trellis.circulation_states(np.zeros(10, dtype=int))


class TestTurboBerRunner:
    """The unified runner drives the turbo family like the LDPC one."""

    def test_runs_reproducibly_and_counts_info_bits(self, small_turbo_encoder):
        def build():
            return BerRunner(
                small_turbo_encoder,
                BatchTurboDecoder(small_turbo_encoder, max_iterations=6),
                batch_size=8,
                max_frames=24,
                target_frame_errors=None,
                seed=9,
            )

        first = build().run_point(1.5)
        second = build().run_point(1.5)
        assert first.frames == 24
        # Turbo decisions cover the information bits, not the codeword.
        assert first.total_bits == 24 * small_turbo_encoder.k
        assert first.bit_errors == second.bit_errors
        assert first.frame_errors == second.frame_errors
        assert first.avg_iterations <= 6.0

    def test_high_snr_point_is_error_free(self, small_turbo_encoder):
        runner = BerRunner(
            small_turbo_encoder,
            BatchTurboDecoder(small_turbo_encoder, max_iterations=8),
            batch_size=8,
            max_frames=16,
            target_frame_errors=None,
            seed=2,
        )
        point = runner.run_point(4.0)
        assert point.bit_errors == 0
        assert point.ber == 0.0

    def test_rejects_mismatched_code_and_decoder(self, small_turbo_encoder):
        other = TurboEncoder(n_couples=24)
        with pytest.raises(ConfigurationError):
            BerRunner(small_turbo_encoder, BatchTurboDecoder(other))


class TestResolveCodeRate:
    def test_parses_fractions_and_floats(self):
        assert resolve_code_rate("1/2") == pytest.approx(0.5)
        assert resolve_code_rate("1/3") == pytest.approx(1 / 3)
        assert resolve_code_rate(0.75) == pytest.approx(0.75)
        assert resolve_code_rate("0.25") == pytest.approx(0.25)

    def test_rejects_garbage(self):
        with pytest.raises(ConfigurationError):
            resolve_code_rate("a/b")
        with pytest.raises(ConfigurationError):
            resolve_code_rate("1/0")

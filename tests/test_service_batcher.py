"""Property suite for the pure dynamic batcher behind the decode service.

The batcher is clock-free (callers pass ``now``), so hypothesis can drive
it through adversarial arrival patterns — bursts, long idle gaps, offers
and polls interleaved at arbitrary (monotone) times — and check the
invariants the service relies on:

* conservation: every offered item leaves in exactly one batch, no loss,
  no duplication, FIFO order preserved;
* size: no batch exceeds ``max_batch``; reaching ``max_batch`` flushes
  immediately;
* deadline: after ``poll(now)`` no queued item's deadline has passed, and
  an item never waits beyond ``max_delay_s`` past its arrival before some
  ``poll`` at/after its deadline releases it;
* capacity: ``offer`` refuses (and does not enqueue) exactly when the
  configured bound is reached.
"""

from __future__ import annotations

import itertools

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigurationError
from repro.service.batcher import DynamicBatcher

import pytest


# One adversarial schedule: each step advances time by `gap` then either
# offers one item or polls.  Gaps of 0 build bursts; big gaps force
# deadline flushes between arrivals.
_steps = st.lists(
    st.tuples(
        st.floats(min_value=0.0, max_value=0.02, allow_nan=False),
        st.sampled_from(["offer", "poll"]),
    ),
    min_size=1,
    max_size=80,
)


def _drive(batcher: DynamicBatcher, steps, max_delay_s: float):
    """Run one schedule; return (offered ids, flushed batches, refused ids)."""
    ids = itertools.count()
    now = 0.0
    offered: list[int] = []
    refused: list[int] = []
    batches: list[list] = []
    for gap, op in steps:
        now += gap
        if op == "offer":
            item_id = next(ids)
            result = batcher.offer(item_id, now)
            if result is None:
                refused.append(item_id)
                continue
            offered.append(item_id)
            if result:
                batches.append(result)
        else:
            batches.extend(batcher.poll(now))
        # Deadline invariant: nothing overdue survives a poll, and offers
        # only leave overdue items when their deadline falls exactly now.
        head = batcher.next_deadline()
        if op == "poll":
            assert head is None or head > now
    batches.extend(batcher.flush_all())
    return offered, batches, refused


@given(steps=_steps, max_batch=st.integers(1, 7))
@settings(max_examples=200, deadline=None)
def test_conservation_and_order(steps, max_batch):
    """No item lost or duplicated; FIFO order; batch size capped."""
    batcher = DynamicBatcher(max_batch=max_batch, max_delay_s=0.005)
    offered, batches, refused = _drive(batcher, steps, 0.005)
    assert refused == []  # unbounded: nothing is ever refused
    flushed = [item.payload for batch in batches for item in batch]
    assert flushed == offered  # exactly once each, in arrival order
    assert all(1 <= len(batch) <= max_batch for batch in batches)


@given(steps=_steps, max_batch=st.integers(1, 7))
@settings(max_examples=200, deadline=None)
def test_deadlines_honored(steps, max_batch):
    """Every item leaves in a batch released no later than its deadline allows.

    ``_drive`` already asserts that no overdue item survives a ``poll``;
    here we additionally check each flushed item's recorded deadline is
    consistent with its arrival time and the configured budget.
    """
    max_delay_s = 0.004
    batcher = DynamicBatcher(max_batch=max_batch, max_delay_s=max_delay_s)
    _, batches, _ = _drive(batcher, steps, max_delay_s)
    for batch in batches:
        for item in batch:
            assert item.deadline == item.enqueued_at + max_delay_s
        # FIFO within the batch: deadlines are non-decreasing.
        deadlines = [item.deadline for item in batch]
        assert deadlines == sorted(deadlines)


@given(steps=_steps, capacity=st.integers(1, 5))
@settings(max_examples=200, deadline=None)
def test_capacity_backpressure(steps, capacity):
    """Offers are refused exactly when the queue is at its bound."""
    batcher = DynamicBatcher(max_batch=100, max_delay_s=10.0, capacity=capacity)
    depth = 0
    now = 0.0
    for gap, op in steps:
        now += gap
        if op == "offer":
            was_full = batcher.is_full
            assert was_full == (depth >= capacity)
            result = batcher.offer(object(), now)
            if was_full:
                assert result is None  # refused, not enqueued
            else:
                assert result is not None
                depth = depth + 1 if not result else depth + 1 - len(result)
        else:
            for batch in batcher.poll(now):
                depth -= len(batch)
        assert batcher.depth == depth
        assert depth <= capacity


def test_batch_full_flushes_immediately():
    batcher = DynamicBatcher(max_batch=3, max_delay_s=60.0)
    assert batcher.offer("a", 0.0) == []
    assert batcher.offer("b", 0.0) == []
    flushed = batcher.offer("c", 0.0)
    assert [item.payload for item in flushed] == ["a", "b", "c"]
    assert batcher.depth == 0


def test_poll_rides_younger_items_along():
    """A deadline flush takes the whole queue, not just the overdue head."""
    batcher = DynamicBatcher(max_batch=10, max_delay_s=1.0)
    batcher.offer("old", 0.0)
    batcher.offer("young", 0.9)
    (batch,) = batcher.poll(1.0)  # old is due, young rides along
    assert [item.payload for item in batch] == ["old", "young"]


def test_constructor_validation():
    with pytest.raises(ConfigurationError):
        DynamicBatcher(max_batch=0, max_delay_s=0.1)
    with pytest.raises(ConfigurationError):
        DynamicBatcher(max_batch=1, max_delay_s=-0.1)
    with pytest.raises(ConfigurationError):
        DynamicBatcher(max_batch=1, max_delay_s=0.1, capacity=0)

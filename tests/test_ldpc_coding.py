"""Unit tests for LDPC encoding and decoding.

Covers :mod:`repro.ldpc.encoder`, :mod:`repro.ldpc.checknode`,
:mod:`repro.ldpc.layered` and :mod:`repro.ldpc.flooding`.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.channel import AWGNChannel, BPSKModulator, ebn0_to_noise_sigma
from repro.errors import CodeDefinitionError, DecodingError
from repro.ldpc import (
    FloodingDecoder,
    LDPCEncoder,
    LayeredMinSumDecoder,
    ParityCheckMatrix,
    first_two_minima,
    min_sum_check_update,
    wimax_ldpc_code,
)
from tests.conftest import make_ldpc_llrs


class TestEncoder:
    def test_codewords_satisfy_parity_checks(self, small_ldpc_code, rng):
        for _ in range(5):
            info = rng.integers(0, 2, small_ldpc_code.k)
            codeword = small_ldpc_code.encode(info)
            assert small_ldpc_code.h.is_codeword(codeword)

    def test_systematic_bits_preserved(self, small_ldpc_code, rng):
        info = rng.integers(0, 2, small_ldpc_code.k)
        codeword = small_ldpc_code.encode(info)
        assert np.array_equal(small_ldpc_code.encoder.extract_info(codeword), info)

    def test_all_zero_maps_to_all_zero(self, small_ldpc_code):
        codeword = small_ldpc_code.encode(np.zeros(small_ldpc_code.k, dtype=int))
        assert not codeword.any()

    def test_linearity(self, small_ldpc_code, rng):
        a = rng.integers(0, 2, small_ldpc_code.k)
        b = rng.integers(0, 2, small_ldpc_code.k)
        cw_sum = small_ldpc_code.encode((a + b) % 2)
        cw_xor = (small_ldpc_code.encode(a) + small_ldpc_code.encode(b)) % 2
        assert np.array_equal(cw_sum, cw_xor)

    def test_every_wimax_rate_encodes_valid_codewords(self, rng):
        for rate in ("2/3A", "2/3B", "3/4A", "3/4B", "5/6"):
            code = wimax_ldpc_code(576, rate)
            info = rng.integers(0, 2, code.k)
            assert code.h.is_codeword(code.encode(info))

    def test_rejects_wrong_length(self, small_ldpc_code):
        with pytest.raises(CodeDefinitionError):
            small_ldpc_code.encode(np.zeros(small_ldpc_code.k + 1, dtype=int))

    def test_rejects_non_binary(self, small_ldpc_code):
        bad = np.zeros(small_ldpc_code.k, dtype=int)
        bad[0] = 2
        with pytest.raises(CodeDefinitionError):
            small_ldpc_code.encode(bad)

    def test_extract_info_rejects_wrong_length(self, small_ldpc_code):
        with pytest.raises(CodeDefinitionError):
            small_ldpc_code.encoder.extract_info(np.zeros(3, dtype=int))

    def test_rejects_rank_deficient_matrix(self):
        h = ParityCheckMatrix([[0, 1], [0, 1], [2, 3]], n_cols=4)
        with pytest.raises(CodeDefinitionError):
            LDPCEncoder(h)

    def test_permuted_encoder_on_singular_tail(self):
        # The last M columns are singular (column 3 empty in the parity part),
        # forcing the column-permutation fallback.
        h = ParityCheckMatrix([[0, 1, 2], [0, 2], [1, 2]], n_cols=4)
        encoder = LDPCEncoder(h)
        codeword = encoder.encode(np.array([1]))
        assert h.is_codeword(codeword)


class TestCheckNodeArithmetic:
    def test_first_two_minima_basic(self):
        min1, min2, arg = first_two_minima(np.array([3.0, 1.0, 2.0]))
        assert (min1, min2, arg) == (1.0, 2.0, 1)

    def test_first_two_minima_duplicate_minimum(self):
        min1, min2, _ = first_two_minima(np.array([1.0, 1.0, 5.0]))
        assert min1 == 1.0 and min2 == 1.0

    def test_first_two_minima_rejects_scalar(self):
        with pytest.raises(DecodingError):
            first_two_minima(np.array([1.0]))

    def test_min_sum_magnitudes(self):
        out = min_sum_check_update(np.array([4.0, -1.0, 2.0]), scaling=1.0)
        # Edge with |Q| = 1 sees min of the others (2); others see 1.
        assert np.abs(out).tolist() == [1.0, 2.0, 1.0]

    def test_min_sum_signs_follow_parity(self):
        out = min_sum_check_update(np.array([4.0, -1.0, 2.0]), scaling=1.0)
        # Product of the other signs: edge 0 -> (-)(+) = -, edge 1 -> (+)(+) = +, edge 2 -> (+)(-) = -.
        assert np.sign(out).tolist() == [-1.0, 1.0, -1.0]

    def test_min_sum_scaling_applied(self):
        unscaled = min_sum_check_update(np.array([4.0, -1.0, 2.0]), scaling=1.0)
        scaled = min_sum_check_update(np.array([4.0, -1.0, 2.0]), scaling=0.75)
        assert np.allclose(scaled, 0.75 * unscaled)

    def test_min_sum_rejects_single_edge(self):
        with pytest.raises(DecodingError):
            min_sum_check_update(np.array([1.0]))


class TestLayeredDecoder:
    def test_noiseless_frame_decodes_in_one_iteration(self, small_ldpc_code, rng):
        info = rng.integers(0, 2, small_ldpc_code.k)
        codeword = small_ldpc_code.encode(info)
        llrs = 10.0 * (1 - 2 * codeword.astype(float))
        result = LayeredMinSumDecoder(small_ldpc_code.h, max_iterations=5).decode(llrs)
        assert result.converged
        assert result.iterations == 1
        assert np.array_equal(result.hard_bits, codeword)

    def test_moderate_noise_corrected(self, small_ldpc_code, rng):
        codeword, llrs = make_ldpc_llrs(small_ldpc_code, ebn0_db=3.0, rng=rng)
        result = LayeredMinSumDecoder(small_ldpc_code.h, max_iterations=20).decode(llrs)
        assert result.converged
        assert np.array_equal(result.hard_bits, codeword)

    def test_fixed_point_mode_still_corrects(self, small_ldpc_code, rng):
        codeword, llrs = make_ldpc_llrs(small_ldpc_code, ebn0_db=3.5, rng=rng)
        decoder = LayeredMinSumDecoder(small_ldpc_code.h, max_iterations=20, fixed_point=True)
        result = decoder.decode(llrs)
        assert np.array_equal(result.hard_bits, codeword)

    def test_unsatisfied_history_is_non_increasing_at_high_snr(self, small_ldpc_code, rng):
        _, llrs = make_ldpc_llrs(small_ldpc_code, ebn0_db=3.0, rng=rng)
        result = LayeredMinSumDecoder(small_ldpc_code.h, max_iterations=20).decode(llrs)
        history = result.unsatisfied_history
        assert history[-1] == 0

    def test_no_early_termination_runs_all_iterations(self, small_ldpc_code, rng):
        _, llrs = make_ldpc_llrs(small_ldpc_code, ebn0_db=4.0, rng=rng)
        decoder = LayeredMinSumDecoder(
            small_ldpc_code.h, max_iterations=7, early_termination=False
        )
        assert decoder.decode(llrs).iterations == 7

    def test_messages_per_iteration_equals_edges(self, small_ldpc_code):
        decoder = LayeredMinSumDecoder(small_ldpc_code.h)
        assert decoder.messages_per_iteration() == small_ldpc_code.h.n_edges

    def test_rejects_wrong_llr_length(self, small_ldpc_code):
        decoder = LayeredMinSumDecoder(small_ldpc_code.h)
        with pytest.raises(DecodingError):
            decoder.decode(np.zeros(small_ldpc_code.n + 1))

    def test_rejects_bad_parameters(self, small_ldpc_code):
        with pytest.raises(DecodingError):
            LayeredMinSumDecoder(small_ldpc_code.h, max_iterations=0)
        with pytest.raises(DecodingError):
            LayeredMinSumDecoder(small_ldpc_code.h, scaling=1.5)


class TestFloodingDecoder:
    def test_noiseless_frame(self, small_ldpc_code, rng):
        info = rng.integers(0, 2, small_ldpc_code.k)
        codeword = small_ldpc_code.encode(info)
        llrs = 10.0 * (1 - 2 * codeword.astype(float))
        result = FloodingDecoder(small_ldpc_code.h, max_iterations=5).decode(llrs)
        assert result.converged
        assert np.array_equal(result.hard_bits, codeword)

    def test_min_sum_kernel_corrects_noise(self, small_ldpc_code, rng):
        codeword, llrs = make_ldpc_llrs(small_ldpc_code, ebn0_db=3.0, rng=rng)
        decoder = FloodingDecoder(small_ldpc_code.h, max_iterations=30, kernel="min-sum")
        result = decoder.decode(llrs)
        assert np.array_equal(result.hard_bits, codeword)

    def test_layered_converges_in_fewer_iterations_than_flooding(self, small_ldpc_code):
        """The paper's motivation for layered scheduling: ~2x faster convergence."""
        rng = np.random.default_rng(7)
        modulator = BPSKModulator()
        sigma = ebn0_to_noise_sigma(2.6, small_ldpc_code.rate)
        layered_iters, flooding_iters = [], []
        for _ in range(6):
            info = rng.integers(0, 2, small_ldpc_code.k)
            codeword = small_ldpc_code.encode(info)
            channel = AWGNChannel(sigma, rng)
            llrs = modulator.demodulate_llr(
                channel.transmit(modulator.modulate(codeword)),
                channel.llr_noise_variance(False),
            )
            layered = LayeredMinSumDecoder(small_ldpc_code.h, max_iterations=40).decode(llrs)
            flooding = FloodingDecoder(
                small_ldpc_code.h, max_iterations=40, kernel="min-sum"
            ).decode(llrs)
            if layered.converged and flooding.converged:
                layered_iters.append(layered.iterations)
                flooding_iters.append(flooding.iterations)
        assert layered_iters, "no frame converged under both schedules"
        assert np.mean(layered_iters) < np.mean(flooding_iters)

    def test_mutating_parameters_after_construction_takes_effect(self, small_ldpc_code, rng):
        _, llrs = make_ldpc_llrs(small_ldpc_code, ebn0_db=4.0, rng=rng)
        decoder = FloodingDecoder(
            small_ldpc_code.h, max_iterations=3, early_termination=False
        )
        assert decoder.decode(llrs).iterations == 3
        decoder.max_iterations = 7
        assert decoder.decode(llrs).iterations == 7
        layered = LayeredMinSumDecoder(
            small_ldpc_code.h, max_iterations=2, early_termination=False
        )
        assert layered.decode(llrs).iterations == 2
        layered.max_iterations = 5
        assert layered.decode(llrs).iterations == 5

    def test_rejects_unknown_kernel(self, small_ldpc_code):
        with pytest.raises(DecodingError):
            FloodingDecoder(small_ldpc_code.h, kernel="approximate")

    def test_rejects_wrong_llr_length(self, small_ldpc_code):
        with pytest.raises(DecodingError):
            FloodingDecoder(small_ldpc_code.h).decode(np.zeros(10))

"""Hypothesis property suites for the modulators and the LLR quantiser.

Round-trip laws the channel layer must satisfy for *every* constellation and
batch shape, plus the fixed-point quantiser's idempotence / saturation /
negation-closure contracts — the properties the decoder datapaths lean on.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.channel import (
    BPSKModulator,
    LLRQuantizer,
    QAM16Modulator,
    QPSKModulator,
    QuantizationSpec,
    RayleighFadingChannel,
)

MODULATORS = [BPSKModulator(), QPSKModulator(), QAM16Modulator()]


def random_bits(rng: np.random.Generator, batch: int, n_symbols: int, mod) -> np.ndarray:
    return rng.integers(0, 2, size=(batch, n_symbols * mod.bits_per_symbol))


@st.composite
def bits_and_modulator(draw):
    mod = draw(st.sampled_from(MODULATORS))
    batch = draw(st.integers(min_value=1, max_value=5))
    n_symbols = draw(st.integers(min_value=1, max_value=24))
    seed = draw(st.integers(min_value=0, max_value=2**31 - 1))
    bits = random_bits(np.random.default_rng(seed), batch, n_symbols, mod)
    return mod, bits


class TestModulatorRoundTrip:
    @given(case=bits_and_modulator())
    @settings(max_examples=60, deadline=None)
    def test_noiseless_demap_sign_recovers_bits(self, case):
        mod, bits = case
        symbols = mod.modulate(bits)
        llrs = mod.demodulate_llr(symbols, noise_variance=0.7)
        assert llrs.shape == bits.shape
        assert ((llrs < 0).astype(int) == bits).all()

    @given(case=bits_and_modulator())
    @settings(max_examples=40, deadline=None)
    def test_batched_equals_rowwise(self, case):
        mod, bits = case
        symbols = mod.modulate(bits)
        rng = np.random.default_rng(0)
        noisy = symbols + 0.1 * rng.normal(size=symbols.shape)
        if np.iscomplexobj(symbols):
            noisy = noisy + 0.1j * rng.normal(size=symbols.shape)
        llrs = mod.demodulate_llr(noisy, 0.4)
        for row in range(bits.shape[0]):
            assert np.array_equal(mod.modulate(bits[row]), symbols[row])
            assert np.allclose(mod.demodulate_llr(noisy[row], 0.4), llrs[row])

    @given(case=bits_and_modulator(), seed=st.integers(min_value=0, max_value=2**31 - 1))
    @settings(max_examples=40, deadline=None)
    def test_noiseless_fading_demap_recovers_bits(self, case, seed):
        # Near-noiseless fading with perfect CSI must still recover every bit:
        # the equalise-and-reweight path may scale LLRs but never flip signs.
        mod, bits = case
        symbols = mod.modulate(bits)
        channel = RayleighFadingChannel(
            1e-4,
            np.random.default_rng(seed),
            block_fading=bool(seed % 2),
        )
        received, gains = channel.transmit(symbols)
        llrs = mod.demodulate_llr(
            received,
            channel.llr_noise_variance(np.iscomplexobj(symbols)),
            gains=gains,
        )
        assert ((llrs < 0).astype(int) == bits).all()

    @given(
        scale=st.floats(min_value=0.1, max_value=10.0),
        case=bits_and_modulator(),
    )
    @settings(max_examples=30, deadline=None)
    def test_llrs_scale_inversely_with_noise_variance(self, scale, case):
        mod, bits = case
        symbols = mod.modulate(bits)
        base = mod.demodulate_llr(symbols, 0.5)
        scaled = mod.demodulate_llr(symbols, 0.5 * scale)
        assert np.allclose(scaled * scale, base, rtol=1e-9, atol=1e-12)


@st.composite
def quantizer_spec(draw):
    total_bits = draw(st.integers(min_value=2, max_value=10))
    frac_bits = draw(st.integers(min_value=0, max_value=total_bits - 1))
    return QuantizationSpec(total_bits=total_bits, frac_bits=frac_bits)


@st.composite
def values_array(draw):
    n = draw(st.integers(min_value=1, max_value=64))
    seed = draw(st.integers(min_value=0, max_value=2**31 - 1))
    spread = draw(st.floats(min_value=0.01, max_value=1000.0))
    return np.random.default_rng(seed).uniform(-spread, spread, size=n)


class TestQuantizerProperties:
    @given(spec=quantizer_spec(), values=values_array(), symmetric=st.booleans())
    @settings(max_examples=80, deadline=None)
    def test_roundtrip_idempotent(self, spec, values, symmetric):
        quant = LLRQuantizer(spec, symmetric=symmetric)
        once = quant.quantize_to_real(values)
        twice = quant.quantize_to_real(once)
        assert np.array_equal(once, twice)

    @given(spec=quantizer_spec(), values=values_array(), symmetric=st.booleans())
    @settings(max_examples=80, deadline=None)
    def test_levels_stay_within_saturation_bounds(self, spec, values, symmetric):
        quant = LLRQuantizer(spec, symmetric=symmetric)
        levels = quant.quantize(values)
        assert levels.max() <= spec.max_level
        assert levels.min() >= quant.lowest_level
        if symmetric:
            assert levels.min() >= -spec.max_level

    @given(spec=quantizer_spec(), values=values_array())
    @settings(max_examples=80, deadline=None)
    def test_symmetric_negation_closure(self, spec, values):
        # Every representable level's negation is representable, and
        # quantisation commutes with sign flips — the min-sum invariant.
        quant = LLRQuantizer(spec)
        levels = quant.quantize(values)
        assert np.array_equal(quant.quantize(-values), -levels)
        assert np.array_equal(quant.quantize(quant.dequantize(-levels)), -levels)

    @given(spec=quantizer_spec(), values=values_array())
    @settings(max_examples=40, deadline=None)
    def test_in_range_error_bounded_by_half_step(self, spec, values):
        quant = LLRQuantizer(spec)
        clipped = np.clip(values, -spec.max_value, spec.max_value)
        recovered = quant.quantize_to_real(clipped)
        assert np.max(np.abs(clipped - recovered)) <= spec.step / 2 + 1e-9

    def test_asymmetric_floor_negation_overflows_by_construction(self):
        # Documents *why* symmetric is the datapath default: the asymmetric
        # floor has no representable negation.
        spec = QuantizationSpec(5, 0)
        asym = LLRQuantizer(spec, symmetric=False)
        floor_level = asym.quantize(np.array([-1000.0]))[0]
        assert floor_level == spec.min_level
        assert -floor_level > spec.max_level

    def test_rejects_non_spec(self):
        with pytest.raises(Exception):
            LLRQuantizer(object())  # type: ignore[arg-type]

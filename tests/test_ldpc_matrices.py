"""Unit tests for the LDPC matrix / code-definition layer.

Covers :mod:`repro.ldpc.hmatrix`, :mod:`repro.ldpc.qc`, :mod:`repro.ldpc.wimax`
and :mod:`repro.ldpc.tanner`.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import CodeDefinitionError
from repro.ldpc import (
    ParityCheckMatrix,
    QCBaseMatrix,
    TannerGraph,
    WIMAX_CODE_RATES,
    WIMAX_EXPANSION_FACTORS,
    expand_base_matrix,
    list_wimax_codes,
    wimax_ldpc_code,
)
from repro.ldpc.qc import scale_shift
from repro.ldpc.wimax import WIMAX_BLOCK_COLUMNS


class TestParityCheckMatrix:
    def test_basic_properties(self):
        h = ParityCheckMatrix([[0, 1, 2], [2, 3], [0, 3]], n_cols=4)
        assert h.n_rows == 3
        assert h.n_cols == 4
        assert h.n_edges == 7
        assert h.design_rate == pytest.approx(0.25)

    def test_row_and_col_access(self):
        h = ParityCheckMatrix([[0, 2], [1, 2]], n_cols=3)
        assert h.row(0).tolist() == [0, 2]
        assert h.col(2).tolist() == [0, 1]
        assert h.col_degrees().tolist() == [1, 1, 2]
        assert h.row_degrees().tolist() == [2, 2]

    def test_from_dense_roundtrip(self):
        dense = np.array([[1, 0, 1, 0], [0, 1, 1, 1]], dtype=np.int8)
        h = ParityCheckMatrix.from_dense(dense)
        assert np.array_equal(h.to_dense(), dense)

    def test_from_dense_rejects_non_binary(self):
        with pytest.raises(CodeDefinitionError):
            ParityCheckMatrix.from_dense(np.array([[0, 2]]))

    def test_syndrome_and_codeword_check(self):
        h = ParityCheckMatrix([[0, 1], [1, 2]], n_cols=3)
        assert h.syndrome(np.array([1, 1, 1])).tolist() == [0, 0]
        assert h.is_codeword(np.array([1, 1, 1]))
        assert not h.is_codeword(np.array([1, 0, 0]))

    def test_syndrome_rejects_wrong_length(self):
        h = ParityCheckMatrix([[0, 1]], n_cols=2)
        with pytest.raises(CodeDefinitionError):
            h.syndrome(np.array([1, 0, 0]))

    def test_rejects_empty_row(self):
        with pytest.raises(CodeDefinitionError):
            ParityCheckMatrix([[0], []], n_cols=2)

    def test_rejects_out_of_range_column(self):
        with pytest.raises(CodeDefinitionError):
            ParityCheckMatrix([[0, 5]], n_cols=3)

    def test_rejects_duplicate_columns(self):
        with pytest.raises(CodeDefinitionError):
            ParityCheckMatrix([[1, 1]], n_cols=3)

    def test_rejects_no_rows(self):
        with pytest.raises(CodeDefinitionError):
            ParityCheckMatrix([], n_cols=3)


class TestQCBaseMatrix:
    def test_expansion_dimensions(self):
        base = QCBaseMatrix.from_lists([[0, -1, 1], [-1, 2, 0]], z=3)
        h = expand_base_matrix(base)
        assert h.n_rows == 6
        assert h.n_cols == 9

    def test_expansion_shift_structure(self):
        base = QCBaseMatrix.from_lists([[1]], z=4)
        h = expand_base_matrix(base)
        dense = h.to_dense()
        # Row r has a one in column (r + 1) mod 4.
        for r in range(4):
            assert dense[r].tolist() == [1 if c == (r + 1) % 4 else 0 for c in range(4)]

    def test_zero_block_produces_no_edges(self):
        base = QCBaseMatrix.from_lists([[-1, 0]], z=2)
        h = expand_base_matrix(base)
        assert h.col_degrees().tolist() == [0, 0, 1, 1]

    def test_block_row_degrees(self):
        base = QCBaseMatrix.from_lists([[0, -1, 3], [1, 2, -1]], z=4)
        assert base.block_row_degrees().tolist() == [2, 2]

    def test_rejects_shift_out_of_range(self):
        with pytest.raises(CodeDefinitionError):
            QCBaseMatrix.from_lists([[5]], z=4)
        with pytest.raises(CodeDefinitionError):
            QCBaseMatrix.from_lists([[-2]], z=4)

    def test_rejects_ragged_rows(self):
        with pytest.raises(CodeDefinitionError):
            QCBaseMatrix.from_lists([[0, 1], [0]], z=4)

    def test_scale_shift_floor_rule(self):
        assert scale_shift(94, 24) == (94 * 24) // 96
        assert scale_shift(-1, 24) == -1
        assert scale_shift(0, 24) == 0

    def test_scale_shift_modulo_rule(self):
        assert scale_shift(40, 24, use_modulo=True) == 40 % 24

    def test_scale_shift_rejects_bad_z(self):
        with pytest.raises(CodeDefinitionError):
            scale_shift(3, 0)


class TestWimaxCodes:
    def test_code_rate_table(self):
        assert WIMAX_CODE_RATES == ("1/2", "2/3A", "2/3B", "3/4A", "3/4B", "5/6")
        assert WIMAX_EXPANSION_FACTORS[0] == 24
        assert WIMAX_EXPANSION_FACTORS[-1] == 96

    def test_worst_case_code_dimensions(self, worst_case_ldpc_code):
        code = worst_case_ldpc_code
        assert code.n == 2304
        assert code.m == 1152
        assert code.k == 1152
        assert code.z == 96

    def test_worst_case_row_degrees_are_6_and_7(self, worst_case_ldpc_code):
        degrees = set(worst_case_ldpc_code.h.row_degrees().tolist())
        assert degrees == {6, 7}

    def test_all_rates_expand_with_correct_shape(self):
        expected_rows = {"1/2": 12, "2/3A": 8, "2/3B": 8, "3/4A": 6, "3/4B": 6, "5/6": 4}
        for rate in WIMAX_CODE_RATES:
            code = wimax_ldpc_code(576, rate)
            assert code.n == 576
            assert code.m == expected_rows[rate] * 24
            assert code.base.nb == WIMAX_BLOCK_COLUMNS

    def test_rate_property(self):
        assert wimax_ldpc_code(576, "1/2").rate == pytest.approx(0.5)
        assert wimax_ldpc_code(576, "5/6").rate == pytest.approx(5 / 6)

    def test_codes_are_four_cycle_free(self, small_ldpc_code):
        graph = TannerGraph(small_ldpc_code.h)
        assert graph.girth_lower_bound() > 4

    def test_caching_returns_same_object(self):
        assert wimax_ldpc_code(576, "1/2") is wimax_ldpc_code(576, "1/2")

    def test_invalid_rate_rejected(self):
        with pytest.raises(CodeDefinitionError):
            wimax_ldpc_code(576, "7/8")

    def test_invalid_length_rejected(self):
        with pytest.raises(CodeDefinitionError):
            wimax_ldpc_code(600, "1/2")
        with pytest.raises(CodeDefinitionError):
            wimax_ldpc_code(100, "1/2")

    def test_list_wimax_codes_counts(self):
        codes = list_wimax_codes()
        assert len(codes) == len(WIMAX_EXPANSION_FACTORS) * len(WIMAX_CODE_RATES)
        assert (2304, "1/2") in codes

    def test_list_wimax_codes_rejects_unknown_rate(self):
        with pytest.raises(CodeDefinitionError):
            list_wimax_codes(("9/10",))

    def test_describe_mentions_rate_and_length(self, small_ldpc_code):
        text = small_ldpc_code.describe()
        assert "1/2" in text and "576" in text


class TestTannerGraph:
    def test_node_counts(self, small_ldpc_code):
        graph = TannerGraph(small_ldpc_code.h)
        assert graph.n_check_nodes == small_ldpc_code.m
        assert graph.n_variable_nodes == small_ldpc_code.n
        assert graph.n_edges == small_ldpc_code.h.n_edges

    def test_neighbor_consistency(self, small_ldpc_code):
        graph = TannerGraph(small_ldpc_code.h)
        check = 5
        for variable in graph.check_neighbors(check):
            assert check in graph.variable_neighbors(int(variable)).tolist()

    def test_mean_degrees(self, small_ldpc_code):
        graph = TannerGraph(small_ldpc_code.h)
        assert 6.0 <= graph.mean_check_degree() <= 7.0
        assert graph.mean_variable_degree() == pytest.approx(
            graph.n_edges / graph.n_variable_nodes
        )

    def test_check_adjacency_graph_edges(self):
        h = ParityCheckMatrix([[0, 1], [1, 2], [3]], n_cols=4)
        graph = TannerGraph(h).check_adjacency_graph()
        assert graph.n_checks == 3
        assert graph.weights == {(0, 1): 1}
        assert graph.neighbors(0) == [(1, 1)]
        assert graph.neighbors(2) == []

    def test_check_adjacency_weight_counts_shared_variables(self):
        h = ParityCheckMatrix([[0, 1, 2], [0, 1, 3]], n_cols=4)
        graph = TannerGraph(h).check_adjacency_graph()
        assert graph.weights[(0, 1)] == 2
        assert graph.total_weight() == 2

    def test_adjacency_lists_symmetric(self, small_ldpc_code):
        graph = TannerGraph(small_ldpc_code.h).check_adjacency_graph()
        adj = graph.adjacency_lists()
        assert len(adj) == small_ldpc_code.m
        total_entries = sum(len(neighbors) for neighbors in adj)
        assert total_entries == 2 * graph.n_edges

    def test_girth_detects_4_cycle(self):
        h = ParityCheckMatrix([[0, 1], [0, 1]], n_cols=2)
        assert TannerGraph(h).girth_lower_bound() == 4

"""Unit tests for :mod:`repro.utils`."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ConfigurationError, DecodingError
from repro.utils import (
    Table,
    bits_to_bytes,
    bits_to_int,
    bytes_to_bits,
    check_in_range,
    check_positive,
    check_power_of_two,
    check_probability,
    check_type,
    format_float,
    format_ratio_cell,
    hamming_distance,
    hamming_weight,
    int_to_bits,
    make_rng,
    parity,
    spawn_rngs,
)


class TestBitOps:
    def test_int_to_bits_msb_first(self):
        assert int_to_bits(5, 4).tolist() == [0, 1, 0, 1]

    def test_int_to_bits_lsb_first(self):
        assert int_to_bits(5, 4, msb_first=False).tolist() == [1, 0, 1, 0]

    def test_int_to_bits_rejects_negative(self):
        with pytest.raises(DecodingError):
            int_to_bits(-1, 4)

    def test_int_to_bits_rejects_overflow(self):
        with pytest.raises(DecodingError):
            int_to_bits(16, 4)

    def test_int_to_bits_rejects_zero_width(self):
        with pytest.raises(DecodingError):
            int_to_bits(0, 0)

    def test_bits_to_int_roundtrip(self):
        for value in (0, 1, 5, 255, 1023):
            assert bits_to_int(int_to_bits(value, 12)) == value

    def test_bits_to_int_lsb_first(self):
        assert bits_to_int([1, 0, 1], msb_first=False) == 5

    def test_bits_to_int_rejects_non_binary(self):
        with pytest.raises(DecodingError):
            bits_to_int([0, 2, 1])

    def test_bits_to_int_rejects_2d(self):
        with pytest.raises(DecodingError):
            bits_to_int(np.zeros((2, 2)))

    def test_bytes_to_bits_and_back(self):
        data = b"\xa5\x0f"
        bits = bytes_to_bits(data)
        assert bits.tolist() == [1, 0, 1, 0, 0, 1, 0, 1, 0, 0, 0, 0, 1, 1, 1, 1]
        assert bits_to_bytes(bits) == data

    def test_bytes_to_bits_empty(self):
        assert bytes_to_bits(b"").size == 0

    def test_bits_to_bytes_rejects_partial_byte(self):
        with pytest.raises(DecodingError):
            bits_to_bytes([1, 0, 1])

    def test_hamming_weight(self):
        assert hamming_weight([0, 1, 1, 0, 1]) == 3

    def test_hamming_distance(self):
        assert hamming_distance([0, 1, 1], [1, 1, 0]) == 2

    def test_hamming_distance_shape_mismatch(self):
        with pytest.raises(DecodingError):
            hamming_distance([0, 1], [0, 1, 1])

    def test_parity(self):
        assert parity([1, 1, 0]) == 0
        assert parity([1, 1, 1]) == 1
        assert parity([]) == 0


class TestValidation:
    def test_check_type_accepts(self):
        assert check_type("x", 3, int) == 3

    def test_check_type_rejects(self):
        with pytest.raises(ConfigurationError):
            check_type("x", 3.0, int)

    def test_check_type_tuple_message(self):
        with pytest.raises(ConfigurationError, match="int or float"):
            check_type("x", "a", (int, float))

    def test_check_positive_strict(self):
        assert check_positive("x", 1.0) == 1.0
        with pytest.raises(ConfigurationError):
            check_positive("x", 0.0)

    def test_check_positive_non_strict(self):
        assert check_positive("x", 0.0, strict=False) == 0.0
        with pytest.raises(ConfigurationError):
            check_positive("x", -1.0, strict=False)

    def test_check_in_range_inclusive(self):
        assert check_in_range("x", 5, 0, 5) == 5
        with pytest.raises(ConfigurationError):
            check_in_range("x", 6, 0, 5)

    def test_check_in_range_exclusive(self):
        with pytest.raises(ConfigurationError):
            check_in_range("x", 5, 0, 5, inclusive=False)

    def test_check_probability(self):
        assert check_probability("p", 0.5) == 0.5
        with pytest.raises(ConfigurationError):
            check_probability("p", 1.5)

    def test_check_power_of_two(self):
        assert check_power_of_two("n", 8) == 8
        for bad in (0, -4, 6):
            with pytest.raises(ConfigurationError):
                check_power_of_two("n", bad)


class TestTables:
    def test_format_float(self):
        assert format_float(1.2345) == "1.23"
        assert format_float(float("nan")) == "n/a"
        assert format_float(float("inf")) == "inf"

    def test_format_ratio_cell(self):
        assert format_ratio_cell(72.004, 0.456) == "72.00/0.46"

    def test_table_renders_header_and_rows(self):
        table = Table(title="demo", columns=["a", "bb"])
        table.add_row([1, "xy"])
        rendered = table.render()
        assert "demo" in rendered
        assert "a" in rendered and "bb" in rendered
        assert "xy" in rendered

    def test_table_rejects_wrong_row_width(self):
        table = Table(title="demo", columns=["a", "b"])
        with pytest.raises(ValueError):
            table.add_row([1])

    def test_table_column_alignment(self):
        table = Table(title="t", columns=["col", "x"])
        table.add_row(["longvalue", "1"])
        lines = table.render().splitlines()
        header_cells = lines[2].split("|")
        row_cells = lines[4].split("|")
        assert len(header_cells[0]) == len(row_cells[0])


class TestRng:
    def test_make_rng_deterministic(self):
        a = make_rng(7).integers(0, 100, 10)
        b = make_rng(7).integers(0, 100, 10)
        assert np.array_equal(a, b)

    def test_make_rng_different_seeds(self):
        a = make_rng(1).integers(0, 1000, 10)
        b = make_rng(2).integers(0, 1000, 10)
        assert not np.array_equal(a, b)

    def test_spawn_rngs_count(self):
        rngs = spawn_rngs(3, 5)
        assert len(rngs) == 5

    def test_spawn_rngs_independent(self):
        rngs = spawn_rngs(3, 2)
        assert not np.array_equal(rngs[0].integers(0, 1000, 10), rngs[1].integers(0, 1000, 10))

    def test_spawn_rngs_negative_count(self):
        with pytest.raises(ValueError):
            spawn_rngs(0, -1)

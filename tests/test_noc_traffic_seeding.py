"""Seeding contract of the synthetic traffic generators in ``noc/traffic.py``.

The differential harness and the engine throughput bench rely on two
guarantees: identical seeds yield identical :class:`TrafficPattern` objects
(and hence identical cycle counts on the engine and the object simulator),
and one sweep seed spawns mutually distinct, reproducible per-point streams.
"""

from __future__ import annotations

import pytest

from repro.errors import MappingError
from repro.noc import (
    BatchNocSimulator,
    NocConfiguration,
    ReferenceNocSimulator,
    build_routing_tables,
    build_topology,
    random_traffic,
    random_traffic_streams,
)
from repro.utils.rng import make_rng


class TestRandomTrafficSeeding:
    def test_identical_seeds_yield_identical_patterns(self):
        for seed in (0, 1, 12345):
            first = random_traffic(8, 30, seed=seed)
            second = random_traffic(8, 30, seed=seed)
            assert first == second
            assert first.per_node == second.per_node

    def test_distinct_seeds_yield_distinct_patterns(self):
        patterns = [random_traffic(8, 30, seed=seed) for seed in range(8)]
        destinations = {p.per_node[0].destinations + p.per_node[1].destinations for p in patterns}
        assert len(destinations) == len(patterns)

    def test_same_seed_same_result_on_engine_and_object_simulator(self):
        """One seed -> one pattern -> the same cycle-exact measurement on both."""
        topology = build_topology("generalized-kautz", 8, 3)
        tables = build_routing_tables(topology)
        config = NocConfiguration()
        for seed in (0, 42):
            traffic_a = random_traffic(8, 25, seed=seed)
            traffic_b = random_traffic(8, 25, seed=seed)
            reference = ReferenceNocSimulator(
                topology, config, routing_tables=tables, seed=1
            ).run(traffic_a)
            engine = BatchNocSimulator(
                topology, config, routing_tables=tables, seed=1
            ).run(traffic_b)
            assert engine.ncycles == reference.ncycles
            assert engine.per_node_max_fifo == reference.per_node_max_fifo
            assert engine.statistics.total_hops == reference.statistics.total_hops

    def test_explicit_rng_advances_stream(self):
        rng = make_rng(7)
        first = random_traffic(6, 10, rng=rng)
        second = random_traffic(6, 10, rng=rng)
        assert first.per_node != second.per_node  # consecutive draws differ

    def test_destinations_stay_in_range(self):
        traffic = random_traffic(5, 200, seed=3)
        for node_traffic in traffic.per_node:
            assert all(0 <= d < 5 for d in node_traffic.destinations)

    def test_label_defaults_to_descriptive_string(self):
        assert random_traffic(4, 3, seed=9).label == "random(P=4,m=3,seed=9)"
        assert random_traffic(4, 3, seed=9, label="custom").label == "custom"

    def test_validation(self):
        with pytest.raises(MappingError):
            random_traffic(0, 3)
        with pytest.raises(MappingError):
            random_traffic(4, -1)

    def test_zero_messages(self):
        traffic = random_traffic(4, 0, seed=0)
        assert traffic.total_messages == 0


class TestSpawnedTrafficStreams:
    def test_streams_are_reproducible_from_the_sweep_seed(self):
        first = random_traffic_streams(8, 20, seed=5, count=4)
        second = random_traffic_streams(8, 20, seed=5, count=4)
        assert [p.per_node for p in first] == [p.per_node for p in second]

    def test_streams_are_mutually_distinct(self):
        streams = random_traffic_streams(8, 20, seed=5, count=6)
        signatures = {p.per_node[0].destinations + p.per_node[1].destinations for p in streams}
        assert len(signatures) == len(streams)

    def test_streams_differ_across_sweep_seeds(self):
        a = random_traffic_streams(8, 20, seed=5, count=2)
        b = random_traffic_streams(8, 20, seed=6, count=2)
        assert a[0].per_node != b[0].per_node

    def test_stream_labels_identify_the_sweep_point(self):
        streams = random_traffic_streams(4, 3, seed=2, count=2)
        assert streams[0].label == "random(P=4,m=3,seed=2,stream=0)"
        assert streams[1].label == "random(P=4,m=3,seed=2,stream=1)"

    def test_count_zero_gives_empty_list(self):
        assert random_traffic_streams(4, 3, seed=0, count=0) == []

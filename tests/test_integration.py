"""End-to-end integration tests across substrates.

These tests walk the same paths as the examples and the benchmark harness:
transmit chain -> functional decoding, and code -> mapping -> cycle-accurate
simulation -> throughput/area/power roll-up, for both operating modes of the
flexible decoder.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.channel import (
    AWGNChannel,
    BPSKModulator,
    ErrorRateAccumulator,
    QPSKModulator,
    ebn0_to_noise_sigma,
)
from repro.core import DecoderSpec, DesignSpaceExplorer, NocDecoderArchitecture
from repro.ldpc import FloodingDecoder, LayeredMinSumDecoder, wimax_ldpc_code
from repro.noc import RoutingAlgorithm
from repro.turbo import TurboDecoder, TurboEncoder


class TestLdpcChainIntegration:
    """Random bits -> WiMAX LDPC encode -> BPSK -> AWGN -> layered decode."""

    def _run_chain(self, code, decoder, ebn0_db, frames, seed=0):
        rng = np.random.default_rng(seed)
        modulator = BPSKModulator()
        sigma = ebn0_to_noise_sigma(ebn0_db, code.rate)
        accumulator = ErrorRateAccumulator()
        for _ in range(frames):
            info = rng.integers(0, 2, code.k)
            codeword = code.encode(info)
            channel = AWGNChannel(sigma, rng)
            llrs = modulator.demodulate_llr(
                channel.transmit(modulator.modulate(codeword)),
                channel.llr_noise_variance(False),
            )
            result = decoder.decode(llrs)
            accumulator.update(codeword, result.hard_bits)
        return accumulator.report()

    def test_rate_half_chain_error_free_at_high_snr(self, small_ldpc_code):
        decoder = LayeredMinSumDecoder(small_ldpc_code.h, max_iterations=15)
        report = self._run_chain(small_ldpc_code, decoder, ebn0_db=3.0, frames=4)
        assert report.bit_errors == 0

    def test_high_rate_chain_error_free_at_high_snr(self, small_high_rate_code):
        decoder = LayeredMinSumDecoder(small_high_rate_code.h, max_iterations=20)
        report = self._run_chain(small_high_rate_code, decoder, ebn0_db=5.5, frames=4)
        assert report.bit_errors == 0

    def test_coding_gain_over_uncoded_transmission(self, small_ldpc_code):
        """At 3 dB the coded chain must beat hard-decision uncoded BPSK."""
        rng = np.random.default_rng(5)
        modulator = BPSKModulator()
        sigma = ebn0_to_noise_sigma(3.0, small_ldpc_code.rate)
        decoder = LayeredMinSumDecoder(small_ldpc_code.h, max_iterations=15)
        coded_errors, uncoded_errors = 0, 0
        for _ in range(4):
            info = rng.integers(0, 2, small_ldpc_code.k)
            codeword = small_ldpc_code.encode(info)
            channel = AWGNChannel(sigma, rng)
            received = channel.transmit(modulator.modulate(codeword))
            llrs = modulator.demodulate_llr(received, channel.llr_noise_variance(False))
            coded_errors += int(
                np.count_nonzero(decoder.decode(llrs).hard_bits != codeword)
            )
            uncoded_errors += int(np.count_nonzero((received < 0).astype(int) != codeword))
        assert coded_errors < uncoded_errors

    def test_layered_and_flooding_agree_on_clean_frames(self, small_ldpc_code, rng):
        info = rng.integers(0, 2, small_ldpc_code.k)
        codeword = small_ldpc_code.encode(info)
        llrs = 6.0 * (1 - 2 * codeword.astype(float))
        layered = LayeredMinSumDecoder(small_ldpc_code.h).decode(llrs)
        flooding = FloodingDecoder(small_ldpc_code.h).decode(llrs)
        assert np.array_equal(layered.hard_bits, flooding.hard_bits)

    def test_qpsk_chain(self, small_ldpc_code, rng):
        modulator = QPSKModulator()
        sigma = ebn0_to_noise_sigma(4.0, small_ldpc_code.rate, bits_per_symbol=2)
        channel = AWGNChannel(sigma, rng)
        decoder = LayeredMinSumDecoder(small_ldpc_code.h, max_iterations=15)
        info = rng.integers(0, 2, small_ldpc_code.k)
        codeword = small_ldpc_code.encode(info)
        llrs = modulator.demodulate_llr(
            channel.transmit(modulator.modulate(codeword)), channel.llr_noise_variance(True)
        )
        assert np.array_equal(decoder.decode(llrs).hard_bits, codeword)


class TestTurboChainIntegration:
    """Random bits -> CTC encode -> BPSK -> AWGN -> iterative turbo decode."""

    def test_symbol_vs_bit_level_exchange_both_converge(self):
        encoder = TurboEncoder(n_couples=96)
        rng = np.random.default_rng(11)
        modulator = BPSKModulator()
        sigma = ebn0_to_noise_sigma(2.5, 0.5)
        for bit_level in (False, True):
            decoder = TurboDecoder(encoder, max_iterations=8, bit_level_exchange=bit_level)
            info = rng.integers(0, 2, encoder.k)
            channel = AWGNChannel(sigma, rng)
            llrs = modulator.demodulate_llr(
                channel.transmit(modulator.modulate(encoder.encode(info).to_bit_array())),
                channel.llr_noise_variance(False),
            )
            result = decoder.decode(*decoder.split_llrs(llrs))
            assert np.array_equal(result.hard_bits, info)

    def test_max_log_and_log_map_both_decode(self):
        encoder = TurboEncoder(n_couples=48)
        rng = np.random.default_rng(13)
        modulator = BPSKModulator()
        sigma = ebn0_to_noise_sigma(2.5, 0.5)
        info = rng.integers(0, 2, encoder.k)
        channel = AWGNChannel(sigma, rng)
        llrs = modulator.demodulate_llr(
            channel.transmit(modulator.modulate(encoder.encode(info).to_bit_array())),
            channel.llr_noise_variance(False),
        )
        for algorithm in ("max-log", "log-map"):
            decoder = TurboDecoder(encoder, max_iterations=8, algorithm=algorithm)
            result = decoder.decode(*decoder.split_llrs(llrs))
            assert np.array_equal(result.hard_bits, info)


class TestSystemLevelIntegration:
    """Full design-flow integration on small instances."""

    def test_flexible_decoder_supports_both_modes(self, small_decoder_architecture):
        """The same decoder instance evaluates and functionally decodes both code types."""
        code = wimax_ldpc_code(576, "1/2")
        ldpc_eval = small_decoder_architecture.evaluate_ldpc(code)
        turbo_eval = small_decoder_architecture.evaluate_turbo(240)
        assert ldpc_eval.simulation.all_delivered
        assert turbo_eval.simulation.all_delivered
        # Same silicon: identical area breakdown regardless of the mode evaluated.
        assert ldpc_eval.area.core_mm2 == pytest.approx(turbo_eval.area.core_mm2)

    def test_full_wimax_ldpc_code_set_maps_onto_one_decoder(self):
        arch = NocDecoderArchitecture(DecoderSpec(parallelism=8, degree=3, mapping_attempts=1))
        for rate in ("1/2", "2/3A", "3/4A", "5/6"):
            code = wimax_ldpc_code(576, rate)
            simulation = arch.simulate_ldpc_iteration(code)
            assert simulation.all_delivered
            assert simulation.total_messages == code.h.n_edges

    def test_routing_algorithm_comparison_on_same_mapping(self):
        explorer = DesignSpaceExplorer(DecoderSpec(mapping_attempts=1), seed=0)
        code = wimax_ldpc_code(576, "1/2")
        points = {
            algorithm: explorer.evaluate_ldpc_point(
                code, "generalized-kautz", 3, 8, algorithm
            )
            for algorithm in RoutingAlgorithm
        }
        throughputs = [p.throughput_mbps for p in points.values()]
        assert max(throughputs) / min(throughputs) < 1.5  # weak dependence, as in the paper
        # The AP architecture (ASP-FT) must not be larger than the PP ones.
        assert points[RoutingAlgorithm.ASP_FT].noc_area_mm2 <= min(
            points[RoutingAlgorithm.SSP_RR].noc_area_mm2,
            points[RoutingAlgorithm.SSP_FL].noc_area_mm2,
        ) * 1.05

    def test_larger_noc_gives_smaller_message_passing_phase(self):
        code = wimax_ldpc_code(1152, "1/2")
        small = NocDecoderArchitecture(
            DecoderSpec(parallelism=8, degree=3, mapping_attempts=1)
        ).simulate_ldpc_iteration(code)
        large = NocDecoderArchitecture(
            DecoderSpec(parallelism=24, degree=3, mapping_attempts=1)
        ).simulate_ldpc_iteration(code)
        assert large.ncycles < small.ncycles

    def test_wimax_turbo_and_ldpc_requirement_at_moderate_parallelism(self):
        """P=24 comfortably clears the 70 Mb/s WiMAX requirement in both modes."""
        arch = NocDecoderArchitecture(DecoderSpec(parallelism=24, mapping_attempts=2))
        ldpc = arch.evaluate_ldpc(wimax_ldpc_code(2304, "1/2"))
        turbo = arch.evaluate_turbo(2400)
        assert ldpc.throughput_mbps >= 70
        assert turbo.throughput_mbps >= 70

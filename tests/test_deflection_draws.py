"""Hypothesis suite pinning the vectorized deflection-draw path bit-exact.

:class:`repro.utils.rng.DeflectionStreams` reproduces, per job, the scalar
engines' deflection stream — ``bounded_draw`` rejection sampling over
``random.Random(seed).getrandbits`` — from pregenerated 32-bit
Mersenne-Twister word blocks.  The batched kernel consumes it through two
interchangeable APIs: the scalar :meth:`~repro.utils.rng.DeflectionStreams.draw`
and the job-vectorized :meth:`~repro.utils.rng.DeflectionStreams.draw_batch`.
These tests drive adversarial mixtures of both against fresh
``random.Random`` references: draw bounds across 1..16 (multi-rejection
bounds included), tiny word blocks so draws straddle block boundaries
mid-rejection, and arbitrary interleavings across jobs.
"""

from __future__ import annotations

import random

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.utils.rng import DeflectionStreams, bounded_draw


def _references(seeds):
    return [random.Random(seed).getrandbits for seed in seeds]


class TestDrawBatchParity:
    @settings(max_examples=60, deadline=None, derandomize=True)
    @given(
        seeds=st.lists(st.integers(0, 2**32 - 1), min_size=1, max_size=5),
        chunk=st.sampled_from([1, 2, 3, 8, 64]),
        script=st.lists(
            st.lists(st.integers(1, 16), min_size=1, max_size=6),
            min_size=1,
            max_size=30,
        ),
        subset_seed=st.integers(0, 2**16),
    )
    def test_batched_draws_match_reference_streams(
        self, seeds, chunk, script, subset_seed
    ):
        """Each batched draw equals bounded_draw on that job's own stream.

        ``script`` is a sequence of batched calls; each call draws once from
        a pseudo-randomly chosen *distinct* subset of jobs.  Tiny chunks
        force rejection loops across refill boundaries.
        """
        streams = DeflectionStreams(seeds, chunk=chunk)
        refs = _references(seeds)
        picker = random.Random(subset_seed)
        for bounds in script:
            jobs = picker.sample(range(len(seeds)), min(len(bounds), len(seeds)))
            bounds = bounds[: len(jobs)]
            got = streams.draw_batch(np.array(jobs), np.array(bounds))
            expected = [bounded_draw(refs[j], n) for j, n in zip(jobs, bounds)]
            assert got.tolist() == expected

    @settings(max_examples=40, deadline=None, derandomize=True)
    @given(
        seed=st.integers(0, 2**32 - 1),
        chunk=st.sampled_from([1, 2, 5, 32]),
        ops=st.lists(
            st.tuples(st.booleans(), st.integers(1, 16)), min_size=1, max_size=80
        ),
    )
    def test_scalar_and_batched_draws_interleave(self, seed, chunk, ops):
        """Mixing draw() and draw_batch() on one stream stays bit-identical."""
        streams = DeflectionStreams([seed], chunk=chunk)
        (ref,) = _references([seed])
        for use_batch, n in ops:
            if use_batch:
                (got,) = streams.draw_batch(np.array([0]), np.array([n])).tolist()
            else:
                got = streams.draw(0, n)
            assert got == bounded_draw(ref, n)

    def test_bound_one_rejects_across_block_boundaries(self):
        """n=1 rejects every set top bit (p=1/2 per word): the heaviest
        word-consumption pattern, on the smallest possible blocks."""
        streams = DeflectionStreams([7], chunk=1)
        (ref,) = _references([7])
        for _ in range(300):
            assert streams.draw_batch(np.array([0]), np.array([1]))[0] == bounded_draw(
                ref, 1
            )

    def test_precomputed_shifts_match_derived(self):
        seeds = [3, 4]
        a = DeflectionStreams(seeds)
        b = DeflectionStreams(seeds)
        jobs = np.array([0, 1])
        bounds = np.array([5, 3])
        shifts = np.array([32 - 3, 32 - 2])
        for _ in range(200):
            assert np.array_equal(
                a.draw_batch(jobs, bounds),
                b.draw_batch(jobs, bounds, shifts=shifts),
            )

    def test_draw_counts_tally_both_apis(self):
        streams = DeflectionStreams([1, 2, 3])
        refs = _references([1, 2, 3])
        for _ in range(10):
            streams.draw(0, 3)
            streams.draw_batch(np.array([1, 2]), np.array([4, 2]))
        assert streams.draw_counts.tolist() == [10, 10, 10]
        # and the streams really advanced in lockstep with the references
        for job, ref in enumerate(refs):
            for _ in range(10):
                bounded_draw(ref, [3, 4, 2][job])
            assert streams.draw(job, 2) == bounded_draw(ref, 2)

    def test_chunk_size_does_not_change_the_stream(self):
        """getrandbits(32*N) blocks concatenate seamlessly for any N."""
        draws = [(j, n) for j in (0, 1) for n in (1, 3, 7, 16)] * 25
        outcomes = []
        for chunk in (1, 7, 2048):
            streams = DeflectionStreams([11, 12], chunk=chunk)
            outcomes.append([streams.draw(j, n) for j, n in draws])
        assert outcomes[0] == outcomes[1] == outcomes[2]

    def test_rejects_non_positive_chunk(self):
        with pytest.raises(ValueError):
            DeflectionStreams([0], chunk=0)

"""Chaos and resilience tests for the decode service.

The load-bearing claims:

* the circuit breaker never takes an illegal state transition, under any
  sequence of successes/failures/clock advances (property-tested);
* rebuild backoff is deterministic for a seed and capped;
* fault plans are deterministic values: parse/describe round-trip, seeded
  random plans replay identically;
* injected faults — crash, hang, error, delay — are survived *transparently*:
  callers still get bits bit-identical to a direct batch=1 decode;
* a real process-pool worker death (``os._exit`` in the worker) is detected
  and the pool rebuilt;
* repeated primary failures open the breaker, the service degrades to a
  bit-correct fallback, and half-open probes restore the primary;
* deadlines resolve requests with a typed error wherever they are — queued
  behind a long flush budget, or stuck behind a wedged executor;
* ``ServiceThread.stop`` survives a crashed background loop, and bounded
  drain (``drain_timeout_s``) never blocks shutdown on a hung batch;
* conservation under arbitrary seeded chaos: every submitted request ends
  in exactly one of completed/failed/deadline_exceeded/cancelled, and
  ``in_flight`` returns to zero (property-tested over random fault plans).
"""

from __future__ import annotations

import asyncio
import time

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.errors import (
    ConfigurationError,
    DeadlineExceededError,
    ReproError,
    ServiceClosedError,
)
from repro.faults import FaultAction, FaultInjector, FaultPlan
from repro.service import (
    CircuitBreaker,
    DecodeResponse,
    DecodeService,
    ExponentialBackoff,
    ResilienceConfig,
    ServiceThread,
    default_registry,
)
from repro.service.demo import generate_llr_frames

LDPC = ("ldpc", 576, "1/2")
TURBO = ("turbo", 24, "1/2")

#: Fast rebuilds for tests: near-zero backoff, tiny breaker dwell.
FAST = dict(backoff_base_s=1e-4, backoff_cap_s=1e-3)


@pytest.fixture(scope="module")
def registry():
    return default_registry()


@pytest.fixture(scope="module")
def ldpc_entry(registry):
    return registry.resolve(*LDPC)


@pytest.fixture(scope="module")
def turbo_entry(registry):
    return registry.resolve(*TURBO)


def _direct_bits(entry, llrs: np.ndarray) -> np.ndarray:
    """Reference decode of one frame: direct batch=1 engine call."""
    bits, _, _ = entry.decoder.decode_batch(llrs[None]).frame(0)
    return bits


def _assert_conserved(snapshot):
    """Every admitted request ended in exactly one terminal counter."""
    assert snapshot.in_flight == 0
    assert snapshot.submitted == (
        snapshot.completed
        + snapshot.failed
        + snapshot.deadline_exceeded
        + snapshot.cancelled
    )


# ---------------------------------------------------------------------- #
# Circuit breaker
# ---------------------------------------------------------------------- #
def test_breaker_opens_half_opens_and_closes():
    breaker = CircuitBreaker(failure_threshold=2, reset_timeout_s=1.0)
    assert breaker.state(0.0) == "closed"
    breaker.record_failure(0.1)
    assert breaker.state(0.2) == "closed"  # one failure is not a streak
    breaker.record_failure(0.3)
    assert breaker.state(0.4) == "open"
    assert not breaker.allow(0.5)  # open: primary path refused
    assert breaker.allow(1.4)  # dwell elapsed: half-open probe allowed
    assert breaker.state(1.4) == "half_open"
    assert not breaker.allow(1.5)  # probe budget (1) already out
    breaker.record_success(1.6)
    assert breaker.state(1.7) == "closed"
    assert breaker.transitions == [
        ("closed", "open"),
        ("open", "half_open"),
        ("half_open", "closed"),
    ]


def test_breaker_failed_probe_reopens():
    breaker = CircuitBreaker(failure_threshold=1, reset_timeout_s=0.5)
    breaker.record_failure(0.0)
    assert breaker.allow(0.6)  # half-open probe
    breaker.record_failure(0.7)  # probe failed
    assert breaker.state(0.8) == "open"
    assert breaker.opens == 2
    assert set(breaker.transitions) <= CircuitBreaker.LEGAL_TRANSITIONS


@given(
    events=st.lists(
        st.tuples(st.sampled_from(["ok", "fail", "allow"]), st.floats(0.0, 2.0)),
        max_size=60,
    )
)
@settings(max_examples=200, deadline=None)
def test_breaker_transitions_always_legal(events):
    """Any event sequence: only legal edges, state always resolvable."""
    breaker = CircuitBreaker(failure_threshold=2, reset_timeout_s=0.4)
    now = 0.0
    for kind, advance in events:
        now += advance
        if kind == "ok":
            breaker.record_success(now)
        elif kind == "fail":
            breaker.record_failure(now)
        else:
            breaker.allow(now)
        assert breaker.state(now) in ("closed", "open", "half_open")
    assert set(breaker.transitions) <= CircuitBreaker.LEGAL_TRANSITIONS


# ---------------------------------------------------------------------- #
# Backoff
# ---------------------------------------------------------------------- #
def test_backoff_deterministic_capped_and_resettable():
    a = ExponentialBackoff(0.05, 0.4, seed=7)
    b = ExponentialBackoff(0.05, 0.4, seed=7)
    delays = [a.next_delay() for _ in range(8)]
    assert delays == [b.next_delay() for _ in range(8)]  # seeded: replayable
    assert all(d <= 0.4 for d in delays)  # cap holds through the jitter
    assert all(d >= 0.025 for d in delays)  # jitter floor is half the base
    # Envelope doubles until the cap: delay k is at most cap, at least
    # half of min(cap, base * 2**k).
    for k, d in enumerate(delays):
        assert d >= 0.5 * min(0.4, 0.05 * 2**k) - 1e-12
    a.reset()
    assert a.next_delay() <= 0.05  # exponent rewound to the base envelope


# ---------------------------------------------------------------------- #
# Fault plans
# ---------------------------------------------------------------------- #
def test_fault_plan_parse_and_describe_round_trip():
    spec = "crash@3,hang@5:0.2,error@7,delay@9:0.01"
    plan = FaultPlan.from_string(spec)
    assert len(plan) == 4
    assert plan.action_for(3) == FaultAction("crash")
    assert plan.action_for(5) == FaultAction("hang", 0.2)
    assert plan.action_for(4) is None
    assert plan.describe() == spec
    assert FaultPlan.from_string(plan.describe()).describe() == spec
    assert not FaultPlan.from_string("")


def test_fault_plan_validation():
    with pytest.raises(ConfigurationError):
        FaultPlan.from_string("meteor@3")
    with pytest.raises(ConfigurationError):
        FaultPlan.from_string("crash@3,crash@3")
    with pytest.raises(ConfigurationError):
        FaultPlan({0: FaultAction("crash")})
    with pytest.raises(ConfigurationError):
        FaultPlan.random(seed=1, horizon=10, crash=0.8, error=0.5)


def test_fault_plan_every_and_random_deterministic():
    plan = FaultPlan.every(3, kind="error", horizon=10)
    assert sorted(
        seq for seq in range(1, 11) if plan.action_for(seq)
    ) == [3, 6, 9]
    r1 = FaultPlan.random(seed=11, horizon=200, crash=0.1, hang=0.05, hang_s=0.02)
    r2 = FaultPlan.random(seed=11, horizon=200, crash=0.1, hang=0.05, hang_s=0.02)
    assert r1.describe() == r2.describe()
    assert r1.describe() != FaultPlan.random(
        seed=12, horizon=200, crash=0.1, hang=0.05, hang_s=0.02
    ).describe()


def test_fault_injector_counts_dispatches_and_injections():
    injector = FaultInjector(FaultPlan.from_string("error@2"))
    assert injector.next_action() is None
    assert injector.next_action() == FaultAction("error")
    assert injector.next_action() is None
    assert injector.dispatches == 3
    assert injector.injected == 1


# ---------------------------------------------------------------------- #
# Transparent retries
# ---------------------------------------------------------------------- #
@pytest.mark.asyncio
async def test_injected_crash_is_retried_transparently(registry, turbo_entry):
    """A crashed first dispatch is invisible: same bits, attempts counted."""
    rng = np.random.default_rng(3)
    llrs, _ = generate_llr_frames(turbo_entry, 3, 1.5, rng)
    async with DecodeService(
        registry=registry,
        max_batch=4,
        max_delay_s=0.001,
        executor="inline",
        fault_plan=FaultPlan.from_string("crash@1"),
        resilience=ResilienceConfig(max_attempts=3, **FAST),
    ) as service:
        responses = await asyncio.gather(
            *(service.submit(row, *TURBO) for row in llrs)
        )
        snapshot = service.metrics_snapshot()
    for row, response in zip(llrs, responses):
        np.testing.assert_array_equal(response.bits, _direct_bits(turbo_entry, row))
        assert response.attempts == 2
        assert response.decode_path == "inline"
    assert snapshot.retries == 1
    assert snapshot.faults_injected == 1
    _assert_conserved(snapshot)


@pytest.mark.asyncio
async def test_injected_error_and_delay_survived_on_thread_path(
    registry, turbo_entry
):
    rng = np.random.default_rng(4)
    llrs, _ = generate_llr_frames(turbo_entry, 2, 1.5, rng)
    async with DecodeService(
        registry=registry,
        max_batch=1,  # one frame per batch: two dispatches, two plan slots
        max_delay_s=0.001,
        executor="thread",
        fault_plan=FaultPlan.from_string("error@1,delay@2:0.01"),
        resilience=ResilienceConfig(max_attempts=3, **FAST),
    ) as service:
        responses = await asyncio.gather(
            *(service.submit(row, *TURBO) for row in llrs)
        )
        snapshot = service.metrics_snapshot()
    for row, response in zip(llrs, responses):
        np.testing.assert_array_equal(response.bits, _direct_bits(turbo_entry, row))
    assert snapshot.faults_injected == 2
    assert snapshot.retries == 1  # the error cost one retry; the delay none
    _assert_conserved(snapshot)


@pytest.mark.asyncio
async def test_retry_budget_exhaustion_surfaces_typed_error(registry, turbo_entry):
    rng = np.random.default_rng(5)
    llrs, _ = generate_llr_frames(turbo_entry, 1, 1.5, rng)
    async with DecodeService(
        registry=registry,
        max_batch=1,
        max_delay_s=0.001,
        executor="inline",
        fault_plan=FaultPlan.every(1, kind="error"),  # every dispatch raises
        resilience=ResilienceConfig(max_attempts=2, **FAST),
    ) as service:
        with pytest.raises(ReproError) as excinfo:
            await service.submit(llrs[0], *TURBO)
        snapshot = service.metrics_snapshot()
    assert excinfo.value.attempts == 2
    assert snapshot.failed == 1
    _assert_conserved(snapshot)


@pytest.mark.asyncio
async def test_real_process_crash_rebuilds_pool(registry, ldpc_entry):
    """An os._exit in a pool worker breaks the pool; the service rebuilds it."""
    rng = np.random.default_rng(6)
    llrs, _ = generate_llr_frames(ldpc_entry, 4, 2.0, rng)
    async with DecodeService(
        registry=registry,
        max_batch=4,
        max_delay_s=0.001,
        executor="process",
        shards=1,
        fault_plan=FaultPlan.from_string("crash@1"),
        resilience=ResilienceConfig(max_attempts=3, **FAST),
    ) as service:
        responses = await asyncio.gather(
            *(service.submit(row, *LDPC) for row in llrs)
        )
        snapshot = service.metrics_snapshot()
        health = service.health_snapshot()
    for row, response in zip(llrs, responses):
        np.testing.assert_array_equal(response.bits, _direct_bits(ldpc_entry, row))
        assert response.decode_path == "process"
    assert snapshot.pool_rebuilds >= 1
    assert health.decode_path == "process"  # recovered, not degraded
    _assert_conserved(snapshot)


# ---------------------------------------------------------------------- #
# Breaker-driven degradation and recovery
# ---------------------------------------------------------------------- #
@pytest.mark.asyncio
async def test_breaker_degrades_then_half_open_probe_restores(
    registry, turbo_entry
):
    """Three primary crashes open the breaker; the batch completes degraded
    (bit-correct); after the dwell a clean probe closes the breaker."""
    rng = np.random.default_rng(8)
    llrs, _ = generate_llr_frames(turbo_entry, 2, 1.5, rng)
    async with DecodeService(
        registry=registry,
        max_batch=1,
        max_delay_s=0.001,
        executor="thread",
        fault_plan=FaultPlan.from_string("crash@1,crash@2,crash@3"),
        resilience=ResilienceConfig(
            max_attempts=6,
            breaker_failures=3,
            breaker_reset_s=0.05,
            **FAST,
        ),
    ) as service:
        first = await service.submit(llrs[0], *TURBO)
        # Attempts 1-3 crashed on the thread primary and opened the breaker;
        # attempt 4 ran degraded inline and must still be bit-exact.
        np.testing.assert_array_equal(
            first.bits, _direct_bits(turbo_entry, llrs[0])
        )
        assert first.decode_path == "degraded:inline"
        assert first.attempts == 4
        breaker = service._dispatcher.breaker
        assert service.metrics.breaker_opens == 1
        assert service.metrics.degraded_batches == 1

        await asyncio.sleep(0.08)  # past the open dwell: half-open next
        assert service.health_snapshot().breaker_state == "half_open"
        second = await service.submit(llrs[1], *TURBO)  # the clean probe
        np.testing.assert_array_equal(
            second.bits, _direct_bits(turbo_entry, llrs[1])
        )
        assert second.decode_path == "thread"
        health = service.health_snapshot()
        assert health.breaker_state == "closed"
        assert health.healthy
        assert breaker.transitions == [
            ("closed", "open"),
            ("open", "half_open"),
            ("half_open", "closed"),
        ]
        snapshot = service.metrics_snapshot()
    _assert_conserved(snapshot)


# ---------------------------------------------------------------------- #
# Deadlines and watchdog
# ---------------------------------------------------------------------- #
@pytest.mark.asyncio
async def test_deadline_fires_while_queued(registry, turbo_entry):
    """A huge flush budget cannot strand a deadlined request."""
    rng = np.random.default_rng(9)
    llrs, _ = generate_llr_frames(turbo_entry, 1, 1.5, rng)
    async with DecodeService(
        registry=registry,
        max_batch=64,
        max_delay_s=30.0,  # would queue for 30 s without the deadline
        executor="inline",
    ) as service:
        started = time.perf_counter()
        with pytest.raises(DeadlineExceededError) as excinfo:
            await service.submit(llrs[0], *TURBO, deadline_s=0.05)
        elapsed = time.perf_counter() - started
        snapshot = service.metrics_snapshot()
    assert elapsed < 5.0  # resolved by the timer, not the flush budget
    assert excinfo.value.deadline_s == 0.05
    assert snapshot.deadline_exceeded == 1
    assert snapshot.completed == 0
    _assert_conserved(snapshot)


@pytest.mark.asyncio
async def test_deadline_fires_during_hang_and_watchdog_recovers(
    registry, turbo_entry
):
    """One deadlined caller bails out of a wedged batch; the watchdog then
    times the hang out and the remaining caller still gets bits."""
    rng = np.random.default_rng(10)
    llrs, _ = generate_llr_frames(turbo_entry, 2, 1.5, rng)
    async with DecodeService(
        registry=registry,
        max_batch=2,
        max_delay_s=0.001,
        executor="inline",
        watchdog_s=0.2,
        fault_plan=FaultPlan.from_string("hang@1:30"),
        resilience=ResilienceConfig(max_attempts=3, **FAST),
    ) as service:
        impatient = asyncio.create_task(
            service.submit(llrs[0], *TURBO, deadline_s=0.05)
        )
        patient = asyncio.create_task(service.submit(llrs[1], *TURBO))
        with pytest.raises(DeadlineExceededError):
            await impatient
        response = await patient
        snapshot = service.metrics_snapshot()
    np.testing.assert_array_equal(
        response.bits, _direct_bits(turbo_entry, llrs[1])
    )
    assert snapshot.watchdog_timeouts == 1
    assert snapshot.deadline_exceeded == 1
    _assert_conserved(snapshot)


@pytest.mark.asyncio
async def test_cancelled_caller_is_counted_not_completed(registry, turbo_entry):
    rng = np.random.default_rng(12)
    llrs, _ = generate_llr_frames(turbo_entry, 1, 1.5, rng)
    async with DecodeService(
        registry=registry, max_batch=64, max_delay_s=0.05, executor="inline"
    ) as service:
        task = asyncio.create_task(service.submit(llrs[0], *TURBO))
        await asyncio.sleep(0)  # let it enqueue
        task.cancel()
        with pytest.raises(asyncio.CancelledError):
            await task
        await asyncio.sleep(0.1)  # flush passes over the cancelled item
        snapshot = service.metrics_snapshot()
    assert snapshot.cancelled == 1
    assert snapshot.completed == 0
    _assert_conserved(snapshot)


# ---------------------------------------------------------------------- #
# Shutdown robustness
# ---------------------------------------------------------------------- #
@pytest.mark.asyncio
async def test_bounded_drain_never_blocks_on_a_hung_batch(registry, turbo_entry):
    rng = np.random.default_rng(13)
    llrs, _ = generate_llr_frames(turbo_entry, 1, 1.5, rng)
    service = DecodeService(
        registry=registry,
        max_batch=1,
        max_delay_s=0.001,
        executor="thread",
        fault_plan=FaultPlan.from_string("hang@1:2.5"),  # no watchdog: wedged
        resilience=ResilienceConfig(max_attempts=1, **FAST),
    )
    await service.start()
    task = asyncio.create_task(service.submit(llrs[0], *TURBO))
    await asyncio.sleep(0.1)  # batch dispatched into the hang
    started = time.perf_counter()
    await service.stop(drain=True, drain_timeout_s=0.2)
    elapsed = time.perf_counter() - started
    assert elapsed < 2.0  # did not wait out the 2.5 s hang
    with pytest.raises(ServiceClosedError):
        await task
    snapshot = service.metrics.snapshot({})
    assert snapshot.failed == 1
    _assert_conserved(snapshot)


def test_service_thread_stop_survives_loop_crash():
    """A crash that escapes a loop callback surfaces from stop(), fast."""
    runner = ServiceThread(executor="inline", max_delay_s=0.001)
    runner.start()
    loop, thread = runner._loop, runner._thread

    def boom() -> None:
        raise RuntimeError("injected loop crash")

    loop.call_soon_threadsafe(boom)
    thread.join(5.0)
    assert not thread.is_alive()  # the captured crash stopped the loop
    started = time.perf_counter()
    with pytest.raises(ServiceClosedError) as excinfo:
        runner.stop()
    assert time.perf_counter() - started < 5.0  # no deadlock on the dead loop
    assert isinstance(excinfo.value.__cause__, RuntimeError)


def test_decode_sync_timeout_is_a_server_side_deadline(registry, turbo_entry):
    """The client timeout resolves the request on the service — typed error,
    accounted in metrics — instead of abandoning it in flight."""
    rng = np.random.default_rng(14)
    llrs, _ = generate_llr_frames(turbo_entry, 1, 1.5, rng)
    with ServiceThread(
        registry=registry, max_batch=64, max_delay_s=30.0, executor="inline"
    ) as client:
        started = time.perf_counter()
        with pytest.raises(DeadlineExceededError):
            client.decode_sync(llrs[0], *TURBO, timeout=0.05)
        elapsed = time.perf_counter() - started
        snapshot = client.metrics_snapshot()
        assert elapsed < 5.0
        assert snapshot.deadline_exceeded == 1  # resolved server-side
        _assert_conserved(snapshot)


# ---------------------------------------------------------------------- #
# Chaos demo CLI
# ---------------------------------------------------------------------- #
def test_demo_cli_chaos_smoke_resolves_everything(capsys):
    """``python -m repro.service --inject-faults ...`` exits 0 only when
    every request resolved despite the injected faults."""
    from repro.service.demo import main

    rc = main(
        [
            "--requests", "16",
            "--max-batch", "4",
            "--delay-ms", "1",
            "--ldpc-only",
            "--seed", "11",
            "--inject-faults", "crash@2,error@3,delay@4:0.005",
            "--attempts", "4",
            "--watchdog", "5",
        ]
    )
    out = capsys.readouterr().out
    assert rc == 0
    assert "fault plan: crash@2,error@3,delay@4:0.005" in out
    assert "16/16 frames decoded" in out
    assert "faults injected" in out


def test_demo_reports_unresolved_failures(registry):
    """With retries disabled, an always-crashing plan must be reported —
    typed errors in errors_by_type, nonzero-exit contract."""
    from repro.service.demo import run_demo

    payload = run_demo(
        requests=4,
        codecs=(TURBO,),
        max_batch=2,
        max_delay_s=0.001,
        executor="inline",
        registry=registry,
        quiet=True,
        fault_plan="crash@1,crash@2",
        attempts=1,
    )
    assert payload["resolved"] < payload["requests"]
    assert payload["unresolved"] == 0  # failed fast, not hung
    assert payload["errors_by_type"].get("RetryExhaustedError", 0) >= 1


# ---------------------------------------------------------------------- #
# Seeded chaos property test
# ---------------------------------------------------------------------- #
@given(
    seed=st.integers(0, 2**16),
    crash=st.floats(0.0, 0.2),
    hang=st.floats(0.0, 0.15),
    error=st.floats(0.0, 0.2),
    executor=st.sampled_from(["inline", "thread"]),
    frames=st.integers(6, 14),
)
@settings(
    max_examples=8,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
def test_chaos_every_request_resolves_and_conserves(
    registry, turbo_entry, seed, crash, hang, error, executor, frames
):
    """Random seeded fault plans over concurrent arrivals: every future
    resolves (bits identical to direct decode, or a typed error), the
    conservation invariant holds, and breaker transitions stay legal."""
    plan = FaultPlan.random(
        seed=seed,
        horizon=frames * 6,
        crash=crash,
        hang=hang,
        error=error,
        delay=0.05,
        hang_s=0.02,
        delay_s=0.002,
    )
    rng = np.random.default_rng(seed)
    llrs, _ = generate_llr_frames(turbo_entry, frames, 1.5, rng)

    async def scenario():
        async with DecodeService(
            registry=registry,
            max_batch=3,
            max_delay_s=0.001,
            executor=executor,
            watchdog_s=0.5,
            fault_plan=plan,
            resilience=ResilienceConfig(
                max_attempts=5,
                breaker_failures=2,
                breaker_reset_s=0.02,
                **FAST,
            ),
        ) as service:
            outcomes = await asyncio.gather(
                *(service.submit(row, *TURBO) for row in llrs),
                return_exceptions=True,
            )
            snapshot = service.metrics_snapshot()
            breaker = service._dispatcher.breaker
            transitions = list(breaker.transitions) if breaker else []
        return outcomes, snapshot, transitions

    outcomes, snapshot, transitions = asyncio.run(scenario())
    assert len(outcomes) == frames
    for row, outcome in zip(llrs, outcomes):
        if isinstance(outcome, DecodeResponse):
            np.testing.assert_array_equal(
                outcome.bits, _direct_bits(turbo_entry, row)
            )
        else:  # resolution with a *typed* error is the only other legal end
            assert isinstance(outcome, ReproError), outcome
    assert snapshot.submitted == frames
    _assert_conserved(snapshot)
    assert set(transitions) <= CircuitBreaker.LEGAL_TRANSITIONS

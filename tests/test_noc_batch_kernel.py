"""Differential harness: the job-batched kernel vs the scalar cycle engine.

:class:`repro.noc.engine_batch.BatchedNocKernel` must be *cycle-exact, per
job*, against :class:`repro.noc.engine.BatchNocSimulator` (which PR 3 pinned
against the object reference simulator): same ncycles, delivered counts,
per-node FIFO high-water marks, hop/latency totals and SCM deflection
decisions for every (topology, configuration, traffic, seed) — whatever other
jobs share the batch.  The hypothesis suite below drives randomized batches
(mixed traffic sizes, empty jobs, distinct seeds) through both and compares
every observable, including the both-raise behaviour when a job exceeds
``max_cycles``.
"""

from __future__ import annotations

import random

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.errors import SimulationError
from repro.noc import (
    BatchNocSimulator,
    BatchedNocKernel,
    CollisionPolicy,
    NocConfiguration,
    NodeTraffic,
    RoutingAlgorithm,
    TrafficPattern,
    build_routing_tables,
    build_topology,
    random_traffic,
)
from repro.utils.rng import DeflectionStreams, bounded_draw

TOPOLOGY_SPECS = [
    ("generalized-kautz", 8, 3),
    ("generalized-de-bruijn", 9, 2),
    ("ring", 6, None),
    ("spidergon", 8, None),
    ("mesh", 9, None),
    ("honeycomb", 8, None),
]

_TOPOLOGY_CACHE: dict = {}


def _topology_and_tables(spec):
    if spec not in _TOPOLOGY_CACHE:
        topology = build_topology(*spec)
        _TOPOLOGY_CACHE[spec] = (topology, build_routing_tables(topology))
    return _TOPOLOGY_CACHE[spec]


def _observables(result):
    """Every measurement the batched kernel must reproduce exactly."""
    return {
        "ncycles": result.ncycles,
        "total": result.total_messages,
        "delivered": result.delivered_messages,
        "bypassed": result.local_bypassed,
        "max_fifo": result.max_fifo_occupancy,
        "max_injection": result.max_injection_occupancy,
        "per_node_max_fifo": list(result.per_node_max_fifo),
        "link_utilization": result.link_utilization,
        "count": result.statistics.count,
        "total_latency": result.statistics.total_latency,
        "max_latency": result.statistics.max_latency,
        "total_hops": result.statistics.total_hops,
        "misrouted": result.statistics.misrouted,
        "latencies": list(result.statistics._latencies),
        "describe": result.describe(),
    }


config_strategy = st.builds(
    NocConfiguration,
    routing_algorithm=st.sampled_from(list(RoutingAlgorithm)),
    collision_policy=st.sampled_from(list(CollisionPolicy)),
    injection_rate=st.sampled_from([0.25, 0.4, 0.5, 0.75, 1.0]),
    route_local=st.booleans(),
    # Small capacities force the kernel's scalar fallback (bounded
    # backpressure); large ones exercise the vectorized job axis.
    fifo_capacity=st.sampled_from([3, 4096]),
)


class TestDifferentialKernelVsEngine:
    @settings(
        max_examples=50,
        deadline=None,
        derandomize=True,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(
        spec=st.sampled_from(TOPOLOGY_SPECS),
        config=config_strategy,
        batch=st.lists(
            st.tuples(st.integers(0, 20), st.integers(0, 2**20)), min_size=1, max_size=5
        ),
        sim_seed=st.integers(0, 2**20),
    )
    def test_kernel_matches_engine_per_job(self, spec, config, batch, sim_seed):
        """Randomized batches must agree with per-job scalar runs exactly."""
        topology, tables = _topology_and_tables(spec)
        traffics = [
            random_traffic(topology.n_nodes, messages, seed=traffic_seed)
            for messages, traffic_seed in batch
        ]
        seeds = [sim_seed + 31 * index for index in range(len(traffics))]
        kernel = BatchedNocKernel(
            topology, config, routing_tables=tables, max_cycles=30_000
        )
        try:
            expected = [
                _observables(
                    BatchNocSimulator(
                        topology, config, routing_tables=tables, seed=seed,
                        max_cycles=30_000,
                    ).run(traffic)
                )
                for traffic, seed in zip(traffics, seeds)
            ]
        except SimulationError:
            # Tight capacities can deadlock; the batch must diverge too.
            with pytest.raises(SimulationError):
                kernel.run(traffics, seeds)
            return
        actual = [_observables(r) for r in kernel.run(traffics, seeds)]
        assert actual == expected

    @pytest.mark.parametrize("spec", TOPOLOGY_SPECS)
    @pytest.mark.parametrize("algorithm", list(RoutingAlgorithm))
    def test_kernel_matches_engine_on_default_config(self, spec, algorithm):
        """Dense deterministic grid at the paper's default configuration."""
        topology, tables = _topology_and_tables(spec)
        config = NocConfiguration().with_routing(algorithm)
        traffics = [
            random_traffic(topology.n_nodes, messages, seed=7 + messages)
            for messages in (20, 5, 0, 13)
        ]
        seeds = [3, 11, 0, 27]
        expected = [
            _observables(
                BatchNocSimulator(topology, config, routing_tables=tables, seed=s).run(t)
            )
            for t, s in zip(traffics, seeds)
        ]
        kernel = BatchedNocKernel(topology, config, routing_tables=tables)
        assert [_observables(r) for r in kernel.run(traffics, seeds)] == expected

    @pytest.mark.parametrize("policy", list(CollisionPolicy))
    def test_kernel_matches_engine_on_hotspot_traffic(self, policy):
        """All nodes hammering node 0 maximizes contention and deflections."""
        topology, tables = _topology_and_tables(("generalized-kautz", 8, 3))
        hotspot = TrafficPattern(
            n_nodes=8,
            per_node=tuple(
                NodeTraffic(
                    node=node, destinations=(0,) * 30,
                    memory_locations=tuple(range(30)),
                )
                for node in range(8)
            ),
            label="hotspot",
        )
        traffics = [hotspot, random_traffic(8, 10, seed=5), hotspot]
        seeds = [1, 2, 3]
        config = NocConfiguration(collision_policy=policy)
        expected = [
            _observables(
                BatchNocSimulator(topology, config, routing_tables=tables, seed=s).run(t)
            )
            for t, s in zip(traffics, seeds)
        ]
        kernel = BatchedNocKernel(topology, config, routing_tables=tables)
        assert [_observables(r) for r in kernel.run(traffics, seeds)] == expected

    @pytest.mark.parametrize("batch", [2, 8, 256])
    @pytest.mark.parametrize("algorithm", list(RoutingAlgorithm))
    def test_scm_cycle_exact_across_batch_sizes(self, batch, algorithm):
        """SCM batches stay cycle-exact at every replay regime: tiny batches
        (pure scalar replay), mid batches, and J=256 (vectorized resume
        rounds engage above their minimum round size)."""
        topology, tables = _topology_and_tables(("generalized-kautz", 8, 3))
        config = NocConfiguration(collision_policy=CollisionPolicy.SCM).with_routing(
            algorithm
        )
        traffics = [random_traffic(8, 6, seed=400 + i) for i in range(batch)]
        seeds = [i * 7 + 1 for i in range(batch)]
        kernel = BatchedNocKernel(topology, config, routing_tables=tables)
        results = kernel.run(traffics, seeds)
        engine = BatchNocSimulator(topology, config, routing_tables=tables, seed=0)
        expected = [
            _observables(engine.run(t, seed=s)) for t, s in zip(traffics, seeds)
        ]
        assert [_observables(r) for r in results] == expected

    @pytest.mark.parametrize("algorithm", list(RoutingAlgorithm))
    @pytest.mark.parametrize(
        "spec",
        [
            # small fan-out: dense deflection mask lookups
            ("generalized-kautz", 8, 3),
            # fan-out beyond the mask-table gate: on-the-fly bit math
            ("generalized-de-bruijn", 24, 15),
        ],
    )
    def test_scm_vectorized_resume_rounds_cycle_exact(
        self, spec, algorithm, monkeypatch
    ):
        """Force every resume round through the vectorized lockstep (no
        scalar fallback) and pin it against per-job scalar runs."""
        import repro.noc.engine_batch as engine_batch

        monkeypatch.setattr(engine_batch, "_VEC_MIN_ROUND", 1)
        topology, tables = _topology_and_tables(spec)
        n = topology.n_nodes
        config = NocConfiguration(collision_policy=CollisionPolicy.SCM).with_routing(
            algorithm
        )
        traffics = [random_traffic(n, 25, seed=500 + i) for i in range(4)]
        seeds = [31, 32, 33, 34]
        kernel = BatchedNocKernel(topology, config, routing_tables=tables)
        results = kernel.run(traffics, seeds)
        engine = BatchNocSimulator(topology, config, routing_tables=tables, seed=0)
        expected = [
            _observables(engine.run(t, seed=s)) for t, s in zip(traffics, seeds)
        ]
        assert [_observables(r) for r in results] == expected
        if spec[0] == "generalized-kautz":
            # the degree-3 graph must actually deflect under this load
            assert sum(r.statistics.misrouted for r in results) > 0

    def test_deflection_draw_counts_match_scalar_streams(self):
        """The batch consumes exactly the scalar engines' per-job draw counts."""
        topology, tables = _topology_and_tables(("generalized-kautz", 8, 3))
        config = NocConfiguration(collision_policy=CollisionPolicy.SCM)
        traffics = [random_traffic(8, 25, seed=900 + i) for i in range(3)]
        seeds = [5, 6, 7]
        kernel = BatchedNocKernel(topology, config, routing_tables=tables)
        results = kernel.run(traffics, seeds)
        # Misroute totals are the per-job witness of the deflection stream:
        # they must match scalar runs (already asserted elsewhere) and at
        # least one job must actually have drawn.
        scalar = [
            BatchNocSimulator(topology, config, routing_tables=tables, seed=s).run(t)
            for t, s in zip(traffics, seeds)
        ]
        assert [r.statistics.misrouted for r in results] == [
            r.statistics.misrouted for r in scalar
        ]
        assert sum(r.statistics.misrouted for r in results) > 0


class TestKernelContract:
    def test_empty_batch(self):
        topology, tables = _topology_and_tables(("ring", 6, None))
        kernel = BatchedNocKernel(topology, NocConfiguration(), routing_tables=tables)
        assert kernel.run([]) == []

    def test_single_job_matches_engine(self):
        topology, tables = _topology_and_tables(("ring", 6, None))
        config = NocConfiguration()
        traffic = random_traffic(6, 12, seed=4)
        kernel = BatchedNocKernel(topology, config, routing_tables=tables)
        (result,) = kernel.run([traffic], [9])
        single = BatchNocSimulator(topology, config, routing_tables=tables, seed=9).run(
            traffic
        )
        assert _observables(result) == _observables(single)

    def test_rejects_node_count_mismatch(self):
        topology, tables = _topology_and_tables(("ring", 6, None))
        kernel = BatchedNocKernel(topology, NocConfiguration(), routing_tables=tables)
        with pytest.raises(SimulationError):
            kernel.run([random_traffic(6, 5), random_traffic(4, 5)])

    def test_rejects_seed_length_mismatch(self):
        topology, tables = _topology_and_tables(("ring", 6, None))
        kernel = BatchedNocKernel(topology, NocConfiguration(), routing_tables=tables)
        with pytest.raises(SimulationError):
            kernel.run([random_traffic(6, 5)], [1, 2])

    def test_rejects_foreign_routing_tables(self):
        topology, _ = _topology_and_tables(("ring", 6, None))
        _, other_tables = _topology_and_tables(("spidergon", 8, None))
        with pytest.raises(SimulationError):
            BatchedNocKernel(topology, NocConfiguration(), routing_tables=other_tables)

    def test_rejects_bad_max_cycles(self):
        topology, tables = _topology_and_tables(("ring", 6, None))
        with pytest.raises(SimulationError):
            BatchedNocKernel(
                topology, NocConfiguration(), routing_tables=tables, max_cycles=0
            )

    def test_max_cycles_guard_raises_for_stuck_jobs(self):
        topology, tables = _topology_and_tables(("ring", 6, None))
        kernel = BatchedNocKernel(
            topology, NocConfiguration(), routing_tables=tables, max_cycles=2
        )
        with pytest.raises(SimulationError):
            kernel.run([random_traffic(6, 30, seed=2), random_traffic(6, 30, seed=3)])

    def test_default_seeds_are_zero(self):
        topology, tables = _topology_and_tables(("generalized-kautz", 8, 3))
        config = NocConfiguration()
        traffics = [random_traffic(8, 15, seed=60), random_traffic(8, 15, seed=61)]
        kernel = BatchedNocKernel(topology, config, routing_tables=tables)
        default = [_observables(r) for r in kernel.run(traffics)]
        explicit = [_observables(r) for r in kernel.run(traffics, [0, 0])]
        assert default == explicit

    @pytest.mark.parametrize(
        "algorithm", [RoutingAlgorithm.SSP_FL, RoutingAlgorithm.SSP_RR]
    )
    def test_high_in_degree_serve_order(self, algorithm):
        """Regression: serve-order keys must stay sound beyond 16 serving
        slots (a dense de Bruijn graph has in-degrees above the old 4-bit
        key packing)."""
        topology = build_topology("generalized-de-bruijn", 24, 15)
        assert int(topology.in_degrees.max()) + 1 > 16
        tables = build_routing_tables(topology)
        config = NocConfiguration().with_routing(algorithm)
        traffics = [random_traffic(24, 12, seed=300 + i) for i in range(3)]
        seeds = [1, 2, 3]
        kernel = BatchedNocKernel(topology, config, routing_tables=tables)
        results = kernel.run(traffics, seeds)
        singles = [
            BatchNocSimulator(topology, config, routing_tables=tables, seed=s).run(t)
            for t, s in zip(traffics, seeds)
        ]
        assert [_observables(r) for r in results] == [_observables(r) for r in singles]

    def test_early_finish_masking(self):
        """Jobs that drain at very different cycles stay pinned per job."""
        topology, tables = _topology_and_tables(("generalized-kautz", 8, 3))
        config = NocConfiguration()
        traffics = [
            random_traffic(8, 1, seed=70),   # finishes almost immediately
            random_traffic(8, 60, seed=71),  # runs an order of magnitude longer
            random_traffic(8, 0, seed=72),   # never starts (ncycles == 0)
        ]
        seeds = [1, 2, 3]
        kernel = BatchedNocKernel(topology, config, routing_tables=tables)
        results = kernel.run(traffics, seeds)
        singles = [
            BatchNocSimulator(topology, config, routing_tables=tables, seed=s).run(t)
            for t, s in zip(traffics, seeds)
        ]
        assert [_observables(r) for r in results] == [_observables(r) for r in singles]
        assert results[2].ncycles == 0
        assert results[0].ncycles < results[1].ncycles


class TestDeflectionStreams:
    def test_reproduces_bounded_draw_stream(self):
        """The counter-based word stream equals bounded_draw over getrandbits."""
        seeds = [0, 1, 12345]
        streams = DeflectionStreams(seeds)
        references = [random.Random(seed).getrandbits for seed in seeds]
        draw_pattern = [1, 2, 3, 4, 2, 2, 3, 1, 4, 3] * 40
        for job, reference in enumerate(references):
            for n in draw_pattern:
                assert streams.draw(job, n) == bounded_draw(reference, n)
        assert streams.draw_counts.tolist() == [len(draw_pattern)] * len(seeds)

    def test_streams_are_independent_per_job(self):
        streams = DeflectionStreams([7, 7])
        a = [streams.draw(0, 3) for _ in range(50)]
        b = [streams.draw(1, 3) for _ in range(50)]
        assert a == b  # same seed, same stream
        reference = random.Random(7).getrandbits
        assert a == [bounded_draw(reference, 3) for _ in range(50)]

    def test_refill_crosses_chunk_boundary(self):
        streams = DeflectionStreams([3])
        reference = random.Random(3).getrandbits
        total = DeflectionStreams.CHUNK + 100  # force at least one refill
        for _ in range(total):
            assert streams.draw(0, 4) == bounded_draw(reference, 4)

"""Scenario-matrix acceptance tests: fading, 16-QAM, fixed-point LLRs, 802.11n.

These pin the sanity of every scenario the batched chain was opened to:

* Rayleigh fading (per-symbol and block) is strictly worse than AWGN at
  equal average Eb/N0 — with Wilson-interval separation, not just point
  estimates;
* the Gray 16-QAM demapper equals a brute-force 16-point max-log reference;
* the paper's fixed-point datapath (7/1 channel LLRs through
  ``QuantizedBatchDecoder``, 5/0 extrinsics via ``fixed_point=True``) costs
  at most 0.5 dB versus float at the BER~1e-4 crossing of a reduced sweep;
* the 802.11n n=1944 codes decode through the same ``BerRunner`` and are
  advertised by the decode service's registry;
* the runner's channel/quantizer plumbing (``channel=``, ``llr_quantizer=``)
  and the out-of-range code-rate regression.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.channel import (
    AWGNChannel,
    LLRQuantizer,
    QAM16Modulator,
    QPSKModulator,
    RayleighFadingChannel,
)
from repro.channel.quantize import CHANNEL_LLR_SPEC, QuantizationSpec
from repro.errors import ConfigurationError, DecodingError
from repro.ldpc import wifi_ldpc_code, wimax_ldpc_code
from repro.sim import (
    BatchLayeredDecoder,
    BatchTurboDecoder,
    BerRunner,
    QuantizedBatchDecoder,
    resolve_code_rate,
)
from repro.turbo import TurboEncoder


@pytest.fixture(scope="module")
def wimax_576():
    return wimax_ldpc_code(576, "1/2")


@pytest.fixture(scope="module")
def layered_576(wimax_576):
    return BatchLayeredDecoder(wimax_576.h, max_iterations=10)


class TestFadingScenarios:
    @pytest.mark.parametrize("fading_channel", ["rayleigh", "rayleigh-block"])
    def test_rayleigh_strictly_worse_than_awgn(
        self, wimax_576, layered_576, fading_channel
    ):
        # Same code, decoder, modulator, Eb/N0 and frame budget; only the
        # channel differs.  The Wilson intervals must not even touch.
        def run(channel):
            return BerRunner(
                wimax_576,
                layered_576,
                QPSKModulator(),
                channel=channel,
                batch_size=64,
                max_frames=96,
                target_frame_errors=None,
                seed=5,
            ).run_point(2.5)

        awgn = run("awgn")
        faded = run(fading_channel)
        assert faded.ber > awgn.ber
        assert faded.ber_interval[0] > awgn.ber_interval[1]

    def test_fading_csi_path_used_by_runner_matches_manual_chain(
        self, wimax_576, layered_576
    ):
        # Rebuild one batch of the runner's chain by hand (same seed tree)
        # and check the runner's counts come from the CSI-weighted demap.
        runner = BerRunner(
            wimax_576,
            layered_576,
            QPSKModulator(),
            channel="rayleigh",
            batch_size=16,
            max_frames=16,
            target_frame_errors=None,
            seed=9,
        )
        point = runner.run_point(2.0)
        seq = runner._point_seed_sequence(2.0)
        rng = np.random.default_rng(seq.spawn(1)[0])
        info = rng.integers(0, 2, size=(16, wimax_576.k))
        codewords = wimax_576.encode_batch(info)
        mod = QPSKModulator()
        symbols = mod.modulate(codewords)
        from repro.channel.awgn import ebn0_to_noise_sigma

        sigma = ebn0_to_noise_sigma(2.0, 0.5, 2)
        channel = RayleighFadingChannel(sigma, rng)
        received, gains = channel.transmit(symbols)
        llrs = mod.demodulate_llr(received, channel.llr_noise_variance(True), gains=gains)
        result = layered_576.decode_batch(llrs)
        errors = int(np.count_nonzero(np.asarray(result.hard_bits) != codewords))
        assert point.bit_errors == errors

    def test_unknown_channel_name_rejected(self, wimax_576, layered_576):
        with pytest.raises(ConfigurationError, match="rician"):
            BerRunner(wimax_576, layered_576, channel="rician")
        with pytest.raises(ConfigurationError):
            BerRunner(wimax_576, layered_576, channel=123)  # type: ignore[arg-type]

    def test_custom_channel_factory_accepted(self, wimax_576, layered_576):
        point = BerRunner(
            wimax_576,
            layered_576,
            channel=lambda sigma, rng: AWGNChannel(sigma, rng),
            batch_size=16,
            max_frames=16,
            target_frame_errors=None,
            seed=0,
        ).run_point(2.0)
        reference = BerRunner(
            wimax_576,
            layered_576,
            channel="awgn",
            batch_size=16,
            max_frames=16,
            target_frame_errors=None,
            seed=0,
        ).run_point(2.0)
        assert point.bit_errors == reference.bit_errors


class TestQam16Scenarios:
    def test_maxlog_demap_matches_brute_force_reference(self):
        mod = QAM16Modulator()
        patterns = np.array(
            [[b >> 3 & 1, b >> 2 & 1, b >> 1 & 1, b & 1] for b in range(16)]
        )
        points = mod.modulate(patterns.reshape(1, -1)).reshape(-1)
        rng = np.random.default_rng(7)
        bits = rng.integers(0, 2, size=(5, 48))
        symbols = mod.modulate(bits)
        noisy = symbols + 0.25 * (
            rng.normal(size=symbols.shape) + 1j * rng.normal(size=symbols.shape)
        )
        nv = 2 * 0.25**2
        got = mod.demodulate_llr(noisy, nv)
        # Brute force: max-log over all 16 constellation points per symbol.
        reference = np.empty_like(got)
        for frame in range(noisy.shape[0]):
            for s, y in enumerate(noisy[frame]):
                dist = np.abs(y - points) ** 2
                for b in range(4):
                    m0 = dist[patterns[:, b] == 0].min()
                    m1 = dist[patterns[:, b] == 1].min()
                    reference[frame, 4 * s + b] = (m1 - m0) / nv
        assert np.allclose(got, reference, rtol=1e-12, atol=1e-12)

    def test_qam16_rides_the_runner(self, wimax_576, layered_576):
        # 576 bits = 144 16-QAM symbols per frame; high Eb/N0 so the point is
        # cheap and the decoder actually converges.
        point = BerRunner(
            wimax_576,
            layered_576,
            QAM16Modulator(),
            batch_size=32,
            max_frames=64,
            target_frame_errors=None,
            seed=3,
        ).run_point(6.0)
        assert point.frames == 64
        assert point.total_bits == 64 * 576
        assert point.ber < 1e-2

    def test_qam16_fading_runner_converges_at_high_snr(self, wimax_576, layered_576):
        point = BerRunner(
            wimax_576,
            layered_576,
            QAM16Modulator(),
            channel="rayleigh",
            batch_size=32,
            max_frames=32,
            target_frame_errors=None,
            seed=4,
        ).run_point(14.0)
        assert point.ber < 5e-2


class TestFixedPointScenarios:
    THRESHOLD = 2e-4
    GRID = (2.0, 2.25, 2.5, 2.75, 3.0)

    @staticmethod
    def _crossing(points, threshold):
        """First grid Eb/N0 from which BER stays at or below ``threshold``."""
        for index, point in enumerate(points):
            if all(later.ber <= threshold for later in points[index:]):
                return point.ebn0_db
        return None

    def test_quantized_within_half_db_of_float(self, wimax_576):
        def sweep(decoder):
            return BerRunner(
                wimax_576,
                decoder,
                batch_size=64,
                max_frames=384,
                target_frame_errors=None,
                seed=11,
            ).run(self.GRID)

        float_points = sweep(BatchLayeredDecoder(wimax_576.h, max_iterations=10))
        fixed_points = sweep(
            QuantizedBatchDecoder(
                BatchLayeredDecoder(wimax_576.h, max_iterations=10, fixed_point=True)
            )
        )
        float_crossing = self._crossing(float_points, self.THRESHOLD)
        fixed_crossing = self._crossing(fixed_points, self.THRESHOLD)
        assert float_crossing is not None, "float sweep never reached BER~1e-4"
        assert fixed_crossing is not None, "fixed-point sweep never reached BER~1e-4"
        assert fixed_crossing - float_crossing <= 0.5 + 1e-9

    def test_wrapper_and_runner_option_are_equivalent(self, wimax_576, layered_576):
        quantizer = LLRQuantizer(CHANNEL_LLR_SPEC)
        wrapped = BerRunner(
            wimax_576,
            QuantizedBatchDecoder(layered_576, quantizer),
            batch_size=16,
            max_frames=32,
            target_frame_errors=None,
            seed=2,
        ).run_point(1.5)
        option = BerRunner(
            wimax_576,
            layered_576,
            llr_quantizer=quantizer,
            batch_size=16,
            max_frames=32,
            target_frame_errors=None,
            seed=2,
        ).run_point(1.5)
        assert wrapped.bit_errors == option.bit_errors
        assert wrapped.frame_errors == option.frame_errors

    def test_wrapper_forwards_protocol_surface(self, wimax_576, layered_576):
        wrapped = QuantizedBatchDecoder(layered_576)
        assert wrapped.n_bits == wimax_576.n
        assert wrapped.decides_info_bits is False
        assert wrapped.inner is layered_576
        assert wrapped.quantizer.spec == CHANNEL_LLR_SPEC
        assert wrapped.quantizer.symmetric

    def test_wrapper_wraps_turbo_decoder(self):
        encoder = TurboEncoder(n_couples=24)
        wrapped = QuantizedBatchDecoder(BatchTurboDecoder(encoder, max_iterations=4))
        assert wrapped.decides_info_bits is True
        point = BerRunner(
            encoder,
            wrapped,
            batch_size=8,
            max_frames=8,
            target_frame_errors=None,
            seed=1,
        ).run_point(2.0)
        assert point.total_bits == 8 * encoder.k

    def test_wrapper_quantization_actually_bites(self, layered_576):
        # A coarse quantiser saturates at max_value; the wrapped decode must
        # see those saturated inputs (different result than float on a frame
        # built to straddle the saturation point).
        coarse = QuantizedBatchDecoder(layered_576, LLRQuantizer(QuantizationSpec(3, 0)))
        llrs = np.full((1, 576), 50.0)
        llrs[0, ::7] = -50.0
        out = coarse.decode_batch(llrs)
        assert out.hard_bits.shape == (1, 576)

    def test_wrapper_rejects_non_decoder_and_non_quantizer(self, layered_576):
        with pytest.raises(DecodingError):
            QuantizedBatchDecoder(object())  # type: ignore[arg-type]
        with pytest.raises(DecodingError):
            QuantizedBatchDecoder(layered_576, quantizer="7bits")  # type: ignore[arg-type]

    def test_runner_rejects_bad_quantizer(self, wimax_576, layered_576):
        with pytest.raises(ConfigurationError):
            BerRunner(wimax_576, layered_576, llr_quantizer="7bits")  # type: ignore[arg-type]


class TestWifiScenarios:
    @pytest.mark.parametrize("rate,ebn0", [("1/2", 2.5), ("5/6", 4.5)])
    def test_wifi_codes_decode_through_runner(self, rate, ebn0):
        code = wifi_ldpc_code(1944, rate)
        assert code.n == 1944
        point = BerRunner(
            code,
            BatchLayeredDecoder(code.h, max_iterations=10),
            batch_size=16,
            max_frames=32,
            target_frame_errors=None,
            seed=0,
        ).run_point(ebn0)
        assert point.frames == 32
        assert point.ber < 1e-2

    def test_wifi_codewords_satisfy_parity(self):
        code = wifi_ldpc_code(1944, "1/2")
        rng = np.random.default_rng(0)
        codewords = code.encode_batch(rng.integers(0, 2, size=(4, code.k)))
        dense = code.h.to_dense()
        assert not ((dense @ codewords.T) % 2).any()

    def test_wifi_advertised_by_service_registry(self):
        from repro.service.registry import CodecSpec, default_registry

        registry = default_registry()
        assert "wifi" in registry.families
        specs = registry.specs()
        assert CodecSpec("wifi", 1944, "1/2") in specs
        assert CodecSpec("wifi", 1944, "5/6") in specs
        entry = registry.resolve("wifi", 1944, "5/6")
        assert entry.n_bits == 1944
        assert entry.k_bits == 1620

    def test_wifi_rejects_unknown_parameters(self):
        from repro.errors import CodeDefinitionError

        with pytest.raises(CodeDefinitionError):
            wifi_ldpc_code(648, "1/2")
        with pytest.raises(CodeDefinitionError):
            wifi_ldpc_code(1944, "3/4")


class TestResolveCodeRateValidation:
    def test_rejects_out_of_range_rates(self):
        # Regression: "5/4" (=1.25) and negative fractions used to parse
        # fine and only blow up later inside ebn0_to_noise_sigma.
        for bad in ("5/4", "-1/2", 1.25, -0.5, 0.0, "0"):
            with pytest.raises(ConfigurationError):
                resolve_code_rate(bad)

    def test_accepts_boundary_and_interior(self):
        assert resolve_code_rate(1.0) == pytest.approx(1.0)
        assert resolve_code_rate("5/6") == pytest.approx(5 / 6)

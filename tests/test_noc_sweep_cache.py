"""Persistent sweep-result cache: keying, round-trips, and fallback paths."""

from __future__ import annotations

import dataclasses
import json

import pytest

from repro.core import DecoderSpec, DesignSpaceExplorer
from repro.ldpc import wimax_ldpc_code
from repro.noc import (
    SWEEP_CACHE_CODE_VERSION,
    CollisionPolicy,
    NocConfiguration,
    NocSweepCache,
    NocSweepJob,
    RoutingAlgorithm,
    random_traffic,
    run_noc_sweep,
)


def _jobs(n_points: int = 4, seed: int = 9) -> list[NocSweepJob]:
    jobs = []
    for index in range(n_points):
        config = NocConfiguration(
            injection_rate=0.5 if index % 2 else 1.0,
            collision_policy=CollisionPolicy.SCM if index < 2 else CollisionPolicy.DCM,
        ).with_routing(RoutingAlgorithm.SSP_FL)
        jobs.append(
            NocSweepJob(
                family="generalized-kautz",
                parallelism=8 + 4 * (index % 2),
                degree=3,
                config=config,
                traffic=random_traffic(8 + 4 * (index % 2), 10, seed=seed + index),
                seed=index,
            )
        )
    return jobs


@pytest.fixture()
def cache(tmp_path):
    return NocSweepCache(tmp_path / "sweep-cache")


def _outcome_fields(outcome):
    result = outcome.result
    return (
        result.ncycles,
        result.total_messages,
        result.delivered_messages,
        result.local_bypassed,
        result.max_fifo_occupancy,
        result.max_injection_occupancy,
        tuple(result.per_node_max_fifo),
        result.statistics.mean_latency,
        result.statistics.max_latency,
        result.statistics.mean_hops,
        result.link_utilization,
        result.config_label,
        result.topology_label,
        result.traffic_label,
    )


class TestHitMiss:
    def test_cold_run_misses_then_populates(self, cache):
        jobs = _jobs()
        run_noc_sweep(jobs, cache=cache)
        assert cache.misses == len(jobs)
        assert cache.hits == 0
        assert len(cache) == len(jobs)

    def test_warm_run_hits_everything(self, cache):
        jobs = _jobs()
        run_noc_sweep(jobs, cache=cache)
        cold = cache.misses
        run_noc_sweep(jobs, cache=cache)
        assert cache.hits == len(jobs)
        assert cache.misses == cold  # no new misses
        assert len(cache) == len(jobs)

    def test_partial_hits_only_simulate_misses(self, cache):
        jobs = _jobs()
        run_noc_sweep(jobs[:2], cache=cache)
        run_noc_sweep(jobs, cache=cache)
        assert cache.hits == 2
        assert cache.misses == len(jobs)
        assert len(cache) == len(jobs)


class TestBitIdentical:
    def test_cached_results_identical_to_uncached(self, cache):
        jobs = _jobs()
        baseline = run_noc_sweep(jobs)
        run_noc_sweep(jobs, cache=cache)  # populate
        warm = run_noc_sweep(jobs, cache=cache)  # all hits
        assert [o.job for o in warm] == jobs  # submission order preserved
        for base, cached in zip(baseline, warm):
            assert _outcome_fields(base) == _outcome_fields(cached)

    def test_mixed_hit_miss_preserves_submission_order(self, cache):
        jobs = _jobs()
        run_noc_sweep([jobs[1], jobs[3]], cache=cache)
        outcomes = run_noc_sweep(jobs, cache=cache)
        assert [o.job for o in outcomes] == jobs
        baseline = run_noc_sweep(jobs)
        for base, mixed in zip(baseline, outcomes):
            assert _outcome_fields(base) == _outcome_fields(mixed)


class TestKeying:
    def test_key_is_stable(self, cache):
        job = _jobs(1)[0]
        assert cache.key(job) == cache.key(job)

    @pytest.mark.parametrize(
        "mutate",
        [
            lambda j: dataclasses.replace(j, seed=j.seed + 1),
            lambda j: dataclasses.replace(j, max_cycles=j.max_cycles + 1),
            lambda j: dataclasses.replace(
                j, parallelism=12, traffic=random_traffic(12, 10, seed=9)
            ),
            lambda j: dataclasses.replace(
                j, config=dataclasses.replace(j.config, injection_rate=0.25)
            ),
            lambda j: dataclasses.replace(
                j, config=dataclasses.replace(j.config, fifo_capacity=3)
            ),
            lambda j: dataclasses.replace(
                j, config=j.config.with_routing(RoutingAlgorithm.ASP_FT)
            ),
            lambda j: dataclasses.replace(
                j, config=dataclasses.replace(j.config, route_local=True)
            ),
            lambda j: dataclasses.replace(j, traffic=random_traffic(j.parallelism, 10, seed=77)),
        ],
    )
    def test_any_field_change_changes_key(self, cache, mutate):
        job = _jobs(1)[0]
        assert cache.key(mutate(job)) != cache.key(job)

    def test_code_version_invalidates(self, tmp_path, cache):
        job = _jobs(1)[0]
        run_noc_sweep([job], cache=cache)
        future = NocSweepCache(
            cache.directory, code_version=SWEEP_CACHE_CODE_VERSION + 1
        )
        assert future.get(job) is None
        assert future.misses == 1


class TestCorruptEntries:
    def _populate_one(self, cache):
        job = _jobs(1)[0]
        run_noc_sweep([job], cache=cache)
        (path,) = list(cache.directory.glob("*.json"))
        return job, path

    @pytest.mark.parametrize(
        "garbage",
        [b"not json at all {{{", b"", json.dumps({"schema": "wrong"}).encode()],
        ids=["malformed", "empty", "missing-keys"],
    )
    def test_corrupt_file_falls_back_to_simulation(self, cache, garbage):
        job, path = self._populate_one(cache)
        path.write_bytes(garbage)
        outcomes = run_noc_sweep([job], cache=cache)
        assert cache.hits == 0
        baseline = run_noc_sweep([job])
        assert _outcome_fields(outcomes[0]) == _outcome_fields(baseline[0])
        # The re-simulation rewrites a good entry.
        assert cache.get(job) is not None

    def test_missing_directory_created(self, tmp_path):
        nested = tmp_path / "a" / "b" / "cache"
        cache = NocSweepCache(nested)
        assert nested.is_dir()
        assert len(cache) == 0


class TestDesignFlowIntegration:
    @pytest.fixture(scope="class")
    def code(self):
        return wimax_ldpc_code(576, "1/2")

    def test_sweep_ldpc_uses_cache(self, tmp_path, code):
        explorer = DesignSpaceExplorer(DecoderSpec(mapping_attempts=1), seed=0)
        cache = NocSweepCache(tmp_path / "flow-cache")
        cold = explorer.sweep_ldpc(
            code, [("generalized-kautz", 3)], [8],
            routing_algorithms=[RoutingAlgorithm.SSP_FL], cache=cache,
        )
        assert cache.misses > 0 and cache.hits == 0
        warm = explorer.sweep_ldpc(
            code, [("generalized-kautz", 3)], [8],
            routing_algorithms=[RoutingAlgorithm.SSP_FL], cache=cache,
        )
        assert cache.hits == cache.misses
        assert [p.ncycles for p in warm] == [p.ncycles for p in cold]

    def test_explore_screened_with_cache(self, tmp_path, code):
        explorer = DesignSpaceExplorer(DecoderSpec(mapping_attempts=1), seed=0)
        cache = NocSweepCache(tmp_path / "explore-cache")
        first = explorer.explore(
            code, [("generalized-kautz", 3), ("spidergon", 3)], [8, 16],
            screen="analytical", confirm_top=6, cache=cache,
        )
        cold_misses = cache.misses
        assert cold_misses == first.n_simulated
        second = explorer.explore(
            code, [("generalized-kautz", 3), ("spidergon", 3)], [8, 16],
            screen="analytical", confirm_top=6, cache=cache,
        )
        assert cache.hits == cold_misses
        assert cache.misses == cold_misses
        assert second.winners.keys() == first.winners.keys()
        for objective in first.winners:
            assert (
                first.winners[objective].ncycles
                == second.winners[objective].ncycles
            )

"""Unit tests for the NoC configuration, buffering, traffic and cycle-accurate simulator."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ConfigurationError, MappingError, SimulationError
from repro.noc import (
    CollisionPolicy,
    Message,
    MessageFifo,
    NocConfiguration,
    NocSimulator,
    NodeArchitecture,
    NodeTraffic,
    RoutingAlgorithm,
    TrafficPattern,
    build_routing_tables,
    build_topology,
    generalized_kautz,
    ring,
)
from repro.noc.message import MessageStatistics
from repro.noc.traffic import traffic_from_permutation


class TestConfiguration:
    def test_defaults_match_paper_table1_settings(self):
        config = NocConfiguration()
        assert config.injection_rate == 0.5
        assert config.route_local is False
        assert config.collision_policy is CollisionPolicy.SCM
        assert config.routing_algorithm is RoutingAlgorithm.SSP_FL

    def test_header_bits_pp_vs_ap(self):
        pp = NocConfiguration(node_architecture=NodeArchitecture.PP)
        ap = NocConfiguration(node_architecture=NodeArchitecture.AP)
        assert pp.header_bits(22) == 5
        assert ap.header_bits(22) == 0

    def test_flit_bits_include_location_only_for_pp(self):
        pp = NocConfiguration(node_architecture=NodeArchitecture.PP)
        ap = NocConfiguration(node_architecture=NodeArchitecture.AP)
        assert pp.flit_bits(22) == pp.payload_bits + 5 + pp.location_bits
        assert ap.flit_bits(22) == ap.payload_bits

    def test_with_routing_pairs_architecture(self):
        config = NocConfiguration()
        asp = config.with_routing(RoutingAlgorithm.ASP_FT)
        assert asp.node_architecture is NodeArchitecture.AP
        back = asp.with_routing(RoutingAlgorithm.SSP_RR)
        assert back.node_architecture is NodeArchitecture.PP

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ConfigurationError):
            NocConfiguration(injection_rate=0.0)
        with pytest.raises(ConfigurationError):
            NocConfiguration(injection_rate=1.5)
        with pytest.raises(ConfigurationError):
            NocConfiguration(payload_bits=0)
        with pytest.raises(ConfigurationError):
            NocConfiguration(fifo_capacity=0)

    def test_describe_mentions_key_parameters(self):
        text = NocConfiguration().describe()
        assert "SSP-FL" in text and "R=0.5" in text


class TestMessageAndFifo:
    def test_message_latency(self):
        message = Message(identifier=0, source=0, destination=1, injection_cycle=3)
        assert not message.delivered
        assert message.latency == -1
        message.delivery_cycle = 10
        assert message.delivered
        assert message.latency == 7

    def test_message_is_local(self):
        assert Message(0, 2, 2).is_local()
        assert not Message(0, 2, 3).is_local()

    def test_statistics_aggregation(self):
        stats = MessageStatistics()
        for latency in (2, 4, 6):
            message = Message(0, 0, 1, injection_cycle=0, delivery_cycle=latency, hops=2)
            stats.record(message)
        assert stats.count == 3
        assert stats.mean_latency == pytest.approx(4.0)
        assert stats.max_latency == 6
        assert stats.latency_percentile(50) == 4

    def test_statistics_ignore_undelivered(self):
        stats = MessageStatistics()
        stats.record(Message(0, 0, 1))
        assert stats.count == 0

    def test_fifo_push_pop_order(self):
        fifo = MessageFifo(capacity=4)
        for i in range(3):
            fifo.push(Message(i, 0, 1))
        assert fifo.pop().identifier == 0
        assert fifo.head().identifier == 1
        assert len(fifo) == 2

    def test_fifo_tracks_max_occupancy(self):
        fifo = MessageFifo(capacity=4)
        for i in range(3):
            fifo.push(Message(i, 0, 1))
        fifo.pop()
        assert fifo.max_occupancy == 3
        assert fifo.total_pushes == 3

    def test_fifo_overflow_raises(self):
        fifo = MessageFifo(capacity=1)
        fifo.push(Message(0, 0, 1))
        assert fifo.is_full()
        with pytest.raises(SimulationError):
            fifo.push(Message(1, 0, 1))

    def test_fifo_empty_pop_raises(self):
        with pytest.raises(SimulationError):
            MessageFifo(capacity=1).pop()

    def test_fifo_rejects_bad_capacity(self):
        with pytest.raises(SimulationError):
            MessageFifo(capacity=0)


class TestTrafficPattern:
    def _uniform_traffic(self, n_nodes=4, per_node=3):
        per = []
        for node in range(n_nodes):
            destinations = tuple((node + 1 + i) % n_nodes for i in range(per_node))
            per.append(NodeTraffic(node=node, destinations=destinations,
                                   memory_locations=tuple(range(per_node))))
        return TrafficPattern(n_nodes=n_nodes, per_node=tuple(per), label="uniform")

    def test_counts(self):
        traffic = self._uniform_traffic()
        assert traffic.total_messages == 12
        assert traffic.local_messages == 0
        assert traffic.network_messages == 12

    def test_local_message_counting(self):
        per = (
            NodeTraffic(node=0, destinations=(0, 1), memory_locations=(0, 0)),
            NodeTraffic(node=1, destinations=(1,), memory_locations=(0,)),
        )
        traffic = TrafficPattern(n_nodes=2, per_node=per)
        assert traffic.local_messages == 2
        assert traffic.network_messages == 1

    def test_destination_histogram(self):
        traffic = self._uniform_traffic(n_nodes=3, per_node=2)
        assert traffic.destination_histogram().sum() == traffic.total_messages

    def test_load_imbalance_of_balanced_traffic(self):
        assert self._uniform_traffic().load_imbalance() == pytest.approx(1.0)

    def test_validation_errors(self):
        with pytest.raises(MappingError):
            NodeTraffic(node=0, destinations=(1,), memory_locations=())
        with pytest.raises(MappingError):
            TrafficPattern(
                n_nodes=2,
                per_node=(
                    NodeTraffic(node=0, destinations=(5,), memory_locations=(0,)),
                    NodeTraffic(node=1, destinations=(), memory_locations=()),
                ),
            )
        with pytest.raises(MappingError):
            TrafficPattern(
                n_nodes=2,
                per_node=(NodeTraffic(node=1, destinations=(), memory_locations=()),) * 2,
            )

    def test_traffic_from_permutation(self):
        permutation = np.array([2, 3, 0, 1])
        owner = np.array([0, 0, 1, 1])
        traffic = traffic_from_permutation(permutation, owner, n_nodes=2)
        assert traffic.total_messages == 4
        # Position 0 (PE 0) sends to position 2's owner (PE 1), etc.
        assert traffic.per_node[0].destinations == (1, 1)
        assert traffic.per_node[1].destinations == (0, 0)
        assert traffic.local_messages == 0

    def test_traffic_from_permutation_validates_shapes(self):
        with pytest.raises(MappingError):
            traffic_from_permutation(np.array([0, 1]), np.array([0]), 2)
        with pytest.raises(MappingError):
            traffic_from_permutation(np.array([0, 1]), np.array([0, 5]), 2)


def _all_to_next_traffic(n_nodes: int, messages_per_node: int) -> TrafficPattern:
    """Every node sends ``messages_per_node`` messages to its successor node."""
    per = []
    for node in range(n_nodes):
        dest = (node + 1) % n_nodes
        per.append(
            NodeTraffic(
                node=node,
                destinations=(dest,) * messages_per_node,
                memory_locations=tuple(range(messages_per_node)),
            )
        )
    return TrafficPattern(n_nodes=n_nodes, per_node=tuple(per), label="all-to-next")


def _random_traffic(n_nodes: int, messages_per_node: int, seed: int = 0) -> TrafficPattern:
    rng = np.random.default_rng(seed)
    per = []
    for node in range(n_nodes):
        destinations = tuple(
            int(d) for d in rng.integers(0, n_nodes, messages_per_node)
        )
        per.append(
            NodeTraffic(
                node=node,
                destinations=destinations,
                memory_locations=tuple(range(messages_per_node)),
            )
        )
    return TrafficPattern(n_nodes=n_nodes, per_node=tuple(per), label="random")


class TestSimulator:
    def test_all_messages_delivered(self, small_kautz_topology, small_kautz_routing):
        traffic = _random_traffic(8, 20)
        simulator = NocSimulator(
            small_kautz_topology, NocConfiguration(), routing_tables=small_kautz_routing
        )
        result = simulator.run(traffic)
        assert result.all_delivered
        assert result.delivered_messages == traffic.total_messages

    def test_injection_rate_lower_bounds_cycle_count(self, small_kautz_topology):
        traffic = _all_to_next_traffic(8, 30)
        config = NocConfiguration(injection_rate=0.5)
        result = NocSimulator(small_kautz_topology, config).run(traffic)
        # 30 network messages at R=0.5 need at least 60 injection cycles.
        assert result.ncycles >= 60

    def test_higher_injection_rate_is_faster(self, small_kautz_topology):
        traffic = _all_to_next_traffic(8, 30)
        slow = NocSimulator(small_kautz_topology, NocConfiguration(injection_rate=0.25)).run(traffic)
        fast = NocSimulator(small_kautz_topology, NocConfiguration(injection_rate=1.0)).run(traffic)
        assert fast.ncycles < slow.ncycles

    def test_local_messages_bypass_network_when_rl0(self, small_kautz_topology):
        per = tuple(
            NodeTraffic(node=n, destinations=(n,) * 10, memory_locations=tuple(range(10)))
            for n in range(8)
        )
        traffic = TrafficPattern(n_nodes=8, per_node=per, label="all-local")
        result = NocSimulator(small_kautz_topology, NocConfiguration(route_local=False)).run(traffic)
        assert result.local_bypassed == 80
        assert result.statistics.total_hops == 0
        assert result.ncycles <= 2

    def test_local_messages_routed_when_rl1(self, small_kautz_topology):
        per = tuple(
            NodeTraffic(node=n, destinations=(n,) * 4, memory_locations=tuple(range(4)))
            for n in range(8)
        )
        traffic = TrafficPattern(n_nodes=8, per_node=per, label="all-local")
        result = NocSimulator(small_kautz_topology, NocConfiguration(route_local=True)).run(traffic)
        assert result.local_bypassed == 0
        assert result.all_delivered
        assert result.ncycles > 2

    @pytest.mark.parametrize("algorithm", list(RoutingAlgorithm))
    def test_every_routing_algorithm_delivers(self, small_kautz_topology, algorithm):
        traffic = _random_traffic(8, 25, seed=3)
        config = NocConfiguration().with_routing(algorithm)
        result = NocSimulator(small_kautz_topology, config).run(traffic)
        assert result.all_delivered

    @pytest.mark.parametrize("policy", list(CollisionPolicy))
    def test_collision_policies_deliver(self, small_kautz_topology, policy):
        traffic = _random_traffic(8, 25, seed=4)
        config = NocConfiguration(collision_policy=policy)
        result = NocSimulator(small_kautz_topology, config).run(traffic)
        assert result.all_delivered

    def test_scm_can_misroute_under_hotspot(self):
        # All nodes hammer node 0 so output-port collisions are guaranteed.
        topology = generalized_kautz(8, 2)
        per = tuple(
            NodeTraffic(node=n, destinations=(0,) * 15, memory_locations=tuple(range(15)))
            for n in range(8)
        )
        traffic = TrafficPattern(n_nodes=8, per_node=per, label="hotspot")
        scm = NocSimulator(topology, NocConfiguration(collision_policy=CollisionPolicy.SCM)).run(
            traffic
        )
        dcm = NocSimulator(topology, NocConfiguration(collision_policy=CollisionPolicy.DCM)).run(
            traffic
        )
        assert scm.all_delivered and dcm.all_delivered
        assert scm.statistics.misrouted >= dcm.statistics.misrouted

    def test_mean_latency_at_least_mean_hops(self, small_kautz_topology):
        traffic = _random_traffic(8, 20, seed=5)
        result = NocSimulator(small_kautz_topology, NocConfiguration()).run(traffic)
        assert result.statistics.mean_latency >= result.statistics.mean_hops

    def test_fifo_occupancy_reported(self, small_kautz_topology):
        traffic = _random_traffic(8, 40, seed=6)
        result = NocSimulator(small_kautz_topology, NocConfiguration()).run(traffic)
        assert result.max_fifo_occupancy >= 1
        assert len(result.per_node_max_fifo) == 8

    def test_link_utilization_in_unit_range(self, small_kautz_topology):
        traffic = _random_traffic(8, 20, seed=7)
        result = NocSimulator(small_kautz_topology, NocConfiguration()).run(traffic)
        assert 0.0 < result.link_utilization <= 1.0

    def test_deterministic_given_seed(self, small_kautz_topology):
        traffic = _random_traffic(8, 25, seed=8)
        first = NocSimulator(small_kautz_topology, NocConfiguration(), seed=1).run(traffic)
        second = NocSimulator(small_kautz_topology, NocConfiguration(), seed=1).run(traffic)
        assert first.ncycles == second.ncycles
        assert first.statistics.total_hops == second.statistics.total_hops

    def test_ring_slower_than_kautz_for_random_traffic(self):
        traffic = _random_traffic(16, 30, seed=9)
        config = NocConfiguration(injection_rate=1.0)
        ring_result = NocSimulator(ring(16), config).run(traffic)
        kautz_result = NocSimulator(generalized_kautz(16, 3), config).run(traffic)
        assert kautz_result.ncycles <= ring_result.ncycles

    def test_node_count_mismatch_rejected(self, small_kautz_topology):
        traffic = _random_traffic(4, 5)
        with pytest.raises(SimulationError):
            NocSimulator(small_kautz_topology, NocConfiguration()).run(traffic)

    def test_max_cycles_guard(self, small_kautz_topology):
        traffic = _random_traffic(8, 50, seed=10)
        simulator = NocSimulator(
            small_kautz_topology, NocConfiguration(), max_cycles=3
        )
        with pytest.raises(SimulationError):
            simulator.run(traffic)

    def test_foreign_routing_tables_rejected(self, small_kautz_topology):
        other_tables = build_routing_tables(build_topology("generalized-kautz", 8, 3))
        with pytest.raises(SimulationError):
            NocSimulator(small_kautz_topology, NocConfiguration(), routing_tables=other_tables)

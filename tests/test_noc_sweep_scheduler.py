"""Sweep-scheduler coverage: grouping, identity, seeds, process parity.

:func:`repro.noc.sweep.run_noc_sweep` groups jobs by (graph, configuration),
dispatches groups to the job-batched kernel and returns outcomes that carry
their jobs.  These tests pin the scheduler-level contracts: grouping across
mixed families/configurations is correct, engine reuse is seed-independent,
``parallel="process"`` is bit-identical to the serial path, and topology
caches are shared across sweeps.
"""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.noc import (
    BatchNocSimulator,
    CollisionPolicy,
    NocConfiguration,
    NocSweepJob,
    NocSweepOutcome,
    RoutingAlgorithm,
    build_routing_tables,
    build_topology,
    run_noc_sweep,
)
from repro.noc.traffic import random_traffic, random_traffic_streams

_GRAPHS: dict = {}


def _graph(family, parallelism, degree):
    key = (family, parallelism, degree)
    if key not in _GRAPHS:
        topology = build_topology(family, parallelism, degree)
        _GRAPHS[key] = (topology, build_routing_tables(topology))
    return _GRAPHS[key]


def _signature(result):
    return (
        result.ncycles,
        result.delivered_messages,
        result.local_bypassed,
        tuple(result.per_node_max_fifo),
        result.max_injection_occupancy,
        result.statistics.total_hops,
        result.statistics.total_latency,
        result.statistics.max_latency,
        result.statistics.misrouted,
        tuple(result.statistics._latencies),
    )


def _fresh_engine_signature(job: NocSweepJob):
    topology, tables = _graph(job.family, job.parallelism, job.degree)
    engine = BatchNocSimulator(
        topology, job.config, routing_tables=tables, seed=job.seed,
        max_cycles=job.max_cycles,
    )
    return _signature(engine.run(job.traffic))


def _mixed_jobs() -> list[NocSweepJob]:
    """Mixed families, configurations and seeds: several non-trivial groups."""
    jobs: list[NocSweepJob] = []
    for family, parallelism, degree, messages in [
        ("generalized-kautz", 8, 3, 18),
        ("ring", 6, None, 12),
    ]:
        for algorithm in (RoutingAlgorithm.SSP_FL, RoutingAlgorithm.ASP_FT):
            config = NocConfiguration(
                collision_policy=CollisionPolicy.SCM
            ).with_routing(algorithm)
            streams = random_traffic_streams(parallelism, messages, seed=40, count=3)
            jobs.extend(
                NocSweepJob(
                    family=family,
                    parallelism=parallelism,
                    degree=degree,
                    config=config,
                    traffic=traffic,
                    seed=17 + stream,
                )
                for stream, traffic in enumerate(streams)
            )
    return jobs


class TestGrouping:
    def test_mixed_groups_match_fresh_engines(self):
        """Every job of every group must equal a freshly seeded solo engine."""
        jobs = _mixed_jobs()
        outcomes = run_noc_sweep(jobs)
        assert [outcome.job for outcome in outcomes] == jobs
        for outcome in outcomes:
            assert isinstance(outcome, NocSweepOutcome)
            assert _signature(outcome.result) == _fresh_engine_signature(outcome.job)

    def test_outcomes_carry_job_identity(self):
        jobs = _mixed_jobs()
        outcomes = run_noc_sweep(jobs)
        # The attached jobs are the very objects submitted, so callers can key
        # results by job instead of relying on input ordering.
        assert all(outcome.job is job for outcome, job in zip(outcomes, jobs))
        by_job = {id(outcome.job): outcome.result for outcome in outcomes}
        assert len(by_job) == len(jobs)

    def test_interleaved_submission_order(self):
        """Grouping must not depend on jobs of one group being adjacent."""
        a = _mixed_jobs()
        interleaved = a[::2] + a[1::2]
        outcomes = run_noc_sweep(interleaved)
        for outcome in outcomes:
            assert _signature(outcome.result) == _fresh_engine_signature(outcome.job)

    def test_min_batch_routes_small_groups_to_scalar_engine(self):
        jobs = _mixed_jobs()
        batched = run_noc_sweep(jobs)
        scalar_only = run_noc_sweep(jobs, min_batch=10**9)
        for b, s in zip(batched, scalar_only):
            assert _signature(b.result) == _signature(s.result)

    def test_rejects_unknown_parallel_mode(self):
        with pytest.raises(ConfigurationError):
            run_noc_sweep([], parallel="thread")


class TestSeedIndependence:
    def test_same_group_different_seeds_match_fresh_engines(self):
        """Regression for the PR 3 cache-key bug: the first job's seed must
        not leak into engines reused by later same-key jobs."""
        config = NocConfiguration(collision_policy=CollisionPolicy.SCM)
        traffic = random_traffic(8, 25, seed=3)
        jobs = [
            NocSweepJob(
                family="generalized-kautz", parallelism=8, degree=3,
                config=config, traffic=traffic, seed=seed,
            )
            for seed in (123, 456)
        ]
        outcomes = run_noc_sweep(jobs)
        for outcome in outcomes:
            assert _signature(outcome.result) == _fresh_engine_signature(outcome.job)
        # SCM deflections make different seeds observable: the two jobs must
        # genuinely differ, or this test would not witness seed handling.
        assert _signature(outcomes[0].result) != _signature(outcomes[1].result)

    def test_seed_order_within_group_is_irrelevant(self):
        config = NocConfiguration(collision_policy=CollisionPolicy.SCM)
        traffic = random_traffic(8, 25, seed=3)

        def job(seed):
            return NocSweepJob(
                family="generalized-kautz", parallelism=8, degree=3,
                config=config, traffic=traffic, seed=seed,
            )

        forward = run_noc_sweep([job(1), job(2)])
        backward = run_noc_sweep([job(2), job(1)])
        assert _signature(forward[0].result) == _signature(backward[1].result)
        assert _signature(forward[1].result) == _signature(backward[0].result)


class TestProcessParallel:
    def test_process_mode_bit_identical_to_serial(self, monkeypatch):
        import repro.noc.sweep as sweep_mod

        # Force the pool even though this sweep is small enough that the
        # scheduler would otherwise (correctly) dispatch it serially.
        monkeypatch.setattr(sweep_mod, "_PROCESS_MIN_SERIAL_S", 0.0)
        jobs = _mixed_jobs()
        serial = run_noc_sweep(jobs)
        parallel = run_noc_sweep(jobs, parallel="process", max_workers=2)
        assert [outcome.job for outcome in parallel] == jobs
        for s, p in zip(serial, parallel):
            assert _signature(s.result) == _signature(p.result)

    def test_single_worker_never_spins_up_a_pool(self, monkeypatch):
        """workers=1 must dispatch serially with no executor at all."""
        import repro.noc.sweep as sweep_mod

        def boom(*args, **kwargs):
            raise AssertionError("ProcessPoolExecutor must not be constructed")

        monkeypatch.setattr(sweep_mod, "ProcessPoolExecutor", boom)
        jobs = _mixed_jobs()
        outcomes = run_noc_sweep(jobs, parallel="process", max_workers=1)
        for outcome in outcomes:
            assert _signature(outcome.result) == _fresh_engine_signature(outcome.job)

    def test_small_sweep_projected_serial_skips_the_pool(self, monkeypatch):
        """A sweep projected to finish before the pool spins up runs serially
        even with several workers available."""
        import repro.noc.sweep as sweep_mod

        def boom(*args, **kwargs):
            raise AssertionError("ProcessPoolExecutor must not be constructed")

        monkeypatch.setattr(sweep_mod, "ProcessPoolExecutor", boom)
        jobs = _mixed_jobs()  # a couple dozen tiny sims: far below the floor
        outcomes = run_noc_sweep(jobs, parallel="process", max_workers=4)
        for outcome in outcomes:
            assert _signature(outcome.result) == _fresh_engine_signature(outcome.job)

    def test_oversized_groups_shard_into_chunks(self, monkeypatch):
        """More workers than groups: groups split into worker-sized chunks,
        results stay bit-identical."""
        import repro.noc.sweep as sweep_mod

        monkeypatch.setattr(sweep_mod, "_PROCESS_MIN_SERIAL_S", 0.0)
        config = NocConfiguration(collision_policy=CollisionPolicy.SCM)
        streams = random_traffic_streams(8, 10, seed=90, count=12)
        jobs = [
            NocSweepJob(
                family="generalized-kautz", parallelism=8, degree=3,
                config=config, traffic=traffic, seed=stream,
            )
            for stream, traffic in enumerate(streams)
        ]
        key = ("k", 8, 3, config, 200_000)
        chunks = sweep_mod._shard_groups(
            {key: list(range(12))},
            {key: True},
            {key: 2},
            total_jobs=12,
            workers=4,
        )
        assert len(chunks) >= 4  # one group spread over the pool
        assert sorted(i for _, idx, _ in chunks for i in idx) == list(range(12))
        # every chunk at or above the batch floor keeps the batched decision
        assert all(batched == (len(idx) >= 2) for _, idx, batched in chunks)
        # a batched group is never split below its floor
        floored = sweep_mod._shard_groups(
            {key: list(range(12))}, {key: True}, {key: 6}, total_jobs=12, workers=12
        )
        assert all(len(idx) >= 6 for _, idx, _ in floored)
        serial = run_noc_sweep(jobs)
        parallel = run_noc_sweep(jobs, parallel="process", max_workers=4)
        for s, p in zip(serial, parallel):
            assert _signature(s.result) == _signature(p.result)


def _affine_samples(fixed_s: float, point_s: float) -> tuple[tuple[int, float], ...]:
    """Synthetic batched-cost samples lying on ``fixed + point * J``."""
    return tuple((j, fixed_s + point_s * j) for j in (8, 24, 128))


class TestAdaptiveDispatch:
    def test_cost_model_crossover_math(self):
        from repro.noc import SweepCostModel

        model = SweepCostModel(
            scalar_point_s={p: 1e-3 for p in CollisionPolicy},
            batch_samples={
                CollisionPolicy.DCM: _affine_samples(10e-3, 0.3e-3),
                # slower than scalar per point: never batches
                CollisionPolicy.SCM: _affine_samples(10e-3, 2e-3),
            },
        )
        # crossover with the DCM 0.9 win margin: 10 / (0.9 - 0.3) = 16.7 ->
        # the first group size whose projected batched cost clearly wins is 17
        assert model.min_batch(CollisionPolicy.DCM) == 17
        assert model.min_batch(CollisionPolicy.SCM) == 1 << 30

    def test_cost_model_sees_the_vectorized_kink(self):
        """A cost curve that only wins past the resume threshold must yield a
        crossover in the last probe segment, not 'never'."""
        from repro.noc import SweepCostModel

        model = SweepCostModel(
            scalar_point_s={p: 1e-3 for p in CollisionPolicy},
            batch_samples={
                # flat-per-point until J=24, then steeply amortizing
                p: ((8, 10e-3), (24, 26e-3), (128, 52e-3))
                for p in CollisionPolicy
            },
        )
        crossover = model.min_batch(CollisionPolicy.SCM)
        assert 24 < crossover < 128
        # and the piecewise projection is what dispatch would compare
        assert model.batch_cost_s(CollisionPolicy.SCM, 128) == pytest.approx(52e-3)
        assert model.batch_cost_s(CollisionPolicy.SCM, 256) == pytest.approx(
            52e-3 + (256 - 128) * (52e-3 - 26e-3) / (128 - 24)
        )

    def test_projected_serial_scales_with_parallelism(self):
        from repro.noc import SweepCostModel

        model = SweepCostModel(
            scalar_point_s={p: 1e-3 for p in CollisionPolicy},
            batch_samples={p: _affine_samples(1e-3, 0.1e-3) for p in CollisionPolicy},
            probe_parallelism=16,
        )
        small = model.projected_serial_s(CollisionPolicy.DCM, 100, 16)
        large = model.projected_serial_s(CollisionPolicy.DCM, 100, 32)
        assert large == pytest.approx(2 * small)
        # the projection takes whichever engine is cheaper for the group
        assert small == pytest.approx(min(100 * 1e-3, 1e-3 + 100 * 0.1e-3))

    def test_adaptive_routes_groups_by_measured_crossover(self, monkeypatch):
        """With a synthetic model, group size decides the engine per policy."""
        import repro.noc.sweep as sweep_mod
        from repro.noc import SweepCostModel

        model = SweepCostModel(
            scalar_point_s={p: 1e-3 for p in CollisionPolicy},
            batch_samples={
                CollisionPolicy.DCM: _affine_samples(8e-3, 0.1e-3),  # crossover ~11
                CollisionPolicy.SCM: _affine_samples(8e-3, 2e-3),  # never batches
            },
        )
        monkeypatch.setattr(
            sweep_mod, "_COST_MODELS", {sweep_mod.resolve(None).key: model}
        )
        built = []
        real_kernel = sweep_mod.BatchedNocKernel

        class SpyKernel(real_kernel):
            def __init__(self, topology, config, **kwargs):
                built.append(config.collision_policy)
                super().__init__(topology, config, **kwargs)

        monkeypatch.setattr(sweep_mod, "BatchedNocKernel", SpyKernel)

        def jobs_for(policy, count):
            config = NocConfiguration(collision_policy=policy)
            streams = random_traffic_streams(8, 10, seed=77, count=count)
            return [
                NocSweepJob(
                    family="generalized-kautz", parallelism=8, degree=3,
                    config=config, traffic=traffic, seed=stream,
                )
                for stream, traffic in enumerate(streams)
            ]

        outcomes = run_noc_sweep(
            jobs_for(CollisionPolicy.DCM, 12) + jobs_for(CollisionPolicy.SCM, 12)
        )
        # DCM group (12 >= 9) batched; SCM group never batches.
        assert built == [CollisionPolicy.DCM]
        for outcome in outcomes:
            assert _signature(outcome.result) == _fresh_engine_signature(outcome.job)

    def test_explicit_min_batch_overrides_the_model(self, monkeypatch):
        import repro.noc.sweep as sweep_mod

        built = []
        real_kernel = sweep_mod.BatchedNocKernel

        class SpyKernel(real_kernel):
            def __init__(self, topology, config, **kwargs):
                built.append(config.collision_policy)
                super().__init__(topology, config, **kwargs)

        monkeypatch.setattr(sweep_mod, "BatchedNocKernel", SpyKernel)
        config = NocConfiguration(collision_policy=CollisionPolicy.SCM)
        streams = random_traffic_streams(8, 10, seed=78, count=3)
        jobs = [
            NocSweepJob(
                family="generalized-kautz", parallelism=8, degree=3,
                config=config, traffic=traffic, seed=stream,
            )
            for stream, traffic in enumerate(streams)
        ]
        run_noc_sweep(jobs, min_batch=2)
        assert built == [CollisionPolicy.SCM]

    def test_rejects_bad_min_batch(self):
        from repro.errors import ConfigurationError as CfgErr

        with pytest.raises(CfgErr):
            run_noc_sweep([], min_batch=0)

    def test_scheduler_cost_model_is_cached(self, monkeypatch):
        import repro.noc.sweep as sweep_mod
        from repro.noc import scheduler_cost_model

        calls = []
        monkeypatch.setattr(sweep_mod, "_COST_MODELS", {})
        real = sweep_mod._calibrate
        monkeypatch.setattr(
            sweep_mod, "_calibrate", lambda: calls.append(1) or real()
        )
        first = scheduler_cost_model()
        second = scheduler_cost_model()
        assert first is second
        assert len(calls) == 1


class TestTopologyCache:
    def test_cache_shared_across_sweeps(self):
        cache: dict = {}
        first = _mixed_jobs()[:3]
        run_noc_sweep(first, topology_cache=cache)
        assert ("generalized-kautz", 8, 3) in cache
        built = cache[("generalized-kautz", 8, 3)][0]
        run_noc_sweep(_mixed_jobs(), topology_cache=cache)
        assert cache[("generalized-kautz", 8, 3)][0] is built
        assert ("ring", 6, None) in cache


class TestEarlyFinish:
    def test_wildly_different_lengths_in_one_group(self):
        config = NocConfiguration()
        jobs = [
            NocSweepJob(
                family="generalized-kautz", parallelism=8, degree=3,
                config=config, traffic=random_traffic(8, messages, seed=80 + messages),
                seed=messages,
            )
            for messages in (0, 1, 40)
        ]
        outcomes = run_noc_sweep(jobs)
        for outcome in outcomes:
            assert _signature(outcome.result) == _fresh_engine_signature(outcome.job)
        ncycles = [outcome.result.ncycles for outcome in outcomes]
        assert ncycles[0] == 0
        assert ncycles[1] < ncycles[2]

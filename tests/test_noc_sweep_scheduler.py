"""Sweep-scheduler coverage: grouping, identity, seeds, process parity.

:func:`repro.noc.sweep.run_noc_sweep` groups jobs by (graph, configuration),
dispatches groups to the job-batched kernel and returns outcomes that carry
their jobs.  These tests pin the scheduler-level contracts: grouping across
mixed families/configurations is correct, engine reuse is seed-independent,
``parallel="process"`` is bit-identical to the serial path, and topology
caches are shared across sweeps.
"""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.noc import (
    BatchNocSimulator,
    CollisionPolicy,
    NocConfiguration,
    NocSweepJob,
    NocSweepOutcome,
    RoutingAlgorithm,
    build_routing_tables,
    build_topology,
    run_noc_sweep,
)
from repro.noc.traffic import random_traffic, random_traffic_streams

_GRAPHS: dict = {}


def _graph(family, parallelism, degree):
    key = (family, parallelism, degree)
    if key not in _GRAPHS:
        topology = build_topology(family, parallelism, degree)
        _GRAPHS[key] = (topology, build_routing_tables(topology))
    return _GRAPHS[key]


def _signature(result):
    return (
        result.ncycles,
        result.delivered_messages,
        result.local_bypassed,
        tuple(result.per_node_max_fifo),
        result.max_injection_occupancy,
        result.statistics.total_hops,
        result.statistics.total_latency,
        result.statistics.max_latency,
        result.statistics.misrouted,
        tuple(result.statistics._latencies),
    )


def _fresh_engine_signature(job: NocSweepJob):
    topology, tables = _graph(job.family, job.parallelism, job.degree)
    engine = BatchNocSimulator(
        topology, job.config, routing_tables=tables, seed=job.seed,
        max_cycles=job.max_cycles,
    )
    return _signature(engine.run(job.traffic))


def _mixed_jobs() -> list[NocSweepJob]:
    """Mixed families, configurations and seeds: several non-trivial groups."""
    jobs: list[NocSweepJob] = []
    for family, parallelism, degree, messages in [
        ("generalized-kautz", 8, 3, 18),
        ("ring", 6, None, 12),
    ]:
        for algorithm in (RoutingAlgorithm.SSP_FL, RoutingAlgorithm.ASP_FT):
            config = NocConfiguration(
                collision_policy=CollisionPolicy.SCM
            ).with_routing(algorithm)
            streams = random_traffic_streams(parallelism, messages, seed=40, count=3)
            jobs.extend(
                NocSweepJob(
                    family=family,
                    parallelism=parallelism,
                    degree=degree,
                    config=config,
                    traffic=traffic,
                    seed=17 + stream,
                )
                for stream, traffic in enumerate(streams)
            )
    return jobs


class TestGrouping:
    def test_mixed_groups_match_fresh_engines(self):
        """Every job of every group must equal a freshly seeded solo engine."""
        jobs = _mixed_jobs()
        outcomes = run_noc_sweep(jobs)
        assert [outcome.job for outcome in outcomes] == jobs
        for outcome in outcomes:
            assert isinstance(outcome, NocSweepOutcome)
            assert _signature(outcome.result) == _fresh_engine_signature(outcome.job)

    def test_outcomes_carry_job_identity(self):
        jobs = _mixed_jobs()
        outcomes = run_noc_sweep(jobs)
        # The attached jobs are the very objects submitted, so callers can key
        # results by job instead of relying on input ordering.
        assert all(outcome.job is job for outcome, job in zip(outcomes, jobs))
        by_job = {id(outcome.job): outcome.result for outcome in outcomes}
        assert len(by_job) == len(jobs)

    def test_interleaved_submission_order(self):
        """Grouping must not depend on jobs of one group being adjacent."""
        a = _mixed_jobs()
        interleaved = a[::2] + a[1::2]
        outcomes = run_noc_sweep(interleaved)
        for outcome in outcomes:
            assert _signature(outcome.result) == _fresh_engine_signature(outcome.job)

    def test_min_batch_routes_small_groups_to_scalar_engine(self):
        jobs = _mixed_jobs()
        batched = run_noc_sweep(jobs)
        scalar_only = run_noc_sweep(jobs, min_batch=10**9)
        for b, s in zip(batched, scalar_only):
            assert _signature(b.result) == _signature(s.result)

    def test_rejects_unknown_parallel_mode(self):
        with pytest.raises(ConfigurationError):
            run_noc_sweep([], parallel="thread")


class TestSeedIndependence:
    def test_same_group_different_seeds_match_fresh_engines(self):
        """Regression for the PR 3 cache-key bug: the first job's seed must
        not leak into engines reused by later same-key jobs."""
        config = NocConfiguration(collision_policy=CollisionPolicy.SCM)
        traffic = random_traffic(8, 25, seed=3)
        jobs = [
            NocSweepJob(
                family="generalized-kautz", parallelism=8, degree=3,
                config=config, traffic=traffic, seed=seed,
            )
            for seed in (123, 456)
        ]
        outcomes = run_noc_sweep(jobs)
        for outcome in outcomes:
            assert _signature(outcome.result) == _fresh_engine_signature(outcome.job)
        # SCM deflections make different seeds observable: the two jobs must
        # genuinely differ, or this test would not witness seed handling.
        assert _signature(outcomes[0].result) != _signature(outcomes[1].result)

    def test_seed_order_within_group_is_irrelevant(self):
        config = NocConfiguration(collision_policy=CollisionPolicy.SCM)
        traffic = random_traffic(8, 25, seed=3)

        def job(seed):
            return NocSweepJob(
                family="generalized-kautz", parallelism=8, degree=3,
                config=config, traffic=traffic, seed=seed,
            )

        forward = run_noc_sweep([job(1), job(2)])
        backward = run_noc_sweep([job(2), job(1)])
        assert _signature(forward[0].result) == _signature(backward[1].result)
        assert _signature(forward[1].result) == _signature(backward[0].result)


class TestProcessParallel:
    def test_process_mode_bit_identical_to_serial(self):
        jobs = _mixed_jobs()
        serial = run_noc_sweep(jobs)
        parallel = run_noc_sweep(jobs, parallel="process", max_workers=2)
        assert [outcome.job for outcome in parallel] == jobs
        for s, p in zip(serial, parallel):
            assert _signature(s.result) == _signature(p.result)


class TestTopologyCache:
    def test_cache_shared_across_sweeps(self):
        cache: dict = {}
        first = _mixed_jobs()[:3]
        run_noc_sweep(first, topology_cache=cache)
        assert ("generalized-kautz", 8, 3) in cache
        built = cache[("generalized-kautz", 8, 3)][0]
        run_noc_sweep(_mixed_jobs(), topology_cache=cache)
        assert cache[("generalized-kautz", 8, 3)][0] is built
        assert ("ring", 6, None) in cache


class TestEarlyFinish:
    def test_wildly_different_lengths_in_one_group(self):
        config = NocConfiguration()
        jobs = [
            NocSweepJob(
                family="generalized-kautz", parallelism=8, degree=3,
                config=config, traffic=random_traffic(8, messages, seed=80 + messages),
                seed=messages,
            )
            for messages in (0, 1, 40)
        ]
        outcomes = run_noc_sweep(jobs)
        for outcome in outcomes:
            assert _signature(outcome.result) == _fresh_engine_signature(outcome.job)
        ncycles = [outcome.result.ncycles for outcome in outcomes]
        assert ncycles[0] == 0
        assert ncycles[1] < ncycles[2]

"""Shared fixtures for the test suite.

Expensive objects (expanded WiMAX codes, mappings, routing tables) are built
once per session; tests use the smallest code sizes that still exercise the
behaviour under test so the whole suite stays fast.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.channel import AWGNChannel, BPSKModulator, ebn0_to_noise_sigma
from repro.core import DecoderSpec, NocDecoderArchitecture
from repro.ldpc import wimax_ldpc_code
from repro.noc import NocConfiguration, build_topology, build_routing_tables
from repro.turbo import TurboEncoder


@pytest.fixture(scope="session")
def small_ldpc_code():
    """Smallest WiMAX rate-1/2 code (n=576, z=24)."""
    return wimax_ldpc_code(576, "1/2")


@pytest.fixture(scope="session")
def small_high_rate_code():
    """Smallest WiMAX rate-5/6 code (n=576)."""
    return wimax_ldpc_code(576, "5/6")


@pytest.fixture(scope="session")
def worst_case_ldpc_code():
    """The paper's worst-case code (n=2304, rate 1/2)."""
    return wimax_ldpc_code(2304, "1/2")


@pytest.fixture(scope="session")
def small_turbo_encoder():
    """Small WiMAX CTC encoder (48 couples, rate 1/2)."""
    return TurboEncoder(n_couples=48, rate="1/2")


@pytest.fixture(scope="session")
def small_kautz_topology():
    """Degree-3 generalized Kautz topology with 8 nodes."""
    return build_topology("generalized-kautz", 8, 3)


@pytest.fixture(scope="session")
def small_kautz_routing(small_kautz_topology):
    """Routing tables for the small Kautz topology."""
    return build_routing_tables(small_kautz_topology)


@pytest.fixture()
def default_noc_config():
    """Default NoC configuration (SSP-FL on PP, R=0.5, RL=0, SCM)."""
    return NocConfiguration()


@pytest.fixture(scope="session")
def small_decoder_architecture():
    """A small decoder instance (P=8 Kautz D=3) for system-level tests."""
    return NocDecoderArchitecture(DecoderSpec(parallelism=8, degree=3, mapping_attempts=2))


@pytest.fixture()
def rng():
    """Deterministic RNG for test data."""
    return np.random.default_rng(12345)


def make_ldpc_llrs(code, ebn0_db: float, rng: np.random.Generator) -> tuple[np.ndarray, np.ndarray]:
    """Encode a random frame and return (codeword, channel LLRs) at the given Eb/N0."""
    info = rng.integers(0, 2, code.k)
    codeword = code.encode(info)
    modulator = BPSKModulator()
    sigma = ebn0_to_noise_sigma(ebn0_db, code.rate)
    channel = AWGNChannel(sigma, rng)
    received = channel.transmit(modulator.modulate(codeword))
    llrs = modulator.demodulate_llr(received, channel.llr_noise_variance(False))
    return codeword, llrs

"""Unit tests for the mapping substrate (partitioner, LDPC/turbo mappings, quality)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import MappingError, ReproError
from repro.ldpc import TannerGraph
from repro.mapping import (
    evaluate_traffic_quality,
    map_ldpc_code,
    map_turbo_code,
    partition_graph,
)
from repro.mapping.ldpc_mapping import build_equivalent_interleaver
from repro.mapping.quality import select_best_mapping
from repro.mapping.turbo_mapping import contiguous_partition


def _grid_graph(rows: int, cols: int) -> tuple[int, dict[tuple[int, int], int]]:
    """Unweighted 2D grid graph, a friendly case for partitioning."""
    edges: dict[tuple[int, int], int] = {}
    for r in range(rows):
        for c in range(cols):
            node = r * cols + c
            if c + 1 < cols:
                edges[(node, node + 1)] = 1
            if r + 1 < rows:
                edges[(node, node + cols)] = 1
    return rows * cols, edges


class TestPartitioner:
    def test_partition_covers_all_vertices(self):
        n, edges = _grid_graph(8, 8)
        result = partition_graph(n, edges, n_parts=4, seed=0)
        assert result.assignment.shape == (n,)
        assert set(np.unique(result.assignment)) == {0, 1, 2, 3}

    def test_partition_is_balanced(self):
        n, edges = _grid_graph(8, 8)
        result = partition_graph(n, edges, n_parts=4, seed=0)
        assert result.part_sizes.sum() == n
        assert result.imbalance <= 1.15

    def test_partition_beats_random_cut_on_grid(self):
        n, edges = _grid_graph(10, 10)
        result = partition_graph(n, edges, n_parts=4, seed=0)
        total_weight = sum(edges.values())
        # A random 4-way split keeps only ~25% of edges internal; the grid is
        # easily partitioned far better than that.
        assert result.cut_weight < 0.5 * total_weight

    def test_cut_weight_matches_assignment(self):
        n, edges = _grid_graph(6, 6)
        result = partition_graph(n, edges, n_parts=3, seed=1)
        recomputed = sum(
            w for (a, b), w in edges.items() if result.assignment[a] != result.assignment[b]
        )
        assert recomputed == result.cut_weight

    def test_vertex_weights_balance_load(self):
        n, edges = _grid_graph(6, 6)
        weights = np.ones(n)
        weights[:6] = 10.0  # one heavy row
        result = partition_graph(n, edges, n_parts=3, seed=0, vertex_weights=weights)
        loads = np.zeros(3)
        for vertex in range(n):
            loads[result.assignment[vertex]] += weights[vertex]
        assert loads.max() <= 1.3 * loads.mean()

    def test_deterministic_for_fixed_seed(self):
        n, edges = _grid_graph(6, 6)
        first = partition_graph(n, edges, n_parts=3, seed=5)
        second = partition_graph(n, edges, n_parts=3, seed=5)
        assert np.array_equal(first.assignment, second.assignment)

    def test_single_part(self):
        n, edges = _grid_graph(4, 4)
        result = partition_graph(n, edges, n_parts=1, seed=0)
        assert result.cut_weight == 0
        assert np.all(result.assignment == 0)

    def test_invalid_arguments(self):
        n, edges = _grid_graph(4, 4)
        with pytest.raises(MappingError):
            partition_graph(n, edges, n_parts=0)
        with pytest.raises(MappingError):
            partition_graph(2, {}, n_parts=4)
        with pytest.raises(MappingError):
            partition_graph(n, edges, n_parts=2, attempts=0)
        with pytest.raises(MappingError):
            partition_graph(n, edges, n_parts=2, vertex_weights=np.zeros(n))
        with pytest.raises(MappingError):
            partition_graph(n, edges, n_parts=2, vertex_weights=np.ones(n + 1))
        with pytest.raises(MappingError):
            partition_graph(3, {(0, 7): 1}, n_parts=2)


class TestLdpcMapping:
    def test_mapping_message_count_equals_edges(self, small_ldpc_code):
        mapping = map_ldpc_code(small_ldpc_code.h, n_nodes=8, seed=0, attempts=2)
        assert mapping.traffic.total_messages == small_ldpc_code.h.n_edges

    def test_every_check_is_assigned(self, small_ldpc_code):
        mapping = map_ldpc_code(small_ldpc_code.h, n_nodes=8, seed=0, attempts=2)
        assert mapping.check_owner.shape == (small_ldpc_code.m,)
        assert mapping.checks_per_node.sum() == small_ldpc_code.m

    def test_locality_beats_random_assignment(self, small_ldpc_code):
        mapping = map_ldpc_code(small_ldpc_code.h, n_nodes=8, seed=0, attempts=2)
        # A random 8-way assignment keeps only ~1/8 = 12.5% of messages local.
        assert mapping.locality > 1.0 / 8

    def test_messages_per_node_balanced(self, small_ldpc_code):
        mapping = map_ldpc_code(small_ldpc_code.h, n_nodes=8, seed=0, attempts=2)
        counts = mapping.traffic.messages_per_node()
        assert counts.max() <= 1.2 * counts.mean()

    def test_each_variable_update_has_one_consumer(self, small_ldpc_code):
        """Per variable of degree d there are exactly d messages (cyclic successor)."""
        h = small_ldpc_code.h
        mapping = map_ldpc_code(h, n_nodes=4, seed=0, attempts=1)
        received = mapping.traffic.destination_histogram()
        # Every edge produces exactly one received message somewhere.
        assert received.sum() == h.n_edges

    def test_memory_locations_unique_per_destination(self, small_ldpc_code):
        mapping = map_ldpc_code(small_ldpc_code.h, n_nodes=4, seed=0, attempts=1)
        slots: dict[int, list[int]] = {node: [] for node in range(4)}
        for node_traffic in mapping.traffic.per_node:
            for dest, slot in zip(node_traffic.destinations, node_traffic.memory_locations):
                slots[dest].append(slot)
        for node, used in slots.items():
            assert len(used) == len(set(used)), f"duplicate memory slot on node {node}"

    def test_equivalent_interleaver_respects_owner(self, small_ldpc_code):
        h = small_ldpc_code.h
        owner = np.arange(h.n_rows) % 4
        traffic = build_equivalent_interleaver(h, owner, 4)
        # Check 0 is owned by PE 0, so PE 0 must emit exactly deg(check 0) +
        # deg(check 4) + ... messages.
        expected = sum(h.row(check).size for check in range(h.n_rows) if owner[check] == 0)
        assert traffic.per_node[0].n_messages == expected

    def test_invalid_owner_rejected(self, small_ldpc_code):
        h = small_ldpc_code.h
        with pytest.raises(MappingError):
            build_equivalent_interleaver(h, np.zeros(h.n_rows + 1, dtype=int), 4)
        with pytest.raises(MappingError):
            build_equivalent_interleaver(h, np.full(h.n_rows, 9), 4)

    def test_more_nodes_than_checks_rejected(self, small_ldpc_code):
        with pytest.raises(MappingError):
            map_ldpc_code(small_ldpc_code.h, n_nodes=small_ldpc_code.m + 1)

    def test_describe_contains_key_figures(self, small_ldpc_code):
        mapping = map_ldpc_code(small_ldpc_code.h, n_nodes=8, seed=0, attempts=1)
        text = mapping.describe()
        assert "P=8" in text and "locality" in text


class TestTurboMapping:
    def test_contiguous_partition_sizes(self):
        owner = contiguous_partition(100, 8)
        sizes = np.bincount(owner, minlength=8)
        assert sizes.sum() == 100
        assert sizes.max() - sizes.min() <= 1

    def test_contiguous_partition_is_monotone(self):
        owner = contiguous_partition(48, 5)
        assert np.all(np.diff(owner) >= 0)

    def test_turbo_mapping_message_counts(self):
        mapping = map_turbo_code(48, 8)
        assert mapping.traffic_forward.total_messages == 48
        assert mapping.traffic_backward.total_messages == 48

    def test_forward_and_backward_are_inverse_flows(self):
        mapping = map_turbo_code(48, 8)
        forward = mapping.traffic_forward.destination_histogram()
        backward_sent = mapping.traffic_backward.messages_per_node()
        # Messages received in the forward phase are produced in the backward phase.
        assert np.array_equal(forward, backward_sent)

    def test_window_size(self):
        mapping = map_turbo_code(2400, 22)
        assert mapping.window_size == int(np.ceil(2400 / 22))

    def test_locality_is_low_for_good_interleaver(self):
        mapping = map_turbo_code(240, 8)
        # The CTC permutation spreads couples across the frame, so locality
        # should be close to the random 1/P baseline.
        assert mapping.locality < 0.3

    def test_invalid_parameters(self):
        with pytest.raises(MappingError):
            contiguous_partition(4, 0)
        with pytest.raises(MappingError):
            contiguous_partition(4, 8)
        with pytest.raises(ReproError):
            map_turbo_code(1000, 8)  # no interleaver parameters for N=1000

    def test_describe(self):
        assert "N=48" in map_turbo_code(48, 4).describe()


class TestMappingQuality:
    def test_quality_metrics(self, small_ldpc_code):
        mapping = map_ldpc_code(small_ldpc_code.h, n_nodes=8, seed=0, attempts=1)
        quality = evaluate_traffic_quality(mapping.traffic)
        assert quality.max_node_messages >= quality.mean_node_messages
        assert 0.0 <= quality.locality <= 1.0
        assert quality.score > 0

    def test_select_best_prefers_shorter_lists(self, small_ldpc_code):
        good = map_ldpc_code(small_ldpc_code.h, n_nodes=8, seed=0, attempts=2)
        # A deliberately bad mapping: an unbalanced random assignment.
        rng = np.random.default_rng(0)
        bad_owner = rng.integers(0, 8, small_ldpc_code.m)
        bad_owner[: small_ldpc_code.m // 4] = 0  # overload PE 0
        bad_traffic = build_equivalent_interleaver(small_ldpc_code.h, bad_owner, 8)
        qualities = [
            evaluate_traffic_quality(bad_traffic),
            evaluate_traffic_quality(good.traffic),
        ]
        assert select_best_mapping(qualities) == 1

    def test_selected_mapping_beats_random_assignment(self, small_ldpc_code):
        graph = TannerGraph(small_ldpc_code.h)
        assert graph.n_check_nodes == small_ldpc_code.m
        good = map_ldpc_code(small_ldpc_code.h, n_nodes=8, seed=0, attempts=2)
        rng = np.random.default_rng(1)
        random_owner = rng.integers(0, 8, small_ldpc_code.m)
        random_traffic = build_equivalent_interleaver(small_ldpc_code.h, random_owner, 8)
        good_quality = evaluate_traffic_quality(good.traffic)
        random_quality = evaluate_traffic_quality(random_traffic)
        assert good_quality.score <= random_quality.score
        assert good_quality.locality >= random_quality.locality

    def test_select_best_requires_candidates(self):
        with pytest.raises(ValueError):
            select_best_mapping([])

"""Property-based tests (hypothesis) on core data structures and invariants."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.channel import LLRQuantizer, QuantizationSpec
from repro.ldpc import ParityCheckMatrix, min_sum_check_update, wimax_ldpc_code
from repro.ldpc.checknode import first_two_minima
from repro.mapping.partition import partition_graph
from repro.noc import build_routing_tables, generalized_kautz
from repro.turbo import CTCInterleaver, DuoBinaryTrellis, TurboEncoder
from repro.turbo.bits import bit_to_symbol_extrinsic, symbol_to_bit_extrinsic
from repro.utils import bits_to_int, int_to_bits

# Keep hypothesis example counts modest so the suite stays fast.
DEFAULT_SETTINGS = settings(max_examples=50, deadline=None)


class TestBitRoundTripProperties:
    @DEFAULT_SETTINGS
    @given(value=st.integers(min_value=0, max_value=2**31 - 1), width=st.integers(32, 40))
    def test_int_bits_roundtrip(self, value, width):
        assert bits_to_int(int_to_bits(value, width)) == value

    @DEFAULT_SETTINGS
    @given(bits=st.lists(st.integers(0, 1), min_size=1, max_size=64))
    def test_bits_int_roundtrip(self, bits):
        width = len(bits)
        assert int_to_bits(bits_to_int(bits), width).tolist() == bits


class TestQuantizerProperties:
    @DEFAULT_SETTINGS
    @given(
        values=st.lists(st.floats(-100, 100, allow_nan=False), min_size=1, max_size=64),
        total_bits=st.integers(3, 10),
        frac_bits=st.integers(0, 2),
    )
    def test_quantizer_output_within_range_and_idempotent(self, values, total_bits, frac_bits):
        frac_bits = min(frac_bits, total_bits - 1)
        quantizer = LLRQuantizer(QuantizationSpec(total_bits, frac_bits))
        arr = np.array(values)
        levels = quantizer.quantize(arr)
        assert levels.min() >= quantizer.spec.min_level
        assert levels.max() <= quantizer.spec.max_level
        # Quantising an already-quantised value changes nothing.
        roundtrip = quantizer.quantize(quantizer.dequantize(levels))
        assert np.array_equal(levels, roundtrip)

    @DEFAULT_SETTINGS
    @given(values=st.lists(st.floats(-5, 5, allow_nan=False), min_size=1, max_size=32))
    def test_quantization_error_bounded(self, values):
        quantizer = LLRQuantizer(QuantizationSpec(7, 1))
        arr = np.array(values)
        error = np.abs(arr - quantizer.quantize_to_real(arr))
        assert np.all(error <= quantizer.spec.step / 2 + 1e-9)


class TestCheckNodeProperties:
    @DEFAULT_SETTINGS
    @given(
        q=st.lists(
            st.floats(-30, 30, allow_nan=False).filter(lambda x: abs(x) > 1e-6),
            min_size=2,
            max_size=12,
        )
    )
    def test_min_sum_magnitude_never_exceeds_input_minimum(self, q):
        arr = np.array(q)
        out = min_sum_check_update(arr, scaling=1.0)
        # Every output magnitude is a minimum over a subset of |inputs|.
        assert np.all(np.abs(out) <= np.abs(arr).min() + 1e-9) or np.all(
            np.abs(out) <= np.sort(np.abs(arr))[1] + 1e-9
        )

    @DEFAULT_SETTINGS
    @given(
        q=st.lists(
            st.floats(-30, 30, allow_nan=False).filter(lambda x: abs(x) > 1e-6),
            min_size=2,
            max_size=12,
        )
    )
    def test_min_sum_sign_product_property(self, q):
        arr = np.array(q)
        out = min_sum_check_update(arr, scaling=1.0)
        # sign(out_k) * prod_{n != k} sign(q_n) must be +1 for every edge.
        total_sign = np.prod(np.sign(arr))
        for k in range(arr.size):
            expected = total_sign / np.sign(arr[k])
            assert np.sign(out[k]) == pytest.approx(expected)

    @DEFAULT_SETTINGS
    @given(values=st.lists(st.floats(0, 100, allow_nan=False), min_size=2, max_size=20))
    def test_first_two_minima_are_sorted_minima(self, values):
        arr = np.array(values)
        min1, min2, argmin = first_two_minima(arr)
        assert min1 == arr.min()
        assert min1 <= min2
        assert arr[argmin] == min1


class TestInterleaverProperties:
    @DEFAULT_SETTINGS
    @given(
        n_couples=st.sampled_from([24, 36, 48, 96, 240]),
        seed=st.integers(0, 2**31 - 1),
    )
    def test_interleave_deinterleave_identity(self, n_couples, seed):
        rng = np.random.default_rng(seed)
        symbols = rng.integers(0, 4, n_couples)
        interleaver = CTCInterleaver.for_block_size(n_couples)
        assert np.array_equal(
            interleaver.deinterleave_symbols(interleaver.interleave_symbols(symbols)), symbols
        )

    @DEFAULT_SETTINGS
    @given(n_couples=st.sampled_from([24, 48, 108, 192, 480, 960, 1440, 1920, 2400]))
    def test_all_standard_sizes_give_permutations(self, n_couples):
        perm = CTCInterleaver.for_block_size(n_couples).permutation()
        assert np.array_equal(np.sort(perm), np.arange(n_couples))


class TestTurboCodeProperties:
    @DEFAULT_SETTINGS
    @given(seed=st.integers(0, 2**31 - 1))
    def test_circular_encoding_returns_to_start_state(self, seed):
        rng = np.random.default_rng(seed)
        trellis = DuoBinaryTrellis()
        symbols = rng.integers(0, 4, 36)
        start = trellis.circulation_state(symbols)
        state = start
        for symbol in symbols:
            state = trellis.next_state(state, int(symbol))
        assert state == start

    @DEFAULT_SETTINGS
    @given(seed=st.integers(0, 2**31 - 1))
    def test_encoder_is_systematic(self, seed):
        rng = np.random.default_rng(seed)
        encoder = TurboEncoder(n_couples=24)
        info = rng.integers(0, 2, encoder.k)
        codeword = encoder.encode(info)
        assert np.array_equal(codeword.systematic.reshape(-1), info)

    @DEFAULT_SETTINGS
    @given(
        llr_a=st.floats(-20, 20, allow_nan=False),
        llr_b=st.floats(-20, 20, allow_nan=False),
    )
    def test_bit_symbol_bit_roundtrip(self, llr_a, llr_b):
        bits = np.array([[llr_a, llr_b]])
        recovered = symbol_to_bit_extrinsic(bit_to_symbol_extrinsic(bits))
        assert np.allclose(recovered, bits, atol=1e-9)


class TestLdpcCodeProperties:
    @DEFAULT_SETTINGS
    @given(
        seed=st.integers(0, 2**31 - 1),
        rate=st.sampled_from(["1/2", "2/3A", "3/4B", "5/6"]),
    )
    def test_random_information_words_encode_to_codewords(self, seed, rate):
        code = wimax_ldpc_code(576, rate)
        rng = np.random.default_rng(seed)
        info = rng.integers(0, 2, code.k)
        assert code.h.is_codeword(code.encode(info))

    @DEFAULT_SETTINGS
    @given(seed=st.integers(0, 2**31 - 1))
    def test_syndrome_of_flipped_bit_is_column_degree(self, seed):
        code = wimax_ldpc_code(576, "1/2")
        rng = np.random.default_rng(seed)
        info = rng.integers(0, 2, code.k)
        codeword = code.encode(info)
        position = int(rng.integers(0, code.n))
        corrupted = codeword.copy()
        corrupted[position] ^= 1
        syndrome_weight = int(code.h.syndrome(corrupted).sum())
        assert syndrome_weight == code.h.col(position).size


class TestPartitionProperties:
    @DEFAULT_SETTINGS
    @given(
        n_vertices=st.integers(12, 60),
        n_parts=st.integers(2, 6),
        seed=st.integers(0, 1000),
    )
    def test_partition_always_covers_and_respects_bounds(self, n_vertices, n_parts, seed):
        rng = np.random.default_rng(seed)
        edges: dict[tuple[int, int], int] = {}
        for _ in range(n_vertices * 2):
            a, b = rng.integers(0, n_vertices, 2)
            if a != b:
                key = (min(int(a), int(b)), max(int(a), int(b)))
                edges[key] = edges.get(key, 0) + 1
        result = partition_graph(n_vertices, edges, n_parts, seed=seed, attempts=1)
        assert result.assignment.shape == (n_vertices,)
        assert result.assignment.min() >= 0
        assert result.assignment.max() < n_parts
        assert result.part_sizes.sum() == n_vertices
        recomputed = sum(
            w for (a, b), w in edges.items() if result.assignment[a] != result.assignment[b]
        )
        assert recomputed == result.cut_weight


class TestRoutingProperties:
    @DEFAULT_SETTINGS
    @given(
        n_nodes=st.integers(6, 30),
        degree=st.integers(2, 4),
    )
    def test_kautz_routing_triangle_inequality(self, n_nodes, degree):
        if degree >= n_nodes:
            return
        topology = generalized_kautz(n_nodes, degree)
        tables = build_routing_tables(topology)
        distance = tables.distance
        # Moving to any out-neighbour changes the distance by at most 1 hop
        # (and strictly decreases it along a shortest-path port).
        for node in range(n_nodes):
            for port, (arc_index, neighbor) in enumerate(topology.out_arcs(node)):
                for dest in range(n_nodes):
                    if dest == node:
                        continue
                    assert distance[node, dest] <= distance[neighbor, dest] + 1


class TestParityCheckMatrixProperties:
    @DEFAULT_SETTINGS
    @given(seed=st.integers(0, 2**31 - 1))
    def test_dense_sparse_roundtrip(self, seed):
        rng = np.random.default_rng(seed)
        dense = (rng.random((8, 16)) < 0.3).astype(np.int8)
        # Ensure no empty rows (required by the constructor).
        for row in range(dense.shape[0]):
            if not dense[row].any():
                dense[row, int(rng.integers(0, 16))] = 1
        h = ParityCheckMatrix.from_dense(dense)
        assert np.array_equal(h.to_dense(), dense)
        assert h.n_edges == int(dense.sum())

"""Unit tests for NoC topologies and routing tables."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import RoutingError, TopologyError
from repro.noc import (
    RoutingAlgorithm,
    Topology,
    build_routing_tables,
    build_topology,
    generalized_de_bruijn,
    generalized_kautz,
    honeycomb_torus,
    mesh_2d,
    ring,
    spidergon,
    toroidal_mesh,
)
from repro.noc.topologies import TOPOLOGY_FAMILIES


class TestTopologyObject:
    def test_arc_indexing(self):
        topology = Topology("t", "test", 3, ((0, 1), (1, 2), (2, 0)))
        assert topology.out_arcs(0) == [(0, 1)]
        assert topology.in_arcs(0) == [(2, 2)]
        assert topology.out_neighbors(1) == [2]
        assert topology.n_arcs == 3

    def test_degree_and_crossbar_size(self):
        topology = ring(6)
        assert topology.degree == 2
        assert topology.crossbar_size == 3

    def test_strong_connectivity_check(self):
        connected = Topology("c", "test", 3, ((0, 1), (1, 2), (2, 0)))
        assert connected.is_strongly_connected()
        disconnected = Topology("d", "test", 3, ((0, 1), (1, 0)))
        assert not disconnected.is_strongly_connected()

    def test_rejects_self_loop(self):
        with pytest.raises(TopologyError):
            Topology("bad", "test", 3, ((0, 0),))

    def test_rejects_duplicate_arcs(self):
        with pytest.raises(TopologyError):
            Topology("bad", "test", 3, ((0, 1), (0, 1)))

    def test_rejects_out_of_range_nodes(self):
        with pytest.raises(TopologyError):
            Topology("bad", "test", 3, ((0, 5),))

    def test_rejects_tiny_networks(self):
        with pytest.raises(TopologyError):
            Topology("bad", "test", 1, ())


class TestTopologyFamilies:
    @pytest.mark.parametrize("n_nodes", [8, 16, 22, 36])
    def test_ring_degree_2(self, n_nodes):
        topology = ring(n_nodes)
        assert topology.degree == 2
        assert topology.is_strongly_connected()

    def test_ring_too_small(self):
        with pytest.raises(TopologyError):
            ring(2)

    @pytest.mark.parametrize("n_nodes", [16, 24, 36])
    def test_mesh_is_connected_with_degree_at_most_4(self, n_nodes):
        topology = mesh_2d(n_nodes)
        assert topology.degree <= 4
        assert topology.is_strongly_connected()

    def test_mesh_rejects_prime_node_count(self):
        with pytest.raises(TopologyError):
            mesh_2d(17)

    @pytest.mark.parametrize("n_nodes", [16, 24, 36])
    def test_toroidal_mesh_degree_4(self, n_nodes):
        topology = toroidal_mesh(n_nodes)
        assert topology.degree == 4
        assert topology.is_strongly_connected()

    def test_toroidal_mesh_needs_wide_grid(self):
        with pytest.raises(TopologyError):
            toroidal_mesh(8)  # factors as 2 x 4

    @pytest.mark.parametrize("n_nodes", [16, 22, 24, 36])
    def test_spidergon_degree_3(self, n_nodes):
        topology = spidergon(n_nodes)
        assert topology.degree == 3
        assert topology.is_strongly_connected()

    def test_spidergon_rejects_odd_count(self):
        with pytest.raises(TopologyError):
            spidergon(15)

    @pytest.mark.parametrize("n_nodes", [16, 24, 32, 36])
    def test_honeycomb_connected_max_degree_4(self, n_nodes):
        topology = honeycomb_torus(n_nodes)
        assert topology.degree <= 4
        assert topology.is_strongly_connected()

    @pytest.mark.parametrize("degree", [2, 3, 4])
    @pytest.mark.parametrize("n_nodes", [16, 22, 24, 36])
    def test_de_bruijn_and_kautz_out_degree(self, n_nodes, degree):
        for builder in (generalized_de_bruijn, generalized_kautz):
            topology = builder(n_nodes, degree)
            assert topology.degree == degree
            for node in range(n_nodes):
                assert topology.out_degree(node) == degree
            assert topology.is_strongly_connected()

    def test_kautz_diameter_close_to_optimal(self):
        topology = generalized_kautz(22, 3)
        tables = build_routing_tables(topology)
        # Kautz digraphs have diameter ~ ceil(log_D(N)); allow one extra hop
        # for the duplicate-arc fix-ups of the generalized construction.
        assert tables.diameter <= int(np.ceil(np.log(22) / np.log(3))) + 1

    def test_kautz_better_average_distance_than_ring(self):
        kautz = build_routing_tables(generalized_kautz(22, 3))
        ring_tables = build_routing_tables(ring(22))
        assert kautz.average_distance < ring_tables.average_distance

    def test_digraph_requires_degree(self):
        with pytest.raises(TopologyError):
            build_topology("generalized-kautz", 16)

    def test_digraph_rejects_degenerate_parameters(self):
        with pytest.raises(TopologyError):
            generalized_kautz(3, 4)
        with pytest.raises(TopologyError):
            generalized_de_bruijn(8, 1)

    def test_build_topology_dispatch(self):
        for family in TOPOLOGY_FAMILIES:
            degree = 3 if family in ("generalized-de-bruijn", "generalized-kautz") else None
            topology = build_topology(family, 16, degree)
            assert topology.n_nodes == 16

    def test_build_topology_unknown_family(self):
        with pytest.raises(TopologyError):
            build_topology("hypercube", 16)

    def test_build_topology_degree_cross_check(self):
        with pytest.raises(TopologyError):
            build_topology("ring", 16, degree=3)


class TestRoutingTables:
    def test_distances_symmetric_for_undirected_topology(self):
        tables = build_routing_tables(ring(8))
        assert np.array_equal(tables.distance, tables.distance.T)

    def test_ring_distances(self):
        tables = build_routing_tables(ring(8))
        assert tables.distance[0, 4] == 4
        assert tables.distance[0, 1] == 1
        assert tables.diameter == 4

    def test_next_ports_lead_closer_to_destination(self, small_kautz_topology, small_kautz_routing):
        topology, tables = small_kautz_topology, small_kautz_routing
        for source in range(topology.n_nodes):
            for dest in range(topology.n_nodes):
                if source == dest:
                    continue
                for port in tables.all_next_ports(source, dest):
                    _, neighbor = topology.out_arcs(source)[port]
                    assert tables.distance[neighbor, dest] == tables.distance[source, dest] - 1

    def test_single_next_port_is_first_of_all(self, small_kautz_routing):
        tables = small_kautz_routing
        assert tables.single_next_port(0, 3) == tables.all_next_ports(0, 3)[0]

    def test_no_route_to_self(self, small_kautz_routing):
        with pytest.raises(RoutingError):
            small_kautz_routing.single_next_port(2, 2)

    def test_routing_table_entries_ssp_vs_asp(self):
        tables = build_routing_tables(toroidal_mesh(16))
        ssp_entries = tables.routing_table_entries(algorithm_uses_all_paths=False)
        asp_entries = tables.routing_table_entries(algorithm_uses_all_paths=True)
        assert ssp_entries == 16 * 15
        assert asp_entries >= ssp_entries

    def test_not_strongly_connected_raises(self):
        broken = Topology("b", "test", 3, ((0, 1), (1, 0), (0, 2)))
        with pytest.raises(RoutingError):
            build_routing_tables(broken)

    def test_average_distance_positive(self, small_kautz_routing):
        assert small_kautz_routing.average_distance >= 1.0

    def test_routing_algorithm_enum_flags(self):
        assert not RoutingAlgorithm.SSP_RR.uses_all_paths
        assert not RoutingAlgorithm.SSP_FL.uses_all_paths
        assert RoutingAlgorithm.ASP_FT.uses_all_paths

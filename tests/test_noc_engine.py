"""Differential harness: the SoA cycle engine vs the object reference simulator.

The struct-of-arrays engine (:class:`repro.noc.engine.BatchNocSimulator`) must
be *cycle-exact* against the per-object reference
(:class:`repro.noc.simulator.ReferenceNocSimulator`): same ncycles, delivered
counts, per-node maximum FIFO occupancies, hop/latency totals and SCM
deflection decisions for any (topology, configuration, traffic, seed).  The
hypothesis suite below drives randomized configurations x seeded traffic
through both simulators and compares every observable, including the
both-raise behaviour under deadlocking capacities.
"""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.errors import SimulationError
from repro.noc import (
    BatchNocSimulator,
    CollisionPolicy,
    MessageArrays,
    NocConfiguration,
    NocSimulator,
    NocSweepJob,
    ReferenceNocSimulator,
    RoutingAlgorithm,
    build_routing_tables,
    build_topology,
    random_traffic,
    run_noc_sweep,
)

# Topology specs kept small so one differential case stays ~milliseconds.
TOPOLOGY_SPECS = [
    ("generalized-kautz", 8, 3),
    ("generalized-kautz", 10, 2),
    ("generalized-de-bruijn", 9, 2),
    ("ring", 6, None),
    ("spidergon", 8, None),
    ("mesh", 9, None),
    ("honeycomb", 8, None),
    ("toroidal-mesh", 9, None),
]

_TOPOLOGY_CACHE: dict = {}


def _topology_and_tables(spec):
    if spec not in _TOPOLOGY_CACHE:
        topology = build_topology(*spec)
        _TOPOLOGY_CACHE[spec] = (topology, build_routing_tables(topology))
    return _TOPOLOGY_CACHE[spec]


def _observables(result):
    """Every measurement the engine must reproduce exactly."""
    return {
        "ncycles": result.ncycles,
        "total": result.total_messages,
        "delivered": result.delivered_messages,
        "bypassed": result.local_bypassed,
        "max_fifo": result.max_fifo_occupancy,
        "max_injection": result.max_injection_occupancy,
        "per_node_max_fifo": list(result.per_node_max_fifo),
        "link_utilization": result.link_utilization,
        "count": result.statistics.count,
        "total_latency": result.statistics.total_latency,
        "max_latency": result.statistics.max_latency,
        "total_hops": result.statistics.total_hops,
        "misrouted": result.statistics.misrouted,
        "mean_latency": result.statistics.mean_latency,
        "p95_latency": result.statistics.latency_percentile(95),
        "describe": result.describe(),
    }


config_strategy = st.builds(
    NocConfiguration,
    routing_algorithm=st.sampled_from(list(RoutingAlgorithm)),
    collision_policy=st.sampled_from(list(CollisionPolicy)),
    injection_rate=st.sampled_from([0.25, 0.4, 0.5, 0.75, 1.0]),
    route_local=st.booleans(),
    fifo_capacity=st.sampled_from([2, 3, 5, 4096]),
)


class TestDifferentialEngineVsReference:
    @settings(
        max_examples=60,
        deadline=None,
        derandomize=True,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(
        spec=st.sampled_from(TOPOLOGY_SPECS),
        config=config_strategy,
        traffic_seed=st.integers(0, 2**20),
        messages_per_node=st.integers(0, 25),
        sim_seed=st.integers(0, 2**20),
    )
    def test_engine_matches_reference_cycle_exactly(
        self, spec, config, traffic_seed, messages_per_node, sim_seed
    ):
        """>= 50 randomized config x seed cases must agree on every observable."""
        topology, tables = _topology_and_tables(spec)
        traffic = random_traffic(topology.n_nodes, messages_per_node, seed=traffic_seed)
        reference = ReferenceNocSimulator(
            topology, config, routing_tables=tables, seed=sim_seed, max_cycles=30_000
        )
        engine = BatchNocSimulator(
            topology, config, routing_tables=tables, seed=sim_seed, max_cycles=30_000
        )
        try:
            expected = _observables(reference.run(traffic))
            reference_raised = False
        except SimulationError:
            reference_raised = True
        if reference_raised:
            # Tight capacities can deadlock (DCM cyclic waits); the engine
            # must diverge in exactly the same way.
            with pytest.raises(SimulationError):
                engine.run(traffic)
            return
        assert _observables(engine.run(traffic)) == expected

    @pytest.mark.parametrize("spec", TOPOLOGY_SPECS)
    @pytest.mark.parametrize("algorithm", list(RoutingAlgorithm))
    def test_engine_matches_reference_on_default_config(self, spec, algorithm):
        """Dense deterministic grid at the paper's default configuration."""
        topology, tables = _topology_and_tables(spec)
        config = NocConfiguration().with_routing(algorithm)
        traffic = random_traffic(topology.n_nodes, 20, seed=7)
        expected = _observables(
            ReferenceNocSimulator(topology, config, routing_tables=tables, seed=3).run(
                traffic
            )
        )
        actual = _observables(
            BatchNocSimulator(topology, config, routing_tables=tables, seed=3).run(
                traffic
            )
        )
        assert actual == expected

    def test_engine_matches_reference_on_hotspot_traffic(self):
        """All nodes hammering node 0 maximizes contention and deflections."""
        from repro.noc import NodeTraffic, TrafficPattern

        topology, tables = _topology_and_tables(("generalized-kautz", 8, 3))
        per = tuple(
            NodeTraffic(node=n, destinations=(0,) * 20, memory_locations=tuple(range(20)))
            for n in range(8)
        )
        traffic = TrafficPattern(n_nodes=8, per_node=per, label="hotspot")
        for policy in CollisionPolicy:
            config = NocConfiguration(collision_policy=policy)
            expected = _observables(
                ReferenceNocSimulator(topology, config, routing_tables=tables, seed=1).run(traffic)
            )
            actual = _observables(
                BatchNocSimulator(topology, config, routing_tables=tables, seed=1).run(traffic)
            )
            assert actual == expected

    def test_engine_matches_reference_on_empty_traffic(self):
        topology, tables = _topology_and_tables(("ring", 6, None))
        traffic = random_traffic(6, 0, seed=0)
        config = NocConfiguration()
        ref = ReferenceNocSimulator(topology, config, routing_tables=tables).run(traffic)
        eng = BatchNocSimulator(topology, config, routing_tables=tables).run(traffic)
        assert _observables(eng) == _observables(ref)
        assert eng.ncycles == 0


class TestEngineContract:
    def test_rejects_node_count_mismatch(self):
        topology, tables = _topology_and_tables(("ring", 6, None))
        with pytest.raises(SimulationError):
            BatchNocSimulator(topology, NocConfiguration(), routing_tables=tables).run(
                random_traffic(4, 5)
            )

    def test_rejects_foreign_routing_tables(self):
        topology, _ = _topology_and_tables(("ring", 6, None))
        _, other_tables = _topology_and_tables(("spidergon", 8, None))
        with pytest.raises(SimulationError):
            BatchNocSimulator(topology, NocConfiguration(), routing_tables=other_tables)

    def test_rejects_bad_max_cycles(self):
        topology, tables = _topology_and_tables(("ring", 6, None))
        with pytest.raises(SimulationError):
            BatchNocSimulator(
                topology, NocConfiguration(), routing_tables=tables, max_cycles=0
            )

    def test_max_cycles_guard_raises(self):
        topology, tables = _topology_and_tables(("ring", 6, None))
        simulator = BatchNocSimulator(
            topology, NocConfiguration(), routing_tables=tables, max_cycles=2
        )
        with pytest.raises(SimulationError):
            simulator.run(random_traffic(6, 30, seed=2))

    def test_seed_override_matches_fresh_engine(self):
        topology, tables = _topology_and_tables(("generalized-kautz", 8, 3))
        config = NocConfiguration()
        traffic = random_traffic(8, 20, seed=5)
        shared = BatchNocSimulator(topology, config, routing_tables=tables, seed=0)
        for seed in (0, 1, 17):
            fresh = BatchNocSimulator(topology, config, routing_tables=tables, seed=seed)
            assert _observables(shared.run(traffic, seed=seed)) == _observables(
                fresh.run(traffic)
            )

    def test_facade_delegates_to_engine(self):
        topology, tables = _topology_and_tables(("generalized-kautz", 8, 3))
        config = NocConfiguration()
        traffic = random_traffic(8, 20, seed=9)
        facade = NocSimulator(topology, config, routing_tables=tables, seed=4)
        engine = BatchNocSimulator(topology, config, routing_tables=tables, seed=4)
        assert _observables(facade.run(traffic)) == _observables(engine.run(traffic))


class TestMessageArrays:
    def test_flattening_round_trip(self):
        traffic = random_traffic(5, 7, seed=11)
        arrays = MessageArrays.from_traffic(traffic)
        assert arrays.total == traffic.total_messages
        for node, node_traffic in enumerate(traffic.per_node):
            lo = int(arrays.node_offset[node])
            hi = int(arrays.node_offset[node + 1])
            assert hi - lo == node_traffic.n_messages
            assert tuple(arrays.dest[lo:hi]) == node_traffic.destinations
            assert tuple(arrays.memory_location[lo:hi]) == node_traffic.memory_locations
            assert (arrays.source[lo:hi] == node).all()

    def test_empty_traffic(self):
        arrays = MessageArrays.from_traffic(random_traffic(4, 0))
        assert arrays.total == 0


class TestSweepDriver:
    def test_sweep_matches_individual_runs(self):
        jobs = []
        for alg in RoutingAlgorithm:
            for policy in CollisionPolicy:
                jobs.append(
                    NocSweepJob(
                        family="generalized-kautz",
                        parallelism=8,
                        degree=3,
                        config=NocConfiguration(collision_policy=policy).with_routing(alg),
                        traffic=random_traffic(8, 15, seed=21),
                        seed=2,
                    )
                )
        outcomes = run_noc_sweep(jobs)
        assert len(outcomes) == len(jobs)
        for job, outcome in zip(jobs, outcomes):
            assert outcome.job is job
            topology, tables = _topology_and_tables(("generalized-kautz", 8, 3))
            single = BatchNocSimulator(
                topology, job.config, routing_tables=tables, seed=job.seed
            ).run(job.traffic)
            assert _observables(outcome.result) == _observables(single)

    def test_sweep_shares_topology_cache(self):
        cache: dict = {}
        jobs = [
            NocSweepJob(
                family="ring",
                parallelism=6,
                degree=None,
                config=NocConfiguration(injection_rate=rate),
                traffic=random_traffic(6, 10, seed=3),
            )
            for rate in (0.25, 0.5, 1.0)
        ]
        run_noc_sweep(jobs, topology_cache=cache)
        assert list(cache) == [("ring", 6, None)]
        # Reusing the pre-warmed cache must not rebuild anything.
        topology_before = cache[("ring", 6, None)][0]
        run_noc_sweep(jobs, topology_cache=cache)
        assert cache[("ring", 6, None)][0] is topology_before

"""Unit tests for :mod:`repro.channel`."""

from __future__ import annotations

import numpy as np
import pytest

from repro.channel import (
    AWGNChannel,
    BPSKModulator,
    ErrorRateAccumulator,
    LLRQuantizer,
    QPSKModulator,
    QuantizationSpec,
    ebn0_to_noise_sigma,
    snr_db_to_linear,
)
from repro.channel.quantize import CHANNEL_LLR_SPEC, EXTRINSIC_SPEC
from repro.errors import ConfigurationError, DecodingError


class TestBPSK:
    def test_mapping(self):
        symbols = BPSKModulator().modulate(np.array([0, 1, 0, 1]))
        assert symbols.tolist() == [1.0, -1.0, 1.0, -1.0]

    def test_llr_sign_matches_bits(self):
        mod = BPSKModulator()
        bits = np.array([0, 1, 1, 0])
        llrs = mod.demodulate_llr(mod.modulate(bits), noise_variance=0.5)
        decisions = (llrs < 0).astype(int)
        assert decisions.tolist() == bits.tolist()

    def test_llr_scale(self):
        mod = BPSKModulator()
        llr = mod.demodulate_llr(np.array([0.7]), noise_variance=0.5)
        assert llr[0] == pytest.approx(2 * 0.7 / 0.5)

    def test_rejects_non_binary(self):
        with pytest.raises(DecodingError):
            BPSKModulator().modulate(np.array([0, 2]))

    def test_batched_input_matches_rowwise(self):
        mod = BPSKModulator()
        bits = np.array([[0, 1, 0, 1], [1, 1, 0, 0]])
        symbols = mod.modulate(bits)
        assert symbols.shape == bits.shape
        for row in range(bits.shape[0]):
            assert np.array_equal(symbols[row], mod.modulate(bits[row]))
        llrs = mod.demodulate_llr(symbols, noise_variance=0.5)
        assert llrs.shape == bits.shape
        assert ((llrs < 0).astype(int) == bits).all()

    def test_rejects_scalar_input(self):
        with pytest.raises(DecodingError):
            BPSKModulator().modulate(np.array(1))

    def test_rejects_bad_noise_variance(self):
        with pytest.raises(ConfigurationError):
            BPSKModulator().demodulate_llr(np.array([1.0]), noise_variance=0.0)


class TestQPSK:
    def test_unit_energy(self):
        mod = QPSKModulator()
        symbols = mod.modulate(np.array([0, 0, 0, 1, 1, 0, 1, 1]))
        assert np.allclose(np.abs(symbols), 1.0)

    def test_gray_mapping_independent_axes(self):
        mod = QPSKModulator()
        symbols = mod.modulate(np.array([0, 1]))
        assert symbols[0].real > 0 and symbols[0].imag < 0

    def test_llr_recovers_bits_noiseless(self):
        mod = QPSKModulator()
        bits = np.array([0, 1, 1, 0, 1, 1, 0, 0])
        llrs = mod.demodulate_llr(mod.modulate(bits), noise_variance=1.0)
        assert ((llrs < 0).astype(int) == bits).all()

    def test_rejects_odd_bit_count(self):
        with pytest.raises(DecodingError):
            QPSKModulator().modulate(np.array([0, 1, 0]))


class TestAWGN:
    def test_noise_statistics(self):
        channel = AWGNChannel(0.5, np.random.default_rng(0))
        clean = np.zeros(200_000)
        noisy = channel.transmit(clean)
        assert np.std(noisy) == pytest.approx(0.5, rel=0.02)
        assert np.mean(noisy) == pytest.approx(0.0, abs=0.01)

    def test_complex_noise_both_dimensions(self):
        channel = AWGNChannel(0.3, np.random.default_rng(1))
        noisy = channel.transmit(np.zeros(100_000, dtype=complex))
        assert np.std(noisy.real) == pytest.approx(0.3, rel=0.05)
        assert np.std(noisy.imag) == pytest.approx(0.3, rel=0.05)

    def test_llr_noise_variance_convention(self):
        channel = AWGNChannel(0.5)
        assert channel.llr_noise_variance(False) == pytest.approx(0.25)
        assert channel.llr_noise_variance(True) == pytest.approx(0.5)

    def test_rejects_non_positive_sigma(self):
        with pytest.raises(ConfigurationError):
            AWGNChannel(0.0)

    def test_snr_db_to_linear(self):
        assert snr_db_to_linear(0.0) == pytest.approx(1.0)
        assert snr_db_to_linear(10.0) == pytest.approx(10.0)

    def test_ebn0_to_noise_sigma_decreases_with_snr(self):
        low = ebn0_to_noise_sigma(0.0, 0.5)
        high = ebn0_to_noise_sigma(4.0, 0.5)
        assert high < low

    def test_ebn0_accounts_for_rate(self):
        half = ebn0_to_noise_sigma(2.0, 0.5)
        five_sixth = ebn0_to_noise_sigma(2.0, 5.0 / 6.0)
        assert five_sixth < half

    def test_ebn0_rejects_bad_rate(self):
        with pytest.raises(ConfigurationError):
            ebn0_to_noise_sigma(2.0, 0.0)
        with pytest.raises(ConfigurationError):
            ebn0_to_noise_sigma(2.0, 1.5)


class TestQuantizer:
    def test_paper_formats(self):
        assert CHANNEL_LLR_SPEC.total_bits == 7
        assert EXTRINSIC_SPEC.total_bits == 5

    def test_spec_range(self):
        spec = QuantizationSpec(total_bits=5, frac_bits=0)
        assert spec.max_level == 15
        assert spec.min_level == -16
        assert spec.step == 1.0

    def test_spec_fractional_step(self):
        spec = QuantizationSpec(total_bits=7, frac_bits=1)
        assert spec.step == 0.5
        assert spec.max_value == pytest.approx(31.5)

    def test_spec_rejects_bad_bits(self):
        with pytest.raises(ConfigurationError):
            QuantizationSpec(total_bits=1)
        with pytest.raises(ConfigurationError):
            QuantizationSpec(total_bits=4, frac_bits=4)

    def test_quantize_saturates(self):
        quant = LLRQuantizer(QuantizationSpec(5, 0))
        levels = quant.quantize(np.array([100.0, -100.0]))
        assert levels.tolist() == [15, -16]

    def test_quantize_rounds(self):
        quant = LLRQuantizer(QuantizationSpec(5, 0))
        assert quant.quantize(np.array([2.4, 2.6])).tolist() == [2, 3]

    def test_roundtrip_error_bounded_by_half_step(self):
        quant = LLRQuantizer(QuantizationSpec(7, 1))
        values = np.linspace(-20, 20, 101)
        recovered = quant.quantize_to_real(values)
        assert np.max(np.abs(values - recovered)) <= quant.spec.step / 2 + 1e-12

    def test_saturating_add(self):
        quant = LLRQuantizer(QuantizationSpec(5, 0))
        out = quant.saturating_add(np.array([10]), np.array([10]))
        assert out.tolist() == [15]

    def test_quantizer_requires_spec(self):
        with pytest.raises(ConfigurationError):
            LLRQuantizer("7bits")  # type: ignore[arg-type]


class TestErrorRate:
    def test_counts_bit_and_frame_errors(self):
        acc = ErrorRateAccumulator()
        acc.update(np.array([0, 0, 0, 0]), np.array([0, 1, 0, 1]))
        acc.update(np.array([1, 1, 1, 1]), np.array([1, 1, 1, 1]))
        report = acc.report()
        assert report.frames == 2
        assert report.bit_errors == 2
        assert report.frame_errors == 1
        assert report.ber == pytest.approx(0.25)
        assert report.fer == pytest.approx(0.5)

    def test_update_returns_frame_errors(self):
        acc = ErrorRateAccumulator()
        assert acc.update(np.array([0, 1]), np.array([1, 1])) == 1

    def test_reset(self):
        acc = ErrorRateAccumulator()
        acc.update(np.array([0]), np.array([1]))
        acc.reset()
        report = acc.report()
        assert report.frames == 0 and report.ber == 0.0

    def test_shape_mismatch_rejected(self):
        acc = ErrorRateAccumulator()
        with pytest.raises(DecodingError):
            acc.update(np.array([0, 1]), np.array([0]))

    def test_report_str_contains_rates(self):
        acc = ErrorRateAccumulator()
        acc.update(np.array([0, 1]), np.array([0, 1]))
        assert "BER" in str(acc.report())

"""Unit tests for :mod:`repro.channel`."""

from __future__ import annotations

import numpy as np
import pytest

from repro.channel import (
    AWGNChannel,
    BPSKModulator,
    ErrorRateAccumulator,
    LLRQuantizer,
    QAM16Modulator,
    QPSKModulator,
    QuantizationSpec,
    RayleighFadingChannel,
    ebn0_to_noise_sigma,
    snr_db_to_linear,
)
from repro.channel.quantize import CHANNEL_LLR_SPEC, EXTRINSIC_SPEC
from repro.errors import ConfigurationError, DecodingError


class TestBPSK:
    def test_mapping(self):
        symbols = BPSKModulator().modulate(np.array([0, 1, 0, 1]))
        assert symbols.tolist() == [1.0, -1.0, 1.0, -1.0]

    def test_llr_sign_matches_bits(self):
        mod = BPSKModulator()
        bits = np.array([0, 1, 1, 0])
        llrs = mod.demodulate_llr(mod.modulate(bits), noise_variance=0.5)
        decisions = (llrs < 0).astype(int)
        assert decisions.tolist() == bits.tolist()

    def test_llr_scale(self):
        mod = BPSKModulator()
        llr = mod.demodulate_llr(np.array([0.7]), noise_variance=0.5)
        assert llr[0] == pytest.approx(2 * 0.7 / 0.5)

    def test_rejects_non_binary(self):
        with pytest.raises(DecodingError):
            BPSKModulator().modulate(np.array([0, 2]))

    def test_batched_input_matches_rowwise(self):
        mod = BPSKModulator()
        bits = np.array([[0, 1, 0, 1], [1, 1, 0, 0]])
        symbols = mod.modulate(bits)
        assert symbols.shape == bits.shape
        for row in range(bits.shape[0]):
            assert np.array_equal(symbols[row], mod.modulate(bits[row]))
        llrs = mod.demodulate_llr(symbols, noise_variance=0.5)
        assert llrs.shape == bits.shape
        assert ((llrs < 0).astype(int) == bits).all()

    def test_rejects_scalar_input(self):
        with pytest.raises(DecodingError):
            BPSKModulator().modulate(np.array(1))

    def test_rejects_bad_noise_variance(self):
        with pytest.raises(ConfigurationError):
            BPSKModulator().demodulate_llr(np.array([1.0]), noise_variance=0.0)

    def test_rejects_non_integral_floats(self):
        # Regression: 0.5 passed the min/max range check and was silently
        # truncated to bit 0 by the int8 cast.
        with pytest.raises(DecodingError):
            BPSKModulator().modulate(np.array([0.0, 0.5]))

    def test_accepts_integral_floats_and_bools(self):
        mod = BPSKModulator()
        assert mod.modulate(np.array([0.0, 1.0])).tolist() == [1.0, -1.0]
        assert mod.modulate(np.array([False, True])).tolist() == [1.0, -1.0]

    def test_gains_scale_llrs(self):
        mod = BPSKModulator()
        llr = mod.demodulate_llr(np.array([0.7]), 0.5, gains=np.array([2.0]))
        assert llr[0] == pytest.approx(2 * 2.0 * 0.7 / 0.5)

    def test_rejects_complex_gains_for_real_constellation(self):
        with pytest.raises(DecodingError):
            BPSKModulator().demodulate_llr(
                np.array([1.0]), 0.5, gains=np.array([1.0 + 1j])
            )


class TestQPSK:
    def test_unit_energy(self):
        mod = QPSKModulator()
        symbols = mod.modulate(np.array([0, 0, 0, 1, 1, 0, 1, 1]))
        assert np.allclose(np.abs(symbols), 1.0)

    def test_gray_mapping_independent_axes(self):
        mod = QPSKModulator()
        symbols = mod.modulate(np.array([0, 1]))
        assert symbols[0].real > 0 and symbols[0].imag < 0

    def test_llr_recovers_bits_noiseless(self):
        mod = QPSKModulator()
        bits = np.array([0, 1, 1, 0, 1, 1, 0, 0])
        llrs = mod.demodulate_llr(mod.modulate(bits), noise_variance=1.0)
        assert ((llrs < 0).astype(int) == bits).all()

    def test_rejects_odd_bit_count(self):
        with pytest.raises(DecodingError):
            QPSKModulator().modulate(np.array([0, 1, 0]))

    def test_llr_magnitude_pinned_with_channel_convention(self):
        # Regression for the AWGNChannel.noise_variance bug: demapping QPSK
        # with the per-dimension sigma^2 instead of llr_noise_variance(True)
        # produced LLRs exactly 2x too hot.  Pin the correct magnitude.
        mod = QPSKModulator()
        channel = AWGNChannel(0.5)
        nv = channel.llr_noise_variance(True)  # 2 * 0.5^2 = 0.5
        llrs = mod.demodulate_llr(np.array([0.7 + 0.2j]), nv)
        assert llrs[0] == pytest.approx(2 * np.sqrt(2) * 0.7 / 0.5)
        assert llrs[1] == pytest.approx(2 * np.sqrt(2) * 0.2 / 0.5)

    def test_csi_gains_equalize_and_reweight(self):
        mod = QPSKModulator()
        bits = np.array([0, 1, 1, 0])
        clean = mod.modulate(bits)
        h = np.array([0.5 * np.exp(1j * 0.7), 2.0 * np.exp(-1j * 1.1)])
        faded = clean * h
        llrs = mod.demodulate_llr(faded, 0.5, gains=h)
        # Equalised observation is the clean symbol; LLR scale is |h|^2.
        base = mod.demodulate_llr(clean, 0.5)
        expected = base * np.repeat(np.abs(h) ** 2, 2)
        assert np.allclose(llrs, expected)


class TestQAM16:
    def test_unit_average_energy(self):
        mod = QAM16Modulator()
        # All 16 bit patterns once: average symbol energy is exactly 1.
        bits = np.array(
            [[b >> 3 & 1, b >> 2 & 1, b >> 1 & 1, b & 1] for b in range(16)]
        ).reshape(1, -1)
        symbols = mod.modulate(bits)
        assert np.mean(np.abs(symbols) ** 2) == pytest.approx(1.0)

    def test_gray_mapping_neighbours_differ_in_one_bit(self):
        mod = QAM16Modulator()
        patterns = [(s, m) for s in (0, 1) for m in (0, 1)]
        level_of = {}
        for sign, mag in patterns:
            sym = mod.modulate(np.array([sign, mag, 0, 0]))
            level_of[(sign, mag)] = sym[0].real * np.sqrt(10)
        ordered = sorted(level_of.items(), key=lambda kv: kv[1])
        for (bits_a, _), (bits_b, _) in zip(ordered, ordered[1:]):
            hamming = sum(a != b for a, b in zip(bits_a, bits_b))
            assert hamming == 1

    def test_llr_recovers_bits_noiseless(self):
        mod = QAM16Modulator()
        rng = np.random.default_rng(0)
        bits = rng.integers(0, 2, size=(3, 64))
        llrs = mod.demodulate_llr(mod.modulate(bits), noise_variance=0.5)
        assert ((llrs < 0).astype(int) == bits).all()

    def test_rejects_bit_count_not_multiple_of_four(self):
        with pytest.raises(DecodingError):
            QAM16Modulator().modulate(np.array([0, 1, 0]))

    def test_batched_matches_rowwise(self):
        mod = QAM16Modulator()
        rng = np.random.default_rng(1)
        bits = rng.integers(0, 2, size=(4, 16))
        symbols = mod.modulate(bits)
        noisy = symbols + 0.2 * (
            rng.normal(size=symbols.shape) + 1j * rng.normal(size=symbols.shape)
        )
        llrs = mod.demodulate_llr(noisy, 0.3)
        for row in range(bits.shape[0]):
            assert np.array_equal(symbols[row], mod.modulate(bits[row]))
            assert np.allclose(llrs[row], mod.demodulate_llr(noisy[row], 0.3))


class TestAWGN:
    def test_noise_statistics(self):
        channel = AWGNChannel(0.5, np.random.default_rng(0))
        clean = np.zeros(200_000)
        noisy = channel.transmit(clean)
        assert np.std(noisy) == pytest.approx(0.5, rel=0.02)
        assert np.mean(noisy) == pytest.approx(0.0, abs=0.01)

    def test_complex_noise_both_dimensions(self):
        channel = AWGNChannel(0.3, np.random.default_rng(1))
        noisy = channel.transmit(np.zeros(100_000, dtype=complex))
        assert np.std(noisy.real) == pytest.approx(0.3, rel=0.05)
        assert np.std(noisy.imag) == pytest.approx(0.3, rel=0.05)

    def test_llr_noise_variance_convention(self):
        channel = AWGNChannel(0.5)
        assert channel.llr_noise_variance(False) == pytest.approx(0.25)
        assert channel.llr_noise_variance(True) == pytest.approx(0.5)

    def test_noise_variance_property_is_deprecated(self):
        # Regression: the property claimed to return the demapper total
        # (2*sigma^2 for complex) but returned sigma^2; it is now deprecated
        # in favour of llr_noise_variance.
        channel = AWGNChannel(0.5)
        with pytest.warns(DeprecationWarning, match="llr_noise_variance"):
            value = channel.noise_variance
        assert value == pytest.approx(0.25)
        assert channel.llr_noise_variance(True) == pytest.approx(2 * value)

    def test_rejects_non_positive_sigma(self):
        with pytest.raises(ConfigurationError):
            AWGNChannel(0.0)

    def test_snr_db_to_linear(self):
        assert snr_db_to_linear(0.0) == pytest.approx(1.0)
        assert snr_db_to_linear(10.0) == pytest.approx(10.0)

    def test_ebn0_to_noise_sigma_decreases_with_snr(self):
        low = ebn0_to_noise_sigma(0.0, 0.5)
        high = ebn0_to_noise_sigma(4.0, 0.5)
        assert high < low

    def test_ebn0_accounts_for_rate(self):
        half = ebn0_to_noise_sigma(2.0, 0.5)
        five_sixth = ebn0_to_noise_sigma(2.0, 5.0 / 6.0)
        assert five_sixth < half

    def test_ebn0_rejects_bad_rate(self):
        with pytest.raises(ConfigurationError):
            ebn0_to_noise_sigma(2.0, 0.0)
        with pytest.raises(ConfigurationError):
            ebn0_to_noise_sigma(2.0, 1.5)


class TestRayleighFading:
    def test_per_symbol_gains_shape_and_statistics(self):
        channel = RayleighFadingChannel(0.01, np.random.default_rng(0))
        symbols = np.ones((100, 500), dtype=complex)
        received, gains = channel.transmit(symbols)
        assert gains.shape == symbols.shape
        assert received.shape == symbols.shape
        assert np.mean(np.abs(gains) ** 2) == pytest.approx(1.0, rel=0.02)

    def test_block_fading_one_gain_per_frame(self):
        channel = RayleighFadingChannel(
            0.01, np.random.default_rng(1), block_fading=True
        )
        symbols = np.ones((8, 64), dtype=complex)
        received, gains = channel.transmit(symbols)
        assert gains.shape == (8, 1)
        assert len(np.unique(gains)) == 8

    def test_real_symbols_get_rayleigh_amplitudes(self):
        channel = RayleighFadingChannel(0.01, np.random.default_rng(2))
        received, gains = channel.transmit(np.ones((4, 32)))
        assert not np.iscomplexobj(gains)
        assert (gains > 0).all()
        assert not np.iscomplexobj(received)
        assert np.mean(gains**2) == pytest.approx(1.0, rel=0.25)

    def test_llr_noise_variance_matches_awgn_convention(self):
        channel = RayleighFadingChannel(0.5)
        awgn = AWGNChannel(0.5)
        assert channel.llr_noise_variance(True) == awgn.llr_noise_variance(True)
        assert channel.llr_noise_variance(False) == awgn.llr_noise_variance(False)

    def test_rejects_non_positive_sigma(self):
        with pytest.raises(ConfigurationError):
            RayleighFadingChannel(0.0)

    def test_csi_demap_recovers_bits_at_high_snr(self):
        mod = QPSKModulator()
        rng = np.random.default_rng(3)
        bits = rng.integers(0, 2, size=(16, 128))
        channel = RayleighFadingChannel(0.01, np.random.default_rng(4))
        received, gains = channel.transmit(mod.modulate(bits))
        llrs = mod.demodulate_llr(
            received, channel.llr_noise_variance(True), gains=gains
        )
        assert ((llrs < 0).astype(int) == bits).all()


class TestQuantizer:
    def test_paper_formats(self):
        assert CHANNEL_LLR_SPEC.total_bits == 7
        assert EXTRINSIC_SPEC.total_bits == 5

    def test_spec_range(self):
        spec = QuantizationSpec(total_bits=5, frac_bits=0)
        assert spec.max_level == 15
        assert spec.min_level == -16
        assert spec.step == 1.0

    def test_spec_fractional_step(self):
        spec = QuantizationSpec(total_bits=7, frac_bits=1)
        assert spec.step == 0.5
        assert spec.max_value == pytest.approx(31.5)

    def test_spec_rejects_bad_bits(self):
        with pytest.raises(ConfigurationError):
            QuantizationSpec(total_bits=1)
        with pytest.raises(ConfigurationError):
            QuantizationSpec(total_bits=4, frac_bits=4)

    def test_quantize_saturates_symmetrically_by_default(self):
        # Regression: the default used to clip to the asymmetric two's-
        # complement floor -2**(b-1), whose negation overflows the format —
        # poison for min-sum sign flips.  The decoder-datapath default is now
        # symmetric saturation at -max_level.
        quant = LLRQuantizer(QuantizationSpec(5, 0))
        levels = quant.quantize(np.array([100.0, -100.0]))
        assert levels.tolist() == [15, -15]
        assert quant.lowest_level == -15

    def test_asymmetric_mode_is_opt_in(self):
        quant = LLRQuantizer(QuantizationSpec(5, 0), symmetric=False)
        levels = quant.quantize(np.array([100.0, -100.0]))
        assert levels.tolist() == [15, -16]
        assert quant.lowest_level == -16

    def test_symmetric_negation_closure(self):
        quant = LLRQuantizer(QuantizationSpec(5, 0))
        values = np.linspace(-40.0, 40.0, 401)
        levels = quant.quantize(values)
        flipped = quant.quantize(-values)
        assert np.array_equal(flipped, -levels)

    def test_quantize_rounds(self):
        quant = LLRQuantizer(QuantizationSpec(5, 0))
        assert quant.quantize(np.array([2.4, 2.6])).tolist() == [2, 3]

    def test_roundtrip_error_bounded_by_half_step(self):
        quant = LLRQuantizer(QuantizationSpec(7, 1))
        values = np.linspace(-20, 20, 101)
        recovered = quant.quantize_to_real(values)
        assert np.max(np.abs(values - recovered)) <= quant.spec.step / 2 + 1e-12

    def test_saturating_add(self):
        quant = LLRQuantizer(QuantizationSpec(5, 0))
        out = quant.saturating_add(np.array([10]), np.array([10]))
        assert out.tolist() == [15]
        out = quant.saturating_add(np.array([-10]), np.array([-10]))
        assert out.tolist() == [-15]
        asym = LLRQuantizer(QuantizationSpec(5, 0), symmetric=False)
        assert asym.saturating_add(np.array([-10]), np.array([-10])).tolist() == [-16]

    def test_quantizer_requires_spec(self):
        with pytest.raises(ConfigurationError):
            LLRQuantizer("7bits")  # type: ignore[arg-type]


class TestErrorRate:
    def test_counts_bit_and_frame_errors(self):
        acc = ErrorRateAccumulator()
        acc.update(np.array([0, 0, 0, 0]), np.array([0, 1, 0, 1]))
        acc.update(np.array([1, 1, 1, 1]), np.array([1, 1, 1, 1]))
        report = acc.report()
        assert report.frames == 2
        assert report.bit_errors == 2
        assert report.frame_errors == 1
        assert report.ber == pytest.approx(0.25)
        assert report.fer == pytest.approx(0.5)

    def test_update_returns_frame_errors(self):
        acc = ErrorRateAccumulator()
        assert acc.update(np.array([0, 1]), np.array([1, 1])) == 1

    def test_reset(self):
        acc = ErrorRateAccumulator()
        acc.update(np.array([0]), np.array([1]))
        acc.reset()
        report = acc.report()
        assert report.frames == 0 and report.ber == 0.0

    def test_shape_mismatch_rejected(self):
        acc = ErrorRateAccumulator()
        with pytest.raises(DecodingError):
            acc.update(np.array([0, 1]), np.array([0]))

    def test_report_str_contains_rates(self):
        acc = ErrorRateAccumulator()
        acc.update(np.array([0, 1]), np.array([0, 1]))
        assert "BER" in str(acc.report())

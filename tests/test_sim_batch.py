"""Batch-vs-sequential equivalence and unit tests for :mod:`repro.sim`.

The load-bearing property: stacking frames on the batch axis changes
*nothing* — the batched decoders return the same hard bits, the same
iteration counts, the same convergence flags (and the same a-posteriori LLRs
and unsatisfied-check histories) as the per-frame ``decode`` for every frame,
for both schedules, both kernels, with and without early termination and
fixed-point quantisation.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.channel import AWGNChannel, BPSKModulator, QPSKModulator, ebn0_to_noise_sigma
from repro.errors import ConfigurationError, DecodingError
from repro.ldpc import FloodingDecoder, LayeredMinSumDecoder, wimax_ldpc_code
from repro.ldpc.checknode import min_sum_check_update
from repro.sim import (
    BatchDecoder,
    BatchFloodingDecoder,
    BatchLayeredDecoder,
    BerRunner,
    EdgeIndex,
    min_sum_update,
    sum_product_update,
    wilson_interval,
)


def _llr_batch(code, batch: int, ebn0_db: float, seed: int) -> tuple[np.ndarray, np.ndarray]:
    """Random codewords and their AWGN channel LLRs, stacked on a batch axis."""
    rng = np.random.default_rng(seed)
    modulator = BPSKModulator()
    channel = AWGNChannel(ebn0_to_noise_sigma(ebn0_db, code.rate), rng)
    info = rng.integers(0, 2, (batch, code.k))
    codewords = code.encode_batch(info)
    received = channel.transmit(modulator.modulate(codewords))
    return codewords, modulator.demodulate_llr(
        received, channel.llr_noise_variance(False)
    )


class TestBatchSequentialEquivalence:
    """The tentpole property: batch == per-frame, field for field."""

    @pytest.mark.parametrize("kernel", ["sum-product", "min-sum"])
    @pytest.mark.parametrize("early_termination", [True, False])
    def test_flooding_schedule(self, small_ldpc_code, kernel, early_termination):
        # 1.4 dB leaves a mix of converging and non-converging frames.
        _, llrs = _llr_batch(small_ldpc_code, 6, ebn0_db=1.4, seed=11)
        batch_decoder = BatchFloodingDecoder(
            small_ldpc_code.h,
            max_iterations=8,
            kernel=kernel,
            early_termination=early_termination,
        )
        sequential = FloodingDecoder(
            small_ldpc_code.h,
            max_iterations=8,
            kernel=kernel,
            early_termination=early_termination,
        )
        result = batch_decoder.decode_batch(llrs)
        assert 0 < result.converged.sum() < llrs.shape[0]
        for frame in range(llrs.shape[0]):
            reference = sequential.decode(llrs[frame])
            assert np.array_equal(result.hard_bits[frame], reference.hard_bits)
            assert np.array_equal(result.llrs[frame], reference.llrs)
            assert int(result.iterations[frame]) == reference.iterations
            assert bool(result.converged[frame]) == reference.converged
            assert result.unsatisfied_history[frame] == reference.unsatisfied_history

    @pytest.mark.parametrize("fixed_point", [False, True])
    @pytest.mark.parametrize("early_termination", [True, False])
    def test_layered_schedule(self, small_ldpc_code, fixed_point, early_termination):
        _, llrs = _llr_batch(small_ldpc_code, 6, ebn0_db=1.2, seed=23)
        batch_decoder = BatchLayeredDecoder(
            small_ldpc_code.h,
            max_iterations=8,
            fixed_point=fixed_point,
            early_termination=early_termination,
        )
        sequential = LayeredMinSumDecoder(
            small_ldpc_code.h,
            max_iterations=8,
            fixed_point=fixed_point,
            early_termination=early_termination,
        )
        result = batch_decoder.decode_batch(llrs)
        assert 0 < result.converged.sum() < llrs.shape[0]
        for frame in range(llrs.shape[0]):
            reference = sequential.decode(llrs[frame])
            assert np.array_equal(result.hard_bits[frame], reference.hard_bits)
            assert np.array_equal(result.llrs[frame], reference.llrs)
            assert int(result.iterations[frame]) == reference.iterations
            assert bool(result.converged[frame]) == reference.converged
            assert int(result.syndrome_weights[frame]) == reference.syndrome_weight
            assert result.unsatisfied_history[frame] == reference.unsatisfied_history

    def test_layered_sum_product_kernel_batch_invariant(self, small_ldpc_code):
        """The extra layered kernel has no per-frame twin; pin batch == batch-of-1."""
        _, llrs = _llr_batch(small_ldpc_code, 4, ebn0_db=1.5, seed=5)
        decoder = BatchLayeredDecoder(
            small_ldpc_code.h, max_iterations=6, kernel="sum-product"
        )
        result = decoder.decode_batch(llrs)
        for frame in range(llrs.shape[0]):
            single = decoder.decode_batch(llrs[frame][None, :])
            assert np.array_equal(result.hard_bits[frame], single.hard_bits[0])
            assert np.array_equal(result.llrs[frame], single.llrs[0])
            assert int(result.iterations[frame]) == int(single.iterations[0])
            assert bool(result.converged[frame]) == bool(single.converged[0])

    def test_both_decoders_satisfy_protocol(self, small_ldpc_code):
        assert isinstance(BatchFloodingDecoder(small_ldpc_code.h), BatchDecoder)
        assert isinstance(BatchLayeredDecoder(small_ldpc_code.h), BatchDecoder)

    def test_rejects_wrong_shape(self, small_ldpc_code):
        decoder = BatchFloodingDecoder(small_ldpc_code.h)
        with pytest.raises(DecodingError):
            decoder.decode_batch(np.zeros(small_ldpc_code.n))
        with pytest.raises(DecodingError):
            decoder.decode_batch(np.zeros((2, small_ldpc_code.n + 1)))


class TestKernels:
    @given(st.lists(st.floats(-12.0, 12.0), min_size=2, max_size=9), st.integers(1, 5))
    @settings(max_examples=60, deadline=None)
    def test_min_sum_matches_scalar_reference(self, values, batch):
        """Batched min-sum equals the scalar MEU arithmetic on every row."""
        q = np.tile(np.array(values, dtype=np.float64), (batch, 1))
        out = min_sum_update(q, scaling=0.75)
        reference = min_sum_check_update(np.array(values), scaling=0.75)
        for row in range(batch):
            assert np.array_equal(out[row], reference)

    @given(st.lists(st.floats(-12.0, 12.0), min_size=2, max_size=9))
    @settings(max_examples=60, deadline=None)
    def test_sum_product_leave_one_out(self, values):
        """Each output must equal 2*atanh of the product of the *other* tanh."""
        q = np.array(values, dtype=np.float64)
        out = sum_product_update(q[None, :])[0]
        tanh_half = np.tanh(np.clip(q, -30, 30) / 2.0)
        for k in range(q.size):
            others = np.prod(np.delete(tanh_half, k))
            expected = 2.0 * np.arctanh(np.clip(others, -0.999999999999, 0.999999999999))
            assert out[k] == pytest.approx(expected, rel=1e-9, abs=1e-9)

    def test_scalar_sum_product_wrapper_matches_kernel(self):
        """The per-check wrapper in flooding.py is a view of the same kernel."""
        from repro.ldpc.flooding import _sum_product_check_update

        q = np.array([0.0, 3.0, -2.0, 0.4])
        assert np.array_equal(_sum_product_check_update(q), sum_product_update(q[None, :])[0])
        assert np.isfinite(_sum_product_check_update(q)).all()
        with pytest.raises(DecodingError):
            _sum_product_check_update(q[None, :])

    def test_sum_product_stable_at_zero_message(self):
        """A zero message must not trip division-by-zero (the seed's O(d^2) case)."""
        q = np.array([0.0, 3.0, -2.0, 0.0])
        out = sum_product_update(q[None, :])[0]
        assert np.isfinite(out).all()
        # Edges other than the zero ones see a zero factor -> zero message.
        assert out[1] == 0.0 and out[2] == 0.0

    def test_rejects_single_edge(self):
        with pytest.raises(DecodingError):
            min_sum_update(np.zeros((3, 1)))
        with pytest.raises(DecodingError):
            sum_product_update(np.zeros((3, 1)))


class TestEdgeIndex:
    def test_unsatisfied_counts_match_syndrome(self, small_ldpc_code, rng):
        edges = EdgeIndex(small_ldpc_code.h)
        words = rng.integers(0, 2, (5, small_ldpc_code.n))
        counts = edges.unsatisfied_counts(words)
        for frame in range(words.shape[0]):
            assert counts[frame] == int(small_ldpc_code.h.syndrome(words[frame]).sum())

    def test_accumulate_columns_matches_rowwise_scatter(self, small_ldpc_code, rng):
        edges = EdgeIndex(small_ldpc_code.h)
        values = rng.normal(size=(3, edges.n_edges))
        accumulated = edges.accumulate_columns(values)
        expected = np.zeros((3, edges.n_cols))
        for frame in range(3):
            for row in range(edges.n_rows):
                span = slice(edges.row_ptr[row], edges.row_ptr[row + 1])
                expected[frame, edges.row_cols[row]] += values[frame, span]
        assert np.allclose(accumulated, expected)

    def test_group_shapes_cover_every_edge(self, small_ldpc_code):
        edges = EdgeIndex(small_ldpc_code.h)
        check_edges = np.concatenate([g.edges.ravel() for g in edges.check_groups])
        variable_edges = np.concatenate([g.edges.ravel() for g in edges.variable_groups])
        assert np.array_equal(np.sort(check_edges), np.arange(edges.n_edges))
        assert np.array_equal(np.sort(variable_edges), np.arange(edges.n_edges))


class TestEncodeBatch:
    def test_matches_per_frame_encode(self, small_ldpc_code, rng):
        info = rng.integers(0, 2, (4, small_ldpc_code.k))
        batch = small_ldpc_code.encode_batch(info)
        for frame in range(4):
            assert np.array_equal(batch[frame], small_ldpc_code.encode(info[frame]))

    def test_rejects_wrong_shape(self, small_ldpc_code):
        from repro.errors import CodeDefinitionError

        with pytest.raises(CodeDefinitionError):
            small_ldpc_code.encode_batch(np.zeros((2, small_ldpc_code.k + 1), dtype=int))


class TestWilsonInterval:
    @given(st.integers(0, 500), st.integers(0, 500))
    @settings(max_examples=80, deadline=None)
    def test_contains_point_estimate_and_is_ordered(self, errors, extra):
        trials = errors + extra
        lower, upper = wilson_interval(errors, trials)
        assert 0.0 <= lower <= upper <= 1.0
        if trials:
            assert lower <= errors / trials <= upper

    def test_zero_errors_has_zero_lower_bound(self):
        lower, upper = wilson_interval(0, 1000)
        assert lower == 0.0
        assert 0.0 < upper < 0.01

    def test_narrows_with_trials(self):
        wide = wilson_interval(5, 50)
        narrow = wilson_interval(500, 5000)
        assert (narrow[1] - narrow[0]) < (wide[1] - wide[0])

    def test_rejects_bad_arguments(self):
        with pytest.raises(ConfigurationError):
            wilson_interval(5, 4)
        with pytest.raises(ConfigurationError):
            wilson_interval(1, 10, confidence=0.5)


class TestBerRunner:
    def test_runs_and_is_reproducible(self, small_ldpc_code):
        def build():
            return BerRunner(
                small_ldpc_code,
                BatchLayeredDecoder(small_ldpc_code.h, max_iterations=10),
                batch_size=16,
                max_frames=48,
                target_frame_errors=None,
                seed=3,
            )

        first = build().run_point(2.0)
        second = build().run_point(2.0)
        assert first.frames == 48
        assert first.total_bits == 48 * small_ldpc_code.n
        assert first.bit_errors == second.bit_errors
        assert first.frame_errors == second.frame_errors
        assert first.ber_interval[0] <= first.ber <= first.ber_interval[1]

    def test_error_target_stops_early(self, small_ldpc_code):
        runner = BerRunner(
            small_ldpc_code,
            BatchLayeredDecoder(small_ldpc_code.h, max_iterations=4),
            batch_size=8,
            max_frames=4096,
            target_frame_errors=3,
            seed=0,
        )
        point = runner.run_point(0.0)  # noisy enough that errors come fast
        assert point.frame_errors >= 3
        assert point.frames < 4096

    def test_qpsk_path(self, small_ldpc_code):
        runner = BerRunner(
            small_ldpc_code,
            BatchLayeredDecoder(small_ldpc_code.h, max_iterations=6),
            modulator=QPSKModulator(),
            batch_size=8,
            max_frames=16,
            target_frame_errors=None,
            seed=5,
        )
        point = runner.run_point(4.0)
        assert point.frames == 16
        assert point.ber < 0.1

    def test_sweep_returns_one_point_per_ebn0(self, small_ldpc_code):
        runner = BerRunner(
            small_ldpc_code,
            BatchFloodingDecoder(small_ldpc_code.h, max_iterations=5, kernel="min-sum"),
            batch_size=8,
            max_frames=8,
            target_frame_errors=None,
        )
        points = runner.run([1.0, 2.0])
        assert [p.ebn0_db for p in points] == [1.0, 2.0]

    def test_rejects_mismatched_decoder(self, small_ldpc_code):
        other = wimax_ldpc_code(672, "1/2")
        with pytest.raises(ConfigurationError):
            BerRunner(
                small_ldpc_code,
                BatchLayeredDecoder(other.h),
            )
        with pytest.raises(ConfigurationError):
            BerRunner(
                small_ldpc_code,
                BatchLayeredDecoder(small_ldpc_code.h),
                batch_size=0,
            )

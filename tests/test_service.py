"""End-to-end tests of the asyncio decode service.

The load-bearing claims:

* service-decoded bits are **bit-identical** to a direct ``decode_batch``
  call on the same LLRs (property-tested over random frames), for both
  code families, whatever batches the scheduler happened to form;
* no request is lost or duplicated under concurrent mixed-family load;
* a lone request still completes within the latency budget (deadline
  flush), and backpressure engages exactly at the configured bound in both
  modes;
* malformed payloads and unknown codecs fail at the boundary with typed
  :mod:`repro.errors` exceptions;
* the process-shard executor and the sync (thread) client return the same
  bits as the in-process paths.
"""

from __future__ import annotations

import asyncio

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import (
    RequestValidationError,
    ServiceClosedError,
    ServiceOverloadError,
    UnknownCodecError,
)
from repro.service import DecodeService, ServiceThread, default_registry
from repro.service.demo import generate_llr_frames, run_demo

LDPC = ("ldpc", 576, "1/2")
TURBO = ("turbo", 24, "1/2")


@pytest.fixture(scope="module")
def registry():
    return default_registry()


@pytest.fixture(scope="module")
def ldpc_entry(registry):
    return registry.resolve(*LDPC)


@pytest.fixture(scope="module")
def turbo_entry(registry):
    return registry.resolve(*TURBO)


def _direct_bits(entry, llrs: np.ndarray) -> np.ndarray:
    """Reference decode of one frame: direct batch=1 engine call."""
    bits, _, _ = entry.decoder.decode_batch(llrs[None]).frame(0)
    return bits


@pytest.mark.asyncio
async def test_mixed_families_bit_identical_and_conserved(
    registry, ldpc_entry, turbo_entry
):
    """Concurrent LDPC+turbo clients: every request answered, bits exact."""
    rng = np.random.default_rng(42)
    ldpc_llrs, _ = generate_llr_frames(ldpc_entry, 11, 2.0, rng)
    turbo_llrs, _ = generate_llr_frames(turbo_entry, 7, 1.5, rng)
    async with DecodeService(
        registry=registry, max_batch=4, max_delay_s=0.002, executor="inline"
    ) as service:
        tasks = [
            service.submit(row, *LDPC) for row in ldpc_llrs
        ] + [
            service.submit(row, *TURBO) for row in turbo_llrs
        ]
        responses = await asyncio.gather(*tasks)
        snapshot = service.metrics_snapshot()

    assert len(responses) == 18
    assert len({r.request_id for r in responses}) == 18  # no duplication
    for row, response in zip(ldpc_llrs, responses[:11]):
        assert response.codec == "ldpc:576:1/2"
        assert not response.decides_info_bits
        np.testing.assert_array_equal(response.bits, _direct_bits(ldpc_entry, row))
    for row, response in zip(turbo_llrs, responses[11:]):
        assert response.codec == "turbo:24:1/2"
        assert response.decides_info_bits
        np.testing.assert_array_equal(response.bits, _direct_bits(turbo_entry, row))
    assert snapshot.submitted == snapshot.completed == 18
    assert snapshot.rejected == 0
    assert sum(size * n for size, n in snapshot.batch_size_histogram.items()) == 18
    assert all(depth == 0 for depth in snapshot.queue_depths.values())
    assert snapshot.throughput_fps > 0.0
    assert snapshot.total_p99_s >= snapshot.queue_p50_s >= 0.0


@given(seed=st.integers(0, 2**32 - 1), count=st.integers(1, 5))
@settings(max_examples=12, deadline=None)
def test_service_bits_identical_to_direct_decode_property(seed, count):
    """Whatever batches form, per-request bits equal a batch=1 direct decode."""
    registry = default_registry()
    entry = registry.resolve(*LDPC)
    rng = np.random.default_rng(seed)
    llrs = rng.normal(0.0, 2.0, size=(count, entry.n_bits))

    async def scenario():
        async with DecodeService(
            registry=registry, max_batch=3, max_delay_s=0.001, executor="inline"
        ) as service:
            return await asyncio.gather(
                *(service.submit(row, *LDPC) for row in llrs)
            )

    responses = asyncio.run(scenario())
    for row, response in zip(llrs, responses):
        np.testing.assert_array_equal(response.bits, _direct_bits(entry, row))
        direct = entry.decoder.decode_batch(row[None])
        assert response.iterations == int(direct.iterations[0])
        assert response.converged == bool(direct.converged[0])


@pytest.mark.asyncio
async def test_deadline_flush_serves_a_lone_request(registry, ldpc_entry):
    """A single request cannot fill a batch; the deadline must flush it."""
    rng = np.random.default_rng(3)
    llrs, _ = generate_llr_frames(ldpc_entry, 1, 3.0, rng)
    async with DecodeService(
        registry=registry, max_batch=64, max_delay_s=0.02, executor="inline"
    ) as service:
        response = await asyncio.wait_for(service.submit(llrs[0], *LDPC), timeout=10.0)
    assert response.batch_size == 1
    assert response.queued_s >= 0.02  # it waited out the full budget


@pytest.mark.asyncio
async def test_reject_backpressure_engages_at_bound(registry, ldpc_entry):
    rng = np.random.default_rng(4)
    llrs, _ = generate_llr_frames(ldpc_entry, 4, 3.0, rng)
    service = DecodeService(
        registry=registry,
        max_batch=64,
        max_delay_s=30.0,  # nothing flushes on its own during the test
        queue_capacity=3,
        backpressure="reject",
        executor="inline",
    )
    await service.start()
    pending = [asyncio.create_task(service.submit(row, *LDPC)) for row in llrs[:3]]
    await asyncio.sleep(0)  # let all three enqueue
    with pytest.raises(ServiceOverloadError) as excinfo:
        await service.submit(llrs[3], *LDPC)
    assert excinfo.value.retry_after_s > 0.0
    assert service.metrics_snapshot().rejected == 1
    await service.stop(drain=True)  # drains and answers the three queued frames
    responses = await asyncio.gather(*pending)
    assert len({r.request_id for r in responses}) == 3


@pytest.mark.asyncio
async def test_wait_backpressure_blocks_then_completes_everything(
    registry, ldpc_entry
):
    rng = np.random.default_rng(5)
    llrs, _ = generate_llr_frames(ldpc_entry, 6, 3.0, rng)
    async with DecodeService(
        registry=registry,
        max_batch=2,
        max_delay_s=0.005,
        queue_capacity=2,
        backpressure="wait",
        executor="inline",
    ) as service:
        responses = await asyncio.gather(
            *(service.submit(row, *LDPC) for row in llrs)
        )
        snapshot = service.metrics_snapshot()
    assert len(responses) == 6
    assert snapshot.completed == 6
    assert snapshot.rejected == 0
    assert max(snapshot.batch_size_histogram) <= 2


@pytest.mark.asyncio
async def test_boundary_validation_raises_typed_errors(registry):
    async with DecodeService(registry=registry, executor="inline") as service:
        with pytest.raises(UnknownCodecError):
            await service.submit(np.zeros(576), "polar", 576, "1/2")
        with pytest.raises(UnknownCodecError):
            await service.submit(np.zeros(576), "ldpc", 576, "9/9")
        with pytest.raises(RequestValidationError, match="length 576"):
            await service.submit(np.zeros(575), *LDPC)
        with pytest.raises(RequestValidationError, match="one frame per request"):
            await service.submit(np.zeros((2, 576)), *LDPC)
        with pytest.raises(RequestValidationError, match="NaN"):
            bad = np.zeros(576)
            bad[7] = np.nan
            await service.submit(bad, *LDPC)
        with pytest.raises(RequestValidationError, match="real-numeric"):
            await service.submit(np.array(["x"] * 576), *LDPC)
        snapshot = service.metrics_snapshot()
    assert snapshot.validation_failures == 4
    assert snapshot.submitted == 0


@pytest.mark.asyncio
async def test_submit_after_stop_raises(registry):
    service = DecodeService(registry=registry, executor="inline")
    await service.start()
    await service.stop()
    with pytest.raises(ServiceClosedError):
        await service.submit(np.zeros(576), *LDPC)


@pytest.mark.asyncio
async def test_process_shard_mode_bit_identical(registry, ldpc_entry):
    """Sharded decoding returns exactly the in-process bits."""
    rng = np.random.default_rng(6)
    llrs, _ = generate_llr_frames(ldpc_entry, 6, 2.0, rng)
    async with DecodeService(
        registry=registry,
        max_batch=3,
        max_delay_s=0.002,
        executor="process",
        shards=2,
    ) as service:
        assert service.planned_shards == 2
        responses = await asyncio.gather(
            *(service.submit(row, *LDPC) for row in llrs)
        )
    for row, response in zip(llrs, responses):
        np.testing.assert_array_equal(response.bits, _direct_bits(ldpc_entry, row))


def test_sync_client_through_service_thread(registry, ldpc_entry):
    """The blocking facade decodes from a plain synchronous caller."""
    rng = np.random.default_rng(8)
    llrs, _ = generate_llr_frames(ldpc_entry, 2, 2.0, rng)
    with ServiceThread(
        registry=registry, max_batch=8, max_delay_s=0.002, executor="thread"
    ) as client:
        first = client.decode_sync(llrs[0], *LDPC, timeout=30.0)
        second = client.decode_sync(llrs[1], *LDPC, timeout=30.0)
        snapshot = client.metrics_snapshot()
    np.testing.assert_array_equal(first.bits, _direct_bits(ldpc_entry, llrs[0]))
    np.testing.assert_array_equal(second.bits, _direct_bits(ldpc_entry, llrs[1]))
    assert snapshot.completed == 2


def test_demo_cli_main_parses_and_runs(capsys):
    """The ``python -m repro.service`` entry point end to end."""
    from repro.service.demo import main

    rc = main(
        [
            "--requests", "12",
            "--max-batch", "8",
            "--delay-ms", "2",
            "--ldpc-only",
            "--seed", "11",
        ]
    )
    out = capsys.readouterr().out
    assert rc == 0
    assert "12/12 frames decoded" in out
    assert "ldpc:576:1/2" in out


def test_demo_smoke_returns_consistent_payload(registry):
    """The CLI demo's workload: all frames decoded, metrics consistent."""
    payload = run_demo(
        requests=24,
        ebn0_db=2.0,
        codecs=(LDPC, TURBO),
        max_batch=16,
        max_delay_s=0.002,
        registry=registry,
        quiet=True,
    )
    assert payload["requests"] == 24
    assert payload["metrics"]["completed"] == 24
    assert payload["metrics"]["rejected"] == 0
    assert payload["throughput_fps"] > 0.0
    assert set(payload["per_codec"]) == {"ldpc:576:1/2", "turbo:24:1/2"}

"""Hypothesis round-trip/invariant tests for ``noc/fifo.py`` and ``noc/message.py``.

A :class:`~repro.noc.fifo.MessageFifo` is modelled against a plain deque: any
interleaving of pushes and pops must preserve FIFO ordering, track the
occupancy high-water mark exactly, and lose no message under full-FIFO
backpressure (a push on a full FIFO raises and leaves the contents intact).
"""

from __future__ import annotations

from collections import deque

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import SimulationError
from repro.noc import Message, MessageFifo
from repro.noc.message import MessageStatistics

# An operation sequence: True = push (next message id), False = pop.
ops_strategy = st.lists(st.booleans(), max_size=80)


class TestFifoAgainstModel:
    @settings(max_examples=100, deadline=None, derandomize=True)
    @given(capacity=st.integers(1, 8), ops=ops_strategy)
    def test_fifo_matches_deque_model(self, capacity, ops):
        fifo = MessageFifo(capacity, name="model")
        model: deque[int] = deque()
        high_water = 0
        pushes = 0
        next_id = 0
        for is_push in ops:
            if is_push:
                message = Message(identifier=next_id, source=0, destination=1)
                next_id += 1
                if len(model) >= capacity:
                    # Backpressure: the push must raise and lose nothing.
                    assert fifo.is_full()
                    with pytest.raises(SimulationError):
                        fifo.push(message)
                else:
                    fifo.push(message)
                    model.append(message.identifier)
                    pushes += 1
                    high_water = max(high_water, len(model))
            else:
                if model:
                    assert fifo.pop().identifier == model.popleft()
                else:
                    assert fifo.is_empty()
                    with pytest.raises(SimulationError):
                        fifo.pop()
            # Invariants that must hold after every operation.
            assert len(fifo) == len(model) == fifo.occupancy
            assert fifo.is_empty() == (not model)
            assert fifo.is_full() == (len(model) >= capacity)
            head = fifo.head()
            assert (head.identifier if head is not None else None) == (
                model[0] if model else None
            )
        assert fifo.max_occupancy == high_water
        assert fifo.total_pushes == pushes
        # Draining returns the survivors in exact arrival order (no loss, no dup).
        drained = [fifo.pop().identifier for _ in range(len(fifo))]
        assert drained == list(model)

    @settings(max_examples=50, deadline=None, derandomize=True)
    @given(capacity=st.integers(1, 8), n=st.integers(0, 8))
    def test_reset_statistics_keeps_contents(self, capacity, n):
        fifo = MessageFifo(capacity)
        kept = min(n, capacity)
        for i in range(kept):
            fifo.push(Message(i, 0, 1))
        fifo.reset_statistics()
        assert fifo.max_occupancy == kept
        assert fifo.total_pushes == 0
        assert [fifo.pop().identifier for _ in range(len(fifo))] == list(range(kept))


class TestMessageProperties:
    @settings(max_examples=100, deadline=None, derandomize=True)
    @given(
        injection=st.integers(0, 10_000),
        flight=st.integers(0, 10_000),
        src=st.integers(0, 63),
        dst=st.integers(0, 63),
    )
    def test_latency_round_trip(self, injection, flight, src, dst):
        message = Message(
            identifier=0, source=src, destination=dst, injection_cycle=injection
        )
        assert not message.delivered
        assert message.latency == -1
        message.delivery_cycle = injection + flight
        assert message.delivered
        assert message.latency == flight
        assert message.is_local() == (src == dst)

    @settings(max_examples=50, deadline=None, derandomize=True)
    @given(latencies=st.lists(st.integers(0, 500), min_size=1, max_size=40))
    def test_statistics_against_model(self, latencies):
        stats = MessageStatistics()
        for i, latency in enumerate(latencies):
            stats.record(
                Message(i, 0, 1, injection_cycle=0, delivery_cycle=latency, hops=2)
            )
        assert stats.count == len(latencies)
        assert stats.total_latency == sum(latencies)
        assert stats.max_latency == max(latencies)
        assert stats.mean_latency == pytest.approx(sum(latencies) / len(latencies))
        assert stats.mean_hops == pytest.approx(2.0)
        assert stats.latency_percentile(0) == min(latencies)
        assert stats.latency_percentile(100) == max(latencies)

    def test_statistics_ignore_in_flight_messages(self):
        stats = MessageStatistics()
        stats.record(Message(0, 0, 1))
        assert stats.count == 0
        assert stats.mean_latency == 0.0

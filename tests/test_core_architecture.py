"""Unit and integration tests for the core decoder architecture and throughput models."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import (
    DecoderSpec,
    NocDecoderArchitecture,
    WIMAX_DECODER_SPEC,
    ldpc_throughput_bps,
    turbo_throughput_bps,
)
from repro.core.throughput import meets_wimax_requirement
from repro.errors import ConfigurationError, ModelError
from repro.ldpc import wimax_ldpc_code
from repro.noc import RoutingAlgorithm
from repro.turbo import TurboEncoder
from tests.conftest import make_ldpc_llrs


class TestDecoderSpec:
    def test_default_is_paper_design_case(self):
        spec = WIMAX_DECODER_SPEC
        assert spec.topology_family == "generalized-kautz"
        assert spec.parallelism == 22
        assert spec.degree == 3
        assert spec.ldpc_clock_hz == 300e6
        assert spec.turbo_noc_clock_hz == 75e6
        assert spec.ldpc_max_iterations == 10
        assert spec.turbo_max_iterations == 8

    def test_siso_clock_is_half_noc_clock(self):
        assert WIMAX_DECODER_SPEC.turbo_siso_clock_hz == pytest.approx(37.5e6)

    def test_with_routing_and_parallelism(self):
        spec = WIMAX_DECODER_SPEC.with_routing(RoutingAlgorithm.ASP_FT).with_parallelism(16)
        assert spec.noc.routing_algorithm is RoutingAlgorithm.ASP_FT
        assert spec.parallelism == 16

    def test_invalid_spec_rejected(self):
        with pytest.raises(ConfigurationError):
            DecoderSpec(parallelism=1)
        with pytest.raises(ConfigurationError):
            DecoderSpec(degree=1)
        with pytest.raises(ConfigurationError):
            DecoderSpec(ldpc_clock_hz=0)
        with pytest.raises(ConfigurationError):
            DecoderSpec(ldpc_max_iterations=0)
        with pytest.raises(ConfigurationError):
            DecoderSpec(mapping_attempts=0)

    def test_describe(self):
        assert "generalized-kautz" in WIMAX_DECODER_SPEC.describe()


class TestThroughputFormulas:
    def test_ldpc_formula_matches_paper_example(self):
        """Paper eq. (12): 1152 info bits, 300 MHz, 10 iterations, latcore 15."""
        throughput = ldpc_throughput_bps(1152, 300e6, 10, 15, 465)
        assert throughput == pytest.approx(1152 * 300e6 / (480 * 10))
        assert throughput / 1e6 == pytest.approx(72.0, rel=0.01)

    def test_ldpc_throughput_decreases_with_ncycles(self):
        fast = ldpc_throughput_bps(1152, 300e6, 10, 15, 300)
        slow = ldpc_throughput_bps(1152, 300e6, 10, 15, 600)
        assert fast > slow

    def test_turbo_formula_counts_two_half_iterations(self):
        single = turbo_throughput_bps(4800, 75e6, 1, 15, 300)
        double = turbo_throughput_bps(4800, 75e6, 2, 15, 300)
        assert single == pytest.approx(2 * double)

    def test_turbo_formula_paper_ballpark(self):
        # ~290 cycles per half-iteration reproduces the paper's 74 Mb/s figure.
        throughput = turbo_throughput_bps(4800, 75e6, 8, 15, 290)
        assert 65e6 <= throughput <= 80e6

    def test_wimax_requirement_check(self):
        assert meets_wimax_requirement(72e6)
        assert not meets_wimax_requirement(60e6)
        with pytest.raises(ModelError):
            meets_wimax_requirement(-1.0)

    def test_invalid_inputs_rejected(self):
        with pytest.raises(ModelError):
            ldpc_throughput_bps(0, 300e6, 10, 15, 100)
        with pytest.raises(ModelError):
            ldpc_throughput_bps(1152, 300e6, 10, 15, 0)
        with pytest.raises(ModelError):
            turbo_throughput_bps(4800, 0, 8, 15, 100)
        with pytest.raises(ModelError):
            turbo_throughput_bps(4800, 75e6, 0, 15, 100)


class TestArchitectureStructure:
    def test_topology_matches_spec(self, small_decoder_architecture):
        arch = small_decoder_architecture
        assert arch.topology.n_nodes == 8
        assert arch.topology.degree == 3
        assert arch.routing_tables.diameter >= 1

    def test_processing_elements_count(self, small_decoder_architecture):
        pes = small_decoder_architecture.processing_elements()
        assert len(pes) == 8
        assert pes[3].index == 3

    def test_memory_plan_cached(self, small_decoder_architecture):
        assert small_decoder_architecture.memory_plan is small_decoder_architecture.memory_plan

    def test_describe_contains_topology(self, small_decoder_architecture):
        assert "generalized-kautz" in small_decoder_architecture.describe()


class TestArchitectureEvaluation:
    def test_ldpc_mapping_cached_per_code(self, small_decoder_architecture, small_ldpc_code):
        first = small_decoder_architecture.map_ldpc(small_ldpc_code)
        second = small_decoder_architecture.map_ldpc(small_ldpc_code)
        assert first is second

    def test_turbo_mapping_cached_per_block(self, small_decoder_architecture):
        assert small_decoder_architecture.map_turbo(48) is small_decoder_architecture.map_turbo(48)

    def test_ldpc_evaluation_consistency(self, small_decoder_architecture, small_ldpc_code):
        evaluation = small_decoder_architecture.evaluate_ldpc(small_ldpc_code)
        assert evaluation.simulation.all_delivered
        assert evaluation.throughput_mbps > 0
        expected = ldpc_throughput_bps(
            small_ldpc_code.k,
            small_decoder_architecture.spec.ldpc_clock_hz,
            small_decoder_architecture.spec.ldpc_max_iterations,
            small_decoder_architecture.spec.ldpc_core_latency_cycles,
            evaluation.simulation.ncycles,
        )
        assert evaluation.throughput_bps == pytest.approx(expected)
        assert evaluation.area.total_mm2 > evaluation.area.noc_mm2
        assert evaluation.power.total_mw > 0

    def test_turbo_evaluation_consistency(self, small_decoder_architecture):
        evaluation = small_decoder_architecture.evaluate_turbo(240)
        assert evaluation.simulation.all_delivered
        assert evaluation.throughput_mbps > 0
        assert evaluation.power.total_mw > 0
        assert evaluation.mapping.n_nodes == 8

    def test_turbo_mode_power_below_ldpc_mode_power(
        self, small_decoder_architecture, small_ldpc_code
    ):
        ldpc = small_decoder_architecture.evaluate_ldpc(small_ldpc_code)
        turbo = small_decoder_architecture.evaluate_turbo(240)
        assert turbo.power.total_mw < ldpc.power.total_mw

    def test_functional_ldpc_decoding_through_architecture(
        self, small_decoder_architecture, small_ldpc_code, rng
    ):
        codeword, llrs = make_ldpc_llrs(small_ldpc_code, ebn0_db=3.0, rng=rng)
        result = small_decoder_architecture.decode_ldpc_frame(small_ldpc_code, llrs)
        assert np.array_equal(result.hard_bits, codeword)

    def test_functional_turbo_decoding_through_architecture(self, small_decoder_architecture, rng):
        encoder = TurboEncoder(n_couples=48, rate="1/2")
        info = rng.integers(0, 2, encoder.k)
        llrs = 8.0 * (1 - 2 * encoder.encode(info).to_bit_array().astype(float))
        from repro.turbo import TurboDecoder

        sys_llrs, par1, par2 = TurboDecoder(encoder).split_llrs(llrs)
        result = small_decoder_architecture.decode_turbo_frame(encoder, sys_llrs, par1, par2)
        assert np.array_equal(result.hard_bits, info)

    def test_turbo_frame_smaller_than_parallelism_rejected(self):
        arch = NocDecoderArchitecture(DecoderSpec(parallelism=30, degree=3, mapping_attempts=1))
        encoder = TurboEncoder(n_couples=24)
        with pytest.raises(ConfigurationError):
            arch.decode_turbo_frame(
                encoder, np.zeros((24, 2)), np.zeros((24, 2)), np.zeros((24, 2))
            )


class TestWimaxDesignCase:
    """Slower checks against the paper's P=22 design point (n=2304 code)."""

    @pytest.fixture(scope="class")
    def wimax_architecture(self):
        return NocDecoderArchitecture(DecoderSpec(mapping_attempts=2))

    @pytest.fixture(scope="class")
    def wimax_ldpc_evaluation(self, wimax_architecture):
        return wimax_architecture.evaluate_ldpc(wimax_ldpc_code(2304, "1/2"))

    @pytest.fixture(scope="class")
    def wimax_turbo_evaluation(self, wimax_architecture):
        return wimax_architecture.evaluate_turbo(2400)

    def test_ldpc_throughput_in_paper_range(self, wimax_ldpc_evaluation):
        # Paper: 72 Mb/s; our partitioner is a Metis substitute, so allow a
        # wider band while still requiring the right order of magnitude.
        assert 45 <= wimax_ldpc_evaluation.throughput_mbps <= 110

    def test_turbo_throughput_meets_wimax_requirement(self, wimax_turbo_evaluation):
        assert wimax_turbo_evaluation.throughput_mbps >= 70

    def test_total_area_close_to_paper(self, wimax_ldpc_evaluation):
        assert wimax_ldpc_evaluation.area.total_mm2 == pytest.approx(3.17, rel=0.25)

    def test_memory_dominates_core_area(self, wimax_ldpc_evaluation):
        assert wimax_ldpc_evaluation.area.memory_share > 0.5

    def test_noc_share_about_one_fifth(self, wimax_ldpc_evaluation):
        assert 0.05 <= wimax_ldpc_evaluation.area.noc_share <= 0.35

    def test_turbo_power_much_lower_than_ldpc_power(
        self, wimax_ldpc_evaluation, wimax_turbo_evaluation
    ):
        assert wimax_turbo_evaluation.power.total_mw < 0.5 * wimax_ldpc_evaluation.power.total_mw

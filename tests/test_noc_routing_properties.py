"""Property tests for the shortest-path routing tables and their dense views.

For every topology family and parallelism degree in the grid:

* every (src, dst) route walked through the dense next-hop table terminates at
  dst in exactly ``distance[src, dst]`` hops, and never in more than the
  topology diameter;
* every ASP port strictly decreases the distance to the destination (so *any*
  greedy choice over the ASP tables terminates);
* ASP-FT fault tolerance: when (src, dst) has alternative shortest-path ports,
  a route taken through any alternative reaches dst without ever traversing
  the primary port's (faulty) link;
* the dense matrices agree entry-for-entry with the tuple tables.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.noc import build_routing_tables, build_topology

TOPOLOGY_GRID = [
    ("ring", 6, None),
    ("ring", 9, None),
    ("mesh", 9, None),
    ("mesh", 12, None),
    ("toroidal-mesh", 9, None),
    ("spidergon", 8, None),
    ("spidergon", 12, None),
    ("honeycomb", 8, None),
    ("generalized-de-bruijn", 10, 2),
    ("generalized-de-bruijn", 16, 3),
    ("generalized-kautz", 8, 3),
    ("generalized-kautz", 22, 3),
    ("generalized-kautz", 16, 4),
]

_CACHE: dict = {}


def _tables(spec):
    if spec not in _CACHE:
        topology = build_topology(*spec)
        _CACHE[spec] = (topology, build_routing_tables(topology))
    return _CACHE[spec]


def _neighbor_via_port(topology, node, port):
    return int(topology.out_neighbor_matrix[node, port])


@pytest.mark.parametrize("spec", TOPOLOGY_GRID, ids=lambda s: f"{s[0]}-P{s[1]}")
class TestDenseRoutingTables:
    def test_ssp_routes_terminate_within_diameter(self, spec):
        topology, tables = _tables(spec)
        next_port = tables.next_port_matrix
        diameter = tables.diameter
        n = topology.n_nodes
        for src in range(n):
            for dst in range(n):
                if src == dst:
                    assert next_port[src, dst] == -1
                    continue
                node, hops = src, 0
                while node != dst:
                    node = _neighbor_via_port(topology, node, int(next_port[node, dst]))
                    hops += 1
                    assert hops <= diameter, f"route {src}->{dst} exceeded the diameter"
                assert hops == int(tables.distance[src, dst])

    def test_every_asp_port_decreases_distance(self, spec):
        topology, tables = _tables(spec)
        n = topology.n_nodes
        counts = tables.port_count_matrix
        padded = tables.all_ports_matrix
        for src in range(n):
            for dst in range(n):
                if src == dst:
                    assert counts[src, dst] == 0
                    continue
                ports = padded[src, dst, : counts[src, dst]]
                assert len(ports) >= 1
                for port in ports:
                    neighbor = _neighbor_via_port(topology, src, int(port))
                    assert (
                        tables.distance[neighbor, dst] + 1 == tables.distance[src, dst]
                    ), f"ASP port {port} at {src} does not shorten the path to {dst}"

    def test_asp_alternatives_avoid_primary_faulty_link(self, spec):
        """With the primary link at src marked faulty, every alternative ASP
        port still reaches dst within distance(src, dst) hops and never routes
        through the faulty arc."""
        topology, tables = _tables(spec)
        n = topology.n_nodes
        checked = 0
        for src in range(n):
            for dst in range(n):
                if src == dst:
                    continue
                ports = tables.all_next_ports(src, dst)
                if len(ports) < 2:
                    continue
                primary = tables.single_next_port(src, dst)
                faulty_arc = (src, _neighbor_via_port(topology, src, primary))
                for alternative in ports:
                    if alternative == primary:
                        continue
                    node = _neighbor_via_port(topology, src, alternative)
                    hops = 1
                    assert (node, src) != faulty_arc
                    while node != dst:
                        port = tables.single_next_port(node, dst)
                        nxt = _neighbor_via_port(topology, node, port)
                        assert (node, nxt) != faulty_arc, (
                            f"alternative route {src}->{dst} re-entered the faulty link"
                        )
                        node = nxt
                        hops += 1
                    assert hops == int(tables.distance[src, dst])
                    checked += 1
        # Kautz/De Bruijn digraphs route over (near-)unique shortest paths;
        # grid-like topologies are the ones that must expose alternatives.
        if spec[0] in ("toroidal-mesh", "mesh"):
            assert checked > 0, "grid topologies must expose alternative paths"

    def test_dense_views_agree_with_tuple_tables(self, spec):
        topology, tables = _tables(spec)
        n = topology.n_nodes
        for src in range(n):
            for dst in range(n):
                ports = tables.next_ports[src][dst]
                if not ports:
                    assert tables.next_port_matrix[src, dst] == -1
                    assert tables.port_count_matrix[src, dst] == 0
                    continue
                assert tables.next_port_matrix[src, dst] == ports[0]
                assert tables.port_count_matrix[src, dst] == len(ports)
                dense = tables.all_ports_matrix[src, dst]
                assert tuple(dense[: len(ports)]) == ports
                assert (dense[len(ports) :] == -1).all()

    def test_topology_dense_wiring_agrees_with_arcs(self, spec):
        topology, _ = _tables(spec)
        n = topology.n_nodes
        for node in range(n):
            out_arcs = topology.out_arcs(node)
            assert topology.out_degrees[node] == len(out_arcs)
            for port, (arc_index, neighbor) in enumerate(out_arcs):
                assert topology.out_neighbor_matrix[node, port] == neighbor
                input_port = int(topology.dest_input_port_matrix[node, port])
                in_arc_index, source = topology.in_arcs(neighbor)[input_port]
                assert in_arc_index == arc_index
                assert source == node
            in_arcs = topology.in_arcs(node)
            assert topology.in_degrees[node] == len(in_arcs)
            for port, (_, source) in enumerate(in_arcs):
                assert topology.in_source_matrix[node, port] == source

    def test_distance_matrix_is_metric_like(self, spec):
        topology, tables = _tables(spec)
        distance = tables.distance
        n = topology.n_nodes
        assert (np.diag(distance) == 0).all()
        off_diagonal = distance[~np.eye(n, dtype=bool)]
        assert (off_diagonal >= 1).all()
        assert tables.diameter == int(distance.max())
        assert tables.average_distance == pytest.approx(float(off_diagonal.mean()))

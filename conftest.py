"""Repo-level pytest configuration: the ``slow`` marker and asyncio tests.

Tier-1 (the default ``pytest -x -q`` run) stays on reduced grids; tests
marked ``@pytest.mark.slow`` — full Table-I grids, large-network analytical
validation — are skipped unless explicitly requested with ``--runslow`` or
``REPRO_RUN_SLOW=1`` (the env form is what CI's scheduled slow job uses).

Async tests (the decode-service suite) are marked ``@pytest.mark.asyncio``.
CI installs ``pytest-asyncio`` (see requirements-dev.txt) and runs them
through the real plugin in strict mode; on hosts without the plugin a
minimal fallback below runs each marked coroutine via :func:`asyncio.run`
so the suite needs no extra installs to pass locally.
"""

from __future__ import annotations

import asyncio
import inspect
import os

import pytest

try:
    import pytest_asyncio  # noqa: F401

    _HAVE_PYTEST_ASYNCIO = True
except ImportError:
    _HAVE_PYTEST_ASYNCIO = False

if not _HAVE_PYTEST_ASYNCIO:

    @pytest.hookimpl(tryfirst=True)
    def pytest_pyfunc_call(pyfuncitem: pytest.Function):
        """Fallback runner for ``@pytest.mark.asyncio`` coroutines."""
        if pyfuncitem.get_closest_marker("asyncio") is None:
            return None
        func = pyfuncitem.obj
        if not inspect.iscoroutinefunction(func):
            return None
        kwargs = {
            name: pyfuncitem.funcargs[name]
            for name in pyfuncitem._fixtureinfo.argnames
        }
        asyncio.run(func(**kwargs))
        return True


def pytest_addoption(parser: pytest.Parser) -> None:
    parser.addoption(
        "--runslow",
        action="store_true",
        default=False,
        help="run tests marked slow (full-grid Table-I and analytical sweeps)",
    )


def pytest_configure(config: pytest.Config) -> None:
    config.addinivalue_line(
        "markers",
        "slow: full-grid / long-running test, skipped unless --runslow or "
        "REPRO_RUN_SLOW=1",
    )
    config.addinivalue_line(
        "markers",
        "asyncio: coroutine test run by pytest-asyncio (or the local fallback)",
    )


def _slow_enabled(config: pytest.Config) -> bool:
    return config.getoption("--runslow") or os.environ.get("REPRO_RUN_SLOW") == "1"


def pytest_collection_modifyitems(
    config: pytest.Config, items: list[pytest.Item]
) -> None:
    if _slow_enabled(config):
        return
    skip_slow = pytest.mark.skip(reason="slow test: pass --runslow or set REPRO_RUN_SLOW=1")
    for item in items:
        if "slow" in item.keywords:
            item.add_marker(skip_slow)

"""Repo-level pytest configuration: the ``slow`` marker.

Tier-1 (the default ``pytest -x -q`` run) stays on reduced grids; tests
marked ``@pytest.mark.slow`` — full Table-I grids, large-network analytical
validation — are skipped unless explicitly requested with ``--runslow`` or
``REPRO_RUN_SLOW=1`` (the env form is what CI's scheduled slow job uses).
"""

from __future__ import annotations

import os

import pytest


def pytest_addoption(parser: pytest.Parser) -> None:
    parser.addoption(
        "--runslow",
        action="store_true",
        default=False,
        help="run tests marked slow (full-grid Table-I and analytical sweeps)",
    )


def pytest_configure(config: pytest.Config) -> None:
    config.addinivalue_line(
        "markers",
        "slow: full-grid / long-running test, skipped unless --runslow or "
        "REPRO_RUN_SLOW=1",
    )


def _slow_enabled(config: pytest.Config) -> bool:
    return config.getoption("--runslow") or os.environ.get("REPRO_RUN_SLOW") == "1"


def pytest_collection_modifyitems(
    config: pytest.Config, items: list[pytest.Item]
) -> None:
    if _slow_enabled(config):
        return
    skip_slow = pytest.mark.skip(reason="slow test: pass --runslow or set REPRO_RUN_SLOW=1")
    for item in items:
        if "slow" in item.keywords:
            item.add_marker(skip_slow)

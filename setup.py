"""Setup shim.

Metadata lives in ``pyproject.toml``; this file exists only so that legacy
editable installs (``pip install -e . --no-use-pep517``) work on environments
whose setuptools/pip tooling predates PEP 660 editable wheels (e.g. offline
boxes without the ``wheel`` package).
"""

from setuptools import setup

setup()

#!/usr/bin/env python3
"""BER sweeps over the scenario matrix: modulation x channel x quantisation.

Every scenario rides the same :class:`repro.sim.runner.BerRunner` chain —
pick a code family (WiMAX or 802.11n LDPC), a constellation (BPSK, Gray
QPSK or Gray 16-QAM), a channel (AWGN, per-symbol Rayleigh or block
Rayleigh, with perfect-CSI demapping under fading) and optionally the
paper's fixed-point channel-LLR front-end (7-bit/1-frac, symmetric
saturation).  No scenario gets its own simulation loop; only the runner's
arguments change.

Examples::

    python examples/scenario_ber.py                          # defaults
    python examples/scenario_ber.py --modulation qam16 --channel rayleigh \
        --points 6 8 10 12
    python examples/scenario_ber.py --family wifi --rate 5/6 --points 3 4 5
    python examples/scenario_ber.py --quantized --points 2.0 2.5 3.0
"""

from __future__ import annotations

import argparse

from repro.analysis import build_ber_table
from repro.channel import BPSKModulator, QAM16Modulator, QPSKModulator
from repro.ldpc import wifi_ldpc_code, wimax_ldpc_code
from repro.sim import (
    CHANNEL_FACTORIES,
    BatchLayeredDecoder,
    BerRunner,
    QuantizedBatchDecoder,
)

MODULATORS = {
    "bpsk": BPSKModulator,
    "qpsk": QPSKModulator,
    "qam16": QAM16Modulator,
}


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--family", choices=("wimax", "wifi"), default="wimax",
        help="LDPC code family (wimax n=576 or 802.11n n=1944)",
    )
    parser.add_argument("--rate", default="1/2", help="code rate string")
    parser.add_argument(
        "--modulation", choices=sorted(MODULATORS), default="qpsk"
    )
    parser.add_argument(
        "--channel", choices=sorted(CHANNEL_FACTORIES), default="awgn"
    )
    parser.add_argument(
        "--quantized", action="store_true",
        help="round-trip channel LLRs through the 7-bit/1-frac quantiser "
        "and run the layered decoder's internal fixed-point datapath",
    )
    parser.add_argument(
        "--points", type=float, nargs="+", default=[1.5, 2.0, 2.5, 3.0],
        help="Eb/N0 points in dB",
    )
    parser.add_argument("--frames", type=int, default=512)
    parser.add_argument("--batch", type=int, default=64)
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args()

    if args.family == "wifi":
        code = wifi_ldpc_code(1944, args.rate)
    else:
        code = wimax_ldpc_code(576, args.rate)
    decoder = BatchLayeredDecoder(
        code.h, max_iterations=10, fixed_point=args.quantized
    )
    if args.quantized:
        decoder = QuantizedBatchDecoder(decoder)

    runner = BerRunner(
        code,
        decoder,
        MODULATORS[args.modulation](),
        channel=args.channel,
        batch_size=args.batch,
        max_frames=args.frames,
        target_frame_errors=50,
        seed=args.seed,
    )
    title = (
        f"{args.family} {code.describe()}, {args.modulation}, {args.channel}"
        + (", fixed-point" if args.quantized else ", float")
    )
    print(f"Scenario: {title}")
    print(f"(batch {args.batch}, <= {args.frames} frames/point, stop at 50 frame errors)")
    print()
    print(build_ber_table(runner.run(args.points), title=title).render())
    if args.channel != "awgn":
        print()
        print("note: fading points assume perfect CSI at the demapper; at equal "
              "Eb/N0 they sit well above the AWGN curve (diversity loss).")


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""Architecture tour: the structures behind the paper's Figures 1, 2 and 3.

The paper's figures are block diagrams rather than measured data; this example
"reproduces" them by instantiating the corresponding models and printing their
structure: the NoC node (routing element + PE + memory, Fig. 1), the LDPC
decoding core (Fig. 2) and the turbo SISO (Fig. 3), plus the shared-memory
sizing discussed in Section IV-B.

Run with ``python examples/architecture_tour.py``.
"""

from __future__ import annotations

from repro import DecoderSpec, NocDecoderArchitecture
from repro.hw import NocAreaModel, plan_shared_memories
from repro.noc import build_routing_tables


def print_block(title: str, blocks: dict[str, str]) -> None:
    print(title)
    width = max(len(name) for name in blocks)
    for name, description in blocks.items():
        print(f"  {name.ljust(width)} : {description}")
    print()


def main() -> None:
    decoder = NocDecoderArchitecture(DecoderSpec())
    topology = decoder.topology
    tables = build_routing_tables(topology)

    # ------------------------------------------------------------------ #
    # Fig. 1 — node structure and the NoC around it.
    # ------------------------------------------------------------------ #
    print("=" * 72)
    print("Fig. 1 - NoC node structure (RE + PE + MEM)")
    print("=" * 72)
    config = decoder.spec.noc
    crossbar = topology.crossbar_size
    print_block(
        f"Routing element of one node ({topology.name})",
        {
            "crossbar": f"{crossbar} x {crossbar} ports (D = {topology.degree} links + 1 local port)",
            "input FIFOs": f"{crossbar} FIFOs, flit width {config.flit_bits(topology.n_nodes)} bits "
            f"({config.node_architecture.value} architecture)",
            "output registers": f"{crossbar} registers, one per output port",
            "routing": f"{config.routing_algorithm.value} from precomputed shortest-path tables",
            "location memory": "destination address t' of every incoming message",
        },
    )
    print(
        f"network: {topology.n_nodes} nodes, {topology.n_arcs} unidirectional links, "
        f"diameter {tables.diameter}, average distance {tables.average_distance:.2f}"
    )
    noc_area = NocAreaModel().noc_area_mm2(
        topology.n_nodes, crossbar, config, per_node_fifo_depth=4
    )
    print(f"NoC area model (FIFO depth 4): {noc_area:.2f} mm^2 at 90 nm\n")

    # ------------------------------------------------------------------ #
    # Figs. 2 and 3 — the two decoding cores of each PE.
    # ------------------------------------------------------------------ #
    processing_element = decoder.processing_elements()[0]
    structure = processing_element.structure()
    print("=" * 72)
    print("Fig. 2 - LDPC decoding core")
    print("=" * 72)
    print_block("blocks", structure["LDPC decoding core"])

    print("=" * 72)
    print("Fig. 3 - Turbo decoding core (SISO)")
    print("=" * 72)
    print_block("blocks", structure["Turbo decoding core (SISO)"])

    # ------------------------------------------------------------------ #
    # Section IV-B — shared memory sizing.
    # ------------------------------------------------------------------ #
    print("=" * 72)
    print("Section IV-B - shared memories of the SISO / LDPC cores")
    print("=" * 72)
    plan = plan_shared_memories(n_pes=decoder.spec.parallelism)
    print(plan.describe())
    print_block("mapped contents", structure["shared memories"])


if __name__ == "__main__":
    main()

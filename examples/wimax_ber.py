#!/usr/bin/env python3
"""Functional BER simulation of the WiMAX codes supported by the decoder.

The paper's evaluation is architectural (throughput / area / power), but its
algorithmic choices rest on three functional claims:

* the layered normalized-min-sum LDPC decoder loses little versus full BP,
* Max-Log-MAP is adequate for the double-binary turbo code,
* exchanging bit-level instead of symbol-level extrinsic information costs
  about 0.2 dB.

Both code families run through the same :class:`repro.sim.runner.BerRunner`
— frames are encoded, transmitted and decoded in batches, each point stops
once enough frame errors are in, and every estimate comes with a Wilson 95%
confidence interval.  The LDPC sweeps use the batched layered/flooding
decoders; the turbo sweep uses the batched duo-binary BCJR engine
(:class:`repro.sim.turbo_batch.BatchTurboDecoder`).  For a turbo-only sweep
with more knobs see ``examples/wimax_turbo_ber.py``.

Run with ``python examples/wimax_ber.py [--frames N] [--batch B]``.
"""

from __future__ import annotations

import argparse

from repro.analysis import build_ber_table
from repro.ldpc import wimax_ldpc_code
from repro.sim import (
    BatchFloodingDecoder,
    BatchLayeredDecoder,
    BatchTurboDecoder,
    BerRunner,
)
from repro.turbo import TurboEncoder


def ldpc_sweep(code, decoder, ebn0_points, max_frames: int, batch_size: int, seed: int):
    """Run one decoder configuration over a list of Eb/N0 points."""
    runner = BerRunner(
        code,
        decoder,
        batch_size=batch_size,
        max_frames=max_frames,
        target_frame_errors=50,
        seed=seed,
    )
    return runner.run(ebn0_points)


def turbo_ber(
    encoder, ebn0_db: float, frames: int, batch_size: int, seed: int, bit_level: bool
) -> float:
    """BER of the batched turbo decoder with symbol- or bit-level exchange."""
    decoder = BatchTurboDecoder(
        encoder, max_iterations=8, bit_level_exchange=bit_level
    )
    runner = BerRunner(
        encoder,
        decoder,
        batch_size=batch_size,
        max_frames=frames,
        target_frame_errors=None,
        seed=seed,
    )
    return runner.run_point(ebn0_db).ber


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--frames", type=int, default=256, help="max frames per LDPC point"
    )
    parser.add_argument("--batch", type=int, default=64, help="decoder batch size")
    args = parser.parse_args()

    # ------------------------------------------------------------------ #
    # LDPC: layered min-sum (the paper's core) vs two-phase sum-product BP.
    # ------------------------------------------------------------------ #
    code = wimax_ldpc_code(576, "1/2")
    ebn0_points = [1.0, 1.5, 2.0, 2.5]
    print(f"LDPC BER via BerRunner, {code.describe()}")
    print(f"(batch {args.batch}, <= {args.frames} frames/point, stop at 50 frame errors)")
    print()
    layered = ldpc_sweep(
        code,
        BatchLayeredDecoder(code.h, max_iterations=10, fixed_point=True),
        ebn0_points,
        args.frames,
        args.batch,
        seed=1,
    )
    print(build_ber_table(layered, title="layered normalized min-sum, 10 it, fixed-point").render())
    print()
    flooding = ldpc_sweep(
        code,
        BatchFloodingDecoder(code.h, max_iterations=20),
        ebn0_points,
        args.frames,
        args.batch,
        seed=1,
    )
    print(build_ber_table(flooding, title="two-phase sum-product BP, 20 it").render())
    print()
    print("paper claim check: layered reaches comparable BER with half the "
          "iteration budget —")
    for lay, flood in zip(layered, flooding):
        print(
            f"  Eb/N0 {lay.ebn0_db:.1f} dB: layered {lay.avg_iterations:.1f} it "
            f"vs flooding {flood.avg_iterations:.1f} it"
        )
    print()

    # ------------------------------------------------------------------ #
    # Turbo: symbol-level vs bit-level extrinsic exchange (paper: ~0.2 dB),
    # batched through the same runner as the LDPC sweeps above.
    # ------------------------------------------------------------------ #
    turbo_frames = max(16, args.frames // 2)
    encoder = TurboEncoder(n_couples=96)
    print(f"Turbo BER, WiMAX CTC N={encoder.n_couples} couples, rate 1/2, "
          f"{turbo_frames} frames per point (batch {args.batch})")
    print(f"{'Eb/N0 [dB]':>10} | {'symbol-level':>14} | {'bit-level (BTS/STB)':>20}")
    for ebn0 in (1.0, 1.5, 2.0):
        symbol_level = turbo_ber(
            encoder, ebn0, turbo_frames, args.batch, seed=2, bit_level=False
        )
        bit_level = turbo_ber(
            encoder, ebn0, turbo_frames, args.batch, seed=2, bit_level=True
        )
        print(f"{ebn0:>10.1f} | {symbol_level:>14.2e} | {bit_level:>20.2e}")
    print()
    print("note: widen --frames for smoother curves; the Wilson intervals above "
          "say how far to trust each LDPC point.")


if __name__ == "__main__":
    main()

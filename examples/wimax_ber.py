#!/usr/bin/env python3
"""Functional BER simulation of the WiMAX codes supported by the decoder.

The paper's evaluation is architectural (throughput / area / power), but its
algorithmic choices rest on three functional claims:

* the layered normalized-min-sum LDPC decoder loses little versus full BP,
* Max-Log-MAP is adequate for the double-binary turbo code,
* exchanging bit-level instead of symbol-level extrinsic information costs
  about 0.2 dB.

This example runs short Monte-Carlo BER sweeps that exercise those claims on
small WiMAX codes (full-length curves are possible but slow in pure Python —
increase ``--frames`` and the code sizes for publication-quality curves).

Run with ``python examples/wimax_ber.py [--frames N]``.
"""

from __future__ import annotations

import argparse

import numpy as np

from repro.channel import AWGNChannel, BPSKModulator, ErrorRateAccumulator, ebn0_to_noise_sigma
from repro.ldpc import FloodingDecoder, LayeredMinSumDecoder, wimax_ldpc_code
from repro.turbo import TurboDecoder, TurboEncoder


def ldpc_ber(code, decoder_factory, ebn0_db: float, frames: int, seed: int) -> float:
    """BER of one LDPC decoder configuration at one operating point."""
    rng = np.random.default_rng(seed)
    modulator = BPSKModulator()
    sigma = ebn0_to_noise_sigma(ebn0_db, code.rate)
    accumulator = ErrorRateAccumulator()
    decoder = decoder_factory(code)
    for _ in range(frames):
        info = rng.integers(0, 2, code.k)
        codeword = code.encode(info)
        channel = AWGNChannel(sigma, rng)
        llrs = modulator.demodulate_llr(
            channel.transmit(modulator.modulate(codeword)), channel.llr_noise_variance(False)
        )
        accumulator.update(codeword, decoder.decode(llrs).hard_bits)
    return accumulator.report().ber


def turbo_ber(encoder, ebn0_db: float, frames: int, seed: int, bit_level: bool) -> float:
    """BER of the turbo decoder with symbol- or bit-level extrinsic exchange."""
    rng = np.random.default_rng(seed)
    modulator = BPSKModulator()
    sigma = ebn0_to_noise_sigma(ebn0_db, 0.5)
    decoder = TurboDecoder(encoder, max_iterations=8, bit_level_exchange=bit_level)
    accumulator = ErrorRateAccumulator()
    for _ in range(frames):
        info = rng.integers(0, 2, encoder.k)
        channel = AWGNChannel(sigma, rng)
        llrs = modulator.demodulate_llr(
            channel.transmit(modulator.modulate(encoder.encode(info).to_bit_array())),
            channel.llr_noise_variance(False),
        )
        accumulator.update(info, decoder.decode(*decoder.split_llrs(llrs)).hard_bits)
    return accumulator.report().ber


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--frames", type=int, default=30, help="frames per point")
    args = parser.parse_args()
    frames = args.frames

    # ------------------------------------------------------------------ #
    # LDPC: layered min-sum (the paper's core) vs two-phase sum-product BP.
    # ------------------------------------------------------------------ #
    code = wimax_ldpc_code(576, "1/2")
    print(f"LDPC BER, {code.describe()}, {frames} frames per point")
    print(f"{'Eb/N0 [dB]':>10} | {'layered min-sum (10 it)':>24} | {'flooding BP (20 it)':>20}")
    for ebn0 in (1.0, 1.5, 2.0, 2.5):
        layered = ldpc_ber(
            code, lambda c: LayeredMinSumDecoder(c.h, max_iterations=10, fixed_point=True),
            ebn0, frames, seed=1,
        )
        flooding = ldpc_ber(
            code, lambda c: FloodingDecoder(c.h, max_iterations=20), ebn0, frames, seed=1
        )
        print(f"{ebn0:>10.1f} | {layered:>24.2e} | {flooding:>20.2e}")
    print()

    # ------------------------------------------------------------------ #
    # Turbo: symbol-level vs bit-level extrinsic exchange (paper: ~0.2 dB).
    # ------------------------------------------------------------------ #
    encoder = TurboEncoder(n_couples=96)
    print(f"Turbo BER, WiMAX CTC N={encoder.n_couples} couples, rate 1/2, {frames} frames per point")
    print(f"{'Eb/N0 [dB]':>10} | {'symbol-level':>14} | {'bit-level (BTS/STB)':>20}")
    for ebn0 in (1.0, 1.5, 2.0):
        symbol_level = turbo_ber(encoder, ebn0, frames, seed=2, bit_level=False)
        bit_level = turbo_ber(encoder, ebn0, frames, seed=2, bit_level=True)
        print(f"{ebn0:>10.1f} | {symbol_level:>14.2e} | {bit_level:>20.2e}")
    print()
    print("note: with a handful of frames per point these are smoke-level estimates; "
          "increase --frames (and the block sizes) for smooth curves.")


if __name__ == "__main__":
    main()

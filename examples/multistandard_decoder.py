#!/usr/bin/env python3
"""Multi-standard operation: one decoder instance, many codes.

The motivation of the paper is flexibility: a single silicon instance that
covers the *whole* WiMAX code set (all LDPC classes and block lengths plus the
duo-binary turbo code) and, beyond that, any smaller QC-LDPC code (e.g. WiFi)
and any 8-state double-binary turbo code.  This example sweeps a mix of codes
through one decoder instance and reports, for each, the message-passing cycle
count, the achieved throughput and whether the IEEE 802.16e 70 Mb/s
requirement is met.

Run with ``python examples/multistandard_decoder.py``.
"""

from __future__ import annotations

from repro import DecoderSpec, NocDecoderArchitecture, wimax_ldpc_code
from repro.core.throughput import meets_wimax_requirement
from repro.utils import Table


def main() -> None:
    decoder = NocDecoderArchitecture(DecoderSpec(parallelism=24))
    print(decoder.describe())
    print()

    table = Table(
        title="One decoder instance, every supported code (reconfiguration at run time)",
        columns=["code", "info bits", "ncycles", "throughput [Mb/s]", ">= 70 Mb/s"],
    )

    # A representative slice of the WiMAX LDPC code set: every rate class at
    # the largest block length plus the smallest block length at rate 1/2.
    ldpc_codes = [
        wimax_ldpc_code(2304, "1/2"),
        wimax_ldpc_code(2304, "2/3A"),
        wimax_ldpc_code(2304, "3/4B"),
        wimax_ldpc_code(2304, "5/6"),
        wimax_ldpc_code(1248, "1/2"),
        wimax_ldpc_code(576, "1/2"),
    ]
    for code in ldpc_codes:
        evaluation = decoder.evaluate_ldpc(code)
        table.add_row(
            [
                f"LDPC {code.rate_name} n={code.n}",
                code.k,
                evaluation.simulation.ncycles,
                f"{evaluation.throughput_mbps:.1f}",
                "yes" if meets_wimax_requirement(evaluation.throughput_bps) else "no",
            ]
        )

    # WiMAX CTC blocks (couples): the largest frame and two mid-size frames.
    for n_couples in (2400, 960, 480):
        evaluation = decoder.evaluate_turbo(n_couples)
        table.add_row(
            [
                f"DBTC N={n_couples} couples",
                2 * n_couples,
                evaluation.simulation.ncycles,
                f"{evaluation.throughput_mbps:.1f}",
                "yes" if meets_wimax_requirement(evaluation.throughput_bps) else "no",
            ]
        )

    print(table.render())
    print()
    ldpc_eval = decoder.evaluate_ldpc(ldpc_codes[0])
    print(
        "silicon cost of this flexibility (component model): "
        f"{ldpc_eval.area.describe()}"
    )
    print(
        "note: the n=2304 rate-1/2 LDPC code is the heaviest workload per PE "
        "(most stored messages and most traffic per iteration) and therefore "
        "sizes the shared memories and the FIFOs, exactly as reported in the "
        "paper; shorter blocks finish their message-passing phase in fewer "
        "cycles but pay the fixed core latency on fewer information bits."
    )


if __name__ == "__main__":
    main()

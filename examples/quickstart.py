#!/usr/bin/env python3
"""Quickstart: evaluate and use the NoC-based turbo/LDPC decoder in one page.

This walks the paper's WiMAX design case end to end:

1. build the decoder instance of Table II (22 PEs, degree-3 generalized Kautz
   NoC, SSP-FL routing, R = 0.5),
2. map the worst-case WiMAX LDPC code (n = 2304, rate 1/2) onto it, run the
   cycle-accurate message-passing simulation and report throughput / area /
   power (paper eq. (12) and Table III quantities),
3. do the same for the WiMAX turbo code (N = 2400 couples),
4. functionally decode one noisy LDPC frame with the same architecture.

Run with ``python examples/quickstart.py``.
"""

from __future__ import annotations

import numpy as np

from repro import DecoderSpec, NocDecoderArchitecture, wimax_ldpc_code
from repro.channel import AWGNChannel, BPSKModulator, ebn0_to_noise_sigma


def main() -> None:
    # ------------------------------------------------------------------ #
    # 1. The paper's WiMAX design case.
    # ------------------------------------------------------------------ #
    spec = DecoderSpec()  # defaults = Table II operating point
    decoder = NocDecoderArchitecture(spec)
    print(decoder.describe())
    print()

    # ------------------------------------------------------------------ #
    # 2. LDPC mode: worst-case WiMAX code.
    # ------------------------------------------------------------------ #
    code = wimax_ldpc_code(2304, "1/2")
    ldpc = decoder.evaluate_ldpc(code)
    print("LDPC mode,", code.describe())
    print(f"  mapping      : {ldpc.mapping.describe()}")
    print(f"  ncycles      : {ldpc.simulation.ncycles} cycles per iteration")
    print(f"  throughput   : {ldpc.throughput_mbps:.2f} Mb/s @ {spec.ldpc_clock_hz / 1e6:.0f} MHz "
          f"(paper: 72.00 Mb/s)")
    print(f"  area         : {ldpc.area.describe()}")
    print(f"  power        : {ldpc.power.describe()}")
    print()

    # ------------------------------------------------------------------ #
    # 3. Turbo mode: N = 2400 couples (4800 information bits).
    # ------------------------------------------------------------------ #
    turbo = decoder.evaluate_turbo(2400)
    print("Turbo mode,", turbo.code_label)
    print(f"  ncycles      : {turbo.simulation.ncycles} cycles per half-iteration")
    print(f"  throughput   : {turbo.throughput_mbps:.2f} Mb/s @ {spec.turbo_noc_clock_hz / 1e6:.0f} MHz "
          f"NoC clock (paper: 74.26 Mb/s)")
    print(f"  power        : {turbo.power.describe()}  (paper: 59 mW)")
    print()

    # ------------------------------------------------------------------ #
    # 4. Functional decoding of one noisy frame (smaller code for speed).
    # ------------------------------------------------------------------ #
    small = wimax_ldpc_code(576, "1/2")
    rng = np.random.default_rng(0)
    info = rng.integers(0, 2, small.k)
    codeword = small.encode(info)
    modulator = BPSKModulator()
    channel = AWGNChannel(ebn0_to_noise_sigma(2.5, small.rate), rng)
    llrs = modulator.demodulate_llr(
        channel.transmit(modulator.modulate(codeword)), channel.llr_noise_variance(False)
    )
    result = decoder.decode_ldpc_frame(small, llrs)
    errors = int(np.count_nonzero(result.hard_bits != codeword))
    print(
        f"functional decode of one n={small.n} frame at Eb/N0 = 2.5 dB: "
        f"{errors} bit errors after {result.iterations} iterations "
        f"(converged: {result.converged})"
    )


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""Design-space exploration in the style of the paper's Table I.

Sweeps NoC topologies, parallelism degrees and routing algorithms for the
worst-case WiMAX LDPC code (n = 2304, rate 1/2) and prints throughput / NoC
area per design point next to the values published in the paper, followed by
the qualitative trend checks (Kautz wins, D = 3 sweet spot, throughput grows
with P, weak dependence on the routing algorithm).

The full grid of the paper (6 topology groups x 4 parallelisms x 3 routing
algorithms) takes a few minutes in pure Python; pass ``--quick`` to sweep a
representative subset in ~30 s.

Run with ``python examples/table1_sweep.py [--quick]``.
"""

from __future__ import annotations

import argparse
import time

from repro import DecoderSpec, DesignSpaceExplorer, wimax_ldpc_code
from repro.analysis import build_table1, check_table1_trends
from repro.noc import RoutingAlgorithm

FULL_TOPOLOGIES = [
    ("generalized-de-bruijn", 2),
    ("generalized-kautz", 2),
    ("spidergon", 3),
    ("generalized-kautz", 3),
    ("honeycomb", 4),
    ("generalized-kautz", 4),
]
QUICK_TOPOLOGIES = [
    ("generalized-kautz", 2),
    ("spidergon", 3),
    ("generalized-kautz", 3),
]

FULL_PARALLELISMS = [16, 24, 32, 36]
QUICK_PARALLELISMS = [16, 32]


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true", help="sweep a reduced grid")
    args = parser.parse_args()

    topologies = QUICK_TOPOLOGIES if args.quick else FULL_TOPOLOGIES
    parallelisms = QUICK_PARALLELISMS if args.quick else FULL_PARALLELISMS
    algorithms = [RoutingAlgorithm.SSP_RR, RoutingAlgorithm.SSP_FL, RoutingAlgorithm.ASP_FT]

    code = wimax_ldpc_code(2304, "1/2")
    explorer = DesignSpaceExplorer(DecoderSpec(mapping_attempts=2), seed=0)

    print(f"sweeping {len(topologies)} topologies x {parallelisms} x {len(algorithms)} algorithms "
          f"on {code.describe()}")
    start = time.time()
    points = explorer.sweep_ldpc(code, topologies, parallelisms, algorithms)
    elapsed = time.time() - start
    print(f"evaluated {len(points)} design points in {elapsed:.1f} s\n")

    print(build_table1(points).render())
    print()

    print("Trend checks (the claims the paper derives from Table I):")
    for check in check_table1_trends(points):
        status = "PASS" if check.passed else "FAIL"
        print(f"  [{status}] {check.name}: {check.detail}")

    best = explorer.best_point(points, throughput_floor_mbps=70.0)
    print(
        f"\nbest throughput/area point above 70 Mb/s: {best.topology_family} "
        f"D={best.degree} P={best.parallelism} {best.routing_algorithm.value} -> "
        f"{best.cell()} [Mb/s / mm^2]"
    )


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""Decode-as-a-service demo: many concurrent clients, one batching service.

Spawns N asyncio clients that each submit one noisy AWGN frame (mixed WiMAX
LDPC and duo-binary turbo codecs) to a :class:`repro.service.DecodeService`.
The service aggregates compatible requests into dynamic batches under a
latency budget, dispatches them to the batch engines, and answers each
client with its decoded bits plus a queue/decode latency breakdown.  At the
end it prints a metrics snapshot (batch-size histogram, p50/p99 latency,
throughput) and per-codec BER against the transmitted reference bits.

This is a thin CLI wrapper around :mod:`repro.service.demo`; the same entry
point is installed as ``python -m repro.service``.  Try::

    python examples/decode_service_demo.py --requests 100
    python examples/decode_service_demo.py --requests 200 --executor process --shards auto
    python examples/decode_service_demo.py --backpressure reject --max-batch 8
"""

from __future__ import annotations

import sys

from repro.service.demo import main

if __name__ == "__main__":
    sys.exit(main())

#!/usr/bin/env python3
"""Batched Monte-Carlo BER simulation of the WiMAX CTC (turbo) code.

The turbo half of the paper's multi-standard decoder, driven through the
same :class:`repro.sim.runner.BerRunner` that serves the LDPC half: frames
are encoded, modulated, transmitted over AWGN and decoded in batches by
:class:`repro.sim.turbo_batch.BatchTurboDecoder` (vectorised duo-binary
BCJR, per-frame early exit), and every BER/FER estimate comes with a Wilson
95% confidence interval.

Two sweeps reproduce the functional claims behind paper Section IV-B:

* symbol-level extrinsic exchange (3 values per NoC message) versus the
  bit-level BTS/STB path (2 values, ~1/3 payload reduction, ~0.2 dB loss),
* the average iteration count under early exit — the quantity behind the
  architecture's effective turbo throughput.

Run with ``python examples/wimax_turbo_ber.py [--frames N] [--batch B]
[--couples N] [--points EBN0 ...]``.
"""

from __future__ import annotations

import argparse

from repro.analysis import build_ber_table
from repro.sim import BatchTurboDecoder, BerRunner
from repro.turbo import TurboEncoder


def turbo_sweep(
    encoder: TurboEncoder,
    ebn0_points: list[float],
    max_frames: int,
    batch_size: int,
    seed: int,
    bit_level: bool,
    algorithm: str = "max-log",
):
    """One decoder configuration over a list of Eb/N0 points."""
    decoder = BatchTurboDecoder(
        encoder,
        max_iterations=8,
        algorithm=algorithm,
        bit_level_exchange=bit_level,
    )
    runner = BerRunner(
        encoder,
        decoder,
        batch_size=batch_size,
        max_frames=max_frames,
        target_frame_errors=50,
        seed=seed,
    )
    return runner.run(ebn0_points)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--frames", type=int, default=256, help="max frames per point")
    parser.add_argument("--batch", type=int, default=64, help="decoder batch size")
    parser.add_argument(
        "--couples", type=int, default=96,
        help="CTC block size in couples (a standard WiMAX size, e.g. 24..2400)",
    )
    parser.add_argument(
        "--points", type=float, nargs="+", default=[1.0, 1.5, 2.0],
        help="Eb/N0 points in dB",
    )
    args = parser.parse_args()

    encoder = TurboEncoder(n_couples=args.couples)
    print(
        f"WiMAX CTC N={encoder.n_couples} couples (k={encoder.k}, n={encoder.n}), "
        f"rate 1/2, Max-Log-MAP, 8 iterations, batch {args.batch}"
    )
    print(f"(<= {args.frames} frames/point, stop at 50 frame errors)")
    print()

    symbol_level = turbo_sweep(
        encoder, args.points, args.frames, args.batch, seed=2, bit_level=False
    )
    print(build_ber_table(symbol_level, title="symbol-level extrinsic exchange").render())
    print()
    bit_level = turbo_sweep(
        encoder, args.points, args.frames, args.batch, seed=2, bit_level=True
    )
    print(
        build_ber_table(
            bit_level, title="bit-level exchange (BTS/STB, ~1/3 NoC payload)"
        ).render()
    )
    print()
    print("paper claim checks:")
    print("  bit-level exchange costs only a small BER penalty (~0.2 dB):")
    for sym, bit in zip(symbol_level, bit_level):
        print(
            f"    Eb/N0 {sym.ebn0_db:.1f} dB: symbol {sym.ber:.2e} vs bit {bit.ber:.2e}"
        )
    print("  early exit keeps the average iteration count well under the cap of 8:")
    for point in symbol_level:
        print(f"    Eb/N0 {point.ebn0_db:.1f} dB: avg {point.avg_iterations:.1f} it")
    print()
    print("note: widen --frames for smoother curves; the Wilson intervals above "
          "say how far to trust each point.")


if __name__ == "__main__":
    main()

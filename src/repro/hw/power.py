"""Activity-based power model.

The paper reports 415 mW peak power in LDPC mode (300 MHz) and 59 mW in turbo
mode (NoC at 75 MHz, SISOs at 37.5 MHz), attributing the difference to the
lower memory-access rate and lower clock frequency of turbo decoding.  This
model reproduces that mechanism: dynamic power is the sum of

* PE datapath + clock energy, proportional to the number of active PE cycles,
* shared-memory access energy, proportional to the number of word accesses,
* NoC transport energy, proportional to message-hops and flit width,

plus an area-proportional leakage term.  The per-event energies are 90 nm
figures calibrated on the paper's two anchor points.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ModelError
from repro.hw.technology import TECH_90NM, TechnologyNode

#: Energy of one PE datapath cycle (datapath + local clock), pJ.
ENERGY_PER_PE_CYCLE_PJ = 25.0

#: Energy of one shared-memory word access (read or write), pJ.
ENERGY_PER_MEMORY_ACCESS_PJ = 9.0

#: Energy of one message traversing one hop, per flit bit, pJ.
ENERGY_PER_HOP_PER_BIT_PJ = 0.18


@dataclass(frozen=True)
class PowerReport:
    """Dynamic + leakage power of one operating mode."""

    mode: str
    pe_dynamic_mw: float
    memory_dynamic_mw: float
    noc_dynamic_mw: float
    leakage_mw: float

    @property
    def total_mw(self) -> float:
        """Total power consumption in milliwatts."""
        return self.pe_dynamic_mw + self.memory_dynamic_mw + self.noc_dynamic_mw + self.leakage_mw

    def describe(self) -> str:
        """One-line human-readable summary."""
        return (
            f"{self.mode}: {self.total_mw:.0f} mW "
            f"(PE {self.pe_dynamic_mw:.0f}, memory {self.memory_dynamic_mw:.0f}, "
            f"NoC {self.noc_dynamic_mw:.0f}, leakage {self.leakage_mw:.0f})"
        )


class PowerModel:
    """Activity-based power estimation for the NoC decoder."""

    def __init__(self, technology: TechnologyNode = TECH_90NM):
        self.technology = technology

    def estimate(
        self,
        mode: str,
        n_pes: int,
        pe_clock_hz: float,
        frame_duration_s: float,
        memory_accesses_per_frame: float,
        message_hops_per_frame: float,
        flit_bits: int,
        total_area_mm2: float,
        pe_activity: float = 1.0,
    ) -> PowerReport:
        """Estimate the power of one operating mode.

        Parameters
        ----------
        mode:
            Label ("LDPC" / "turbo") carried into the report.
        n_pes:
            Number of processing elements.
        pe_clock_hz:
            Clock frequency of the PEs (SISOs run at half the NoC clock).
        frame_duration_s:
            Time to decode one frame (from the throughput model).
        memory_accesses_per_frame:
            Shared-memory word accesses per decoded frame.
        message_hops_per_frame:
            Sum over messages of hops traversed, per decoded frame.
        flit_bits:
            Width of one message on the network.
        total_area_mm2:
            Decoder area, used for the leakage term.
        pe_activity:
            Fraction of cycles in which a PE datapath is actually active.
        """
        if frame_duration_s <= 0:
            raise ModelError(f"frame_duration_s must be positive, got {frame_duration_s}")
        if n_pes <= 0 or pe_clock_hz <= 0:
            raise ModelError("n_pes and pe_clock_hz must be positive")
        if not 0.0 <= pe_activity <= 1.0:
            raise ModelError(f"pe_activity must be in [0, 1], got {pe_activity}")
        pe_dynamic_w = n_pes * pe_activity * ENERGY_PER_PE_CYCLE_PJ * 1e-12 * pe_clock_hz
        memory_dynamic_w = (
            memory_accesses_per_frame * ENERGY_PER_MEMORY_ACCESS_PJ * 1e-12 / frame_duration_s
        )
        noc_dynamic_w = (
            message_hops_per_frame
            * flit_bits
            * ENERGY_PER_HOP_PER_BIT_PJ
            * 1e-12
            / frame_duration_s
        )
        leakage_w = total_area_mm2 * self.technology.leakage_mw_per_mm2 * 1e-3
        return PowerReport(
            mode=mode,
            pe_dynamic_mw=pe_dynamic_w * 1e3,
            memory_dynamic_mw=memory_dynamic_w * 1e3,
            noc_dynamic_mw=noc_dynamic_w * 1e3,
            leakage_mw=leakage_w * 1e3,
        )

"""CMOS technology nodes and area scaling.

Table III of the paper normalises every competitor's area to a 65 nm process
using quadratic feature-size scaling; the same arithmetic is provided here so
the comparison bench can reproduce the normalised column.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ModelError


@dataclass(frozen=True)
class TechnologyNode:
    """A CMOS process node with the per-bit / per-gate figures used by the models.

    Attributes
    ----------
    feature_nm:
        Drawn feature size in nanometres.
    sram_bit_area_um2:
        Area of one bit of small distributed SRAM including periphery (um^2).
    register_bit_area_um2:
        Area of one flip-flop bit including local routing overhead (um^2).
    gate_area_um2:
        Area of one NAND2-equivalent logic gate (um^2).
    dynamic_energy_pj_per_bit_access:
        Energy of one SRAM bit access (pJ), used by the power model.
    register_energy_pj_per_bit:
        Energy of one register-bit toggle (pJ).
    leakage_mw_per_mm2:
        Leakage power density (mW per mm^2 of standard cells).
    """

    name: str
    feature_nm: float
    sram_bit_area_um2: float
    register_bit_area_um2: float
    gate_area_um2: float
    dynamic_energy_pj_per_bit_access: float
    register_energy_pj_per_bit: float
    leakage_mw_per_mm2: float

    def __post_init__(self) -> None:
        if self.feature_nm <= 0:
            raise ModelError(f"feature size must be positive, got {self.feature_nm}")


#: 90 nm node used by the paper's synthesis; bit/gate areas calibrated so the
#: component counts of the WiMAX design case land on the paper's anchor points.
TECH_90NM = TechnologyNode(
    name="90nm",
    feature_nm=90.0,
    sram_bit_area_um2=14.0,
    register_bit_area_um2=26.0,
    gate_area_um2=4.4,
    dynamic_energy_pj_per_bit_access=0.011,
    register_energy_pj_per_bit=0.004,
    leakage_mw_per_mm2=6.0,
)

#: 65 nm node used for Table III's normalised-area column.
TECH_65NM = TechnologyNode(
    name="65nm",
    feature_nm=65.0,
    sram_bit_area_um2=14.0 * (65.0 / 90.0) ** 2,
    register_bit_area_um2=26.0 * (65.0 / 90.0) ** 2,
    gate_area_um2=4.4 * (65.0 / 90.0) ** 2,
    dynamic_energy_pj_per_bit_access=0.008,
    register_energy_pj_per_bit=0.003,
    leakage_mw_per_mm2=9.0,
)

#: 45 nm node (two of the Table III competitors).
TECH_45NM = TechnologyNode(
    name="45nm",
    feature_nm=45.0,
    sram_bit_area_um2=14.0 * (45.0 / 90.0) ** 2,
    register_bit_area_um2=26.0 * (45.0 / 90.0) ** 2,
    gate_area_um2=4.4 * (45.0 / 90.0) ** 2,
    dynamic_energy_pj_per_bit_access=0.006,
    register_energy_pj_per_bit=0.002,
    leakage_mw_per_mm2=12.0,
)


def scale_area(area_mm2: float, from_nm: float, to_nm: float) -> float:
    """Scale an area figure between technology nodes (quadratic in feature size)."""
    if area_mm2 < 0:
        raise ModelError(f"area must be non-negative, got {area_mm2}")
    if from_nm <= 0 or to_nm <= 0:
        raise ModelError("feature sizes must be positive")
    return area_mm2 * (to_nm / from_nm) ** 2

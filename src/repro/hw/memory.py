"""Shared-memory sizing of the processing cores (paper Section IV-B).

The SISO and the LDPC core of each PE share their internal memories:

* a 7-bit memory sized by the worst-case LDPC workload — one location per
  Tanner-graph edge of the ``n = 2304``, rate-1/2 code (1152 checks of degree
  up to 7) — onto which the turbo mode maps its alpha/beta state metrics
  (8 + 8 metrics for each of the 3 windows of every SISO);
* a 5-bit memory sized by the larger of the turbo branch-metric storage
  (2400 x 4 values of ``lambda_k[c(e)]``) and the LDPC ``R_lk`` storage
  (1152 x 7 values).

The plan is computed for arbitrary code sets so the model also answers
"what if" questions (e.g. WiFi-only LDPC support), but the defaults reproduce
the WiMAX numbers above.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ModelError


@dataclass(frozen=True)
class DecoderMemoryPlan:
    """Sizes of the shared PE memories for a given code set and parallelism.

    All counts are totals across the decoder (the per-PE memories hold
    ``1/P``-th of each).
    """

    n_pes: int
    wide_locations: int
    wide_bits_per_location: int
    narrow_locations: int
    narrow_bits_per_location: int
    #: Individual requirements that produced the sizing (for reporting).
    ldpc_lambda_locations: int
    turbo_state_metric_locations: int
    turbo_branch_locations: int
    ldpc_r_locations: int

    @property
    def total_bits(self) -> int:
        """Total shared-memory capacity in bits."""
        return (
            self.wide_locations * self.wide_bits_per_location
            + self.narrow_locations * self.narrow_bits_per_location
        )

    @property
    def bits_per_pe(self) -> float:
        """Average shared-memory bits per PE."""
        return self.total_bits / self.n_pes

    def describe(self) -> str:
        """Multi-line human-readable summary."""
        return (
            f"shared memories for P={self.n_pes}: "
            f"{self.wide_locations} x {self.wide_bits_per_location}b "
            f"(LDPC lambda {self.ldpc_lambda_locations}, turbo alpha/beta "
            f"{self.turbo_state_metric_locations}) + "
            f"{self.narrow_locations} x {self.narrow_bits_per_location}b "
            f"(turbo branch {self.turbo_branch_locations}, LDPC R {self.ldpc_r_locations}) "
            f"= {self.total_bits} bits"
        )


def plan_shared_memories(
    n_pes: int = 22,
    ldpc_max_checks: int = 1152,
    ldpc_max_check_degree: int = 7,
    turbo_max_couples: int = 2400,
    turbo_windows_per_siso: int = 3,
    trellis_states: int = 8,
    wide_bits: int = 7,
    narrow_bits: int = 5,
) -> DecoderMemoryPlan:
    """Size the shared 7-bit and 5-bit memories for a turbo/LDPC code set.

    Defaults correspond to full WiMAX support with P = 22 PEs, reproducing the
    sizing discussed in the paper.
    """
    if n_pes <= 0:
        raise ModelError(f"n_pes must be positive, got {n_pes}")
    if min(ldpc_max_checks, ldpc_max_check_degree, turbo_max_couples) <= 0:
        raise ModelError("code-set sizing parameters must be positive")
    if min(turbo_windows_per_siso, trellis_states, wide_bits, narrow_bits) <= 0:
        raise ModelError("architecture sizing parameters must be positive")

    # 7-bit memory: incoming LDPC messages (one per edge, worst case degree)
    # versus the turbo alpha/beta state metrics mapped onto the same locations.
    ldpc_lambda_locations = ldpc_max_checks * ldpc_max_check_degree
    turbo_state_metric_locations = n_pes * turbo_windows_per_siso * 2 * trellis_states
    wide_locations = max(ldpc_lambda_locations, turbo_state_metric_locations)

    # 5-bit memory: turbo branch-metric (lambda[c(e)]) storage versus LDPC R storage.
    turbo_branch_locations = turbo_max_couples * 4
    ldpc_r_locations = ldpc_max_checks * ldpc_max_check_degree
    narrow_locations = max(turbo_branch_locations, ldpc_r_locations)

    return DecoderMemoryPlan(
        n_pes=n_pes,
        wide_locations=wide_locations,
        wide_bits_per_location=wide_bits,
        narrow_locations=narrow_locations,
        narrow_bits_per_location=narrow_bits,
        ldpc_lambda_locations=ldpc_lambda_locations,
        turbo_state_metric_locations=turbo_state_metric_locations,
        turbo_branch_locations=turbo_branch_locations,
        ldpc_r_locations=ldpc_r_locations,
    )

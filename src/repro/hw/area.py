"""Component-level area models (90 nm CMOS unless stated otherwise).

Two models are provided:

* :class:`NocAreaModel` — area of the interconnection network alone, which is
  what the paper's Table I reports: per node, the F input FIFOs (sized by the
  *observed* maximum occupancy from the cycle-accurate simulation), the F x F
  crossbar, the output registers, the arbitration / routing control logic and,
  for the PP architecture, the routing table.  Following Table I's convention
  the incoming-message (location) memories and the PEs are *not* included.
* :class:`ProcessingCoreAreaModel` — area of the P processing cores: shared
  7-bit / 5-bit memories (see :mod:`repro.hw.memory`) plus the SISO-exclusive
  and LDPC-exclusive logic, with gate counts calibrated on the paper's
  breakdown (61.8 % / 18.6 % / 19.6 % of a 2.56 mm^2 core for P = 22).

Calibration anchors and the resulting absolute numbers are documented in
EXPERIMENTS.md; relative trends across the design space follow from the
component counts alone.
"""

from __future__ import annotations

from dataclasses import dataclass
from math import ceil, log2

from repro.errors import ModelError
from repro.hw.memory import DecoderMemoryPlan
from repro.hw.technology import TECH_90NM, TechnologyNode
from repro.noc.config import NocConfiguration, NodeArchitecture

#: NAND2-equivalent gate count of one SISO datapath (BMU, ECU, BTS/STB, control).
SISO_LOGIC_GATES = 4900

#: NAND2-equivalent gate count of one LDPC core datapath (MEU, CMP, address generator).
LDPC_CORE_LOGIC_GATES = 5200

#: NAND2-equivalent gate count of one node's arbitration / flow-control logic.
NODE_CONTROL_GATES = 2000

#: Maximum input-FIFO depth of the AP architecture (off-line routing bounds it).
AP_MAX_FIFO_DEPTH = 4

#: Minimum FIFO depth synthesised regardless of observed occupancy.
MIN_FIFO_DEPTH = 2


@dataclass(frozen=True)
class AreaBreakdown:
    """Area figures (mm^2) of one decoder configuration."""

    noc_mm2: float
    core_memory_mm2: float
    siso_logic_mm2: float
    ldpc_logic_mm2: float

    @property
    def core_mm2(self) -> float:
        """Processing-core area (memories + SISO logic + LDPC logic)."""
        return self.core_memory_mm2 + self.siso_logic_mm2 + self.ldpc_logic_mm2

    @property
    def total_mm2(self) -> float:
        """Total decoder area (core + NoC)."""
        return self.core_mm2 + self.noc_mm2

    @property
    def memory_share(self) -> float:
        """Fraction of the core occupied by the shared memories."""
        return self.core_memory_mm2 / self.core_mm2 if self.core_mm2 else 0.0

    @property
    def noc_share(self) -> float:
        """Fraction of the total area occupied by the NoC."""
        return self.noc_mm2 / self.total_mm2 if self.total_mm2 else 0.0

    def describe(self) -> str:
        """One-line human-readable summary."""
        return (
            f"total {self.total_mm2:.2f} mm^2 (core {self.core_mm2:.2f}, "
            f"NoC {self.noc_mm2:.2f} = {self.noc_share:.0%}; memories "
            f"{self.memory_share:.1%} of core)"
        )


class NocAreaModel:
    """Area of the interconnection network (Table I convention).

    Parameters
    ----------
    technology:
        Process node providing per-bit / per-gate areas.
    """

    def __init__(self, technology: TechnologyNode = TECH_90NM):
        self.technology = technology

    def node_area_um2(
        self,
        crossbar_size: int,
        flit_bits: int,
        fifo_depth: int,
        routing_table_entries: int = 0,
    ) -> float:
        """Area of one routing element in um^2.

        Parameters
        ----------
        crossbar_size:
            ``F`` — number of crossbar ports (topology degree + 1).
        flit_bits:
            Width of one buffered message (payload + header + carried location).
        fifo_depth:
            Synthesised depth of each input FIFO.
        routing_table_entries:
            Number of (destination -> port) entries stored locally (PP only).
        """
        if crossbar_size < 2:
            raise ModelError(f"crossbar_size must be >= 2, got {crossbar_size}")
        if flit_bits <= 0 or fifo_depth <= 0:
            raise ModelError("flit_bits and fifo_depth must be positive")
        tech = self.technology
        fifo_area = crossbar_size * fifo_depth * flit_bits * tech.register_bit_area_um2
        output_regs = crossbar_size * flit_bits * tech.register_bit_area_um2
        # Mux-based crossbar: one (F-1):1 multiplexer bit-slice per output port bit.
        crossbar = crossbar_size * (crossbar_size - 1) * flit_bits * tech.gate_area_um2
        control = NODE_CONTROL_GATES * tech.gate_area_um2
        port_bits = max(1, ceil(log2(crossbar_size)))
        routing_table = routing_table_entries * port_bits * tech.sram_bit_area_um2
        return fifo_area + output_regs + crossbar + control + routing_table

    def noc_area_mm2(
        self,
        n_nodes: int,
        crossbar_size: int,
        config: NocConfiguration,
        per_node_fifo_depth: list[int] | int,
    ) -> float:
        """Total NoC area in mm^2 for a simulated configuration.

        ``per_node_fifo_depth`` is either the per-node observed maximum FIFO
        occupancy (from :class:`~repro.noc.simulator.SimulationResult`) or a
        single depth applied to every node.  AP nodes cap the depth at
        :data:`AP_MAX_FIFO_DEPTH` — the off-line routing computation is what
        permits the shallow FIFOs — while PP nodes use the observed value.
        """
        if n_nodes <= 0:
            raise ModelError(f"n_nodes must be positive, got {n_nodes}")
        if isinstance(per_node_fifo_depth, int):
            depths = [per_node_fifo_depth] * n_nodes
        else:
            depths = list(per_node_fifo_depth)
            if len(depths) != n_nodes:
                raise ModelError(
                    f"per_node_fifo_depth has {len(depths)} entries for {n_nodes} nodes"
                )
        flit_bits = config.flit_bits(n_nodes)
        is_pp = config.node_architecture is NodeArchitecture.PP
        routing_entries = n_nodes - 1 if is_pp else 0
        total_um2 = 0.0
        for depth in depths:
            effective_depth = max(MIN_FIFO_DEPTH, depth)
            if not is_pp:
                effective_depth = min(effective_depth, AP_MAX_FIFO_DEPTH)
            total_um2 += self.node_area_um2(
                crossbar_size=crossbar_size,
                flit_bits=flit_bits,
                fifo_depth=effective_depth,
                routing_table_entries=routing_entries,
            )
        return total_um2 / 1.0e6


class ProcessingCoreAreaModel:
    """Area of the P processing cores (PEs) with their shared memories."""

    def __init__(self, technology: TechnologyNode = TECH_90NM):
        self.technology = technology

    def core_area_mm2(self, n_pes: int, memory_plan: DecoderMemoryPlan) -> AreaBreakdown:
        """Core area breakdown (NoC set to zero; combine with :class:`NocAreaModel`)."""
        if n_pes <= 0:
            raise ModelError(f"n_pes must be positive, got {n_pes}")
        tech = self.technology
        memory_mm2 = memory_plan.total_bits * tech.sram_bit_area_um2 / 1.0e6
        siso_mm2 = n_pes * SISO_LOGIC_GATES * tech.gate_area_um2 / 1.0e6
        ldpc_mm2 = n_pes * LDPC_CORE_LOGIC_GATES * tech.gate_area_um2 / 1.0e6
        return AreaBreakdown(
            noc_mm2=0.0,
            core_memory_mm2=memory_mm2,
            siso_logic_mm2=siso_mm2,
            ldpc_logic_mm2=ldpc_mm2,
        )


def decoder_area(
    n_pes: int,
    crossbar_size: int,
    config: NocConfiguration,
    per_node_fifo_depth: list[int] | int,
    memory_plan: DecoderMemoryPlan,
    technology: TechnologyNode = TECH_90NM,
) -> AreaBreakdown:
    """Complete decoder area: processing cores plus NoC."""
    core = ProcessingCoreAreaModel(technology).core_area_mm2(n_pes, memory_plan)
    noc = NocAreaModel(technology).noc_area_mm2(
        n_nodes=n_pes,
        crossbar_size=crossbar_size,
        config=config,
        per_node_fifo_depth=per_node_fifo_depth,
    )
    return AreaBreakdown(
        noc_mm2=noc,
        core_memory_mm2=core.core_memory_mm2,
        siso_logic_mm2=core.siso_logic_mm2,
        ldpc_logic_mm2=core.ldpc_logic_mm2,
    )

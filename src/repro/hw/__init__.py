"""Hardware cost models: area, memory, power and technology scaling.

The paper reports post-synthesis results on a 90 nm CMOS library (Synopsys
Design Compiler).  Synthesis cannot be run here, so this package provides a
component-level model — standard-cell and SRAM bit-area figures multiplied by
component counts derived from the architecture (FIFO depths from simulation,
memory sizes from the code set, crossbar ports from the topology degree) —
calibrated against the anchor points the paper itself publishes (NoC
~0.61 mm², core 2.56 mm², total 3.17 mm², 61.8 % memories).  Trends across the
design space (Table I) follow from the component counts, not from the anchors.
"""

from repro.hw.technology import TechnologyNode, TECH_90NM, TECH_65NM, TECH_45NM, scale_area
from repro.hw.memory import DecoderMemoryPlan, plan_shared_memories
from repro.hw.area import (
    AreaBreakdown,
    NocAreaModel,
    ProcessingCoreAreaModel,
    decoder_area,
)
from repro.hw.power import PowerModel, PowerReport

__all__ = [
    "TechnologyNode",
    "TECH_90NM",
    "TECH_65NM",
    "TECH_45NM",
    "scale_area",
    "DecoderMemoryPlan",
    "plan_shared_memories",
    "AreaBreakdown",
    "NocAreaModel",
    "ProcessingCoreAreaModel",
    "decoder_area",
    "PowerModel",
    "PowerReport",
]

"""Mapping substrate: partitioning codes onto the NoC and building equivalent interleavers.

Reproduces the pre-processing flow of paper Section III-A:

1. build the check adjacency graph of the LDPC code (layered schedule),
2. partition it over the P NoC nodes with a balanced min-cut partitioner
   (:mod:`repro.mapping.partition`, the Metis substitute),
3. derive the *equivalent interleaver* — the ordered per-PE message lists of
   one decoding iteration (:mod:`repro.mapping.ldpc_mapping`),
4. evaluate candidate mappings for length and message-distribution uniformity
   and keep the best (:mod:`repro.mapping.quality`).

Turbo codes use the contiguous block partitioning of
:mod:`repro.mapping.turbo_mapping`, with traffic generated directly from the
CTC permutation.
"""

from repro.mapping.partition import PartitionResult, partition_graph
from repro.mapping.ldpc_mapping import LdpcMapping, map_ldpc_code
from repro.mapping.turbo_mapping import TurboMapping, map_turbo_code
from repro.mapping.quality import MappingQuality, evaluate_traffic_quality

__all__ = [
    "PartitionResult",
    "partition_graph",
    "LdpcMapping",
    "map_ldpc_code",
    "TurboMapping",
    "map_turbo_code",
    "MappingQuality",
    "evaluate_traffic_quality",
]

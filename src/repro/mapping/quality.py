"""Quality metrics for candidate mappings / equivalent interleavers.

The paper's pre-processing framework "checks the produced interleavers for
minimum length and uniform message distribution, selecting the optimal one for
each code-topology couple".  This module provides those two criteria (plus
locality) as a scalar score so the design flow can rank candidate mappings
produced with different partitioner seeds.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.noc.traffic import TrafficPattern


@dataclass(frozen=True)
class MappingQuality:
    """Scalar quality figures of one traffic pattern."""

    #: Largest per-PE emitted message count ("interleaver length" per PE).
    max_node_messages: int
    #: Largest per-PE count of messages that actually enter the network.
    max_network_node_messages: int
    #: Mean per-PE emitted message count.
    mean_node_messages: float
    #: Standard deviation of the per-PE received message counts (uniformity).
    destination_spread: float
    #: Fraction of messages that never enter the network.
    locality: float

    @property
    def score(self) -> float:
        """Lower-is-better scalar used to rank candidate mappings.

        The dominant term is the per-PE *network* message-list length (it
        lower-bounds the injection time and therefore ``ncycles``); the
        received-message spread acts as a tie-breaker, following the
        minimum-length / uniform-distribution selection criteria described in
        the paper.
        """
        return float(self.max_network_node_messages) + 0.1 * self.destination_spread


def evaluate_traffic_quality(traffic: TrafficPattern) -> MappingQuality:
    """Compute the selection metrics of one traffic pattern."""
    emitted = traffic.messages_per_node()
    received = traffic.destination_histogram()
    total = traffic.total_messages
    locality = traffic.local_messages / total if total else 0.0
    network_per_node = [
        sum(1 for dest in node.destinations if dest != node.node)
        for node in traffic.per_node
    ]
    return MappingQuality(
        max_node_messages=int(emitted.max()) if emitted.size else 0,
        max_network_node_messages=max(network_per_node) if network_per_node else 0,
        mean_node_messages=float(emitted.mean()) if emitted.size else 0.0,
        destination_spread=float(received.std()) if received.size else 0.0,
        locality=locality,
    )


def select_best_mapping(qualities: list[MappingQuality]) -> int:
    """Index of the best mapping according to :attr:`MappingQuality.score`."""
    if not qualities:
        raise ValueError("select_best_mapping needs at least one candidate")
    scores = [quality.score for quality in qualities]
    return int(np.argmin(scores))

"""Mapping a turbo code onto the NoC.

Parallel turbo decoding splits the frame into P contiguous windows, one per
SISO/PE.  During a half-iteration every trellis step produces one extrinsic
message that the interleaver sends to the PE owning the permuted position, so
the NoC traffic is the permutation itself restricted to the window
partitioning — no graph partitioning is required (the paper reuses the Turbo
NoC results of [17] for this case).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import MappingError
from repro.noc.traffic import TrafficPattern, traffic_from_permutation
from repro.turbo.ctc_interleaver import CTCInterleaver


@dataclass(frozen=True)
class TurboMapping:
    """A turbo-code-to-NoC mapping (contiguous window partitioning).

    Attributes
    ----------
    n_couples:
        Frame length in couples.
    n_nodes:
        NoC parallelism P (number of SISOs).
    position_owner:
        ``position_owner[k]`` is the PE owning trellis step ``k`` (natural order).
    traffic_forward:
        Traffic of the natural->interleaved half-iteration.
    traffic_backward:
        Traffic of the interleaved->natural half-iteration.
    """

    n_couples: int
    n_nodes: int
    position_owner: np.ndarray
    traffic_forward: TrafficPattern
    traffic_backward: TrafficPattern

    @property
    def window_size(self) -> int:
        """Largest number of couples assigned to one SISO."""
        return int(np.bincount(self.position_owner, minlength=self.n_nodes).max())

    @property
    def locality(self) -> float:
        """Fraction of extrinsic messages that stay on their producing PE."""
        total = self.traffic_forward.total_messages + self.traffic_backward.total_messages
        local = self.traffic_forward.local_messages + self.traffic_backward.local_messages
        return local / total if total else 0.0

    def describe(self) -> str:
        """One-line human-readable summary."""
        return (
            f"Turbo mapping: N={self.n_couples} couples on P={self.n_nodes} SISOs, "
            f"window={self.window_size}, locality={self.locality:.2%}"
        )


def contiguous_partition(n_positions: int, n_nodes: int) -> np.ndarray:
    """Assign positions to PEs in contiguous, nearly equal-sized windows."""
    if n_nodes <= 0:
        raise MappingError(f"n_nodes must be positive, got {n_nodes}")
    if n_positions < n_nodes:
        raise MappingError(
            f"cannot spread {n_positions} positions over {n_nodes} PEs without idle PEs"
        )
    boundaries = np.linspace(0, n_positions, n_nodes + 1).astype(np.int64)
    owner = np.zeros(n_positions, dtype=np.int64)
    for node in range(n_nodes):
        owner[boundaries[node] : boundaries[node + 1]] = node
    return owner


def map_turbo_code(
    n_couples: int,
    n_nodes: int,
    interleaver: CTCInterleaver | None = None,
    label: str = "",
) -> TurboMapping:
    """Build the NoC mapping of a WiMAX CTC frame of ``n_couples`` couples."""
    ctc = interleaver if interleaver is not None else CTCInterleaver.for_block_size(n_couples)
    if ctc.n_couples != n_couples:
        raise MappingError(
            f"interleaver block size {ctc.n_couples} does not match n_couples {n_couples}"
        )
    owner = contiguous_partition(n_couples, n_nodes)
    permutation = ctc.permutation()
    inverse = np.empty_like(permutation)
    inverse[permutation] = np.arange(n_couples, dtype=np.int64)
    base_label = label or f"turbo-N{n_couples}-P{n_nodes}"
    forward = traffic_from_permutation(
        permutation, owner, n_nodes, label=f"{base_label}-forward"
    )
    backward = traffic_from_permutation(
        inverse, owner, n_nodes, label=f"{base_label}-backward"
    )
    return TurboMapping(
        n_couples=n_couples,
        n_nodes=n_nodes,
        position_owner=owner,
        traffic_forward=forward,
        traffic_backward=backward,
    )

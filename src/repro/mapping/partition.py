"""Balanced k-way graph partitioning (Metis substitute).

The paper maps LDPC check nodes onto NoC nodes with the Metis graph
partitioner.  This module provides a self-contained substitute with the same
objective — balanced part sizes, minimum weighted edge cut — built from:

* a breadth-first *region-growing* initial partition (seeded from several
  starting vertices for diversity), and
* a boundary Kernighan–Lin / Fiduccia–Mattheyses style refinement that
  greedily moves boundary vertices to the neighbouring part with the largest
  cut-weight gain while respecting a balance constraint.

Multiple seeded attempts are made and the best cut is kept, which mirrors the
paper's "framework built around the Metis package [that] checks the produced
interleavers ... selecting the optimal one".
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

import numpy as np

from repro.errors import MappingError
from repro.utils.rng import make_rng


@dataclass(frozen=True)
class PartitionResult:
    """Outcome of one partitioning run.

    Attributes
    ----------
    assignment:
        ``assignment[v]`` is the part (NoC node) of vertex ``v``.
    n_parts:
        Number of parts requested.
    cut_weight:
        Total weight of edges whose endpoints lie in different parts.
    part_sizes:
        Number of vertices in each part.
    """

    assignment: np.ndarray
    n_parts: int
    cut_weight: int
    part_sizes: np.ndarray

    @property
    def imbalance(self) -> float:
        """Max part size divided by the ideal (mean) part size."""
        mean = self.part_sizes.mean()
        return float(self.part_sizes.max() / mean) if mean else 1.0


def _build_adjacency(
    n_vertices: int, edges: dict[tuple[int, int], int]
) -> list[list[tuple[int, int]]]:
    adjacency: list[list[tuple[int, int]]] = [[] for _ in range(n_vertices)]
    for (a, b), weight in edges.items():
        if not (0 <= a < n_vertices and 0 <= b < n_vertices):
            raise MappingError(f"edge ({a}, {b}) references a vertex outside [0, {n_vertices})")
        if a == b:
            continue
        adjacency[a].append((b, weight))
        adjacency[b].append((a, weight))
    return adjacency


def _cut_weight(assignment: np.ndarray, edges: dict[tuple[int, int], int]) -> int:
    return sum(w for (a, b), w in edges.items() if assignment[a] != assignment[b])


def _region_growing_initial(
    n_vertices: int,
    adjacency: list[list[tuple[int, int]]],
    n_parts: int,
    vertex_weights: np.ndarray,
    rng: np.random.Generator,
) -> np.ndarray:
    """Grow parts one at a time from BFS frontiers, preferring well-connected vertices."""
    total_weight = float(vertex_weights.sum())
    target = total_weight / n_parts
    assignment = np.full(n_vertices, -1, dtype=np.int64)
    unassigned = set(range(n_vertices))
    for part in range(n_parts):
        if not unassigned:
            break
        remaining_parts = n_parts - part
        remaining_weight = float(vertex_weights[list(unassigned)].sum())
        budget = min(remaining_weight / remaining_parts, target)
        seed_vertex = int(rng.choice(sorted(unassigned)))
        # Grow by repeatedly taking the unassigned vertex with the strongest
        # connection to the current part (BFS frontier as tie-break).
        part_weight = float(vertex_weights[seed_vertex])
        assignment[seed_vertex] = part
        unassigned.discard(seed_vertex)
        connection: dict[int, int] = {}
        frontier: deque[int] = deque([seed_vertex])
        while part_weight < budget and unassigned:
            # Refresh connection strengths from the most recent member.
            while frontier:
                member = frontier.popleft()
                for neighbor, weight in adjacency[member]:
                    if assignment[neighbor] == -1:
                        connection[neighbor] = connection.get(neighbor, 0) + weight
            if connection:
                best = max(connection.items(), key=lambda item: (item[1], -item[0]))[0]
                del connection[best]
            else:
                best = int(rng.choice(sorted(unassigned)))
            assignment[best] = part
            unassigned.discard(best)
            part_weight += float(vertex_weights[best])
            frontier.append(best)
    # Any leftovers (rounding) go to the lightest parts.
    if unassigned:
        loads = np.zeros(n_parts, dtype=np.float64)
        for vertex in range(n_vertices):
            if assignment[vertex] >= 0:
                loads[assignment[vertex]] += vertex_weights[vertex]
        for vertex in sorted(unassigned):
            part = int(np.argmin(loads))
            assignment[vertex] = part
            loads[part] += vertex_weights[vertex]
    return assignment


def _refine(
    assignment: np.ndarray,
    adjacency: list[list[tuple[int, int]]],
    n_parts: int,
    max_passes: int,
    vertex_weights: np.ndarray,
    max_load: float,
) -> np.ndarray:
    """Greedy boundary refinement: move vertices to the part with the best gain."""
    assignment = assignment.copy()
    loads = np.zeros(n_parts, dtype=np.float64)
    n_vertices = assignment.size
    for vertex in range(n_vertices):
        loads[assignment[vertex]] += vertex_weights[vertex]
    for _ in range(max_passes):
        moved = 0
        for vertex in range(n_vertices):
            current = assignment[vertex]
            weight = float(vertex_weights[vertex])
            if loads[current] - weight <= 0:
                continue
            # Connection weight of this vertex towards each part.
            weight_to_part: dict[int, int] = {}
            for neighbor, edge_weight in adjacency[vertex]:
                part = assignment[neighbor]
                weight_to_part[part] = weight_to_part.get(part, 0) + edge_weight
            internal = weight_to_part.get(current, 0)
            best_part = current
            best_gain = 0
            for part, connection in weight_to_part.items():
                if part == current or loads[part] + weight > max_load:
                    continue
                gain = connection - internal
                if gain > best_gain or (gain == best_gain and gain > 0 and part < best_part):
                    best_gain = gain
                    best_part = part
            if best_part != current and best_gain > 0:
                assignment[vertex] = best_part
                loads[current] -= weight
                loads[best_part] += weight
                moved += 1
        if moved == 0:
            break
    return assignment


def _balance(
    assignment: np.ndarray,
    adjacency: list[list[tuple[int, int]]],
    n_parts: int,
    vertex_weights: np.ndarray,
    max_load: float,
) -> np.ndarray:
    """Move vertices out of overweight parts, preferring the least-damaging moves."""
    assignment = assignment.copy()
    loads = np.zeros(n_parts, dtype=np.float64)
    for vertex in range(assignment.size):
        loads[assignment[vertex]] += vertex_weights[vertex]
    for part in range(n_parts):
        guard = 0
        while loads[part] > max_load and guard < assignment.size:
            guard += 1
            members = np.flatnonzero(assignment == part)
            best_vertex = -1
            best_target = -1
            best_cost = None
            for vertex in members:
                weight_to_part: dict[int, int] = {}
                for neighbor, edge_weight in adjacency[vertex]:
                    weight_to_part[assignment[neighbor]] = (
                        weight_to_part.get(assignment[neighbor], 0) + edge_weight
                    )
                internal = weight_to_part.get(part, 0)
                for target in range(n_parts):
                    if target == part:
                        continue
                    if loads[target] + vertex_weights[vertex] > max_load:
                        continue
                    cost = internal - weight_to_part.get(target, 0)
                    if best_cost is None or cost < best_cost:
                        best_cost = cost
                        best_vertex = int(vertex)
                        best_target = target
            if best_vertex < 0:
                break
            assignment[best_vertex] = best_target
            loads[part] -= vertex_weights[best_vertex]
            loads[best_target] += vertex_weights[best_vertex]
    return assignment


def _heavy_edge_matching(
    n_vertices: int,
    adjacency: list[list[tuple[int, int]]],
    vertex_weights: np.ndarray,
    max_vertex_weight: float,
    rng: np.random.Generator,
) -> np.ndarray:
    """Match each vertex with its heaviest unmatched neighbour (Metis-style).

    Returns an array mapping every fine vertex to a coarse vertex id.
    """
    matched = np.full(n_vertices, -1, dtype=np.int64)
    order = rng.permutation(n_vertices)
    coarse_id = 0
    for vertex in order:
        if matched[vertex] >= 0:
            continue
        best_neighbor = -1
        best_weight = 0
        for neighbor, weight in adjacency[vertex]:
            if matched[neighbor] >= 0 or neighbor == vertex:
                continue
            if vertex_weights[vertex] + vertex_weights[neighbor] > max_vertex_weight:
                continue
            if weight > best_weight:
                best_weight = weight
                best_neighbor = neighbor
        matched[vertex] = coarse_id
        if best_neighbor >= 0:
            matched[best_neighbor] = coarse_id
        coarse_id += 1
    return matched


def _coarsen(
    n_vertices: int,
    edges: dict[tuple[int, int], int],
    vertex_weights: np.ndarray,
    fine_to_coarse: np.ndarray,
) -> tuple[int, dict[tuple[int, int], int], np.ndarray]:
    """Collapse matched vertices into coarse vertices, merging parallel edges."""
    n_coarse = int(fine_to_coarse.max()) + 1
    coarse_weights = np.zeros(n_coarse, dtype=np.float64)
    for vertex in range(n_vertices):
        coarse_weights[fine_to_coarse[vertex]] += vertex_weights[vertex]
    coarse_edges: dict[tuple[int, int], int] = {}
    for (a, b), weight in edges.items():
        ca, cb = int(fine_to_coarse[a]), int(fine_to_coarse[b])
        if ca == cb:
            continue
        key = (ca, cb) if ca < cb else (cb, ca)
        coarse_edges[key] = coarse_edges.get(key, 0) + weight
    return n_coarse, coarse_edges, coarse_weights


def _multilevel_partition(
    n_vertices: int,
    edges: dict[tuple[int, int], int],
    n_parts: int,
    vertex_weights: np.ndarray,
    refinement_passes: int,
    max_load: float,
    rng: np.random.Generator,
) -> np.ndarray:
    """Multilevel partitioning: coarsen by heavy-edge matching, partition, refine back up."""
    adjacency = _build_adjacency(n_vertices, edges)
    coarsening_target = max(8 * n_parts, 64)
    if n_vertices <= coarsening_target:
        initial = _region_growing_initial(n_vertices, adjacency, n_parts, vertex_weights, rng)
        return _refine(initial, adjacency, n_parts, refinement_passes, vertex_weights, max_load)

    # Limit coarse vertex weight so the coarse graph stays partitionable.
    max_vertex_weight = max(2.0 * vertex_weights.sum() / coarsening_target, vertex_weights.max())
    fine_to_coarse = _heavy_edge_matching(
        n_vertices, adjacency, vertex_weights, max_vertex_weight, rng
    )
    n_coarse, coarse_edges, coarse_weights = _coarsen(
        n_vertices, edges, vertex_weights, fine_to_coarse
    )
    if n_coarse >= n_vertices or n_coarse < n_parts:
        initial = _region_growing_initial(n_vertices, adjacency, n_parts, vertex_weights, rng)
        return _refine(initial, adjacency, n_parts, refinement_passes, vertex_weights, max_load)

    coarse_assignment = _multilevel_partition(
        n_coarse, coarse_edges, n_parts, coarse_weights, refinement_passes, max_load, rng
    )
    # Project back to the fine graph and refine at this level.
    assignment = coarse_assignment[fine_to_coarse]
    assignment = _refine(
        assignment, adjacency, n_parts, refinement_passes, vertex_weights, max_load
    )
    return assignment


def partition_graph(
    n_vertices: int,
    edges: dict[tuple[int, int], int],
    n_parts: int,
    seed: int = 0,
    attempts: int = 4,
    refinement_passes: int = 8,
    imbalance_tolerance: float = 1.05,
    vertex_weights: np.ndarray | list[int] | None = None,
) -> PartitionResult:
    """Partition a weighted undirected graph into ``n_parts`` balanced parts.

    Parameters
    ----------
    n_vertices:
        Number of vertices (numbered ``0 .. n_vertices-1``).
    edges:
        Mapping ``(a, b) -> weight`` with ``a < b`` (unordered pairs).
    n_parts:
        Number of parts (the NoC parallelism ``P``).
    seed:
        Base RNG seed; each attempt uses ``seed + attempt``.
    attempts:
        Number of independent seeded attempts; the best cut is returned.
    refinement_passes:
        Maximum boundary-refinement passes per attempt.
    imbalance_tolerance:
        Maximum allowed ratio between the heaviest part and the ideal load.
    vertex_weights:
        Optional per-vertex weights used for the balance constraint (e.g. the
        check degrees, so that *messages* per PE are balanced rather than
        check counts).  Unit weights when omitted.
    """
    if n_parts <= 0:
        raise MappingError(f"n_parts must be positive, got {n_parts}")
    if n_vertices < n_parts:
        raise MappingError(
            f"cannot split {n_vertices} vertices into {n_parts} non-empty parts"
        )
    if attempts <= 0:
        raise MappingError(f"attempts must be positive, got {attempts}")
    if vertex_weights is None:
        weights_arr = np.ones(n_vertices, dtype=np.float64)
    else:
        weights_arr = np.asarray(vertex_weights, dtype=np.float64)
        if weights_arr.shape != (n_vertices,):
            raise MappingError(
                f"vertex_weights must have shape ({n_vertices},), got {weights_arr.shape}"
            )
        if weights_arr.min() <= 0:
            raise MappingError("vertex_weights must be strictly positive")
    adjacency = _build_adjacency(n_vertices, edges)
    ideal = float(weights_arr.sum()) / n_parts
    max_load = max(ideal * imbalance_tolerance, float(weights_arr.max()))

    best: PartitionResult | None = None
    best_key: tuple[float, int] | None = None
    for attempt in range(attempts):
        rng = make_rng(seed + attempt)
        if attempt % 2 == 0:
            # Multilevel (Metis-style) attempt: heavy-edge-matching coarsening,
            # partition of the coarse graph, refinement on the way back up.
            refined = _multilevel_partition(
                n_vertices, edges, n_parts, weights_arr, refinement_passes, max_load, rng
            )
        else:
            # Flat attempt: region growing directly on the fine graph.
            initial = _region_growing_initial(
                n_vertices, adjacency, n_parts, weights_arr, rng
            )
            refined = _refine(
                initial, adjacency, n_parts, refinement_passes, weights_arr, max_load
            )
        refined = _balance(refined, adjacency, n_parts, weights_arr, max_load)
        cut = _cut_weight(refined, edges)
        sizes = np.bincount(refined, minlength=n_parts)
        loads = np.zeros(n_parts, dtype=np.float64)
        for vertex in range(n_vertices):
            loads[refined[vertex]] += weights_arr[vertex]
        # Rank candidates by the heaviest part first (it lower-bounds ncycles),
        # then by cut weight.
        key = (float(loads.max()), cut)
        result = PartitionResult(
            assignment=refined, n_parts=n_parts, cut_weight=cut, part_sizes=sizes
        )
        if best_key is None or key < best_key:
            best = result
            best_key = key
    assert best is not None  # attempts >= 1
    return best

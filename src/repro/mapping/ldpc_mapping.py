"""Mapping an LDPC code onto the NoC: partition + equivalent interleaver.

With the layered schedule, each parity check updates the a-posteriori LLR of
each of its variables once per iteration; the updated value is consumed by the
*next* check (in schedule order) connected to the same variable.  Mapping the
checks onto P PEs therefore turns one decoding iteration into a fixed set of
messages — the *equivalent interleaver* of paper Section III-A:

    for every variable v with connected checks c_0 < c_1 < ... < c_{d-1}:
        check c_i's owner sends one message to check c_{(i+1) mod d}'s owner

The per-PE message lists (ordered by the PE's own check processing sequence)
are exactly the traffic the cycle-accurate NoC simulation drains.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import MappingError
from repro.ldpc.hmatrix import ParityCheckMatrix
from repro.ldpc.tanner import TannerGraph
from repro.mapping.partition import PartitionResult, partition_graph
from repro.noc.traffic import NodeTraffic, TrafficPattern


@dataclass(frozen=True)
class LdpcMapping:
    """A complete LDPC-code-to-NoC mapping.

    Attributes
    ----------
    h:
        The parity-check matrix being mapped.
    n_nodes:
        NoC parallelism P.
    check_owner:
        ``check_owner[l]`` is the PE that processes parity check ``l``.
    traffic:
        The equivalent-interleaver traffic of one decoding iteration.
    partition:
        The partitioner output (cut weight, balance) used to build the mapping.
    """

    h: ParityCheckMatrix
    n_nodes: int
    check_owner: np.ndarray
    traffic: TrafficPattern
    partition: PartitionResult

    @property
    def locality(self) -> float:
        """Fraction of messages whose producer and consumer are on the same PE."""
        total = self.traffic.total_messages
        return self.traffic.local_messages / total if total else 0.0

    @property
    def checks_per_node(self) -> np.ndarray:
        """Number of parity checks assigned to each PE."""
        return np.bincount(self.check_owner, minlength=self.n_nodes)

    def worst_case_node_messages(self) -> int:
        """Largest per-PE emitted message count (drives the lower bound on ncycles)."""
        return int(self.traffic.messages_per_node().max())

    def describe(self) -> str:
        """One-line human-readable summary."""
        return (
            f"LDPC mapping: M={self.h.n_rows} checks on P={self.n_nodes} PEs, "
            f"cut={self.partition.cut_weight}, locality={self.locality:.2%}, "
            f"imbalance={self.partition.imbalance:.3f}"
        )


def _next_check_links(h: ParityCheckMatrix) -> list[list[tuple[int, int]]]:
    """For every check, the (variable, next check) pairs it must update.

    ``result[l]`` lists, for each variable ``v`` of check ``l`` (in row order),
    the check that consumes the updated LLR of ``v`` — the successor of ``l``
    in the cyclic schedule order of ``v``'s checks.
    """
    links: list[list[tuple[int, int]]] = [[] for _ in range(h.n_rows)]
    for variable in range(h.n_cols):
        checks = h.col(variable)
        degree = checks.size
        if degree == 0:
            continue
        for position in range(degree):
            current = int(checks[position])
            successor = int(checks[(position + 1) % degree])
            links[current].append((variable, successor))
    return links


def build_equivalent_interleaver(
    h: ParityCheckMatrix,
    check_owner: np.ndarray,
    n_nodes: int,
    label: str = "",
) -> TrafficPattern:
    """Derive the per-PE ordered message lists from H and a check->PE assignment.

    Each PE emits its messages in the order it processes its checks (ascending
    check index) and, within a check, in the row's variable order — matching
    the sequential LDPC core of paper Fig. 2.  The destination memory location
    is the within-destination-PE index of the consuming (check, variable) edge.
    """
    owner = np.asarray(check_owner, dtype=np.int64)
    if owner.shape != (h.n_rows,):
        raise MappingError(
            f"check_owner must have one entry per check ({h.n_rows}), got {owner.shape}"
        )
    if owner.size and (owner.min() < 0 or owner.max() >= n_nodes):
        raise MappingError(f"check_owner references PEs outside [0, {n_nodes})")

    links = _next_check_links(h)
    # Destination memory location: index of the (consumer check, variable) slot
    # within the consumer PE's incoming-message memory.
    slot_counter = np.zeros(n_nodes, dtype=np.int64)
    slot_of_edge: dict[tuple[int, int], int] = {}
    checks_by_node: list[list[int]] = [[] for _ in range(n_nodes)]
    for check in range(h.n_rows):
        checks_by_node[int(owner[check])].append(check)
    for node in range(n_nodes):
        for check in checks_by_node[node]:
            for variable in h.row(check):
                slot_of_edge[(check, int(variable))] = int(slot_counter[node])
                slot_counter[node] += 1

    destinations: list[list[int]] = [[] for _ in range(n_nodes)]
    locations: list[list[int]] = [[] for _ in range(n_nodes)]
    for node in range(n_nodes):
        for check in checks_by_node[node]:
            for variable, consumer in links[check]:
                destinations[node].append(int(owner[consumer]))
                locations[node].append(slot_of_edge[(consumer, variable)])
    per_node = tuple(
        NodeTraffic(
            node=node,
            destinations=tuple(destinations[node]),
            memory_locations=tuple(locations[node]),
        )
        for node in range(n_nodes)
    )
    return TrafficPattern(n_nodes=n_nodes, per_node=per_node, label=label)


def _structured_assignments(n_checks: int, n_nodes: int) -> dict[str, np.ndarray]:
    """Candidate check->PE assignments that exploit the QC structure directly.

    For quasi-cyclic codes the simple round-robin assignment (check index
    modulo P) often aligns with the circulant structure and yields excellent
    locality when P divides the expansion factor; the contiguous assignment is
    the natural choice for codes with banded H.  Both are cheap to generate
    and compete with the graph-partitioned candidate in the selection step.
    """
    indices = np.arange(n_checks, dtype=np.int64)
    return {
        "round-robin": indices % n_nodes,
        "contiguous": (indices * n_nodes) // n_checks,
    }


def _partition_from_assignment(
    assignment: np.ndarray, n_nodes: int, edges: dict[tuple[int, int], int]
) -> PartitionResult:
    cut = sum(w for (a, b), w in edges.items() if assignment[a] != assignment[b])
    sizes = np.bincount(assignment, minlength=n_nodes)
    return PartitionResult(
        assignment=assignment, n_parts=n_nodes, cut_weight=cut, part_sizes=sizes
    )


def map_ldpc_code(
    h: ParityCheckMatrix,
    n_nodes: int,
    seed: int = 0,
    attempts: int = 4,
    label: str = "",
) -> LdpcMapping:
    """Map an LDPC code over ``n_nodes`` PEs and build its traffic pattern.

    This is steps 1-3 of the paper's design flow: check adjacency graph,
    Metis-style partitioning, equivalent-interleaver construction — followed
    by the selection step: several candidate mappings (graph-partitioned and
    QC-structured) are generated and the one with the best length/uniformity
    score (see :mod:`repro.mapping.quality`) is kept.
    """
    # Imported here to avoid a circular import (quality -> traffic only).
    from repro.mapping.quality import evaluate_traffic_quality

    if n_nodes <= 0:
        raise MappingError(f"n_nodes must be positive, got {n_nodes}")
    if n_nodes > h.n_rows:
        raise MappingError(
            f"cannot spread {h.n_rows} checks over {n_nodes} PEs without idle PEs"
        )
    graph = TannerGraph(h).check_adjacency_graph()
    traffic_label = label or f"ldpc-M{h.n_rows}-P{n_nodes}"

    candidates: list[tuple[PartitionResult, TrafficPattern]] = []
    partitioned = partition_graph(
        n_vertices=h.n_rows,
        edges=graph.weights,
        n_parts=n_nodes,
        seed=seed,
        attempts=attempts,
        # Balance the number of *messages* per PE (one per Tanner edge), not
        # the number of checks, so no PE becomes the injection bottleneck.
        vertex_weights=h.row_degrees(),
    )
    candidates.append(
        (
            partitioned,
            build_equivalent_interleaver(h, partitioned.assignment, n_nodes, traffic_label),
        )
    )
    for assignment in _structured_assignments(h.n_rows, n_nodes).values():
        candidates.append(
            (
                _partition_from_assignment(assignment, n_nodes, graph.weights),
                build_equivalent_interleaver(h, assignment, n_nodes, traffic_label),
            )
        )

    scores = [evaluate_traffic_quality(traffic).score for _, traffic in candidates]
    best_index = int(np.argmin(scores))
    partition, traffic = candidates[best_index]
    return LdpcMapping(
        h=h,
        n_nodes=n_nodes,
        check_owner=partition.assignment,
        traffic=traffic,
        partition=partition,
    )

"""Exception hierarchy for the :mod:`repro` package.

All library-specific errors derive from :class:`ReproError` so callers can
catch every failure raised by this package with a single ``except`` clause
while still being able to discriminate the precise failure mode.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class of every exception raised by the :mod:`repro` package."""


class ConfigurationError(ReproError):
    """A configuration object is inconsistent or out of the supported range."""


class BackendUnavailableError(ConfigurationError):
    """A registered array backend's optional dependency is not installed.

    Raised when a *known* backend name (``cupy``, ``torch``, ``numba``) is
    selected on a host without the corresponding package.  Distinct from the
    plain :class:`ConfigurationError` an *unknown* name raises, so callers
    (and the differential test suite) can skip cleanly instead of failing.
    """


class CodeDefinitionError(ReproError):
    """A channel-code definition (LDPC H matrix, turbo trellis, ...) is invalid."""


class TopologyError(ReproError):
    """A NoC topology request cannot be satisfied (bad size, degree, ...)."""


class RoutingError(ReproError):
    """Routing-table construction or on-line routing failed."""


class MappingError(ReproError):
    """Partitioning a code onto a NoC, or interleaver generation, failed."""


class SimulationError(ReproError):
    """The cycle-accurate simulation reached an inconsistent state."""


class DecodingError(ReproError):
    """Functional decoding failed (dimension mismatch, non-binary input, ...)."""


class ModelError(ReproError):
    """A hardware (area/power/memory) model was queried outside its domain."""


class ServiceError(ReproError):
    """Base class of every failure raised by the decode service layer."""


class RequestValidationError(ServiceError):
    """A decode request carried a malformed payload (shape, dtype, NaN, ...)."""


class UnknownCodecError(ServiceError):
    """A decode request named a code family / block size / rate nobody serves."""


class ServiceOverloadError(ServiceError):
    """The service rejected a request because its queue bound was reached.

    ``retry_after_s`` is the service's estimate of when a queue slot will
    open (the pending batch's flush deadline) — clients in reject mode
    should back off at least this long before retrying.
    """

    def __init__(self, message: str, retry_after_s: float = 0.0):
        super().__init__(message)
        self.retry_after_s = float(retry_after_s)


class ServiceClosedError(ServiceError):
    """A request was submitted to a service that is not running."""


class DeadlineExceededError(ServiceError):
    """A request's deadline expired before its decoded bits were delivered.

    Raised (or resolved into the caller's future) whenever a per-request
    deadline passes — while waiting for a queue slot, while queued for a
    batch, or while the batch is decoding.  ``deadline_s`` is the budget the
    caller asked for.
    """

    def __init__(self, message: str, deadline_s: float | None = None):
        super().__init__(message)
        self.deadline_s = deadline_s


class RetryExhaustedError(ServiceError):
    """Every decode attempt within the bounded retry budget failed.

    ``attempts`` is how many dispatches were tried; ``__cause__`` carries the
    last underlying failure (a crash, watchdog timeout or decode exception).
    """

    def __init__(self, message: str, attempts: int = 0):
        super().__init__(message)
        self.attempts = attempts


class WorkerCrashError(ServiceError):
    """A decode worker died mid-batch (or a fault plan simulated it doing so).

    On the process path real crashes surface as
    :class:`concurrent.futures.process.BrokenProcessPool`; this type is the
    executor-agnostic equivalent the fault injector raises on thread and
    inline paths so the same supervision logic can be exercised without
    killing the host process.
    """


class InjectedFaultError(ServiceError):
    """A fault plan asked the decode path to raise (the ``error`` fault kind)."""

"""Exception hierarchy for the :mod:`repro` package.

All library-specific errors derive from :class:`ReproError` so callers can
catch every failure raised by this package with a single ``except`` clause
while still being able to discriminate the precise failure mode.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class of every exception raised by the :mod:`repro` package."""


class ConfigurationError(ReproError):
    """A configuration object is inconsistent or out of the supported range."""


class CodeDefinitionError(ReproError):
    """A channel-code definition (LDPC H matrix, turbo trellis, ...) is invalid."""


class TopologyError(ReproError):
    """A NoC topology request cannot be satisfied (bad size, degree, ...)."""


class RoutingError(ReproError):
    """Routing-table construction or on-line routing failed."""


class MappingError(ReproError):
    """Partitioning a code onto a NoC, or interleaver generation, failed."""


class SimulationError(ReproError):
    """The cycle-accurate simulation reached an inconsistent state."""


class DecodingError(ReproError):
    """Functional decoding failed (dimension mismatch, non-binary input, ...)."""


class ModelError(ReproError):
    """A hardware (area/power/memory) model was queried outside its domain."""

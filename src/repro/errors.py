"""Exception hierarchy for the :mod:`repro` package.

All library-specific errors derive from :class:`ReproError` so callers can
catch every failure raised by this package with a single ``except`` clause
while still being able to discriminate the precise failure mode.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class of every exception raised by the :mod:`repro` package."""


class ConfigurationError(ReproError):
    """A configuration object is inconsistent or out of the supported range."""


class CodeDefinitionError(ReproError):
    """A channel-code definition (LDPC H matrix, turbo trellis, ...) is invalid."""


class TopologyError(ReproError):
    """A NoC topology request cannot be satisfied (bad size, degree, ...)."""


class RoutingError(ReproError):
    """Routing-table construction or on-line routing failed."""


class MappingError(ReproError):
    """Partitioning a code onto a NoC, or interleaver generation, failed."""


class SimulationError(ReproError):
    """The cycle-accurate simulation reached an inconsistent state."""


class DecodingError(ReproError):
    """Functional decoding failed (dimension mismatch, non-binary input, ...)."""


class ModelError(ReproError):
    """A hardware (area/power/memory) model was queried outside its domain."""


class ServiceError(ReproError):
    """Base class of every failure raised by the decode service layer."""


class RequestValidationError(ServiceError):
    """A decode request carried a malformed payload (shape, dtype, NaN, ...)."""


class UnknownCodecError(ServiceError):
    """A decode request named a code family / block size / rate nobody serves."""


class ServiceOverloadError(ServiceError):
    """The service rejected a request because its queue bound was reached.

    ``retry_after_s`` is the service's estimate of when a queue slot will
    open (the pending batch's flush deadline) — clients in reject mode
    should back off at least this long before retrying.
    """

    def __init__(self, message: str, retry_after_s: float = 0.0):
        super().__init__(message)
        self.retry_after_s = float(retry_after_s)


class ServiceClosedError(ServiceError):
    """A request was submitted to a service that is not running."""

"""Bit-level helper functions.

These helpers operate either on Python integers or on NumPy arrays of 0/1
values (dtype ``int8``/``int64``), which is the representation used throughout
the encoder and decoder substrates.
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

from repro.errors import DecodingError


def int_to_bits(value: int, width: int, msb_first: bool = True) -> np.ndarray:
    """Convert a non-negative integer to an array of ``width`` bits.

    Parameters
    ----------
    value:
        Non-negative integer to convert.
    width:
        Number of bits in the result.  ``value`` must fit in ``width`` bits.
    msb_first:
        When true (default) the most significant bit is placed first.

    Returns
    -------
    numpy.ndarray
        Array of shape ``(width,)`` and dtype ``int8`` containing 0/1 values.
    """
    if value < 0:
        raise DecodingError(f"int_to_bits expects a non-negative value, got {value}")
    if width <= 0:
        raise DecodingError(f"int_to_bits expects a positive width, got {width}")
    if value >= (1 << width):
        raise DecodingError(f"value {value} does not fit in {width} bits")
    bits = np.array([(value >> i) & 1 for i in range(width)], dtype=np.int8)
    if msb_first:
        bits = bits[::-1]
    return bits


def bits_to_int(bits: Sequence[int] | np.ndarray, msb_first: bool = True) -> int:
    """Convert a sequence of 0/1 values to the corresponding integer."""
    arr = np.asarray(bits, dtype=np.int64)
    if arr.ndim != 1:
        raise DecodingError("bits_to_int expects a one-dimensional bit sequence")
    if arr.size and (arr.min() < 0 or arr.max() > 1):
        raise DecodingError("bits_to_int expects only 0/1 values")
    if not msb_first:
        arr = arr[::-1]
    value = 0
    for bit in arr.tolist():
        value = (value << 1) | int(bit)
    return value


def bytes_to_bits(data: bytes) -> np.ndarray:
    """Expand a byte string into a bit array, MSB of each byte first."""
    if not data:
        return np.zeros(0, dtype=np.int8)
    as_ints = np.frombuffer(data, dtype=np.uint8)
    return np.unpackbits(as_ints).astype(np.int8)


def bits_to_bytes(bits: Sequence[int] | np.ndarray) -> bytes:
    """Pack a bit array (length multiple of 8) into bytes, MSB first."""
    arr = np.asarray(bits, dtype=np.uint8)
    if arr.size % 8 != 0:
        raise DecodingError("bits_to_bytes requires a bit count that is a multiple of 8")
    return np.packbits(arr).tobytes()


def hamming_weight(bits: Sequence[int] | np.ndarray) -> int:
    """Number of ones in a bit sequence."""
    arr = np.asarray(bits, dtype=np.int64)
    return int(arr.sum())


def hamming_distance(a: Sequence[int] | np.ndarray, b: Sequence[int] | np.ndarray) -> int:
    """Number of positions in which two equal-length bit sequences differ."""
    arr_a = np.asarray(a, dtype=np.int64)
    arr_b = np.asarray(b, dtype=np.int64)
    if arr_a.shape != arr_b.shape:
        raise DecodingError(
            f"hamming_distance requires equal shapes, got {arr_a.shape} and {arr_b.shape}"
        )
    return int(np.count_nonzero(arr_a != arr_b))


def parity(bits: Iterable[int]) -> int:
    """Even parity (XOR reduction) of a bit sequence."""
    acc = 0
    for bit in bits:
        acc ^= int(bit) & 1
    return acc

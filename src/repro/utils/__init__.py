"""Small shared utilities used across the :mod:`repro` package.

The sub-modules are intentionally dependency-free (NumPy only) so that every
substrate package (:mod:`repro.ldpc`, :mod:`repro.noc`, ...) can rely on them
without creating import cycles.
"""

from repro.utils.bitops import (
    bits_to_int,
    bits_to_bytes,
    bytes_to_bits,
    hamming_distance,
    hamming_weight,
    int_to_bits,
    parity,
)
from repro.utils.validation import (
    check_in_range,
    check_positive,
    check_power_of_two,
    check_probability,
    check_type,
)
from repro.utils.tables import Table, format_float, format_ratio_cell
from repro.utils.rng import DeflectionStreams, bounded_draw, make_rng, spawn_rngs

__all__ = [
    "bits_to_int",
    "bits_to_bytes",
    "bytes_to_bits",
    "hamming_distance",
    "hamming_weight",
    "int_to_bits",
    "parity",
    "check_in_range",
    "check_positive",
    "check_power_of_two",
    "check_probability",
    "check_type",
    "Table",
    "format_float",
    "format_ratio_cell",
    "DeflectionStreams",
    "bounded_draw",
    "make_rng",
    "spawn_rngs",
]

"""Deterministic random-number-generation helpers.

Every stochastic component of the library (AWGN channel, random information
bits, tie-breaking in the partitioner, SCM random output-port selection)
receives an explicit :class:`numpy.random.Generator`.  These helpers create
such generators from integer seeds so experiments are reproducible bit-for-bit.
"""

from __future__ import annotations

import random

import numpy as np


def make_rng(seed: int | None = 0) -> np.random.Generator:
    """Create a :class:`numpy.random.Generator` from an integer seed.

    ``None`` yields an OS-entropy-seeded generator (only useful interactively;
    library code and benchmarks always pass an explicit seed).
    """
    return np.random.default_rng(seed)


def bounded_draw(getrandbits, n: int) -> int:
    """Uniform integer in ``[0, n)`` by rejection over ``n.bit_length()`` bits.

    This is the NoC simulators' *defined* deflection-draw algorithm, written
    against :meth:`random.Random.getrandbits` (Mersenne Twister, reproducible
    across Python versions).  Both the object reference simulator and the
    struct-of-arrays engine consume bits through this exact procedure — the
    engine inlines it in its hot loop — so their deflection streams coincide
    bit for bit for a given seed.
    """
    k = n.bit_length()
    r = getrandbits(k)
    while r >= n:
        r = getrandbits(k)
    return r


class DeflectionStreams:
    """Counter-based per-job deflection-draw streams for the batched NoC kernel.

    The batched cycle kernel (:class:`repro.noc.engine_batch.BatchedNocKernel`)
    advances J independent simulations in lockstep, but each job's SCM
    deflection randomness is *defined* as the scalar engines' stream: one
    ``random.Random(seed)`` per job, consumed through :func:`bounded_draw` in
    (cycle, node, serving-position) order.

    This class reproduces those streams from pregenerated blocks of raw
    Mersenne-Twister output.  CPython's ``getrandbits(k)`` for ``k <= 32``
    returns the top ``k`` bits of the next 32-bit MT word, and one
    ``getrandbits(32 * N)`` call packs ``N`` successive words little-endian —
    so a block decodes into the exact word sequence the scalar engines consume
    (every deflection draw uses ``k <= 3`` bits: the fan-out of the paper's
    topologies).  Each job then advances a plain integer cursor (the
    *counter*) through its word list, which is several times cheaper than a
    ``getrandbits`` call per attempt and keeps the streams bit-identical per
    job no matter how the batch interleaves them.  ``draw_counts`` tallies the
    completed draws per job so differential tests can assert stream-consumption
    parity with the scalar engines.
    """

    #: 32-bit MT words pregenerated per refill of one job's stream.
    CHUNK = 2048

    def __init__(self, seeds):
        self._rngs = [random.Random(seed) for seed in seeds]
        self._words: list[list[int]] = [[] for _ in seeds]
        self._cursors = [0] * len(seeds)
        self.draw_counts = [0] * len(seeds)

    def _refill(self, job: int) -> int:
        """Extend job's word list; drops the consumed prefix, returns cursor 0.

        Called only when the cursor has reached the end of the list, so the
        whole list is consumed and memory stays bounded at one block per job.
        The list object is mutated in place (callers hold references to it).
        """
        words = self._words[job]
        del words[:]
        block = self._rngs[job].getrandbits(32 * self.CHUNK)
        raw = block.to_bytes(4 * self.CHUNK, "little")
        words.extend(np.frombuffer(raw, dtype="<u4").astype(np.int64).tolist())
        return 0

    def draw(self, job: int, n: int) -> int:
        """Uniform integer in ``[0, n)`` from job ``job``'s stream.

        Bit-identical to ``bounded_draw(random.Random(seed_job).getrandbits,
        n)`` at the same point of the stream, for ``n < 2**32``.
        """
        shift = 32 - n.bit_length()
        words = self._words[job]
        cursor = self._cursors[job]
        while True:
            if cursor == len(words):
                cursor = self._refill(job)
            r = words[cursor] >> shift
            cursor += 1
            if r < n:
                break
        self._cursors[job] = cursor
        self.draw_counts[job] += 1
        return r


def spawn_rngs(seed: int, count: int) -> list[np.random.Generator]:
    """Derive ``count`` statistically independent generators from one seed.

    Uses :class:`numpy.random.SeedSequence` spawning, which guarantees
    independence between children regardless of how many draws each makes.
    """
    if count < 0:
        raise ValueError(f"count must be non-negative, got {count}")
    seq = np.random.SeedSequence(seed)
    return [np.random.default_rng(child) for child in seq.spawn(count)]

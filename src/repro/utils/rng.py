"""Deterministic random-number-generation helpers.

Every stochastic component of the library (AWGN channel, random information
bits, tie-breaking in the partitioner, SCM random output-port selection)
receives an explicit :class:`numpy.random.Generator`.  These helpers create
such generators from integer seeds so experiments are reproducible bit-for-bit.
"""

from __future__ import annotations

import numpy as np


def make_rng(seed: int | None = 0) -> np.random.Generator:
    """Create a :class:`numpy.random.Generator` from an integer seed.

    ``None`` yields an OS-entropy-seeded generator (only useful interactively;
    library code and benchmarks always pass an explicit seed).
    """
    return np.random.default_rng(seed)


def bounded_draw(getrandbits, n: int) -> int:
    """Uniform integer in ``[0, n)`` by rejection over ``n.bit_length()`` bits.

    This is the NoC simulators' *defined* deflection-draw algorithm, written
    against :meth:`random.Random.getrandbits` (Mersenne Twister, reproducible
    across Python versions).  Both the object reference simulator and the
    struct-of-arrays engine consume bits through this exact procedure — the
    engine inlines it in its hot loop — so their deflection streams coincide
    bit for bit for a given seed.
    """
    k = n.bit_length()
    r = getrandbits(k)
    while r >= n:
        r = getrandbits(k)
    return r


def spawn_rngs(seed: int, count: int) -> list[np.random.Generator]:
    """Derive ``count`` statistically independent generators from one seed.

    Uses :class:`numpy.random.SeedSequence` spawning, which guarantees
    independence between children regardless of how many draws each makes.
    """
    if count < 0:
        raise ValueError(f"count must be non-negative, got {count}")
    seq = np.random.SeedSequence(seed)
    return [np.random.default_rng(child) for child in seq.spawn(count)]

"""Deterministic random-number-generation helpers.

Every stochastic component of the library (AWGN channel, random information
bits, tie-breaking in the partitioner, SCM random output-port selection)
receives an explicit :class:`numpy.random.Generator`.  These helpers create
such generators from integer seeds so experiments are reproducible bit-for-bit.
"""

from __future__ import annotations

import random

import numpy as np


def make_rng(seed: int | None = 0) -> np.random.Generator:
    """Create a :class:`numpy.random.Generator` from an integer seed.

    ``None`` yields an OS-entropy-seeded generator (only useful interactively;
    library code and benchmarks always pass an explicit seed).
    """
    return np.random.default_rng(seed)


def bounded_draw(getrandbits, n: int) -> int:
    """Uniform integer in ``[0, n)`` by rejection over ``n.bit_length()`` bits.

    This is the NoC simulators' *defined* deflection-draw algorithm, written
    against :meth:`random.Random.getrandbits` (Mersenne Twister, reproducible
    across Python versions).  Both the object reference simulator and the
    struct-of-arrays engine consume bits through this exact procedure — the
    engine inlines it in its hot loop — so their deflection streams coincide
    bit for bit for a given seed.
    """
    k = n.bit_length()
    r = getrandbits(k)
    while r >= n:
        r = getrandbits(k)
    return r


class DeflectionStreams:
    """Counter-based per-job deflection-draw streams for the batched NoC kernel.

    The batched cycle kernel (:class:`repro.noc.engine_batch.BatchedNocKernel`)
    advances J independent simulations in lockstep, but each job's SCM
    deflection randomness is *defined* as the scalar engines' stream: one
    ``random.Random(seed)`` per job, consumed through :func:`bounded_draw` in
    (cycle, node, serving-position) order.

    This class reproduces those streams from pregenerated blocks of raw
    Mersenne-Twister output.  CPython's ``getrandbits(k)`` for ``k <= 32``
    returns the top ``k`` bits of the next 32-bit MT word, and one
    ``getrandbits(32 * N)`` call packs ``N`` successive words little-endian —
    so a block decodes into the exact word sequence the scalar engines consume
    regardless of the block size ``N`` (every deflection draw uses ``k <= 3``
    bits: the fan-out of the paper's topologies).  All jobs' word blocks live
    in one ``(J, chunk)`` NumPy matrix, and each job advances a plain integer
    cursor (the *counter*) through its row; blocks are generated lazily, so
    jobs that never draw (every DCM run) cost nothing.

    Draws come in two bit-identical flavours:

    * :meth:`draw` — one scalar draw from one job's stream;
    * :meth:`draw_batch` — one draw from each of several *distinct* jobs at
      once, with the rejection loop vectorized across jobs.  Jobs are
      independent streams, so the job axis is embarrassingly parallel; within
      a job the caller sequences its calls in stream order (the batched
      kernel's resume rounds do exactly that).

    ``draw_counts`` (an ``int64`` array, one slot per job) tallies the
    completed draws per job so differential tests can assert
    stream-consumption parity with the scalar engines.
    """

    #: Default number of 32-bit MT words pregenerated per refill of one job's
    #: stream.  Any chunk size yields the same word stream (blocks concatenate
    #: seamlessly); tests shrink it to force draws across block boundaries.
    CHUNK = 2048

    def __init__(self, seeds, chunk: int | None = None):
        self.chunk = int(chunk if chunk is not None else self.CHUNK)
        if self.chunk <= 0:
            raise ValueError(f"chunk must be positive, got {self.chunk}")
        self._rngs = [random.Random(seed) for seed in seeds]
        # Cursor == chunk marks an exhausted (or never-generated) block; the
        # word matrix is materialized on the first refill so DCM batches pay
        # neither the generation nor the memory.
        self._words: np.ndarray | None = None
        self._cursors = np.full(len(self._rngs), self.chunk, dtype=np.int64)
        self.draw_counts = np.zeros(len(self._rngs), dtype=np.int64)

    def _refill(self, job: int) -> np.ndarray:
        """Regenerate job's word block in place and reset its cursor.

        Called only when the cursor has reached the end of the block, so the
        whole block is consumed and memory stays bounded at one block per job.
        Returns the (shared) word matrix.
        """
        words = self._words
        if words is None:
            words = self._words = np.zeros((len(self._rngs), self.chunk), dtype=np.int64)
        block = self._rngs[job].getrandbits(32 * self.chunk)
        raw = block.to_bytes(4 * self.chunk, "little")
        words[job] = np.frombuffer(raw, dtype="<u4")
        self._cursors[job] = 0
        return words

    def draw(self, job: int, n: int) -> int:
        """Uniform integer in ``[0, n)`` from job ``job``'s stream.

        Bit-identical to ``bounded_draw(random.Random(seed_job).getrandbits,
        n)`` at the same point of the stream, for ``n < 2**32``.
        """
        shift = 32 - n.bit_length()
        chunk = self.chunk
        cursor = int(self._cursors[job])
        words = self._words
        row = None if words is None else words[job]
        while True:
            if cursor == chunk:
                row = self._refill(job)[job]
                cursor = 0
            r = int(row[cursor]) >> shift
            cursor += 1
            if r < n:
                break
        self._cursors[job] = cursor
        self.draw_counts[job] += 1
        return r

    def draw_batch(
        self,
        jobs: np.ndarray,
        bounds: np.ndarray,
        shifts: np.ndarray | None = None,
    ) -> np.ndarray:
        """One uniform integer in ``[0, bounds[i])`` per job of ``jobs``, at once.

        ``jobs`` must be *distinct* (one pending draw per stream): each job's
        cursor advances by however many words its own rejection loop consumed,
        exactly as a sequence of scalar :meth:`draw` calls would, so the
        result is bit-identical per job — element ``i`` equals
        ``self.draw(jobs[i], bounds[i])`` no matter how the batch interleaves
        the underlying word reads.  The first rejection-sampling attempt is
        one vectorized gather across all jobs (most draws accept immediately:
        the acceptance probability is at least 1/2); the rejected few retry
        with plain integer word walks.

        ``shifts`` optionally supplies the precomputed per-draw word shifts
        ``32 - bounds[i].bit_length()`` (hot callers keep them in a lookup
        table); it is derived from ``bounds`` when omitted.
        """
        if not isinstance(jobs, np.ndarray):
            jobs = np.asarray(jobs, dtype=np.int64)
        if not isinstance(bounds, np.ndarray):
            bounds = np.asarray(bounds, dtype=np.int64)
        if shifts is None:
            # bit_length via frexp (exact for bounds < 2**53): n = m * 2**e
            # with m in [0.5, 1), so e is exactly n.bit_length().
            shifts = 32 - np.frexp(bounds.astype(np.float64))[1]
        cursors, chunk = self._cursors, self.chunk
        cur = cursors[jobs]
        words = self._words
        try:
            # A cursor at the block end would index one past its row: block
            # boundaries are rare (one in ``chunk`` words), so the fast path
            # simply attempts the gather and refills only on the exception
            # (also raised on the very first draw, when no block exists yet).
            out = words[jobs, cur] >> shifts
        except (IndexError, TypeError):
            for job in jobs[cur == chunk].tolist():
                words = self._refill(job)
            cur = cursors[jobs]
            out = words[jobs, cur] >> shifts
        cursors[jobs] = cur + 1
        rejected = out >= bounds
        if rejected.any():
            for i in np.flatnonzero(rejected).tolist():
                job = int(jobs[i])
                n = int(bounds[i])
                shift = int(shifts[i])
                cursor = int(cursors[job])
                row = words[job]
                while True:
                    if cursor == chunk:
                        row = self._refill(job)[job]
                        cursor = 0
                    r = int(row[cursor]) >> shift
                    cursor += 1
                    if r < n:
                        break
                cursors[job] = cursor
                out[i] = r
        self.draw_counts[jobs] += 1
        return out


def spawn_rngs(seed: int, count: int) -> list[np.random.Generator]:
    """Derive ``count`` statistically independent generators from one seed.

    Uses :class:`numpy.random.SeedSequence` spawning, which guarantees
    independence between children regardless of how many draws each makes.
    """
    if count < 0:
        raise ValueError(f"count must be non-negative, got {count}")
    seq = np.random.SeedSequence(seed)
    return [np.random.default_rng(child) for child in seq.spawn(count)]

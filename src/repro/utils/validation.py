"""Argument-validation helpers.

The public API of the library validates user-facing arguments eagerly and
raises :class:`repro.errors.ConfigurationError` with an actionable message.
These helpers keep that validation terse and uniform.
"""

from __future__ import annotations

from typing import Any

from repro.errors import ConfigurationError


def check_type(name: str, value: Any, expected: type | tuple[type, ...]) -> Any:
    """Raise unless ``value`` is an instance of ``expected``; return ``value``."""
    if not isinstance(value, expected):
        expected_names = (
            expected.__name__
            if isinstance(expected, type)
            else " or ".join(t.__name__ for t in expected)
        )
        raise ConfigurationError(
            f"{name} must be of type {expected_names}, got {type(value).__name__}"
        )
    return value


def check_positive(name: str, value: float, strict: bool = True) -> float:
    """Raise unless ``value`` is positive (``>= 0`` when ``strict`` is false)."""
    if strict and not value > 0:
        raise ConfigurationError(f"{name} must be > 0, got {value}")
    if not strict and value < 0:
        raise ConfigurationError(f"{name} must be >= 0, got {value}")
    return value


def check_in_range(
    name: str,
    value: float,
    low: float,
    high: float,
    inclusive: bool = True,
) -> float:
    """Raise unless ``low <= value <= high`` (strict bounds when not inclusive)."""
    if inclusive:
        if not (low <= value <= high):
            raise ConfigurationError(f"{name} must be in [{low}, {high}], got {value}")
    else:
        if not (low < value < high):
            raise ConfigurationError(f"{name} must be in ({low}, {high}), got {value}")
    return value


def check_probability(name: str, value: float) -> float:
    """Raise unless ``value`` lies in the closed interval [0, 1]."""
    return check_in_range(name, value, 0.0, 1.0, inclusive=True)


def check_power_of_two(name: str, value: int) -> int:
    """Raise unless ``value`` is a positive power of two."""
    if value <= 0 or (value & (value - 1)) != 0:
        raise ConfigurationError(f"{name} must be a positive power of two, got {value}")
    return value

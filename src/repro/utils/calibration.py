"""Measured-cost calibration primitives shared by the schedulers.

Two schedulers in this codebase make the same kind of decision: *is the
fancier execution strategy worth it for this workload?*  The NoC sweep
scheduler (:mod:`repro.noc.sweep`) picks scalar vs job-batched engines and
decides whether a process pool amortizes; the decode service
(:mod:`repro.service`) decides when to shard decode batches across worker
processes.  Both decisions rest on the same machinery, extracted here:

* :func:`best_time` — best-of-``repeats`` wall-clock timing of a probe
  callable (the minimum is the standard noise-robust estimator for
  CPU-bound probes),
* :class:`PiecewiseLinearCost` — a measured cost curve over workload sizes,
  interpolated piecewise-linearly between probe samples because neither
  engine family's cost is affine (the NoC kernel kinks at its
  vectorized-resume threshold; batched decoders kink where early exits stop
  amortizing),
* :func:`pool_amortizes` — the spin-up rule: never pay for a process pool
  when the projected serial time undercuts the pool's own startup cost.
* :func:`watchdog_timeout_s` — turn a calibrated cost curve into a hang
  watchdog: a batch that takes a large multiple of its *measured* decode
  cost is wedged, not slow, and should be timed out and re-dispatched.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable

from repro.errors import ConfigurationError

__all__ = [
    "POOL_SPINUP_S",
    "WATCHDOG_FLOOR_S",
    "WATCHDOG_MARGIN",
    "PiecewiseLinearCost",
    "best_time",
    "pool_amortizes",
    "watchdog_timeout_s",
]

#: Order-of-magnitude cost of spinning up a process pool and pickling the
#: first round of tasks.  Workloads projected to finish serially faster than
#: this never pay for a pool.
POOL_SPINUP_S = 0.25


def best_time(fn: Callable[[], object], repeats: int = 2) -> float:
    """Best-of-``repeats`` wall-clock seconds of one call to ``fn``."""
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


@dataclass(frozen=True)
class PiecewiseLinearCost:
    """A measured cost curve ``workload size -> seconds``.

    ``samples`` holds ascending ``(size, measured seconds)`` probe points.
    :meth:`cost` interpolates piecewise-linearly between them and
    extrapolates the outermost segment upward.  Below the first sample the
    cost scales *proportionally* from it instead of extrapolating the first
    segment downward — a noisy super-linear first segment would otherwise
    project negative (i.e. bogusly winning) costs for tiny workloads.
    """

    samples: tuple[tuple[int, float], ...]

    def __post_init__(self) -> None:
        if not self.samples:
            raise ConfigurationError("a cost curve needs at least one probe sample")
        sizes = [size for size, _ in self.samples]
        if any(size <= 0 for size in sizes):
            raise ConfigurationError(f"probe sizes must be positive, got {sizes}")
        if sorted(set(sizes)) != sizes:
            raise ConfigurationError(
                f"probe sizes must be strictly ascending, got {sizes}"
            )

    def cost(self, size: int) -> float:
        """Projected seconds for a workload of ``size`` items."""
        samples = self.samples
        j0, t0 = samples[0]
        if size <= j0 or len(samples) == 1:
            return t0 * size / j0
        lo, hi = samples[0], samples[1]
        for nxt in samples[2:]:
            if size <= hi[0]:
                break
            lo, hi = hi, nxt
        (j0, t0), (j1, t1) = lo, hi
        slope = (t1 - t0) / (j1 - j0)
        return t0 + slope * (size - j0)

    def per_item(self, size: int) -> float:
        """Projected amortized seconds per item at workload size ``size``."""
        return self.cost(size) / size


def pool_amortizes(
    projected_serial_s: float, spinup_s: float = POOL_SPINUP_S
) -> bool:
    """Whether a process pool is worth spinning up for this much serial work."""
    return projected_serial_s >= spinup_s


#: Watchdog margin over the calibrated decode cost.  Decode cost varies with
#: channel quality (early exits) and host load by small factors; a batch
#: exceeding this multiple of its measured worst-case cost is wedged.
WATCHDOG_MARGIN = 25.0

#: Watchdog floor: never time a batch out faster than this, whatever the
#: curve says — sub-second timers just race the OS scheduler.
WATCHDOG_FLOOR_S = 0.5


def watchdog_timeout_s(
    curve: PiecewiseLinearCost,
    size: int,
    margin: float = WATCHDOG_MARGIN,
    floor_s: float = WATCHDOG_FLOOR_S,
) -> float:
    """Hang-watchdog timeout for a batch of ``size`` items on this cost curve.

    The calibration probes use random (never-converging) LLRs, so
    ``curve.cost(size)`` already upper-bounds real traffic; ``margin``
    covers host jitter and executor queueing on top of that.
    """
    if margin <= 0.0:
        raise ConfigurationError(f"watchdog margin must be > 0, got {margin}")
    return max(floor_s, margin * curve.cost(size))

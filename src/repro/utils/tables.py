"""Plain-text table rendering used by the analysis layer and the benchmarks.

The benchmark harness prints tables with the same rows/columns as the paper's
Tables I-III; this module provides a tiny, dependency-free renderer so the
output is readable both in a terminal and in ``bench_output.txt``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Sequence


def format_float(value: float, digits: int = 2) -> str:
    """Format a float with a fixed number of decimals, stripping NaN/inf noise."""
    if value != value:  # NaN
        return "n/a"
    if value in (float("inf"), float("-inf")):
        return "inf" if value > 0 else "-inf"
    return f"{value:.{digits}f}"


def format_ratio_cell(throughput_mbps: float, area_mm2: float, digits: int = 2) -> str:
    """Format a ``throughput/area`` cell in the style of the paper's Table I."""
    return f"{format_float(throughput_mbps, digits)}/{format_float(area_mm2, digits)}"


@dataclass
class Table:
    """Minimal monospace table: a title, a header row and data rows."""

    title: str
    columns: Sequence[str]
    rows: list[list[str]] = field(default_factory=list)

    def add_row(self, cells: Iterable[object]) -> None:
        """Append a row; cells are converted to ``str`` and must match the header."""
        row = [str(cell) for cell in cells]
        if len(row) != len(self.columns):
            raise ValueError(
                f"row has {len(row)} cells but the table has {len(self.columns)} columns"
            )
        self.rows.append(row)

    def _widths(self) -> list[int]:
        widths = [len(col) for col in self.columns]
        for row in self.rows:
            for idx, cell in enumerate(row):
                widths[idx] = max(widths[idx], len(cell))
        return widths

    def render(self) -> str:
        """Render the table as a monospace string with a rule under the header."""
        widths = self._widths()
        header = " | ".join(col.ljust(widths[i]) for i, col in enumerate(self.columns))
        rule = "-+-".join("-" * w for w in widths)
        lines = [self.title, "=" * max(len(self.title), len(header)), header, rule]
        for row in self.rows:
            lines.append(" | ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
        return "\n".join(lines)

    def __str__(self) -> str:  # pragma: no cover - convenience
        return self.render()

"""Check-node arithmetic shared by the LDPC decoders and the PE model.

The paper's LDPC core (Fig. 2) extracts the first two minima of the incoming
``|Q|`` magnitudes sequentially in the Minimum Extraction Unit (MEU) and uses
the normalized-min-sum approximation of eq. (11).  The same arithmetic is used
by the functional decoders here so that the cycle-accurate PE model and the
bit-true decoder agree by construction.

These are the scalar (one check at a time) reference implementations; the
batch engine uses the vectorised twins in :mod:`repro.sim.kernels`, which are
property-tested to match :func:`min_sum_check_update` bit-for-bit.
"""

from __future__ import annotations

import numpy as np

from repro.errors import DecodingError


def first_two_minima(values: np.ndarray) -> tuple[float, float, int]:
    """Return ``(min1, min2, argmin1)`` of a one-dimensional array.

    ``min2`` is the smallest value excluding the single element at
    ``argmin1`` (it equals ``min1`` when the minimum is not unique), which is
    exactly what the MEU computes with one comparison per incoming message.
    """
    arr = np.asarray(values, dtype=np.float64)
    if arr.ndim != 1 or arr.size < 2:
        raise DecodingError("first_two_minima needs a 1-D array with at least 2 values")
    argmin1 = int(np.argmin(arr))
    min1 = float(arr[argmin1])
    mask = np.ones(arr.size, dtype=bool)
    mask[argmin1] = False
    min2 = float(arr[mask].min())
    return min1, min2, argmin1


def min_sum_check_update(
    q_values: np.ndarray,
    scaling: float = 0.75,
) -> np.ndarray:
    """Normalized-min-sum check-node update (paper eq. (11)).

    Parameters
    ----------
    q_values:
        Variable-to-check messages ``Q_{lk}`` for every edge of one check.
    scaling:
        Normalisation factor ``sigma <= 1``.

    Returns
    -------
    numpy.ndarray
        Check-to-variable messages ``R_{lk}^{new}`` for every edge, i.e.
        ``-delta'_{lk} * min_{n != k} |Q_{ln}|`` with
        ``delta'_{lk} = sigma * prod_{n != k} sgn(Q_{ln})``.

    Notes
    -----
    The sign of a message is its IEEE-754 sign *bit* (``np.signbit``), so
    ``-0.0`` counts as negative.  An ``arr < 0`` test would instead depend
    on *how* an exactly-zero magnitude was produced (``-0.0`` vs ``0.0``),
    and the vectorised twins in :mod:`repro.sim.kernels` — pinned
    bit-identical to this function — use the same convention.
    """
    q = np.asarray(q_values, dtype=np.float64)
    if q.ndim != 1 or q.size < 2:
        raise DecodingError("min_sum_check_update needs at least two edge messages")
    magnitudes = np.abs(q)
    signs = np.where(np.signbit(q), -1.0, 1.0)
    min1, min2, argmin1 = first_two_minima(magnitudes)
    total_sign = float(np.prod(signs))
    # Magnitude seen by edge k is min over the *other* edges: min2 for the
    # edge holding the global minimum, min1 for every other edge.
    result_magnitudes = np.full(q.size, min1)
    result_magnitudes[argmin1] = min2
    # Sign seen by edge k excludes its own sign.
    result_signs = total_sign * signs  # dividing by +-1 == multiplying
    return scaling * result_signs * result_magnitudes


def hard_decision(llrs: np.ndarray) -> np.ndarray:
    """Map LLRs to hard bits with the convention ``LLR >= 0 -> bit 0``."""
    arr = np.asarray(llrs, dtype=np.float64)
    return (arr < 0).astype(np.int8)

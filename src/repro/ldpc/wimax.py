"""IEEE 802.16e (WiMAX) QC-LDPC code class.

WiMAX defines six code classes (rates 1/2, 2/3A, 2/3B, 3/4A, 3/4B and 5/6)
over a common 24-block-column QC structure.  Codeword lengths range from
576 to 2304 bits in 19 steps, obtained by expanding the rate's base matrix
with ``z = n / 24`` (24 <= z <= 96 in steps of 4).  Base-matrix shifts are
specified for ``z0 = 96`` and scaled to smaller ``z`` by flooring
(``floor(s * z / 96)``) for every class except 2/3A, which uses ``s mod z``.

The rate-1/2, n = 2304 code (1152 checks of degree 6/7) is the paper's
worst-case design driver; its base matrix below follows the standard.  The
other classes follow the standard's structure (dimensions, dual-diagonal
parity part, degree profile); see DESIGN.md §7 for the reproduction caveat.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache

import numpy as np

from repro.errors import CodeDefinitionError
from repro.ldpc.encoder import LDPCEncoder
from repro.ldpc.hmatrix import ParityCheckMatrix
from repro.ldpc.qc import QCBaseMatrix, scale_shift

#: Code rates supported by IEEE 802.16e LDPC.
WIMAX_CODE_RATES: tuple[str, ...] = ("1/2", "2/3A", "2/3B", "3/4A", "3/4B", "5/6")

#: Valid expansion factors (z = n/24): 24, 28, ..., 96.
WIMAX_EXPANSION_FACTORS: tuple[int, ...] = tuple(range(24, 100, 4))

#: Number of block columns shared by every WiMAX base matrix.
WIMAX_BLOCK_COLUMNS = 24

_X = -1  # readability alias for the all-zero block marker

# --------------------------------------------------------------------------- #
# Base matrices, defined for z0 = 96 (shift values in [0, 96) or -1).
# --------------------------------------------------------------------------- #
_BASE_RATE_1_2 = [
    [_X, 94, 73, _X, _X, _X, _X, _X, 55, 83, _X, _X, 7, 0, _X, _X, _X, _X, _X, _X, _X, _X, _X, _X],
    [_X, 27, _X, _X, _X, 22, 79, 9, _X, _X, _X, 12, _X, 0, 0, _X, _X, _X, _X, _X, _X, _X, _X, _X],
    [_X, _X, _X, 24, 22, 81, _X, 33, _X, _X, _X, 0, _X, _X, 0, 0, _X, _X, _X, _X, _X, _X, _X, _X],
    [61, _X, 47, _X, _X, _X, _X, _X, 65, 25, _X, _X, _X, _X, _X, 0, 0, _X, _X, _X, _X, _X, _X, _X],
    [_X, _X, 39, _X, _X, _X, 84, _X, _X, 41, 72, _X, _X, _X, _X, _X, 0, 0, _X, _X, _X, _X, _X, _X],
    [_X, _X, _X, _X, 46, 40, _X, 82, _X, _X, _X, 79, 0, _X, _X, _X, _X, 0, 0, _X, _X, _X, _X, _X],
    [_X, _X, 95, 53, _X, _X, _X, _X, _X, 14, 18, _X, _X, _X, _X, _X, _X, _X, 0, 0, _X, _X, _X, _X],
    [_X, 11, 73, _X, _X, _X, 2, _X, _X, 47, _X, _X, _X, _X, _X, _X, _X, _X, _X, 0, 0, _X, _X, _X],
    [12, _X, _X, _X, 83, 24, _X, 43, _X, _X, _X, 51, _X, _X, _X, _X, _X, _X, _X, _X, 0, 0, _X, _X],
    [_X, _X, _X, _X, _X, 94, _X, 59, _X, _X, 70, 72, _X, _X, _X, _X, _X, _X, _X, _X, _X, 0, 0, _X],
    [_X, _X, 7, 65, _X, _X, _X, _X, 39, 49, _X, _X, _X, _X, _X, _X, _X, _X, _X, _X, _X, _X, 0, 0],
    [43, _X, _X, _X, _X, 66, _X, 41, _X, _X, _X, 26, 7, _X, _X, _X, _X, _X, _X, _X, _X, _X, _X, 0],
]

_BASE_RATE_2_3A = [
    [3, 0, _X, _X, 2, 0, _X, 3, 7, _X, 1, 1, _X, _X, _X, _X, 1, 0, _X, _X, _X, _X, _X, _X],
    [_X, _X, 1, _X, 36, _X, _X, 34, 10, _X, _X, 18, 2, _X, 3, 0, _X, 0, 0, _X, _X, _X, _X, _X],
    [_X, _X, 12, 2, _X, 15, _X, 40, _X, 3, _X, 15, _X, 2, 13, _X, _X, _X, 0, 0, _X, _X, _X, _X],
    [_X, _X, 19, 24, _X, 3, 0, _X, 6, _X, 17, _X, _X, _X, 8, 39, _X, _X, _X, 0, 0, _X, _X, _X],
    [20, _X, 6, _X, _X, 10, 29, _X, _X, 28, _X, 14, _X, 38, _X, _X, 0, _X, _X, _X, 0, 0, _X, _X],
    [_X, _X, 10, _X, 28, 20, _X, _X, 8, _X, 36, _X, 9, _X, 21, 45, _X, _X, _X, _X, _X, 0, 0, _X],
    [35, 25, _X, 37, _X, 21, _X, _X, 5, _X, _X, 0, _X, 4, 20, _X, _X, _X, _X, _X, _X, _X, 0, 0],
    [_X, 6, 6, _X, _X, _X, 4, _X, 14, 30, _X, 3, 36, _X, 14, _X, 1, _X, _X, _X, _X, _X, _X, 0],
]

_BASE_RATE_2_3B = [
    [2, _X, 19, _X, 47, _X, 48, _X, 36, _X, 82, _X, 47, _X, 15, _X, 95, 0, _X, _X, _X, _X, _X, _X],
    [_X, 69, _X, 88, _X, 33, _X, 3, _X, 16, _X, 37, _X, 40, _X, 48, _X, 0, 0, _X, _X, _X, _X, _X],
    [10, _X, 86, _X, 62, _X, 28, _X, 85, _X, 16, _X, 34, _X, 73, _X, _X, _X, 0, 0, _X, _X, _X, _X],
    [_X, 28, _X, 32, _X, 81, _X, 27, _X, 88, _X, 5, _X, 56, _X, 37, _X, _X, _X, 0, 0, _X, _X, _X],
    [23, _X, 29, _X, 15, _X, 30, _X, 66, _X, 24, _X, 50, _X, 62, _X, _X, _X, _X, _X, 0, 0, _X, _X],
    [_X, 30, _X, 65, _X, 54, _X, 14, _X, 0, _X, 30, _X, 74, _X, 0, _X, _X, _X, _X, _X, 0, 0, _X],
    [32, _X, 0, _X, 15, _X, 56, _X, 85, _X, 5, _X, 6, _X, 52, _X, 0, _X, _X, _X, _X, _X, 0, 0],
    [_X, 0, _X, 47, _X, 13, _X, 61, _X, 84, _X, 55, _X, 78, _X, 41, 95, _X, _X, _X, _X, _X, _X, 0],
]

_BASE_RATE_3_4A = [
    [6, 38, 3, 93, _X, _X, _X, 30, 70, _X, 86, _X, 37, 38, 4, 11, _X, 46, 48, 0, _X, _X, _X, _X],
    [62, 94, 19, 84, _X, 92, 78, _X, 15, _X, _X, 92, _X, 45, 24, 32, 30, _X, _X, 0, 0, _X, _X, _X],
    [71, _X, 55, _X, 12, 66, 45, 79, _X, 78, _X, _X, 10, _X, 22, 55, 70, 82, _X, _X, 0, 0, _X, _X],
    [38, 61, _X, 66, 9, 73, 47, 64, _X, 39, 61, 43, _X, _X, _X, _X, 95, 32, 0, _X, _X, 0, 0, _X],
    [_X, _X, _X, _X, 32, 52, 55, 80, 95, 22, 6, 51, 24, 90, 44, 20, _X, _X, _X, _X, _X, _X, 0, 0],
    [_X, 63, 31, 88, 20, _X, _X, _X, 6, 40, 56, 16, 71, 53, _X, _X, 27, 26, 48, _X, _X, _X, _X, 0],
]

_BASE_RATE_3_4B = [
    [_X, 81, _X, 28, _X, _X, 14, 25, 17, _X, _X, 85, 29, 52, 78, 95, 22, 92, 0, 0, _X, _X, _X, _X],
    [42, _X, 14, 68, 32, _X, _X, _X, _X, 70, 43, 11, 36, 40, 33, 57, 38, 24, _X, 0, 0, _X, _X, _X],
    [_X, _X, 20, _X, _X, 63, 39, _X, 70, 67, _X, 38, 4, 72, 47, 29, 60, 5, 80, _X, 0, 0, _X, _X],
    [64, 2, _X, _X, 63, _X, _X, 3, 51, _X, 81, 15, 94, 9, 85, 36, 14, 19, _X, _X, _X, 0, 0, _X],
    [_X, 53, 60, 80, _X, 26, 75, _X, _X, _X, _X, 86, 77, 1, 3, 72, 60, 25, _X, _X, _X, _X, 0, 0],
    [77, _X, _X, _X, 15, 28, _X, 35, _X, 72, 30, 68, 85, 84, 26, 64, 11, 89, 0, _X, _X, _X, _X, 0],
]

_BASE_RATE_5_6 = [
    [1, 25, 55, _X, 47, 4, _X, 91, 84, 8, 86, 52, 82, 33, 5, 0, 36, 20, 4, 77, 80, 0, _X, _X],
    [_X, 6, _X, 36, 40, 47, 12, 79, 47, _X, 41, 21, 12, 71, 14, 72, 0, 44, 49, 0, 0, 0, 0, _X],
    [51, 81, 83, 4, 67, _X, 21, _X, 31, 24, 91, 61, 81, 9, 86, 78, 60, 88, 67, 15, _X, _X, 0, 0],
    [50, _X, 50, 15, _X, 36, 13, 10, 11, 20, 53, 90, 29, 92, 57, 30, 84, 92, 11, 66, 80, _X, _X, 0],
]

_BASE_MATRICES_Z96: dict[str, list[list[int]]] = {
    "1/2": _BASE_RATE_1_2,
    "2/3A": _BASE_RATE_2_3A,
    "2/3B": _BASE_RATE_2_3B,
    "3/4A": _BASE_RATE_3_4A,
    "3/4B": _BASE_RATE_3_4B,
    "5/6": _BASE_RATE_5_6,
}

#: Code classes whose shifts are scaled by the modulo rule instead of flooring.
_MODULO_SCALED_RATES = frozenset({"2/3A"})


def _scaled_base_matrix(rate: str, z: int) -> QCBaseMatrix:
    template = _BASE_MATRICES_Z96[rate]
    use_modulo = rate in _MODULO_SCALED_RATES
    scaled = [
        [scale_shift(entry, z, 96, use_modulo=use_modulo) for entry in row]
        for row in template
    ]
    return QCBaseMatrix.from_lists(scaled, z)


@dataclass
class WimaxLdpcCode:
    """One fully expanded WiMAX LDPC code.

    Attributes
    ----------
    rate_name:
        One of :data:`WIMAX_CODE_RATES`.
    z:
        Expansion factor (``n / 24``).
    base:
        The scaled base matrix.
    h:
        The expanded parity-check matrix.
    """

    rate_name: str
    z: int
    base: QCBaseMatrix
    h: ParityCheckMatrix

    def __post_init__(self) -> None:
        self._encoder: LDPCEncoder | None = None

    @property
    def n(self) -> int:
        """Codeword length in bits."""
        return self.h.n_cols

    @property
    def m(self) -> int:
        """Number of parity checks."""
        return self.h.n_rows

    @property
    def k(self) -> int:
        """Number of information bits."""
        return self.n - self.m

    @property
    def rate(self) -> float:
        """Nominal code rate."""
        return self.k / self.n

    @property
    def encoder(self) -> LDPCEncoder:
        """Systematic encoder for this code (constructed lazily and cached)."""
        if self._encoder is None:
            self._encoder = LDPCEncoder(self.h)
        return self._encoder

    def encode(self, info_bits: np.ndarray) -> np.ndarray:
        """Systematically encode ``k`` information bits into an ``n``-bit codeword."""
        return self.encoder.encode(info_bits)

    def encode_batch(self, info_bits: np.ndarray) -> np.ndarray:
        """Encode a ``(batch, k)`` bit array into ``(batch, n)`` codewords."""
        return self.encoder.encode_batch(info_bits)

    def describe(self) -> str:
        """One-line human-readable summary."""
        return (
            f"WiMAX LDPC rate {self.rate_name}, n={self.n}, k={self.k}, z={self.z}, "
            f"checks={self.m}, edges={self.h.n_edges}"
        )


@lru_cache(maxsize=None)
def wimax_ldpc_code(n: int = 2304, rate: str = "1/2") -> WimaxLdpcCode:
    """Construct (and cache) the WiMAX LDPC code of length ``n`` and class ``rate``.

    Parameters
    ----------
    n:
        Codeword length in bits; must be a multiple of 24 with ``n/24`` in
        :data:`WIMAX_EXPANSION_FACTORS` (i.e. 576, 672, ..., 2304).
    rate:
        Code class name from :data:`WIMAX_CODE_RATES`.
    """
    if rate not in WIMAX_CODE_RATES:
        raise CodeDefinitionError(
            f"unknown WiMAX LDPC rate {rate!r}; valid rates: {WIMAX_CODE_RATES}"
        )
    if n % WIMAX_BLOCK_COLUMNS != 0:
        raise CodeDefinitionError(
            f"WiMAX codeword length must be a multiple of {WIMAX_BLOCK_COLUMNS}, got {n}"
        )
    z = n // WIMAX_BLOCK_COLUMNS
    if z not in WIMAX_EXPANSION_FACTORS:
        raise CodeDefinitionError(
            f"expansion factor {z} (n={n}) is not a valid WiMAX value; "
            f"valid z: {WIMAX_EXPANSION_FACTORS}"
        )
    base = _scaled_base_matrix(rate, z)
    return WimaxLdpcCode(rate_name=rate, z=z, base=base, h=base.expand())


def list_wimax_codes(rates: tuple[str, ...] = WIMAX_CODE_RATES) -> list[tuple[int, str]]:
    """Enumerate every (n, rate) pair defined by the standard for ``rates``."""
    pairs: list[tuple[int, str]] = []
    for z in WIMAX_EXPANSION_FACTORS:
        for rate in rates:
            if rate not in WIMAX_CODE_RATES:
                raise CodeDefinitionError(f"unknown WiMAX LDPC rate {rate!r}")
            pairs.append((z * WIMAX_BLOCK_COLUMNS, rate))
    return pairs

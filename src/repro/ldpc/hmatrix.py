"""Sparse parity-check-matrix representation.

A :class:`ParityCheckMatrix` stores H row-wise as sorted column-index lists,
which is the access pattern needed by both the layered decoder (iterate the
non-zeros of one check) and the mapping substrate (build the layer adjacency
graph).  A dense ``numpy`` view is available for small codes and for tests.
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

from repro.errors import CodeDefinitionError


class ParityCheckMatrix:
    """An ``M x N`` binary parity-check matrix stored in sparse row form.

    Parameters
    ----------
    rows:
        One sequence of column indices per parity check.  Indices must be
        unique within a row and lie in ``[0, n_cols)``.
    n_cols:
        Number of columns (codeword length ``N``).
    """

    def __init__(self, rows: Sequence[Sequence[int]], n_cols: int):
        if n_cols <= 0:
            raise CodeDefinitionError(f"n_cols must be positive, got {n_cols}")
        if not rows:
            raise CodeDefinitionError("a parity-check matrix needs at least one row")
        cleaned: list[np.ndarray] = []
        for row_idx, row in enumerate(rows):
            arr = np.asarray(sorted(int(c) for c in row), dtype=np.int64)
            if arr.size == 0:
                raise CodeDefinitionError(f"row {row_idx} of H has no non-zero entries")
            if arr[0] < 0 or arr[-1] >= n_cols:
                raise CodeDefinitionError(
                    f"row {row_idx} has a column index outside [0, {n_cols})"
                )
            if np.unique(arr).size != arr.size:
                raise CodeDefinitionError(f"row {row_idx} has duplicate column indices")
            cleaned.append(arr)
        self._rows = cleaned
        self._n_cols = int(n_cols)
        self._col_rows: list[np.ndarray] | None = None

    # ------------------------------------------------------------------ #
    # Constructors
    # ------------------------------------------------------------------ #
    @classmethod
    def from_dense(cls, matrix: np.ndarray) -> "ParityCheckMatrix":
        """Build from a dense 0/1 matrix."""
        dense = np.asarray(matrix)
        if dense.ndim != 2:
            raise CodeDefinitionError("from_dense expects a two-dimensional matrix")
        if dense.size and not np.isin(dense, (0, 1)).all():
            raise CodeDefinitionError("from_dense expects a binary matrix")
        rows = [np.flatnonzero(dense[r]).tolist() for r in range(dense.shape[0])]
        return cls(rows, dense.shape[1])

    # ------------------------------------------------------------------ #
    # Basic properties
    # ------------------------------------------------------------------ #
    @property
    def n_rows(self) -> int:
        """Number of parity checks ``M``."""
        return len(self._rows)

    @property
    def n_cols(self) -> int:
        """Codeword length ``N``."""
        return self._n_cols

    @property
    def n_edges(self) -> int:
        """Total number of non-zero entries (Tanner-graph edges)."""
        return sum(row.size for row in self._rows)

    @property
    def design_rate(self) -> float:
        """Design code rate ``(N - M) / N`` (assumes full-rank H)."""
        return (self.n_cols - self.n_rows) / self.n_cols

    def row(self, index: int) -> np.ndarray:
        """Column indices of the non-zeros in parity check ``index`` (sorted)."""
        return self._rows[index]

    def iter_rows(self) -> Iterable[np.ndarray]:
        """Iterate over rows as arrays of column indices."""
        return iter(self._rows)

    def row_degrees(self) -> np.ndarray:
        """Array of check-node degrees."""
        return np.array([row.size for row in self._rows], dtype=np.int64)

    def _build_col_index(self) -> list[np.ndarray]:
        cols: list[list[int]] = [[] for _ in range(self._n_cols)]
        for row_idx, row in enumerate(self._rows):
            for col in row.tolist():
                cols[col].append(row_idx)
        return [np.asarray(c, dtype=np.int64) for c in cols]

    def col(self, index: int) -> np.ndarray:
        """Row indices of the non-zeros in column ``index`` (sorted)."""
        if self._col_rows is None:
            self._col_rows = self._build_col_index()
        return self._col_rows[index]

    def col_degrees(self) -> np.ndarray:
        """Array of variable-node degrees."""
        if self._col_rows is None:
            self._col_rows = self._build_col_index()
        return np.array([c.size for c in self._col_rows], dtype=np.int64)

    # ------------------------------------------------------------------ #
    # Dense view and syndrome computation
    # ------------------------------------------------------------------ #
    def to_dense(self) -> np.ndarray:
        """Dense ``int8`` copy of H (only intended for small codes and tests)."""
        dense = np.zeros((self.n_rows, self.n_cols), dtype=np.int8)
        for row_idx, row in enumerate(self._rows):
            dense[row_idx, row] = 1
        return dense

    def syndrome(self, word: np.ndarray) -> np.ndarray:
        """Compute ``H @ word mod 2`` for a 0/1 word of length ``n_cols``."""
        bits = np.asarray(word, dtype=np.int64)
        if bits.shape != (self.n_cols,):
            raise CodeDefinitionError(
                f"word length {bits.shape} does not match n_cols {self.n_cols}"
            )
        return np.array(
            [int(bits[row].sum() % 2) for row in self._rows], dtype=np.int8
        )

    def is_codeword(self, word: np.ndarray) -> bool:
        """True when ``word`` satisfies every parity check."""
        return not self.syndrome(word).any()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ParityCheckMatrix(M={self.n_rows}, N={self.n_cols}, "
            f"edges={self.n_edges}, rate={self.design_rate:.3f})"
        )

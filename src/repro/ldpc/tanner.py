"""Tanner-graph view of a parity-check matrix.

The mapping substrate (Section III of the paper) works on graphs derived from
H: the bipartite Tanner graph itself and, for the layered schedule, the
*check adjacency graph* whose nodes are parity checks and whose edges connect
checks sharing at least one variable (weighted by the number of shared
variables).  Both views are provided here.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass

import numpy as np

from repro.ldpc.hmatrix import ParityCheckMatrix


@dataclass(frozen=True)
class CheckAdjacencyGraph:
    """Undirected weighted graph over parity checks.

    ``weights[(i, j)]`` (with ``i < j``) counts the variables shared by checks
    ``i`` and ``j``; this is the graph handed to the partitioner.
    """

    n_checks: int
    weights: dict[tuple[int, int], int]

    def neighbors(self, check: int) -> list[tuple[int, int]]:
        """List of ``(other_check, weight)`` pairs adjacent to ``check``."""
        result = []
        for (a, b), w in self.weights.items():
            if a == check:
                result.append((b, w))
            elif b == check:
                result.append((a, w))
        return result

    @property
    def n_edges(self) -> int:
        """Number of weighted edges."""
        return len(self.weights)

    def total_weight(self) -> int:
        """Sum of all edge weights (total shared-variable count)."""
        return sum(self.weights.values())

    def adjacency_lists(self) -> list[list[tuple[int, int]]]:
        """Adjacency list per check: ``adj[i] = [(j, weight), ...]``."""
        adj: list[list[tuple[int, int]]] = [[] for _ in range(self.n_checks)]
        for (a, b), w in self.weights.items():
            adj[a].append((b, w))
            adj[b].append((a, w))
        return adj


class TannerGraph:
    """Bipartite variable-node / check-node graph of an LDPC code."""

    def __init__(self, h: ParityCheckMatrix):
        self._h = h

    @property
    def h(self) -> ParityCheckMatrix:
        """The underlying parity-check matrix."""
        return self._h

    @property
    def n_variable_nodes(self) -> int:
        """Number of variable nodes (codeword length)."""
        return self._h.n_cols

    @property
    def n_check_nodes(self) -> int:
        """Number of check nodes (parity checks)."""
        return self._h.n_rows

    @property
    def n_edges(self) -> int:
        """Number of Tanner-graph edges."""
        return self._h.n_edges

    def check_neighbors(self, check: int) -> np.ndarray:
        """Variable nodes connected to a check node."""
        return self._h.row(check)

    def variable_neighbors(self, variable: int) -> np.ndarray:
        """Check nodes connected to a variable node."""
        return self._h.col(variable)

    def mean_check_degree(self) -> float:
        """Average check-node degree."""
        return float(self._h.row_degrees().mean())

    def mean_variable_degree(self) -> float:
        """Average variable-node degree."""
        return float(self._h.col_degrees().mean())

    def check_adjacency_graph(self) -> CheckAdjacencyGraph:
        """Build the weighted check-to-check adjacency graph.

        Two checks are adjacent when they share at least one variable; the
        edge weight is the number of shared variables.  With the layered
        schedule this weight is the number of extrinsic messages exchanged
        between the two checks per iteration, which is exactly the traffic
        quantity the NoC mapping wants to keep local.
        """
        weights: dict[tuple[int, int], int] = defaultdict(int)
        for variable in range(self._h.n_cols):
            checks = self._h.col(variable)
            for idx_a in range(checks.size):
                for idx_b in range(idx_a + 1, checks.size):
                    a, b = int(checks[idx_a]), int(checks[idx_b])
                    key = (a, b) if a < b else (b, a)
                    weights[key] += 1
        return CheckAdjacencyGraph(n_checks=self._h.n_rows, weights=dict(weights))

    def girth_lower_bound(self, max_cycle: int = 8) -> int:
        """Detect the shortest cycle length up to ``max_cycle`` (4 or 6), else return ``max_cycle``.

        A cheap structural sanity check used by tests: WiMAX codes are 4-cycle
        free.  Only cycle lengths 4 and 6 are checked exhaustively; longer
        girths simply report ``max_cycle``.
        """
        # Length-4 cycles: two checks sharing two or more variables.
        shared: dict[tuple[int, int], int] = defaultdict(int)
        for variable in range(self._h.n_cols):
            checks = self._h.col(variable)
            for idx_a in range(checks.size):
                for idx_b in range(idx_a + 1, checks.size):
                    a, b = int(checks[idx_a]), int(checks[idx_b])
                    key = (a, b) if a < b else (b, a)
                    shared[key] += 1
                    if shared[key] >= 2:
                        return 4
        return max_cycle

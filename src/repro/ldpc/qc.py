"""Quasi-cyclic LDPC base matrices and their expansion.

A QC-LDPC code is described by an ``mb x nb`` base matrix whose entries are
either ``-1`` (a ``z x z`` all-zero block) or a shift ``s in [0, z)`` (a
``z x z`` identity matrix cyclically right-shifted by ``s``).  WiMAX codes are
QC with ``nb = 24`` and ``z`` ranging from 24 to 96 in steps of 4.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import CodeDefinitionError
from repro.ldpc.hmatrix import ParityCheckMatrix


@dataclass(frozen=True)
class QCBaseMatrix:
    """An integer base matrix together with its expansion factor ``z``.

    Entries are ``-1`` for zero blocks and shift values in ``[0, z)`` for
    shifted-identity blocks.
    """

    entries: tuple[tuple[int, ...], ...]
    z: int

    def __post_init__(self) -> None:
        if self.z <= 0:
            raise CodeDefinitionError(f"expansion factor z must be positive, got {self.z}")
        if not self.entries:
            raise CodeDefinitionError("base matrix must have at least one row")
        width = len(self.entries[0])
        for row_idx, row in enumerate(self.entries):
            if len(row) != width:
                raise CodeDefinitionError(
                    f"base-matrix row {row_idx} has {len(row)} entries, expected {width}"
                )
            for col_idx, value in enumerate(row):
                if value < -1 or value >= self.z:
                    raise CodeDefinitionError(
                        f"base-matrix entry ({row_idx},{col_idx}) = {value} is outside "
                        f"[-1, {self.z})"
                    )

    @classmethod
    def from_lists(cls, rows: list[list[int]], z: int) -> "QCBaseMatrix":
        """Build from nested lists (convenience for the embedded WiMAX tables)."""
        return cls(tuple(tuple(int(v) for v in row) for row in rows), z)

    @property
    def mb(self) -> int:
        """Number of block rows."""
        return len(self.entries)

    @property
    def nb(self) -> int:
        """Number of block columns."""
        return len(self.entries[0])

    @property
    def n(self) -> int:
        """Expanded codeword length."""
        return self.nb * self.z

    @property
    def m(self) -> int:
        """Expanded number of parity checks."""
        return self.mb * self.z

    def as_array(self) -> np.ndarray:
        """Return the base matrix as a NumPy ``int64`` array."""
        return np.asarray(self.entries, dtype=np.int64)

    def block_row_degrees(self) -> np.ndarray:
        """Number of non-(-1) blocks per block row."""
        arr = self.as_array()
        return (arr >= 0).sum(axis=1)

    def expand(self) -> ParityCheckMatrix:
        """Expand to the full sparse parity-check matrix."""
        return expand_base_matrix(self)


def expand_base_matrix(base: QCBaseMatrix) -> ParityCheckMatrix:
    """Expand a :class:`QCBaseMatrix` into a :class:`ParityCheckMatrix`.

    Block ``(i, j)`` with shift ``s`` contributes, for every ``r`` in
    ``[0, z)``, a non-zero at row ``i*z + r`` and column
    ``j*z + (r + s) mod z`` — the standard right-shifted identity convention.
    """
    z = base.z
    rows: list[list[int]] = [[] for _ in range(base.m)]
    arr = base.as_array()
    for block_row in range(base.mb):
        for block_col in range(base.nb):
            shift = int(arr[block_row, block_col])
            if shift < 0:
                continue
            base_row = block_row * z
            base_col = block_col * z
            for r in range(z):
                rows[base_row + r].append(base_col + (r + shift) % z)
    return ParityCheckMatrix(rows, base.n)


def scale_shift(shift_z0: int, z: int, z0: int = 96, use_modulo: bool = False) -> int:
    """Scale a base-matrix shift defined for ``z0`` down to expansion factor ``z``.

    IEEE 802.16e defines base matrices for the largest expansion factor
    ``z0 = 96`` and derives smaller codes by either flooring
    (``floor(s * z / z0)``, used by every code class except rate 2/3A) or by a
    modulo rule (``s mod z``, rate 2/3A).
    """
    if shift_z0 < 0:
        return -1
    if z <= 0 or z0 <= 0:
        raise CodeDefinitionError("expansion factors must be positive")
    if use_modulo:
        return shift_z0 % z
    return (shift_z0 * z) // z0

"""Systematic LDPC encoding.

:class:`LDPCEncoder` works for any full-row-rank parity-check matrix whose
last ``M`` columns form an invertible square sub-matrix over GF(2) — the case
for every WiMAX code, whose parity part is (almost) dual-diagonal.  The
encoder solves ``B p = A s`` once symbolically (``E = B^{-1} A``) and encodes
each frame with a single GF(2) matrix-vector product.

If the last ``M`` columns happen to be singular the encoder falls back to a
column permutation found by Gaussian elimination; the information bits then
occupy the unpermuted systematic positions reported by
:attr:`LDPCEncoder.systematic_columns`.
"""

from __future__ import annotations

import numpy as np

from repro.errors import CodeDefinitionError
from repro.ldpc.hmatrix import ParityCheckMatrix


def _gf2_invert(matrix: np.ndarray) -> np.ndarray | None:
    """Invert a square GF(2) matrix; return ``None`` when it is singular."""
    size = matrix.shape[0]
    work = matrix.astype(np.uint8).copy()
    inverse = np.eye(size, dtype=np.uint8)
    for col in range(size):
        pivot_rows = np.flatnonzero(work[col:, col]) + col
        if pivot_rows.size == 0:
            return None
        pivot = int(pivot_rows[0])
        if pivot != col:
            work[[col, pivot]] = work[[pivot, col]]
            inverse[[col, pivot]] = inverse[[pivot, col]]
        eliminate = np.flatnonzero(work[:, col])
        eliminate = eliminate[eliminate != col]
        if eliminate.size:
            work[eliminate] ^= work[col]
            inverse[eliminate] ^= inverse[col]
    return inverse


class LDPCEncoder:
    """Systematic encoder derived from a parity-check matrix.

    Parameters
    ----------
    h:
        The parity-check matrix.  Must have full row rank.
    """

    def __init__(self, h: ParityCheckMatrix):
        self._h = h
        self._n = h.n_cols
        self._m = h.n_rows
        self._k = self._n - self._m
        if self._k <= 0:
            raise CodeDefinitionError(
                f"H has {self._m} rows and {self._n} columns: no information bits"
            )
        dense = h.to_dense().astype(np.uint8)
        self._systematic_columns = np.arange(self._k)
        self._parity_columns = np.arange(self._k, self._n)
        parity_part = dense[:, self._k :]
        inverse = _gf2_invert(parity_part)
        if inverse is None:
            inverse, perm = self._permuted_parity_inverse(dense)
            self._systematic_columns = perm[: self._k]
            self._parity_columns = perm[self._k :]
        # E maps information bits to parity bits: p = E s (mod 2).
        info_part = dense[:, self._systematic_columns].astype(np.float32)
        self._encode_matrix = (
            (inverse.astype(np.float32) @ info_part) % 2
        ).astype(np.uint8)

    def _permuted_parity_inverse(self, dense: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Find a column permutation whose trailing M columns are invertible."""
        work = dense.copy()
        n = self._n
        m = self._m
        col_order = list(range(n))
        row = 0
        pivot_cols: list[int] = []
        for col in range(n):
            if row >= m:
                break
            pivot_rows = np.flatnonzero(work[row:, col]) + row
            if pivot_rows.size == 0:
                continue
            pivot = int(pivot_rows[0])
            if pivot != row:
                work[[row, pivot]] = work[[pivot, row]]
            eliminate = np.flatnonzero(work[:, col])
            eliminate = eliminate[eliminate != row]
            if eliminate.size:
                work[eliminate] ^= work[row]
            pivot_cols.append(col)
            row += 1
        if row < m:
            raise CodeDefinitionError("H is not full row rank; cannot build an encoder")
        non_pivot = [c for c in col_order if c not in set(pivot_cols)]
        perm = np.array(non_pivot + pivot_cols, dtype=np.int64)
        parity_part = dense[:, perm[self._k :]]
        inverse = _gf2_invert(parity_part)
        if inverse is None:
            raise CodeDefinitionError("failed to invert the permuted parity part of H")
        return inverse, perm

    # ------------------------------------------------------------------ #
    # Public API
    # ------------------------------------------------------------------ #
    @property
    def n(self) -> int:
        """Codeword length."""
        return self._n

    @property
    def k(self) -> int:
        """Number of information bits."""
        return self._k

    @property
    def systematic_columns(self) -> np.ndarray:
        """Codeword positions that carry the information bits, in order."""
        return self._systematic_columns.copy()

    def encode(self, info_bits: np.ndarray) -> np.ndarray:
        """Encode ``k`` information bits into an ``n``-bit codeword.

        The information bits are placed at :attr:`systematic_columns` (which is
        simply ``0..k-1`` for WiMAX codes) and the parity bits at the remaining
        positions.
        """
        bits = np.asarray(info_bits, dtype=np.int64)
        if bits.shape != (self._k,):
            raise CodeDefinitionError(
                f"expected {self._k} information bits, got shape {bits.shape}"
            )
        if bits.size and (bits.min() < 0 or bits.max() > 1):
            raise CodeDefinitionError("information bits must be 0/1 values")
        parity = (self._encode_matrix.astype(np.int64) @ bits) % 2
        codeword = np.zeros(self._n, dtype=np.int8)
        codeword[self._systematic_columns] = bits.astype(np.int8)
        codeword[self._parity_columns] = parity.astype(np.int8)
        return codeword

    def encode_batch(self, info_bits: np.ndarray) -> np.ndarray:
        """Encode a ``(batch, k)`` bit array into ``(batch, n)`` codewords.

        Vectorised equivalent of calling :meth:`encode` row by row (one GF(2)
        matrix-matrix product for the whole batch); used by the batched BER
        engine in :mod:`repro.sim`.
        """
        bits = np.asarray(info_bits, dtype=np.int64)
        if bits.ndim != 2 or bits.shape[1] != self._k:
            raise CodeDefinitionError(
                f"expected a (batch, {self._k}) bit array, got shape {bits.shape}"
            )
        if bits.size and (bits.min() < 0 or bits.max() > 1):
            raise CodeDefinitionError("information bits must be 0/1 values")
        parity = (bits @ self._encode_matrix.astype(np.int64).T) % 2
        codewords = np.zeros((bits.shape[0], self._n), dtype=np.int8)
        codewords[:, self._systematic_columns] = bits.astype(np.int8)
        codewords[:, self._parity_columns] = parity.astype(np.int8)
        return codewords

    def extract_info(self, codeword: np.ndarray) -> np.ndarray:
        """Recover the information bits from a (hard-decision) codeword."""
        word = np.asarray(codeword, dtype=np.int8)
        if word.shape != (self._n,):
            raise CodeDefinitionError(
                f"expected a codeword of length {self._n}, got shape {word.shape}"
            )
        return word[self._systematic_columns].copy()

"""Two-phase (flooding) belief-propagation decoding.

The paper contrasts the layered schedule it implements with classic two-phase
scheduling, noting that layered decoding "nearly doubles the convergence
speed".  This reference decoder implements the two-phase schedule — all check
nodes updated from the previous iteration's variable messages, then all
variable nodes — with either the exact sum-product kernel or the normalized
min-sum kernel, and is used by tests and by the functional-comparison bench
to reproduce that claim.

Since the batch engine landed, this module is a thin per-frame facade: the
message passing itself lives in :class:`repro.sim.batch.BatchFloodingDecoder`
(flat edge arrays, one dense tensor op per phase), and :meth:`decode` runs it
with ``batch=1``.  Decoding many frames?  Use the batch decoder (or
:class:`repro.sim.runner.BerRunner`) directly — stacking frames on the batch
axis returns bit-identical results at a fraction of the per-frame cost.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import DecodingError
from repro.ldpc.hmatrix import ParityCheckMatrix
from repro.sim.batch import BatchFloodingDecoder
from repro.sim.kernels import sum_product_update


@dataclass
class FloodingDecoderResult:
    """Outcome of one frame decode with the flooding schedule."""

    hard_bits: np.ndarray
    llrs: np.ndarray
    iterations: int
    converged: bool
    unsatisfied_history: list[int] = field(default_factory=list)

    @property
    def success(self) -> bool:
        """True when the decoder stopped on a valid codeword."""
        return self.converged


def _sum_product_check_update(q_values: np.ndarray) -> np.ndarray:
    """Exact sum-product check update for the edges of one check.

    Thin single-check wrapper over :func:`repro.sim.kernels.sum_product_update`,
    which computes the leave-one-out ``tanh`` product with log-domain-stable
    prefix/suffix products of the ``|tanh| <= 1`` factors — no division by a
    near-zero ``tanh`` and no O(d^2) fallback loop.
    """
    q = np.asarray(q_values, dtype=np.float64)
    if q.ndim != 1:
        raise DecodingError("sum-product check update expects a 1-D message array")
    return sum_product_update(q[None, :])[0]


class FloodingDecoder:
    """Two-phase BP decoder (sum-product or min-sum kernel), one frame at a time.

    All message passing delegates to
    :class:`repro.sim.batch.BatchFloodingDecoder` with ``batch=1``, so this
    class and the batch engine agree bit-for-bit by construction.
    """

    def __init__(
        self,
        h: ParityCheckMatrix,
        max_iterations: int = 20,
        kernel: str = "sum-product",
        scaling: float = 0.75,
        early_termination: bool = True,
    ):
        self._h = h
        self._batch = BatchFloodingDecoder(
            h,
            max_iterations=max_iterations,
            kernel=kernel,
            scaling=scaling,
            early_termination=early_termination,
        )

    # The tunables live on the inner batch decoder (which reads them on every
    # decode), so mutating them after construction keeps working as it did
    # when this class held the loop itself.
    @property
    def max_iterations(self) -> int:
        """Maximum number of flooding iterations per frame."""
        return self._batch.max_iterations

    @max_iterations.setter
    def max_iterations(self, value: int) -> None:
        self._batch.max_iterations = int(value)

    @property
    def kernel(self) -> str:
        """Check-node kernel: ``"sum-product"`` or ``"min-sum"``."""
        return self._batch.kernel

    @kernel.setter
    def kernel(self, value: str) -> None:
        self._batch.kernel = value

    @property
    def scaling(self) -> float:
        """Min-sum normalisation factor ``sigma`` (min-sum kernel only)."""
        return self._batch.scaling

    @scaling.setter
    def scaling(self, value: float) -> None:
        self._batch.scaling = float(value)

    @property
    def early_termination(self) -> bool:
        """Stop a frame as soon as its hard decision is a codeword."""
        return self._batch.early_termination

    @early_termination.setter
    def early_termination(self, value: bool) -> None:
        self._batch.early_termination = bool(value)

    def decode(self, channel_llrs: np.ndarray) -> FloodingDecoderResult:
        """Decode one frame of channel LLRs with the flooding schedule."""
        llrs_in = np.asarray(channel_llrs, dtype=np.float64)
        if llrs_in.shape != (self._h.n_cols,):
            raise DecodingError(
                f"expected {self._h.n_cols} channel LLRs, got shape {llrs_in.shape}"
            )
        result = self._batch.decode_batch(llrs_in[None, :])
        return FloodingDecoderResult(
            hard_bits=result.hard_bits[0],
            llrs=result.llrs[0],
            iterations=int(result.iterations[0]),
            converged=bool(result.converged[0]),
            unsatisfied_history=list(result.unsatisfied_history[0]),
        )

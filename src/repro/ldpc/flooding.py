"""Two-phase (flooding) belief-propagation decoding.

The paper contrasts the layered schedule it implements with classic two-phase
scheduling, noting that layered decoding "nearly doubles the convergence
speed".  This reference decoder implements the two-phase schedule — all check
nodes updated from the previous iteration's variable messages, then all
variable nodes — with either the exact sum-product kernel or the normalized
min-sum kernel, and is used by tests and by the functional-comparison bench
to reproduce that claim.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import DecodingError
from repro.ldpc.checknode import hard_decision, min_sum_check_update
from repro.ldpc.hmatrix import ParityCheckMatrix


@dataclass
class FloodingDecoderResult:
    """Outcome of one frame decode with the flooding schedule."""

    hard_bits: np.ndarray
    llrs: np.ndarray
    iterations: int
    converged: bool
    unsatisfied_history: list[int] = field(default_factory=list)

    @property
    def success(self) -> bool:
        """True when the decoder stopped on a valid codeword."""
        return self.converged


def _sum_product_check_update(q_values: np.ndarray) -> np.ndarray:
    """Exact sum-product check update using the tanh rule (numerically clipped)."""
    q = np.clip(np.asarray(q_values, dtype=np.float64), -30.0, 30.0)
    tanh_half = np.tanh(q / 2.0)
    # Leave-one-out product computed via the total product and division,
    # guarding the zero-tanh case by falling back to an explicit loop.
    result = np.empty_like(q)
    if np.all(np.abs(tanh_half) > 1e-12):
        total = np.prod(tanh_half)
        leave_one_out = total / tanh_half
    else:
        leave_one_out = np.empty_like(q)
        for k in range(q.size):
            mask = np.ones(q.size, dtype=bool)
            mask[k] = False
            leave_one_out[k] = np.prod(tanh_half[mask])
    leave_one_out = np.clip(leave_one_out, -0.999999999999, 0.999999999999)
    result = 2.0 * np.arctanh(leave_one_out)
    return result


class FloodingDecoder:
    """Two-phase BP decoder (sum-product or min-sum kernel)."""

    def __init__(
        self,
        h: ParityCheckMatrix,
        max_iterations: int = 20,
        kernel: str = "sum-product",
        scaling: float = 0.75,
        early_termination: bool = True,
    ):
        if max_iterations <= 0:
            raise DecodingError(f"max_iterations must be positive, got {max_iterations}")
        if kernel not in ("sum-product", "min-sum"):
            raise DecodingError(
                f"kernel must be 'sum-product' or 'min-sum', got {kernel!r}"
            )
        self._h = h
        self.max_iterations = int(max_iterations)
        self.kernel = kernel
        self.scaling = float(scaling)
        self.early_termination = bool(early_termination)
        self._rows = [h.row(r) for r in range(h.n_rows)]

    def _check_update(self, q_values: np.ndarray) -> np.ndarray:
        if self.kernel == "sum-product":
            return _sum_product_check_update(q_values)
        return min_sum_check_update(q_values, scaling=self.scaling)

    def decode(self, channel_llrs: np.ndarray) -> FloodingDecoderResult:
        """Decode one frame of channel LLRs with the flooding schedule."""
        llrs_in = np.asarray(channel_llrs, dtype=np.float64)
        if llrs_in.shape != (self._h.n_cols,):
            raise DecodingError(
                f"expected {self._h.n_cols} channel LLRs, got shape {llrs_in.shape}"
            )
        n_rows = self._h.n_rows
        # Check-to-variable messages, one array per check (row order).
        c2v = [np.zeros(row.size, dtype=np.float64) for row in self._rows]
        iterations_done = 0
        converged = False
        unsatisfied_history: list[int] = []
        posterior = llrs_in.copy()
        for iteration in range(self.max_iterations):
            # Variable-to-check phase: v2c = posterior minus own previous c2v.
            v2c = [posterior[self._rows[r]] - c2v[r] for r in range(n_rows)]
            # Check-node phase.
            c2v = [self._check_update(v2c[r]) for r in range(n_rows)]
            # A-posteriori accumulation.
            posterior = llrs_in.copy()
            for r in range(n_rows):
                posterior[self._rows[r]] += c2v[r]
            iterations_done = iteration + 1
            hard = hard_decision(posterior)
            unsatisfied = int(self._h.syndrome(hard).sum())
            unsatisfied_history.append(unsatisfied)
            if unsatisfied == 0:
                converged = True
                if self.early_termination:
                    break
        hard = hard_decision(posterior)
        return FloodingDecoderResult(
            hard_bits=hard,
            llrs=posterior,
            iterations=iterations_done,
            converged=converged,
            unsatisfied_history=unsatisfied_history,
        )

"""Layered normalized-min-sum LDPC decoding (paper eqs. (6)-(11)).

The layered (horizontal) schedule processes parity checks one after the other
(or one *layer* — a group of row-independent checks — after the other) and
propagates updated a-posteriori LLRs immediately, which roughly halves the
number of iterations needed compared with two-phase flooding.  This is the
schedule the paper's PEs implement, so this decoder doubles as the functional
reference for the cycle-accurate PE model.

Both floating-point and fixed-point (7-bit channel / 5-bit extrinsic, as in
the paper) operation are supported.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.channel.quantize import CHANNEL_LLR_SPEC, EXTRINSIC_SPEC, LLRQuantizer
from repro.errors import DecodingError
from repro.ldpc.checknode import hard_decision, min_sum_check_update
from repro.ldpc.hmatrix import ParityCheckMatrix


@dataclass
class LayeredDecoderResult:
    """Outcome of one frame decode."""

    hard_bits: np.ndarray
    llrs: np.ndarray
    iterations: int
    converged: bool
    syndrome_weight: int
    #: Per-iteration number of unsatisfied checks (useful for convergence plots).
    unsatisfied_history: list[int] = field(default_factory=list)

    @property
    def success(self) -> bool:
        """True when the decoder stopped on a valid codeword."""
        return self.converged


class LayeredMinSumDecoder:
    """Layered normalized-min-sum decoder over a :class:`ParityCheckMatrix`.

    Parameters
    ----------
    h:
        Parity-check matrix of the code.
    max_iterations:
        Maximum number of full iterations (every check processed once per
        iteration).  The paper uses 10 for WiMAX LDPC codes.
    scaling:
        Min-sum normalisation factor ``sigma``; 0.75 is the conventional
        hardware-friendly choice (a shift-and-add multiplier).
    fixed_point:
        When true, channel LLRs are quantised to the paper's 7-bit format and
        extrinsic R messages to the 5-bit format before/after every update.
    early_termination:
        Stop as soon as the hard decision satisfies every parity check.
    """

    def __init__(
        self,
        h: ParityCheckMatrix,
        max_iterations: int = 10,
        scaling: float = 0.75,
        fixed_point: bool = False,
        early_termination: bool = True,
    ):
        if max_iterations <= 0:
            raise DecodingError(f"max_iterations must be positive, got {max_iterations}")
        if not 0.0 < scaling <= 1.0:
            raise DecodingError(f"scaling must be in (0, 1], got {scaling}")
        self._h = h
        self.max_iterations = int(max_iterations)
        self.scaling = float(scaling)
        self.fixed_point = bool(fixed_point)
        self.early_termination = bool(early_termination)
        self._channel_quantizer = LLRQuantizer(CHANNEL_LLR_SPEC)
        self._extrinsic_quantizer = LLRQuantizer(EXTRINSIC_SPEC)
        # Pre-extract row structure once; the decoder touches it every layer.
        self._rows = [h.row(r) for r in range(h.n_rows)]

    @property
    def h(self) -> ParityCheckMatrix:
        """The parity-check matrix this decoder was built for."""
        return self._h

    def _quantize_channel(self, llrs: np.ndarray) -> np.ndarray:
        if not self.fixed_point:
            return llrs.astype(np.float64)
        return self._channel_quantizer.quantize_to_real(llrs)

    def _quantize_extrinsic(self, values: np.ndarray) -> np.ndarray:
        if not self.fixed_point:
            return values
        return self._extrinsic_quantizer.quantize_to_real(values)

    def decode(self, channel_llrs: np.ndarray) -> LayeredDecoderResult:
        """Decode one frame of channel LLRs (positive LLR means bit 0).

        Implements, for every check ``l`` and connected variable ``k``:

        * ``Q_lk = lambda_k - R_lk_old``                      (eq. 6)
        * ``R_lk_new = normalized min-sum over the other Q``  (eqs. 7-9, 11)
        * ``lambda_k = Q_lk + R_lk_new``                      (eq. 10)
        """
        llrs_in = np.asarray(channel_llrs, dtype=np.float64)
        if llrs_in.shape != (self._h.n_cols,):
            raise DecodingError(
                f"expected {self._h.n_cols} channel LLRs, got shape {llrs_in.shape}"
            )
        lam = self._quantize_channel(llrs_in).copy()
        # R messages, one per (check, edge) pair, stored per row in row order.
        r_messages = [np.zeros(row.size, dtype=np.float64) for row in self._rows]
        iterations_done = 0
        converged = False
        unsatisfied_history: list[int] = []
        for iteration in range(self.max_iterations):
            for check_idx, cols in enumerate(self._rows):
                r_old = r_messages[check_idx]
                q_values = lam[cols] - r_old
                r_new = min_sum_check_update(q_values, scaling=self.scaling)
                r_new = self._quantize_extrinsic(r_new)
                lam[cols] = q_values + r_new
                if self.fixed_point:
                    lam[cols] = self._channel_quantizer.quantize_to_real(lam[cols])
                r_messages[check_idx] = r_new
            iterations_done = iteration + 1
            hard = hard_decision(lam)
            syndrome = self._h.syndrome(hard)
            unsatisfied = int(syndrome.sum())
            unsatisfied_history.append(unsatisfied)
            if unsatisfied == 0:
                converged = True
                if self.early_termination:
                    break
        hard = hard_decision(lam)
        syndrome_weight = int(self._h.syndrome(hard).sum())
        return LayeredDecoderResult(
            hard_bits=hard,
            llrs=lam,
            iterations=iterations_done,
            converged=converged and syndrome_weight == 0,
            syndrome_weight=syndrome_weight,
            unsatisfied_history=unsatisfied_history,
        )

    def messages_per_iteration(self) -> int:
        """Number of check-to-variable messages produced per full iteration.

        This is the traffic volume the NoC must carry per iteration when the
        code is mapped onto the decoder (before subtracting node-local
        messages), and equals the number of edges of the Tanner graph.
        """
        return self._h.n_edges

"""Layered normalized-min-sum LDPC decoding (paper eqs. (6)-(11)).

The layered (horizontal) schedule processes parity checks one after the other
(or one *layer* — a group of row-independent checks — after the other) and
propagates updated a-posteriori LLRs immediately, which roughly halves the
number of iterations needed compared with two-phase flooding.  This is the
schedule the paper's PEs implement, so this decoder doubles as the functional
reference for the cycle-accurate PE model.

Both floating-point and fixed-point (7-bit channel / 5-bit extrinsic, as in
the paper) operation are supported.

Since the batch engine landed, this module is a thin per-frame facade: the
layered recursion itself lives in
:class:`repro.sim.batch.BatchLayeredDecoder` (vectorised over the batch
axis), and :meth:`decode` runs it with ``batch=1``.  Decoding many frames?
Use the batch decoder (or :class:`repro.sim.runner.BerRunner`) directly —
stacking frames on the batch axis returns bit-identical results at a
fraction of the per-frame cost.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import DecodingError
from repro.ldpc.hmatrix import ParityCheckMatrix
from repro.sim.batch import BatchLayeredDecoder


@dataclass
class LayeredDecoderResult:
    """Outcome of one frame decode."""

    hard_bits: np.ndarray
    llrs: np.ndarray
    iterations: int
    converged: bool
    syndrome_weight: int
    #: Per-iteration number of unsatisfied checks (useful for convergence plots).
    unsatisfied_history: list[int] = field(default_factory=list)

    @property
    def success(self) -> bool:
        """True when the decoder stopped on a valid codeword."""
        return self.converged


class LayeredMinSumDecoder:
    """Layered normalized-min-sum decoder over a :class:`ParityCheckMatrix`.

    One frame at a time; delegates to
    :class:`repro.sim.batch.BatchLayeredDecoder` with ``batch=1`` so this
    class and the batch engine agree bit-for-bit by construction.

    Parameters
    ----------
    h:
        Parity-check matrix of the code.
    max_iterations:
        Maximum number of full iterations (every check processed once per
        iteration).  The paper uses 10 for WiMAX LDPC codes.
    scaling:
        Min-sum normalisation factor ``sigma``; 0.75 is the conventional
        hardware-friendly choice (a shift-and-add multiplier).
    fixed_point:
        When true, channel LLRs are quantised to the paper's 7-bit format and
        extrinsic R messages to the 5-bit format before/after every update.
    early_termination:
        Stop as soon as the hard decision satisfies every parity check.
    """

    def __init__(
        self,
        h: ParityCheckMatrix,
        max_iterations: int = 10,
        scaling: float = 0.75,
        fixed_point: bool = False,
        early_termination: bool = True,
    ):
        self._h = h
        self._batch = BatchLayeredDecoder(
            h,
            max_iterations=max_iterations,
            scaling=scaling,
            kernel="min-sum",
            fixed_point=fixed_point,
            early_termination=early_termination,
        )

    # The tunables live on the inner batch decoder (which reads them on every
    # decode), so mutating them after construction keeps working as it did
    # when this class held the loop itself.
    @property
    def max_iterations(self) -> int:
        """Maximum number of layered iterations per frame."""
        return self._batch.max_iterations

    @max_iterations.setter
    def max_iterations(self, value: int) -> None:
        self._batch.max_iterations = int(value)

    @property
    def scaling(self) -> float:
        """Min-sum normalisation factor ``sigma``."""
        return self._batch.scaling

    @scaling.setter
    def scaling(self, value: float) -> None:
        self._batch.scaling = float(value)

    @property
    def fixed_point(self) -> bool:
        """Quantise to the paper's 7-bit/5-bit formats around every update."""
        return self._batch.fixed_point

    @fixed_point.setter
    def fixed_point(self, value: bool) -> None:
        self._batch.fixed_point = bool(value)

    @property
    def early_termination(self) -> bool:
        """Stop a frame as soon as its hard decision is a codeword."""
        return self._batch.early_termination

    @early_termination.setter
    def early_termination(self, value: bool) -> None:
        self._batch.early_termination = bool(value)

    @property
    def h(self) -> ParityCheckMatrix:
        """The parity-check matrix this decoder was built for."""
        return self._h

    def decode(self, channel_llrs: np.ndarray) -> LayeredDecoderResult:
        """Decode one frame of channel LLRs (positive LLR means bit 0).

        Implements, for every check ``l`` and connected variable ``k``:

        * ``Q_lk = lambda_k - R_lk_old``                      (eq. 6)
        * ``R_lk_new = normalized min-sum over the other Q``  (eqs. 7-9, 11)
        * ``lambda_k = Q_lk + R_lk_new``                      (eq. 10)
        """
        llrs_in = np.asarray(channel_llrs, dtype=np.float64)
        if llrs_in.shape != (self._h.n_cols,):
            raise DecodingError(
                f"expected {self._h.n_cols} channel LLRs, got shape {llrs_in.shape}"
            )
        result = self._batch.decode_batch(llrs_in[None, :])
        return LayeredDecoderResult(
            hard_bits=result.hard_bits[0],
            llrs=result.llrs[0],
            iterations=int(result.iterations[0]),
            converged=bool(result.converged[0]),
            syndrome_weight=int(result.syndrome_weights[0]),
            unsatisfied_history=list(result.unsatisfied_history[0]),
        )

    def messages_per_iteration(self) -> int:
        """Number of check-to-variable messages produced per full iteration.

        This is the traffic volume the NoC must carry per iteration when the
        code is mapped onto the decoder (before subtracting node-local
        messages), and equals the number of edges of the Tanner graph.
        """
        return self._h.n_edges

"""IEEE 802.11n-style (Wi-Fi) QC-LDPC code class, n = 1944.

802.11n defines QC-LDPC codes over 24 block columns at three codeword
lengths (648/1296/1944, i.e. z = 27/54/81) and four rates.  This module
provides the n = 1944 (z = 81) parameter set at rates 1/2 and 5/6 — the
pair that brackets the standard's operating range — as a second standard
alongside the WiMAX set, exercising the paper's *multi-standard* claim:
the same layered decoder datapath, batch engines, BER runner and decode
service serve it unchanged because it is just another
:class:`~repro.ldpc.qc.QCBaseMatrix` expansion.

The base matrices follow the standard's structure (24 block columns,
dual-diagonal parity part with the 1/0/1 first parity column, degree
profile); shift values are transcribed for z = 81 — see the reproduction
caveat in DESIGN.md §7, which applies here exactly as it does to the WiMAX
tables.  Unlike WiMAX, no shift scaling is involved: 802.11n specifies an
independent table per block length and only the native z = 81 table is
embedded.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache

import numpy as np

from repro.errors import CodeDefinitionError
from repro.ldpc.encoder import LDPCEncoder
from repro.ldpc.hmatrix import ParityCheckMatrix
from repro.ldpc.qc import QCBaseMatrix

#: Code rates provided by this module (802.11n also defines 2/3 and 3/4).
WIFI_CODE_RATES: tuple[str, ...] = ("1/2", "5/6")

#: The one codeword length embedded here (z = 81, the standard's largest).
WIFI_BLOCK_LENGTH = 1944

#: Number of block columns shared by every 802.11n base matrix.
WIFI_BLOCK_COLUMNS = 24

#: Expansion factor of the embedded tables.
WIFI_EXPANSION_FACTOR = 81

_X = -1  # readability alias for the all-zero block marker

# --------------------------------------------------------------------------- #
# Base matrices for z = 81 (shift values in [0, 81) or -1).
# --------------------------------------------------------------------------- #
_BASE_RATE_1_2 = [
    [57, _X, _X, _X, 50, _X, 11, _X, 50, _X, 79, _X, 1, 0, _X, _X, _X, _X, _X, _X, _X, _X, _X, _X],
    [3, _X, 28, _X, 0, _X, _X, _X, 55, 7, _X, _X, _X, 0, 0, _X, _X, _X, _X, _X, _X, _X, _X, _X],
    [30, _X, _X, _X, 24, 37, _X, _X, 56, 14, _X, _X, _X, _X, 0, 0, _X, _X, _X, _X, _X, _X, _X, _X],
    [62, 53, _X, _X, 53, _X, _X, 3, 35, _X, _X, _X, _X, _X, _X, 0, 0, _X, _X, _X, _X, _X, _X, _X],
    [40, _X, _X, 20, 66, _X, _X, 22, 28, _X, _X, _X, _X, _X, _X, _X, 0, 0, _X, _X, _X, _X, _X, _X],
    [0, _X, _X, _X, 8, _X, 42, _X, 50, _X, _X, 8, _X, _X, _X, _X, _X, 0, 0, _X, _X, _X, _X, _X],
    [69, 79, 79, _X, _X, _X, 56, _X, 52, _X, _X, _X, 0, _X, _X, _X, _X, _X, 0, 0, _X, _X, _X, _X],
    [65, _X, _X, _X, 38, 57, _X, _X, 72, _X, 27, _X, _X, _X, _X, _X, _X, _X, _X, 0, 0, _X, _X, _X],
    [64, _X, _X, _X, 14, 52, _X, _X, 30, _X, _X, 32, _X, _X, _X, _X, _X, _X, _X, _X, 0, 0, _X, _X],
    [_X, 45, _X, 70, 0, _X, _X, _X, 77, 9, _X, _X, _X, _X, _X, _X, _X, _X, _X, _X, _X, 0, 0, _X],
    [2, 56, _X, 57, 35, _X, _X, _X, _X, _X, 12, _X, _X, _X, _X, _X, _X, _X, _X, _X, _X, _X, 0, 0],
    [24, _X, 61, _X, 60, _X, _X, 27, 51, _X, _X, 16, 1, _X, _X, _X, _X, _X, _X, _X, _X, _X, _X, 0],
]

_BASE_RATE_5_6 = [
    [13, 48, 80, 66, 4, 74, 7, 30, 76, 52, 37, 60, _X, 49, 73, 31, 74, 73, 23, _X, 1, 0, _X, _X],
    [69, 63, 74, 56, 64, 77, 57, 65, 6, 16, 51, _X, 64, _X, 68, 9, 48, 62, 54, 27, _X, 0, 0, _X],
    [51, 15, 0, 80, 24, 25, 42, 54, 44, 71, 71, 9, 67, 35, _X, 58, _X, 29, _X, 53, 0, _X, 0, 0],
    [16, 29, 36, 41, 44, 56, 59, 37, 50, 24, _X, 65, 4, 65, 52, _X, 4, _X, 73, 52, 1, _X, _X, 0],
]

_BASE_MATRICES_Z81: dict[str, list[list[int]]] = {
    "1/2": _BASE_RATE_1_2,
    "5/6": _BASE_RATE_5_6,
}


@dataclass
class WifiLdpcCode:
    """One fully expanded 802.11n LDPC code.

    Attributes
    ----------
    rate_name:
        One of :data:`WIFI_CODE_RATES`.
    z:
        Expansion factor (81 for every embedded code).
    base:
        The base matrix.
    h:
        The expanded parity-check matrix.
    """

    rate_name: str
    z: int
    base: QCBaseMatrix
    h: ParityCheckMatrix

    def __post_init__(self) -> None:
        self._encoder: LDPCEncoder | None = None

    @property
    def n(self) -> int:
        """Codeword length in bits."""
        return self.h.n_cols

    @property
    def m(self) -> int:
        """Number of parity checks."""
        return self.h.n_rows

    @property
    def k(self) -> int:
        """Number of information bits."""
        return self.n - self.m

    @property
    def rate(self) -> float:
        """Nominal code rate."""
        return self.k / self.n

    @property
    def encoder(self) -> LDPCEncoder:
        """Systematic encoder for this code (constructed lazily and cached)."""
        if self._encoder is None:
            self._encoder = LDPCEncoder(self.h)
        return self._encoder

    def encode(self, info_bits: np.ndarray) -> np.ndarray:
        """Systematically encode ``k`` information bits into an ``n``-bit codeword."""
        return self.encoder.encode(info_bits)

    def encode_batch(self, info_bits: np.ndarray) -> np.ndarray:
        """Encode a ``(batch, k)`` bit array into ``(batch, n)`` codewords."""
        return self.encoder.encode_batch(info_bits)

    def describe(self) -> str:
        """One-line human-readable summary."""
        return (
            f"802.11n LDPC rate {self.rate_name}, n={self.n}, k={self.k}, z={self.z}, "
            f"checks={self.m}, edges={self.h.n_edges}"
        )


@lru_cache(maxsize=None)
def wifi_ldpc_code(n: int = 1944, rate: str = "1/2") -> WifiLdpcCode:
    """Construct (and cache) the 802.11n LDPC code of length ``n`` and rate ``rate``.

    Parameters
    ----------
    n:
        Codeword length in bits; only :data:`WIFI_BLOCK_LENGTH` (1944) is
        embedded.
    rate:
        Rate string from :data:`WIFI_CODE_RATES`.
    """
    if rate not in WIFI_CODE_RATES:
        raise CodeDefinitionError(
            f"unknown 802.11n LDPC rate {rate!r}; valid rates: {WIFI_CODE_RATES}"
        )
    if n != WIFI_BLOCK_LENGTH:
        raise CodeDefinitionError(
            f"802.11n LDPC block length must be {WIFI_BLOCK_LENGTH}, got {n}"
        )
    base = QCBaseMatrix.from_lists(_BASE_MATRICES_Z81[rate], WIFI_EXPANSION_FACTOR)
    return WifiLdpcCode(
        rate_name=rate, z=WIFI_EXPANSION_FACTOR, base=base, h=base.expand()
    )


def list_wifi_codes() -> list[tuple[int, str]]:
    """Enumerate every (n, rate) pair this module provides."""
    return [(WIFI_BLOCK_LENGTH, rate) for rate in WIFI_CODE_RATES]

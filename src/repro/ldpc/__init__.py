"""LDPC substrate: QC-LDPC codes, the WiMAX (IEEE 802.16e) code class and decoders.

The paper's design case is the full set of WiMAX LDPC codes; the worst case
driving the NoC sizing is the ``n = 2304``, rate-1/2 code (1152 parity checks
of degree 6/7).  This package provides:

* :class:`~repro.ldpc.hmatrix.ParityCheckMatrix` — sparse H representation,
* :class:`~repro.ldpc.qc.QCBaseMatrix` — quasi-cyclic base matrices and their
  expansion,
* :mod:`~repro.ldpc.wimax` — the 802.16e code class (all rates and lengths),
* :mod:`~repro.ldpc.wifi` — the 802.11n (Wi-Fi) n=1944 code set, rates 1/2
  and 5/6, exercising the multi-standard claim through the same machinery,
* :class:`~repro.ldpc.encoder.LDPCEncoder` — systematic encoding,
* :class:`~repro.ldpc.layered.LayeredMinSumDecoder` — the layered
  normalized-min-sum decoder of paper eqs. (6)-(11),
* :class:`~repro.ldpc.flooding.FloodingDecoder` — two-phase belief propagation
  used as a reference baseline,
* :class:`~repro.ldpc.tanner.TannerGraph` — bipartite graph view used by the
  mapping substrate.

Both decoders decode one frame per call; for Monte-Carlo work over many
frames use their batched twins in :mod:`repro.sim`, which the per-frame
classes delegate to (``batch=1``) and match bit-for-bit.
"""

from repro.ldpc.hmatrix import ParityCheckMatrix
from repro.ldpc.qc import QCBaseMatrix, expand_base_matrix
from repro.ldpc.wimax import (
    WIMAX_CODE_RATES,
    WIMAX_EXPANSION_FACTORS,
    WimaxLdpcCode,
    wimax_ldpc_code,
    list_wimax_codes,
)
from repro.ldpc.wifi import (
    WIFI_CODE_RATES,
    WifiLdpcCode,
    wifi_ldpc_code,
    list_wifi_codes,
)
from repro.ldpc.encoder import LDPCEncoder
from repro.ldpc.tanner import TannerGraph
from repro.ldpc.layered import LayeredMinSumDecoder, LayeredDecoderResult
from repro.ldpc.flooding import FloodingDecoder, FloodingDecoderResult
from repro.ldpc.checknode import first_two_minima, min_sum_check_update

__all__ = [
    "ParityCheckMatrix",
    "QCBaseMatrix",
    "expand_base_matrix",
    "WIMAX_CODE_RATES",
    "WIMAX_EXPANSION_FACTORS",
    "WimaxLdpcCode",
    "wimax_ldpc_code",
    "list_wimax_codes",
    "WIFI_CODE_RATES",
    "WifiLdpcCode",
    "wifi_ldpc_code",
    "list_wifi_codes",
    "LDPCEncoder",
    "TannerGraph",
    "LayeredMinSumDecoder",
    "LayeredDecoderResult",
    "FloodingDecoder",
    "FloodingDecoderResult",
    "first_two_minima",
    "min_sum_check_update",
]

"""The dual-mode processing element hosted by every NoC node (paper Fig. 1).

A :class:`ProcessingElement` bundles the LDPC core model, the SISO core model
and the node's share of the decoder memories, and exposes the quantities the
system-level models need: message injection rate in each mode, busy cycles per
iteration, memory traffic and a structural description for the architecture
tour.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum

import numpy as np

from repro.errors import ModelError
from repro.hw.memory import DecoderMemoryPlan
from repro.pe.ldpc_core import LdpcCoreModel
from repro.pe.siso_core import SisoCoreModel


class DecoderMode(str, Enum):
    """Operating mode of the flexible decoder."""

    LDPC = "LDPC"
    TURBO = "turbo"


@dataclass(frozen=True)
class ProcessingElement:
    """One PE: LDPC core + SISO core + a slice of the shared memories.

    Attributes
    ----------
    index:
        PE / NoC node index.
    ldpc_core:
        Timing model of the LDPC core.
    siso_core:
        Timing model of the SISO.
    memory_plan:
        Decoder-wide shared-memory plan (this PE holds ``1/P``-th of it).
    """

    index: int
    ldpc_core: LdpcCoreModel
    siso_core: SisoCoreModel
    memory_plan: DecoderMemoryPlan

    def injection_rate(self, mode: DecoderMode) -> float:
        """Messages injected into the NoC per NoC cycle in the given mode."""
        if mode is DecoderMode.LDPC:
            return self.ldpc_core.output_rate
        return self.siso_core.noc_injection_rate

    def busy_cycles(self, mode: DecoderMode, workload: np.ndarray | int) -> int:
        """NoC cycles of processing for one iteration (LDPC) or half-iteration (turbo).

        ``workload`` is the array of check degrees owned by this PE in LDPC
        mode, or the window size in couples in turbo mode.
        """
        if mode is DecoderMode.LDPC:
            return self.ldpc_core.iteration_timing(np.asarray(workload)).busy_cycles
        if not isinstance(workload, (int, np.integer)):
            raise ModelError("turbo workload must be the window size in couples")
        return self.siso_core.half_iteration_timing(int(workload)).busy_noc_cycles

    def memory_bits(self) -> float:
        """Shared-memory bits held by this PE."""
        return self.memory_plan.bits_per_pe

    def structure(self) -> dict[str, dict[str, str]]:
        """Structural description of the PE (used by the architecture tour)."""
        return {
            "LDPC decoding core": self.ldpc_core.structure(),
            "Turbo decoding core (SISO)": self.siso_core.structure(),
            "shared memories": {
                "7-bit memory": (
                    f"{self.memory_plan.wide_locations} locations decoder-wide "
                    "(lambda_old[c] in LDPC mode, alpha/beta in turbo mode)"
                ),
                "5-bit memory": (
                    f"{self.memory_plan.narrow_locations} locations decoder-wide "
                    "(R_lk in LDPC mode, lambda[c(e)] in turbo mode)"
                ),
            },
        }

"""Model of the turbo SISO core (paper Fig. 3).

The SISO processes its window of the frame with the BCJR schedule: the Branch
Metric Unit (BMU) computes ``gamma``, a shared unit computes ``beta`` first
(stored in registers), then ``alpha`` and ``b(e)`` on the fly, and the
Extrinsic Computation Unit (ECU) produces the output LLRs.  Incoming bit-level
a-priori values are expanded by the Bit-To-Symbol unit (BTS) and outgoing
extrinsics are compressed by the Symbol-To-Bit unit (STB).

Two architectural facts from the paper drive the timing model:

* the SISO produces **two** extrinsic values every **three** clock cycles, and
* it therefore runs at **half** the NoC clock frequency
  (``f_SISO = 0.5 * f_NoC``), which in NoC cycles is an injection rate of
  ``2 / 3 / 2 = 1/3`` message per NoC cycle (the paper's best turbo working
  point ``R = 0.33``).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ModelError

#: Extrinsic values produced per group of SISO clock cycles.
SISO_OUTPUTS_PER_GROUP = 2
SISO_CYCLES_PER_GROUP = 3

#: SISO pipeline latency in SISO clock cycles (window warm-up, metric init).
SISO_CORE_LATENCY_CYCLES = 15

#: Ratio between the SISO clock and the NoC clock.
SISO_TO_NOC_CLOCK_RATIO = 0.5


@dataclass(frozen=True)
class SisoCoreTiming:
    """Cycle-level summary of one SISO's half-iteration workload."""

    window_couples: int
    siso_cycles: int
    noc_cycles: int
    pipeline_latency: int
    memory_reads: int
    memory_writes: int

    @property
    def busy_noc_cycles(self) -> int:
        """NoC cycles the SISO occupies for one half-iteration, latency included."""
        return self.noc_cycles + int(round(self.pipeline_latency / SISO_TO_NOC_CLOCK_RATIO))


class SisoCoreModel:
    """Timing / structure model of the double-binary SISO."""

    def __init__(
        self,
        pipeline_latency: int = SISO_CORE_LATENCY_CYCLES,
        windows_per_siso: int = 3,
    ):
        if pipeline_latency <= 0:
            raise ModelError(f"pipeline_latency must be positive, got {pipeline_latency}")
        if windows_per_siso <= 0:
            raise ModelError(f"windows_per_siso must be positive, got {windows_per_siso}")
        self.pipeline_latency = int(pipeline_latency)
        self.windows_per_siso = int(windows_per_siso)

    @property
    def noc_injection_rate(self) -> float:
        """Messages injected into the NoC per NoC clock cycle (R = 1/3)."""
        return (
            SISO_OUTPUTS_PER_GROUP / SISO_CYCLES_PER_GROUP
        ) * SISO_TO_NOC_CLOCK_RATIO

    def half_iteration_timing(self, window_couples: int) -> SisoCoreTiming:
        """Timing of one half-iteration for a SISO owning ``window_couples`` couples."""
        if window_couples <= 0:
            raise ModelError(f"window_couples must be positive, got {window_couples}")
        groups = -(-window_couples // SISO_OUTPUTS_PER_GROUP)  # ceil division
        siso_cycles = groups * SISO_CYCLES_PER_GROUP
        noc_cycles = int(round(siso_cycles / SISO_TO_NOC_CLOCK_RATIO))
        # Per couple: read systematic + parity + a-priori, write extrinsic + state metrics.
        memory_reads = 3 * window_couples
        memory_writes = 2 * window_couples
        return SisoCoreTiming(
            window_couples=window_couples,
            siso_cycles=siso_cycles,
            noc_cycles=noc_cycles,
            pipeline_latency=self.pipeline_latency,
            memory_reads=memory_reads,
            memory_writes=memory_writes,
        )

    def memory_accesses_per_half_iteration(self, window_couples: int) -> int:
        """Shared-memory word accesses of one half-iteration (reads + writes)."""
        timing = self.half_iteration_timing(window_couples)
        return timing.memory_reads + timing.memory_writes

    @staticmethod
    def structure() -> dict[str, str]:
        """Block-level structure of Fig. 3, used by the architecture-tour example."""
        return {
            "BTS CU": "Bit-To-Symbol conversion of incoming a-priori LLRs",
            "BMU": "Branch Metric Unit: gamma_k[e] from channel and a-priori values",
            "alpha/beta/b(e) unit": "sequential forward/backward recursions; beta stored in registers",
            "beta registers": "hold the backward metrics of the current window",
            "ECU": "Extrinsic Computation Unit: a-posteriori and extrinsic LLR output",
            "STB CU": "Symbol-To-Bit conversion of outgoing extrinsic values for the NoC",
        }

"""Processing-element architecture models (paper Section IV, Figs. 2-3).

Each NoC node hosts one PE containing two decoding cores that share their
internal memories:

* :class:`~repro.pe.ldpc_core.LdpcCoreModel` — the sequential layered LDPC
  core of Fig. 2 (Minimum Extraction Unit, R memory, address generator),
* :class:`~repro.pe.siso_core.SisoCoreModel` — the double-binary SISO of
  Fig. 3 (BMU, alpha/beta/b(e) unit, ECU, BTS/STB converters),
* :class:`~repro.pe.processing_element.ProcessingElement` — the dual-mode PE
  combining both with the shared-memory plan of :mod:`repro.hw.memory`.

The models answer timing questions (core latency, cycles per iteration,
message production rate) that feed paper eq. (12), and expose a structural
description used by the architecture-tour example to "reproduce" Figs. 1-3.
"""

from repro.pe.ldpc_core import LdpcCoreModel, LdpcCoreTiming
from repro.pe.siso_core import SisoCoreModel, SisoCoreTiming
from repro.pe.processing_element import DecoderMode, ProcessingElement

__all__ = [
    "LdpcCoreModel",
    "LdpcCoreTiming",
    "SisoCoreModel",
    "SisoCoreTiming",
    "ProcessingElement",
    "DecoderMode",
]

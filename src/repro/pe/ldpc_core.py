"""Model of the LDPC decoding core (paper Fig. 2).

The core processes the parity checks assigned to its PE *sequentially*: for
each check it reads the incoming ``lambda_old`` values and the stored
``R_old`` values, computes ``Q = lambda_old - R_old``, feeds the magnitudes
through the Minimum Extraction Unit (which keeps the first two minima), then
writes back the updated ``lambda_new`` (sent over the NoC) and ``R_new``
(stored locally for the next iteration).  The datapath is pipelined; the
pipeline depth is the ``latcore = 15`` cycles the paper plugs into eq. (12).

The model is purely architectural (cycle counts, memory traffic, structure);
the bit-true arithmetic lives in :mod:`repro.ldpc.layered` and
:mod:`repro.ldpc.checknode`, which this core reuses so that timing and
function cannot drift apart.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ModelError

#: Pipeline latency of the LDPC core datapath in clock cycles (paper Section V).
LDPC_CORE_LATENCY_CYCLES = 15

#: Messages the core can emit per clock cycle (one lambda_new write per cycle).
LDPC_CORE_PEAK_OUTPUT_RATE = 1.0


@dataclass(frozen=True)
class LdpcCoreTiming:
    """Cycle-level summary of one PE's LDPC workload for one iteration."""

    n_checks: int
    total_edges: int
    processing_cycles: int
    pipeline_latency: int
    memory_reads: int
    memory_writes: int

    @property
    def busy_cycles(self) -> int:
        """Total cycles the core is busy for one iteration (latency + streaming)."""
        return self.pipeline_latency + self.processing_cycles


class LdpcCoreModel:
    """Timing / structure model of the sequential layered LDPC core.

    Parameters
    ----------
    output_rate:
        Messages produced per clock cycle towards the NoC (the ``R`` parameter
        of the NoC simulation, 0.5 in the paper's Table I).
    pipeline_latency:
        Datapath latency in cycles (``latcore``).
    """

    def __init__(
        self,
        output_rate: float = 0.5,
        pipeline_latency: int = LDPC_CORE_LATENCY_CYCLES,
    ):
        if not 0.0 < output_rate <= LDPC_CORE_PEAK_OUTPUT_RATE:
            raise ModelError(
                f"output_rate must be in (0, {LDPC_CORE_PEAK_OUTPUT_RATE}], got {output_rate}"
            )
        if pipeline_latency <= 0:
            raise ModelError(f"pipeline_latency must be positive, got {pipeline_latency}")
        self.output_rate = float(output_rate)
        self.pipeline_latency = int(pipeline_latency)

    def iteration_timing(self, check_degrees: np.ndarray | list[int]) -> LdpcCoreTiming:
        """Timing of one iteration for a PE that owns checks of the given degrees.

        The sequential core streams one edge per cycle through the MEU, so
        one iteration needs ``sum(degrees) / output_rate`` cycles to emit all
        updated messages, plus the pipeline latency once.
        """
        degrees = np.asarray(check_degrees, dtype=np.int64)
        if degrees.ndim != 1 or degrees.size == 0:
            raise ModelError("check_degrees must be a non-empty one-dimensional sequence")
        if degrees.min() < 2:
            raise ModelError("every parity check must involve at least two variables")
        total_edges = int(degrees.sum())
        processing_cycles = int(np.ceil(total_edges / self.output_rate))
        # Per edge: read lambda_old, read R_old, write lambda_new, write R_new.
        memory_reads = 2 * total_edges
        memory_writes = 2 * total_edges
        return LdpcCoreTiming(
            n_checks=int(degrees.size),
            total_edges=total_edges,
            processing_cycles=processing_cycles,
            pipeline_latency=self.pipeline_latency,
            memory_reads=memory_reads,
            memory_writes=memory_writes,
        )

    def memory_accesses_per_iteration(self, check_degrees: np.ndarray | list[int]) -> int:
        """Shared-memory word accesses of one iteration (reads + writes)."""
        timing = self.iteration_timing(check_degrees)
        return timing.memory_reads + timing.memory_writes

    @staticmethod
    def structure() -> dict[str, str]:
        """Block-level structure of Fig. 2, used by the architecture-tour example."""
        return {
            "lambda memory": "stores incoming lambda_old[c] messages received from the NoC",
            "R memory": "stores R_old / R_new check-to-variable messages between iterations",
            "address generator": "produces read/write addresses following the layered schedule",
            "MEU": "Minimum Extraction Unit: streams |Q| values, keeps the two smallest",
            "CMP": "selects min1 or min2 per edge and applies the sign / scaling",
            "output": "lambda_new[c] messages towards the NoC, R_new towards the R memory",
        }

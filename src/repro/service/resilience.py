"""Resilience layer for the decode service: supervised executors, retries,
circuit breaking and hang watchdogs.

The decode service's executors can fail in ways the decode math never does:
a worker process dies mid-batch (``BrokenProcessPool`` poisons the whole
pool), a worker wedges forever, a transient exception surfaces from the
decode path.  Decoding is *pure* — the same LLRs always produce the same
bits — so every one of those failures is safely retryable.  This module
turns that observation into machinery:

* :class:`SupervisedExecutor` — wraps a ``concurrent.futures`` executor
  behind a factory.  When the pool dies or a batch wedges past the
  watchdog, the supervisor abandons the broken executor
  (``shutdown(wait=False, cancel_futures=True)``), sleeps a capped
  exponential backoff with *deterministic* seeded jitter, and rebuilds from
  the factory.  A generation counter makes concurrent failures converge on
  one rebuild.
* :class:`CircuitBreaker` — a pure (clock-passed-in) closed → open →
  half-open state machine.  ``failure_threshold`` consecutive primary-path
  failures open it; while open the dispatcher degrades to the fallback
  path; after ``reset_timeout_s`` a bounded number of half-open probes are
  let through and one success closes it again.  Every transition is
  recorded so tests can assert the machine never jumps an illegal edge.
* :class:`ResilientDispatcher` — the piece the service calls: given a codec
  entry and a stacked ``(B, n)`` LLR batch, it picks the current path
  (primary executor, or the degraded fallback while the breaker is open),
  applies the optional :class:`~repro.faults.FaultInjector`, enforces the
  watchdog, classifies failures, counts everything into
  :class:`~repro.service.metrics.ServiceMetrics`, and retries within a
  bounded attempt budget.  Exhausting the budget raises
  :class:`~repro.errors.RetryExhaustedError` carrying the last cause.

Degradation chain: ``process`` executors fall back to a supervised thread
executor, ``thread`` executors fall back to inline (event-loop) decoding —
each fallback slower but still bit-correct.  ``inline`` services have no
fallback (and no breaker): failures there just consume retry budget.
"""

from __future__ import annotations

import asyncio
import random
from concurrent.futures import BrokenExecutor, Executor, ProcessPoolExecutor, ThreadPoolExecutor
from dataclasses import dataclass
from functools import partial
from typing import Callable

import numpy as np

from repro.errors import ConfigurationError, RetryExhaustedError, WorkerCrashError
from repro.faults import (
    FaultAction,
    FaultInjector,
    faulty_decode_in_thread,
    faulty_decode_in_worker,
)
from repro.service.metrics import ServiceMetrics
from repro.service.registry import CodecEntry
from repro.service.sharding import decode_in_worker

__all__ = [
    "CircuitBreaker",
    "DispatchResult",
    "ExponentialBackoff",
    "ResilienceConfig",
    "ResilientDispatcher",
    "SupervisedExecutor",
]

#: Exceptions that mean "the execution infrastructure failed", as opposed to
#: the decode itself raising: broken pools, (simulated) worker crashes and
#: watchdog timeouts.  Infra failures trigger an executor rebuild.
_INFRA_FAILURES = (BrokenExecutor, WorkerCrashError, asyncio.TimeoutError, TimeoutError)

_TIMEOUTS = (asyncio.TimeoutError, TimeoutError)


@dataclass(frozen=True)
class ResilienceConfig:
    """Knobs of the resilience layer (defaults are production-shaped).

    ``max_attempts`` bounds dispatches per batch (first try included).
    Backoff parameters govern executor rebuild pacing; the jitter stream is
    seeded, so a given config replays identically.  Breaker parameters are
    the classic trio: consecutive failures to open, open dwell before
    half-open, and how many half-open probes may fly at once.
    """

    max_attempts: int = 4
    backoff_base_s: float = 0.05
    backoff_cap_s: float = 2.0
    backoff_seed: int = 2012
    breaker_failures: int = 3
    breaker_reset_s: float = 1.0
    breaker_probes: int = 1

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ConfigurationError(
                f"max_attempts must be >= 1, got {self.max_attempts}"
            )
        if self.backoff_base_s < 0.0 or self.backoff_cap_s < self.backoff_base_s:
            raise ConfigurationError(
                "backoff must satisfy 0 <= base <= cap, got "
                f"base={self.backoff_base_s}, cap={self.backoff_cap_s}"
            )
        if self.breaker_failures < 1:
            raise ConfigurationError(
                f"breaker_failures must be >= 1, got {self.breaker_failures}"
            )
        if self.breaker_reset_s <= 0.0:
            raise ConfigurationError(
                f"breaker_reset_s must be > 0, got {self.breaker_reset_s}"
            )
        if self.breaker_probes < 1:
            raise ConfigurationError(
                f"breaker_probes must be >= 1, got {self.breaker_probes}"
            )


class ExponentialBackoff:
    """Capped exponential backoff with deterministic (seeded) jitter.

    ``next_delay`` yields ``min(cap, base * 2**k)`` scaled by a jitter
    factor in ``[0.5, 1.0]`` drawn from a seeded stream — two services built
    with the same seed back off identically, which is what makes chaos runs
    reproducible.  ``reset`` rewinds the exponent (a healthy stretch earns
    back fast recovery) but deliberately not the jitter stream.
    """

    def __init__(self, base_s: float, cap_s: float, seed: int = 2012) -> None:
        if base_s < 0.0 or cap_s < base_s:
            raise ConfigurationError(
                f"backoff must satisfy 0 <= base <= cap, got base={base_s}, cap={cap_s}"
            )
        self.base_s = float(base_s)
        self.cap_s = float(cap_s)
        self._rng = random.Random(seed)
        self._exponent = 0

    def next_delay(self) -> float:
        """The next delay in seconds, advancing the exponent."""
        delay = min(self.cap_s, self.base_s * (2.0 ** self._exponent))
        self._exponent += 1
        return delay * (0.5 + 0.5 * self._rng.random())

    def reset(self) -> None:
        """Rewind the exponent after a healthy stretch."""
        self._exponent = 0


class CircuitBreaker:
    """Closed → open → half-open breaker; pure, with the clock passed in.

    All methods take ``now`` (any monotonic seconds source) so tests can
    drive the machine through time without sleeping.  ``transitions``
    records every ``(from, to)`` edge taken; the legal set is
    :data:`CircuitBreaker.LEGAL_TRANSITIONS`.
    """

    CLOSED = "closed"
    OPEN = "open"
    HALF_OPEN = "half_open"

    LEGAL_TRANSITIONS = frozenset(
        [
            (CLOSED, OPEN),
            (OPEN, HALF_OPEN),
            (HALF_OPEN, OPEN),
            (HALF_OPEN, CLOSED),
        ]
    )

    def __init__(
        self,
        failure_threshold: int = 3,
        reset_timeout_s: float = 1.0,
        half_open_probes: int = 1,
    ) -> None:
        if failure_threshold < 1:
            raise ConfigurationError(
                f"failure_threshold must be >= 1, got {failure_threshold}"
            )
        if reset_timeout_s <= 0.0:
            raise ConfigurationError(
                f"reset_timeout_s must be > 0, got {reset_timeout_s}"
            )
        if half_open_probes < 1:
            raise ConfigurationError(
                f"half_open_probes must be >= 1, got {half_open_probes}"
            )
        self.failure_threshold = int(failure_threshold)
        self.reset_timeout_s = float(reset_timeout_s)
        self.half_open_probes = int(half_open_probes)
        self.consecutive_failures = 0
        self.opens = 0
        self.transitions: list[tuple[str, str]] = []
        self._state = self.CLOSED
        self._opened_at = 0.0
        self._probes_out = 0

    def _move(self, new_state: str) -> None:
        if new_state != self._state:
            self.transitions.append((self._state, new_state))
            self._state = new_state

    def state(self, now: float) -> str:
        """Current state, resolving the open → half-open timer transition."""
        if self._state == self.OPEN and now - self._opened_at >= self.reset_timeout_s:
            self._move(self.HALF_OPEN)
            self._probes_out = 0
        return self._state

    def allow(self, now: float) -> bool:
        """Whether the primary path may be tried; half-open consumes a probe."""
        state = self.state(now)
        if state == self.CLOSED:
            return True
        if state == self.OPEN:
            return False
        if self._probes_out < self.half_open_probes:
            self._probes_out += 1
            return True
        return False

    def record_success(self, now: float) -> None:
        """A primary-path dispatch succeeded: close from half-open, reset streak."""
        if self.state(now) == self.HALF_OPEN:
            self._move(self.CLOSED)
        self.consecutive_failures = 0
        self._probes_out = 0

    def record_failure(self, now: float) -> None:
        """A primary-path dispatch failed: count the streak, maybe open."""
        state = self.state(now)
        self.consecutive_failures += 1
        if state == self.HALF_OPEN or (
            state == self.CLOSED
            and self.consecutive_failures >= self.failure_threshold
        ):
            self._move(self.OPEN)
            self._opened_at = now
            self._probes_out = 0
            self.opens += 1


def _caller_is_cancelling() -> bool:
    """Whether the current task itself is being cancelled (vs collateral
    cancellation of an executor future it awaited).

    Uses :meth:`asyncio.Task.cancelling` (3.11+); on 3.10 there is no
    uncancel bookkeeping, so we conservatively report ``False`` and let the
    future's own state decide — a genuine caller cancel of *queued* work is
    then retried once more before the task completes, which only stretches
    a bounded drain, never hangs it.
    """
    task = asyncio.current_task()
    cancelling = getattr(task, "cancelling", None)
    if task is None or cancelling is None:
        return False
    return cancelling() > 0


class SupervisedExecutor:
    """A rebuildable executor: factory + generation counter + backoff.

    ``run`` submits one callable (optionally under a watchdog timeout);
    when the executor turns out to be dead or wedged, the *caller* invokes
    :meth:`rebuild` with the generation it observed — concurrent failures
    of the same generation coalesce into a single backoff + rebuild, and
    stragglers reporting an already-replaced generation return immediately.
    """

    def __init__(
        self, factory: Callable[[], Executor], backoff: ExponentialBackoff
    ) -> None:
        self._factory = factory
        self._backoff = backoff
        self._executor: Executor | None = None
        self._lock = asyncio.Lock()
        self.generation = 0
        self.rebuilds = 0

    def _live(self) -> Executor:
        if self._executor is None:
            self._executor = self._factory()
        return self._executor

    async def run(self, fn: Callable, *args, timeout: float | None = None):
        """Run ``fn(*args)`` on the current executor, under the watchdog.

        A rebuild (triggered by a concurrent batch's failure) abandons this
        executor with ``cancel_futures=True``, which cancels *our* queued
        work too.  That collateral cancellation is an infrastructure
        failure of this attempt — re-raised as
        :class:`~repro.errors.WorkerCrashError` so the caller retries on
        the rebuilt executor — and must not be confused with the caller
        cancelling the whole dispatch (which propagates).
        """
        loop = asyncio.get_running_loop()
        future = loop.run_in_executor(self._live(), fn, *args)
        try:
            if timeout is None:
                return await future
            return await asyncio.wait_for(future, timeout)
        except asyncio.CancelledError:
            if future.cancelled() and not _caller_is_cancelling():
                raise WorkerCrashError(
                    "executor was rebuilt while this batch was queued on it"
                ) from None
            raise

    async def rebuild(self, failed_generation: int) -> bool:
        """Replace the executor that was ``failed_generation``; backoff first.

        Returns ``True`` when this call actually rebuilt, ``False`` when a
        concurrent failure already did (or the generation moved on).
        """
        async with self._lock:
            if self.generation != failed_generation:
                return False
            delay = self._backoff.next_delay()
            if delay > 0.0:
                await asyncio.sleep(delay)
            old = self._executor
            self.generation += 1
            self.rebuilds += 1
            self._executor = None  # next run() rebuilds lazily from the factory
            if old is not None:
                old.shutdown(wait=False, cancel_futures=True)
            return True

    def note_success(self) -> None:
        """A dispatch succeeded: earn back fast backoff for the next failure."""
        self._backoff.reset()

    def shutdown(self, wait: bool = True) -> None:
        """Shut the current executor down (abandoning queued work if ``not wait``)."""
        if self._executor is not None:
            self._executor.shutdown(wait=wait, cancel_futures=not wait)
            self._executor = None


@dataclass(frozen=True)
class DispatchResult:
    """One successfully decoded batch plus how the dispatch went."""

    hard_bits: np.ndarray
    iterations: np.ndarray
    converged: np.ndarray
    attempts: int
    path: str


def _decode_entry(entry: CodecEntry, llrs: np.ndarray):
    """Thread/inline decode, normalised to the process-worker tuple."""
    result = entry.decoder.decode_batch(llrs)
    return result.hard_bits, result.iterations, result.converged


@dataclass
class _Path:
    """One dispatch path: a label, and how to run a batch on it."""

    name: str
    executor: SupervisedExecutor | None  # None = inline on the event loop


class ResilientDispatcher:
    """Retry/breaker/watchdog dispatch of decode batches onto executors.

    Parameters
    ----------
    mode:
        ``"process"``, ``"thread"`` or ``"inline"`` — the primary path.
    shards:
        Worker-process count for ``mode="process"``.
    config:
        The :class:`ResilienceConfig`; defaults when ``None``.
    metrics:
        The service's :class:`~repro.service.metrics.ServiceMetrics`;
        retry/rebuild/watchdog/degraded counters are recorded here.
    watchdog_s:
        Per-attempt decode timeout, or ``None`` to disable the watchdog.
    injector:
        Optional :class:`~repro.faults.FaultInjector` consulted once per
        dispatch attempt (the chaos hook).
    """

    def __init__(
        self,
        mode: str,
        shards: int = 0,
        config: ResilienceConfig | None = None,
        metrics: ServiceMetrics | None = None,
        watchdog_s: float | None = None,
        injector: FaultInjector | None = None,
    ) -> None:
        if mode not in ("process", "thread", "inline"):
            raise ConfigurationError(f"unknown dispatcher mode {mode!r}")
        if mode == "process" and shards < 1:
            raise ConfigurationError("process mode needs shards >= 1")
        self.mode = mode
        self.config = config if config is not None else ResilienceConfig()
        self.metrics = metrics if metrics is not None else ServiceMetrics()
        self.watchdog_s = watchdog_s
        self.injector = injector
        backoff = lambda: ExponentialBackoff(  # noqa: E731 — one stream per executor
            self.config.backoff_base_s,
            self.config.backoff_cap_s,
            self.config.backoff_seed,
        )
        self._process: SupervisedExecutor | None = None
        self._thread: SupervisedExecutor | None = None
        if mode == "process":
            self._process = SupervisedExecutor(
                partial(ProcessPoolExecutor, max_workers=shards), backoff()
            )
        if mode in ("process", "thread"):
            # The thread executor is the primary in thread mode and the
            # degraded fallback in process mode; built lazily either way.
            self._thread = SupervisedExecutor(
                partial(
                    ThreadPoolExecutor, max_workers=1,
                    thread_name_prefix="decode-service",
                ),
                backoff(),
            )
        #: Breaker over the primary path; inline services have nothing to
        #: degrade to, so they run without one.
        self.breaker: CircuitBreaker | None = (
            CircuitBreaker(
                failure_threshold=self.config.breaker_failures,
                reset_timeout_s=self.config.breaker_reset_s,
                half_open_probes=self.config.breaker_probes,
            )
            if mode in ("process", "thread")
            else None
        )

    # ------------------------------------------------------------------ #
    # Introspection (health surface)
    # ------------------------------------------------------------------ #
    def breaker_state(self, now: float | None = None) -> str:
        """``closed`` / ``open`` / ``half_open``, or ``disabled`` (inline mode)."""
        if self.breaker is None:
            return "disabled"
        if now is None:
            try:
                now = asyncio.get_running_loop().time()
            except RuntimeError:
                return self.breaker._state
        return self.breaker.state(now)

    def current_path(self, now: float | None = None) -> str:
        """The path the next dispatch would take, e.g. ``"degraded:thread"``."""
        state = self.breaker_state(now)
        if state in ("disabled", "closed", "half_open"):
            return self.mode
        return "degraded:thread" if self.mode == "process" else "degraded:inline"

    @property
    def pool_rebuilds(self) -> int:
        """Total executor rebuilds across both supervised paths."""
        return sum(
            sup.rebuilds for sup in (self._process, self._thread) if sup is not None
        )

    # ------------------------------------------------------------------ #
    # Dispatch
    # ------------------------------------------------------------------ #
    def _choose(self, now: float) -> _Path:
        if self.mode == "inline":
            return _Path("inline", None)
        primary_ok = self.breaker.allow(now)
        if self.mode == "process":
            if primary_ok:
                return _Path("process", self._process)
            return _Path("degraded:thread", self._thread)
        if primary_ok:
            return _Path("thread", self._thread)
        return _Path("degraded:inline", None)

    async def _inline_attempt(
        self, entry: CodecEntry, stacked: np.ndarray, action: FaultAction | None
    ):
        """Inline decode as a coroutine so hangs stay awaitable (watchdoggable)."""
        if action is not None:
            if action.kind == "crash":
                raise WorkerCrashError("injected worker crash")
            if action.kind == "error":
                from repro.errors import InjectedFaultError

                raise InjectedFaultError("injected decode failure")
            await asyncio.sleep(action.duration_s)
        return _decode_entry(entry, stacked)

    async def _attempt(
        self,
        path: _Path,
        entry: CodecEntry,
        stacked: np.ndarray,
        action: FaultAction | None,
    ):
        if path.executor is None:
            coro = self._inline_attempt(entry, stacked, action)
            if self.watchdog_s is None:
                return await coro
            return await asyncio.wait_for(coro, self.watchdog_s)
        if path.name == "process":
            if action is None:
                return await path.executor.run(
                    decode_in_worker, entry.spec.key, stacked, timeout=self.watchdog_s
                )
            return await path.executor.run(
                faulty_decode_in_worker,
                entry.spec.key,
                stacked,
                action,
                timeout=self.watchdog_s,
            )
        return await path.executor.run(
            faulty_decode_in_thread,
            partial(_decode_entry, entry),
            stacked,
            action,
            timeout=self.watchdog_s,
        )

    async def run(self, entry: CodecEntry, stacked: np.ndarray) -> DispatchResult:
        """Decode one stacked batch, surviving crashes/hangs/raises if possible.

        Raises :class:`~repro.errors.RetryExhaustedError` (cause attached)
        once the attempt budget is spent.
        """
        loop = asyncio.get_running_loop()
        attempts = 0
        last_exc: Exception | None = None
        while attempts < self.config.max_attempts:
            if attempts:
                self.metrics.retries += 1
            attempts += 1
            now = loop.time()
            path = self._choose(now)
            action = self.injector.next_action() if self.injector is not None else None
            if action is not None:
                self.metrics.faults_injected += 1
            on_primary = self.breaker is not None and path.name == self.mode
            started = loop.time()
            try:
                hard, iterations, converged = await self._attempt(
                    path, entry, stacked, action
                )
            except asyncio.CancelledError:
                raise
            except Exception as exc:  # noqa: BLE001 — classified right below
                last_exc = exc
                finished = loop.time()
                if isinstance(exc, _TIMEOUTS):
                    self.metrics.watchdog_timeouts += 1
                if on_primary:
                    self.breaker.record_failure(finished)
                    opens = self.breaker.opens
                    self.metrics.breaker_opens = opens
                if isinstance(exc, _INFRA_FAILURES) and path.executor is not None:
                    # The executor is dead or wedged: abandon and rebuild it
                    # (backoff + jitter inside), coalescing with concurrent
                    # failures of the same generation.
                    await path.executor.rebuild(path.executor.generation)
                    self.metrics.pool_rebuilds = self.pool_rebuilds
                continue
            finished = loop.time()
            if on_primary:
                self.breaker.record_success(finished)
            if path.executor is not None:
                path.executor.note_success()
            if path.name.startswith("degraded"):
                self.metrics.degraded_batches += 1
                self.metrics.degraded_s += finished - started
            return DispatchResult(
                hard_bits=hard,
                iterations=iterations,
                converged=converged,
                attempts=attempts,
                path=path.name,
            )
        raise RetryExhaustedError(
            f"decode of a {stacked.shape[0]}-frame {entry.spec.label} batch "
            f"failed on all {attempts} attempts (last: {last_exc!r})",
            attempts=attempts,
        ) from last_exc

    def shutdown(self, wait: bool = True) -> None:
        """Shut down every executor this dispatcher owns."""
        for sup in (self._process, self._thread):
            if sup is not None:
                sup.shutdown(wait=wait)

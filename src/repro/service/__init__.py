"""Decode-as-a-service: async dynamic batching over the batch engines.

The serving path of the reproduction's "millions of users" north star:
per-frame decode requests from many concurrent clients aggregate into the
large batches :mod:`repro.sim`'s engines were built for, under an explicit
latency budget, with typed boundary validation, bounded queues with
configurable backpressure, live metrics and an optional calibrated
process-shard mode.  The resilience layer
(:mod:`repro.service.resilience`) keeps the service serving through worker
crashes, hangs and decode failures — supervised executor rebuilds, bounded
retries, per-request deadlines, a calibrated hang watchdog and a circuit
breaker that degrades to a slower but bit-correct path — and the
deterministic fault-injection harness in :mod:`repro.faults` provokes every
one of those failure modes on demand.  See ``docs/decode-service.md`` for
the request lifecycle and policies, and ``python -m repro.service`` for a
runnable demo (``--inject-faults`` for the chaos smoke).
"""

from repro.faults import FaultAction, FaultInjector, FaultPlan
from repro.service.batcher import DynamicBatcher, QueuedItem
from repro.service.client import DecodeClient, ServiceThread
from repro.service.metrics import (
    HealthSnapshot,
    LatencyReservoir,
    MetricsSnapshot,
    ServiceMetrics,
)
from repro.service.registry import (
    CodecEntry,
    CodecRegistry,
    CodecSpec,
    default_registry,
)
from repro.service.resilience import (
    CircuitBreaker,
    DispatchResult,
    ExponentialBackoff,
    ResilienceConfig,
    ResilientDispatcher,
    SupervisedExecutor,
)
from repro.service.service import DecodeResponse, DecodeService
from repro.service.sharding import DecodeCostModel, plan_shards

__all__ = [
    "CircuitBreaker",
    "CodecEntry",
    "CodecRegistry",
    "CodecSpec",
    "DecodeClient",
    "DecodeCostModel",
    "DecodeResponse",
    "DecodeService",
    "DispatchResult",
    "DynamicBatcher",
    "ExponentialBackoff",
    "FaultAction",
    "FaultInjector",
    "FaultPlan",
    "HealthSnapshot",
    "LatencyReservoir",
    "MetricsSnapshot",
    "QueuedItem",
    "ResilienceConfig",
    "ResilientDispatcher",
    "ServiceMetrics",
    "ServiceThread",
    "SupervisedExecutor",
    "default_registry",
    "plan_shards",
]

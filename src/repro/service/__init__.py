"""Decode-as-a-service: async dynamic batching over the batch engines.

The serving path of the reproduction's "millions of users" north star:
per-frame decode requests from many concurrent clients aggregate into the
large batches :mod:`repro.sim`'s engines were built for, under an explicit
latency budget, with typed boundary validation, bounded queues with
configurable backpressure, live metrics and an optional calibrated
process-shard mode.  See ``docs/decode-service.md`` for the request
lifecycle and policies, and ``python -m repro.service`` for a runnable
demo.
"""

from repro.service.batcher import DynamicBatcher, QueuedItem
from repro.service.client import DecodeClient, ServiceThread
from repro.service.metrics import LatencyReservoir, MetricsSnapshot, ServiceMetrics
from repro.service.registry import (
    CodecEntry,
    CodecRegistry,
    CodecSpec,
    default_registry,
)
from repro.service.service import DecodeResponse, DecodeService
from repro.service.sharding import DecodeCostModel, plan_shards

__all__ = [
    "CodecEntry",
    "CodecRegistry",
    "CodecSpec",
    "DecodeClient",
    "DecodeCostModel",
    "DecodeResponse",
    "DecodeService",
    "DynamicBatcher",
    "LatencyReservoir",
    "MetricsSnapshot",
    "QueuedItem",
    "ServiceMetrics",
    "ServiceThread",
    "default_registry",
    "plan_shards",
]

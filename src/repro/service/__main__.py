"""``python -m repro.service`` — run the decode-service demo CLI."""

from __future__ import annotations

import sys

from repro.service.demo import main

if __name__ == "__main__":
    sys.exit(main())

"""Pure dynamic-batching policy: flush on batch-full OR deadline.

:class:`DynamicBatcher` is the clock-free core of the decode service's
aggregation layer, kept free of asyncio (and of any real clock — callers
pass ``now`` in) so its invariants can be property-tested exhaustively:

* every offered item leaves in exactly one flushed batch (no loss, no
  duplication),
* batches never exceed ``max_batch`` and preserve arrival (FIFO) order,
* a full queue flushes immediately; otherwise an item waits at most
  ``max_delay_s`` past its arrival before :meth:`poll` releases it,
* the queue never holds more than ``capacity`` items — once full,
  :meth:`offer` refuses and the service layer turns that refusal into its
  configured backpressure behaviour (reject-with-retry-after or
  await-a-slot).

One batcher serves one codec: the service keeps a batcher per
``(family, block, rate)`` so only compatible requests (same LLR length,
same decoder) ever share a batch.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Generic, TypeVar

from repro.errors import ConfigurationError

__all__ = ["DynamicBatcher", "QueuedItem"]

T = TypeVar("T")


@dataclass(frozen=True)
class QueuedItem(Generic[T]):
    """One queued payload with its arrival time and flush deadline."""

    payload: T
    enqueued_at: float
    deadline: float


class DynamicBatcher(Generic[T]):
    """FIFO aggregation queue for one codec.

    Parameters
    ----------
    max_batch:
        Largest batch ever flushed (the batch engines' sweet spot, e.g. 64).
    max_delay_s:
        Latency budget: an item is released no later than this long after
        arrival, full batch or not (``0`` degenerates to per-item flushes).
    capacity:
        Hard bound on queued items, or ``None`` for unbounded.  ``offer``
        returns ``None`` *without enqueuing* when the bound is hit.
    """

    def __init__(
        self,
        max_batch: int,
        max_delay_s: float,
        capacity: int | None = None,
    ) -> None:
        if max_batch < 1:
            raise ConfigurationError(f"max_batch must be >= 1, got {max_batch}")
        if max_delay_s < 0.0:
            raise ConfigurationError(
                f"max_delay_s must be >= 0, got {max_delay_s}"
            )
        if capacity is not None and capacity < 1:
            raise ConfigurationError(f"capacity must be >= 1, got {capacity}")
        self.max_batch = int(max_batch)
        self.max_delay_s = float(max_delay_s)
        self.capacity = capacity
        self._queue: list[QueuedItem[T]] = []

    # ------------------------------------------------------------------ #
    # State
    # ------------------------------------------------------------------ #
    @property
    def depth(self) -> int:
        """Number of items currently queued."""
        return len(self._queue)

    @property
    def is_full(self) -> bool:
        """Whether the capacity bound is currently reached."""
        return self.capacity is not None and len(self._queue) >= self.capacity

    def next_deadline(self) -> float | None:
        """Earliest queued deadline, or ``None`` when the queue is empty.

        The queue is FIFO with a constant per-item delay, so the head item
        always carries the earliest deadline.
        """
        return self._queue[0].deadline if self._queue else None

    # ------------------------------------------------------------------ #
    # Mutation
    # ------------------------------------------------------------------ #
    def offer(self, payload: T, now: float) -> list[QueuedItem[T]] | None:
        """Enqueue ``payload`` at time ``now``; return a batch if one is due.

        Returns the flushed batch when the queue reaches ``max_batch``
        (batch-full flush), an empty list when the item was enqueued and is
        still waiting, or ``None`` — *without enqueuing* — when the
        capacity bound is hit (the caller applies backpressure).
        """
        if self.is_full:
            return None
        self._queue.append(
            QueuedItem(payload=payload, enqueued_at=now, deadline=now + self.max_delay_s)
        )
        if len(self._queue) >= self.max_batch:
            return self._pop_batch()
        return []

    def poll(self, now: float) -> list[list[QueuedItem[T]]]:
        """Release every batch whose head deadline has passed by time ``now``.

        After this returns, no queued item has ``deadline <= now``: expired
        items are drained in FIFO order into batches of at most
        ``max_batch``.  A deadline flush takes the *whole* queue up to the
        size cap — riding along with an expired head costs a younger item
        nothing and grows the batch the engines amortize over.
        """
        batches: list[list[QueuedItem[T]]] = []
        while self._queue and self._queue[0].deadline <= now:
            batches.append(self._pop_batch())
        return batches

    def flush_all(self) -> list[list[QueuedItem[T]]]:
        """Drain everything (service shutdown), in FIFO batches of max size."""
        batches: list[list[QueuedItem[T]]] = []
        while self._queue:
            batches.append(self._pop_batch())
        return batches

    def _pop_batch(self) -> list[QueuedItem[T]]:
        batch = self._queue[: self.max_batch]
        del self._queue[: self.max_batch]
        return batch

"""Client facades over :class:`~repro.service.service.DecodeService`.

Two entry styles cover both kinds of caller:

* :class:`DecodeClient` — a thin facade bound to a service (and, for
  cross-thread use, the loop the service runs on).  ``decode`` is the async
  API; ``decode_sync`` is the blocking API, usable from any *other* thread
  while the service's loop runs (it bridges with
  :func:`asyncio.run_coroutine_threadsafe`).
* :class:`ServiceThread` — runs a service on a dedicated background event
  loop so purely synchronous programs (benchmark harnesses, REPLs, the
  demo's baseline mode) can use the service without touching asyncio at
  all::

      with ServiceThread(max_batch=64, max_delay_s=0.002) as client:
          response = client.decode_sync(llrs, family="ldpc", block=576, rate="1/2")

Timeouts are enforced *server-side*: ``decode_sync(timeout=...)`` wires the
client's budget through to ``submit(deadline_s=...)``, so an expired
request is resolved and accounted on the service — not silently abandoned
in flight with the client merely walking away from the future.  And
:meth:`ServiceThread.stop` is crash-safe: if the background loop died (an
exception escaped a callback), ``stop`` does not block forever on a dead
loop — it joins with a timeout and re-raises the captured loop error.
"""

from __future__ import annotations

import asyncio
import concurrent.futures
import threading
from typing import Any, Iterable

import numpy as np

from repro.errors import DeadlineExceededError, ServiceClosedError
from repro.service.metrics import HealthSnapshot, MetricsSnapshot
from repro.service.service import DecodeResponse, DecodeService

__all__ = ["DecodeClient", "ServiceThread"]

#: Extra slack ``decode_sync`` waits beyond the server-side deadline before
#: assuming the bridge itself is broken.  The server resolves the request at
#: the deadline; the slack only covers loop latency delivering that result.
_SYNC_RESULT_GRACE_S = 5.0


class DecodeClient:
    """Facade over one service: async ``decode`` plus blocking ``decode_sync``."""

    def __init__(
        self, service: DecodeService, loop: asyncio.AbstractEventLoop | None = None
    ) -> None:
        self.service = service
        self._loop = loop

    async def decode(
        self,
        llrs: np.ndarray,
        family: str = "ldpc",
        block: int = 576,
        rate: str = "1/2",
        deadline_s: float | None = None,
    ) -> DecodeResponse:
        """Submit one frame and await its decoded bits.

        ``deadline_s`` bounds the total wait; past it the request resolves
        with :class:`~repro.errors.DeadlineExceededError`.
        """
        return await self.service.submit(
            llrs, family=family, block=block, rate=rate, deadline_s=deadline_s
        )

    async def decode_many(
        self,
        frames: Iterable[np.ndarray],
        family: str = "ldpc",
        block: int = 576,
        rate: str = "1/2",
        deadline_s: float | None = None,
    ) -> list[DecodeResponse]:
        """Submit many frames concurrently and await all of them."""
        return list(
            await asyncio.gather(
                *(
                    self.decode(
                        llrs, family=family, block=block, rate=rate, deadline_s=deadline_s
                    )
                    for llrs in frames
                )
            )
        )

    def decode_sync(
        self,
        llrs: np.ndarray,
        family: str = "ldpc",
        block: int = 576,
        rate: str = "1/2",
        timeout: float | None = None,
    ) -> DecodeResponse:
        """Blocking decode from a thread other than the service loop's.

        Requires the client to be bound to the loop the service runs on
        (:class:`ServiceThread` hands out clients bound this way).

        ``timeout`` becomes the request's *server-side* deadline: the
        service resolves the request with
        :class:`~repro.errors.DeadlineExceededError` when it expires, so
        the in-flight work is accounted for instead of abandoned.  The
        local wait allows a little grace beyond the deadline for the result
        to cross the thread bridge; if even that elapses (a dead loop), the
        in-flight call is cancelled and the same typed error is raised.
        """
        if self._loop is None or not self._loop.is_running():
            raise ServiceClosedError(
                "decode_sync needs a running service loop; use ServiceThread "
                "or the async decode() API"
            )
        future = asyncio.run_coroutine_threadsafe(
            self.decode(
                llrs, family=family, block=block, rate=rate, deadline_s=timeout
            ),
            self._loop,
        )
        wait_s = None if timeout is None else timeout + _SYNC_RESULT_GRACE_S
        try:
            return future.result(wait_s)
        except concurrent.futures.TimeoutError:
            future.cancel()
            raise DeadlineExceededError(
                f"no response within the {timeout:.4f} s deadline (plus "
                f"{_SYNC_RESULT_GRACE_S:.0f} s bridge grace) — service loop "
                "unresponsive",
                deadline_s=timeout,
            ) from None

    def metrics_snapshot(self) -> MetricsSnapshot:
        """The service's current metrics snapshot."""
        return self.service.metrics_snapshot()

    def health_snapshot(self) -> HealthSnapshot:
        """The service's current health snapshot (breaker state, decode path)."""
        return self.service.health_snapshot()


class ServiceThread:
    """Run a :class:`DecodeService` on a dedicated background event loop.

    Context-manager entry starts the loop thread and the service; exit
    drains, stops the service and joins the thread.  All constructor
    keyword arguments are forwarded to :class:`DecodeService`.

    The loop thread is supervised: an exception that escapes a loop
    callback (normally just logged by asyncio, leaving the loop a zombie)
    is captured and stops the loop, and :meth:`stop` re-raises it instead
    of deadlocking on a loop that will never answer.
    """

    def __init__(self, **service_kwargs: Any) -> None:
        self.service = DecodeService(**service_kwargs)
        self._loop: asyncio.AbstractEventLoop | None = None
        self._thread: threading.Thread | None = None
        self._started = threading.Event()
        self._loop_error: BaseException | None = None

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #
    def _on_loop_exception(self, loop: asyncio.AbstractEventLoop, context: dict) -> None:
        """Capture a crash that escaped a callback and bring the loop down."""
        exc = context.get("exception")
        if exc is None:
            exc = RuntimeError(context.get("message", "event loop callback failed"))
        if self._loop_error is None:
            self._loop_error = exc
        loop.stop()

    def _run(self) -> None:
        loop = asyncio.new_event_loop()
        asyncio.set_event_loop(loop)
        loop.set_exception_handler(self._on_loop_exception)
        self._loop = loop
        loop.call_soon(self._started.set)
        try:
            loop.run_forever()
        except BaseException as exc:  # loop machinery itself failed
            if self._loop_error is None:
                self._loop_error = exc
        finally:
            loop.close()

    def start(self) -> DecodeClient:
        """Start the loop thread and the service; return a bound client."""
        if self._thread is not None:
            return self.client()
        self._thread = threading.Thread(
            target=self._run, name="decode-service-loop", daemon=True
        )
        self._thread.start()
        self._started.wait()
        asyncio.run_coroutine_threadsafe(self.service.start(), self._loop).result()
        return self.client()

    def stop(self, drain: bool = True, join_timeout_s: float = 10.0) -> None:
        """Stop the service (draining by default), the loop and the thread.

        Never hangs on a crashed loop: the stop coroutine and the thread
        join are both bounded by ``join_timeout_s``, and a captured loop
        crash is re-raised here so the failure surfaces in the foreground
        thread instead of vanishing with the daemon.
        """
        if self._thread is None:
            return
        thread, loop = self._thread, self._loop
        self._thread = None
        self._loop = None
        try:
            if thread.is_alive() and loop.is_running():
                try:
                    asyncio.run_coroutine_threadsafe(
                        self.service.stop(drain=drain), loop
                    ).result(join_timeout_s)
                except concurrent.futures.TimeoutError:
                    pass  # the loop died mid-stop; fall through to the join
                except RuntimeError:
                    pass  # loop shut down between the check and the call
                try:
                    loop.call_soon_threadsafe(loop.stop)
                except RuntimeError:
                    pass  # already stopped/closed
            thread.join(join_timeout_s)
            if thread.is_alive():
                raise ServiceClosedError(
                    f"service loop thread failed to stop within {join_timeout_s:.1f} s"
                )
        finally:
            error, self._loop_error = self._loop_error, None
            if error is not None:
                raise ServiceClosedError(
                    "decode service background loop crashed"
                ) from error

    def client(self) -> DecodeClient:
        """A client bound to the background loop (sync + async APIs)."""
        return DecodeClient(self.service, loop=self._loop)

    def __enter__(self) -> DecodeClient:
        return self.start()

    def __exit__(self, *exc_info: Any) -> None:
        self.stop()

"""Client facades over :class:`~repro.service.service.DecodeService`.

Two entry styles cover both kinds of caller:

* :class:`DecodeClient` — a thin facade bound to a service (and, for
  cross-thread use, the loop the service runs on).  ``decode`` is the async
  API; ``decode_sync`` is the blocking API, usable from any *other* thread
  while the service's loop runs (it bridges with
  :func:`asyncio.run_coroutine_threadsafe`).
* :class:`ServiceThread` — runs a service on a dedicated background event
  loop so purely synchronous programs (benchmark harnesses, REPLs, the
  demo's baseline mode) can use the service without touching asyncio at
  all::

      with ServiceThread(max_batch=64, max_delay_s=0.002) as client:
          response = client.decode_sync(llrs, family="ldpc", block=576, rate="1/2")
"""

from __future__ import annotations

import asyncio
import threading
from typing import Any, Iterable

import numpy as np

from repro.errors import ServiceClosedError
from repro.service.metrics import MetricsSnapshot
from repro.service.service import DecodeResponse, DecodeService

__all__ = ["DecodeClient", "ServiceThread"]


class DecodeClient:
    """Facade over one service: async ``decode`` plus blocking ``decode_sync``."""

    def __init__(
        self, service: DecodeService, loop: asyncio.AbstractEventLoop | None = None
    ) -> None:
        self.service = service
        self._loop = loop

    async def decode(
        self,
        llrs: np.ndarray,
        family: str = "ldpc",
        block: int = 576,
        rate: str = "1/2",
    ) -> DecodeResponse:
        """Submit one frame and await its decoded bits."""
        return await self.service.submit(llrs, family=family, block=block, rate=rate)

    async def decode_many(
        self,
        frames: Iterable[np.ndarray],
        family: str = "ldpc",
        block: int = 576,
        rate: str = "1/2",
    ) -> list[DecodeResponse]:
        """Submit many frames concurrently and await all of them."""
        return list(
            await asyncio.gather(
                *(
                    self.decode(llrs, family=family, block=block, rate=rate)
                    for llrs in frames
                )
            )
        )

    def decode_sync(
        self,
        llrs: np.ndarray,
        family: str = "ldpc",
        block: int = 576,
        rate: str = "1/2",
        timeout: float | None = None,
    ) -> DecodeResponse:
        """Blocking decode from a thread other than the service loop's.

        Requires the client to be bound to the loop the service runs on
        (:class:`ServiceThread` hands out clients bound this way).
        """
        if self._loop is None or not self._loop.is_running():
            raise ServiceClosedError(
                "decode_sync needs a running service loop; use ServiceThread "
                "or the async decode() API"
            )
        future = asyncio.run_coroutine_threadsafe(
            self.decode(llrs, family=family, block=block, rate=rate), self._loop
        )
        return future.result(timeout)

    def metrics_snapshot(self) -> MetricsSnapshot:
        """The service's current metrics snapshot."""
        return self.service.metrics_snapshot()


class ServiceThread:
    """Run a :class:`DecodeService` on a dedicated background event loop.

    Context-manager entry starts the loop thread and the service; exit
    drains, stops the service and joins the thread.  All constructor
    keyword arguments are forwarded to :class:`DecodeService`.
    """

    def __init__(self, **service_kwargs: Any) -> None:
        self.service = DecodeService(**service_kwargs)
        self._loop: asyncio.AbstractEventLoop | None = None
        self._thread: threading.Thread | None = None
        self._started = threading.Event()

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #
    def _run(self) -> None:
        loop = asyncio.new_event_loop()
        asyncio.set_event_loop(loop)
        self._loop = loop
        loop.call_soon(self._started.set)
        try:
            loop.run_forever()
        finally:
            loop.close()

    def start(self) -> DecodeClient:
        """Start the loop thread and the service; return a bound client."""
        if self._thread is not None:
            return self.client()
        self._thread = threading.Thread(
            target=self._run, name="decode-service-loop", daemon=True
        )
        self._thread.start()
        self._started.wait()
        asyncio.run_coroutine_threadsafe(self.service.start(), self._loop).result()
        return self.client()

    def stop(self, drain: bool = True) -> None:
        """Stop the service (draining by default), the loop and the thread."""
        if self._thread is None:
            return
        asyncio.run_coroutine_threadsafe(
            self.service.stop(drain=drain), self._loop
        ).result()
        self._loop.call_soon_threadsafe(self._loop.stop)
        self._thread.join()
        self._thread = None
        self._loop = None

    def client(self) -> DecodeClient:
        """A client bound to the background loop (sync + async APIs)."""
        return DecodeClient(self.service, loop=self._loop)

    def __enter__(self) -> DecodeClient:
        return self.start()

    def __exit__(self, *exc_info: Any) -> None:
        self.stop()

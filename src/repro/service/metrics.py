"""Live decode-service metrics: queue depth, batch sizes, latency, throughput.

The service updates one :class:`ServiceMetrics` instance from the event-loop
thread only (decode executors report back through loop callbacks), so the
counters need no locks.  :meth:`ServiceMetrics.snapshot` freezes the current
state into an immutable :class:`MetricsSnapshot` — the service's public
observability surface, safe to hand across threads and trivially
JSON-serialisable via :meth:`MetricsSnapshot.as_dict`.

Latency percentiles come from bounded reservoirs of the most recent
completions (default 4096), so a long-lived service reports *current*
latency behaviour instead of an all-time average diluted by history.
"""

from __future__ import annotations

import time
from collections import Counter, deque
from dataclasses import dataclass, field

import numpy as np

__all__ = ["LatencyReservoir", "MetricsSnapshot", "ServiceMetrics"]


class LatencyReservoir:
    """Sliding window over the most recent latency observations (seconds)."""

    def __init__(self, window: int = 4096) -> None:
        self._values: deque[float] = deque(maxlen=window)

    def record(self, seconds: float) -> None:
        """Add one observation."""
        self._values.append(float(seconds))

    def __len__(self) -> int:
        return len(self._values)

    def percentiles(self, qs: tuple[float, ...] = (50.0, 99.0)) -> tuple[float, ...]:
        """Window percentiles (NaN-free: all zeros when no observations yet)."""
        if not self._values:
            return tuple(0.0 for _ in qs)
        arr = np.fromiter(self._values, dtype=np.float64)
        return tuple(float(v) for v in np.percentile(arr, qs))


@dataclass(frozen=True)
class MetricsSnapshot:
    """Immutable view of the service's counters at one instant.

    Latency fields are in seconds over the recent-completions window;
    ``throughput_fps`` is completed frames per second of service uptime.
    """

    submitted: int
    completed: int
    rejected: int
    validation_failures: int
    in_flight: int
    queue_depths: dict[str, int]
    batch_count: int
    batch_size_histogram: dict[int, int]
    mean_batch_size: float
    queue_p50_s: float
    queue_p99_s: float
    total_p50_s: float
    total_p99_s: float
    throughput_fps: float
    uptime_s: float

    def as_dict(self) -> dict:
        """JSON-friendly dict (histogram keys become strings)."""
        return {
            "submitted": self.submitted,
            "completed": self.completed,
            "rejected": self.rejected,
            "validation_failures": self.validation_failures,
            "in_flight": self.in_flight,
            "queue_depths": dict(self.queue_depths),
            "batch_count": self.batch_count,
            "batch_size_histogram": {
                str(k): v for k, v in sorted(self.batch_size_histogram.items())
            },
            "mean_batch_size": self.mean_batch_size,
            "queue_p50_s": self.queue_p50_s,
            "queue_p99_s": self.queue_p99_s,
            "total_p50_s": self.total_p50_s,
            "total_p99_s": self.total_p99_s,
            "throughput_fps": self.throughput_fps,
            "uptime_s": self.uptime_s,
        }

    def __str__(self) -> str:
        return (
            f"{self.completed}/{self.submitted} frames decoded "
            f"({self.rejected} rejected), {self.batch_count} batches "
            f"(mean size {self.mean_batch_size:.1f}), "
            f"latency p50/p99 {1e3 * self.total_p50_s:.2f}/"
            f"{1e3 * self.total_p99_s:.2f} ms "
            f"(queued {1e3 * self.queue_p50_s:.2f}/"
            f"{1e3 * self.queue_p99_s:.2f} ms), "
            f"{self.throughput_fps:.0f} frames/s over {self.uptime_s:.2f} s"
        )


@dataclass
class ServiceMetrics:
    """Mutable counters behind the service; mutate from the loop thread only."""

    submitted: int = 0
    completed: int = 0
    rejected: int = 0
    validation_failures: int = 0
    in_flight: int = 0
    batch_count: int = 0
    batched_frames: int = 0
    batch_sizes: Counter = field(default_factory=Counter)
    queue_latency: LatencyReservoir = field(default_factory=LatencyReservoir)
    total_latency: LatencyReservoir = field(default_factory=LatencyReservoir)
    started_at: float = field(default_factory=time.perf_counter)

    def record_batch(self, size: int) -> None:
        """Account one dispatched batch of ``size`` frames."""
        self.batch_count += 1
        self.batched_frames += size
        self.batch_sizes[size] += 1

    def record_completion(self, queued_s: float, total_s: float) -> None:
        """Account one finished request with its latency breakdown."""
        self.completed += 1
        self.queue_latency.record(queued_s)
        self.total_latency.record(total_s)

    def snapshot(self, queue_depths: dict[str, int]) -> MetricsSnapshot:
        """Freeze the counters (plus the caller-supplied live queue depths)."""
        uptime = max(time.perf_counter() - self.started_at, 1e-9)
        q50, q99 = self.queue_latency.percentiles()
        t50, t99 = self.total_latency.percentiles()
        return MetricsSnapshot(
            submitted=self.submitted,
            completed=self.completed,
            rejected=self.rejected,
            validation_failures=self.validation_failures,
            in_flight=self.in_flight,
            queue_depths=dict(queue_depths),
            batch_count=self.batch_count,
            batch_size_histogram=dict(self.batch_sizes),
            mean_batch_size=(
                self.batched_frames / self.batch_count if self.batch_count else 0.0
            ),
            queue_p50_s=q50,
            queue_p99_s=q99,
            total_p50_s=t50,
            total_p99_s=t99,
            throughput_fps=self.completed / uptime,
            uptime_s=uptime,
        )

"""Live decode-service metrics: queue depth, batch sizes, latency, throughput,
and the resilience layer's retry/breaker/deadline/degraded counters.

The service updates one :class:`ServiceMetrics` instance from the event-loop
thread only (decode executors report back through loop callbacks), so the
counters need no locks.  :meth:`ServiceMetrics.snapshot` freezes the current
state into an immutable :class:`MetricsSnapshot` — the service's public
observability surface, safe to hand across threads and trivially
JSON-serialisable via :meth:`MetricsSnapshot.as_dict`.
:meth:`ServiceMetrics.health` distils the resilience-relevant subset into a
:class:`HealthSnapshot` — what a load balancer's health check would read.

Latency percentiles come from bounded reservoirs of the most recent
completions (default 4096), so a long-lived service reports *current*
latency behaviour instead of an all-time average diluted by history.

Request accounting is conservation-shaped: every admitted request ends in
exactly one of ``completed``, ``failed``, ``deadline_exceeded`` or
``cancelled``, and ``in_flight`` returns to zero when the service drains —
the chaos suite asserts this invariant under every fault plan it draws.
"""

from __future__ import annotations

import time
from collections import Counter, deque
from dataclasses import dataclass, field

import numpy as np

__all__ = [
    "HealthSnapshot",
    "LatencyReservoir",
    "MetricsSnapshot",
    "ServiceMetrics",
]


class LatencyReservoir:
    """Sliding window over the most recent latency observations (seconds)."""

    def __init__(self, window: int = 4096) -> None:
        self._values: deque[float] = deque(maxlen=window)

    def record(self, seconds: float) -> None:
        """Add one observation."""
        self._values.append(float(seconds))

    def __len__(self) -> int:
        return len(self._values)

    def percentiles(self, qs: tuple[float, ...] = (50.0, 99.0)) -> tuple[float, ...]:
        """Window percentiles (NaN-free: all zeros when no observations yet)."""
        if not self._values:
            return tuple(0.0 for _ in qs)
        arr = np.fromiter(self._values, dtype=np.float64)
        return tuple(float(v) for v in np.percentile(arr, qs))


@dataclass(frozen=True)
class MetricsSnapshot:
    """Immutable view of the service's counters at one instant.

    Latency fields are in seconds over the recent-completions window;
    ``throughput_fps`` is completed frames per second of service uptime.
    The resilience block (``retries`` .. ``breaker_state``) is zero /
    ``"disabled"`` on a service that never saw a fault.
    """

    submitted: int
    completed: int
    rejected: int
    validation_failures: int
    in_flight: int
    queue_depths: dict[str, int]
    batch_count: int
    batch_size_histogram: dict[int, int]
    mean_batch_size: float
    queue_p50_s: float
    queue_p99_s: float
    total_p50_s: float
    total_p99_s: float
    throughput_fps: float
    uptime_s: float
    # Resilience layer
    failed: int
    cancelled: int
    deadline_exceeded: int
    retries: int
    pool_rebuilds: int
    watchdog_timeouts: int
    breaker_opens: int
    degraded_batches: int
    degraded_s: float
    faults_injected: int
    breaker_state: str

    def as_dict(self) -> dict:
        """JSON-friendly dict (histogram keys become strings)."""
        return {
            "submitted": self.submitted,
            "completed": self.completed,
            "rejected": self.rejected,
            "validation_failures": self.validation_failures,
            "in_flight": self.in_flight,
            "queue_depths": dict(self.queue_depths),
            "batch_count": self.batch_count,
            "batch_size_histogram": {
                str(k): v for k, v in sorted(self.batch_size_histogram.items())
            },
            "mean_batch_size": self.mean_batch_size,
            "queue_p50_s": self.queue_p50_s,
            "queue_p99_s": self.queue_p99_s,
            "total_p50_s": self.total_p50_s,
            "total_p99_s": self.total_p99_s,
            "throughput_fps": self.throughput_fps,
            "uptime_s": self.uptime_s,
            "failed": self.failed,
            "cancelled": self.cancelled,
            "deadline_exceeded": self.deadline_exceeded,
            "retries": self.retries,
            "pool_rebuilds": self.pool_rebuilds,
            "watchdog_timeouts": self.watchdog_timeouts,
            "breaker_opens": self.breaker_opens,
            "degraded_batches": self.degraded_batches,
            "degraded_s": self.degraded_s,
            "faults_injected": self.faults_injected,
            "breaker_state": self.breaker_state,
        }

    def __str__(self) -> str:
        text = (
            f"{self.completed}/{self.submitted} frames decoded "
            f"({self.rejected} rejected), {self.batch_count} batches "
            f"(mean size {self.mean_batch_size:.1f}), "
            f"latency p50/p99 {1e3 * self.total_p50_s:.2f}/"
            f"{1e3 * self.total_p99_s:.2f} ms "
            f"(queued {1e3 * self.queue_p50_s:.2f}/"
            f"{1e3 * self.queue_p99_s:.2f} ms), "
            f"{self.throughput_fps:.0f} frames/s over {self.uptime_s:.2f} s"
        )
        incidents = (
            self.failed
            + self.deadline_exceeded
            + self.cancelled
            + self.retries
            + self.pool_rebuilds
        )
        if incidents or self.faults_injected:
            text += (
                f"; resilience: {self.retries} retries, "
                f"{self.pool_rebuilds} rebuilds, "
                f"{self.watchdog_timeouts} watchdog timeouts, "
                f"{self.deadline_exceeded} deadline-expired, "
                f"{self.failed} failed, {self.cancelled} cancelled, "
                f"breaker {self.breaker_state} "
                f"({self.breaker_opens} opens, {self.degraded_batches} degraded "
                f"batches), {self.faults_injected} faults injected"
            )
        return text


@dataclass(frozen=True)
class HealthSnapshot:
    """The resilience-relevant health surface — a load balancer's view.

    ``healthy`` means the service is running with its breaker not open
    (half-open counts as healthy: probes are in flight).  ``decode_path``
    is where the *next* batch would run (e.g. ``"process"`` or
    ``"degraded:thread"``).
    """

    healthy: bool
    running: bool
    breaker_state: str
    decode_path: str
    consecutive_failures: int
    in_flight: int
    retries: int
    pool_rebuilds: int
    watchdog_timeouts: int
    deadline_exceeded: int
    degraded_batches: int
    degraded_s: float
    faults_injected: int
    uptime_s: float

    def as_dict(self) -> dict:
        """JSON-friendly dict."""
        return {
            "healthy": self.healthy,
            "running": self.running,
            "breaker_state": self.breaker_state,
            "decode_path": self.decode_path,
            "consecutive_failures": self.consecutive_failures,
            "in_flight": self.in_flight,
            "retries": self.retries,
            "pool_rebuilds": self.pool_rebuilds,
            "watchdog_timeouts": self.watchdog_timeouts,
            "deadline_exceeded": self.deadline_exceeded,
            "degraded_batches": self.degraded_batches,
            "degraded_s": self.degraded_s,
            "faults_injected": self.faults_injected,
            "uptime_s": self.uptime_s,
        }


@dataclass
class ServiceMetrics:
    """Mutable counters behind the service; mutate from the loop thread only."""

    submitted: int = 0
    completed: int = 0
    rejected: int = 0
    validation_failures: int = 0
    in_flight: int = 0
    batch_count: int = 0
    batched_frames: int = 0
    batch_sizes: Counter = field(default_factory=Counter)
    queue_latency: LatencyReservoir = field(default_factory=LatencyReservoir)
    total_latency: LatencyReservoir = field(default_factory=LatencyReservoir)
    started_at: float = field(default_factory=time.perf_counter)
    # Resilience layer
    failed: int = 0
    cancelled: int = 0
    deadline_exceeded: int = 0
    retries: int = 0
    pool_rebuilds: int = 0
    watchdog_timeouts: int = 0
    breaker_opens: int = 0
    degraded_batches: int = 0
    degraded_s: float = 0.0
    faults_injected: int = 0

    def record_batch(self, size: int) -> None:
        """Account one dispatched batch of ``size`` frames."""
        self.batch_count += 1
        self.batched_frames += size
        self.batch_sizes[size] += 1

    def record_completion(self, queued_s: float, total_s: float) -> None:
        """Account one finished request with its latency breakdown."""
        self.completed += 1
        self.queue_latency.record(queued_s)
        self.total_latency.record(total_s)

    def snapshot(
        self, queue_depths: dict[str, int], breaker_state: str = "disabled"
    ) -> MetricsSnapshot:
        """Freeze the counters (plus the caller-supplied live queue depths)."""
        uptime = max(time.perf_counter() - self.started_at, 1e-9)
        q50, q99 = self.queue_latency.percentiles()
        t50, t99 = self.total_latency.percentiles()
        return MetricsSnapshot(
            submitted=self.submitted,
            completed=self.completed,
            rejected=self.rejected,
            validation_failures=self.validation_failures,
            in_flight=self.in_flight,
            queue_depths=dict(queue_depths),
            batch_count=self.batch_count,
            batch_size_histogram=dict(self.batch_sizes),
            mean_batch_size=(
                self.batched_frames / self.batch_count if self.batch_count else 0.0
            ),
            queue_p50_s=q50,
            queue_p99_s=q99,
            total_p50_s=t50,
            total_p99_s=t99,
            throughput_fps=self.completed / uptime,
            uptime_s=uptime,
            failed=self.failed,
            cancelled=self.cancelled,
            deadline_exceeded=self.deadline_exceeded,
            retries=self.retries,
            pool_rebuilds=self.pool_rebuilds,
            watchdog_timeouts=self.watchdog_timeouts,
            breaker_opens=self.breaker_opens,
            degraded_batches=self.degraded_batches,
            degraded_s=self.degraded_s,
            faults_injected=self.faults_injected,
            breaker_state=breaker_state,
        )

    def health(
        self,
        running: bool,
        breaker_state: str,
        decode_path: str,
        consecutive_failures: int,
    ) -> HealthSnapshot:
        """Freeze the resilience-relevant subset into a :class:`HealthSnapshot`."""
        return HealthSnapshot(
            healthy=running and breaker_state != "open",
            running=running,
            breaker_state=breaker_state,
            decode_path=decode_path,
            consecutive_failures=consecutive_failures,
            in_flight=self.in_flight,
            retries=self.retries,
            pool_rebuilds=self.pool_rebuilds,
            watchdog_timeouts=self.watchdog_timeouts,
            deadline_exceeded=self.deadline_exceeded,
            degraded_batches=self.degraded_batches,
            degraded_s=self.degraded_s,
            faults_injected=self.faults_injected,
            uptime_s=max(time.perf_counter() - self.started_at, 1e-9),
        )

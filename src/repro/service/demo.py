"""Decode-service demo: N concurrent clients over AWGN-corrupted frames.

This is the workload behind both ``python -m repro.service`` and
``examples/decode_service_demo.py`` (and CI's service smoke step): generate
random frames for a mix of codecs, corrupt them over a BPSK/AWGN channel at
a chosen Eb/N0, fire every frame at the service from its own client
coroutine, then print the live metrics snapshot and the measured error
rates.  :func:`run_demo` returns the numbers as a dict so scripted callers
(tests, CI) can assert on them.
"""

from __future__ import annotations

import argparse
import asyncio
import time
from dataclasses import dataclass

import numpy as np

from repro.channel.awgn import AWGNChannel, ebn0_to_noise_sigma
from repro.channel.modulation import BPSKModulator
from repro.service.registry import CodecEntry, CodecRegistry, default_registry
from repro.service.service import DecodeService
from repro.sim.runner import resolve_code_rate

__all__ = ["generate_llr_frames", "main", "run_demo"]

#: Codec mix exercised by default: one LDPC and one turbo lane, small
#: blocks so the demo stays quick on CI.
DEFAULT_CODECS = (("ldpc", 576, "1/2"), ("turbo", 48, "1/2"))


def generate_llr_frames(
    entry: CodecEntry, count: int, ebn0_db: float, rng: np.random.Generator
) -> tuple[np.ndarray, np.ndarray]:
    """Random encoded frames through BPSK/AWGN: ``(llrs, reference_bits)``.

    ``llrs`` is ``(count, n_bits)``; ``reference_bits`` is what the decoder
    is expected to reproduce — codewords for LDPC, information bits for
    turbo (per ``entry.decides_info_bits``).
    """
    info = rng.integers(0, 2, size=(count, entry.k_bits), dtype=np.int8)
    codewords = entry.code.encode_batch(info)
    modulator = BPSKModulator()
    sigma = ebn0_to_noise_sigma(ebn0_db, resolve_code_rate(entry.code.rate))
    channel = AWGNChannel(sigma, rng)
    received = channel.transmit(modulator.modulate(codewords))
    llrs = modulator.demodulate_llr(received, channel.llr_noise_variance(False))
    reference = info if entry.decides_info_bits else codewords.astype(np.int8)
    return llrs, reference


@dataclass
class _Workload:
    entry: CodecEntry
    llrs: np.ndarray
    reference: np.ndarray


async def _run_async(
    service: DecodeService, workloads: list[_Workload]
) -> tuple[dict, list]:
    async with service:
        started = time.perf_counter()
        tasks = []
        for load in workloads:
            spec = load.entry.spec
            for row in load.llrs:
                tasks.append(
                    asyncio.create_task(
                        service.submit(
                            row, family=spec.family, block=spec.block, rate=spec.rate
                        )
                    )
                )
        responses = await asyncio.gather(*tasks)
        elapsed = time.perf_counter() - started
        snapshot = service.metrics_snapshot()
    return {"elapsed_s": elapsed, "snapshot": snapshot}, responses


def run_demo(
    requests: int = 100,
    ebn0_db: float = 2.0,
    codecs: tuple[tuple[str, int, str], ...] = DEFAULT_CODECS,
    max_batch: int = 64,
    max_delay_s: float = 0.005,
    backpressure: str = "wait",
    executor: str = "thread",
    shards: int | str = 0,
    seed: int = 2012,
    registry: CodecRegistry | None = None,
    quiet: bool = False,
) -> dict:
    """Fire ``requests`` frames (split across ``codecs``) at one service.

    Returns a dict with the metrics snapshot (as a dict), wall-clock
    throughput, and per-codec bit/frame error counts against the encoded
    reference bits.
    """
    registry = registry if registry is not None else default_registry()
    rng = np.random.default_rng(seed)
    per_codec = max(requests // len(codecs), 1)
    workloads = [
        _Workload(entry, *generate_llr_frames(entry, per_codec, ebn0_db, rng))
        for entry in (registry.resolve(*codec) for codec in codecs)
    ]
    service = DecodeService(
        registry=registry,
        max_batch=max_batch,
        max_delay_s=max_delay_s,
        backpressure=backpressure,
        executor=executor,
        shards=shards,
    )
    timing, responses = asyncio.run(_run_async(service, workloads))

    # Re-associate responses with their workloads by codec label, in order.
    cursor = 0
    per_codec_stats = {}
    for load in workloads:
        count = load.llrs.shape[0]
        chunk = responses[cursor : cursor + count]
        cursor += count
        decoded = np.stack([response.bits for response in chunk])
        bit_errors = int(np.count_nonzero(decoded != load.reference))
        frame_errors = int(np.count_nonzero((decoded != load.reference).any(axis=1)))
        per_codec_stats[load.entry.spec.label] = {
            "frames": count,
            "bit_errors": bit_errors,
            "frame_errors": frame_errors,
            "total_bits": int(load.reference.size),
            "avg_iterations": float(
                np.mean([response.iterations for response in chunk])
            ),
        }
    snapshot = timing["snapshot"]
    total_frames = sum(stats["frames"] for stats in per_codec_stats.values())
    payload = {
        "requests": total_frames,
        "ebn0_db": ebn0_db,
        "elapsed_s": timing["elapsed_s"],
        "throughput_fps": total_frames / timing["elapsed_s"],
        "executor": service.executor_mode,
        "planned_shards": service.planned_shards,
        "metrics": snapshot.as_dict(),
        "per_codec": per_codec_stats,
    }
    if not quiet:
        print(f"decode service demo: {total_frames} frames at Eb/N0 = {ebn0_db} dB")
        print(f"  executor={service.executor_mode} shards={service.planned_shards}")
        print(f"  metrics: {snapshot}")
        for label, stats in per_codec_stats.items():
            ber = stats["bit_errors"] / stats["total_bits"]
            print(
                f"  {label}: {stats['frames']} frames, BER {ber:.2e}, "
                f"{stats['frame_errors']} frame errors, "
                f"avg {stats['avg_iterations']:.1f} iterations"
            )
    return payload


def main(argv: list[str] | None = None) -> int:
    """CLI entry point (``python -m repro.service``)."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.service",
        description="Dynamic-batching decode service demo over AWGN frames.",
    )
    parser.add_argument("--requests", type=int, default=100,
                        help="total frames across all codecs (default 100)")
    parser.add_argument("--ebn0", type=float, default=2.0,
                        help="channel Eb/N0 in dB (default 2.0)")
    parser.add_argument("--max-batch", type=int, default=64,
                        help="largest dispatched batch (default 64)")
    parser.add_argument("--delay-ms", type=float, default=5.0,
                        help="batching latency budget in ms (default 5)")
    parser.add_argument("--backpressure", choices=("wait", "reject"), default="wait")
    parser.add_argument("--executor", choices=("thread", "process", "inline"),
                        default="thread")
    parser.add_argument("--shards", default="0",
                        help="worker processes for --executor process, or 'auto'")
    parser.add_argument("--ldpc-only", action="store_true",
                        help="serve only the LDPC lane (default: LDPC + turbo mix)")
    parser.add_argument("--seed", type=int, default=2012)
    args = parser.parse_args(argv)
    shards: int | str = args.shards if args.shards == "auto" else int(args.shards)
    codecs = DEFAULT_CODECS[:1] if args.ldpc_only else DEFAULT_CODECS
    run_demo(
        requests=args.requests,
        ebn0_db=args.ebn0,
        codecs=codecs,
        max_batch=args.max_batch,
        max_delay_s=args.delay_ms / 1e3,
        backpressure=args.backpressure,
        executor=args.executor,
        shards=shards,
        seed=args.seed,
    )
    return 0

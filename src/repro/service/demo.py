"""Decode-service demo: N concurrent clients over AWGN-corrupted frames.

This is the workload behind both ``python -m repro.service`` and
``examples/decode_service_demo.py`` (and CI's service smoke steps): generate
random frames for a mix of codecs, corrupt them over a BPSK/AWGN channel at
a chosen Eb/N0, fire every frame at the service from its own client
coroutine, then print the live metrics snapshot and the measured error
rates.  :func:`run_demo` returns the numbers as a dict so scripted callers
(tests, CI) can assert on them.

The demo doubles as the chaos smoke: ``--inject-faults "crash@2,hang@5:0.1"``
drives a deterministic :class:`~repro.faults.FaultPlan` through the decode
path while the same client mix runs, and the exit code is nonzero unless
**every** request resolved — the resilience layer's retries are expected to
make injected faults invisible to callers.
"""

from __future__ import annotations

import argparse
import asyncio
import time
from collections import Counter
from dataclasses import dataclass

import numpy as np

from repro.channel.awgn import AWGNChannel, ebn0_to_noise_sigma
from repro.channel.modulation import BPSKModulator
from repro.faults import FaultPlan
from repro.service.registry import CodecEntry, CodecRegistry, default_registry
from repro.service.resilience import ResilienceConfig
from repro.service.service import DecodeResponse, DecodeService
from repro.sim.runner import resolve_code_rate

__all__ = ["generate_llr_frames", "main", "run_demo"]

#: Codec mix exercised by default: one LDPC and one turbo lane, small
#: blocks so the demo stays quick on CI.
DEFAULT_CODECS = (("ldpc", 576, "1/2"), ("turbo", 48, "1/2"))

#: Hard wall on the whole demo run — under fault injection a wedged service
#: must fail the smoke, not hang CI.
DEMO_WALL_S = 120.0


def generate_llr_frames(
    entry: CodecEntry, count: int, ebn0_db: float, rng: np.random.Generator
) -> tuple[np.ndarray, np.ndarray]:
    """Random encoded frames through BPSK/AWGN: ``(llrs, reference_bits)``.

    ``llrs`` is ``(count, n_bits)``; ``reference_bits`` is what the decoder
    is expected to reproduce — codewords for LDPC, information bits for
    turbo (per ``entry.decides_info_bits``).
    """
    info = rng.integers(0, 2, size=(count, entry.k_bits), dtype=np.int8)
    codewords = entry.code.encode_batch(info)
    modulator = BPSKModulator()
    sigma = ebn0_to_noise_sigma(ebn0_db, resolve_code_rate(entry.code.rate))
    channel = AWGNChannel(sigma, rng)
    received = channel.transmit(modulator.modulate(codewords))
    llrs = modulator.demodulate_llr(received, channel.llr_noise_variance(False))
    reference = info if entry.decides_info_bits else codewords.astype(np.int8)
    return llrs, reference


@dataclass
class _Workload:
    entry: CodecEntry
    llrs: np.ndarray
    reference: np.ndarray


async def _run_async(
    service: DecodeService,
    workloads: list[_Workload],
    deadline_s: float | None,
    wall_s: float,
) -> tuple[dict, list]:
    async with service:
        started = time.perf_counter()
        tasks = []
        for load in workloads:
            spec = load.entry.spec
            for row in load.llrs:
                tasks.append(
                    asyncio.create_task(
                        service.submit(
                            row,
                            family=spec.family,
                            block=spec.block,
                            rate=spec.rate,
                            deadline_s=deadline_s,
                        )
                    )
                )
        done, pending = await asyncio.wait(tasks, timeout=wall_s)
        for task in pending:  # wedged beyond the wall: count as unresolved
            task.cancel()
        if pending:
            await asyncio.gather(*pending, return_exceptions=True)
        elapsed = time.perf_counter() - started
        # Outcomes in submission order: DecodeResponse, exception, or None
        # (never resolved inside the wall).
        outcomes: list = []
        for task in tasks:
            if task not in done:
                outcomes.append(None)
            elif task.exception() is not None:
                outcomes.append(task.exception())
            else:
                outcomes.append(task.result())
        snapshot = service.metrics_snapshot()
        health = service.health_snapshot()
    return {"elapsed_s": elapsed, "snapshot": snapshot, "health": health}, outcomes


def run_demo(
    requests: int = 100,
    ebn0_db: float = 2.0,
    codecs: tuple[tuple[str, int, str], ...] = DEFAULT_CODECS,
    max_batch: int = 64,
    max_delay_s: float = 0.005,
    backpressure: str = "wait",
    executor: str = "thread",
    shards: int | str = 0,
    seed: int = 2012,
    registry: CodecRegistry | None = None,
    quiet: bool = False,
    fault_plan: FaultPlan | str | None = None,
    attempts: int | None = None,
    deadline_s: float | None = None,
    watchdog_s: float | str | None = None,
    wall_s: float = DEMO_WALL_S,
) -> dict:
    """Fire ``requests`` frames (split across ``codecs``) at one service.

    Returns a dict with the metrics snapshot (as a dict), wall-clock
    throughput, per-codec bit/frame error counts against the encoded
    reference bits, and the resolution tally — ``resolved`` counts requests
    that came back as decoded frames, ``errors_by_type`` the typed failures,
    ``unresolved`` the requests still hanging when ``wall_s`` struck (always
    0 for a healthy service, fault-injected or not).
    """
    registry = registry if registry is not None else default_registry()
    if isinstance(fault_plan, str):
        fault_plan = FaultPlan.from_string(fault_plan)
    resilience = (
        ResilienceConfig(max_attempts=attempts) if attempts is not None else None
    )
    rng = np.random.default_rng(seed)
    per_codec = max(requests // len(codecs), 1)
    workloads = [
        _Workload(entry, *generate_llr_frames(entry, per_codec, ebn0_db, rng))
        for entry in (registry.resolve(*codec) for codec in codecs)
    ]
    service = DecodeService(
        registry=registry,
        max_batch=max_batch,
        max_delay_s=max_delay_s,
        backpressure=backpressure,
        executor=executor,
        shards=shards,
        resilience=resilience,
        watchdog_s=watchdog_s,
        fault_plan=fault_plan,
    )
    timing, outcomes = asyncio.run(
        _run_async(service, workloads, deadline_s, wall_s)
    )

    resolved = sum(1 for out in outcomes if isinstance(out, DecodeResponse))
    unresolved = sum(1 for out in outcomes if out is None)
    errors_by_type = Counter(
        type(out).__name__
        for out in outcomes
        if out is not None and not isinstance(out, DecodeResponse)
    )

    # Re-associate outcomes with their workloads by codec label, in order;
    # error-rate stats cover the successfully decoded frames only.
    cursor = 0
    per_codec_stats = {}
    for load in workloads:
        count = load.llrs.shape[0]
        chunk = outcomes[cursor : cursor + count]
        cursor += count
        pairs = [
            (response, load.reference[i])
            for i, response in enumerate(chunk)
            if isinstance(response, DecodeResponse)
        ]
        if pairs:
            decoded = np.stack([response.bits for response, _ in pairs])
            reference = np.stack([ref for _, ref in pairs])
            bit_errors = int(np.count_nonzero(decoded != reference))
            frame_errors = int(np.count_nonzero((decoded != reference).any(axis=1)))
            avg_iterations = float(
                np.mean([response.iterations for response, _ in pairs])
            )
            total_bits = int(reference.size)
        else:
            bit_errors = frame_errors = total_bits = 0
            avg_iterations = 0.0
        per_codec_stats[load.entry.spec.label] = {
            "frames": count,
            "decoded_frames": len(pairs),
            "bit_errors": bit_errors,
            "frame_errors": frame_errors,
            "total_bits": total_bits,
            "avg_iterations": avg_iterations,
        }
    snapshot = timing["snapshot"]
    health = timing["health"]
    total_frames = sum(stats["frames"] for stats in per_codec_stats.values())
    payload = {
        "requests": total_frames,
        "resolved": resolved,
        "unresolved": unresolved,
        "errors_by_type": dict(errors_by_type),
        "ebn0_db": ebn0_db,
        "elapsed_s": timing["elapsed_s"],
        "throughput_fps": total_frames / timing["elapsed_s"],
        "executor": service.executor_mode,
        "planned_shards": service.planned_shards,
        "fault_plan": fault_plan.describe() if fault_plan else "",
        "metrics": snapshot.as_dict(),
        "health": health.as_dict(),
        "per_codec": per_codec_stats,
    }
    if not quiet:
        print(f"decode service demo: {total_frames} frames at Eb/N0 = {ebn0_db} dB")
        print(f"  executor={service.executor_mode} shards={service.planned_shards}")
        if fault_plan:
            print(f"  fault plan: {fault_plan.describe()}")
        print(f"  metrics: {snapshot}")
        if resolved != total_frames:
            failures = (
                ", ".join(f"{name} x{n}" for name, n in sorted(errors_by_type.items()))
                or "none"
            )
            print(
                f"  RESOLUTION: {resolved}/{total_frames} resolved, "
                f"{unresolved} unresolved, errors: {failures}"
            )
        for label, stats in per_codec_stats.items():
            ber = (
                stats["bit_errors"] / stats["total_bits"] if stats["total_bits"] else 0.0
            )
            print(
                f"  {label}: {stats['decoded_frames']}/{stats['frames']} frames, "
                f"BER {ber:.2e}, {stats['frame_errors']} frame errors, "
                f"avg {stats['avg_iterations']:.1f} iterations"
            )
    return payload


def main(argv: list[str] | None = None) -> int:
    """CLI entry point (``python -m repro.service``).

    Exits nonzero unless every request resolved with decoded bits — the
    contract CI's chaos smoke asserts under ``--inject-faults``.
    """
    parser = argparse.ArgumentParser(
        prog="python -m repro.service",
        description="Dynamic-batching decode service demo over AWGN frames.",
    )
    parser.add_argument("--requests", type=int, default=100,
                        help="total frames across all codecs (default 100)")
    parser.add_argument("--ebn0", type=float, default=2.0,
                        help="channel Eb/N0 in dB (default 2.0)")
    parser.add_argument("--max-batch", type=int, default=64,
                        help="largest dispatched batch (default 64)")
    parser.add_argument("--delay-ms", type=float, default=5.0,
                        help="batching latency budget in ms (default 5)")
    parser.add_argument("--backpressure", choices=("wait", "reject"), default="wait")
    parser.add_argument("--executor", choices=("thread", "process", "inline"),
                        default="thread")
    parser.add_argument("--shards", default="0",
                        help="worker processes for --executor process, or 'auto'")
    parser.add_argument("--ldpc-only", action="store_true",
                        help="serve only the LDPC lane (default: LDPC + turbo mix)")
    parser.add_argument("--seed", type=int, default=2012)
    parser.add_argument("--inject-faults", default="", metavar="PLAN",
                        help="fault plan, e.g. 'crash@2,hang@5:0.1,error@7' "
                             "(kind@dispatch[:duration_s], comma separated)")
    parser.add_argument("--attempts", type=int, default=None,
                        help="dispatch attempts per batch (default: resilience "
                             "config default)")
    parser.add_argument("--deadline-ms", type=float, default=None,
                        help="per-request deadline in ms (default: none)")
    parser.add_argument("--watchdog", default=None, metavar="S",
                        help="hang-watchdog timeout in seconds, or 'auto' "
                             "(default: disabled)")
    args = parser.parse_args(argv)
    shards: int | str = args.shards if args.shards == "auto" else int(args.shards)
    watchdog: float | str | None = args.watchdog
    if watchdog is not None and watchdog != "auto":
        watchdog = float(watchdog)
    codecs = DEFAULT_CODECS[:1] if args.ldpc_only else DEFAULT_CODECS
    payload = run_demo(
        requests=args.requests,
        ebn0_db=args.ebn0,
        codecs=codecs,
        max_batch=args.max_batch,
        max_delay_s=args.delay_ms / 1e3,
        backpressure=args.backpressure,
        executor=args.executor,
        shards=shards,
        seed=args.seed,
        fault_plan=args.inject_faults or None,
        attempts=args.attempts,
        deadline_s=None if args.deadline_ms is None else args.deadline_ms / 1e3,
        watchdog_s=watchdog,
    )
    return 0 if payload["resolved"] == payload["requests"] else 1

"""Decode-as-a-service: an asyncio dynamic-batching front-end over the batch engines.

:class:`DecodeService` accepts per-frame decode requests — a code family,
block size, rate and one channel-LLR array — from many concurrent clients
and turns them into the large batches the engines in :mod:`repro.sim` were
built for:

* requests are validated at the boundary (shape, dtype, finiteness, known
  codec) and rejected with typed :mod:`repro.errors` exceptions instead of
  surfacing as NumPy broadcast errors deep inside a kernel;
* compatible requests (same ``(family, block, rate)``) aggregate in a
  per-codec :class:`~repro.service.batcher.DynamicBatcher` and flush on
  *batch-full or deadline, whichever first* — the deadline is the service's
  configurable latency budget;
* each flushed batch is stacked into one ``(B, n)`` array and dispatched to
  the codec's :class:`~repro.sim.batch.BatchDecoder` on an executor (an
  in-process worker thread by default, a process-shard pool when the
  calibration-driven planner says sharding pays — see
  :mod:`repro.service.sharding`);
* every caller's future resolves with its own decoded bits, iteration
  count, convergence flag and a queue/decode latency breakdown.  Results
  are bit-identical to a direct ``decode_batch`` call on the same LLRs
  because the engines are row-independent (pinned by the batch=1 facade
  property tests and again by ``tests/test_service.py``).

Backpressure is explicit and configurable: ``backpressure="wait"`` makes
``submit`` await a queue slot; ``backpressure="reject"`` raises
:class:`~repro.errors.ServiceOverloadError` carrying a ``retry_after_s``
estimate, the krittika ``post -> tracking id -> deliver`` transaction shape
adapted to asyncio futures.

All service state is touched from the event-loop thread only; executors
hand results back through the loop, so no locks are needed anywhere.
"""

from __future__ import annotations

import asyncio
from concurrent.futures import Executor, ProcessPoolExecutor, ThreadPoolExecutor
from dataclasses import dataclass
from typing import Any

import numpy as np

from repro.errors import (
    ConfigurationError,
    RequestValidationError,
    ServiceClosedError,
    ServiceOverloadError,
)
from repro.service.batcher import DynamicBatcher, QueuedItem
from repro.service.metrics import MetricsSnapshot, ServiceMetrics
from repro.service.registry import CodecEntry, CodecRegistry, default_registry
from repro.service.sharding import DecodeCostModel, decode_in_worker, plan_shards

__all__ = ["DecodeResponse", "DecodeService"]

_BACKPRESSURE_MODES = ("wait", "reject")
_EXECUTOR_MODES = ("thread", "process", "inline")


@dataclass(frozen=True)
class DecodeResponse:
    """What one client gets back for one decoded frame.

    ``bits`` are the decoder's hard decisions — whole codeword for LDPC,
    information bits for turbo (``decides_info_bits`` says which).  The
    latency breakdown separates time spent queued (waiting for the batch to
    fill or the deadline to strike) from time spent decoding.
    """

    request_id: int
    codec: str
    bits: np.ndarray
    iterations: int
    converged: bool
    decides_info_bits: bool
    batch_size: int
    queued_s: float
    decode_s: float
    total_s: float


@dataclass
class _PendingRequest:
    """One queued request: payload plus the future its caller awaits."""

    request_id: int
    llrs: np.ndarray
    future: asyncio.Future


@dataclass
class _CodecLane:
    """Per-codec aggregation state: the batcher and its backpressure gate."""

    entry: CodecEntry
    batcher: DynamicBatcher[_PendingRequest]
    slots: asyncio.Semaphore | None  # wait-mode queue bound (None in reject mode)


def _decode_to_arrays(
    entry: CodecEntry, llrs: np.ndarray
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Thread/inline decode path, normalised to the process-worker signature."""
    result = entry.decoder.decode_batch(llrs)
    return result.hard_bits, result.iterations, result.converged


class DecodeService:
    """Asyncio decode service over the registry's batch engines.

    Parameters
    ----------
    registry:
        Codec registry; :func:`~repro.service.registry.default_registry`
        (the WiMAX code set) when omitted.
    max_batch:
        Largest batch dispatched to a decoder (the engines' amortization
        sweet spot; PR 1/2 benches use 64).
    max_delay_s:
        Latency budget: a request waits at most this long in the queue
        before its batch flushes, full or not.
    queue_capacity:
        Per-codec bound on queued requests — the backpressure threshold.
    backpressure:
        ``"wait"`` (submit awaits a slot, default) or ``"reject"``
        (submit raises :class:`~repro.errors.ServiceOverloadError` with a
        ``retry_after_s`` estimate).
    executor:
        ``"thread"`` (default; one worker thread — NumPy releases the GIL
        in the hot kernels, so the loop stays responsive), ``"process"``
        (shard batches across ``shards`` worker processes) or ``"inline"``
        (decode on the loop; deterministic, for tests and tiny workloads).
    shards:
        Worker-process count for ``executor="process"``, or ``"auto"`` to
        let the calibration planner decide from ``offered_fps_hint`` —
        ``"auto"`` may resolve to staying in-process (see
        :func:`repro.service.sharding.plan_shards`); it probes
        ``probe_codec`` (family, block, rate), default WiMAX LDPC n=576
        rate 1/2.
    offered_fps_hint:
        Expected offered load in frames/sec, consumed by ``shards="auto"``.
    """

    def __init__(
        self,
        registry: CodecRegistry | None = None,
        max_batch: int = 64,
        max_delay_s: float = 0.005,
        queue_capacity: int = 256,
        backpressure: str = "wait",
        executor: str = "thread",
        shards: int | str = 0,
        offered_fps_hint: float | None = None,
        probe_codec: tuple[str, int, str] = ("ldpc", 576, "1/2"),
    ) -> None:
        if backpressure not in _BACKPRESSURE_MODES:
            raise ConfigurationError(
                f"backpressure must be one of {_BACKPRESSURE_MODES}, got {backpressure!r}"
            )
        if executor not in _EXECUTOR_MODES:
            raise ConfigurationError(
                f"executor must be one of {_EXECUTOR_MODES}, got {executor!r}"
            )
        if isinstance(shards, str):
            if shards != "auto":
                raise ConfigurationError(f"shards must be an int or 'auto', got {shards!r}")
        elif shards < 0:
            raise ConfigurationError(f"shards must be >= 0, got {shards}")
        if queue_capacity < 1:
            raise ConfigurationError(
                f"queue_capacity must be >= 1, got {queue_capacity}"
            )
        self.registry = registry if registry is not None else default_registry()
        self.max_batch = int(max_batch)  # DynamicBatcher validates >= 1
        self.max_delay_s = float(max_delay_s)
        self.queue_capacity = int(queue_capacity)
        self.backpressure = backpressure
        self.executor_mode = executor
        self.shards = shards
        self.offered_fps_hint = offered_fps_hint
        self.probe_codec = probe_codec
        #: Shard count the planner actually resolved to (set by ``start``).
        self.planned_shards: int = 0
        self.metrics = ServiceMetrics()
        self._lanes: dict[tuple[str, int, str], _CodecLane] = {}
        self._executor: Executor | None = None
        self._flusher: asyncio.Task | None = None
        self._inflight: set[asyncio.Task] = set()
        self._wake: asyncio.Event | None = None
        self._next_request_id = 0
        self._running = False

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #
    async def start(self) -> None:
        """Resolve the executor (running shard planning if asked) and go live."""
        if self._running:
            return
        mode = self.executor_mode
        shards = self.shards
        if shards == "auto":
            family, block, rate = self.probe_codec
            model = DecodeCostModel.calibrate(self.registry.resolve(family, block, rate))
            shards = plan_shards(
                model, self.offered_fps_hint or 0.0, self.max_batch
            )
            mode = "process" if shards else "thread"
        if mode == "process" and not shards:
            raise ConfigurationError("executor='process' needs shards >= 1 or 'auto'")
        self.planned_shards = int(shards) if mode == "process" else 0
        if mode == "thread":
            self._executor = ThreadPoolExecutor(
                max_workers=1, thread_name_prefix="decode-service"
            )
        elif mode == "process":
            self._executor = ProcessPoolExecutor(max_workers=self.planned_shards)
        else:  # inline
            self._executor = None
        self.executor_mode = mode
        self.metrics = ServiceMetrics()
        self._wake = asyncio.Event()
        self._running = True
        self._flusher = asyncio.create_task(self._flush_loop())

    async def stop(self, drain: bool = True) -> None:
        """Stop the service; by default drain queued and in-flight work first."""
        if not self._running:
            return
        self._running = False  # new submits now raise ServiceClosedError
        if drain:
            for lane in self._lanes.values():
                for batch in lane.batcher.flush_all():
                    self._dispatch(lane, batch)
        if self._flusher is not None:
            self._flusher.cancel()
            try:
                await self._flusher
            except asyncio.CancelledError:
                pass
            self._flusher = None
        if drain and self._inflight:
            await asyncio.gather(*tuple(self._inflight), return_exceptions=True)
        for lane in self._lanes.values():
            for batch in lane.batcher.flush_all():
                for item in batch:
                    if not item.payload.future.done():
                        item.payload.future.set_exception(
                            ServiceClosedError("service stopped before decoding")
                        )
        if self._executor is not None:
            self._executor.shutdown(wait=True)
            self._executor = None

    async def __aenter__(self) -> "DecodeService":
        await self.start()
        return self

    async def __aexit__(self, *exc_info: Any) -> None:
        await self.stop()

    # ------------------------------------------------------------------ #
    # Submission
    # ------------------------------------------------------------------ #
    async def submit(
        self,
        llrs: np.ndarray,
        family: str = "ldpc",
        block: int = 576,
        rate: str = "1/2",
    ) -> DecodeResponse:
        """Decode one frame; resolves when its batch has been decoded.

        Raises :class:`~repro.errors.UnknownCodecError`,
        :class:`~repro.errors.RequestValidationError`,
        :class:`~repro.errors.ServiceOverloadError` (reject mode) or
        :class:`~repro.errors.ServiceClosedError`.
        """
        if not self._running:
            raise ServiceClosedError("decode service is not running; call start()")
        entry = self.registry.resolve(family, block, rate)
        arr = self._validate_llrs(llrs, entry)
        lane = self._lane(entry)
        if lane.slots is not None:  # wait mode: block until a queue slot frees
            await lane.slots.acquire()
            if not self._running:
                lane.slots.release()
                raise ServiceClosedError("service stopped while awaiting a slot")
        loop = asyncio.get_running_loop()
        request = _PendingRequest(
            request_id=self._next_request_id,
            llrs=arr,
            future=loop.create_future(),
        )
        self._next_request_id += 1
        now = loop.time()
        flushed = lane.batcher.offer(request, now)
        if flushed is None:  # reject mode, queue full
            self.metrics.rejected += 1
            deadline = lane.batcher.next_deadline()
            retry_after = max(deadline - now, 0.0) if deadline else self.max_delay_s
            raise ServiceOverloadError(
                f"{entry.spec.label} queue full "
                f"({lane.batcher.depth}/{self.queue_capacity}); "
                f"retry in {retry_after:.4f} s",
                retry_after_s=retry_after,
            )
        self.metrics.submitted += 1
        self.metrics.in_flight += 1
        if flushed:
            self._dispatch(lane, flushed)
        else:
            self._wake.set()  # the flusher re-evaluates its sleep deadline
        return await request.future

    def _lane(self, entry: CodecEntry) -> _CodecLane:
        lane = self._lanes.get(entry.spec.key)
        if lane is None:
            reject = self.backpressure == "reject"
            lane = _CodecLane(
                entry=entry,
                batcher=DynamicBatcher(
                    max_batch=self.max_batch,
                    max_delay_s=self.max_delay_s,
                    capacity=self.queue_capacity if reject else None,
                ),
                slots=None if reject else asyncio.Semaphore(self.queue_capacity),
            )
            self._lanes[entry.spec.key] = lane
        return lane

    def _validate_llrs(self, llrs: Any, entry: CodecEntry) -> np.ndarray:
        try:
            arr = np.asarray(llrs)
        except Exception as exc:  # exotic objects numpy refuses to wrap
            self.metrics.validation_failures += 1
            raise RequestValidationError(f"LLRs are not array-like: {exc}") from exc
        if arr.dtype.kind not in "fiu":
            self.metrics.validation_failures += 1
            raise RequestValidationError(
                f"LLRs must be real-numeric, got dtype {arr.dtype}"
            )
        if arr.ndim != 1 or arr.shape[0] != entry.n_bits:
            self.metrics.validation_failures += 1
            raise RequestValidationError(
                f"{entry.spec.label} expects a 1-D LLR array of length "
                f"{entry.n_bits}, got shape {arr.shape} (batching is the "
                "service's job — submit one frame per request)"
            )
        arr = np.ascontiguousarray(arr, dtype=np.float64)
        if not np.all(np.isfinite(arr)):
            self.metrics.validation_failures += 1
            raise RequestValidationError(
                f"{entry.spec.label} LLRs contain NaN or infinity"
            )
        return arr

    # ------------------------------------------------------------------ #
    # Flushing and dispatch
    # ------------------------------------------------------------------ #
    async def _flush_loop(self) -> None:
        """Wake at the earliest queued deadline and flush everything due."""
        loop = asyncio.get_running_loop()
        while True:
            deadlines = [
                d
                for lane in self._lanes.values()
                if (d := lane.batcher.next_deadline()) is not None
            ]
            if not deadlines:
                await self._wake.wait()
                self._wake.clear()
                continue
            timeout = min(deadlines) - loop.time()
            if timeout > 0:
                # Sleep until the deadline, but let a new offer (which may
                # carry an earlier deadline after an idle stretch) wake us.
                try:
                    await asyncio.wait_for(self._wake.wait(), timeout)
                    self._wake.clear()
                except asyncio.TimeoutError:  # noqa: UP041 — py3.10 spells it this way
                    pass
                continue
            now = loop.time()
            for lane in self._lanes.values():
                for batch in lane.batcher.poll(now):
                    self._dispatch(lane, batch)

    def _dispatch(self, lane: _CodecLane, batch: list[QueuedItem[_PendingRequest]]) -> None:
        """Send one flushed batch to the executor; resolve futures when done."""
        if lane.slots is not None:
            for _ in batch:  # items left the queue: open their slots
                lane.slots.release()
        self.metrics.record_batch(len(batch))
        stacked = np.stack([item.payload.llrs for item in batch])
        task = asyncio.create_task(self._run_batch(lane, batch, stacked))
        self._inflight.add(task)
        task.add_done_callback(self._inflight.discard)

    async def _run_batch(
        self,
        lane: _CodecLane,
        batch: list[QueuedItem[_PendingRequest]],
        stacked: np.ndarray,
    ) -> None:
        loop = asyncio.get_running_loop()
        dispatched_at = loop.time()
        try:
            if self._executor is None:  # inline
                hard, iterations, converged = _decode_to_arrays(lane.entry, stacked)
            elif isinstance(self._executor, ProcessPoolExecutor):
                hard, iterations, converged = await loop.run_in_executor(
                    self._executor, decode_in_worker, lane.entry.spec.key, stacked
                )
            else:
                hard, iterations, converged = await loop.run_in_executor(
                    self._executor, _decode_to_arrays, lane.entry, stacked
                )
        except Exception as exc:  # decoder/executor failure fans out to callers
            for item in batch:
                if not item.payload.future.done():
                    item.payload.future.set_exception(exc)
                self.metrics.in_flight -= 1
            return
        done_at = loop.time()
        decode_s = done_at - dispatched_at
        for index, item in enumerate(batch):
            request = item.payload
            queued_s = dispatched_at - item.enqueued_at
            response = DecodeResponse(
                request_id=request.request_id,
                codec=lane.entry.spec.label,
                bits=hard[index].copy(),
                iterations=int(iterations[index]),
                converged=bool(converged[index]),
                decides_info_bits=lane.entry.decides_info_bits,
                batch_size=len(batch),
                queued_s=queued_s,
                decode_s=decode_s,
                total_s=done_at - item.enqueued_at,
            )
            if not request.future.done():
                request.future.set_result(response)
            self.metrics.record_completion(queued_s, response.total_s)
            self.metrics.in_flight -= 1

    # ------------------------------------------------------------------ #
    # Observability
    # ------------------------------------------------------------------ #
    def metrics_snapshot(self) -> MetricsSnapshot:
        """Freeze the live counters, including per-codec queue depths."""
        depths = {
            lane.entry.spec.label: lane.batcher.depth for lane in self._lanes.values()
        }
        return self.metrics.snapshot(depths)

"""Decode-as-a-service: an asyncio dynamic-batching front-end over the batch engines.

:class:`DecodeService` accepts per-frame decode requests — a code family,
block size, rate and one channel-LLR array — from many concurrent clients
and turns them into the large batches the engines in :mod:`repro.sim` were
built for:

* requests are validated at the boundary (shape, dtype, finiteness, known
  codec) and rejected with typed :mod:`repro.errors` exceptions instead of
  surfacing as NumPy broadcast errors deep inside a kernel;
* compatible requests (same ``(family, block, rate)``) aggregate in a
  per-codec :class:`~repro.service.batcher.DynamicBatcher` and flush on
  *batch-full or deadline, whichever first* — the deadline is the service's
  configurable latency budget;
* each flushed batch is stacked into one ``(B, n)`` array and dispatched
  through the :class:`~repro.service.resilience.ResilientDispatcher`, which
  owns the executors (an in-process worker thread by default, a process-
  shard pool when the calibration-driven planner says sharding pays — see
  :mod:`repro.service.sharding`) and survives their failures: dead pools
  are rebuilt with capped backoff and the batch re-dispatched (decode is
  pure, so retry is idempotent), wedged batches are timed out by a
  calibrated hang watchdog, and a circuit breaker degrades to a slower but
  bit-correct fallback path after repeated primary-path failures;
* every caller's future resolves with its own decoded bits, iteration
  count, convergence flag and a queue/decode latency breakdown — or a typed
  error: requests carry optional *deadlines*
  (``submit(..., deadline_s=...)``) enforced while waiting for a queue
  slot, while queued and while decoding, so no caller ever hangs on a
  wedged service.  Results are bit-identical to a direct ``decode_batch``
  call on the same LLRs because the engines are row-independent (pinned by
  the batch=1 facade property tests and again by ``tests/test_service.py``
  and the chaos suite in ``tests/test_service_resilience.py``).

Backpressure is explicit and configurable: ``backpressure="wait"`` makes
``submit`` await a queue slot; ``backpressure="reject"`` raises
:class:`~repro.errors.ServiceOverloadError` carrying a ``retry_after_s``
estimate, the krittika ``post -> tracking id -> deliver`` transaction shape
adapted to asyncio futures.

All service state is touched from the event-loop thread only; executors
hand results back through the loop, so no locks are needed anywhere.
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass, field
from typing import Any

import numpy as np

from repro.errors import (
    ConfigurationError,
    DeadlineExceededError,
    RequestValidationError,
    ServiceClosedError,
    ServiceOverloadError,
)
from repro.faults import FaultInjector, FaultPlan
from repro.service.batcher import DynamicBatcher, QueuedItem
from repro.service.metrics import HealthSnapshot, MetricsSnapshot, ServiceMetrics
from repro.service.registry import CodecEntry, CodecRegistry, default_registry
from repro.service.resilience import ResilienceConfig, ResilientDispatcher
from repro.service.sharding import DecodeCostModel, plan_shards
from repro.utils.calibration import watchdog_timeout_s

__all__ = ["DecodeResponse", "DecodeService"]

_BACKPRESSURE_MODES = ("wait", "reject")
_EXECUTOR_MODES = ("thread", "process", "inline")


@dataclass(frozen=True)
class DecodeResponse:
    """What one client gets back for one decoded frame.

    ``bits`` are the decoder's hard decisions — whole codeword for LDPC,
    information bits for turbo (``decides_info_bits`` says which).  The
    latency breakdown separates time spent queued (waiting for the batch to
    fill or the deadline to strike) from time spent decoding.  ``attempts``
    and ``decode_path`` report how the resilience layer earned the result:
    ``attempts > 1`` means transparent retries happened, and a
    ``"degraded:*"`` path means the circuit breaker was open.
    """

    request_id: int
    codec: str
    bits: np.ndarray
    iterations: int
    converged: bool
    decides_info_bits: bool
    batch_size: int
    queued_s: float
    decode_s: float
    total_s: float
    attempts: int = 1
    decode_path: str = "thread"


@dataclass
class _PendingRequest:
    """One queued request: payload, the future its caller awaits, its deadline.

    ``finished`` guards the request's *single* accounting event — whichever
    of the deadline timer, the dispatch filter, the batch completion or the
    shutdown sweep gets there first wins, and everyone else no-ops.
    """

    request_id: int
    llrs: np.ndarray
    future: asyncio.Future
    deadline_s: float | None = None
    timer: asyncio.TimerHandle | None = None
    finished: bool = field(default=False)


@dataclass
class _CodecLane:
    """Per-codec aggregation state: the batcher and its backpressure gate."""

    entry: CodecEntry
    batcher: DynamicBatcher[_PendingRequest]
    slots: asyncio.Semaphore | None  # wait-mode queue bound (None in reject mode)


class DecodeService:
    """Asyncio decode service over the registry's batch engines.

    Parameters
    ----------
    registry:
        Codec registry; :func:`~repro.service.registry.default_registry`
        (the WiMAX code set) when omitted.
    max_batch:
        Largest batch dispatched to a decoder (the engines' amortization
        sweet spot; PR 1/2 benches use 64).
    max_delay_s:
        Latency budget: a request waits at most this long in the queue
        before its batch flushes, full or not.
    queue_capacity:
        Per-codec bound on queued requests — the backpressure threshold.
    backpressure:
        ``"wait"`` (submit awaits a slot, default) or ``"reject"``
        (submit raises :class:`~repro.errors.ServiceOverloadError` with a
        ``retry_after_s`` estimate).
    executor:
        ``"thread"`` (default; one worker thread — NumPy releases the GIL
        in the hot kernels, so the loop stays responsive), ``"process"``
        (shard batches across ``shards`` worker processes) or ``"inline"``
        (decode on the loop; deterministic, for tests and tiny workloads).
    shards:
        Worker-process count for ``executor="process"``, or ``"auto"`` to
        let the calibration planner decide from ``offered_fps_hint`` —
        ``"auto"`` may resolve to staying in-process (see
        :func:`repro.service.sharding.plan_shards`); it probes
        ``probe_codec`` (family, block, rate), default WiMAX LDPC n=576
        rate 1/2.
    offered_fps_hint:
        Expected offered load in frames/sec, consumed by ``shards="auto"``.
    resilience:
        :class:`~repro.service.resilience.ResilienceConfig` governing retry
        budget, rebuild backoff and the circuit breaker; defaults when
        omitted.
    watchdog_s:
        Hang-watchdog timeout per decode attempt: a float in seconds,
        ``"auto"`` to derive one from the ``probe_codec``'s calibrated
        decode-cost curve (:func:`repro.utils.calibration.watchdog_timeout_s`),
        or ``None`` (default) to disable the watchdog.
    fault_plan:
        Optional :class:`~repro.faults.FaultPlan` injected into the
        dispatch path — the deterministic chaos hook used by the resilience
        tests and ``python -m repro.service --inject-faults``.
    """

    def __init__(
        self,
        registry: CodecRegistry | None = None,
        max_batch: int = 64,
        max_delay_s: float = 0.005,
        queue_capacity: int = 256,
        backpressure: str = "wait",
        executor: str = "thread",
        shards: int | str = 0,
        offered_fps_hint: float | None = None,
        probe_codec: tuple[str, int, str] = ("ldpc", 576, "1/2"),
        resilience: ResilienceConfig | None = None,
        watchdog_s: float | str | None = None,
        fault_plan: FaultPlan | None = None,
    ) -> None:
        if backpressure not in _BACKPRESSURE_MODES:
            raise ConfigurationError(
                f"backpressure must be one of {_BACKPRESSURE_MODES}, got {backpressure!r}"
            )
        if executor not in _EXECUTOR_MODES:
            raise ConfigurationError(
                f"executor must be one of {_EXECUTOR_MODES}, got {executor!r}"
            )
        if isinstance(shards, str):
            if shards != "auto":
                raise ConfigurationError(f"shards must be an int or 'auto', got {shards!r}")
        elif shards < 0:
            raise ConfigurationError(f"shards must be >= 0, got {shards}")
        if queue_capacity < 1:
            raise ConfigurationError(
                f"queue_capacity must be >= 1, got {queue_capacity}"
            )
        if isinstance(watchdog_s, str):
            if watchdog_s != "auto":
                raise ConfigurationError(
                    f"watchdog_s must be a float, 'auto' or None, got {watchdog_s!r}"
                )
        elif watchdog_s is not None and watchdog_s <= 0.0:
            raise ConfigurationError(f"watchdog_s must be > 0, got {watchdog_s}")
        self.registry = registry if registry is not None else default_registry()
        self.max_batch = int(max_batch)  # DynamicBatcher validates >= 1
        self.max_delay_s = float(max_delay_s)
        self.queue_capacity = int(queue_capacity)
        self.backpressure = backpressure
        self.executor_mode = executor
        self.shards = shards
        self.offered_fps_hint = offered_fps_hint
        self.probe_codec = probe_codec
        self.resilience = resilience if resilience is not None else ResilienceConfig()
        self.watchdog_s = watchdog_s
        self.fault_plan = fault_plan
        #: Shard count the planner actually resolved to (set by ``start``).
        self.planned_shards: int = 0
        #: Watchdog timeout ``start`` resolved to (float seconds or None).
        self.resolved_watchdog_s: float | None = None
        self.metrics = ServiceMetrics()
        self._lanes: dict[tuple[str, int, str], _CodecLane] = {}
        self._dispatcher: ResilientDispatcher | None = None
        self._flusher: asyncio.Task | None = None
        self._inflight: set[asyncio.Task] = set()
        self._wake: asyncio.Event | None = None
        self._next_request_id = 0
        self._running = False

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #
    async def start(self) -> None:
        """Resolve the executor (running shard planning if asked) and go live."""
        if self._running:
            return
        mode = self.executor_mode
        shards = self.shards
        model: DecodeCostModel | None = None
        if shards == "auto" or self.watchdog_s == "auto":
            family, block, rate = self.probe_codec
            model = DecodeCostModel.calibrate(self.registry.resolve(family, block, rate))
        if shards == "auto":
            shards = plan_shards(
                model, self.offered_fps_hint or 0.0, self.max_batch
            )
            mode = "process" if shards else "thread"
        if mode == "process" and not shards:
            raise ConfigurationError("executor='process' needs shards >= 1 or 'auto'")
        self.planned_shards = int(shards) if mode == "process" else 0
        if self.watchdog_s == "auto":
            self.resolved_watchdog_s = watchdog_timeout_s(model.curve, self.max_batch)
        else:
            self.resolved_watchdog_s = self.watchdog_s
        self.executor_mode = mode
        self.metrics = ServiceMetrics()
        self._dispatcher = ResilientDispatcher(
            mode=mode,
            shards=self.planned_shards,
            config=self.resilience,
            metrics=self.metrics,
            watchdog_s=self.resolved_watchdog_s,
            injector=(
                FaultInjector(self.fault_plan) if self.fault_plan is not None else None
            ),
        )
        self._wake = asyncio.Event()
        self._running = True
        self._flusher = asyncio.create_task(self._flush_loop())

    async def stop(self, drain: bool = True, drain_timeout_s: float | None = None) -> None:
        """Stop the service; by default drain queued and in-flight work first.

        ``drain_timeout_s`` bounds the drain: once it elapses, still-running
        batches are cancelled and their callers resolved with
        :class:`~repro.errors.ServiceClosedError` instead of blocking
        shutdown forever behind a wedged executor.
        """
        if not self._running:
            return
        self._running = False  # new submits now raise ServiceClosedError
        if drain:
            for lane in self._lanes.values():
                for batch in lane.batcher.flush_all():
                    self._dispatch(lane, batch)
        if self._flusher is not None:
            self._flusher.cancel()
            try:
                await self._flusher
            except asyncio.CancelledError:
                pass
            self._flusher = None
        drained_clean = True
        if drain and self._inflight:
            waiter = asyncio.gather(*tuple(self._inflight), return_exceptions=True)
            if drain_timeout_s is None:
                await waiter
            else:
                try:
                    await asyncio.wait_for(waiter, drain_timeout_s)
                except asyncio.TimeoutError:  # noqa: UP041 — py3.10 spells it this way
                    # wait_for cancelled the gather, which cancelled the
                    # in-flight batch tasks; their cleanup resolves every
                    # caller with ServiceClosedError.
                    drained_clean = False
        # Anything still queued (drain=False) or still unresolved is failed
        # out now — no caller is ever left hanging across stop().
        for task in tuple(self._inflight):
            task.cancel()
        if self._inflight:
            await asyncio.gather(*tuple(self._inflight), return_exceptions=True)
        for lane in self._lanes.values():
            for batch in lane.batcher.flush_all():
                for item in batch:
                    self._finish(
                        item.payload,
                        error=ServiceClosedError("service stopped before decoding"),
                    )
        if self._dispatcher is not None:
            self._dispatcher.shutdown(wait=drain and drained_clean)
            self._dispatcher = None

    async def __aenter__(self) -> "DecodeService":
        await self.start()
        return self

    async def __aexit__(self, *exc_info: Any) -> None:
        await self.stop()

    # ------------------------------------------------------------------ #
    # Submission
    # ------------------------------------------------------------------ #
    async def submit(
        self,
        llrs: np.ndarray,
        family: str = "ldpc",
        block: int = 576,
        rate: str = "1/2",
        deadline_s: float | None = None,
    ) -> DecodeResponse:
        """Decode one frame; resolves when its batch has been decoded.

        ``deadline_s`` bounds the caller's total wait (slot acquisition +
        queueing + decode): once it elapses the request resolves with
        :class:`~repro.errors.DeadlineExceededError` even if its batch is
        still wedged in an executor.

        Raises :class:`~repro.errors.UnknownCodecError`,
        :class:`~repro.errors.RequestValidationError`,
        :class:`~repro.errors.ServiceOverloadError` (reject mode),
        :class:`~repro.errors.DeadlineExceededError` or
        :class:`~repro.errors.ServiceClosedError`.
        """
        if not self._running:
            raise ServiceClosedError("decode service is not running; call start()")
        if deadline_s is not None and deadline_s <= 0.0:
            raise RequestValidationError(
                f"deadline_s must be > 0 (or None), got {deadline_s}"
            )
        entry = self.registry.resolve(family, block, rate)
        arr = self._validate_llrs(llrs, entry)
        lane = self._lane(entry)
        loop = asyncio.get_running_loop()
        deadline_at = None if deadline_s is None else loop.time() + deadline_s
        if lane.slots is not None:  # wait mode: block until a queue slot frees
            if deadline_at is None:
                await lane.slots.acquire()
            else:
                try:
                    await asyncio.wait_for(
                        lane.slots.acquire(), deadline_at - loop.time()
                    )
                except asyncio.TimeoutError:  # noqa: UP041 — py3.10 spells it this way
                    self.metrics.deadline_exceeded += 1
                    raise DeadlineExceededError(
                        f"deadline of {deadline_s:.4f} s expired while waiting "
                        f"for a {entry.spec.label} queue slot",
                        deadline_s=deadline_s,
                    ) from None
            if not self._running:
                lane.slots.release()
                raise ServiceClosedError("service stopped while awaiting a slot")
        request = _PendingRequest(
            request_id=self._next_request_id,
            llrs=arr,
            future=loop.create_future(),
            deadline_s=deadline_s,
        )
        self._next_request_id += 1
        now = loop.time()
        flushed = lane.batcher.offer(request, now)
        if flushed is None:  # reject mode, queue full
            self.metrics.rejected += 1
            deadline = lane.batcher.next_deadline()
            retry_after = max(deadline - now, 0.0) if deadline else self.max_delay_s
            raise ServiceOverloadError(
                f"{entry.spec.label} queue full "
                f"({lane.batcher.depth}/{self.queue_capacity}); "
                f"retry in {retry_after:.4f} s",
                retry_after_s=retry_after,
            )
        self.metrics.submitted += 1
        self.metrics.in_flight += 1
        if deadline_at is not None:
            # The deadline is enforced wherever the request happens to be —
            # queued, mid-decode, or wedged — by resolving its future here.
            request.timer = loop.call_later(
                max(deadline_at - now, 0.0), self._expire, request
            )
        if flushed:
            self._dispatch(lane, flushed)
        else:
            self._wake.set()  # the flusher re-evaluates its sleep deadline
        return await request.future

    def _lane(self, entry: CodecEntry) -> _CodecLane:
        lane = self._lanes.get(entry.spec.key)
        if lane is None:
            reject = self.backpressure == "reject"
            lane = _CodecLane(
                entry=entry,
                batcher=DynamicBatcher(
                    max_batch=self.max_batch,
                    max_delay_s=self.max_delay_s,
                    capacity=self.queue_capacity if reject else None,
                ),
                slots=None if reject else asyncio.Semaphore(self.queue_capacity),
            )
            self._lanes[entry.spec.key] = lane
        return lane

    def _validate_llrs(self, llrs: Any, entry: CodecEntry) -> np.ndarray:
        try:
            arr = np.asarray(llrs)
        except Exception as exc:  # exotic objects numpy refuses to wrap
            self.metrics.validation_failures += 1
            raise RequestValidationError(f"LLRs are not array-like: {exc}") from exc
        if arr.dtype.kind not in "fiu":
            self.metrics.validation_failures += 1
            raise RequestValidationError(
                f"LLRs must be real-numeric, got dtype {arr.dtype}"
            )
        if arr.ndim != 1 or arr.shape[0] != entry.n_bits:
            self.metrics.validation_failures += 1
            raise RequestValidationError(
                f"{entry.spec.label} expects a 1-D LLR array of length "
                f"{entry.n_bits}, got shape {arr.shape} (batching is the "
                "service's job — submit one frame per request)"
            )
        arr = np.ascontiguousarray(arr, dtype=np.float64)
        if not np.all(np.isfinite(arr)):
            self.metrics.validation_failures += 1
            raise RequestValidationError(
                f"{entry.spec.label} LLRs contain NaN or infinity"
            )
        return arr

    # ------------------------------------------------------------------ #
    # Request accounting
    # ------------------------------------------------------------------ #
    def _finish(
        self,
        request: _PendingRequest,
        response: DecodeResponse | None = None,
        error: Exception | None = None,
        queued_s: float | None = None,
        total_s: float | None = None,
    ) -> bool:
        """Resolve one request exactly once and settle its accounting.

        Every admitted request passes through here exactly once — from the
        deadline timer, the dispatch filter, batch completion or the stop()
        sweep — so ``in_flight`` is decremented once and each request lands
        in exactly one of completed / failed / deadline_exceeded /
        cancelled.  Returns ``False`` when the request was already settled.
        """
        if request.finished:
            return False
        request.finished = True
        if request.timer is not None:
            request.timer.cancel()
            request.timer = None
        self.metrics.in_flight -= 1
        future = request.future
        if future.cancelled():
            self.metrics.cancelled += 1
            return True
        if error is not None:
            if isinstance(error, DeadlineExceededError):
                self.metrics.deadline_exceeded += 1
            else:
                self.metrics.failed += 1
            if not future.done():
                future.set_exception(error)
            return True
        if not future.done():
            future.set_result(response)
        self.metrics.record_completion(queued_s or 0.0, total_s or 0.0)
        return True

    def _expire(self, request: _PendingRequest) -> None:
        """Deadline timer callback: resolve the request with a typed error."""
        request.timer = None
        self._finish(
            request,
            error=DeadlineExceededError(
                f"deadline of {request.deadline_s:.4f} s expired before the "
                "decode completed",
                deadline_s=request.deadline_s,
            ),
        )

    # ------------------------------------------------------------------ #
    # Flushing and dispatch
    # ------------------------------------------------------------------ #
    async def _flush_loop(self) -> None:
        """Wake at the earliest queued deadline and flush everything due."""
        loop = asyncio.get_running_loop()
        while True:
            deadlines = [
                d
                for lane in self._lanes.values()
                if (d := lane.batcher.next_deadline()) is not None
            ]
            if not deadlines:
                await self._wake.wait()
                self._wake.clear()
                continue
            timeout = min(deadlines) - loop.time()
            if timeout > 0:
                # Sleep until the deadline, but let a new offer (which may
                # carry an earlier deadline after an idle stretch) wake us.
                try:
                    await asyncio.wait_for(self._wake.wait(), timeout)
                    self._wake.clear()
                except asyncio.TimeoutError:  # noqa: UP041 — py3.10 spells it this way
                    pass
                continue
            now = loop.time()
            for lane in self._lanes.values():
                for batch in lane.batcher.poll(now):
                    self._dispatch(lane, batch)

    def _dispatch(self, lane: _CodecLane, batch: list[QueuedItem[_PendingRequest]]) -> None:
        """Send one flushed batch to the dispatcher; resolve futures when done."""
        if lane.slots is not None:
            for _ in batch:  # items left the queue: open their slots
                lane.slots.release()
        live: list[QueuedItem[_PendingRequest]] = []
        for item in batch:
            request = item.payload
            if request.finished:  # expired in queue: already resolved, skip decode
                continue
            if request.future.cancelled():  # caller gave up while queued
                self._finish(request)
                continue
            live.append(item)
        if not live:
            return
        self.metrics.record_batch(len(live))
        stacked = np.stack([item.payload.llrs for item in live])
        task = asyncio.create_task(self._run_batch(lane, live, stacked))
        self._inflight.add(task)
        task.add_done_callback(self._inflight.discard)

    async def _run_batch(
        self,
        lane: _CodecLane,
        batch: list[QueuedItem[_PendingRequest]],
        stacked: np.ndarray,
    ) -> None:
        loop = asyncio.get_running_loop()
        dispatched_at = loop.time()
        try:
            try:
                outcome = await self._dispatcher.run(lane.entry, stacked)
            except asyncio.CancelledError:
                raise  # the finally block resolves the batch's callers
            except Exception as exc:  # retry budget exhausted: fan out to callers
                for item in batch:
                    self._finish(item.payload, error=exc)
                return
            done_at = loop.time()
            decode_s = done_at - dispatched_at
            for index, item in enumerate(batch):
                request = item.payload
                queued_s = dispatched_at - item.enqueued_at
                response = DecodeResponse(
                    request_id=request.request_id,
                    codec=lane.entry.spec.label,
                    bits=outcome.hard_bits[index].copy(),
                    iterations=int(outcome.iterations[index]),
                    converged=bool(outcome.converged[index]),
                    decides_info_bits=lane.entry.decides_info_bits,
                    batch_size=len(batch),
                    queued_s=queued_s,
                    decode_s=decode_s,
                    total_s=done_at - item.enqueued_at,
                    attempts=outcome.attempts,
                    decode_path=outcome.path,
                )
                self._finish(
                    request,
                    response=response,
                    queued_s=queued_s,
                    total_s=response.total_s,
                )
        finally:
            # Reached on cancellation (bounded drain) and on any unexpected
            # exit: nobody in this batch is ever left with a hung future.
            for item in batch:
                if not item.payload.finished:
                    self._finish(
                        item.payload,
                        error=ServiceClosedError(
                            "service stopped while the batch was in flight"
                        ),
                    )

    # ------------------------------------------------------------------ #
    # Observability
    # ------------------------------------------------------------------ #
    def metrics_snapshot(self) -> MetricsSnapshot:
        """Freeze the live counters, including per-codec queue depths."""
        depths = {
            lane.entry.spec.label: lane.batcher.depth for lane in self._lanes.values()
        }
        breaker_state = (
            self._dispatcher.breaker_state() if self._dispatcher is not None
            else "disabled"
        )
        return self.metrics.snapshot(depths, breaker_state)

    def health_snapshot(self) -> HealthSnapshot:
        """The resilience-relevant health surface (breaker, path, incident counts)."""
        dispatcher = self._dispatcher
        if dispatcher is None:
            return self.metrics.health(
                running=False,
                breaker_state="disabled",
                decode_path="none",
                consecutive_failures=0,
            )
        return self.metrics.health(
            running=self._running,
            breaker_state=dispatcher.breaker_state(),
            decode_path=dispatcher.current_path(),
            consecutive_failures=(
                dispatcher.breaker.consecutive_failures
                if dispatcher.breaker is not None
                else 0
            ),
        )

"""Codec registry: (family, block size, rate) -> encoder + batch decoder.

The decode service routes every request through one of these entries.  A
:class:`CodecSpec` names a codec the way a client does — ``family``
(``"ldpc"`` for WiMAX LDPC, ``"wifi"`` for the 802.11n set, ``"turbo"`` for
the CTC), ``block`` (codeword length ``n`` for the LDPC families,
couple count ``N`` for the duo-binary CTC) and the standard's ``rate``
string — and the registry lazily builds and caches the matching
:class:`~repro.sim.batch.BatchDecoder` (plus the encoder, which demos and
benchmarks use to generate test traffic).

Entries are built on first use, so registering the whole WiMAX code set
costs nothing until a client actually asks for a code.  Unknown requests
raise :class:`~repro.errors.UnknownCodecError` carrying the list of codecs
the registry *does* serve — the service surfaces that message verbatim at
its boundary instead of letting a bad spec die as a NumPy broadcast error
deep inside a kernel.

Specs are plain picklable data, so the process-shard executor ships a spec
to each worker and the worker rebuilds (and caches) the decoder locally —
decoders themselves never cross a process boundary.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.errors import CodeDefinitionError, UnknownCodecError

__all__ = [
    "CodecEntry",
    "CodecRegistry",
    "CodecSpec",
    "default_registry",
]

#: Decoder-construction defaults per family (the paper's operating points).
LDPC_MAX_ITERATIONS = 10
TURBO_MAX_ITERATIONS = 8


@dataclass(frozen=True)
class CodecSpec:
    """Client-visible name of one codec.

    ``family`` is ``"ldpc"`` or ``"turbo"``; ``block`` is the LDPC codeword
    length ``n`` (bits) or the CTC couple count ``N``; ``rate`` is the
    standard's rate string (``"1/2"``, ``"2/3A"``, ...).
    """

    family: str
    block: int
    rate: str

    @property
    def key(self) -> tuple[str, int, str]:
        """Hashable lookup key (also the pickled form sent to shard workers)."""
        return (self.family, self.block, self.rate)

    @property
    def label(self) -> str:
        """Compact human-readable name used in metrics and error messages."""
        return f"{self.family}:{self.block}:{self.rate}"


@dataclass
class CodecEntry:
    """One resolved codec: the spec, its encoder and its batch decoder.

    ``n_bits`` is the channel-LLR length every request for this codec must
    carry; ``k_bits`` the number of decided information bits;
    ``decides_info_bits`` mirrors the decoder's flag (turbo decides the
    payload, LDPC the whole codeword).
    """

    spec: CodecSpec
    code: object
    decoder: object
    n_bits: int
    k_bits: int
    decides_info_bits: bool = field(default=False)


def _build_ldpc_entry(spec: CodecSpec) -> CodecEntry:
    from repro.ldpc.wimax import wimax_ldpc_code
    from repro.sim.batch import BatchLayeredDecoder

    code = wimax_ldpc_code(spec.block, spec.rate)
    decoder = BatchLayeredDecoder(code.h, max_iterations=LDPC_MAX_ITERATIONS)
    return CodecEntry(
        spec=spec,
        code=code,
        decoder=decoder,
        n_bits=code.n,
        k_bits=code.k,
        decides_info_bits=False,
    )


def _build_wifi_entry(spec: CodecSpec) -> CodecEntry:
    from repro.ldpc.wifi import wifi_ldpc_code
    from repro.sim.batch import BatchLayeredDecoder

    code = wifi_ldpc_code(spec.block, spec.rate)
    decoder = BatchLayeredDecoder(code.h, max_iterations=LDPC_MAX_ITERATIONS)
    return CodecEntry(
        spec=spec,
        code=code,
        decoder=decoder,
        n_bits=code.n,
        k_bits=code.k,
        decides_info_bits=False,
    )


def _build_turbo_entry(spec: CodecSpec) -> CodecEntry:
    from repro.sim.turbo_batch import BatchTurboDecoder
    from repro.turbo.encoder import TurboEncoder

    encoder = TurboEncoder(n_couples=spec.block, rate=spec.rate)
    decoder = BatchTurboDecoder(encoder, max_iterations=TURBO_MAX_ITERATIONS)
    return CodecEntry(
        spec=spec,
        code=encoder,
        decoder=decoder,
        n_bits=encoder.n,
        k_bits=encoder.k,
        decides_info_bits=True,
    )


class CodecRegistry:
    """Lazily-built, cached mapping from :class:`CodecSpec` to :class:`CodecEntry`.

    A *family builder* registered via :meth:`register_family` turns a spec of
    that family into an entry; whether a given ``(block, rate)`` is valid is
    the builder's call (it raises
    :class:`~repro.errors.CodeDefinitionError` for unsupported parameters,
    which the registry converts into the service-boundary
    :class:`~repro.errors.UnknownCodecError`).  ``known`` seeds the
    advertised spec list shown in error messages and ``specs()``.
    """

    def __init__(self) -> None:
        self._builders: dict[str, Callable[[CodecSpec], CodecEntry]] = {}
        self._known: dict[str, list[CodecSpec]] = {}
        self._cache: dict[tuple[str, int, str], CodecEntry] = {}

    def register_family(
        self,
        family: str,
        builder: Callable[[CodecSpec], CodecEntry],
        known: list[CodecSpec] | None = None,
    ) -> None:
        """Register (or replace) the builder serving one code family."""
        self._builders[family] = builder
        self._known[family] = list(known or [])

    @property
    def families(self) -> tuple[str, ...]:
        """The code families this registry can serve."""
        return tuple(self._builders)

    def specs(self) -> list[CodecSpec]:
        """Every advertised spec (families may accept more; see builders)."""
        return [spec for specs in self._known.values() for spec in specs]

    def resolve(self, family: str, block: int, rate: str) -> CodecEntry:
        """The cached entry for ``(family, block, rate)``, building it on miss."""
        return self.resolve_spec(CodecSpec(str(family), int(block), str(rate)))

    def resolve_spec(self, spec: CodecSpec) -> CodecEntry:
        """Like :meth:`resolve`, from an existing :class:`CodecSpec`."""
        entry = self._cache.get(spec.key)
        if entry is not None:
            return entry
        builder = self._builders.get(spec.family)
        if builder is None:
            raise UnknownCodecError(
                f"unknown code family {spec.family!r}; served families: "
                f"{sorted(self._builders)}"
            )
        try:
            entry = builder(spec)
        except CodeDefinitionError as exc:
            advertised = ", ".join(s.label for s in self._known.get(spec.family, []))
            raise UnknownCodecError(
                f"no codec for {spec.label}: {exc}"
                + (f" (advertised: {advertised})" if advertised else "")
            ) from exc
        self._cache[spec.key] = entry
        return entry


def default_registry() -> CodecRegistry:
    """Registry serving the paper's WiMAX code set.

    * ``ldpc`` — every WiMAX LDPC ``(n, rate)`` pair (n = 576..2304, six
      rate classes), decoded by the layered normalized-min-sum batch engine
      at the paper's 10 iterations;
    * ``wifi`` — the 802.11n LDPC n = 1944 set (rates 1/2 and 5/6), through
      the same layered engine (the multi-standard point of the paper);
    * ``turbo`` — the WiMAX duo-binary CTC at every standard interleaver
      block size, rates 1/2 and 1/3, decoded by the batched Max-Log-MAP
      turbo engine at the paper's 8 iterations.
    """
    from repro.ldpc.wifi import list_wifi_codes
    from repro.ldpc.wimax import list_wimax_codes
    from repro.turbo.ctc_interleaver import supported_ctc_block_sizes
    from repro.turbo.encoder import TurboEncoder

    registry = CodecRegistry()
    registry.register_family(
        "ldpc",
        _build_ldpc_entry,
        known=[CodecSpec("ldpc", n, rate) for n, rate in list_wimax_codes()],
    )
    registry.register_family(
        "wifi",
        _build_wifi_entry,
        known=[CodecSpec("wifi", n, rate) for n, rate in list_wifi_codes()],
    )
    registry.register_family(
        "turbo",
        _build_turbo_entry,
        known=[
            CodecSpec("turbo", n_couples, rate)
            for n_couples in supported_ctc_block_sizes()
            for rate in TurboEncoder.SUPPORTED_RATES
        ],
    )
    return registry

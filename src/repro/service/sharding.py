"""Process-shard planning and worker entry points for the decode service.

Whether sharding decode batches across worker processes *pays* is decided
exactly the way the NoC sweep scheduler decides scalar-vs-batched and
serial-vs-pool: measure a probe workload once per process, fit a
:class:`~repro.utils.calibration.PiecewiseLinearCost` curve, and only leave
the simple path for a clear projected win (see
:class:`repro.noc.sweep.SweepCostModel`, whose machinery this module reuses
through :mod:`repro.utils.calibration`).

The decision rule (documented in ``docs/decode-service.md``):

1. calibrate the codec's decode cost at a few batch sizes
   (:meth:`DecodeCostModel.calibrate` — random-LLR probe frames, best-of-2
   timing like the sweep probe);
2. the in-process ceiling is ``max_batch / cost(max_batch)`` frames/sec;
   sharding is considered only when the offered load exceeds
   :data:`SATURATION_FRACTION` of that ceiling (below it, batches decode
   faster than they arrive and a pool only adds pickling latency);
3. a pool must amortize its spin-up: the projected serial decode work over
   :data:`PLANNING_HORIZON_S` has to exceed
   :data:`~repro.utils.calibration.POOL_SPINUP_S`
   (:func:`~repro.utils.calibration.pool_amortizes` — the same rule that
   gates ``parallel="process"`` NoC sweeps);
4. the worker count is the offered load divided by one worker's saturation
   throughput, capped at the host's CPU count.

Worker processes never receive decoder objects: they get a picklable
:class:`~repro.service.registry.CodecSpec` key plus the stacked LLR array,
and rebuild (then cache) the decoder locally — the same
build-once-per-worker pattern as the sweep scheduler's per-worker topology
cache.
"""

from __future__ import annotations

import math
import os
from dataclasses import dataclass

import numpy as np

from repro.backend import resolve
from repro.service.registry import CodecEntry, CodecSpec, default_registry
from repro.utils.calibration import (
    POOL_SPINUP_S,
    PiecewiseLinearCost,
    best_time,
    pool_amortizes,
)

__all__ = [
    "DecodeCostModel",
    "PLANNING_HORIZON_S",
    "SATURATION_FRACTION",
    "decode_in_worker",
    "plan_shards",
]

#: Fraction of the serial decode ceiling at which the planner considers the
#: in-process path saturated.  Below this, arrival gaps cover the decode
#: time and sharding only adds pickling overhead.
SATURATION_FRACTION = 0.7

#: Horizon over which pool spin-up must amortize: the projected serial
#: decode work in this many seconds of offered load has to exceed
#: :data:`~repro.utils.calibration.POOL_SPINUP_S`.
PLANNING_HORIZON_S = 1.0

#: Probe batch sizes for decode-cost calibration.  Like the sweep probe,
#: they bracket both sides of the regime where stacking starts to amortize
#: interpreter overhead (the curve is far from affine near batch 1).
_PROBE_SIZES = (1, 8, 32)


@dataclass(frozen=True)
class DecodeCostModel:
    """Measured decode-cost curve of one codec (``batch size -> seconds``)."""

    spec: CodecSpec
    curve: PiecewiseLinearCost
    #: :attr:`ArrayBackend.key` of the backend active during calibration.
    #: A model probed under one backend does not transfer to another (a JIT
    #: or GPU backend shifts the whole curve), so the service re-calibrates
    #: when this key no longer matches the active backend.
    backend_key: tuple[str, bool] = ("numpy", False)

    @classmethod
    def calibrate(
        cls,
        entry: CodecEntry,
        sizes: tuple[int, ...] = _PROBE_SIZES,
        seed: int = 2012,
    ) -> "DecodeCostModel":
        """Time ``entry``'s decoder on random-LLR probe batches.

        Random LLRs are the *conservative* probe: nothing early-exits, so
        every probed batch pays the full iteration budget and the fitted
        curve upper-bounds real traffic (which converges and exits early).

        Measured times are clamped isotonic (running max over increasing
        batch size): decoding a superset of frames cannot truly be cheaper,
        so an inversion is host timing noise, and a monotone curve keeps
        :func:`plan_shards` and the dispatch watchdog stable on noisy hosts.
        """
        rng = np.random.default_rng(seed)
        probe = rng.normal(0.0, 2.0, size=(max(sizes), entry.n_bits))
        decoder = entry.decoder
        decoder.decode_batch(probe[:1])  # warm any lazy state
        samples = []
        floor = 0.0
        for size in sorted(sizes):
            measured = best_time(lambda size=size: decoder.decode_batch(probe[:size]))
            floor = max(floor, measured)
            samples.append((size, floor))
        return cls(
            spec=entry.spec,
            curve=PiecewiseLinearCost(tuple(samples)),
            backend_key=resolve(None).key,
        )

    def is_current(self) -> bool:
        """Whether this model was calibrated under the *active* backend.

        Callers that cache models across backend switches (the service
        calibrates per :meth:`~repro.service.service.DecodeService.start`,
        but benchmarks and long-lived planners may not) should drop and
        re-calibrate when this returns ``False``.
        """
        return self.backend_key == resolve(None).key

    def saturation_fps(self, max_batch: int) -> float:
        """In-process decode ceiling at the service's batch cap, frames/sec."""
        return max_batch / self.curve.cost(max_batch)


def plan_shards(
    model: DecodeCostModel,
    offered_fps: float,
    max_batch: int,
    max_workers: int | None = None,
    spinup_s: float = POOL_SPINUP_S,
    horizon_s: float = PLANNING_HORIZON_S,
) -> int:
    """Worker processes to shard across; ``0`` keeps decoding in-process.

    Applies the decision rule in the module docstring.  ``offered_fps`` is
    the caller's load estimate (the demo and benchmarks measure it; a
    service can pass its own recent throughput).
    """
    if offered_fps <= 0.0:
        return 0
    ceiling = model.saturation_fps(max_batch)
    per_worker = SATURATION_FRACTION * ceiling
    if offered_fps <= per_worker:
        return 0
    projected_serial = offered_fps * horizon_s * model.curve.per_item(max_batch)
    if not pool_amortizes(projected_serial, spinup_s):
        return 0
    workers = math.ceil(offered_fps / per_worker)
    cap = max_workers if max_workers is not None else (os.cpu_count() or 1)
    return max(2, min(workers, cap))


#: Per-worker decoder cache, keyed by ``CodecSpec.key`` — the decode-service
#: twin of the sweep scheduler's per-worker topology cache.
_WORKER_ENTRIES: dict[tuple[str, int, str], CodecEntry] = {}


def decode_in_worker(
    spec_key: tuple[str, int, str], llrs: np.ndarray
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Process-pool entry point: decode one stacked batch in a shard worker.

    Returns ``(hard_bits, iterations, converged)`` arrays — the only fields
    the service needs to resolve futures, kept small to minimise pickling.
    """
    entry = _WORKER_ENTRIES.get(spec_key)
    if entry is None:
        family, block, rate = spec_key
        entry = default_registry().resolve(family, block, rate)
        _WORKER_ENTRIES[spec_key] = entry
    result = entry.decoder.decode_batch(llrs)
    return result.hard_bits, result.iterations, result.converged

"""Deterministic, seed-driven fault injection for the decode service.

The resilience layer in :mod:`repro.service.resilience` only earns trust if
every failure mode it claims to survive can be *provoked on demand,
reproducibly*.  This module supplies that chaos-under-test discipline:

* :class:`FaultAction` — one injectable fault: ``crash`` (the worker dies),
  ``hang`` (the worker wedges for ``duration_s`` before decoding),
  ``error`` (the decode raises), ``delay`` (a slow path: sleep, then decode
  normally).
* :class:`FaultPlan` — a deterministic schedule mapping the service's
  1-based *dispatch-attempt sequence number* to actions.  Built explicitly,
  from a compact CLI string (``"crash@3,hang@5:0.2"``), periodically
  (:meth:`FaultPlan.every`) or from a seeded RNG (:meth:`FaultPlan.random`)
  so hypothesis can draw whole chaos campaigns from one integer.
* :class:`FaultInjector` — the mutable cursor the dispatcher consults once
  per dispatch attempt.  Because the decode service's event loop is single
  threaded, attempt numbering — and therefore the whole chaos run — is
  reproducible for a fixed arrival schedule and seed.
* :func:`faulty_decode_in_worker` / :func:`faulty_decode_in_thread` — the
  instrumented executor entry points that *apply* an action on the process
  and thread paths.  A process-path ``crash`` calls ``os._exit``, killing
  the worker for real so the parent sees a genuine
  ``BrokenProcessPool``; thread and inline paths simulate the same failure
  with :class:`~repro.errors.WorkerCrashError` (threads cannot be killed).

Faults are injected per *dispatch attempt*, not per batch: a batch whose
first attempt crashed consumes a fresh schedule slot on its retry, so a
plan like ``crash@3`` means "the third dispatch dies" and the retry (the
fourth dispatch) succeeds unless the plan says otherwise — exactly the
fail-once/recover shape resilience tests need.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass
from typing import Callable, Mapping

import numpy as np

from repro.errors import ConfigurationError, InjectedFaultError, WorkerCrashError

__all__ = [
    "FAULT_KINDS",
    "FaultAction",
    "FaultInjector",
    "FaultPlan",
    "faulty_decode_in_thread",
    "faulty_decode_in_worker",
]

#: The injectable fault kinds, in severity order.
FAULT_KINDS = ("crash", "hang", "error", "delay")

#: Exit code a crash-faulted process worker dies with (any nonzero works;
#: a distinctive value makes post-mortems unambiguous).
CRASH_EXIT_CODE = 86


@dataclass(frozen=True)
class FaultAction:
    """One injectable fault: what goes wrong, and for how long.

    ``duration_s`` is the wedge time for ``hang`` and the extra latency for
    ``delay``; it is ignored for ``crash`` and ``error``.
    """

    kind: str
    duration_s: float = 0.0

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ConfigurationError(
                f"fault kind must be one of {FAULT_KINDS}, got {self.kind!r}"
            )
        if self.duration_s < 0.0:
            raise ConfigurationError(
                f"fault duration must be >= 0, got {self.duration_s}"
            )

    @property
    def label(self) -> str:
        """Compact form, identical to the CLI spec syntax."""
        if self.kind in ("hang", "delay"):
            return f"{self.kind}:{self.duration_s:g}"
        return self.kind


class FaultPlan:
    """A deterministic schedule of faults over dispatch-attempt numbers.

    ``actions`` maps the 1-based dispatch sequence number to the
    :class:`FaultAction` injected on that dispatch; attempts not in the map
    run clean.  Plans are immutable values — the mutable cursor lives in
    :class:`FaultInjector` — so one plan can drive many runs identically.
    """

    def __init__(self, actions: Mapping[int, FaultAction] | None = None) -> None:
        actions = dict(actions or {})
        for seq in actions:
            if seq < 1:
                raise ConfigurationError(
                    f"fault plan sequence numbers are 1-based, got {seq}"
                )
        self._actions: dict[int, FaultAction] = actions

    # ------------------------------------------------------------------ #
    # Construction
    # ------------------------------------------------------------------ #
    @classmethod
    def from_string(cls, spec: str) -> "FaultPlan":
        """Parse the CLI syntax: ``"crash@3,hang@5:0.2,error@7,delay@9:0.01"``.

        Each entry is ``kind@seq`` or ``kind@seq:duration_s``; entries are
        comma separated and an empty string is the empty plan.
        """
        actions: dict[int, FaultAction] = {}
        for raw in filter(None, (part.strip() for part in spec.split(","))):
            try:
                kind, _, where = raw.partition("@")
                seq_text, _, duration_text = where.partition(":")
                seq = int(seq_text)
                duration = float(duration_text) if duration_text else 0.0
            except ValueError as exc:
                raise ConfigurationError(
                    f"bad fault spec {raw!r} (want kind@seq[:duration_s]): {exc}"
                ) from exc
            if seq in actions:
                raise ConfigurationError(f"duplicate fault at dispatch {seq}: {raw!r}")
            actions[seq] = FaultAction(kind=kind, duration_s=duration)
        return cls(actions)

    @classmethod
    def every(
        cls,
        period: int,
        kind: str = "crash",
        duration_s: float = 0.0,
        horizon: int = 1024,
    ) -> "FaultPlan":
        """Fault every ``period``-th dispatch (``period, 2*period, ...``) up to ``horizon``."""
        if period < 1:
            raise ConfigurationError(f"fault period must be >= 1, got {period}")
        action = FaultAction(kind=kind, duration_s=duration_s)
        return cls({seq: action for seq in range(period, horizon + 1, period)})

    @classmethod
    def random(
        cls,
        seed: int,
        horizon: int,
        crash: float = 0.0,
        hang: float = 0.0,
        error: float = 0.0,
        delay: float = 0.0,
        hang_s: float = 0.05,
        delay_s: float = 0.005,
    ) -> "FaultPlan":
        """Seeded i.i.d. plan: each dispatch faults with the given per-kind rates.

        The same ``(seed, horizon, rates)`` always yields the same plan —
        the property chaos suite draws just the seed and rates.
        """
        rates = {"crash": crash, "hang": hang, "error": error, "delay": delay}
        total = sum(rates.values())
        if total > 1.0 or any(rate < 0.0 for rate in rates.values()):
            raise ConfigurationError(
                f"fault rates must be >= 0 and sum to <= 1, got {rates}"
            )
        durations = {"hang": hang_s, "delay": delay_s}
        rng = np.random.default_rng(seed)
        draws = rng.random(horizon)
        actions: dict[int, FaultAction] = {}
        for index, draw in enumerate(draws):
            edge = 0.0
            for kind, rate in rates.items():
                edge += rate
                if draw < edge:
                    actions[index + 1] = FaultAction(
                        kind=kind, duration_s=durations.get(kind, 0.0)
                    )
                    break
        return cls(actions)

    # ------------------------------------------------------------------ #
    # Queries
    # ------------------------------------------------------------------ #
    def action_for(self, seq: int) -> FaultAction | None:
        """The fault injected on dispatch ``seq`` (1-based), or ``None``."""
        return self._actions.get(seq)

    def __len__(self) -> int:
        return len(self._actions)

    def __bool__(self) -> bool:
        return bool(self._actions)

    def describe(self) -> str:
        """The plan back in CLI syntax (canonical, sequence-ordered)."""
        return ",".join(
            f"{self._actions[seq].kind}@{seq}"
            + (
                f":{self._actions[seq].duration_s:g}"
                if self._actions[seq].kind in ("hang", "delay")
                else ""
            )
            for seq in sorted(self._actions)
        )

    def __repr__(self) -> str:
        return f"FaultPlan({self.describe()!r})"


class FaultInjector:
    """Mutable cursor over a :class:`FaultPlan`: one consult per dispatch.

    The dispatcher calls :meth:`next_action` exactly once per dispatch
    attempt (from the event-loop thread, so numbering is race-free);
    ``injected`` counts the actions actually handed out.
    """

    def __init__(self, plan: FaultPlan) -> None:
        self.plan = plan
        self.dispatches = 0
        self.injected = 0

    def next_action(self) -> FaultAction | None:
        """The fault for the next dispatch attempt, advancing the cursor."""
        self.dispatches += 1
        action = self.plan.action_for(self.dispatches)
        if action is not None:
            self.injected += 1
        return action


# ---------------------------------------------------------------------- #
# Executor-side fault application
# ---------------------------------------------------------------------- #
def _apply_blocking_fault(action: FaultAction | None, can_really_crash: bool) -> None:
    """Apply ``action`` inside a worker (thread or process) before decoding."""
    if action is None:
        return
    if action.kind == "crash":
        if can_really_crash:
            os._exit(CRASH_EXIT_CODE)  # a real worker death: parent sees BrokenProcessPool
        raise WorkerCrashError("injected worker crash")
    if action.kind == "error":
        raise InjectedFaultError("injected decode failure")
    # hang and delay both sleep; only the caller's watchdog tells them apart.
    time.sleep(action.duration_s)


def faulty_decode_in_worker(
    spec_key: tuple[str, int, str], llrs: np.ndarray, action: FaultAction | None
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Process-pool entry point with fault application (picklable, top level).

    The clean twin is :func:`repro.service.sharding.decode_in_worker`; this
    wrapper applies ``action`` first — a ``crash`` kills the worker process
    for real — then decodes through the same per-worker codec cache.
    """
    from repro.service.sharding import decode_in_worker

    _apply_blocking_fault(action, can_really_crash=True)
    return decode_in_worker(spec_key, llrs)


def faulty_decode_in_thread(
    decode: Callable[[np.ndarray], tuple[np.ndarray, np.ndarray, np.ndarray]],
    llrs: np.ndarray,
    action: FaultAction | None,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Thread-executor entry point: apply ``action`` (simulated crash), then decode."""
    _apply_blocking_fault(action, can_really_crash=False)
    return decode(llrs)

"""NoC substrate: topologies, routing, node architecture and cycle-accurate simulation.

This package reproduces the intra-IP NoC studied in Section III of the paper:

* :mod:`~repro.noc.topologies` — the topology set T (ring, 2D mesh, toroidal
  mesh, spidergon, rectangular honeycomb, generalized De Bruijn, generalized
  Kautz),
* :mod:`~repro.noc.routing` — shortest-path routing tables (single shortest
  path and all-local-shortest-paths variants),
* :mod:`~repro.noc.config` — the simulation parameter set (R, RL, DCM/SCM,
  routing algorithm, AP/PP node architecture),
* :mod:`~repro.noc.message` / :mod:`~repro.noc.fifo` — packets and input FIFOs,
* :mod:`~repro.noc.node` — the routing element of Fig. 1 (F x F crossbar,
  input FIFOs, output registers) plus the PE injection port,
* :mod:`~repro.noc.traffic` — per-PE ordered message lists (the "equivalent
  interleaver" view of a decoding iteration),
* :mod:`~repro.noc.simulator` — the cycle-accurate simulator that measures
  ``ncycles`` and FIFO occupancies for a given configuration.
"""

from repro.noc.topologies import (
    Topology,
    TOPOLOGY_FAMILIES,
    build_topology,
    generalized_de_bruijn,
    generalized_kautz,
    honeycomb_torus,
    mesh_2d,
    ring,
    spidergon,
    toroidal_mesh,
)
from repro.noc.routing import RoutingTables, build_routing_tables
from repro.noc.config import (
    CollisionPolicy,
    NodeArchitecture,
    NocConfiguration,
    RoutingAlgorithm,
)
from repro.noc.message import Message
from repro.noc.fifo import MessageFifo
from repro.noc.traffic import NodeTraffic, TrafficPattern
from repro.noc.simulator import NocSimulator, SimulationResult

__all__ = [
    "Topology",
    "TOPOLOGY_FAMILIES",
    "build_topology",
    "ring",
    "mesh_2d",
    "toroidal_mesh",
    "spidergon",
    "honeycomb_torus",
    "generalized_de_bruijn",
    "generalized_kautz",
    "RoutingTables",
    "build_routing_tables",
    "NocConfiguration",
    "RoutingAlgorithm",
    "CollisionPolicy",
    "NodeArchitecture",
    "Message",
    "MessageFifo",
    "TrafficPattern",
    "NodeTraffic",
    "NocSimulator",
    "SimulationResult",
]

"""NoC substrate: topologies, routing, node architecture and cycle-accurate simulation.

This package reproduces the intra-IP NoC studied in Section III of the paper:

* :mod:`~repro.noc.topologies` — the topology set T (ring, 2D mesh, toroidal
  mesh, spidergon, rectangular honeycomb, generalized De Bruijn, generalized
  Kautz),
* :mod:`~repro.noc.routing` — shortest-path routing tables (single shortest
  path and all-local-shortest-paths variants),
* :mod:`~repro.noc.config` — the simulation parameter set (R, RL, DCM/SCM,
  routing algorithm, AP/PP node architecture),
* :mod:`~repro.noc.message` / :mod:`~repro.noc.fifo` — packets and input FIFOs,
* :mod:`~repro.noc.node` — the routing element of Fig. 1 (F x F crossbar,
  input FIFOs, output registers) plus the PE injection port,
* :mod:`~repro.noc.traffic` — per-PE ordered message lists (the "equivalent
  interleaver" view of a decoding iteration) and seeded synthetic generators,
* :mod:`~repro.noc.engine` — the struct-of-arrays cycle engine
  (:class:`BatchNocSimulator`) that measures ``ncycles`` and FIFO occupancies,
* :mod:`~repro.noc.engine_batch` — the job-batched kernel
  (:class:`BatchedNocKernel`) advancing many independent jobs one cycle per
  vectorized step,
* :mod:`~repro.noc.sweep` — the sweep scheduler (:func:`run_noc_sweep`):
  jobs grouped by (graph, configuration), dispatched to the batched kernel,
  optionally sharded across worker processes,
* :mod:`~repro.noc.simulator` — the public :class:`NocSimulator` facade plus
  the per-object :class:`ReferenceNocSimulator` the engines are pinned against.
"""

from repro.noc.topologies import (
    Topology,
    TOPOLOGY_FAMILIES,
    build_topology,
    generalized_de_bruijn,
    generalized_kautz,
    honeycomb_torus,
    mesh_2d,
    ring,
    spidergon,
    toroidal_mesh,
)
from repro.noc.routing import RoutingTables, build_routing_tables
from repro.noc.config import (
    CollisionPolicy,
    NodeArchitecture,
    NocConfiguration,
    RoutingAlgorithm,
)
from repro.noc.message import Message
from repro.noc.fifo import MessageFifo
from repro.noc.traffic import (
    NodeTraffic,
    TrafficPattern,
    random_traffic,
    random_traffic_streams,
)
from repro.noc.engine import BatchNocSimulator, MessageArrays
from repro.noc.engine_batch import BatchedNocKernel
from repro.noc.analytical import (
    ANALYTICAL_MODEL_VERSION,
    ERROR_TOLERANCES,
    AnalyticalEstimate,
    AnalyticalNocModel,
    ContentionFit,
    MetricTolerance,
    zero_contention_bound,
)
from repro.noc.sweep import (
    SWEEP_CACHE_CODE_VERSION,
    NocSweepCache,
    NocSweepJob,
    NocSweepOutcome,
    SweepCostModel,
    run_noc_sweep,
    scheduler_cost_model,
)
from repro.noc.results import SimulationResult
from repro.noc.simulator import NocSimulator, ReferenceNocSimulator

__all__ = [
    "Topology",
    "TOPOLOGY_FAMILIES",
    "build_topology",
    "ring",
    "mesh_2d",
    "toroidal_mesh",
    "spidergon",
    "honeycomb_torus",
    "generalized_de_bruijn",
    "generalized_kautz",
    "RoutingTables",
    "build_routing_tables",
    "NocConfiguration",
    "RoutingAlgorithm",
    "CollisionPolicy",
    "NodeArchitecture",
    "Message",
    "MessageFifo",
    "TrafficPattern",
    "NodeTraffic",
    "random_traffic",
    "random_traffic_streams",
    "BatchNocSimulator",
    "BatchedNocKernel",
    "MessageArrays",
    "ANALYTICAL_MODEL_VERSION",
    "ERROR_TOLERANCES",
    "AnalyticalEstimate",
    "AnalyticalNocModel",
    "ContentionFit",
    "MetricTolerance",
    "zero_contention_bound",
    "SWEEP_CACHE_CODE_VERSION",
    "NocSweepCache",
    "NocSweepJob",
    "NocSweepOutcome",
    "SweepCostModel",
    "run_noc_sweep",
    "scheduler_cost_model",
    "NocSimulator",
    "ReferenceNocSimulator",
    "SimulationResult",
]

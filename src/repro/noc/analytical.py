"""Closed-form analytical estimator for the cycle-accurate NoC engine.

The cycle engine (:mod:`repro.noc.engine`) answers "how many cycles does one
message-passing phase take?" exactly, at the cost of simulating every cycle.
This module answers the same question *approximately but instantly*, from
three ingredients:

1. **Hop-count statistics** — closed-form moments of the shortest-path hop
   distribution weighted by the traffic demand matrix
   (:meth:`~repro.noc.routing.RoutingTables.hop_statistics`).  A message over
   ``h`` hops needs at least ``h + 1`` cycles from injection to delivery, so
   the hop moments give exact zero-contention floors for every latency
   moment.

2. **A provable zero-contention lower bound** on the drain time
   (:func:`zero_contention_bound`), derived from the engine's timing
   discipline (see docs/noc-analytical.md for the derivation):

   * *injection pacing* — the ``k``-th network message a PE emits cannot
     inject before cycle ``ceil(k / R) - 1`` and then needs ``hops + 2``
     further cycles to clear the network (one FIFO entry cycle, ``hops``
     link traversals, one delivery cycle);
   * *destination serialization* — a node delivers at most one message per
     cycle through its local port, so ``n_d`` messages addressed to node
     ``d`` need ``n_d`` cycles after the earliest possible arrival;
   * *arc capacity* (single shortest path + DCM only, where every message
     follows its unique planned path) — an arc crossed by ``l`` messages
     needs ``l`` cycles of service plus entry/delivery slack.

3. **A fitted contention correction** — everything the bound cannot see
   (crossbar arbitration conflicts, FIFO queueing cascades, SCM deflection
   detours) is absorbed by a small non-negative linear model on
   dimensionless congestion features, fitted *once per (family, degree,
   routing algorithm, collision policy)* against a probe set of small
   cycle-exact simulations and cached on the model instance.  Probes use
   small networks (P <= 16); accuracy on larger networks is extrapolation,
   measured in docs/noc-analytical.md and enforced by the differential test
   suite at the :data:`ERROR_TOLERANCES` bands.

The estimator is intended for *screening*: ranking large design grids so
that only the most promising points pay for cycle-exact simulation
(:meth:`repro.core.design_flow.DesignSpaceExplorer.explore`).  It is not a
replacement for the engine — Table-I numbers still come from simulation.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Mapping

import numpy as np

from repro.errors import ConfigurationError, TopologyError
from repro.noc.config import CollisionPolicy, NocConfiguration, RoutingAlgorithm
from repro.noc.engine import BatchNocSimulator
from repro.noc.routing import RoutingTables, build_routing_tables
from repro.noc.topologies import Topology, build_topology
from repro.noc.traffic import TrafficPattern, random_traffic

__all__ = [
    "ANALYTICAL_MODEL_VERSION",
    "ERROR_TOLERANCES",
    "AnalyticalEstimate",
    "AnalyticalNocModel",
    "ContentionFit",
    "MetricTolerance",
    "zero_contention_bound",
]

#: Bumped whenever the estimator's features, floors or fitting protocol
#: change; cached fits and screening caches key on it.
ANALYTICAL_MODEL_VERSION = 1

#: Families whose graph is parameterized by an explicit degree; for all other
#: families the degree is a function of (family, P) and the fit key drops it.
_DEGREE_FAMILIES = frozenset({"generalized-de-bruijn", "generalized-kautz"})

#: Metrics the contention correction carries a fitted head for.
_METRICS = ("ncycles", "mean_latency", "latency_std", "max_latency", "max_fifo")


@dataclass(frozen=True)
class MetricTolerance:
    """Documented relative-error tolerance band for one estimated metric.

    The differential suite asserts ``|estimate - simulated| <= band *
    max(simulated, slack)`` — ``slack`` keeps the relative test meaningful
    when the simulated value itself is a handful of cycles.  The measured
    fields record the out-of-sample error envelope (400 random
    configurations spanning every family, policy and traffic mix, networks
    up to P=32) that the band was derived from; see docs/noc-analytical.md.
    """

    band: float
    slack: float
    measured_mean: float
    measured_p90: float
    measured_max: float


#: Enforced tolerance per metric.  Bands are the measured out-of-sample
#: maximum plus ~40% headroom (the differential suite draws fresh
#: configurations, so the enforced band must dominate unseen draws, not just
#: the measurement sample).  ``ncycles`` — the screening objective — is tight;
#: the latency moments are single-seed extreme statistics and honestly wider;
#: ``max_fifo`` is a coarse area-ranking signal only.
ERROR_TOLERANCES: Mapping[str, MetricTolerance] = {
    "ncycles": MetricTolerance(
        band=0.50, slack=8.0, measured_mean=0.052, measured_p90=0.114,
        measured_max=0.343,
    ),
    "mean_latency": MetricTolerance(
        band=1.60, slack=4.0, measured_mean=0.177, measured_p90=0.391,
        measured_max=1.136,
    ),
    "latency_std": MetricTolerance(
        band=2.00, slack=3.0, measured_mean=0.209, measured_p90=0.481,
        measured_max=1.377,
    ),
    "max_latency": MetricTolerance(
        band=2.00, slack=6.0, measured_mean=0.306, measured_p90=0.649,
        measured_max=1.408,
    ),
    "max_fifo": MetricTolerance(
        band=3.40, slack=4.0, measured_mean=0.303, measured_p90=0.671,
        measured_max=1.830,
    ),
}


@dataclass(frozen=True)
class AnalyticalEstimate:
    """Closed-form estimate of one simulated message-passing phase.

    Mirrors the measurements of :class:`~repro.noc.results.SimulationResult`
    that the design flow consumes.  ``zero_contention_bound`` is the provable
    lower bound on the drain time — both this estimate's ``ncycles`` and the
    engine's measured ``ncycles`` are always >= it.
    """

    ncycles: float
    mean_latency: float
    latency_std: float
    max_latency: float
    max_fifo_occupancy: float
    mean_hops: float
    max_hops: int
    zero_contention_bound: int
    total_messages: int
    network_messages: int

    @property
    def sustained_throughput(self) -> float:
        """Delivered messages per cycle over the whole phase."""
        if self.ncycles <= 0:
            return 0.0
        return self.total_messages / self.ncycles


@dataclass(frozen=True)
class ContentionFit:
    """Fitted contention correction for one (family, degree, algorithm, policy).

    ``thetas`` maps each metric head to its non-negative coefficient vector
    over the shared feature basis (see ``AnalyticalNocModel._features``).
    """

    family: str
    degree: int | None
    routing_algorithm: RoutingAlgorithm
    collision_policy: CollisionPolicy
    thetas: Mapping[str, tuple[float, ...]]
    n_probes: int


def zero_contention_bound(
    tables: RoutingTables,
    config: NocConfiguration,
    traffic: TrafficPattern,
    ssp_loads: np.ndarray | None = None,
) -> int:
    """Provable lower bound on the engine's ``ncycles`` for this workload.

    Three terms, each a necessary condition of the engine's timing
    discipline (docs/noc-analytical.md derives them from the cycle loop):

    * ``B1`` (injection + path): the ``k``-th network message a PE emits
      (1-based, in traffic order) is credit-paced to inject no earlier than
      cycle ``ceil(k / R) - 1`` and is delivered no earlier than ``hops + 2``
      cycles later.  Local messages with RL=0 bypass the network and are
      delivered at the preceding network message's injection cycle.
    * ``B2`` (destination serialization): node ``d`` delivers at most one
      message per cycle, so its ``n_d`` addressed messages finish no earlier
      than ``n_d`` cycles after the earliest possible first arrival.
    * ``B3`` (arc capacity, SSP + DCM only): with a unique planned path per
      message and no deflections, an arc carrying ``l`` messages is busy
      for ``l`` cycles, plus one cycle to enter the network and one to
      deliver.  Under SCM deflections (or ASP path spreading) messages can
      leave overloaded arcs, so the term does not apply.

    ``ncycles`` is the last delivery cycle + 1, hence the ``+1``-style
    offsets baked into each term.  The engine can never finish below this
    bound; the differential suite asserts exactly that.
    """
    if traffic.total_messages == 0:
        return 0
    rate = config.injection_rate
    dist = tables.distance
    route_local = config.route_local
    b1 = 1
    earliest = np.full(traffic.n_nodes, np.iinfo(np.int64).max, dtype=np.int64)
    deliveries = np.zeros(traffic.n_nodes, dtype=np.int64)
    for node_traffic in traffic.per_node:
        node = node_traffic.node
        dests = np.asarray(node_traffic.destinations, dtype=np.int64)
        if dests.size == 0:
            continue
        if route_local:
            network = np.ones(dests.shape, dtype=bool)
        else:
            network = dests != node
        # 1-based network-message index at each traffic slot; at an RL=0
        # bypass slot (network False) the inclusive cumsum equals the count
        # of preceding network messages, which is exactly the ``k`` the
        # bypass delivery is paced by.
        k = np.cumsum(network)
        inject = np.ceil(k / rate).astype(np.int64) - 1
        if not route_local:
            bypass = ~network
            if bypass.any():
                # Bypass delivery happens when the preceding network message
                # injects (or at cycle 0 if there is none): ncycles >= t + 1.
                t_bypass = np.where(k[bypass] > 0, inject[bypass], 0)
                b1 = max(b1, int(t_bypass.max()) + 1)
        if network.any():
            net_dests = dests[network]
            hops = dist[node, net_dests].astype(np.int64)
            t = inject[network]
            b1 = max(b1, int((t + hops + 2).max()))
            np.add.at(deliveries, net_dests, 1)
            np.minimum.at(earliest, net_dests, t + hops + 1)
    b2 = 1
    addressed = deliveries > 0
    if addressed.any():
        b2 = max(b2, int((earliest[addressed] + deliveries[addressed]).max()))
    bound = max(b1, b2)
    if (
        config.routing_algorithm is not RoutingAlgorithm.ASP_FT
        and config.collision_policy is CollisionPolicy.DCM
    ):
        if ssp_loads is None:
            pair_counts = traffic.pair_counts().astype(np.float64)
            if not route_local:
                np.fill_diagonal(pair_counts, 0.0)
            ssp_loads = tables.ssp_arc_loads(pair_counts)
        max_load = int(ssp_loads.max()) if ssp_loads.size else 0
        if max_load:
            bound = max(bound, max_load + 2)
    return bound


def _nnls(features: np.ndarray, targets: np.ndarray, iters: int = 800) -> np.ndarray:
    """Non-negative least squares by projected gradient descent.

    Small and dependency-free (no scipy in the image).  Columns are scaled
    to unit norm so one Lipschitz step size serves every feature; 800
    iterations converge far past the noise floor of the probe targets.
    """
    X = np.asarray(features, dtype=np.float64)
    y = np.asarray(targets, dtype=np.float64)
    scale = np.linalg.norm(X, axis=0)
    scale[scale == 0] = 1.0
    Xs = X / scale
    lipschitz = np.linalg.norm(Xs.T @ Xs, 2)
    if lipschitz == 0:
        return np.zeros(X.shape[1])
    theta = np.zeros(X.shape[1])
    for _ in range(iters):
        grad = Xs.T @ (Xs @ theta - y)
        theta = np.clip(theta - grad / lipschitz, 0.0, None)
    return theta / scale


@dataclass(frozen=True)
class _Analysis:
    """Closed-form quantities for one (graph, config, traffic) workload."""

    lower_bound: int
    base: float
    features: tuple[float, ...]
    latency_floor: float
    latency_std_floor: float
    max_latency_floor: float
    mean_hops: float
    max_hops: int
    total_messages: int
    network_messages: int


class AnalyticalNocModel:
    """Analytical estimator with per-family fitted contention corrections.

    Parameters
    ----------
    probe_seed:
        Seed of the synthetic probe traffic the contention correction is
        fitted against.
    engine_seed:
        Seed passed to the cycle engine when running probes.
    max_probe_cycles:
        Safety ceiling for probe simulations.

    Fits are cached per ``(family, degree, routing algorithm, collision
    policy)`` — one probe campaign (27 small cycle-exact runs) covers every
    (P, injection rate, traffic) query sharing that key, which is what makes
    analytical screening of large grids cheap.
    """

    #: Probe grid: messages per node x injection rates, at three family-
    #: specific small parallelisms.  Rates span the values the screening
    #: grids use; queries far outside this envelope extrapolate.
    PROBE_MESSAGES = (4, 16, 32)
    PROBE_RATES = (0.25, 0.5, 1.0)

    def __init__(
        self,
        probe_seed: int = 101,
        engine_seed: int = 7,
        max_probe_cycles: int = 200_000,
    ):
        self.probe_seed = probe_seed
        self.engine_seed = engine_seed
        self.max_probe_cycles = max_probe_cycles
        self._fits: dict[tuple, ContentionFit] = {}
        self._graphs: dict[tuple, tuple[Topology, RoutingTables]] = {}

    # ------------------------------------------------------------------ #
    # Graph plumbing
    # ------------------------------------------------------------------ #
    def _graph(
        self, family: str, parallelism: int, degree: int | None
    ) -> tuple[Topology, RoutingTables]:
        degree_key = degree if family in _DEGREE_FAMILIES else None
        key = (family, parallelism, degree_key)
        if key not in self._graphs:
            topology = build_topology(family, parallelism, degree_key)
            self._graphs[key] = (topology, build_routing_tables(topology))
        return self._graphs[key]

    @staticmethod
    def _probe_parallelisms(family: str) -> tuple[int, ...]:
        """Small-network probe sizes, adjusted to each family's validity set."""
        if family == "toroidal-mesh":
            return (9, 12, 16)
        if family == "ring":
            return (6, 10, 16)
        return (8, 12, 16)

    # ------------------------------------------------------------------ #
    # Closed-form analysis
    # ------------------------------------------------------------------ #
    def _analyze(
        self,
        tables: RoutingTables,
        config: NocConfiguration,
        traffic: TrafficPattern,
    ) -> _Analysis:
        pair_counts_all = traffic.pair_counts().astype(np.float64)
        pair_counts = pair_counts_all.copy()
        if not config.route_local:
            np.fill_diagonal(pair_counts, 0.0)
        if config.routing_algorithm is RoutingAlgorithm.ASP_FT:
            loads = tables.asp_arc_loads(pair_counts)
            ssp_loads = None
        else:
            loads = tables.ssp_arc_loads(pair_counts)
            ssp_loads = loads
        bound = zero_contention_bound(tables, config, traffic, ssp_loads=ssp_loads)
        hop_stats = tables.hop_statistics(pair_counts)
        network_messages = hop_stats.total_messages
        total_messages = int(pair_counts_all.sum())
        max_load = float(loads.max()) if loads.size else 0.0
        mean_load = float(loads.mean()) if loads.size else 0.0
        # The correction's reference scale: the bound, or the most loaded
        # arc's busy period when that is the larger — under SCM/ASP the arc
        # term is not a provable bound, but it is the right congestion scale.
        base = float(max(bound, int(np.ceil(max_load)) + 2 if max_load else bound))
        utilization = min(max_load / base, 0.999) if base else 0.0
        mean_utilization = min(mean_load / base, 0.999) if base else 0.0
        capped = min(utilization, 0.95)
        saturation = capped / (1.0 - capped)
        features = (
            utilization,
            utilization * utilization,
            saturation,
            mean_utilization,
            config.injection_rate,
            1.0,
        )
        # Zero-contention latency floors over ALL messages: a network message
        # over h hops takes >= h + 1 cycles, an RL=0 local bypass takes 0.
        if total_messages:
            latency_floor = network_messages * (hop_stats.mean + 1.0) / total_messages
            second_moment_floor = (
                network_messages
                * (hop_stats.second_moment + 2.0 * hop_stats.mean + 1.0)
                / total_messages
            )
        else:
            latency_floor = second_moment_floor = 0.0
        latency_std_floor = math.sqrt(
            max(second_moment_floor - latency_floor * latency_floor, 0.0)
        )
        max_latency_floor = float(hop_stats.maximum + 1) if network_messages else 0.0
        return _Analysis(
            lower_bound=bound,
            base=base,
            features=features,
            latency_floor=latency_floor,
            latency_std_floor=latency_std_floor,
            max_latency_floor=max_latency_floor,
            mean_hops=hop_stats.mean,
            max_hops=hop_stats.maximum,
            total_messages=total_messages,
            network_messages=network_messages,
        )

    @staticmethod
    def _head_scales(analysis: _Analysis) -> dict[str, tuple[float, float]]:
        """Per metric head: (floor, correction scale).

        Every head predicts ``floor + scale * max(0, theta . features)``;
        the fit targets are the matching ``(observed - floor) / scale``.
        The drain time and FIFO heads scale with the congestion base (queueing
        is additive in cycles); the latency heads scale with their own floor
        (waiting inflates latencies multiplicatively), clamped to >= 1 so
        near-zero floors — mostly-local traffic — stay well-conditioned.
        """
        return {
            "ncycles": (analysis.base, analysis.base),
            "mean_latency": (analysis.latency_floor, max(analysis.latency_floor, 1.0)),
            "latency_std": (
                analysis.latency_std_floor,
                max(analysis.latency_std_floor, 1.0),
            ),
            "max_latency": (
                analysis.max_latency_floor,
                max(analysis.max_latency_floor, 1.0),
            ),
            "max_fifo": (1.0, analysis.base),
        }

    # ------------------------------------------------------------------ #
    # Probe fitting
    # ------------------------------------------------------------------ #
    def fit_for(
        self,
        family: str,
        degree: int | None,
        routing_algorithm: RoutingAlgorithm,
        collision_policy: CollisionPolicy,
    ) -> ContentionFit:
        """The cached contention fit for one model key, fitting on first use."""
        degree_key = degree if family in _DEGREE_FAMILIES else None
        key = (family, degree_key, routing_algorithm, collision_policy)
        if key not in self._fits:
            self._fits[key] = self._fit(*key)
        return self._fits[key]

    def _fit(
        self,
        family: str,
        degree: int | None,
        routing_algorithm: RoutingAlgorithm,
        collision_policy: CollisionPolicy,
    ) -> ContentionFit:
        features: list[tuple[float, ...]] = []
        targets: dict[str, list[float]] = {metric: [] for metric in _METRICS}
        n_probes = 0
        for parallelism in self._probe_parallelisms(family):
            try:
                topology, tables = self._graph(family, parallelism, degree)
            except TopologyError:
                continue
            for messages in self.PROBE_MESSAGES:
                for rate in self.PROBE_RATES:
                    config = NocConfiguration(
                        injection_rate=rate, collision_policy=collision_policy
                    ).with_routing(routing_algorithm)
                    traffic = random_traffic(
                        parallelism, messages, seed=self.probe_seed
                    )
                    engine = BatchNocSimulator(
                        topology,
                        config,
                        routing_tables=tables,
                        seed=self.engine_seed,
                        max_cycles=self.max_probe_cycles,
                    )
                    result = engine.run(traffic)
                    analysis = self._analyze(tables, config, traffic)
                    scales = self._head_scales(analysis)
                    features.append(analysis.features)
                    observed = {
                        "ncycles": float(result.ncycles),
                        "mean_latency": result.statistics.mean_latency,
                        "latency_std": _latency_std(result),
                        "max_latency": float(result.statistics.max_latency),
                        "max_fifo": float(result.max_fifo_occupancy),
                    }
                    for metric in _METRICS:
                        floor, scale = scales[metric]
                        targets[metric].append((observed[metric] - floor) / scale)
                    n_probes += 1
        if not n_probes:
            raise ConfigurationError(
                f"no valid probe networks for family {family!r} "
                f"(degree {degree!r}); cannot fit the analytical model"
            )
        feature_matrix = np.array(features, dtype=np.float64)
        thetas = {
            metric: tuple(_nnls(feature_matrix, np.array(values)))
            for metric, values in targets.items()
        }
        return ContentionFit(
            family=family,
            degree=degree if family in _DEGREE_FAMILIES else None,
            routing_algorithm=routing_algorithm,
            collision_policy=collision_policy,
            thetas=thetas,
            n_probes=n_probes,
        )

    # ------------------------------------------------------------------ #
    # Estimation
    # ------------------------------------------------------------------ #
    def estimate(
        self,
        family: str,
        degree: int | None,
        config: NocConfiguration,
        traffic: TrafficPattern,
        tables: RoutingTables | None = None,
    ) -> AnalyticalEstimate:
        """Estimate one workload's simulation measurements without simulating.

        ``tables`` may be passed to reuse routing tables the caller already
        built; otherwise they are built (and cached) from ``(family,
        traffic.n_nodes, degree)``.
        """
        if tables is None:
            _, tables = self._graph(family, traffic.n_nodes, degree)
        if traffic.total_messages == 0:
            return AnalyticalEstimate(
                ncycles=0.0, mean_latency=0.0, latency_std=0.0, max_latency=0.0,
                max_fifo_occupancy=0.0, mean_hops=0.0, max_hops=0,
                zero_contention_bound=0, total_messages=0, network_messages=0,
            )
        fit = self.fit_for(
            family, degree, config.routing_algorithm, config.collision_policy
        )
        analysis = self._analyze(tables, config, traffic)
        scales = self._head_scales(analysis)
        feature_vector = np.asarray(analysis.features)

        def head(metric: str) -> float:
            floor, scale = scales[metric]
            correction = max(0.0, float(np.dot(feature_vector, fit.thetas[metric])))
            return floor + scale * correction

        return AnalyticalEstimate(
            ncycles=max(head("ncycles"), float(analysis.lower_bound)),
            mean_latency=head("mean_latency"),
            latency_std=head("latency_std"),
            max_latency=head("max_latency"),
            max_fifo_occupancy=max(head("max_fifo"), 1.0),
            mean_hops=analysis.mean_hops,
            max_hops=analysis.max_hops,
            zero_contention_bound=analysis.lower_bound,
            total_messages=analysis.total_messages,
            network_messages=analysis.network_messages,
        )


def _latency_std(result) -> float:
    """Population standard deviation of the delivered-message latencies."""
    latencies = result.statistics._latencies
    if not latencies:
        return 0.0
    return float(np.std(np.asarray(latencies, dtype=np.float64)))

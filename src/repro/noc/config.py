"""NoC simulation and architecture parameters.

These mirror the parameter set of the paper's simulator (Section III-A):
PE output rate ``R``, routing algorithm (SSP-RR, SSP-FL, ASP-FT), collision
management (DCM/SCM), local-message routing flag ``RL`` and the node
architecture (All-Precalculated or Partially-Precalculated), which fixes the
packet format (header or not) and where the routing information lives.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from enum import Enum
from math import ceil, log2

from repro.errors import ConfigurationError


class RoutingAlgorithm(str, Enum):
    """Routing algorithms embedded in the simulator (paper Section III-A)."""

    #: Single shortest path, round-robin serving of contending input FIFOs.
    SSP_RR = "SSP-RR"
    #: Single shortest path, longest-input-FIFO-first serving.
    SSP_FL = "SSP-FL"
    #: All local shortest paths, FIFO-length serving with traffic spreading.
    ASP_FT = "ASP-FT"

    @property
    def uses_all_paths(self) -> bool:
        """True when multiple shortest-path output ports may be used."""
        return self is RoutingAlgorithm.ASP_FT


class CollisionPolicy(str, Enum):
    """What happens to messages that lose crossbar arbitration."""

    #: Delay Colliding Messages: losers stay at the head of their FIFOs.
    DCM = "DCM"
    #: Send Colliding Messages: losers are routed to a free (possibly wrong) port.
    SCM = "SCM"


class NodeArchitecture(str, Enum):
    """Node architectures considered by the paper (from [17])."""

    #: All-Precalculated: routing decisions precomputed off-line, no packet
    #: header, shallow FIFOs, per-node routing memory.
    AP = "AP"
    #: Partially-Precalculated: destination id travels in the packet header,
    #: routing performed on-line from routing tables.
    PP = "PP"


#: Default payload width in bits (extrinsic message: 2 x 5-bit bit-level LLRs,
#: rounded up to include the destination memory location for LDPC R messages).
DEFAULT_PAYLOAD_BITS = 10


@dataclass(frozen=True)
class NocConfiguration:
    """Complete parameter set of one NoC simulation / area evaluation.

    Attributes
    ----------
    routing_algorithm:
        One of :class:`RoutingAlgorithm`.
    node_architecture:
        AP or PP.  Following the paper's Table I, ASP-FT is evaluated on the
        AP architecture and the SSP algorithms on the PP architecture, but any
        combination can be configured explicitly.
    injection_rate:
        PE output rate ``R`` in messages per clock cycle (0 < R <= 1).
    route_local:
        ``RL`` flag: route PE-to-same-PE messages through the network (True)
        or keep them in an internal queue (False, the paper's setting).
    collision_policy:
        DCM or SCM (the paper's Table I uses SCM).
    payload_bits:
        Payload width of one message in bits (excluding any header).
    location_bits:
        Width of the destination memory location ``t'`` carried with each
        message (paper Fig. 1); part of the packet for PP, stored in the
        location memory for AP.
    fifo_capacity:
        Maximum input-FIFO depth used by the simulator.  The *observed*
        maximum occupancy (reported by the simulation) is what sizes the
        hardware FIFOs; the capacity here only bounds simulator memory and
        applies backpressure when exceeded.  The default is large enough that
        congested low-degree topologies never reach it (tight capacities can
        deadlock a heavily loaded network, which the off-line traffic planning
        of the real decoder avoids by construction).
    """

    routing_algorithm: RoutingAlgorithm = RoutingAlgorithm.SSP_FL
    node_architecture: NodeArchitecture = NodeArchitecture.PP
    injection_rate: float = 0.5
    route_local: bool = False
    collision_policy: CollisionPolicy = CollisionPolicy.SCM
    payload_bits: int = DEFAULT_PAYLOAD_BITS
    location_bits: int = 11
    fifo_capacity: int = 4096

    def __post_init__(self) -> None:
        if not 0.0 < self.injection_rate <= 1.0:
            raise ConfigurationError(
                f"injection_rate must be in (0, 1], got {self.injection_rate}"
            )
        if self.payload_bits <= 0:
            raise ConfigurationError(f"payload_bits must be positive, got {self.payload_bits}")
        if self.location_bits < 0:
            raise ConfigurationError(
                f"location_bits must be non-negative, got {self.location_bits}"
            )
        if self.fifo_capacity <= 0:
            raise ConfigurationError(
                f"fifo_capacity must be positive, got {self.fifo_capacity}"
            )

    # ------------------------------------------------------------------ #
    # Derived packet geometry
    # ------------------------------------------------------------------ #
    def header_bits(self, n_nodes: int) -> int:
        """Packet header width: the destination-node identifier for PP, none for AP."""
        if self.node_architecture is NodeArchitecture.AP:
            return 0
        if n_nodes <= 1:
            raise ConfigurationError(f"n_nodes must be >= 2, got {n_nodes}")
        return ceil(log2(n_nodes))

    def flit_bits(self, n_nodes: int) -> int:
        """Total width of one message as stored in an input FIFO."""
        # The destination memory location travels with the packet on PP nodes;
        # AP nodes read it from their local location memory instead.
        location = self.location_bits if self.node_architecture is NodeArchitecture.PP else 0
        return self.payload_bits + self.header_bits(n_nodes) + location

    def with_routing(self, algorithm: RoutingAlgorithm) -> "NocConfiguration":
        """Copy of this configuration with a different routing algorithm.

        The node architecture follows the paper's pairing (ASP-FT on AP, SSP-*
        on PP) unless it was set explicitly to the non-default pairing.
        """
        architecture = (
            NodeArchitecture.AP if algorithm.uses_all_paths else NodeArchitecture.PP
        )
        return replace(self, routing_algorithm=algorithm, node_architecture=architecture)

    def describe(self) -> str:
        """One-line human-readable summary used in reports."""
        return (
            f"{self.routing_algorithm.value} ({self.node_architecture.value}), "
            f"R={self.injection_rate}, RL={int(self.route_local)}, "
            f"{self.collision_policy.value}"
        )

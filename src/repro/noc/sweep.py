"""NoC sweep scheduler: group jobs, dispatch each group to its fastest engine.

PR 3's sweep driver walked jobs strictly sequentially through one scalar
engine per (graph, configuration).  This module replaces it with an
*adaptive scheduler*:

1. jobs are **grouped** by ``(family, parallelism, degree, configuration,
   max_cycles)`` — everything the batched kernel shares across a group;
2. each group is dispatched to the job-batched cycle kernel
   (:class:`~repro.noc.engine_batch.BatchedNocKernel`) **or** the scalar
   engine, whichever a measured :class:`SweepCostModel` — calibrated once per
   process on a probe workload and cached — projects to be faster for the
   group's size and collision policy.  Configurations the job axis cannot
   express (bounded-capacity backpressure) always run scalar, inside the
   kernel's own fallback;
3. with ``parallel="process"`` the groups are sharded across a
   :class:`concurrent.futures.ProcessPoolExecutor` — but only when the cost
   model projects the sweep is big enough to amortize the pool: one worker
   (or a sweep projected to finish faster than the pool spins up) dispatches
   serially with no executor at all.  Oversized groups are split into
   worker-sized chunks so the work spreads across the pool and no single
   pickle payload carries a whole grid; chunked results are bit-identical
   because the kernel is cycle-exact *per job* regardless of batch mates.
   Each worker process builds (and caches) topologies and routing tables
   once, so graph construction is paid per worker, not per job.

Results are returned as :class:`NocSweepOutcome` records that carry the
originating :class:`NocSweepJob`, so callers match results to jobs by
identity instead of relying on input ordering (the list still preserves
submission order for convenience).

Engine reuse is explicitly **seed-independent**: engines and kernels are
constructed once per group without any job's seed, and seeds are passed to
``run`` only — two jobs differing only in seed always share one engine and
still reproduce exactly what two freshly seeded engines would.
"""

from __future__ import annotations

import hashlib
import json
import os
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable

from repro.backend import resolve
from repro.errors import ConfigurationError
from repro.noc.config import CollisionPolicy, NocConfiguration
from repro.utils.calibration import (
    POOL_SPINUP_S,
    PiecewiseLinearCost,
    best_time,
    pool_amortizes,
)
from repro.noc.engine import BatchNocSimulator
from repro.noc.engine_batch import BatchedNocKernel
from repro.noc.message import MessageStatistics
from repro.noc.results import SimulationResult
from repro.noc.routing import build_routing_tables
from repro.noc.topologies import build_topology
from repro.noc.traffic import TrafficPattern, random_traffic_streams

__all__ = [
    "NocSweepCache",
    "NocSweepJob",
    "NocSweepOutcome",
    "SWEEP_CACHE_CODE_VERSION",
    "SweepCostModel",
    "run_noc_sweep",
    "scheduler_cost_model",
]


@dataclass(frozen=True)
class NocSweepJob:
    """One point of a NoC sweep: a topology spec, a configuration and traffic.

    ``family``/``parallelism``/``degree`` describe the topology so the sweep
    scheduler can share one built topology (and its routing tables) across
    every job that uses the same graph, and batch every job that also shares
    the configuration.
    """

    family: str
    parallelism: int
    degree: int | None
    config: NocConfiguration
    traffic: TrafficPattern
    seed: int = 0
    max_cycles: int = 200_000


@dataclass(frozen=True)
class NocSweepOutcome:
    """One sweep result annotated with the job that produced it."""

    job: NocSweepJob
    result: SimulationResult


#: Hard floor under which batching is never attempted (a batch of one gains
#: nothing from stacking); also the legacy default for explicit ``min_batch``.
MIN_BATCH = 2

#: Version stamp of the *simulation semantics* behind cached sweep results.
#: Bump whenever an engine change may alter any measurement for the same job
#: — every cached entry keyed under the old version then misses and re-runs.
SWEEP_CACHE_CODE_VERSION = 1


class NocSweepCache:
    """Persistent on-disk cache of cycle-exact sweep results.

    One JSON file per result under ``directory``, named by a SHA-256 hash of
    the complete job description — topology spec, every configuration field,
    the full traffic pattern, engine seed, cycle limit — plus
    :data:`SWEEP_CACHE_CODE_VERSION`.  Any change to any of those produces a
    different key, so stale entries are never returned: they are simply
    orphaned (and a version bump orphans all of them at once).

    The cache is transparent by construction: a hit returns a
    :class:`~repro.noc.results.SimulationResult` that round-trips every field
    the engines measure (including the raw latency list behind the
    percentile statistics), so sweeps with and without a cache are
    bit-identical — the differential suite asserts this.  Unreadable or
    corrupt entries (truncated writes, foreign files, schema drift) are
    treated as misses and quietly re-simulated, never raised.
    """

    def __init__(self, directory: str | Path, code_version: int | None = None):
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.code_version = (
            SWEEP_CACHE_CODE_VERSION if code_version is None else code_version
        )
        self.hits = 0
        self.misses = 0

    # ------------------------------------------------------------------ #
    # Keys
    # ------------------------------------------------------------------ #
    def key(self, job: NocSweepJob) -> str:
        """Content hash of everything that determines the job's result."""
        config = job.config
        description = {
            "code_version": self.code_version,
            "family": job.family,
            "parallelism": job.parallelism,
            "degree": job.degree,
            "config": {
                "routing_algorithm": config.routing_algorithm.value,
                "node_architecture": config.node_architecture.value,
                "injection_rate": config.injection_rate,
                "route_local": config.route_local,
                "collision_policy": config.collision_policy.value,
                "payload_bits": config.payload_bits,
                "location_bits": config.location_bits,
                "fifo_capacity": config.fifo_capacity,
            },
            "traffic": {
                "n_nodes": job.traffic.n_nodes,
                "label": job.traffic.label,
                "per_node": [
                    [list(node.destinations), list(node.memory_locations)]
                    for node in job.traffic.per_node
                ],
            },
            "seed": job.seed,
            "max_cycles": job.max_cycles,
        }
        canonical = json.dumps(description, sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(canonical.encode("utf-8")).hexdigest()

    def _entry_path(self, key: str) -> Path:
        return self.directory / f"{key}.json"

    # ------------------------------------------------------------------ #
    # Lookup / store
    # ------------------------------------------------------------------ #
    def get(self, job: NocSweepJob) -> SimulationResult | None:
        """The cached result for ``job``, or None on miss or corrupt entry."""
        path = self._entry_path(self.key(job))
        try:
            payload = json.loads(path.read_text(encoding="utf-8"))
            result = _result_from_payload(payload)
        except (OSError, ValueError, KeyError, TypeError):
            self.misses += 1
            return None
        self.hits += 1
        return result

    def put(self, job: NocSweepJob, result: SimulationResult) -> None:
        """Persist one result; the write is atomic (temp file + rename)."""
        path = self._entry_path(self.key(job))
        payload = json.dumps(_result_to_payload(result), separators=(",", ":"))
        temp = path.with_suffix(f".tmp-{os.getpid()}")
        temp.write_text(payload, encoding="utf-8")
        os.replace(temp, path)

    def __len__(self) -> int:
        return sum(1 for _ in self.directory.glob("*.json"))


def _result_to_payload(result: SimulationResult) -> dict:
    statistics = result.statistics
    return {
        "ncycles": result.ncycles,
        "total_messages": result.total_messages,
        "delivered_messages": result.delivered_messages,
        "local_bypassed": result.local_bypassed,
        "max_fifo_occupancy": result.max_fifo_occupancy,
        "max_injection_occupancy": result.max_injection_occupancy,
        "per_node_max_fifo": list(result.per_node_max_fifo),
        "link_utilization": result.link_utilization,
        "config_label": result.config_label,
        "topology_label": result.topology_label,
        "traffic_label": result.traffic_label,
        "statistics": {
            "count": statistics.count,
            "total_latency": statistics.total_latency,
            "max_latency": statistics.max_latency,
            "total_hops": statistics.total_hops,
            "misrouted": statistics.misrouted,
            "latencies": list(statistics._latencies),
        },
    }


def _result_from_payload(payload: dict) -> SimulationResult:
    stats_payload = payload["statistics"]
    statistics = MessageStatistics(
        count=int(stats_payload["count"]),
        total_latency=int(stats_payload["total_latency"]),
        max_latency=int(stats_payload["max_latency"]),
        total_hops=int(stats_payload["total_hops"]),
        misrouted=int(stats_payload["misrouted"]),
        _latencies=[int(v) for v in stats_payload["latencies"]],
    )
    return SimulationResult(
        ncycles=int(payload["ncycles"]),
        total_messages=int(payload["total_messages"]),
        delivered_messages=int(payload["delivered_messages"]),
        local_bypassed=int(payload["local_bypassed"]),
        max_fifo_occupancy=int(payload["max_fifo_occupancy"]),
        max_injection_occupancy=int(payload["max_injection_occupancy"]),
        per_node_max_fifo=[int(v) for v in payload["per_node_max_fifo"]],
        statistics=statistics,
        link_utilization=float(payload["link_utilization"]),
        config_label=str(payload["config_label"]),
        topology_label=str(payload["topology_label"]),
        traffic_label=str(payload["traffic_label"]),
    )

#: Calibration probe: a Table-I-scale generalized-Kautz workload per
#: collision policy, timed once per process.  The probe must run at the
#: paper's network size *and* sample batch sizes on both sides of the
#: kernel's vectorized-resume threshold (``_VEC_MIN_ROUND``) — the SCM cost
#: curve kinks there, so an affine fit through small batches alone would
#: spuriously conclude SCM batching can never win.  The whole calibration
#: costs well under a second, cached for every later sweep of the process.
_PROBE_SPEC = ("generalized-kautz", 16, 3)
_PROBE_MESSAGES = 48
_PROBE_SIZES = (8, 24, 128)

#: Groups smaller than this always run the scalar engine, with no
#: calibration: every recorded host loses on batches this small (the stacked
#: bookkeeping cannot amortize), and skipping the probe keeps tiny sweeps —
#: single design points, unit tests — free of the calibration cost.
_ADAPTIVE_SCALAR_UNDER = 8

#: Sweeps projected to finish serially faster than this never pay for a
#: process pool (executor spin-up plus per-task pickling costs this order of
#: magnitude on its own).  Shared with the decode service's sharding planner
#: through :mod:`repro.utils.calibration`.
_PROCESS_MIN_SERIAL_S = POOL_SPINUP_S

#: Chunks per worker when sharding groups across a pool: more than one chunk
#: per worker keeps the pool busy when group runtimes differ.
_CHUNKS_PER_WORKER = 2


@dataclass(frozen=True)
class SweepCostModel:
    """Measured per-process cost model behind the scheduler's dispatch choices.

    All times come from one probe workload (:data:`_PROBE_SPEC`):
    ``scalar_point_s`` is the scalar engine's per-point cost, and
    ``batch_samples`` holds the batched kernel's measured whole-group cost at
    each probe batch size.  The batched cost curve is *not* affine — it kinks
    where the kernel's vectorized resume rounds start to engage — so the
    model interpolates it piecewise-linearly between samples (extrapolating
    the outermost segments) and dispatch simply picks, per group, the engine
    with the lower projected cost.
    """

    scalar_point_s: dict[CollisionPolicy, float]
    #: Per policy: ascending ``(J, measured whole-group seconds)`` samples.
    batch_samples: dict[CollisionPolicy, tuple[tuple[int, float], ...]]
    probe_parallelism: int = _PROBE_SPEC[1]

    #: Batching must project at least this relative win before it is picked:
    #: around the bare crossover either engine is within noise of the other,
    #: and the probe's piecewise fit is least trustworthy exactly there, so
    #: the scheduler only leaves the scalar engine for a clear projected win.
    #: SCM's cost curve is the flatter and noisier of the two (the deflection
    #: replay mixes scalar and vectorized regimes), hence its wider margin.
    WIN_MARGIN = {CollisionPolicy.DCM: 0.9, CollisionPolicy.SCM: 0.85}

    #: Dispatch never projects beyond this group size (groups larger than any
    #: crossover the probe could witness simply batch).
    SEARCH_LIMIT = 2048

    def batch_cost_s(self, policy: CollisionPolicy, group_size: int) -> float:
        """Projected batched-kernel cost of one group, piecewise-linear.

        Delegates to :class:`repro.utils.calibration.PiecewiseLinearCost`,
        which scales proportionally below the first probe sample instead of
        extrapolating the first segment downward — a noisy super-linear
        segment would otherwise project negative (i.e. bogusly winning)
        costs for tiny groups.
        """
        return PiecewiseLinearCost(self.batch_samples[policy]).cost(group_size)

    def batch_wins(self, policy: CollisionPolicy, group_size: int) -> bool:
        """Whether the batched kernel clearly wins a group of this size."""
        scalar = self.scalar_point_s[policy] * self.WIN_MARGIN[policy]
        return self.batch_cost_s(policy, group_size) < scalar * group_size

    def min_batch(self, policy: CollisionPolicy) -> int:
        """Smallest group size the batched kernel is projected to clearly win at."""
        for group_size in range(MIN_BATCH, self.SEARCH_LIMIT + 1):
            if self.batch_wins(policy, group_size):
                return group_size
        return 1 << 30

    def projected_serial_s(self, policy: CollisionPolicy, group_size: int,
                           parallelism: int) -> float:
        """Projected serial cost of one group, on whichever engine dispatch picks.

        Scaled linearly from the probe's node count — a deliberately crude
        floor used only to decide whether a process pool is worth spinning up.
        """
        scale = max(parallelism, 1) / self.probe_parallelism
        scalar = self.scalar_point_s[policy] * group_size
        return min(scalar, self.batch_cost_s(policy, group_size)) * scale


def _calibrate() -> SweepCostModel:
    """Time the probe workload through both engines, once per process."""
    family, parallelism, degree = _PROBE_SPEC
    topology = build_topology(family, parallelism, degree)
    tables = build_routing_tables(topology)
    count = max(_PROBE_SIZES)
    scalar_point_s: dict[CollisionPolicy, float] = {}
    batch_samples: dict[CollisionPolicy, tuple[tuple[int, float], ...]] = {}
    scalar_jobs = _PROBE_SIZES[0]
    for policy in CollisionPolicy:
        config = NocConfiguration(collision_policy=policy)
        traffics = random_traffic_streams(
            parallelism, _PROBE_MESSAGES, seed=17, count=count
        )
        seeds = list(range(count))
        engine = BatchNocSimulator(topology, config, routing_tables=tables, seed=0)
        kernel = BatchedNocKernel(topology, config, routing_tables=tables)
        # Warm both paths so one-time lazy state stays out of the timings.
        engine.run(traffics[0], seed=seeds[0])
        kernel.run(traffics[:2], seeds[:2])
        scalar_s = best_time(
            lambda: [
                engine.run(t, seed=s)
                for t, s in zip(traffics[:scalar_jobs], seeds[:scalar_jobs])
            ]
        )
        scalar_point_s[policy] = scalar_s / scalar_jobs
        samples = []
        for size in _PROBE_SIZES:
            # Best-of-2 everywhere: the largest sample sets the slope the
            # whole-grid extrapolation rides on, so its noise matters most.
            group_s = best_time(
                lambda size=size: kernel.run(traffics[:size], seeds[:size])
            )
            samples.append((size, group_s))
        batch_samples[policy] = tuple(samples)
    return SweepCostModel(
        scalar_point_s=scalar_point_s,
        batch_samples=batch_samples,
    )


#: Calibrated cost models keyed by :attr:`ArrayBackend.key` of the backend
#: that was active when the probe ran.  Engine timings change when the
#: backend does (a JIT scalar path moves the scalar/batched crossover by an
#: order of magnitude), so each backend gets its own probe run.
_COST_MODELS: dict[tuple[str, bool], SweepCostModel] = {}


def scheduler_cost_model() -> SweepCostModel:
    """The process-wide cost model for the *active* backend.

    Calibrated on first use per backend: the probe engines resolve the
    active backend at run time, so switching backends mid-session triggers
    a fresh probe instead of reusing timings measured for another engine.
    """
    key = resolve(None).key
    model = _COST_MODELS.get(key)
    if model is None:
        model = _COST_MODELS[key] = _calibrate()
    return model


def run_noc_sweep(
    jobs: Iterable[NocSweepJob],
    topology_cache: dict | None = None,
    parallel: str | None = None,
    max_workers: int | None = None,
    min_batch: int | None = None,
    cache: NocSweepCache | None = None,
) -> list[NocSweepOutcome]:
    """Run many sweep points through grouped, adaptively batched engines.

    Parameters
    ----------
    jobs:
        The sweep points.  Jobs sharing ``(family, parallelism, degree,
        config, max_cycles)`` form one group and advance in lockstep through
        the batched kernel; jobs with different graphs or configurations fall
        back to separate grouped batches.
    topology_cache:
        Optional dict mapping ``(family, parallelism, degree)`` to
        ``(topology, routing_tables)``; pass one to share built graphs across
        several sweeps.  Used (and populated) by the serial path only — worker
        processes keep their own per-process caches.
    parallel:
        ``None`` (serial, default) or ``"process"`` to shard group chunks
        across a process pool.  Both paths produce bit-identical outcomes,
        and ``"process"`` quietly dispatches serially when only one worker is
        available or the sweep is projected to finish before a pool would
        spin up.
    max_workers:
        Worker count for ``parallel="process"`` (default: ``os.cpu_count()``).
    min_batch:
        ``None`` (default) lets the measured per-process
        :class:`SweepCostModel` pick scalar vs batched per group (the
        crossover depends on the collision policy: SCM groups fund the
        deflection replay and cross over later than DCM groups).  An explicit
        integer restores the static threshold: groups of at least
        ``min_batch`` jobs batch, smaller ones run the scalar engine.
    cache:
        Optional :class:`NocSweepCache`.  Jobs whose exact description was
        simulated before return their persisted result without simulating;
        missing jobs run normally (through whatever engines and parallelism
        the scheduler picks for the *reduced* sweep) and are persisted on
        the way out.  Results are bit-identical with and without a cache.

    Returns
    -------
    list[NocSweepOutcome]
        One outcome per job, in submission order, each carrying its job.
    """
    jobs = list(jobs)
    if parallel not in (None, "process"):
        raise ConfigurationError(
            f"parallel must be None or 'process', got {parallel!r}"
        )
    if min_batch is not None and min_batch < 1:
        raise ConfigurationError(f"min_batch must be positive, got {min_batch}")
    if cache is not None:
        cached: list[SimulationResult | None] = [cache.get(job) for job in jobs]
        miss_indices = [i for i, result in enumerate(cached) if result is None]
        if miss_indices:
            fresh = run_noc_sweep(
                [jobs[i] for i in miss_indices],
                topology_cache=topology_cache,
                parallel=parallel,
                max_workers=max_workers,
                min_batch=min_batch,
            )
            for index, outcome in zip(miss_indices, fresh):
                cache.put(outcome.job, outcome.result)
                cached[index] = outcome.result
        return [
            NocSweepOutcome(job=job, result=result)
            for job, result in zip(jobs, cached)
        ]
    # Group jobs by everything the batched kernel shares.
    groups: dict[tuple, list[int]] = {}
    for index, job in enumerate(jobs):
        key = (job.family, job.parallelism, job.degree, job.config, job.max_cycles)
        groups.setdefault(key, []).append(index)

    # Resolve every group's engine up front (the decision is cheap and the
    # worker processes then never need their own calibration).  Calibration
    # itself only triggers once a group is big enough that batching could
    # plausibly win.  ``floors`` records, per batched group, the smallest
    # chunk that should still run batched, so process sharding never splits a
    # batched group into chunks the model would route scalar.
    model: SweepCostModel | None = None
    thresholds: dict[CollisionPolicy, int] = {}
    decisions: dict[tuple, bool] = {}
    floors: dict[tuple, int] = {}
    for key, indices in groups.items():
        policy = key[3].collision_policy
        if min_batch is not None:
            floor = max(min_batch, MIN_BATCH)
            decisions[key] = len(indices) >= floor
            floors[key] = floor
            continue
        if len(indices) < _ADAPTIVE_SCALAR_UNDER:
            decisions[key] = False
            floors[key] = 1
            continue
        if model is None:
            model = scheduler_cost_model()
        decisions[key] = model.batch_wins(policy, len(indices))
        if decisions[key]:
            floor = thresholds.get(policy)
            if floor is None:
                floor = thresholds[policy] = model.min_batch(policy)
            floors[key] = floor
        else:
            floors[key] = 1

    use_pool = False
    workers = 1
    if parallel == "process":
        workers = max_workers if max_workers is not None else (os.cpu_count() or 1)
        if workers > 1:
            if model is None:
                model = scheduler_cost_model()
            projected = sum(
                model.projected_serial_s(
                    key[3].collision_policy, len(indices), key[1]
                )
                for key, indices in groups.items()
            )
            use_pool = pool_amortizes(projected, _PROCESS_MIN_SERIAL_S)
    results: list[SimulationResult | None] = [None] * len(jobs)
    if not use_pool:
        cache: dict = topology_cache if topology_cache is not None else {}
        for key, indices in groups.items():
            family, parallelism, degree, config, max_cycles = key
            graph_key = (family, parallelism, degree)
            if graph_key not in cache:
                topology = build_topology(family, parallelism, degree)
                cache[graph_key] = (topology, build_routing_tables(topology))
            topology, tables = cache[graph_key]
            group_results = _run_group(
                topology, tables, config, max_cycles,
                [jobs[i].traffic for i in indices],
                [jobs[i].seed for i in indices],
                decisions[key],
            )
            for i, result in zip(indices, group_results):
                results[i] = result
    else:
        chunks = _shard_groups(groups, decisions, floors, len(jobs), workers)
        with ProcessPoolExecutor(max_workers=workers) as pool:
            futures = {
                pool.submit(
                    _process_chunk,
                    key,
                    [jobs[i].traffic for i in indices],
                    [jobs[i].seed for i in indices],
                    batched,
                ): indices
                for key, indices, batched in chunks
            }
            for future, indices in futures.items():
                for i, result in zip(indices, future.result()):
                    results[i] = result
    return [NocSweepOutcome(job=job, result=result) for job, result in zip(jobs, results)]


def _shard_groups(
    groups: dict[tuple, list[int]],
    decisions: dict[tuple, bool],
    floors: dict[tuple, int],
    total_jobs: int,
    workers: int,
) -> list[tuple[tuple, list[int], bool]]:
    """Split oversized groups into worker-sized chunks of one group each.

    The cap targets :data:`_CHUNKS_PER_WORKER` chunks per worker across the
    whole sweep, so a single huge group spreads over the pool instead of
    serializing on one worker — and no single task pickles the entire grid.
    Batched groups are never split below their ``floors[key]`` (the smallest
    size the cost model still projects a batched win at), and a sub-floor
    tail chunk is re-dispatched scalar rather than inheriting the full
    group's decision.  Chunking preserves results exactly: the kernel is
    cycle-exact per job, so a group's jobs can batch in any partition.
    """
    cap = max(total_jobs // (workers * _CHUNKS_PER_WORKER), 1)
    chunks: list[tuple[tuple, list[int], bool]] = []
    for key, indices in groups.items():
        batched = decisions[key]
        size_cap = max(cap, floors[key]) if batched else cap
        if len(indices) <= size_cap:
            chunks.append((key, indices, batched))
            continue
        n_chunks = -(-len(indices) // size_cap)
        size = -(-len(indices) // n_chunks)
        for lo in range(0, len(indices), size):
            chunk = indices[lo : lo + size]
            chunks.append((key, chunk, batched and len(chunk) >= floors[key]))
    return chunks


def _run_group(
    topology, tables, config, max_cycles, traffics, seeds, batched: bool
) -> list[SimulationResult]:
    """Run one (graph, configuration) group on the engine dispatch picked.

    Engines are constructed seed-independently (the kernel takes no seed at
    all; the scalar engine gets ``seed=0`` and per-job seeds at ``run`` only),
    so reuse across same-group jobs with different seeds is exact.
    """
    if batched and len(traffics) >= MIN_BATCH:
        kernel = BatchedNocKernel(
            topology, config, routing_tables=tables, max_cycles=max_cycles
        )
        return kernel.run(traffics, seeds)
    engine = BatchNocSimulator(
        topology, config, routing_tables=tables, seed=0, max_cycles=max_cycles
    )
    return [engine.run(traffic, seed=seed) for traffic, seed in zip(traffics, seeds)]


#: Per-worker-process graph cache: topologies and routing tables are built
#: once per (family, parallelism, degree) in each worker, then shared across
#: every chunk that worker executes.
_WORKER_GRAPHS: dict = {}


def _process_chunk(key, traffics, seeds, batched: bool) -> list[SimulationResult]:
    """Worker entry point: build/cache the graph, then run one group chunk."""
    family, parallelism, degree, config, max_cycles = key
    graph_key = (family, parallelism, degree)
    if graph_key not in _WORKER_GRAPHS:
        topology = build_topology(family, parallelism, degree)
        _WORKER_GRAPHS[graph_key] = (topology, build_routing_tables(topology))
    topology, tables = _WORKER_GRAPHS[graph_key]
    return _run_group(topology, tables, config, max_cycles, traffics, seeds, batched)

"""NoC sweep scheduler: group jobs, batch them, optionally shard across processes.

PR 3's sweep driver walked jobs strictly sequentially through one scalar
engine per (graph, configuration).  This module replaces it with a
*scheduler*:

1. jobs are **grouped** by ``(family, parallelism, degree, configuration,
   max_cycles)`` — everything the batched kernel shares across a group;
2. each group is dispatched to the job-batched cycle kernel
   (:class:`~repro.noc.engine_batch.BatchedNocKernel`), which advances all of
   the group's jobs one cycle per vectorized step; groups too small to batch
   (or configurations the job axis cannot express, e.g. bounded-capacity
   backpressure) run through the scalar engine instead;
3. with ``parallel="process"`` the groups are sharded across a
   :class:`concurrent.futures.ProcessPoolExecutor`; each worker process
   builds (and caches) topologies and routing tables once, so graph
   construction is paid per worker, not per job.

Results are returned as :class:`NocSweepOutcome` records that carry the
originating :class:`NocSweepJob`, so callers match results to jobs by
identity instead of relying on input ordering (the list still preserves
submission order for convenience).

Engine reuse is explicitly **seed-independent**: engines and kernels are
constructed once per group without any job's seed, and seeds are passed to
``run`` only — two jobs differing only in seed always share one engine and
still reproduce exactly what two freshly seeded engines would.
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from typing import Iterable

from repro.errors import ConfigurationError
from repro.noc.config import NocConfiguration
from repro.noc.engine import BatchNocSimulator
from repro.noc.engine_batch import BatchedNocKernel
from repro.noc.results import SimulationResult
from repro.noc.routing import build_routing_tables
from repro.noc.topologies import build_topology
from repro.noc.traffic import TrafficPattern

__all__ = ["NocSweepJob", "NocSweepOutcome", "run_noc_sweep"]


@dataclass(frozen=True)
class NocSweepJob:
    """One point of a NoC sweep: a topology spec, a configuration and traffic.

    ``family``/``parallelism``/``degree`` describe the topology so the sweep
    scheduler can share one built topology (and its routing tables) across
    every job that uses the same graph, and batch every job that also shares
    the configuration.
    """

    family: str
    parallelism: int
    degree: int | None
    config: NocConfiguration
    traffic: TrafficPattern
    seed: int = 0
    max_cycles: int = 200_000


@dataclass(frozen=True)
class NocSweepOutcome:
    """One sweep result annotated with the job that produced it."""

    job: NocSweepJob
    result: SimulationResult


#: Smallest group size worth stacking on the kernel's job axis; below this the
#: scalar engine is dispatched directly (no dense batch state to build).
MIN_BATCH = 2


def run_noc_sweep(
    jobs: Iterable[NocSweepJob],
    topology_cache: dict | None = None,
    parallel: str | None = None,
    max_workers: int | None = None,
    min_batch: int = MIN_BATCH,
) -> list[NocSweepOutcome]:
    """Run many sweep points through grouped, batched engines.

    Parameters
    ----------
    jobs:
        The sweep points.  Jobs sharing ``(family, parallelism, degree,
        config, max_cycles)`` form one group and advance in lockstep through
        the batched kernel; jobs with different graphs or configurations fall
        back to separate grouped batches.
    topology_cache:
        Optional dict mapping ``(family, parallelism, degree)`` to
        ``(topology, routing_tables)``; pass one to share built graphs across
        several sweeps.  Used (and populated) by the serial path only — worker
        processes keep their own per-process caches.
    parallel:
        ``None`` (serial, default) or ``"process"`` to shard groups across a
        process pool.  Both paths produce bit-identical outcomes.
    max_workers:
        Worker count for ``parallel="process"`` (default: executor default).
    min_batch:
        Smallest group size dispatched to the job-batched kernel; smaller
        groups run the scalar engine.  The default batches every group of two
        or more; raise it on hosts where small batches do not pay off (see
        ``docs/noc-engine.md``, "when does batching win").

    Returns
    -------
    list[NocSweepOutcome]
        One outcome per job, in submission order, each carrying its job.
    """
    jobs = list(jobs)
    if parallel not in (None, "process"):
        raise ConfigurationError(
            f"parallel must be None or 'process', got {parallel!r}"
        )
    # Group jobs by everything the batched kernel shares.
    groups: dict[tuple, list[int]] = {}
    for index, job in enumerate(jobs):
        key = (job.family, job.parallelism, job.degree, job.config, job.max_cycles)
        groups.setdefault(key, []).append(index)

    results: list[SimulationResult | None] = [None] * len(jobs)
    if parallel is None:
        cache: dict = topology_cache if topology_cache is not None else {}
        for key, indices in groups.items():
            family, parallelism, degree, config, max_cycles = key
            graph_key = (family, parallelism, degree)
            if graph_key not in cache:
                topology = build_topology(family, parallelism, degree)
                cache[graph_key] = (topology, build_routing_tables(topology))
            topology, tables = cache[graph_key]
            group_results = _run_group(
                topology, tables, config, max_cycles,
                [jobs[i].traffic for i in indices],
                [jobs[i].seed for i in indices],
                min_batch,
            )
            for i, result in zip(indices, group_results):
                results[i] = result
    else:
        with ProcessPoolExecutor(max_workers=max_workers) as pool:
            futures = {
                pool.submit(
                    _process_group,
                    key,
                    [jobs[i].traffic for i in indices],
                    [jobs[i].seed for i in indices],
                    min_batch,
                ): indices
                for key, indices in groups.items()
            }
            for future, indices in futures.items():
                for i, result in zip(indices, future.result()):
                    results[i] = result
    return [NocSweepOutcome(job=job, result=result) for job, result in zip(jobs, results)]


def _run_group(
    topology, tables, config, max_cycles, traffics, seeds, min_batch=MIN_BATCH
) -> list[SimulationResult]:
    """Run one (graph, configuration) group, batched when it pays off.

    Engines are constructed seed-independently (the kernel takes no seed at
    all; the scalar engine gets ``seed=0`` and per-job seeds at ``run`` only),
    so reuse across same-group jobs with different seeds is exact.
    """
    if len(traffics) >= min_batch:
        kernel = BatchedNocKernel(
            topology, config, routing_tables=tables, max_cycles=max_cycles
        )
        return kernel.run(traffics, seeds)
    engine = BatchNocSimulator(
        topology, config, routing_tables=tables, seed=0, max_cycles=max_cycles
    )
    return [engine.run(traffic, seed=seed) for traffic, seed in zip(traffics, seeds)]


#: Per-worker-process graph cache: topologies and routing tables are built
#: once per (family, parallelism, degree) in each worker, then shared across
#: every group that worker executes.
_WORKER_GRAPHS: dict = {}


def _process_group(key, traffics, seeds, min_batch=MIN_BATCH) -> list[SimulationResult]:
    """Worker entry point: build/cache the graph, then run the group."""
    family, parallelism, degree, config, max_cycles = key
    graph_key = (family, parallelism, degree)
    if graph_key not in _WORKER_GRAPHS:
        topology = build_topology(family, parallelism, degree)
        _WORKER_GRAPHS[graph_key] = (topology, build_routing_tables(topology))
    topology, tables = _WORKER_GRAPHS[graph_key]
    return _run_group(topology, tables, config, max_cycles, traffics, seeds, min_batch)

"""Cycle-accurate simulation of the message-passing phase.

Two implementations share one contract:

* :class:`ReferenceNocSimulator` — the original per-object simulator that
  walks Python :class:`~repro.noc.node.RouterNode` / ``MessageFifo`` /
  ``Message`` graphs one cycle at a time.  It is kept as the executable
  specification: slow but transparently close to the SystemC "Turbo NoC"
  tool the paper relies on.
* :class:`~repro.noc.engine.BatchNocSimulator` — the struct-of-arrays cycle
  engine, pinned cycle-exact against the reference by
  ``tests/test_noc_engine.py``.

:class:`NocSimulator` is the public entry point: a thin facade that keeps the
historical constructor and delegates to the engine at sweep size 1.  Per
cycle, either implementation performs:

1. link arrivals scheduled on the previous cycle are pushed into the
   destination node's input FIFOs;
2. every node performs one crossbar pass — each input FIFO may forward its
   head message to one output port (network link or local memory port),
   subject to one-message-per-output-port arbitration, the configured serving
   policy (RR / FL), path choice (SSP / ASP-FT) and collision management
   (DCM / SCM);
3. every PE injects new messages at rate ``R`` into its injection FIFO
   (local messages bypass the network when ``RL = 0``).

The number of cycles needed to drain all traffic is ``ncycles`` of paper
eq. (12); the maximum FIFO occupancies size the hardware FIFOs and feed the
area model.
"""

from __future__ import annotations

import random

from repro.errors import SimulationError
from repro.noc.config import CollisionPolicy, NocConfiguration
from repro.noc.engine import BatchNocSimulator
from repro.noc.message import Message, MessageStatistics
from repro.noc.node import RouterNode
from repro.noc.results import SimulationResult
from repro.noc.routing import RoutingTables, build_routing_tables
from repro.noc.topologies import Topology
from repro.noc.traffic import TrafficPattern

__all__ = ["SimulationResult", "NocSimulator", "ReferenceNocSimulator"]


class NocSimulator:
    """Cycle-accurate simulator for one (topology, configuration) pair.

    Thin facade over the struct-of-arrays engine
    (:class:`~repro.noc.engine.BatchNocSimulator`) at sweep size 1; results
    are cycle-exact with :class:`ReferenceNocSimulator`.

    Parameters
    ----------
    topology:
        The NoC topology.
    config:
        Simulation parameters (routing algorithm, R, RL, DCM/SCM, FIFO size).
    routing_tables:
        Optional precomputed tables (recomputed from the topology if omitted).
    seed:
        Seed for the SCM deflection randomness.
    max_cycles:
        Hard safety bound on the simulated cycle count.
    """

    def __init__(
        self,
        topology: Topology,
        config: NocConfiguration,
        routing_tables: RoutingTables | None = None,
        seed: int = 0,
        max_cycles: int = 200_000,
    ):
        self._engine = BatchNocSimulator(
            topology,
            config,
            routing_tables=routing_tables,
            seed=seed,
            max_cycles=max_cycles,
        )
        self.topology = topology
        self.config = config
        self.tables = self._engine.tables
        self.seed = seed
        self.max_cycles = max_cycles

    def run(self, traffic: TrafficPattern) -> SimulationResult:
        """Simulate one message-passing phase and return its measurements."""
        return self._engine.run(traffic)


class ReferenceNocSimulator:
    """Per-object reference simulator (the executable specification).

    Same constructor and :meth:`run` contract as :class:`NocSimulator`; the
    differential harness in ``tests/test_noc_engine.py`` pins the engine
    against this implementation cycle-exactly.
    """

    def __init__(
        self,
        topology: Topology,
        config: NocConfiguration,
        routing_tables: RoutingTables | None = None,
        seed: int = 0,
        max_cycles: int = 200_000,
    ):
        if max_cycles <= 0:
            raise SimulationError(f"max_cycles must be positive, got {max_cycles}")
        self.topology = topology
        self.config = config
        self.tables = (
            routing_tables if routing_tables is not None else build_routing_tables(topology)
        )
        if self.tables.topology is not topology:
            raise SimulationError("routing tables were built for a different topology")
        self.seed = seed
        self.max_cycles = max_cycles

    # ------------------------------------------------------------------ #
    # Main entry point
    # ------------------------------------------------------------------ #
    def run(self, traffic: TrafficPattern) -> SimulationResult:
        """Simulate one message-passing phase and return its measurements."""
        if traffic.n_nodes != self.topology.n_nodes:
            raise SimulationError(
                f"traffic references {traffic.n_nodes} nodes but the topology has "
                f"{self.topology.n_nodes}"
            )
        # One shared deflection stream for all nodes, drawn in node/serving
        # order.  random.Random is used (rather than a NumPy generator)
        # because its single-value randrange draw is several times cheaper
        # and the stream is equally deterministic per seed.
        rng = random.Random(self.seed)
        nodes = [
            RouterNode(
                node_id=node,
                out_degree=self.topology.out_degree(node),
                in_degree=self.topology.in_degree(node),
                config=self.config,
                tables=self.tables,
                rng=rng,
            )
            for node in range(self.topology.n_nodes)
        ]
        # Map each arc index to (destination node, input-port index at destination).
        arc_to_input: dict[int, tuple[int, int]] = {}
        for node in range(self.topology.n_nodes):
            for input_port, (arc_index, _) in enumerate(self.topology.in_arcs(node)):
                arc_to_input[arc_index] = (node, input_port)
        # Per node: output port index -> (neighbor node, neighbor input port).
        out_port_map: list[list[tuple[int, int]]] = []
        for node in range(self.topology.n_nodes):
            mapping = []
            for arc_index, _ in self.topology.out_arcs(node):
                mapping.append(arc_to_input[arc_index])
            out_port_map.append(mapping)

        stats = MessageStatistics()
        injection_pointer = [0] * traffic.n_nodes
        injection_credit = [0.0] * traffic.n_nodes
        next_message_id = 0
        total_messages = traffic.total_messages
        delivered = 0
        local_bypassed = 0
        total_hops_used = 0
        # Arrivals scheduled for the *next* cycle: list of (node, input_port, message).
        pending_arrivals: list[tuple[int, int, Message]] = []

        cycle = 0
        while delivered < total_messages:
            if cycle > self.max_cycles:
                raise SimulationError(
                    f"simulation exceeded {self.max_cycles} cycles with "
                    f"{total_messages - delivered} messages still in flight"
                )
            # 1. Apply link arrivals scheduled on the previous cycle.
            for node_id, input_port, message in pending_arrivals:
                nodes[node_id].input_fifos[input_port].push(message)
            pending_arrivals = []

            # 2. Crossbar pass on every node.
            scheduled_per_fifo: dict[tuple[int, int], int] = {}
            for node in nodes:
                delivered_now, hops_now = self._crossbar_pass(
                    node, nodes, out_port_map, pending_arrivals, scheduled_per_fifo, cycle, stats
                )
                delivered += delivered_now
                total_hops_used += hops_now

            # 3. PE injection at rate R.  With RL = 0, messages addressed to the
            # local PE never touch the network interface: they are written to
            # the PE's internal queue as soon as they are produced and do not
            # consume the per-cycle injection budget.
            for node in nodes:
                node_id = node.node_id
                node_traffic = traffic.per_node[node_id]
                if injection_pointer[node_id] >= node_traffic.n_messages:
                    continue
                injection_credit[node_id] += self.config.injection_rate
                while injection_pointer[node_id] < node_traffic.n_messages:
                    idx = injection_pointer[node_id]
                    destination = node_traffic.destinations[idx]
                    location = node_traffic.memory_locations[idx]
                    is_bypass = destination == node_id and not self.config.route_local
                    if not is_bypass and (
                        injection_credit[node_id] < 1.0 or node.injection_fifo.is_full()
                    ):
                        break
                    message = Message(
                        identifier=next_message_id,
                        source=node_id,
                        destination=destination,
                        memory_location=location,
                        injection_cycle=cycle,
                    )
                    next_message_id += 1
                    injection_pointer[node_id] += 1
                    if is_bypass:
                        message.delivery_cycle = cycle
                        delivered += 1
                        local_bypassed += 1
                        stats.record(message)
                    else:
                        injection_credit[node_id] -= 1.0
                        node.injection_fifo.push(message)
            cycle += 1

        per_node_max = [node.max_input_occupancy() for node in nodes]
        max_injection = max(node.max_injection_occupancy() for node in nodes)
        link_utilization = 0.0
        if cycle > 0 and self.topology.n_arcs > 0:
            link_utilization = total_hops_used / (self.topology.n_arcs * cycle)
        return SimulationResult(
            ncycles=cycle,
            total_messages=total_messages,
            delivered_messages=delivered,
            local_bypassed=local_bypassed,
            max_fifo_occupancy=max(per_node_max) if per_node_max else 0,
            max_injection_occupancy=max_injection,
            per_node_max_fifo=per_node_max,
            statistics=stats,
            link_utilization=link_utilization,
            config_label=self.config.describe(),
            topology_label=self.topology.name,
            traffic_label=traffic.label,
        )

    # ------------------------------------------------------------------ #
    # One crossbar pass for one node
    # ------------------------------------------------------------------ #
    def _crossbar_pass(
        self,
        node: RouterNode,
        nodes: list[RouterNode],
        out_port_map: list[list[tuple[int, int]]],
        pending_arrivals: list[tuple[int, int, Message]],
        scheduled_per_fifo: dict[tuple[int, int], int],
        cycle: int,
        stats: MessageStatistics,
    ) -> tuple[int, int]:
        """Route at most one message per input FIFO and per output port; return
        (messages delivered locally, hops consumed)."""
        fifos = node.all_input_fifos()
        port_targets = out_port_map[node.node_id]

        def downstream_has_room(output_port: int) -> bool:
            target_node, target_port = port_targets[output_port]
            fifo = nodes[target_node].input_fifos[target_port]
            scheduled = scheduled_per_fifo.get((target_node, target_port), 0)
            return fifo.occupancy + scheduled < fifo.capacity

        free_ports = {
            port for port in range(node.out_degree) if downstream_has_room(port)
        }
        local_port_free = True
        delivered_now = 0
        hops_now = 0

        for input_port in node.serving_order():
            message = fifos[input_port].head()
            if message is None:
                continue
            if message.destination == node.node_id:
                if local_port_free:
                    fifos[input_port].pop()
                    message.delivery_cycle = cycle
                    node.delivered_local += 1
                    delivered_now += 1
                    stats.record(message)
                    local_port_free = False
                # A locally destined message that loses the memory port simply
                # waits; deflecting it away from its destination would be wasteful.
                continue
            allowed = node.desired_output_ports(message)
            output_port = node.choose_output_port(allowed, free_ports)
            deflected = False
            if output_port is None and self.config.collision_policy is CollisionPolicy.SCM:
                output_port = node.choose_deflection_port(free_ports)
                deflected = output_port is not None
            if output_port is None:
                continue  # DCM (or no free port at all): the message waits.
            fifos[input_port].pop()
            free_ports.discard(output_port)
            node.record_send(output_port)
            target_node, target_port = port_targets[output_port]
            scheduled_per_fifo[(target_node, target_port)] = (
                scheduled_per_fifo.get((target_node, target_port), 0) + 1
            )
            message.hops += 1
            hops_now += 1
            if deflected:
                message.misroutes += 1
            pending_arrivals.append((target_node, target_port, message))
        return delivered_now, hops_now

"""Job-batched NoC cycle kernel: J independent simulations per vectorized step.

PR 3's struct-of-arrays engine (:class:`repro.noc.engine.BatchNocSimulator`)
made one sweep point fast, but a sweep still pays the Python interpreter once
per (cycle, node, job).  :class:`BatchedNocKernel` adds the same *job axis*
that the batched LDPC / turbo decoders put on their frame loops: J independent
jobs sharing one (topology, configuration) stack their struct-of-arrays state
— message columns, FIFO occupancy / head cursors / backing buffers, injection
pointers and credits, per-port sent counters — into ``(J, ...)`` NumPy arrays,
and every cycle advances **all jobs at once** through a handful of array
operations instead of J scalar loops.

Per cycle the kernel performs, vectorized over all ``J x P`` (job, node)
pairs:

1. **link arrivals** — occupancy increments and high-water marks for every
   message sent on the previous cycle (one scatter, one max);
2. **serving order** — FL keys ``(-occupancy, port)`` or RR rotation
   positions sorted per (job, node) with one ``argsort`` over the stacked key
   matrix (the ``np.lexsort``-style (job, node, priority) ordering), followed
   by gathers of every candidate's head message, destination and SSP output
   port from the dense routing matrices;
3. **crossbar waves** — serving position w of *every* node of *every* job is
   arbitrated simultaneously: local deliveries take the memory port, SSP/ASP
   output-port grants clear bits of a per-(job, node) free-port mask, and
   losers wait (DCM) or request a deflection (SCM);
4. **PE injection** — credits, bypass runs and injection-FIFO pushes as
   ``(J, P)`` array updates.

The one inherently scalar piece is the SCM deflection draw: its randomness is
*defined* as the per-job ``random.Random`` stream consumed in (cycle, node,
serving-position) order (see :class:`repro.utils.rng.DeflectionStreams`), and
a draw changes how the rest of that node's pass unfolds.  Nodes that need a
draw are therefore *suspended* at their first drawing serving position, masked
out of the remaining waves, and replayed after the wave loop in exact (job,
node) stream order by a pure-Python resume loop over pre-gathered candidate
lists.  DCM groups never draw and run the vector path alone; under SCM at
Table-I load a quarter of the node passes replay, which bounds the batching
win there (see ``docs/noc-engine.md``, "when does batching win").

Jobs that finish early are masked out (their FIFOs are empty, their serving
orders vanish, and their injection pointers are exhausted — the per-job
``ncycles`` is latched the cycle they drain).  Configurations the job axis
cannot express without cross-node sequencing — bounded FIFO capacities, where
backpressure makes node n's pass observe node n-1's pops within the same
cycle — fall back to the scalar engine per job, so :meth:`BatchedNocKernel.run`
is total over the configuration space.

The kernel is pinned *cycle-exact, per job*, against
:class:`~repro.noc.engine.BatchNocSimulator` (which is itself pinned against
:class:`~repro.noc.simulator.ReferenceNocSimulator`) by
``tests/test_noc_batch_kernel.py``: same ncycles, delivered counts, per-node
FIFO high-water marks, hop/latency totals and deflection decisions for every
(topology, configuration, traffic, seed).
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.errors import SimulationError
from repro.noc.config import CollisionPolicy, NocConfiguration, RoutingAlgorithm
from repro.noc.engine import BatchNocSimulator, MessageArrays
from repro.noc.message import MessageStatistics
from repro.noc.results import SimulationResult
from repro.noc.routing import RoutingTables, build_routing_tables
from repro.noc.topologies import Topology
from repro.noc.traffic import TrafficPattern
from repro.utils.rng import DeflectionStreams

__all__ = ["BatchedNocKernel"]


class _BatchedStatic:
    """Dense per-(topology, config) arrays shared by every batched run."""

    def __init__(self, topology: Topology, config: NocConfiguration, tables: RoutingTables):
        n = topology.n_nodes
        self.n_nodes = n
        self.n_arcs = topology.n_arcs
        in_deg = topology.in_degrees.astype(np.int64)
        out_deg = topology.out_degrees.astype(np.int64)
        self.out_deg = out_deg.tolist()

        # Flat FIFO ids exactly as the scalar engine lays them out: per node
        # its network input ports then its injection port.
        fifo_base = np.zeros(n, dtype=np.int64)
        np.cumsum(in_deg[:-1] + 1, out=fifo_base[1:])
        self.fifo_base = fifo_base
        self.n_fifos = int((in_deg + 1).sum())
        self.inject_fid = (fifo_base + in_deg).astype(np.int64)
        self.fcount = (in_deg + 1).astype(np.int64)  # serving slots per node
        self.fmax = int(self.fcount.max())

        # (node, slot) -> fid, padded with the dummy fifo id ``n_fifos`` (one
        # extra all-zero slot per job absorbs gathers/scatters at padding).
        fid_mat = np.full((n, self.fmax), self.n_fifos, dtype=np.int64)
        for node in range(n):
            fc = int(self.fcount[node])
            fid_mat[node, :fc] = np.arange(fifo_base[node], fifo_base[node] + fc)
        self.fid_mat = fid_mat
        # fid -> owning node (dummy slot maps to node 0; its head attributes
        # are never read because the dummy fifo stays empty).
        fifo_node = np.zeros(self.n_fifos + 1, dtype=np.int32)
        for node in range(n):
            fc = int(self.fcount[node])
            fifo_node[fifo_base[node] : fifo_base[node] + fc] = node
        self.fifo_node = fifo_node

        # (node, out port) -> downstream input-fifo id, dummy padded.
        self.max_out = max(int(out_deg.max()), 1)
        dest_node = topology.out_neighbor_matrix
        dest_port = topology.dest_input_port_matrix
        tgt = np.full((n, self.max_out), self.n_fifos, dtype=np.int64)
        for node in range(n):
            for port in range(int(out_deg[node])):
                tgt[node, port] = fifo_base[int(dest_node[node, port])] + int(
                    dest_port[node, port]
                )
        self.tgt_flat = tgt.reshape(-1).astype(np.int32)
        self.tgt_list: list[list[int]] = tgt.tolist()

        # Dense routing lookups.  The SSP matrix diagonal (-1: no route to
        # self) is lowered to port 0 so vectorized shifts stay defined; local
        # candidates never read it (they contend for the memory port instead).
        sp = tables.next_port_matrix.reshape(-1).astype(np.int32)
        self.sp_flat = np.where(sp < 0, 0, sp).astype(np.int32)
        self.ap_rows = tables.next_ports  # per (node, dest) port tuples (resume path)
        ap_pad = tables.all_ports_matrix  # (n, n, K), -1 padded
        self.ap_k = ap_pad.shape[2]
        # Padding lowered to port 0 so bit shifts stay valid; the count matrix
        # masks the padded entries out of the argmin.
        self.ap_flat = (
            np.where(ap_pad < 0, 0, ap_pad).reshape(n * n, self.ap_k).astype(np.int32)
        )
        self.ap_cnt_flat = tables.port_count_matrix.reshape(-1).astype(np.int32)

        self.full_mask = ((1 << out_deg) - 1).astype(np.int64)
        self.sp_list: list[list[int]] = tables.next_port_matrix.tolist()

        # Memo: free-port bitmask -> ascending tuple of free port indices (the
        # SCM deflection candidate list of the scalar engines), and the word
        # shift per candidate count (32 - bit_length) for the inlined draws.
        self.deflect_sets: dict[int, tuple[int, ...]] = {}
        self.shift_tab = [32] + [32 - k.bit_length() for k in range(1, self.max_out + 1)]
        self.rr_mode = config.routing_algorithm is RoutingAlgorithm.SSP_RR
        self.asp_mode = config.routing_algorithm.uses_all_paths
        self.scm_mode = config.collision_policy is CollisionPolicy.SCM
        self.config = config
        self.topology = topology
        self.tables = tables


class BatchedNocKernel:
    """Cycle engine advancing J jobs of one (topology, configuration) in lockstep.

    Construction is **seed-independent**: per-job seeds (the SCM deflection
    randomness) are passed to :meth:`run` only, so a sweep scheduler can reuse
    one kernel — and its precomputed dense wiring/routing state — across any
    jobs that share the graph and configuration.

    Parameters
    ----------
    topology:
        The NoC topology shared by every job of the batch.
    config:
        Simulation parameters shared by every job of the batch.
    routing_tables:
        Optional precomputed tables (recomputed from the topology if omitted).
    max_cycles:
        Hard safety bound on the simulated cycle count, applied per job.
    """

    def __init__(
        self,
        topology: Topology,
        config: NocConfiguration,
        routing_tables: RoutingTables | None = None,
        max_cycles: int = 200_000,
    ):
        if max_cycles <= 0:
            raise SimulationError(f"max_cycles must be positive, got {max_cycles}")
        self.topology = topology
        self.config = config
        self.tables = (
            routing_tables if routing_tables is not None else build_routing_tables(topology)
        )
        if self.tables.topology is not topology:
            raise SimulationError("routing tables were built for a different topology")
        self.max_cycles = max_cycles
        # Both halves are built lazily: a kernel that only ever serves
        # scalar-fallback groups never pays for the dense batch state, and one
        # that only batches never builds the scalar engine's static state.
        self._static: _BatchedStatic | None = None
        self._scalar: BatchNocSimulator | None = None

    # ------------------------------------------------------------------ #
    # Public entry point
    # ------------------------------------------------------------------ #
    def run(
        self,
        traffics: Sequence[TrafficPattern],
        seeds: Sequence[int] | None = None,
    ) -> list[SimulationResult]:
        """Simulate one message-passing phase per job and return all measurements.

        ``traffics[j]`` and ``seeds[j]`` define job ``j``; results are returned
        in job order and are cycle-exact with ``BatchNocSimulator.run`` of each
        job in isolation.
        """
        traffics = list(traffics)
        if seeds is None:
            seeds = [0] * len(traffics)
        seeds = [int(seed) for seed in seeds]
        if len(seeds) != len(traffics):
            raise SimulationError(
                f"got {len(traffics)} traffic patterns but {len(seeds)} seeds"
            )
        if not traffics:
            return []
        for traffic in traffics:
            if traffic.n_nodes != self.topology.n_nodes:
                raise SimulationError(
                    f"traffic references {traffic.n_nodes} nodes but the topology has "
                    f"{self.topology.n_nodes}"
                )
        messages = [MessageArrays.from_traffic(traffic) for traffic in traffics]
        max_total = max(arrays.total for arrays in messages)
        # The job axis cannot express bounded-capacity backpressure (node n's
        # free-port view depends on node n-1's pops within the same cycle), and
        # a batch of one gains nothing from stacking: both run scalar.
        if len(traffics) == 1 or self.config.fifo_capacity <= max_total:
            if self._scalar is None:
                # Seed-independent: per-job seeds are passed to run() only.
                self._scalar = BatchNocSimulator(
                    self.topology, self.config, routing_tables=self.tables,
                    seed=0, max_cycles=self.max_cycles,
                )
            return [
                self._scalar.run(traffic, seed=seed)
                for traffic, seed in zip(traffics, seeds)
            ]
        if self._static is None:
            self._static = _BatchedStatic(self.topology, self.config, self.tables)
        return _run_batched(self._static, messages, traffics, seeds, self.max_cycles)


# --------------------------------------------------------------------------- #
# Batched engine internals
# --------------------------------------------------------------------------- #
def _run_batched(
    st: _BatchedStatic,
    messages: list[MessageArrays],
    traffics: list[TrafficPattern],
    seeds: list[int],
    max_cycles: int,
) -> list[SimulationResult]:
    """Advance the stacked (J, ...) state cycle by cycle until every job drains."""
    n = st.n_nodes
    J = len(messages)
    Jn = J * n
    NFp = st.n_fifos + 1  # one dummy fifo slot per job absorbs padded scatters
    M = max(max(arrays.total for arrays in messages), 1)
    fmax = st.fmax
    rr_mode, asp_mode, scm_mode = st.rr_mode, st.asp_mode, st.scm_mode
    route_local = st.config.route_local
    rate = st.config.injection_rate
    # Serve-order key packing: FL keys are ``rank - (occ << occ_shift)`` and
    # RR keys penalize empty slots by ``empty_penalty``; both require the
    # serving-slot rank to fit below 1 << occ_shift, for any in-degree.
    occ_shift = fmax.bit_length()
    empty_penalty = 1 << occ_shift

    totals = np.array([arrays.total for arrays in messages], dtype=np.int64)

    # ---- flat per-message columns, padded to (J, M) ------------------- #
    # Everything the hot loop touches is int32: the largest index in play is
    # the flat buffer offset J * NFp * L, far below 2**31 at paper scales (the
    # grow path re-checks), and halving the element width roughly halves the
    # memory traffic of the per-cycle gathers.
    dest_flat = np.zeros(J * M, dtype=np.int32)
    bypass = np.zeros((J, M), dtype=bool)
    for j, arrays in enumerate(messages):
        dest_flat[j * M : j * M + arrays.total] = arrays.dest
        if not route_local and arrays.total:
            bypass[j, : arrays.total] = arrays.dest == arrays.source
    inj_cycle_flat = np.zeros(J * M, dtype=np.int32)
    del_cycle_flat = np.full(J * M, -1, dtype=np.int32)
    mis_flat = np.zeros(J * M, dtype=np.int8)
    int32_max = np.iinfo(np.int32).max

    # next_nonbypass[j, p]: first index >= p whose message enters the network
    # (suffix minimum over non-bypass positions; padding is "non-bypass" so
    # runs clamp at each node's end pointer below).
    has_bypass = bool(bypass.any())
    if has_bypass:
        pos = np.arange(M + 1, dtype=np.int32)
        idx = np.where(
            np.concatenate([bypass, np.zeros((J, 1), dtype=bool)], axis=1),
            np.int32(M + 1),
            pos,
        )
        nnb = np.minimum.accumulate(idx[:, ::-1], axis=1)[:, ::-1]
    else:
        nnb = None

    # ---- FIFO state: (J * NFp,) columns + growable backing buffers ----- #
    occ = np.zeros(J * NFp, dtype=np.int32)
    heads = np.zeros(J * NFp, dtype=np.int32)
    lens = np.zeros(J * NFp, dtype=np.int32)
    maxocc = np.zeros(J * NFp, dtype=np.int32)
    # Per-fifo backing capacity: most fifos see far fewer than M messages, so
    # the buffer starts small (cache-friendly) and doubles on demand; the
    # worst case (hotspot fifos, SCM deflection loops) still fits after a few
    # geometric grows.
    L = min(M + 4, 128)
    buf = np.zeros(J * NFp * L, dtype=np.int32)

    # Head-of-FIFO attribute caches: the serving pre-pass reads each
    # candidate's message id / locality / SSP port straight from these flat
    # columns instead of chasing buffer -> heads -> dest -> routing-table
    # indirections per slot; only fifos whose head may have changed during a
    # cycle (pops, pushes) are refreshed, and the refresh is idempotent.
    head_mid = np.zeros(J * NFp, dtype=np.int32)
    head_loc = np.zeros(J * NFp, dtype=bool)
    fifo_node = np.tile(st.fifo_node, J)
    fifo_jbm = np.repeat(np.arange(J, dtype=np.int32) * M, NFp)
    if asp_mode:
        head_dest = np.zeros(J * NFp, dtype=np.int32)
    else:
        fifo_spbase = fifo_node * n
        head_q = np.zeros(J * NFp, dtype=np.int32)
        head_bit = np.zeros(J * NFp, dtype=np.int32)

    # ---- per-(job, node) arbitration / injection state ----------------- #
    job_row = np.repeat(np.arange(J, dtype=np.int32), n)  # (Jn,)
    node_row = np.tile(np.arange(n, dtype=np.int32), J)  # (Jn,)
    jbase_nf = job_row * NFp
    jbase_m = job_row * M
    sp_base = node_row * n
    fid_tiled = st.fid_mat[node_row].astype(np.int32)  # (Jn, fmax)
    fid_idx_all = jbase_nf[:, None] + fid_tiled
    rank_tiled = np.broadcast_to(np.arange(fmax, dtype=np.int32), (Jn, fmax))
    rank_ap = np.broadcast_to(np.arange(st.ap_k, dtype=np.int32), (Jn, st.ap_k))
    fcount_row = st.fcount[node_row].astype(np.int32)
    full_row = st.full_mask[node_row].astype(np.int32)
    row_ar = np.arange(Jn, dtype=np.int32)

    free = np.empty(Jn, dtype=np.int32)
    local_free = np.empty(Jn, dtype=bool)
    live = np.ones(Jn, dtype=bool)
    rr_ptr = np.zeros(Jn, dtype=np.int32) if rr_mode else None
    sent = np.zeros(Jn * st.max_out, dtype=np.int32) if asp_mode else None

    inj_ptr = np.empty((J, n), dtype=np.int32)
    inj_end = np.empty((J, n), dtype=np.int32)
    for j, arrays in enumerate(messages):
        inj_ptr[j] = arrays.node_offset[:-1]
        inj_end[j] = arrays.node_offset[1:]
    credit = np.zeros((J, n), dtype=np.float64)
    jj_col = np.arange(J, dtype=np.int32)[:, None]
    jbase_m2 = jj_col * M
    jj_mat = np.broadcast_to(jj_col, (J, n))

    delivered_j = np.zeros(J, dtype=np.int64)
    bypassed_j = np.zeros(J, dtype=np.int64)
    hops_j = np.zeros(J, dtype=np.int64)
    ncycles_j = np.zeros(J, dtype=np.int64)
    active = totals > 0
    draws = DeflectionStreams(seeds)

    # Reusable per-cycle wave-mask buffers (rows [w] are written in wave
    # order; the commit sweep only sees rows zeroed at cycle start).
    deliver_t = np.empty((fmax, Jn), dtype=bool)
    send_t = np.empty((fmax, Jn), dtype=bool)
    qsel_t = np.empty((fmax, Jn), dtype=np.int32) if asp_mode else None

    pend_idx: np.ndarray | None = None  # arrivals scheduled for the next cycle
    injecting = bool(active.any())
    cycle = 0

    while active.any():
        if cycle > max_cycles:
            stuck = np.flatnonzero(active)
            raise SimulationError(
                f"simulation exceeded {max_cycles} cycles with jobs "
                f"{stuck.tolist()} still in flight "
                f"({int((totals - delivered_j)[stuck].sum())} messages)"
            )

        # 1. Link arrivals scheduled on the previous cycle.  At most one
        # message per (job, input fifo) per cycle (an input port terminates a
        # single arc), so the indices are unique and plain fancy ops suffice.
        if pend_idx is not None:
            occ[pend_idx] += 1
            maxocc[pend_idx] = np.maximum(maxocc[pend_idx], occ[pend_idx])
            pend_idx = None
        send_idx_parts: list[np.ndarray] = []
        send_job_parts: list[np.ndarray] = []
        upd_parts: list[np.ndarray] = []  # fifos whose head cache needs refresh

        # 2. Crossbar pass: serving orders for every (job, node), then one
        # vectorized arbitration step per serving position ("wave").  The wave
        # loop only evolves masks (free ports, local port, deliver/send flags);
        # all FIFO pops, delivery stamps and downstream pushes commit in one
        # batch afterwards.
        occ_f = occ[fid_idx_all]  # (Jn, fmax)
        occupied = occ_f > 0
        n_occ = occupied.sum(axis=1)
        wmax = int(n_occ.max())
        if wmax:
            if rr_mode:
                rot = rank_tiled - rr_ptr[:, None]
                key = np.where(rot < 0, rot + fcount_row[:, None], rot)
                key = key + (~occupied) * empty_penalty
            else:
                # FL: longest fifo first, ties by port index; empty and padded
                # slots get non-negative keys and sort after every occupied one.
                key = rank_tiled - (occ_f << occ_shift)
            order = np.argsort(key, axis=1)
            serve_fid = fid_tiled[row_ar[:, None], order]
            idx_all = jbase_nf[:, None] + serve_fid
            idx_t = idx_all.T  # fancy-indexing with the transposed view below
            # yields C-contiguous (fmax, Jn) results: per-wave rows are flat.
            mid_t = head_mid[idx_t]
            isloc_t = head_loc[idx_t]
            if asp_mode:
                dest_t = head_dest[idx_t]
            else:
                q_t = head_q[idx_t]
                bit_t = head_bit[idx_t]

            np.copyto(free, full_row)
            local_free.fill(True)
            deliver_t.fill(False)
            send_t.fill(False)
            susp_rows: list[np.ndarray] = []
            susp_wave: list[int] = []
            susp_any = False

            for w in range(wmax):
                v = n_occ > w
                if susp_any:
                    v &= live
                if not v.any():
                    break
                t1 = v & isloc_t[w]
                deliver = t1 & local_free
                nonloc = v ^ t1
                if asp_mode:
                    ap_idx = sp_base + dest_t[w]
                    ports = st.ap_flat[ap_idx]  # (Jn, K)
                    usable = (rank_ap < st.ap_cnt_flat[ap_idx][:, None]) & (
                        ((free[:, None] >> ports) & 1) > 0
                    )
                    cost = sent[(row_ar[:, None] * st.max_out) + ports]
                    score = np.where(usable, cost * (st.ap_k + 1) + rank_ap, int32_max)
                    best = np.argmin(score, axis=1)
                    has_port = score[row_ar, best] != int32_max
                    q = ports[row_ar, best]
                    qsel_t[w] = q
                    bitw = np.int32(1) << q
                    send = nonloc & has_port
                else:
                    q = q_t[w]
                    bitw = bit_t[w]
                    send = nonloc & ((free & bitw) != 0)
                if scm_mode:
                    need = (nonloc ^ send) & (free != 0)
                    if need.any():
                        # A drawing candidate is non-local with no grantable
                        # port, so it is disjoint from this wave's deliver and
                        # send sets; masking ``live`` only affects later waves.
                        rows = np.flatnonzero(need)
                        live[rows] = False
                        susp_any = True
                        susp_rows.append(rows)
                        susp_wave.append(w)
                free -= bitw * send
                local_free ^= deliver
                deliver_t[w] = deliver
                send_t[w] = send
                if asp_mode:
                    rsw = np.flatnonzero(send)
                    if rsw.size:
                        # Traffic spreading reads the counters within the same
                        # pass, so ASP send tallies commit per wave.
                        sent[rsw * st.max_out + q[rsw]] += 1

            # 2b. Batched commits of everything the waves granted (one nonzero
            # sweep; deliveries and sends are split off its result).
            wp, rp = np.nonzero(deliver_t | send_t)
            if wp.size:
                pidx = idx_all[rp, wp]
                heads[pidx] += 1
                occ[pidx] -= 1
                upd_parts.append(pidx)
            dmask = deliver_t[wp, rp]
            wd, rd = wp[dmask], rp[dmask]
            if wd.size:
                del_cycle_flat[jbase_m[rd] + mid_t[wd, rd]] = cycle
                delivered_j += np.bincount(job_row[rd], minlength=J)
            smask = ~dmask
            ws, rs = wp[smask], rp[smask]
            if ws.size:
                qs = qsel_t[ws, rs] if asp_mode else q_t[ws, rs]
                tf = st.tgt_flat[node_row[rs] * st.max_out + qs]
                sidx = job_row[rs] * NFp + tf
                pos = lens[sidx]
                if int(pos.max()) >= L:
                    buf, L = _grow(buf, J * NFp, L)
                buf[sidx * L + pos] = mid_t[ws, rs]
                lens[sidx] += 1
                send_idx_parts.append(sidx)
                send_job_parts.append(job_row[rs])

            # 2c. Pure-Python resume of draw-needing nodes, in exact per-job
            # (node, serving-position) stream order, with deferred scatters.
            if susp_rows:
                buf, L = _resume_rows(
                    st, susp_rows, susp_wave, n_occ, serve_fid, mid_t,
                    dest_flat, jbase_m, free, local_free, heads, occ, lens,
                    buf, L, NFp, M, J, del_cycle_flat, mis_flat, delivered_j,
                    sent, draws, send_idx_parts, send_job_parts, upd_parts,
                    cycle,
                )
                live[np.concatenate(susp_rows)] = True

            if rr_mode:
                rr_ptr += n_occ > 0
                np.remainder(rr_ptr, fcount_row, out=rr_ptr)

        # 3. PE injection at rate R; bypass runs (RL = 0 local messages) cost
        # neither credit nor FIFO space and deliver immediately.
        if injecting:
            rem = inj_ptr < inj_end
            if rem.any():
                credit += rate * rem
                if has_bypass:
                    nb1 = np.minimum(nnb[jj_mat, inj_ptr], inj_end)
                    nb1 = np.where(rem, nb1, inj_ptr)
                else:
                    nb1 = inj_ptr
                can = rem & (nb1 < inj_end) & (credit >= 1.0)
                ptr2 = nb1 + can
                if has_bypass:
                    nb2 = np.where(
                        can,
                        np.minimum(nnb[jj_mat, ptr2], inj_end),
                        nb1,
                    )
                else:
                    nb2 = ptr2
                credit -= can
                if can.any():
                    jc, nc = np.nonzero(can)
                    slot = nb1[jc, nc]
                    sidx = (jc * NFp + st.inject_fid[nc]).astype(np.int32)
                    pos = lens[sidx]
                    if int(pos.max()) >= L:
                        buf, L = _grow(buf, J * NFp, L)
                    buf[sidx * L + pos] = slot
                    lens[sidx] += 1
                    occ[sidx] += 1
                    maxocc[sidx] = np.maximum(maxocc[sidx], occ[sidx])
                    inj_cycle_flat[jc * M + slot] = cycle
                    upd_parts.append(sidx)
                if has_bypass:
                    c1 = np.where(rem, nb1 - inj_ptr, 0)
                    c2 = nb2 - ptr2
                    n_bypassed = int(c1.sum() + c2.sum())
                    if n_bypassed:
                        starts = np.concatenate(
                            [(jbase_m2 + inj_ptr)[c1 > 0], (jbase_m2 + ptr2)[c2 > 0]]
                        )
                        counts = np.concatenate([c1[c1 > 0], c2[c2 > 0]])
                        ends = np.cumsum(counts)
                        idxs = (
                            np.repeat(starts, counts)
                            + np.arange(n_bypassed, dtype=np.int64)
                            - np.repeat(ends - counts, counts)
                        )
                        inj_cycle_flat[idxs] = cycle
                        del_cycle_flat[idxs] = cycle
                        per_job = (c1 + c2).sum(axis=1)
                        delivered_j += per_job
                        bypassed_j += per_job
                inj_ptr = np.where(rem, nb2, inj_ptr)
            else:
                injecting = False

        # 4. Cycle bookkeeping: merge this cycle's sends into next cycle's
        # arrivals, count hops, refresh the head caches of touched fifos, and
        # latch finished jobs.
        if send_idx_parts:
            pend_idx = (
                np.concatenate(send_idx_parts)
                if len(send_idx_parts) > 1
                else send_idx_parts[0]
            )
            jobs_sent = (
                np.concatenate(send_job_parts)
                if len(send_job_parts) > 1
                else send_job_parts[0]
            )
            hops_j += np.bincount(jobs_sent, minlength=J)
            upd_parts.append(pend_idx)
        if upd_parts:
            ch = np.concatenate(upd_parts) if len(upd_parts) > 1 else upd_parts[0]
            hm = buf[ch * L + np.minimum(heads[ch], L - 1)]
            head_mid[ch] = hm
            hd = dest_flat[fifo_jbm[ch] + hm]
            head_loc[ch] = hd == fifo_node[ch]
            if asp_mode:
                head_dest[ch] = hd
            else:
                hq = st.sp_flat[fifo_spbase[ch] + hd]
                head_q[ch] = hq
                head_bit[ch] = np.int32(1) << hq
        cycle += 1
        finished = active & (delivered_j >= totals)
        if finished.any():
            ncycles_j[finished] = cycle
            active &= ~finished

    return _collect_batched(
        st, messages, traffics, J, NFp, M, maxocc, ncycles_j, delivered_j,
        bypassed_j, hops_j, inj_cycle_flat, del_cycle_flat, mis_flat,
    )


def _grow(buf: np.ndarray, rows: int, L: int) -> tuple[np.ndarray, int]:
    """Double the per-fifo backing-buffer capacity (deflection loops only)."""
    new_l = L * 2
    if rows * new_l >= 2**31:
        raise SimulationError(
            "batched FIFO backing buffers outgrew the int32 index space"
        )
    new = np.zeros(rows * new_l, dtype=buf.dtype)
    new.reshape(rows, new_l)[:, :L] = buf.reshape(rows, L)
    return new, new_l


def _resume_rows(
    st, susp_rows, susp_wave, n_occ, serve_fid, mid_t, dest_flat, jbase_m,
    free_arr, local_free_arr, heads, occ, lens, buf, L, NFp, M, J,
    del_cycle_flat, mis_flat, delivered_j, sent, draws,
    send_idx_parts, send_job_parts, upd_parts, cycle,
):
    """Replay every suspended (job, node) pass from its first drawing position.

    A direct port of the scalar engine's serve loop over plain Python lists:
    the per-candidate values were already gathered by the wave pre-pass, so
    the loop touches no NumPy state until its pops / deliveries / pushes are
    scattered back in one batch at the end.  Rows are replayed in ascending
    flat (job, node) order — exactly the per-job stream order in which the
    scalar engines consume deflection draws.
    """
    n = st.n_nodes
    rows = susp_rows[0] if len(susp_rows) == 1 else np.concatenate(susp_rows)
    w0s = np.repeat(
        np.array(susp_wave, dtype=np.int64), [len(r) for r in susp_rows]
    )
    order = np.argsort(rows)  # rows are unique: one suspension per pass
    rows = rows[order]
    sub_l = rows.tolist()
    w0_l = w0s[order].tolist()
    sf_l = serve_fid[rows].tolist()
    mids = mid_t[:, rows]
    mid_l = mids.T.tolist()
    dest_l = dest_flat[jbase_m[rows][None, :] + mids].T.tolist()
    free_l = free_arr[rows].tolist()
    lf_l = local_free_arr[rows].tolist()
    nocc_l = n_occ[rows].tolist()
    asp, scm = st.asp_mode, st.scm_mode
    if asp:
        sent2 = sent.reshape(-1, st.max_out)
        sent_l = sent2[rows].tolist()
    sp_list, tgt_list = st.sp_list, st.tgt_list
    deflect_sets = st.deflect_sets
    # Inlined DeflectionStreams state: per-job word lists and cursors (the
    # counters), walked with plain integer ops in the hot loop below.
    all_words = draws._words
    all_cursors = draws._cursors
    draw_counts = draws.draw_counts
    shift_tab = st.shift_tab
    pops: list[int] = []
    dels: list[int] = []
    dcounts = [0] * J
    mis: list[int] = []
    s_sidx: list[int] = []
    s_mid: list[int] = []
    s_job: list[int] = []

    for i, row in enumerate(sub_l):
        j, node = divmod(row, n)
        free = free_l[i]
        lf = lf_l[i]
        sf, ml, dl = sf_l[i], mid_l[i], dest_l[i]
        jb_m = j * M
        jb_nf = j * NFp
        sp_row = sp_list[node]
        tgt_row = tgt_list[node]
        if asp:
            ap_row = st.ap_rows[node]
            se = sent_l[i]
        out_deg = st.out_deg[node]
        words = all_words[j]
        cursor = all_cursors[j]
        for w in range(w0_l[i], nocc_l[i]):
            mid = ml[w]
            dest = dl[w]
            if dest == node:
                if lf:
                    pops.append(jb_nf + sf[w])
                    dels.append(jb_m + mid)
                    dcounts[j] += 1
                    lf = False
                continue
            out = -1
            if asp:
                best_count = -1
                for q in ap_row[dest]:
                    if free >> q & 1:
                        c = se[q]
                        if best_count < 0 or c < best_count:
                            best_count = c
                            out = q
            else:
                q = sp_row[dest]
                if free >> q & 1:
                    out = q
            if out < 0:
                if not scm or not free:
                    continue
                candidates = deflect_sets.get(free)
                if candidates is None:
                    candidates = tuple(q for q in range(out_deg) if free >> q & 1)
                    deflect_sets[free] = candidates
                # Inlined word-stream bounded draw (DeflectionStreams.draw).
                n_cand = len(candidates)
                shift = shift_tab[n_cand]
                while True:
                    if cursor == len(words):
                        cursor = draws._refill(j)
                    r = words[cursor] >> shift
                    cursor += 1
                    if r < n_cand:
                        break
                draw_counts[j] += 1
                out = candidates[r]
                mis.append(jb_m + mid)
            pops.append(jb_nf + sf[w])
            free &= ~(1 << out)
            if asp:
                se[out] += 1
            s_sidx.append(jb_nf + tgt_row[out])
            s_mid.append(mid)
            s_job.append(j)
        all_cursors[j] = cursor
        # free / local-port state is per cycle; nothing else to write back.

    if pops:
        parr = np.array(pops, dtype=np.int32)
        heads[parr] += 1
        occ[parr] -= 1
        upd_parts.append(parr)
    if dels:
        del_cycle_flat[np.array(dels, dtype=np.int32)] = cycle
        delivered_j += np.asarray(dcounts, dtype=np.int64)
    if mis:
        mis_flat[np.array(mis, dtype=np.int32)] = 1
    if s_sidx:
        sarr = np.array(s_sidx, dtype=np.int32)
        pos = lens[sarr]
        if int(pos.max()) >= L:
            buf, L = _grow(buf, len(lens), L)
        buf[sarr * L + pos] = np.array(s_mid, dtype=np.int32)
        lens[sarr] += 1
        send_idx_parts.append(sarr)
        send_job_parts.append(np.array(s_job, dtype=np.int32))
    if asp:
        sent2[rows] = sent_l
    return buf, L


def _collect_batched(
    st, messages, traffics, J, NFp, M, maxocc, ncycles_j, delivered_j,
    bypassed_j, hops_j, inj_cycle_flat, del_cycle_flat, mis_flat,
) -> list[SimulationResult]:
    """Fold the stacked per-job state into one SimulationResult per job."""
    n = st.n_nodes
    maxocc2 = maxocc.reshape(J, NFp)
    results: list[SimulationResult] = []
    fifo_base = st.fifo_base.tolist()
    fcount = st.fcount.tolist()
    inject_fid = st.inject_fid.tolist()
    for j, (arrays, traffic) in enumerate(zip(messages, traffics)):
        per_node_max = [
            int(maxocc2[j, fifo_base[node] : fifo_base[node] + fcount[node] - 1].max(initial=0))
            for node in range(n)
        ]
        max_injection = int(maxocc2[j, inject_fid].max(initial=0))
        total = arrays.total
        ncycles = int(ncycles_j[j])
        stats = MessageStatistics()
        stats.total_hops = int(hops_j[j])
        if total:
            lat = (
                del_cycle_flat[j * M : j * M + total]
                - inj_cycle_flat[j * M : j * M + total]
            )
            stats.count = total
            stats.total_latency = int(lat.sum(dtype=np.int64))
            stats.max_latency = int(lat.max(initial=0))
            stats.misrouted = int(np.count_nonzero(mis_flat[j * M : j * M + total]))
            stats._latencies.extend(lat.tolist())
        link_utilization = 0.0
        if ncycles > 0 and st.n_arcs > 0:
            link_utilization = int(hops_j[j]) / (st.n_arcs * ncycles)
        results.append(
            SimulationResult(
                ncycles=ncycles,
                total_messages=total,
                delivered_messages=int(delivered_j[j]),
                local_bypassed=int(bypassed_j[j]),
                max_fifo_occupancy=max(per_node_max) if per_node_max else 0,
                max_injection_occupancy=max_injection,
                per_node_max_fifo=per_node_max,
                statistics=stats,
                link_utilization=link_utilization,
                config_label=st.config.describe(),
                topology_label=st.topology.name,
                traffic_label=traffic.label,
            )
        )
    return results
